package distjoin

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestBuilderInsertDeleteSnapshot(t *testing.T) {
	b, err := NewBuilder(nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(30))
	objs := randObjects(rng, 300, 1000, 10)
	for _, o := range objs {
		if err := b.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 300 {
		t.Fatalf("Len = %d", b.Len())
	}
	if !b.Bounds().Valid() {
		t.Fatal("invalid bounds")
	}

	// Delete a third.
	for i := 0; i < 100; i++ {
		if !b.Delete(objs[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if b.Delete(objs[0]) {
		t.Fatal("double delete must report false")
	}
	if b.Len() != 200 {
		t.Fatalf("Len = %d after deletes", b.Len())
	}

	// Search sees exactly the live objects.
	seen := map[int64]bool{}
	b.Search(b.Bounds(), func(o Object) bool {
		seen[o.ID] = true
		return true
	})
	if len(seen) != 200 {
		t.Fatalf("search found %d", len(seen))
	}
	for i := 0; i < 100; i++ {
		if seen[objs[i].ID] {
			t.Fatalf("deleted object %d still visible", objs[i].ID)
		}
	}

	// Snapshot is queryable and isolated from later mutations.
	snap, err := b.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 200 {
		t.Fatalf("snapshot Len = %d", snap.Len())
	}
	if err := b.Insert(Object{ID: 9999, Rect: NewRect(0, 0, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 200 {
		t.Fatal("snapshot changed after builder mutation")
	}

	// Joins over snapshots match brute force on the live set.
	live := objs[100:]
	want := bruteKNearest(live, live, 30)
	pairs, err := KDistanceJoin(snap, snap, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if math.Abs(pairs[i].Dist-want[i]) > 1e-9 {
			t.Fatalf("pair %d dist %g, want %g", i, pairs[i].Dist, want[i])
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	b, _ := NewBuilder(nil)
	if err := b.Insert(Object{ID: -1, Rect: NewRect(0, 0, 1, 1)}); err == nil {
		t.Fatal("negative ID must be rejected")
	}
	if err := b.Insert(Object{ID: 1, Rect: Rect{MinX: 2, MaxX: 1}}); err == nil {
		t.Fatal("invalid rect must be rejected")
	}
	if err := b.BulkReplace([]Object{{ID: 1 << 50, Rect: NewRect(0, 0, 1, 1)}}); err == nil {
		t.Fatal("bulk oversized ID must be rejected")
	}
}

func TestBuilderBulkReplaceAndSnapshotFile(t *testing.T) {
	b, _ := NewBuilder(nil)
	rng := rand.New(rand.NewSource(31))
	objs := randObjects(rng, 500, 1000, 10)
	if err := b.BulkReplace(objs); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 500 {
		t.Fatalf("Len = %d", b.Len())
	}
	// BulkReplace discards previous contents.
	if err := b.BulkReplace(objs[:50]); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 50 {
		t.Fatalf("Len = %d after replace", b.Len())
	}

	path := filepath.Join(t.TempDir(), "snap.rtree")
	snap, err := b.SnapshotFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 50 {
		t.Fatalf("file snapshot Len = %d", snap.Len())
	}
	re, err := OpenIndexFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 50 {
		t.Fatalf("reopened Len = %d", re.Len())
	}
}

func TestIndexStats(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	objs := randObjects(rng, 5000, 10000, 20)
	idx, err := NewIndex(objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := idx.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != 5000 || st.Height < 2 || st.PageSize != 4096 {
		t.Fatalf("stats = %+v", st)
	}
	total := 0
	for _, n := range st.NodesPerLevel {
		total += n
	}
	if total != st.Nodes {
		t.Fatalf("per-level sum %d != nodes %d", total, st.Nodes)
	}
	if st.NodesPerLevel[st.Height-1] != 1 {
		t.Fatalf("root level has %d nodes", st.NodesPerLevel[st.Height-1])
	}
	// STR bulk load targets ~85% fill.
	if st.AvgLeafFill < 0.5 || st.AvgLeafFill > 1.0 {
		t.Fatalf("AvgLeafFill = %g", st.AvgLeafFill)
	}
}
