package distjoin

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func randObjects(rng *rand.Rand, n int, span, maxSide float64) []Object {
	objs := make([]Object, n)
	for i := range objs {
		x, y := rng.Float64()*span, rng.Float64()*span
		objs[i] = Object{
			ID:   int64(i),
			Rect: NewRect(x, y, x+rng.Float64()*maxSide, y+rng.Float64()*maxSide),
		}
	}
	return objs
}

func bruteKNearest(a, b []Object, k int) []float64 {
	var ds []float64
	for _, x := range a {
		for _, y := range b {
			ds = append(ds, x.Rect.MinDist(y.Rect))
		}
	}
	sort.Float64s(ds)
	if len(ds) > k {
		ds = ds[:k]
	}
	return ds
}

func TestNewIndexAndAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	objs := randObjects(rng, 500, 1000, 10)
	idx, err := NewIndex(objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 500 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if idx.Height() < 1 {
		t.Fatalf("Height = %d", idx.Height())
	}
	if !idx.Bounds().Valid() {
		t.Fatal("invalid bounds")
	}

	// Range search matches linear scan.
	q := NewRect(100, 100, 400, 400)
	want := 0
	for _, o := range objs {
		if o.Rect.Intersects(q) {
			want++
		}
	}
	got := 0
	if err := idx.Search(q, func(Object) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Search found %d, want %d", got, want)
	}

	// Nearest matches linear scan.
	probe := PointRect(500, 500)
	objsN, dists, err := idx.Nearest(probe, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(objsN) != 5 || len(dists) != 5 {
		t.Fatalf("Nearest returned %d/%d", len(objsN), len(dists))
	}
	var all []float64
	for _, o := range objs {
		all = append(all, probe.MinDist(o.Rect))
	}
	sort.Float64s(all)
	for i := range dists {
		if math.Abs(dists[i]-all[i]) > 1e-9 {
			t.Fatalf("Nearest %d = %g, want %g", i, dists[i], all[i])
		}
	}
}

func TestIndexValidation(t *testing.T) {
	if _, err := NewIndex([]Object{{ID: -1, Rect: NewRect(0, 0, 1, 1)}}, nil); err == nil {
		t.Fatal("negative ID must be rejected")
	}
	if _, err := NewIndex([]Object{{ID: 1 << 50, Rect: NewRect(0, 0, 1, 1)}}, nil); err == nil {
		t.Fatal("oversized ID must be rejected")
	}
	if _, err := NewIndex([]Object{{ID: 1, Rect: Rect{MinX: 2, MaxX: 1}}}, nil); err == nil {
		t.Fatal("invalid rect must be rejected")
	}
}

func TestIndexFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	objs := randObjects(rng, 300, 1000, 10)
	path := filepath.Join(t.TempDir(), "idx.rtree")
	idx, err := CreateIndexFile(path, objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 300 {
		t.Fatalf("Len = %d", idx.Len())
	}
	re, err := OpenIndexFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 300 || re.Bounds() != idx.Bounds() {
		t.Fatal("reopened index mismatch")
	}
	if _, err := OpenIndexFile(filepath.Join(t.TempDir(), "nope"), nil); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestKDistanceJoinAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randObjects(rng, 200, 1000, 10)
	b := randObjects(rng, 200, 1000, 10)
	left, err := NewIndex(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	right, err := NewIndex(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := 50
	want := bruteKNearest(a, b, k)
	dmax := want[k-1]

	for _, algo := range []Algorithm{AMKDJ, BKDJ, HSKDJ, SJSort} {
		opts := &Options{Algorithm: algo, Stats: &Stats{}}
		if algo == SJSort {
			opts.MaxDist = dmax
		}
		pairs, err := KDistanceJoin(left, right, k, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(pairs) != k {
			t.Fatalf("%v: %d pairs", algo, len(pairs))
		}
		for i, p := range pairs {
			if math.Abs(p.Dist-want[i]) > 1e-9 {
				t.Fatalf("%v: pair %d dist %g, want %g", algo, i, p.Dist, want[i])
			}
		}
		if opts.Stats.DistCalcs() == 0 {
			t.Fatalf("%v: stats not collected", algo)
		}
	}
}

func TestKDistanceJoinDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randObjects(rng, 100, 100, 5)
	left, _ := NewIndex(a, nil)
	pairs, err := KDistanceJoin(left, left, 10, nil) // nil options
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 {
		t.Fatalf("%d pairs", len(pairs))
	}
	// Self-join nearest pairs are the identity pairs at distance 0.
	for _, p := range pairs {
		if p.Dist != 0 {
			t.Fatalf("self-join pair dist %g", p.Dist)
		}
	}
}

func TestKDistanceJoinErrors(t *testing.T) {
	a, _ := NewIndex(randObjects(rand.New(rand.NewSource(5)), 10, 100, 5), nil)
	if _, err := KDistanceJoin(a, a, 5, &Options{Algorithm: SJSort}); err == nil {
		t.Fatal("SJSort without MaxDist must error")
	}
	if _, err := KDistanceJoin(a, a, 5, &Options{Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm must error")
	}
	if _, err := IncrementalJoin(a, a, &Options{Algorithm: SJSort}); err == nil {
		t.Fatal("incremental SJSort must error")
	}
	if Algorithm(99).String() == "" || AMKDJ.String() != "AM-KDJ" ||
		BKDJ.String() != "B-KDJ" || HSKDJ.String() != "HS-KDJ" || SJSort.String() != "SJ-SORT" {
		t.Fatal("algorithm names")
	}
}

func TestIncrementalJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randObjects(rng, 150, 1000, 10)
	b := randObjects(rng, 150, 1000, 10)
	left, _ := NewIndex(a, nil)
	right, _ := NewIndex(b, nil)
	want := bruteKNearest(a, b, 200)

	for _, algo := range []Algorithm{AMKDJ, HSKDJ} {
		it, err := IncrementalJoin(left, right, &Options{Algorithm: algo, BatchK: 64})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			p, ok := it.Next()
			if !ok {
				t.Fatalf("%v: exhausted at %d (%v)", algo, i, it.Err())
			}
			if math.Abs(p.Dist-want[i]) > 1e-9 {
				t.Fatalf("%v: pair %d dist %g, want %g", algo, i, p.Dist, want[i])
			}
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
	}
}

func TestSweepOptimizationToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randObjects(rng, 400, 2000, 10)
	b := randObjects(rng, 400, 2000, 10)
	left, _ := NewIndex(a, nil)
	right, _ := NewIndex(b, nil)

	on, off := &Stats{}, &Stats{}
	p1, err := KDistanceJoin(left, right, 100, &Options{Algorithm: BKDJ, Stats: on})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := KDistanceJoin(left, right, 100, &Options{
		Algorithm: BKDJ, Stats: off, DisableSweepOptimization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if math.Abs(p1[i].Dist-p2[i].Dist) > 1e-9 {
			t.Fatalf("optimization changed results at %d", i)
		}
	}
	if on.DistCalcs() > off.DistCalcs() {
		t.Fatalf("optimized sweep used MORE distance calcs (%d > %d)",
			on.DistCalcs(), off.DistCalcs())
	}
}

func TestEmptyIndexJoins(t *testing.T) {
	empty, err := NewIndex(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	some, _ := NewIndex(randObjects(rand.New(rand.NewSource(8)), 20, 100, 5), nil)
	pairs, err := KDistanceJoin(empty, some, 5, nil)
	if err != nil || pairs != nil {
		t.Fatalf("empty join: %v, %v", pairs, err)
	}
	it, err := IncrementalJoin(empty, some, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); ok {
		t.Fatal("empty incremental join must yield nothing")
	}
}

func TestRefinerThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randObjects(rng, 150, 500, 10)
	b := randObjects(rng, 150, 500, 10)
	left, _ := NewIndex(a, nil)
	right, _ := NewIndex(b, nil)

	refiner := func(x, y Object) float64 {
		cx, cy := x.Rect.Center(), y.Rect.Center()
		return math.Hypot(cx.X-cy.X, cx.Y-cy.Y)
	}
	var stats Stats
	pairs, err := KDistanceJoin(left, right, 40, &Options{Refiner: refiner, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: k smallest center distances.
	var all []float64
	for _, x := range a {
		for _, y := range b {
			all = append(all, x.Rect.CenterDist(y.Rect))
		}
	}
	sort.Float64s(all)
	for i := range pairs {
		if math.Abs(pairs[i].Dist-all[i]) > 1e-9 {
			t.Fatalf("pair %d dist %g, want %g", i, pairs[i].Dist, all[i])
		}
	}
	if stats.RefinementCalcs == 0 {
		t.Fatal("refinements not counted")
	}

	// Incremental path too.
	it, err := IncrementalJoin(left, right, &Options{Refiner: refiner, BatchK: 25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		p, ok := it.Next()
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if math.Abs(p.Dist-all[i]) > 1e-9 {
			t.Fatalf("incremental pair %d dist %g, want %g", i, p.Dist, all[i])
		}
	}
}

func TestHistogramEstimatorThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Clustered data: everything in a small patch of a large declared
	// space, which defeats the uniform model.
	objs := make([]Object, 300)
	for i := range objs {
		x := 5000 + rng.NormFloat64()*20
		y := 5000 + rng.NormFloat64()*20
		objs[i] = Object{ID: int64(i), Rect: NewRect(x, y, x+1, y+1)}
	}
	objs = append(objs, Object{ID: 300, Rect: NewRect(0, 0, 1, 1)})
	objs = append(objs, Object{ID: 301, Rect: NewRect(9999, 9999, 10000, 10000)})
	left, err := NewIndex(objs, nil)
	if err != nil {
		t.Fatal(err)
	}

	est, err := NewHistogramEstimator(left, left, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := KDistanceJoin(left, left, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := KDistanceJoin(left, left, 100, &Options{Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: %g vs %g", i, got[i].Dist, want[i].Dist)
		}
	}
	if _, err := NewHistogramEstimator(nil, left, 0); err == nil {
		t.Fatal("nil index must be rejected")
	}
}

func TestKClosestPairsFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	objs := randObjects(rng, 120, 500, 8)
	idx, err := NewIndex(objs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for i := range objs {
		for j := i + 1; j < len(objs); j++ {
			all = append(all, objs[i].Rect.MinDist(objs[j].Rect))
		}
	}
	sort.Float64s(all)
	pairs, err := KClosestPairs(idx, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 40 {
		t.Fatalf("%d pairs", len(pairs))
	}
	for i, p := range pairs {
		if p.LeftID >= p.RightID {
			t.Fatalf("non-canonical pair (%d,%d)", p.LeftID, p.RightID)
		}
		if math.Abs(p.Dist-all[i]) > 1e-9 {
			t.Fatalf("pair %d dist %g, want %g", i, p.Dist, all[i])
		}
	}
}

func TestWithinJoinFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randObjects(rng, 100, 300, 5)
	b := randObjects(rng, 100, 300, 5)
	left, _ := NewIndex(a, nil)
	right, _ := NewIndex(b, nil)
	const maxDist = 20.0
	want := 0
	for _, x := range a {
		for _, y := range b {
			if x.Rect.MinDist(y.Rect) <= maxDist {
				want++
			}
		}
	}
	got := 0
	if err := WithinJoin(left, right, maxDist, nil, func(Pair) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("within join: %d, want %d", got, want)
	}
	if err := WithinJoin(left, right, 1, nil, nil); err == nil {
		t.Fatal("nil callback must error")
	}
}

func TestAllNearestFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randObjects(rng, 80, 300, 5)
	b := randObjects(rng, 90, 300, 5)
	left, _ := NewIndex(a, nil)
	right, _ := NewIndex(b, nil)
	seen := map[int64]float64{}
	if err := AllNearest(left, right, nil, func(p Pair) bool {
		seen[p.LeftID] = p.Dist
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(a) {
		t.Fatalf("covered %d of %d", len(seen), len(a))
	}
	for _, x := range a {
		best := math.Inf(1)
		for _, y := range b {
			if d := x.Rect.MinDist(y.Rect); d < best {
				best = d
			}
		}
		if math.Abs(seen[x.ID]-best) > 1e-9 {
			t.Fatalf("object %d: %g, want %g", x.ID, seen[x.ID], best)
		}
	}
	if err := AllNearest(left, right, nil, nil); err == nil {
		t.Fatal("nil callback must error")
	}
}

func TestSegmentRefinerEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	mkSegs := func(n int) ([]Segment, []Object) {
		segs := make([]Segment, n)
		objs := make([]Object, n)
		for i := range segs {
			a := Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			b := Point{X: a.X + rng.NormFloat64()*40, Y: a.Y + rng.NormFloat64()*40}
			segs[i] = Segment{A: a, B: b}
			objs[i] = Object{ID: int64(i), Rect: segs[i].Bounds()}
		}
		return segs, objs
	}
	lSegs, lObjs := mkSegs(150)
	rSegs, rObjs := mkSegs(150)
	left, _ := NewIndex(lObjs, nil)
	right, _ := NewIndex(rObjs, nil)

	refiner := SegmentRefiner(
		func(id int64) Segment { return lSegs[id] },
		func(id int64) Segment { return rSegs[id] },
	)
	k := 60
	pairs, err := KDistanceJoin(left, right, k, &Options{Refiner: refiner})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: k smallest exact segment distances.
	var all []float64
	for _, a := range lSegs {
		for _, b := range rSegs {
			all = append(all, a.DistToSegment(b))
		}
	}
	sort.Float64s(all)
	for i := range pairs {
		if math.Abs(pairs[i].Dist-all[i]) > 1e-9 {
			t.Fatalf("pair %d dist %.12g, want %.12g", i, pairs[i].Dist, all[i])
		}
	}
}

// Joins run correctly over file-backed (persisted, reopened) indexes.
func TestJoinOverFileBackedIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := randObjects(rng, 200, 500, 10)
	b := randObjects(rng, 200, 500, 10)
	dir := t.TempDir()
	if _, err := CreateIndexFile(filepath.Join(dir, "a.rtree"), a, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateIndexFile(filepath.Join(dir, "b.rtree"), b, nil); err != nil {
		t.Fatal(err)
	}
	left, err := OpenIndexFile(filepath.Join(dir, "a.rtree"), &IndexConfig{BufferBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	right, err := OpenIndexFile(filepath.Join(dir, "b.rtree"), &IndexConfig{BufferBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteKNearest(a, b, 50)
	var stats Stats
	pairs, err := KDistanceJoin(left, right, 50, &Options{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if math.Abs(pairs[i].Dist-want[i]) > 1e-9 {
			t.Fatalf("pair %d dist %g, want %g", i, pairs[i].Dist, want[i])
		}
	}
	if stats.NodeAccessesPhysical == 0 {
		t.Fatal("file-backed join with tiny buffer must do physical reads")
	}
	if stats.MainQueuePeak == 0 {
		t.Fatal("queue peak not observed")
	}
}

func TestKNNJoinFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	a := randObjects(rng, 60, 300, 5)
	b := randObjects(rng, 80, 300, 5)
	left, _ := NewIndex(a, nil)
	right, _ := NewIndex(b, nil)
	const k = 4
	got := map[int64][]float64{}
	if err := KNNJoin(left, right, k, nil, func(ns []Pair) bool {
		for _, n := range ns {
			got[n.LeftID] = append(got[n.LeftID], n.Dist)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(a) {
		t.Fatalf("covered %d of %d", len(got), len(a))
	}
	for _, x := range a {
		var ds []float64
		for _, y := range b {
			ds = append(ds, x.Rect.MinDist(y.Rect))
		}
		sort.Float64s(ds)
		for i := 0; i < k; i++ {
			if math.Abs(got[x.ID][i]-ds[i]) > 1e-9 {
				t.Fatalf("object %d neighbor %d mismatch", x.ID, i)
			}
		}
	}
	if err := KNNJoin(left, right, k, nil, nil); err == nil {
		t.Fatal("nil callback must error")
	}
}

// TestShardedJoinIdentity pins the Options.Shards contract at the
// facade: sharded KDistanceJoin and KClosestPairs return exactly the
// pairs the single-tree engine returns, for both eligible algorithms
// across shard and worker counts.
func TestShardedJoinIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randObjects(rng, 400, 100000, 300)
	b := randObjects(rng, 300, 100000, 300)
	left, err := NewIndex(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	right, err := NewIndex(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	samePairs := func(label string, got, want []Pair) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: got %d pairs, want %d", label, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: pair %d = %+v, want %+v", label, i, got[i], want[i])
			}
		}
	}
	for _, algo := range []Algorithm{AMKDJ, BKDJ} {
		want, err := KDistanceJoin(left, right, 50, &Options{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 4, 9} {
			for _, par := range []int{1, 8} {
				got, err := KDistanceJoin(left, right, 50, &Options{Algorithm: algo, Shards: shards, Parallelism: par})
				if err != nil {
					t.Fatalf("%v s=%d par=%d: %v", algo, shards, par, err)
				}
				samePairs(fmt.Sprintf("%v/s=%d/par=%d", algo, shards, par), got, want)
			}
		}
	}
	// Self-join through KClosestPairs.
	wantSelf, err := KClosestPairs(left, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotSelf, err := KClosestPairs(left, 40, &Options{Shards: 4, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	samePairs("self/s=4", gotSelf, wantSelf)
}

// TestShardsMisconfiguration pins the Options.Shards fallback
// contract: paths with no sharded executor reject Shards > 0 with a
// clear configuration error instead of silently running the
// single-tree engine, while the ancillary streaming joins ignore the
// field (documented on Options.Shards).
func TestShardsMisconfiguration(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randObjects(rng, 80, 500, 5)
	b := randObjects(rng, 80, 500, 5)
	left, _ := NewIndex(a, nil)
	right, _ := NewIndex(b, nil)

	wantErr := func(label string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s with Shards > 0: no error, want configuration error", label)
		}
		if !strings.Contains(err.Error(), "Shards") {
			t.Fatalf("%s error %q does not name Options.Shards", label, err)
		}
	}

	// KDistanceJoin: HSKDJ and SJSort have no sharded executor.
	_, err := KDistanceJoin(left, right, 10, &Options{Algorithm: HSKDJ, Shards: 4})
	wantErr("KDistanceJoin/HSKDJ", err)
	_, err = KDistanceJoin(left, right, 10, &Options{Algorithm: SJSort, MaxDist: 100, Shards: 4})
	wantErr("KDistanceJoin/SJSort", err)

	// IncrementalJoin: no sharded executor for any algorithm.
	_, err = IncrementalJoin(left, right, &Options{Shards: 4})
	wantErr("IncrementalJoin/AMKDJ", err)
	_, err = IncrementalJoin(left, right, &Options{Algorithm: HSKDJ, Shards: 4})
	wantErr("IncrementalJoin/HSKDJ", err)

	// KClosestPairs routes through KDistanceJoin, so the same rule
	// applies to self-joins.
	_, err = KClosestPairs(left, 10, &Options{Algorithm: HSKDJ, Shards: 4})
	wantErr("KClosestPairs/HSKDJ", err)

	// Eligible algorithms still shard, with and without self-join.
	for _, algo := range []Algorithm{AMKDJ, BKDJ} {
		if _, err := KDistanceJoin(left, right, 10, &Options{Algorithm: algo, Shards: 4}); err != nil {
			t.Fatalf("KDistanceJoin/%v sharded: %v", algo, err)
		}
	}
	if _, err := KClosestPairs(left, 10, &Options{Shards: 4}); err != nil {
		t.Fatalf("KClosestPairs sharded: %v", err)
	}

	// Ancillary joins: Shards is documented as ignored — same results
	// as the unsharded call, no error.
	opts := &Options{Shards: 4}
	var withShards, without []Pair
	if err := WithinJoin(left, right, 50, opts, func(p Pair) bool { withShards = append(withShards, p); return true }); err != nil {
		t.Fatalf("WithinJoin with Shards: %v", err)
	}
	if err := WithinJoin(left, right, 50, nil, func(p Pair) bool { without = append(without, p); return true }); err != nil {
		t.Fatalf("WithinJoin: %v", err)
	}
	if len(withShards) != len(without) {
		t.Fatalf("WithinJoin result drift with Shards set: %d vs %d", len(withShards), len(without))
	}
	if err := AllNearest(left, right, opts, func(Pair) bool { return true }); err != nil {
		t.Fatalf("AllNearest with Shards: %v", err)
	}
	if err := KNNJoin(left, right, 2, opts, func([]Pair) bool { return true }); err != nil {
		t.Fatalf("KNNJoin with Shards: %v", err)
	}
}

// TestKNNJoinRetention is the callback-aliasing regression test: a
// caller that retains each callback's neighbors slice must see every
// left object's neighbors intact after the join — the original
// implementation reused one buffer across callbacks, so every
// retained slice was silently overwritten by the last left object.
func TestKNNJoinRetention(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := randObjects(rng, 50, 300, 5)
	b := randObjects(rng, 70, 300, 5)
	left, _ := NewIndex(a, nil)
	right, _ := NewIndex(b, nil)
	const k = 3

	// Retain the slices exactly as delivered — no copying.
	retained := map[int64][]Pair{}
	if err := KNNJoin(left, right, k, nil, func(ns []Pair) bool {
		if len(ns) > 0 {
			retained[ns[0].LeftID] = ns
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(retained) != len(a) {
		t.Fatalf("retained %d of %d objects", len(retained), len(a))
	}
	for _, x := range a {
		ns := retained[x.ID]
		if len(ns) != k {
			t.Fatalf("object %d: retained %d neighbors, want %d", x.ID, len(ns), k)
		}
		var ds []float64
		for _, y := range b {
			ds = append(ds, x.Rect.MinDist(y.Rect))
		}
		sort.Float64s(ds)
		for i, n := range ns {
			if n.LeftID != x.ID {
				t.Fatalf("object %d: retained slice overwritten — neighbor %d has LeftID %d", x.ID, i, n.LeftID)
			}
			if math.Abs(n.Dist-ds[i]) > 1e-9 {
				t.Fatalf("object %d: retained neighbor %d dist %g, want %g", x.ID, i, n.Dist, ds[i])
			}
		}
	}
}
