package main

import "testing"

func TestBuildItemsKinds(t *testing.T) {
	for _, kind := range []string{"streets", "hydro", "uniform", "clusters"} {
		items, err := buildItems(kind, 500, 1, 100, 4, 1000)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(items) != 500 {
			t.Fatalf("%s: %d items", kind, len(items))
		}
		for i, it := range items {
			if !it.Rect.Valid() {
				t.Fatalf("%s item %d invalid", kind, i)
			}
		}
	}
	if _, err := buildItems("nope", 10, 1, 1, 1, 1); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestBuildItemsDeterministic(t *testing.T) {
	a, _ := buildItems("streets", 100, 9, 0, 0, 0)
	b, _ := buildItems("streets", 100, 9, 0, 0, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}
