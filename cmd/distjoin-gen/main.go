// Command distjoin-gen generates synthetic spatial data sets in the
// distjoin binary dataset format, for use with distjoin-query.
//
// Usage:
//
//	distjoin-gen -kind streets|hydro|uniform|clusters -n 100000
//	             [-seed 1] [-max-side 100] [-clusters 8] [-stddev 2000]
//	             -out data.djds
package main

import (
	"flag"
	"fmt"
	"os"

	"distjoin/internal/datagen"
	"distjoin/internal/rtree"
)

// buildItems generates n objects of the given kind.
func buildItems(kind string, n int, seed int64, maxSide float64, clusters int, stddev float64) ([]rtree.Item, error) {
	switch kind {
	case "streets":
		return datagen.TigerStreets(seed, n), nil
	case "hydro":
		return datagen.TigerHydro(seed, n), nil
	case "uniform":
		return datagen.Uniform(seed, n, datagen.World, maxSide), nil
	case "clusters":
		return datagen.GaussianClusters(seed, n, clusters, datagen.World, stddev, maxSide), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func main() {
	var (
		kind     = flag.String("kind", "uniform", "data kind: streets, hydro, uniform, clusters")
		n        = flag.Int("n", 100000, "number of objects")
		seed     = flag.Int64("seed", 1, "generator seed")
		maxSide  = flag.Float64("max-side", 100, "max MBR side (uniform/clusters)")
		clusters = flag.Int("clusters", 8, "cluster count (clusters)")
		stddev   = flag.Float64("stddev", 2000, "cluster standard deviation (clusters)")
		out      = flag.String("out", "", "output file (required)")
		format   = flag.String("format", "binary", "output format: binary or csv")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "distjoin-gen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "distjoin-gen: -n must be positive")
		os.Exit(2)
	}

	items, err := buildItems(*kind, *n, *seed, *maxSide, *clusters, *stddev)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distjoin-gen: %v\n", err)
		os.Exit(2)
	}

	var werr error
	switch *format {
	case "binary":
		werr = datagen.WriteFile(*out, items)
	case "csv":
		var f *os.File
		if f, werr = os.Create(*out); werr == nil {
			werr = datagen.WriteCSV(f, items)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
		}
	default:
		werr = fmt.Errorf("unknown format %q", *format)
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "distjoin-gen: %v\n", werr)
		os.Exit(1)
	}
	b := datagen.Bounds(items)
	fmt.Printf("wrote %d %s objects to %s (bounds %v)\n", len(items), *kind, *out, b)
}
