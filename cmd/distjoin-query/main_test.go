package main

import (
	"path/filepath"
	"testing"

	"distjoin/internal/datagen"
)

func TestLoadIndex(t *testing.T) {
	items := datagen.Uniform(3, 200, datagen.World, 50)
	path := filepath.Join(t.TempDir(), "d.djds")
	if err := datagen.WriteFile(path, items); err != nil {
		t.Fatal(err)
	}
	idx, err := loadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 200 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if _, err := loadIndex(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file must error")
	}
}
