// Command benchdiff compares two performance records produced by
// `distjoin-bench -bench-json` and exits non-zero when the new record
// regresses past the threshold.
//
// Usage:
//
//	benchdiff -old BENCH_3.json -new bench-new.json [-threshold 0.25]
//	          [-time-threshold 0] [-abs-floor 64] [-q]
//
// Gating logic (see internal/benchrec): the deterministic cost
// counters of serial entries (distance computations, queue insertions,
// node accesses, modeled page I/O, compensation stages, result
// cardinality) fail the gate when they grow more than -threshold
// relative to the baseline and by at least -abs-floor units. Wall
// clock and parallel-entry counters are reported as notes only, unless
// -time-threshold is set, which turns wall-clock growth into a gating
// failure too (for dedicated, quiet benchmark hosts).
package main

import (
	"flag"
	"fmt"
	"os"

	"distjoin/internal/benchrec"
)

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline record (required)")
		newPath   = flag.String("new", "", "candidate record (required)")
		threshold = flag.Float64("threshold", 0.25, "relative counter growth that fails the gate")
		timeThr   = flag.Float64("time-threshold", 0, "relative wall-clock growth that fails the gate (0 = wall time is informational)")
		absFloor  = flag.Int64("abs-floor", 64, "ignore counter growth below this many units")
		quiet     = flag.Bool("q", false, "print only findings (suppress the per-entry summary)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}

	old, err := benchrec.ReadFile(*oldPath)
	if err != nil {
		fatal(err)
	}
	cur, err := benchrec.ReadFile(*newPath)
	if err != nil {
		fatal(err)
	}
	findings, err := benchrec.Compare(old, cur, benchrec.Options{
		Threshold:     *threshold,
		TimeThreshold: *timeThr,
		AbsFloor:      *absFloor,
	})
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		printSummary(old, cur)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if benchrec.Gating(findings) {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL: regression past %.0f%% threshold\n", *threshold*100)
		os.Exit(1)
	}
	if len(findings) == 0 {
		fmt.Println("benchdiff: OK: no findings")
	} else {
		fmt.Println("benchdiff: OK: notes only, nothing gating")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}

// printSummary renders an aligned old-vs-new table of the headline
// numbers for every baseline entry.
func printSummary(old, cur *benchrec.Record) {
	byName := make(map[string]benchrec.Entry, len(cur.Entries))
	for _, e := range cur.Entries {
		byName[e.Name] = e
	}
	fmt.Printf("baseline scale=%g seed=%d (%s), candidate (%s)\n",
		old.Scale, old.Seed, old.CreatedAt, cur.CreatedAt)
	fmt.Printf("%-24s %14s %14s %10s %12s\n",
		"entry", "dist calcs", "queue inserts", "wall (s)", "wall Δ")
	baseline := make(map[string]bool, len(old.Entries))
	for _, oe := range old.Entries {
		baseline[oe.Name] = true
		ne, ok := byName[oe.Name]
		if !ok {
			continue // Compare already errored on this
		}
		delta := "n/a"
		if oe.WallSeconds > 0 {
			delta = fmt.Sprintf("%+.1f%%", (ne.WallSeconds/oe.WallSeconds-1)*100)
		}
		fmt.Printf("%-24s %6d → %6d %6d → %6d %10.4f %12s\n",
			oe.Name, oe.DistCalcs, ne.DistCalcs,
			oe.QueueInserts, ne.QueueInserts, ne.WallSeconds, delta)
	}
	// Entries only the candidate records (e.g. the sharded AM-KDJ
	// series before the baseline is regenerated) are fresh coverage:
	// informational, never gating, but worth surfacing so new series
	// don't ship invisibly.
	first := true
	for _, ne := range cur.Entries {
		if baseline[ne.Name] {
			continue
		}
		if first {
			fmt.Println("new series (informational, not in baseline):")
			first = false
		}
		fmt.Printf("%-32s %14d %14d %10.4f\n",
			ne.Name, ne.DistCalcs, ne.QueueInserts, ne.WallSeconds)
	}
}
