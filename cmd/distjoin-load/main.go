// Command distjoin-load drives a running distjoin-server with
// concurrent clients issuing mixed traffic — blocking k-distance
// joins, within-distance joins, and paginated incremental joins — and
// reports per-family latency percentiles plus the server's shed-load
// behaviour (429/503 counts).
//
//	distjoin-server -addr 127.0.0.1:0 -demo 5000 -addr-file /tmp/a &
//	distjoin-load -addr "$(cat /tmp/a)" -clients 8 -duration 10s
//
// -quick selects a small preset suitable for CI smoke tests. With
// -bench-json the latency percentiles are written as a benchrec
// record: the "serve/..." series is absent from counter baselines and
// all entries are marked parallel, so benchdiff treats it as
// informational, never gating.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"distjoin/internal/benchrec"
)

// opKind indexes the traffic families.
type opKind int

const (
	opKDist opKind = iota
	opWithin
	opIncremental
	numOps
)

func (k opKind) String() string {
	switch k {
	case opKDist:
		return "kdist"
	case opWithin:
		return "within"
	case opIncremental:
		return "incremental"
	}
	return "unknown"
}

// tally accumulates one client's observations; merged after the run so
// the hot path takes no shared lock.
type tally struct {
	latencies [numOps][]time.Duration
	shed      int64 // 429/503: the server pushing back, not a failure
	errors    []string
}

func (t *tally) fail(format string, args ...any) {
	if len(t.errors) < 8 {
		t.errors = append(t.errors, fmt.Sprintf(format, args...))
	} else {
		t.errors = append(t.errors[:8], "...")
	}
}

func main() {
	var (
		addr     = flag.String("addr", "", "server address, host:port (required)")
		clients  = flag.Int("clients", 2*runtime.GOMAXPROCS(0), "concurrent client goroutines")
		duration = flag.Duration("duration", 10*time.Second, "how long to generate load")
		left     = flag.String("left", "left", "left dataset name")
		right    = flag.String("right", "right", "right dataset name")
		k        = flag.Int("k", 100, "k for k-distance queries")
		maxDist  = flag.Float64("max-dist", 5000, "distance for within queries")
		limit    = flag.Int("limit", 1000, "result cap for within queries")
		page     = flag.Int("page", 64, "incremental page size")
		pages    = flag.Int("pages", 3, "pages pulled per incremental query")
		quick    = flag.Bool("quick", false, "CI smoke preset: 4 clients, 2s, small queries")
		outJSON  = flag.String("bench-json", "", "write latency percentiles as a benchrec record to this file")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "distjoin-load: -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	if *quick {
		*clients, *duration, *k, *limit, *pages = 4, 2*time.Second, 20, 100, 2
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: 60 * time.Second}

	// Fail fast when the server isn't there.
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		fmt.Fprintf(os.Stderr, "distjoin-load: server not reachable: %v\n", err)
		os.Exit(1)
	}
	drain(resp.Body)

	stop := time.Now().Add(*duration)
	tallies := make([]tally, *clients)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t := &tallies[c]
			for i := 0; time.Now().Before(stop); i++ {
				op := opKind((c + i) % int(numOps))
				start := time.Now()
				ok := runOp(client, base, op, opParams{
					left: *left, right: *right, k: *k,
					maxDist: *maxDist, limit: *limit,
					page: *page, pages: *pages,
				}, t)
				if ok {
					t.latencies[op] = append(t.latencies[op], time.Since(start))
				}
			}
		}(c)
	}
	wg.Wait()

	// Merge and report.
	var (
		merged [numOps][]time.Duration
		shed   int64
		errs   []string
	)
	for i := range tallies {
		for op := opKind(0); op < numOps; op++ {
			merged[op] = append(merged[op], tallies[i].latencies[op]...)
		}
		shed += tallies[i].shed
		errs = append(errs, tallies[i].errors...)
	}

	fmt.Printf("distjoin-load: %d clients for %v against %s\n", *clients, *duration, base)
	var entries []benchrec.Entry
	total := 0
	for op := opKind(0); op < numOps; op++ {
		ls := merged[op]
		total += len(ls)
		if len(ls) == 0 {
			fmt.Printf("  %-12s no completed queries\n", op)
			continue
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		p50, p90, p99 := percentile(ls, 50), percentile(ls, 90), percentile(ls, 99)
		fmt.Printf("  %-12s n=%-6d p50=%-10v p90=%-10v p99=%v\n", op, len(ls), p50, p90, p99)
		for _, p := range []struct {
			name string
			v    time.Duration
		}{{"p50", p50}, {"p90", p90}, {"p99", p99}} {
			entries = append(entries, benchrec.Entry{
				Name:        fmt.Sprintf("serve/%s/%s", op, p.name),
				Algo:        "serve",
				K:           *k,
				Parallelism: *clients, // parallel: latency never gates
				WallSeconds: p.v.Seconds(),
				Results:     int64(len(ls)),
			})
		}
	}
	fmt.Printf("  completed=%d shed(429/503)=%d errors=%d\n", total, shed, len(errs))
	for _, e := range errs {
		fmt.Printf("  error: %s\n", e)
	}

	if *outJSON != "" {
		rec := &benchrec.Record{
			Schema:    benchrec.SchemaVersion,
			CreatedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			Scale:     float64(*clients),
			Entries:   entries,
		}
		if err := benchrec.WriteFile(*outJSON, rec); err != nil {
			fmt.Fprintf(os.Stderr, "distjoin-load: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", *outJSON)
	}

	if len(errs) > 0 || total == 0 {
		os.Exit(1)
	}
}

type opParams struct {
	left, right string
	k, limit    int
	maxDist     float64
	page, pages int
}

// runOp issues one query of the given family, returning whether it
// completed (shed and failed queries don't count toward latency).
func runOp(client *http.Client, base string, op opKind, p opParams, t *tally) bool {
	switch op {
	case opKDist:
		return postOK(client, base+"/v1/join/k", map[string]any{
			"left": p.left, "right": p.right, "k": p.k,
		}, nil, t)
	case opWithin:
		return postOK(client, base+"/v1/join/within", map[string]any{
			"left": p.left, "right": p.right, "max_dist": p.maxDist, "limit": p.limit,
		}, nil, t)
	case opIncremental:
		var open struct {
			Cursor string `json:"cursor"`
			Done   bool   `json:"done"`
		}
		if !postOK(client, base+"/v1/join/incremental", map[string]any{
			"left": p.left, "right": p.right, "page_size": p.page,
		}, &open, t) {
			return false
		}
		if open.Done || open.Cursor == "" {
			return true
		}
		for i := 1; i < p.pages; i++ {
			var next struct {
				Done bool `json:"done"`
			}
			if !postOK(client, base+"/v1/join/incremental/next", map[string]any{
				"cursor": open.Cursor, "page_size": p.page,
			}, &next, t) {
				return false
			}
			if next.Done {
				return true
			}
		}
		return postOK(client, base+"/v1/join/incremental/close", map[string]any{
			"cursor": open.Cursor,
		}, nil, t)
	}
	return false
}

// postOK posts a JSON body and decodes a 200 response into out (when
// non-nil). Non-200 statuses are never ignored: shed responses
// (429/503) are counted, anything else is recorded as an error with
// the server's message.
func postOK(client *http.Client, url string, body any, out any, t *tally) bool {
	b, err := json.Marshal(body)
	if err != nil {
		t.fail("marshal: %v", err)
		return false
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.fail("POST %s: %v", url, err)
		return false
	}
	defer drain(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		t.shed++
		return false
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		t.fail("POST %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg))
		return false
	}
	if out == nil {
		return true
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.fail("POST %s: decode: %v", url, err)
		return false
	}
	return true
}

// percentile returns the pth percentile of sorted latencies
// (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (p*len(sorted) + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// drain fully reads and closes a response body so the client can
// reuse the connection.
func drain(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}
