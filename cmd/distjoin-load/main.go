// Command distjoin-load drives a running distjoin-server with
// concurrent clients issuing mixed traffic — blocking k-distance
// joins, within-distance joins, and paginated incremental joins — and
// reports per-family latency percentiles plus the server's shed-load
// behaviour (429/503 counts).
//
//	distjoin-server -addr 127.0.0.1:0 -demo 5000 -addr-file /tmp/a &
//	distjoin-load -addr "$(cat /tmp/a)" -clients 8 -duration 10s
//
// -quick selects a small preset suitable for CI smoke tests. With
// -bench-json the latency percentiles are written as a benchrec
// record: the "serve/..." series is absent from counter baselines and
// all entries are marked parallel, so benchdiff treats it as
// informational, never gating.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"distjoin/internal/benchrec"
)

// opKind indexes the traffic families.
type opKind int

const (
	opKDist opKind = iota
	opWithin
	opIncremental
	numOps
)

func (k opKind) String() string {
	switch k {
	case opKDist:
		return "kdist"
	case opWithin:
		return "within"
	case opIncremental:
		return "incremental"
	}
	return "unknown"
}

// tally accumulates one client's observations; merged after the run so
// the hot path takes no shared lock. Client-observed latency and
// server-measured admission wait (the X-Distjoin-Admission-Wait
// response header) are tracked separately: the first includes network
// and serialization, the second isolates queueing inside the server.
type tally struct {
	latencies [numOps][]time.Duration
	waits     [numOps][]time.Duration
	shed      int64 // 429/503: the server pushing back, not a failure
	errors    []string
}

func (t *tally) fail(format string, args ...any) {
	if len(t.errors) < 8 {
		t.errors = append(t.errors, fmt.Sprintf(format, args...))
	} else {
		t.errors = append(t.errors[:8], "...")
	}
}

func main() {
	var (
		addr     = flag.String("addr", "", "server address, host:port (required)")
		clients  = flag.Int("clients", 2*runtime.GOMAXPROCS(0), "concurrent client goroutines")
		duration = flag.Duration("duration", 10*time.Second, "how long to generate load")
		left     = flag.String("left", "left", "left dataset name")
		right    = flag.String("right", "right", "right dataset name")
		k        = flag.Int("k", 100, "k for k-distance queries")
		maxDist  = flag.Float64("max-dist", 5000, "distance for within queries")
		limit    = flag.Int("limit", 1000, "result cap for within queries")
		page     = flag.Int("page", 64, "incremental page size")
		pages    = flag.Int("pages", 3, "pages pulled per incremental query")
		quick    = flag.Bool("quick", false, "CI smoke preset: 4 clients, 2s, small queries")
		outJSON  = flag.String("bench-json", "", "write latency percentiles as a benchrec record to this file")
		explain  = flag.Bool("check-explain", false, "after the run, issue one ?explain=1 query and validate the embedded trace timeline")
		valLog   = flag.String("validate-log", "", "validate a server request-log file (one parseable \"request\" line with the documented keys) and exit; no load is generated")
	)
	flag.Parse()
	if *valLog != "" {
		if err := validateRequestLog(*valLog); err != nil {
			fmt.Fprintf(os.Stderr, "distjoin-load: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("distjoin-load: %s: structured request log ok\n", *valLog)
		return
	}
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "distjoin-load: -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	if *quick {
		*clients, *duration, *k, *limit, *pages = 4, 2*time.Second, 20, 100, 2
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: 60 * time.Second}

	// Fail fast when the server isn't there.
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		fmt.Fprintf(os.Stderr, "distjoin-load: server not reachable: %v\n", err)
		os.Exit(1)
	}
	drain(resp.Body)

	stop := time.Now().Add(*duration)
	tallies := make([]tally, *clients)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t := &tallies[c]
			for i := 0; time.Now().Before(stop); i++ {
				op := opKind((c + i) % int(numOps))
				start := time.Now()
				var wait time.Duration
				ok := runOp(client, base, op, opParams{
					left: *left, right: *right, k: *k,
					maxDist: *maxDist, limit: *limit,
					page: *page, pages: *pages,
				}, t, &wait)
				if ok {
					t.latencies[op] = append(t.latencies[op], time.Since(start))
					t.waits[op] = append(t.waits[op], wait)
				}
			}
		}(c)
	}
	wg.Wait()

	// Merge and report.
	var (
		merged      [numOps][]time.Duration
		mergedWaits [numOps][]time.Duration
		shed        int64
		errs        []string
	)
	for i := range tallies {
		for op := opKind(0); op < numOps; op++ {
			merged[op] = append(merged[op], tallies[i].latencies[op]...)
			mergedWaits[op] = append(mergedWaits[op], tallies[i].waits[op]...)
		}
		shed += tallies[i].shed
		errs = append(errs, tallies[i].errors...)
	}

	fmt.Printf("distjoin-load: %d clients for %v against %s\n", *clients, *duration, base)
	var entries []benchrec.Entry
	total := 0
	for op := opKind(0); op < numOps; op++ {
		ls := merged[op]
		total += len(ls)
		if len(ls) == 0 {
			fmt.Printf("  %-12s no completed queries\n", op)
			continue
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		p50, p90, p99 := percentile(ls, 50), percentile(ls, 90), percentile(ls, 99)
		fmt.Printf("  %-12s n=%-6d p50=%-10v p90=%-10v p99=%v\n", op, len(ls), p50, p90, p99)
		for _, p := range []struct {
			name string
			v    time.Duration
		}{{"p50", p50}, {"p90", p90}, {"p99", p99}} {
			entries = append(entries, benchrec.Entry{
				Name:        fmt.Sprintf("serve/%s/%s", op, p.name),
				Algo:        "serve",
				K:           *k,
				Parallelism: *clients, // parallel: latency never gates
				WallSeconds: p.v.Seconds(),
				Results:     int64(len(ls)),
			})
		}
		// Server-measured admission wait, reported separately so
		// queueing inside the server is distinguishable from network
		// and execution time in the client-observed latency above.
		ws := mergedWaits[op]
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		w50, w99 := percentile(ws, 50), percentile(ws, 99)
		fmt.Printf("  %-12s admission-wait(server) p50=%-10v p99=%v\n", "", w50, w99)
		for _, p := range []struct {
			name string
			v    time.Duration
		}{{"wait_p50", w50}, {"wait_p99", w99}} {
			entries = append(entries, benchrec.Entry{
				Name:        fmt.Sprintf("serve/%s/%s", op, p.name),
				Algo:        "serve",
				K:           *k,
				Parallelism: *clients,
				WallSeconds: p.v.Seconds(),
				Results:     int64(len(ws)),
			})
		}
	}
	fmt.Printf("  completed=%d shed(429/503)=%d errors=%d\n", total, shed, len(errs))
	for _, e := range errs {
		fmt.Printf("  error: %s\n", e)
	}

	if *explain {
		if err := checkExplain(client, base, opParams{left: *left, right: *right, k: *k}); err != nil {
			fmt.Fprintf(os.Stderr, "distjoin-load: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("  explain roundtrip ok")
	}

	if *outJSON != "" {
		rec := &benchrec.Record{
			Schema:    benchrec.SchemaVersion,
			CreatedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			Scale:     float64(*clients),
			Entries:   entries,
		}
		if err := benchrec.WriteFile(*outJSON, rec); err != nil {
			fmt.Fprintf(os.Stderr, "distjoin-load: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", *outJSON)
	}

	if len(errs) > 0 || total == 0 {
		os.Exit(1)
	}
}

type opParams struct {
	left, right string
	k, limit    int
	maxDist     float64
	page, pages int
}

// runOp issues one query of the given family, returning whether it
// completed (shed and failed queries don't count toward latency).
// wait accumulates the server-reported admission wait across the op's
// requests (an incremental op spans several).
func runOp(client *http.Client, base string, op opKind, p opParams, t *tally, wait *time.Duration) bool {
	switch op {
	case opKDist:
		return postOK(client, base+"/v1/join/k", map[string]any{
			"left": p.left, "right": p.right, "k": p.k,
		}, nil, t, wait)
	case opWithin:
		return postOK(client, base+"/v1/join/within", map[string]any{
			"left": p.left, "right": p.right, "max_dist": p.maxDist, "limit": p.limit,
		}, nil, t, wait)
	case opIncremental:
		var open struct {
			Cursor string `json:"cursor"`
			Done   bool   `json:"done"`
		}
		if !postOK(client, base+"/v1/join/incremental", map[string]any{
			"left": p.left, "right": p.right, "page_size": p.page,
		}, &open, t, wait) {
			return false
		}
		if open.Done || open.Cursor == "" {
			return true
		}
		for i := 1; i < p.pages; i++ {
			var next struct {
				Done bool `json:"done"`
			}
			if !postOK(client, base+"/v1/join/incremental/next", map[string]any{
				"cursor": open.Cursor, "page_size": p.page,
			}, &next, t, wait) {
				return false
			}
			if next.Done {
				return true
			}
		}
		return postOK(client, base+"/v1/join/incremental/close", map[string]any{
			"cursor": open.Cursor,
		}, nil, t, wait)
	}
	return false
}

// postOK posts a JSON body and decodes a 200 response into out (when
// non-nil). Non-200 statuses are never ignored: shed responses
// (429/503) are counted, anything else is recorded as an error with
// the server's message. When wait is non-nil, the server's
// X-Distjoin-Admission-Wait header (integer microseconds) is added to
// it.
func postOK(client *http.Client, url string, body any, out any, t *tally, wait *time.Duration) bool {
	b, err := json.Marshal(body)
	if err != nil {
		t.fail("marshal: %v", err)
		return false
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.fail("POST %s: %v", url, err)
		return false
	}
	defer drain(resp.Body)
	if wait != nil {
		if us, err := strconv.ParseInt(resp.Header.Get("X-Distjoin-Admission-Wait"), 10, 64); err == nil {
			*wait += time.Duration(us) * time.Microsecond
		}
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		t.shed++
		return false
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		t.fail("POST %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg))
		return false
	}
	if out == nil {
		return true
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.fail("POST %s: decode: %v", url, err)
		return false
	}
	return true
}

// checkExplain does one ?explain=1 k-distance query and validates the
// embedded trace timeline: events present, stage spans well-formed,
// and the digest's dist-calc total equal to the stats block's (both
// must read the same collector). Used by the CI smoke test.
func checkExplain(client *http.Client, base string, p opParams) error {
	b, _ := json.Marshal(map[string]any{"left": p.left, "right": p.right, "k": p.k})
	resp, err := client.Post(base+"/v1/join/k?explain=1", "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("explain query: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	qid := resp.Header.Get("X-Distjoin-Query-Id")
	if qid == "" {
		return fmt.Errorf("explain query: no X-Distjoin-Query-Id header")
	}
	var out struct {
		QueryID string `json:"query_id"`
		Stats   struct {
			DistCalcs int64 `json:"dist_calcs"`
		} `json:"stats"`
		Explain *struct {
			Events  []json.RawMessage `json:"events"`
			Summary struct {
				Stages []struct {
					Stage      string `json:"stage"`
					DurationUS int64  `json:"duration_us"`
				} `json:"stages"`
				DistCalcs int64 `json:"dist_calcs"`
			} `json:"summary"`
		} `json:"explain"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("explain query: decode: %v", err)
	}
	if out.QueryID != qid {
		return fmt.Errorf("explain query: body query_id %q != header %q", out.QueryID, qid)
	}
	if out.Explain == nil {
		return fmt.Errorf("explain query: response has no explain block")
	}
	if len(out.Explain.Events) == 0 || len(out.Explain.Summary.Stages) == 0 {
		return fmt.Errorf("explain query: empty timeline (events=%d stages=%d)",
			len(out.Explain.Events), len(out.Explain.Summary.Stages))
	}
	if out.Explain.Summary.DistCalcs != out.Stats.DistCalcs {
		return fmt.Errorf("explain dist_calcs %d != stats dist_calcs %d",
			out.Explain.Summary.DistCalcs, out.Stats.DistCalcs)
	}
	return nil
}

// validateRequestLog asserts that path holds at least one structured
// request-log line: parseable JSON with msg "request" and the keys the
// serving layer documents (docs/observability.md). The CI smoke test
// runs this against the demo server's stderr.
func validateRequestLog(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // startup noise from the plain logger is fine
		}
		if rec["msg"] != "request" {
			continue
		}
		for _, key := range []string{
			"query_id", "family", "status", "admission_wait_us",
			"queue_depth_at_entry", "deadline_ms", "elapsed_ms",
			"dist_calcs", "results", "slow",
		} {
			if _, ok := rec[key]; !ok {
				return fmt.Errorf("%s: request log line missing key %q: %s", path, key, sc.Text())
			}
		}
		return nil
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%s: no parseable request log line among %d lines", path, lines)
}

// percentile returns the pth percentile of sorted latencies
// (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (p*len(sorted) + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// drain fully reads and closes a response body so the client can
// reuse the connection.
func drain(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}
