// Command distjoin-sim drives the deterministic simulation harness of
// internal/simtest from the command line: seed sweeps, time-boxed
// soaks, and one-shot reproduction of the -seed= / -schedule= repro
// lines the harness prints on failure.
//
// Usage:
//
//	distjoin-sim -seed 1 -seeds 100             # check seeds 1..100
//	distjoin-sim -duration 5m -faults           # soak until the clock runs out
//	distjoin-sim -seed 1234                     # reproduce a logic failure
//	distjoin-sim -seed 1234 -schedule AM-KDJ:reload:3   # reproduce a fault failure
//
// Fault exploration (-faults) samples -points injection points per
// (algorithm, target); -points 0 explores every counted point, which
// can be slow for the HS baselines under tight queue memory.
//
// Exit status is 0 when every scenario passes and 1 on the first
// failure, whose one-line repro goes to stderr (and to -out when set,
// so CI can upload the failing seeds as an artifact).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"distjoin/internal/simtest"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "first (or only) scenario seed")
		seeds    = flag.Int("seeds", 1, "number of consecutive seeds to check")
		duration = flag.Duration("duration", 0, "run until this much time has passed (overrides -seeds)")
		schedule = flag.String("schedule", "", "reproduce one fault schedule (algo:target:point) against -seed")
		faults   = flag.Bool("faults", false, "explore fault schedules for every checked seed")
		points   = flag.Int("points", 8, "fault points sampled per (algorithm, target); 0 = exhaustive")
		out      = flag.String("out", "", "write failure repro lines to this file")
		verbose  = flag.Bool("v", false, "print every scenario as it runs")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "distjoin-sim: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		if *out != "" {
			if werr := os.WriteFile(*out, []byte(err.Error()+"\n"), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "distjoin-sim: writing %s: %v\n", *out, werr)
			}
		}
		os.Exit(1)
	}

	// One-shot schedule reproduction.
	if *schedule != "" {
		sched, err := simtest.ParseSchedule(*schedule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distjoin-sim: %v\n", err)
			os.Exit(2)
		}
		s := simtest.FromSeed(*seed)
		if *verbose {
			fmt.Printf("running %s under schedule %s\n", s, sched)
		}
		if err := simtest.RunSchedule(s, sched); err != nil {
			fail(err)
		}
		fmt.Printf("ok: seed=%d schedule=%s fails closed\n", *seed, sched)
		return
	}

	start := time.Now()
	var deadline time.Time
	if *duration > 0 {
		deadline = start.Add(*duration)
	}
	checked := 0
	for cur := *seed; ; cur++ {
		if deadline.IsZero() {
			if checked >= *seeds {
				break
			}
		} else if !time.Now().Before(deadline) {
			break
		}
		s := simtest.FromSeed(cur)
		if *verbose {
			fmt.Printf("checking %s\n", s)
		}
		if err := simtest.Check(s); err != nil {
			fail(err)
		}
		if *faults {
			if err := simtest.ExploreFaults(s, simtest.ExploreOpts{MaxPointsPerTarget: *points}); err != nil {
				fail(err)
			}
		}
		checked++
	}
	fmt.Printf("ok: %d scenarios checked in %v (faults=%v)\n", checked, time.Since(start).Round(time.Millisecond), *faults)
}
