package main

import (
	"testing"

	"distjoin/internal/experiments"
)

func TestRunDispatch(t *testing.T) {
	cfg := experiments.Config{Scale: 0.002, Seed: 5}
	// One representative single-table and one multi-table experiment.
	tabs, err := run("table2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || tabs[0].ID != "table2" {
		t.Fatalf("table2 dispatch: %v", tabs)
	}
	tabs, err = run("fig12", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("fig12 produced %d tables", len(tabs))
	}
	if _, err := run("nope", cfg); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunAllIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	cfg := experiments.Config{Scale: 0.002, Seed: 5}
	tabs, err := run("all", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) < 15 {
		t.Fatalf("all produced only %d tables", len(tabs))
	}
}
