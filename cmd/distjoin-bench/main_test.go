package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"distjoin/internal/experiments"
	"distjoin/internal/trace"
)

func TestRunDispatch(t *testing.T) {
	cfg := experiments.Config{Scale: 0.002, Seed: 5}
	// One representative single-table and one multi-table experiment.
	tabs, err := run("table2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || tabs[0].ID != "table2" {
		t.Fatalf("table2 dispatch: %v", tabs)
	}
	tabs, err = run("fig12", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("fig12 produced %d tables", len(tabs))
	}
	if _, err := run("nope", cfg); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

// TestRunTraced drives the -trace mode end to end: the written file
// must be valid JSON and contain expansion, queue-spill, and
// compensation events (the acceptance shape of the observability PR).
func TestRunTraced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	cfg := experiments.Config{Scale: 0.01, Seed: 5}
	if err := runTraced(cfg, 200, path, ""); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Dropped uint64        `json:"dropped"`
		Events  []trace.Event `json:"events"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	counts := map[trace.Kind]int{}
	for _, ev := range dump.Events {
		counts[ev.Kind]++
	}
	for _, want := range []trace.Kind{trace.KindExpansion, trace.KindQueueSpill, trace.KindCompensation} {
		if counts[want] == 0 {
			t.Errorf("trace contains no %q events (got %v)", want, counts)
		}
	}
	for i := 1; i < len(dump.Events); i++ {
		if dump.Events[i].Seq <= dump.Events[i-1].Seq {
			t.Fatalf("event %d out of sequence: %d after %d", i, dump.Events[i].Seq, dump.Events[i-1].Seq)
		}
	}
}

func TestRunAllIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	cfg := experiments.Config{Scale: 0.002, Seed: 5}
	tabs, err := run("all", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) < 15 {
		t.Fatalf("all produced only %d tables", len(tabs))
	}
}
