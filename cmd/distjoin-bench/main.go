// Command distjoin-bench regenerates the paper's evaluation (§5): for
// every figure and table it runs the corresponding experiment on the
// TIGER-like synthetic workload and prints the same rows/series the
// paper reports, as aligned text or CSV.
//
// Usage:
//
//	distjoin-bench [-exp all|fig10|table2|fig11|fig12|fig13|fig14|fig15|
//	                     ablation-sweep|ablation-dq|ablation-correction|ablation-queue|ablation-estimator|ablation-split|queue-sizes]
//	               [-scale 0.05] [-seed N] [-queue-mem bytes] [-buffer bytes]
//	               [-parallel N] [-csv]
//
// scale=1.0 reproduces the paper's full data sizes (633,461 streets x
// 189,642 hydrographic objects, k up to 100,000); the default 0.05
// keeps the k/N ratios while finishing in minutes.
//
// Observability flags:
//
//	-trace out.json      run one traced AM-KDJ query (instead of -exp)
//	                     and write its stage events as JSON
//	-metrics-format f    with -trace: print the query's counters to
//	                     stdout as "json" or "prom" (Prometheus text)
//	-pprof addr          serve net/http/pprof on addr for the run
//
// Continuous-benchmark flags:
//
//	-bench-json out      run the perf suite (instead of -exp) and write
//	                     a schema-versioned record for cmd/benchdiff /
//	                     the CI regression gate; -bench-parallel adds
//	                     one n-worker AM-KDJ entry (default 8, 0 = none)
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"

	"distjoin/internal/benchrec"
	"distjoin/internal/experiments"
	"distjoin/internal/join"
	"distjoin/internal/metrics"
	"distjoin/internal/trace"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (all, fig10, table2, fig11, fig12, fig13, fig14, fig15, ablation-sweep, ablation-dq, ablation-correction, ablation-queue, ablation-estimator, ablation-split, queue-sizes)")
		scale     = flag.Float64("scale", 0.05, "workload scale relative to the paper's data sizes")
		seed      = flag.Int64("seed", 0, "data generator seed (0 = default)")
		queueMem  = flag.Int("queue-mem", 0, "in-memory main queue bytes (0 = paper's 512 KB)")
		buffer    = flag.Int("buffer", 0, "R-tree buffer pool bytes (0 = paper's 512 KB)")
		parallel  = flag.Int("parallel", 1, "expansion workers per query: 1 = serial (paper-exact), n > 1 = n workers, 0 = one per CPU")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		svgDir    = flag.String("svg", "", "also write one SVG line chart per chartable table into this directory")
		tracePath = flag.String("trace", "", "run one traced AM-KDJ query (instead of -exp) and write its stage events as JSON to this file")
		traceK    = flag.Int("trace-k", 1000, "stopping cardinality k of the traced query")
		mFormat   = flag.String("metrics-format", "", "with -trace: print the traced query's metrics to stdout as \"json\" or \"prom\"")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
		benchJSON = flag.String("bench-json", "", "run the continuous-benchmark suite (instead of -exp) and write the perf record to this file")
		benchPar  = flag.Int("bench-parallel", 8, "with -bench-json: worker count of the extra parallel AM-KDJ entry (0 = skip it)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "distjoin-bench: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	cfg := experiments.Config{
		Scale:         *scale,
		Seed:          *seed,
		QueueMemBytes: *queueMem,
		BufferBytes:   *buffer,
		Parallelism:   *parallel,
	}
	if *parallel == 0 {
		cfg.Parallelism = join.AutoParallelism
	}

	if *mFormat != "" && *mFormat != "json" && *mFormat != "prom" {
		fmt.Fprintf(os.Stderr, "distjoin-bench: -metrics-format must be \"json\" or \"prom\", got %q\n", *mFormat)
		os.Exit(1)
	}

	if *tracePath != "" {
		if err := runTraced(cfg, *traceK, *tracePath, *mFormat); err != nil {
			fmt.Fprintf(os.Stderr, "distjoin-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		rec, err := experiments.PerfRecord(cfg, *benchPar)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distjoin-bench: %v\n", err)
			os.Exit(1)
		}
		if err := benchrec.WriteFile(*benchJSON, rec); err != nil {
			fmt.Fprintf(os.Stderr, "distjoin-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d bench entries (schema %d, scale %g, seed %d) to %s\n",
			len(rec.Entries), rec.Schema, rec.Scale, rec.Seed, *benchJSON)
		return
	}

	tabs, err := run(*exp, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distjoin-bench: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tabs {
		if *csv {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			t.Fprint(os.Stdout)
		}
	}
	if *svgDir != "" {
		if err := writeSVGs(*svgDir, tabs); err != nil {
			fmt.Fprintf(os.Stderr, "distjoin-bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeSVGs renders every chartable table as <dir>/<id>.svg;
// non-numeric tables (e.g. table2) are skipped with a note.
func writeSVGs(dir string, tabs []*experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range tabs {
		path := filepath.Join(dir, t.ID+".svg")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = t.SVG(f)
		cerr := f.Close()
		if err != nil {
			os.Remove(path)
			fmt.Fprintf(os.Stderr, "note: %s not chartable (%v)\n", t.ID, err)
			continue
		}
		if cerr != nil {
			return cerr
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// traceCapacity bounds the traced query's event ring. Large enough
// that the stage markers of a -trace-k sized run are never overwritten
// by later expansion events (~13 MB at ~200 bytes/event).
const traceCapacity = 1 << 16

// runTraced executes one AM-KDJ query on the standard workload with a
// tracer installed and writes the event time line as JSON to path. The
// queue memory is deliberately small so the hybrid queue's spill/
// reload machinery fires, and the query runs twice when needed: once
// with the estimated eDmax and — if that run never left the aggressive
// stage — once more with a forced underestimate (half the true k-th
// pair distance), which guarantees a compensation pass appears in the
// trace. With -metrics-format the final run's counters go to stdout.
func runTraced(cfg experiments.Config, k int, path, metricsFormat string) error {
	if k <= 0 {
		return fmt.Errorf("-trace-k must be positive, got %d", k)
	}
	w, err := experiments.Load(cfg)
	if err != nil {
		return err
	}
	tr := trace.New(traceCapacity)
	// Small queue memory: at -trace-k scale the main queue overflows
	// its heap bound and exercises splitHeap/swapIn, so the trace
	// contains queue_spill (and usually queue_reload) events.
	opts := join.Options{Trace: tr, QueueMemBytes: 4096}
	res, err := runTracedKDJ(w, k, opts)
	if err != nil {
		return err
	}
	if tr.CountKind(trace.KindCompensation) == 0 && len(res.pairs) > 0 {
		// The estimate covered k outright. Re-run with a guaranteed
		// underestimate: fewer than k pairs lie within half the true
		// k-th distance, so the aggressive stage must fall short and
		// the compensation stage must run.
		if dk := res.pairs[len(res.pairs)-1].Dist; dk > 0 {
			tr.Reset()
			opts.EDmax = dk / 2
			if res, err = runTracedKDJ(w, k, opts); err != nil {
				return err
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tr.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Fprintf(os.Stderr, "wrote %d trace events (%d dropped) to %s\n", tr.Len(), tr.Dropped(), path)
	switch metricsFormat {
	case "json":
		return trace.WriteMetricsJSON(os.Stdout, res.mc)
	case "prom":
		return trace.WriteMetricsProm(os.Stdout, res.mc)
	}
	return nil
}

// tracedRun carries one traced query's outputs.
type tracedRun struct {
	pairs []join.Result
	mc    *metrics.Collector
}

// runTracedKDJ runs one cold AM-KDJ query with opts and returns its
// results and counters.
func runTracedKDJ(w *experiments.Workload, k int, opts join.Options) (tracedRun, error) {
	if err := w.ColdStart(); err != nil {
		return tracedRun{}, err
	}
	mc := &metrics.Collector{}
	opts.Metrics = mc
	pairs, err := join.AMKDJ(w.Streets, w.Hydro, k, opts)
	if err != nil {
		return tracedRun{}, err
	}
	return tracedRun{pairs: pairs, mc: mc}, nil
}

func run(exp string, cfg experiments.Config) ([]*experiments.Table, error) {
	one := func(t *experiments.Table, err error) ([]*experiments.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{t}, nil
	}
	switch exp {
	case "all":
		return experiments.All(cfg)
	case "fig10":
		return experiments.Fig10(cfg)
	case "table2":
		return one(experiments.Table2(cfg))
	case "fig11":
		return one(experiments.Fig11(cfg))
	case "fig12":
		return experiments.Fig12(cfg)
	case "fig13":
		return one(experiments.Fig13(cfg))
	case "fig14":
		return experiments.Fig14(cfg)
	case "fig15":
		return one(experiments.Fig15(cfg))
	case "ablation-sweep":
		return one(experiments.AblationSweep(cfg))
	case "ablation-dq":
		return one(experiments.AblationDQ(cfg))
	case "ablation-correction":
		return one(experiments.AblationCorrection(cfg))
	case "ablation-queue":
		return one(experiments.AblationQueue(cfg))
	case "ablation-estimator":
		return one(experiments.AblationEstimator(cfg))
	case "ablation-split":
		return one(experiments.AblationSplit(cfg))
	case "queue-sizes":
		return one(experiments.QueueSizes(cfg))
	default:
		return nil, fmt.Errorf("unknown experiment %q", exp)
	}
}
