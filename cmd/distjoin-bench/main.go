// Command distjoin-bench regenerates the paper's evaluation (§5): for
// every figure and table it runs the corresponding experiment on the
// TIGER-like synthetic workload and prints the same rows/series the
// paper reports, as aligned text or CSV.
//
// Usage:
//
//	distjoin-bench [-exp all|fig10|table2|fig11|fig12|fig13|fig14|fig15|
//	                     ablation-sweep|ablation-dq|ablation-correction|ablation-queue|ablation-estimator|ablation-split|queue-sizes]
//	               [-scale 0.05] [-seed N] [-queue-mem bytes] [-buffer bytes]
//	               [-parallel N] [-csv]
//
// scale=1.0 reproduces the paper's full data sizes (633,461 streets x
// 189,642 hydrographic objects, k up to 100,000); the default 0.05
// keeps the k/N ratios while finishing in minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"distjoin/internal/experiments"
	"distjoin/internal/join"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (all, fig10, table2, fig11, fig12, fig13, fig14, fig15, ablation-sweep, ablation-dq, ablation-correction, ablation-queue, ablation-estimator, ablation-split, queue-sizes)")
		scale    = flag.Float64("scale", 0.05, "workload scale relative to the paper's data sizes")
		seed     = flag.Int64("seed", 0, "data generator seed (0 = default)")
		queueMem = flag.Int("queue-mem", 0, "in-memory main queue bytes (0 = paper's 512 KB)")
		buffer   = flag.Int("buffer", 0, "R-tree buffer pool bytes (0 = paper's 512 KB)")
		parallel = flag.Int("parallel", 1, "expansion workers per query: 1 = serial (paper-exact), n > 1 = n workers, 0 = one per CPU")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		svgDir   = flag.String("svg", "", "also write one SVG line chart per chartable table into this directory")
	)
	flag.Parse()

	cfg := experiments.Config{
		Scale:         *scale,
		Seed:          *seed,
		QueueMemBytes: *queueMem,
		BufferBytes:   *buffer,
		Parallelism:   *parallel,
	}
	if *parallel == 0 {
		cfg.Parallelism = join.AutoParallelism
	}

	tabs, err := run(*exp, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distjoin-bench: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tabs {
		if *csv {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			t.Fprint(os.Stdout)
		}
	}
	if *svgDir != "" {
		if err := writeSVGs(*svgDir, tabs); err != nil {
			fmt.Fprintf(os.Stderr, "distjoin-bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeSVGs renders every chartable table as <dir>/<id>.svg;
// non-numeric tables (e.g. table2) are skipped with a note.
func writeSVGs(dir string, tabs []*experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range tabs {
		path := filepath.Join(dir, t.ID+".svg")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = t.SVG(f)
		cerr := f.Close()
		if err != nil {
			os.Remove(path)
			fmt.Fprintf(os.Stderr, "note: %s not chartable (%v)\n", t.ID, err)
			continue
		}
		if cerr != nil {
			return cerr
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

func run(exp string, cfg experiments.Config) ([]*experiments.Table, error) {
	one := func(t *experiments.Table, err error) ([]*experiments.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{t}, nil
	}
	switch exp {
	case "all":
		return experiments.All(cfg)
	case "fig10":
		return experiments.Fig10(cfg)
	case "table2":
		return one(experiments.Table2(cfg))
	case "fig11":
		return one(experiments.Fig11(cfg))
	case "fig12":
		return experiments.Fig12(cfg)
	case "fig13":
		return one(experiments.Fig13(cfg))
	case "fig14":
		return experiments.Fig14(cfg)
	case "fig15":
		return one(experiments.Fig15(cfg))
	case "ablation-sweep":
		return one(experiments.AblationSweep(cfg))
	case "ablation-dq":
		return one(experiments.AblationDQ(cfg))
	case "ablation-correction":
		return one(experiments.AblationCorrection(cfg))
	case "ablation-queue":
		return one(experiments.AblationQueue(cfg))
	case "ablation-estimator":
		return one(experiments.AblationEstimator(cfg))
	case "ablation-split":
		return one(experiments.AblationSplit(cfg))
	case "queue-sizes":
		return one(experiments.QueueSizes(cfg))
	default:
		return nil, fmt.Errorf("unknown experiment %q", exp)
	}
}
