// Command distjoin-server serves distance-join queries over HTTP: it
// bulk-loads one or more datasets into R-tree indexes and exposes the
// /v1 query API of internal/serving — k-distance joins, k closest
// pairs, within-distance joins, and paginated incremental joins —
// plus the observability surface (/metrics, /queries, /healthz,
// /debug/...) on one listener.
//
// Serve two dataset files:
//
//	distjoin-server -addr :8600 -data left=a.djds -data right=b.csv
//
// Or bring up a demo server over synthetic data:
//
//	distjoin-server -addr 127.0.0.1:0 -demo 5000 -addr-file /tmp/addr
//
// The server drains gracefully on SIGINT/SIGTERM: new queries are
// rejected with 503, queries already admitted run to completion
// (bounded by -drain), then the process exits 0. See docs/serving.md
// for the wire schema and cmd/distjoin-load for a load generator.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"distjoin"
	"distjoin/internal/datagen"
	"distjoin/internal/obsrv"
	"distjoin/internal/rtree"
	"distjoin/internal/serving"
)

// dataList collects repeated -data name=path flags.
type dataList []struct{ name, path string }

func (d *dataList) String() string {
	parts := make([]string, len(*d))
	for i, e := range *d {
		parts[i] = e.name + "=" + e.path
	}
	return strings.Join(parts, ",")
}

func (d *dataList) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*d = append(*d, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8600", "listen address (use \":0\" for an ephemeral port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts driving -addr :0)")
		demo        = flag.Int("demo", 0, "instead of -data files, serve synthetic datasets \"left\" and \"right\" with this many objects each")
		seed        = flag.Int64("seed", 42, "seed for -demo data")
		maxInFlight = flag.Int("max-inflight", 0, "queries executing concurrently (0 = GOMAXPROCS)")
		maxQueued   = flag.Int("max-queued", 0, "queries waiting for a slot before 429s (0 = 2x max-inflight)")
		defDeadline = flag.Duration("default-deadline", 0, "per-query deadline when the request sets none (0 = 30s)")
		maxDeadline = flag.Duration("max-deadline", 0, "clamp on client-requested deadlines (0 = 2m)")
		defQueueMem = flag.Int("default-queue-mem", 0, "per-query main-queue memory budget in bytes (0 = engine default)")
		maxQueueMem = flag.Int("max-queue-mem", 0, "clamp on client-requested queue memory (0 = 8 MiB)")
		maxK        = flag.Int("max-k", 0, "largest accepted k (0 = 100000)")
		maxCursors  = flag.Int("max-cursors", 0, "open incremental cursors allowed at once (0 = 64)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget before in-flight work is aborted")
		slowQuery   = flag.Duration("slow-query", 0, "slow-query threshold: requests strictly slower are logged at WARN and retained on /debug/slowlog (0 = 1s)")
		slowLogCap  = flag.Int("slowlog-capacity", 0, "slow-query records retained for /debug/slowlog (0 = 128)")
		requestLog  = flag.Bool("request-log", true, "emit one structured JSON log line per /v1 request on stderr")
	)
	var data dataList
	flag.Var(&data, "data", "dataset to serve as name=path (repeatable; .djds binary or .csv)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("distjoin-server: ")

	if len(data) == 0 && *demo <= 0 {
		fmt.Fprintln(os.Stderr, "distjoin-server: no datasets: pass -data name=path (repeatable) or -demo n")
		flag.Usage()
		os.Exit(2)
	}

	// The request log is structured JSON on stderr, one line per /v1
	// request, separate from the human-oriented startup/shutdown notes
	// that go through the plain log package.
	var reqLogger *slog.Logger
	if *requestLog {
		reqLogger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	reg := distjoin.NewRegistry()
	srv := serving.New(serving.Config{
		MaxInFlight:          *maxInFlight,
		MaxQueued:            *maxQueued,
		DefaultDeadline:      *defDeadline,
		MaxDeadline:          *maxDeadline,
		DefaultQueueMemBytes: *defQueueMem,
		MaxQueueMemBytes:     *maxQueueMem,
		MaxK:                 *maxK,
		MaxCursors:           *maxCursors,
		Registry:             reg,
		Logger:               reqLogger,
		SlowQueryThreshold:   *slowQuery,
		SlowLogCapacity:      *slowLogCap,
	})

	for _, e := range data {
		idx, err := loadIndex(e.path)
		check(err)
		check(srv.AddIndex(e.name, idx))
		log.Printf("loaded %q: %d objects from %s", e.name, idx.Len(), e.path)
	}
	if *demo > 0 {
		check(addDemo(srv, "left", datagen.Uniform(*seed, *demo, datagen.World, 0)))
		check(addDemo(srv, "right", datagen.GaussianClusters(*seed+1, *demo, 8, datagen.World, 500, 0)))
		log.Printf("demo datasets \"left\" and \"right\": %d objects each (seed %d)", *demo, *seed)
	}

	httpSrv, err := obsrv.ServeHandler(*addr, srv.Handler())
	check(err)
	if *addrFile != "" {
		check(os.WriteFile(*addrFile, []byte(httpSrv.Addr()+"\n"), 0o644))
	}
	log.Printf("serving on http://%s (drain budget %v)", httpSrv.Addr(), *drain)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	log.Printf("%v: draining...", got)

	// Drain order: the query scheduler first (rejects new queries,
	// waits for admitted ones), then the HTTP server (flushes in-flight
	// response bodies). Either step exceeding the budget escalates to a
	// hard stop so the process always exits.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain budget exceeded (%v); aborting in-flight queries", err)
		srv.Close()
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		check(httpSrv.Close())
	}
	log.Printf("stopped")
}

// addDemo registers synthetic items under name.
func addDemo(srv *serving.Server, name string, items []rtree.Item) error {
	idx, err := distjoin.NewIndex(toObjects(items), nil)
	if err != nil {
		return err
	}
	return srv.AddIndex(name, idx)
}

// loadIndex reads a dataset in either on-disk format (binary .djds or
// .csv, by extension) and bulk-loads it.
func loadIndex(path string) (*distjoin.Index, error) {
	var (
		items []rtree.Item
		err   error
	)
	if strings.HasSuffix(path, ".csv") {
		var f *os.File
		if f, err = os.Open(path); err != nil {
			return nil, err
		}
		items, err = datagen.ReadCSV(f)
		f.Close()
	} else {
		items, err = datagen.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return distjoin.NewIndex(toObjects(items), nil)
}

func toObjects(items []rtree.Item) []distjoin.Object {
	objs := make([]distjoin.Object, len(items))
	for i, it := range items {
		objs[i] = distjoin.Object{ID: it.Obj, Rect: it.Rect}
	}
	return objs
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "distjoin-server: %v\n", err)
		os.Exit(1)
	}
}
