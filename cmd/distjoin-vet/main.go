// Command distjoin-vet is the project lint suite driver. It runs the
// nine internal/analysis analyzers (floatcmp, nilhook, lockheld,
// promdrift, ctxpoll, poolsafe, mapdet, atomicmix, servecontract) in
// two modes:
//
//	go vet -vettool=$(pwd)/bin/distjoin-vet ./...
//
// speaks the cmd/go unit-checker protocol: -V=full prints the cache
// fingerprint, -flags declares no extra flags, and an invocation with
// a single *.cfg argument type-checks exactly one package unit from
// the export data cmd/go staged and exits 2 when findings exist.
//
//	distjoin-vet [patterns...]
//
// (no .cfg argument) loads the matching packages directly through the
// module-aware loader — the mode the tests, ad-hoc runs, and the CI
// SARIF/allow-report steps use. Patterns default to ./....
//
// Standalone-only flags (never declared to the cmd/go protocol, so
// `go vet -vettool` is unaffected):
//
//	-sarif <file|->     also write findings as SARIF 2.1.0
//	-check-sarif <file> structurally validate a SARIF document
//	-allow-report       list every //lint:allow suppression with its
//	                    reason; exit 2 on reasonless or unknown-analyzer
//	                    annotations
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"distjoin/internal/analysis"
)

func main() {
	versionFlag := flag.String("V", "", "if 'full', print version fingerprint and exit (cmd/go protocol)")
	flagsFlag := flag.Bool("flags", false, "print the JSON flag declarations and exit (cmd/go protocol)")
	sarifFlag := flag.String("sarif", "", "standalone mode: also write findings as SARIF 2.1.0 to the named file (or - for stdout)")
	checkSarifFlag := flag.String("check-sarif", "", "validate the named SARIF file against the 2.1.0 subset and exit")
	allowReportFlag := flag.Bool("allow-report", false, "list every //lint:allow suppression with its reason; exit 2 on reasonless or unknown-analyzer annotations")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: distjoin-vet [patterns...]  |  go vet -vettool=distjoin-vet ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion()
	case *flagsFlag:
		// No analyzer-selection flags: the suite always runs whole.
		fmt.Println("[]")
	case *checkSarifFlag != "":
		os.Exit(runCheckSarif(*checkSarifFlag))
	case *allowReportFlag:
		os.Exit(runAllowReport(flag.Args()))
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		os.Exit(runUnitchecker(flag.Arg(0)))
	default:
		os.Exit(runPatterns(flag.Args(), *sarifFlag))
	}
}

// printVersion emits the content-addressed fingerprint cmd/go uses as
// the vet cache key: rebuilding the tool invalidates prior results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("distjoin-vet version devel buildID=%x\n", h.Sum(nil))
}

// vetConfig mirrors the JSON file cmd/go writes for each unit under
// `go vet -vettool` (the subset this driver consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes one package unit described by a cmd/go
// vet.cfg file and returns the process exit code (0 clean, 1 tool
// failure, 2 findings).
func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}
	// The suite exports no facts, so downstream units need nothing from
	// this one: write the (empty) facts file unconditionally so cmd/go
	// finds what the config promised.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return fail(err)
		}
	}
	if cfg.VetxOnly {
		return 0 // facts-only invocation: nothing to report
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			return fail(err)
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{Importer: imp}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		return fail(fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err))
	}
	unit := &analysis.Unit{
		PkgPath: cfg.ImportPath,
		Fset:    fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
	}
	diags, err := analysis.RunUnit(unit, analysis.Suite())
	if err != nil {
		return fail(err)
	}
	return report(diags)
}

// runPatterns is the standalone mode: load packages by go list
// patterns and analyze them all, optionally mirroring the findings to
// a SARIF file for CI upload.
func runPatterns(patterns []string, sarifOut string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := &analysis.Loader{}
	units, err := loader.LoadPatterns(patterns...)
	if err != nil {
		return fail(err)
	}
	var all []analysis.Diagnostic
	for _, u := range units {
		diags, err := analysis.RunUnit(u, analysis.Suite())
		if err != nil {
			return fail(err)
		}
		all = append(all, diags...)
	}
	if sarifOut != "" {
		if err := writeSARIFFile(sarifOut, all); err != nil {
			return fail(err)
		}
	}
	return report(all)
}

// writeSARIFFile renders diags as SARIF relative to the working
// directory (the module root in CI).
func writeSARIFFile(path string, diags []analysis.Diagnostic) error {
	root, err := os.Getwd()
	if err != nil {
		return err
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return analysis.WriteSARIF(w, root, analysis.Suite(), diags)
}

// runCheckSarif validates a SARIF document and reports the verdict.
func runCheckSarif(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(err)
	}
	if err := analysis.ValidateSARIF(data); err != nil {
		return fail(err)
	}
	fmt.Printf("%s: valid SARIF %s\n", path, "2.1.0")
	return 0
}

// runAllowReport lists every suppression with its reason and fails on
// malformed ones, so a reasonless //lint:allow cannot merge silently.
func runAllowReport(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := &analysis.Loader{}
	units, err := loader.LoadPatterns(patterns...)
	if err != nil {
		return fail(err)
	}
	allows, malformed := analysis.CollectAllows(units, analysis.Suite())
	for _, a := range allows {
		fmt.Printf("%s:%d: %s: %s\n", a.File, a.Line, a.Analyzer, a.Reason)
	}
	fmt.Printf("%d suppression(s)\n", len(allows))
	if len(malformed) > 0 {
		for _, d := range malformed {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		}
		return 2
	}
	return 0
}

// report prints findings in the file:line:col form cmd/go relays and
// returns the exit code.
func report(diags []analysis.Diagnostic) int {
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	return 2
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "distjoin-vet: %v\n", err)
	return 1
}
