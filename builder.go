package distjoin

import (
	"fmt"

	"distjoin/internal/rtree"
	"distjoin/internal/storage"
)

// Builder is a mutable in-memory R*-tree for workloads that accumulate
// and remove objects over time. Query-time structures (Index) are
// immutable; call Snapshot to freeze the current contents into an
// Index for join queries. Insertion uses the full R*-tree algorithm
// (choose-subtree, forced reinsertion, topological split); deletion
// condenses underfull nodes.
//
// A Builder is not safe for concurrent use; Snapshots are independent
// of later Builder mutations and are safe for concurrent queries.
type Builder struct {
	b        *rtree.Builder
	pageSize int
}

// NewBuilder returns an empty mutable index with the given
// configuration (nil selects the defaults used by NewIndex).
func NewBuilder(cfg *IndexConfig) (*Builder, error) {
	rb, err := rtree.NewBuilderForPageSize(cfg.pageSize())
	if err != nil {
		return nil, err
	}
	return &Builder{b: rb, pageSize: cfg.pageSize()}, nil
}

// Insert adds one object.
func (b *Builder) Insert(o Object) error {
	if !o.Rect.Valid() {
		return fmt.Errorf("distjoin: object %d has invalid rect %v", o.ID, o.Rect)
	}
	if o.ID < 0 || o.ID >= 1<<48 {
		return fmt.Errorf("distjoin: object ID %d out of range [0, 2^48)", o.ID)
	}
	b.b.Insert(o.Rect, o.ID)
	return nil
}

// Delete removes the object with the given ID and exact rectangle,
// reporting whether it was present.
func (b *Builder) Delete(o Object) bool {
	return b.b.Delete(o.Rect, o.ID)
}

// BulkReplace discards the current contents and bulk-loads objects
// (Sort-Tile-Recursive packing — much faster than repeated Insert for
// large initial loads).
func (b *Builder) BulkReplace(objects []Object) error {
	items := make([]rtree.Item, len(objects))
	for i, o := range objects {
		if !o.Rect.Valid() {
			return fmt.Errorf("distjoin: object %d has invalid rect %v", o.ID, o.Rect)
		}
		if o.ID < 0 || o.ID >= 1<<48 {
			return fmt.Errorf("distjoin: object ID %d out of range [0, 2^48)", o.ID)
		}
		items[i] = rtree.Item{Rect: o.Rect, Obj: o.ID}
	}
	b.b.BulkLoad(items)
	return nil
}

// Len returns the number of stored objects.
func (b *Builder) Len() int { return b.b.Size() }

// Bounds returns the MBR of all stored objects.
func (b *Builder) Bounds() Rect { return b.b.Bounds() }

// Search invokes fn for every stored object intersecting query;
// returning false stops early.
func (b *Builder) Search(query Rect, fn func(Object) bool) {
	b.b.Search(query, func(it rtree.Item) bool {
		return fn(Object{ID: it.Obj, Rect: it.Rect})
	})
}

// Snapshot freezes the current contents into an immutable, paged Index
// for join queries. Later Builder mutations do not affect the snapshot.
func (b *Builder) Snapshot(cfg *IndexConfig) (*Index, error) {
	tree, err := b.b.Pack(storage.NewMemStore(b.pageSize), cfg.bufferBytes())
	if err != nil {
		return nil, err
	}
	return &Index{tree: tree}, nil
}

// SnapshotFile freezes the current contents into an Index persisted at
// path (reopen with OpenIndexFile).
func (b *Builder) SnapshotFile(path string, cfg *IndexConfig) (*Index, error) {
	store, err := storage.CreateFileStore(path, b.pageSize)
	if err != nil {
		return nil, err
	}
	tree, err := b.b.Pack(store, cfg.bufferBytes())
	if err != nil {
		store.Close()
		return nil, err
	}
	return &Index{tree: tree}, nil
}

// TreeStats describes the structure of an Index's R-tree, for capacity
// planning and diagnostics.
type TreeStats struct {
	// Objects is the number of indexed objects.
	Objects int
	// Height is the number of tree levels (1 = the root is a leaf).
	Height int
	// Nodes is the total node (page) count.
	Nodes int
	// NodesPerLevel counts nodes by level, leaves first.
	NodesPerLevel []int
	// AvgLeafFill is the mean leaf utilization relative to capacity.
	AvgLeafFill float64
	// PageSize is the node page size in bytes.
	PageSize int
}

// Stats walks the index and returns its structural statistics.
func (idx *Index) Stats() (TreeStats, error) {
	st := TreeStats{
		Objects:       idx.tree.Size(),
		Height:        idx.tree.Height(),
		Nodes:         idx.tree.NumNodes(),
		NodesPerLevel: make([]int, idx.tree.Height()),
		PageSize:      idx.tree.Pool().PageSize(),
	}
	capacity := rtree.PageCapacity(st.PageSize)
	leafEntries := 0
	err := idx.tree.Walk(func(_ storage.PageID, n *rtree.Node) error {
		if n.Level < len(st.NodesPerLevel) {
			st.NodesPerLevel[n.Level]++
		}
		if n.IsLeaf() {
			leafEntries += len(n.Entries)
		}
		return nil
	})
	if err != nil {
		return TreeStats{}, err
	}
	if leaves := st.NodesPerLevel[0]; leaves > 0 && capacity > 0 {
		st.AvgLeafFill = float64(leafEntries) / float64(leaves*capacity)
	}
	return st, nil
}
