package distjoin

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestFacadeInputValidation covers the defensive checks added to the
// public entry points: nil/zero indexes, non-positive k, and NaN
// distance thresholds must produce errors, never panics.
func TestFacadeInputValidation(t *testing.T) {
	idx, err := NewIndex(randObjects(rand.New(rand.NewSource(40)), 50, 100, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := func(Pair) bool { return true }
	ksink := func([]Pair) bool { return true }

	for name, call := range map[string]func() error{
		"KDistanceJoin/nil-left":  func() error { _, err := KDistanceJoin(nil, idx, 5, nil); return err },
		"KDistanceJoin/nil-right": func() error { _, err := KDistanceJoin(idx, nil, 5, nil); return err },
		"KDistanceJoin/zero-idx":  func() error { _, err := KDistanceJoin(idx, &Index{}, 5, nil); return err },
		"KDistanceJoin/k=0":       func() error { _, err := KDistanceJoin(idx, idx, 0, nil); return err },
		"KDistanceJoin/k<0":       func() error { _, err := KDistanceJoin(idx, idx, -3, nil); return err },
		"IncrementalJoin/nil":     func() error { _, err := IncrementalJoin(nil, idx, nil); return err },
		"WithinJoin/nil":          func() error { return WithinJoin(nil, idx, 1, nil, sink) },
		"WithinJoin/NaN":          func() error { return WithinJoin(idx, idx, math.NaN(), nil, sink) },
		"AllNearest/nil":          func() error { return AllNearest(idx, nil, nil, sink) },
		"KNNJoin/nil":             func() error { return KNNJoin(nil, idx, 3, nil, ksink) },
		"KNNJoin/k=0":             func() error { return KNNJoin(idx, idx, 0, nil, ksink) },
	} {
		if err := call(); err == nil {
			t.Errorf("%s: expected an error, got nil", name)
		}
	}

	// +Inf maxDist stays valid: it means "no distance limit".
	n := 0
	if err := WithinJoin(idx, idx, math.Inf(1), nil, func(Pair) bool { n++; return true }); err != nil {
		t.Fatalf("+Inf maxDist rejected: %v", err)
	}
	if want := idx.Len() * idx.Len(); n != want {
		t.Fatalf("+Inf WithinJoin produced %d pairs, want %d", n, want)
	}
}

// TestTraceThroughFacade runs a traced join through the public API and
// checks the tracer saw the query and the stats exporters emit
// parseable output.
func TestTraceThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	left, err := NewIndex(randObjects(rng, 300, 1000, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	right, err := NewIndex(randObjects(rng, 250, 1000, 10), nil)
	if err != nil {
		t.Fatal(err)
	}

	tr := NewTracer(DefaultTraceCapacity)
	stats := &Stats{}
	pairs, err := KDistanceJoin(left, right, 100, &Options{Trace: tr, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 100 {
		t.Fatalf("%d pairs", len(pairs))
	}
	if tr.Len() == 0 {
		t.Fatal("tracer recorded no events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace JSON invalid")
	}

	buf.Reset()
	if err := WriteStatsJSON(&buf, stats); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("stats JSON invalid: %v", err)
	}
	if _, ok := obj["DistCalcs"]; !ok {
		t.Error("stats JSON missing DistCalcs")
	}

	buf.Reset()
	if err := WriteStatsProm(&buf, stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "distjoin_real_dist_calcs_total") {
		t.Error("prom stats missing distjoin_real_dist_calcs_total")
	}

	// A second traced run with parallel workers must match the serial
	// results through the facade too.
	tr2 := NewTracer(0)
	par, err := KDistanceJoin(left, right, 100, &Options{Trace: tr2, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range par {
		if par[i] != pairs[i] {
			t.Fatalf("parallel traced pair %d = %+v, want %+v", i, par[i], pairs[i])
		}
	}
}
