package distjoin

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestFacadeInputValidation covers the defensive checks added to the
// public entry points: nil/zero indexes, non-positive k, and NaN
// distance thresholds must produce errors, never panics.
func TestFacadeInputValidation(t *testing.T) {
	idx, err := NewIndex(randObjects(rand.New(rand.NewSource(40)), 50, 100, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := func(Pair) bool { return true }
	ksink := func([]Pair) bool { return true }

	for name, call := range map[string]func() error{
		"KDistanceJoin/nil-left":  func() error { _, err := KDistanceJoin(nil, idx, 5, nil); return err },
		"KDistanceJoin/nil-right": func() error { _, err := KDistanceJoin(idx, nil, 5, nil); return err },
		"KDistanceJoin/zero-idx":  func() error { _, err := KDistanceJoin(idx, &Index{}, 5, nil); return err },
		"KDistanceJoin/k=0":       func() error { _, err := KDistanceJoin(idx, idx, 0, nil); return err },
		"KDistanceJoin/k<0":       func() error { _, err := KDistanceJoin(idx, idx, -3, nil); return err },
		"IncrementalJoin/nil":     func() error { _, err := IncrementalJoin(nil, idx, nil); return err },
		"WithinJoin/nil":          func() error { return WithinJoin(nil, idx, 1, nil, sink) },
		"WithinJoin/NaN":          func() error { return WithinJoin(idx, idx, math.NaN(), nil, sink) },
		"AllNearest/nil":          func() error { return AllNearest(idx, nil, nil, sink) },
		"KNNJoin/nil":             func() error { return KNNJoin(nil, idx, 3, nil, ksink) },
		"KNNJoin/k=0":             func() error { return KNNJoin(idx, idx, 0, nil, ksink) },
	} {
		if err := call(); err == nil {
			t.Errorf("%s: expected an error, got nil", name)
		}
	}

	// +Inf maxDist stays valid: it means "no distance limit".
	n := 0
	if err := WithinJoin(idx, idx, math.Inf(1), nil, func(Pair) bool { n++; return true }); err != nil {
		t.Fatalf("+Inf maxDist rejected: %v", err)
	}
	if want := idx.Len() * idx.Len(); n != want {
		t.Fatalf("+Inf WithinJoin produced %d pairs, want %d", n, want)
	}
}

// TestTraceThroughFacade runs a traced join through the public API and
// checks the tracer saw the query and the stats exporters emit
// parseable output.
func TestTraceThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	left, err := NewIndex(randObjects(rng, 300, 1000, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	right, err := NewIndex(randObjects(rng, 250, 1000, 10), nil)
	if err != nil {
		t.Fatal(err)
	}

	tr := NewTracer(DefaultTraceCapacity)
	stats := &Stats{}
	pairs, err := KDistanceJoin(left, right, 100, &Options{Trace: tr, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 100 {
		t.Fatalf("%d pairs", len(pairs))
	}
	if tr.Len() == 0 {
		t.Fatal("tracer recorded no events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace JSON invalid")
	}

	buf.Reset()
	if err := WriteStatsJSON(&buf, stats); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("stats JSON invalid: %v", err)
	}
	if _, ok := obj["DistCalcs"]; !ok {
		t.Error("stats JSON missing DistCalcs")
	}

	buf.Reset()
	if err := WriteStatsProm(&buf, stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "distjoin_real_dist_calcs_total") {
		t.Error("prom stats missing distjoin_real_dist_calcs_total")
	}

	// A second traced run with parallel workers must match the serial
	// results through the facade too.
	tr2 := NewTracer(0)
	par, err := KDistanceJoin(left, right, 100, &Options{Trace: tr2, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range par {
		if par[i] != pairs[i] {
			t.Fatalf("parallel traced pair %d = %+v, want %+v", i, par[i], pairs[i])
		}
	}
}

// TestRegistryThroughFacade is the PR's acceptance test: the
// observability handler serves /metrics, /queries, /healthz, and
// /debug/pprof/ concurrently with an 8-worker parallel join (run under
// -race in CI), and the registry ends up with consistent aggregates.
func TestRegistryThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	left, err := NewIndex(randObjects(rng, 1500, 10000, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	right, err := NewIndex(randObjects(rng, 1200, 10000, 10), nil)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	srv := httptest.NewServer(ObservabilityHandler(reg))
	defer srv.Close()

	const rounds = 3
	var wg sync.WaitGroup
	wg.Add(1)
	errs := make(chan error, rounds)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			_, err := KDistanceJoin(left, right, 400, &Options{
				Registry:    reg,
				Parallelism: 8,
			})
			if err != nil {
				errs <- err
				return
			}
		}
	}()

	// Hammer every endpoint while the parallel joins run.
	joinsDone := make(chan struct{})
	go func() { wg.Wait(); close(joinsDone) }()
	paths := []string{"/metrics", "/queries", "/healthz", "/debug/pprof/"}
	for done := false; !done; {
		select {
		case <-joinsDone:
			done = true
		default:
		}
		for _, p := range paths {
			resp, err := srv.Client().Get(srv.URL + p)
			if err != nil {
				t.Fatalf("GET %s during parallel join: %v", p, err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != 200 {
				t.Fatalf("GET %s during parallel join: status %d, read err %v", p, resp.StatusCode, err)
			}
			if p == "/queries" && !json.Valid(body) {
				t.Fatalf("/queries invalid JSON during parallel join:\n%.200s", body)
			}
		}
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	s := reg.Snapshot()
	if len(s.InFlight) != 0 {
		t.Fatalf("in-flight after joins finished: %+v", s.InFlight)
	}
	if len(s.Algos) != 1 || s.Algos[0].Algo != "AM-KDJ" || s.Algos[0].Queries != rounds {
		t.Fatalf("aggregates = %+v, want %d AM-KDJ queries", s.Algos, rounds)
	}
	if s.Algos[0].Latency.Count != rounds || s.Algos[0].EstimateRatio.Count != rounds {
		t.Fatalf("histograms not fed: %+v", s.Algos[0])
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `distjoin_queries_total{algo="AM-KDJ"} `+strconv.Itoa(rounds)) {
		t.Fatalf("/metrics missing the completed queries:\n%.400s", body)
	}
}

// TestIteratorCloseEndsRegistryEntry: an incremental join abandoned
// early stays in the live inspector until Close, which completes its
// registry entry; double Close is harmless.
func TestIteratorCloseEndsRegistryEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	left, _ := NewIndex(randObjects(rng, 200, 1000, 10), nil)
	right, _ := NewIndex(randObjects(rng, 150, 1000, 10), nil)

	reg := NewRegistry()
	it, err := IncrementalJoin(left, right, &Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("incremental join produced nothing")
	}
	if s := reg.Snapshot(); len(s.InFlight) != 1 {
		t.Fatalf("in-flight = %+v, want the live incremental query", s.InFlight)
	}
	it.Close()
	it.Close()
	s := reg.Snapshot()
	if len(s.InFlight) != 0 {
		t.Fatalf("Close did not end the query: %+v", s.InFlight)
	}
	if len(s.Algos) != 1 || s.Algos[0].Queries != 1 {
		t.Fatalf("aggregates after Close: %+v", s.Algos)
	}
	// Close on an iterator without a registry must also be safe.
	it2, err := IncrementalJoin(left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	it2.Close()
}

// TestDefaultRegistry pins the singleton behavior and the Reset
// hygiene contract: because the default registry is process-global,
// repeated test runs in one process (go test -count=2) must be able
// to return it to a pristine state instead of accumulating stale
// aggregates across iterations.
func TestDefaultRegistry(t *testing.T) {
	a, b := DefaultRegistry(), DefaultRegistry()
	if a == nil || a != b {
		t.Fatalf("DefaultRegistry not a singleton: %p vs %p", a, b)
	}
	// Leave the singleton exactly as this test found it, whatever other
	// tests have already folded into it.
	defer a.Reset()
	a.Reset()
	if s := a.Snapshot(); len(s.Algos) != 0 {
		t.Fatalf("aggregates survive Reset: %+v", s.Algos)
	}
}
