package distjoin

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Indexes are safe for concurrent queries: the buffer pool serializes
// page access and every query carries its own queues and counters.
func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randObjects(rng, 800, 2000, 10)
	b := randObjects(rng, 800, 2000, 10)
	left, err := NewIndex(a, &IndexConfig{BufferBytes: 8192}) // tiny buffer: heavy contention
	if err != nil {
		t.Fatal(err)
	}
	right, err := NewIndex(b, &IndexConfig{BufferBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	want, err := KDistanceJoin(left, right, 60, nil)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			algo := []Algorithm{AMKDJ, BKDJ, HSKDJ}[w%3]
			for i := 0; i < 5; i++ {
				got, err := KDistanceJoin(left, right, 60, &Options{Algorithm: algo})
				if err != nil {
					errs <- err
					return
				}
				for j := range got {
					if math.Abs(got[j].Dist-want[j].Dist) > 1e-9 {
						errs <- errMismatch(algo, j)
						return
					}
				}
			}
			// Interleave reads through the other entry points too.
			if err := left.Search(NewRect(0, 0, 500, 500), func(Object) bool { return true }); err != nil {
				errs <- err
				return
			}
			if _, _, err := right.Nearest(PointRect(100, 100), 5); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch2 struct {
	algo Algorithm
	i    int
}

func (e errMismatch2) Error() string {
	return e.algo.String() + ": concurrent result mismatch"
}

func errMismatch(a Algorithm, i int) error { return errMismatch2{algo: a, i: i} }

// TestConcurrentParallelQueries layers worker-pool execution on top of
// concurrent callers: many goroutines issue parallel (Parallelism > 1)
// k-distance and incremental joins against the same two indexes
// through a deliberately tiny shared buffer pool. Every query must
// return exactly the serial answer — parallel execution is
// deterministic — and the whole stampede must be race-clean (this test
// is a primary -race target).
func TestConcurrentParallelQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randObjects(rng, 700, 2000, 10)
	b := randObjects(rng, 700, 2000, 10)
	left, err := NewIndex(a, &IndexConfig{BufferBytes: 8192}) // tiny buffer: heavy contention
	if err != nil {
		t.Fatal(err)
	}
	right, err := NewIndex(b, &IndexConfig{BufferBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	want, err := KDistanceJoin(left, right, 80, nil)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 9
	var wg sync.WaitGroup
	fail := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			par := []int{2, 4, AutoParallelism}[w%3]
			if w%2 == 0 {
				// Parallel k-distance joins, alternating algorithms.
				algo := []Algorithm{AMKDJ, BKDJ}[w%4/2]
				for i := 0; i < 4; i++ {
					got, err := KDistanceJoin(left, right, 80, &Options{Algorithm: algo, Parallelism: par})
					if err != nil {
						fail <- err.Error()
						return
					}
					for j := range got {
						if got[j] != want[j] {
							fail <- algo.String() + ": parallel result diverged from serial"
							return
						}
					}
				}
				return
			}
			// Parallel incremental iterators.
			it, err := IncrementalJoin(left, right, &Options{BatchK: 25, Parallelism: par})
			if err != nil {
				fail <- err.Error()
				return
			}
			for i := 0; i < len(want); i++ {
				p, ok := it.Next()
				if !ok {
					fail <- "parallel iterator exhausted early"
					return
				}
				if p != want[i] {
					fail <- "parallel iterator diverged from serial"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}

// Concurrent incremental iterators over the same indexes are
// independent.
func TestConcurrentIterators(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randObjects(rng, 400, 1000, 10)
	b := randObjects(rng, 400, 1000, 10)
	left, _ := NewIndex(a, nil)
	right, _ := NewIndex(b, nil)
	want, err := KDistanceJoin(left, right, 100, nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			it, err := IncrementalJoin(left, right, &Options{BatchK: 30})
			if err != nil {
				fail <- err.Error()
				return
			}
			for i := 0; i < 100; i++ {
				p, ok := it.Next()
				if !ok {
					fail <- "iterator exhausted early"
					return
				}
				if math.Abs(p.Dist-want[i].Dist) > 1e-9 {
					fail <- "iterator result mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}
