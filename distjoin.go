// Package distjoin implements spatial distance join processing over
// R*-tree indexes, reproducing "Adaptive Multi-Stage Distance Join
// Processing" (Shin, Moon, Lee — ACM SIGMOD 2000).
//
// A spatial distance join ranks pairs of objects from two data sets by
// the distance between them and returns the k nearest pairs — "find
// the k closest hotel/restaurant pairs" — either with k known up front
// (k-distance join) or incrementally with no preset bound (incremental
// distance join). This package provides:
//
//   - Index: a paged R*-tree over rectangle (MBR) objects, built in
//     memory or persisted to a file.
//   - KDistanceJoin: the k-distance join, with a choice of algorithms —
//     the paper's AM-KDJ (adaptive multi-stage, the default), B-KDJ
//     (bidirectional expansion with optimized plane sweep), the HS-KDJ
//     baseline, and the SJ-SORT spatial-join-then-sort baseline.
//   - IncrementalJoin: the incremental distance join, returning an
//     iterator (AM-IDJ by default, HS-IDJ as baseline).
//
// Quick start:
//
//	hotels, _ := distjoin.NewIndex(hotelObjs)
//	rests, _ := distjoin.NewIndex(restObjs)
//	pairs, _ := distjoin.KDistanceJoin(hotels, rests, 10, nil)
//	for _, p := range pairs {
//	    fmt.Println(p.LeftID, p.RightID, p.Dist)
//	}
package distjoin

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"

	"distjoin/internal/estimate"
	"distjoin/internal/geom"
	"distjoin/internal/join"
	"distjoin/internal/metrics"
	"distjoin/internal/obsrv"
	"distjoin/internal/rtree"
	"distjoin/internal/shard"
	"distjoin/internal/storage"
	"distjoin/internal/trace"
)

// Rect is an axis-aligned rectangle (minimum bounding rectangle).
type Rect = geom.Rect

// Point is a location in the plane.
type Point = geom.Point

// Segment is a line segment — the exact geometry of street/river-style
// data. Index segments by Segment.Bounds() and rank joins by true
// segment distances with SegmentRefiner.
type Segment = geom.Segment

// NewRect returns the rectangle spanning the two corner coordinates.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// PointRect returns the degenerate rectangle covering exactly (x, y).
func PointRect(x, y float64) Rect { return geom.RectFromPoint(geom.Point{X: x, Y: y}) }

// Object is one spatial object: an application identifier and its MBR.
// IDs must be non-negative and fit in 48 bits, and should be unique
// within an index — self-join deduplication (SelfJoin, KClosestPairs)
// distinguishes objects by ID alone.
type Object struct {
	ID   int64
	Rect Rect
}

// Pair is one distance join result, produced in nondecreasing Dist
// order.
type Pair struct {
	LeftID    int64
	RightID   int64
	LeftRect  Rect
	RightRect Rect
	Dist      float64
}

// Stats exposes the per-query performance counters of the paper's
// evaluation: distance computations, queue insertions, R-tree node
// accesses, buffer pool activity, and modeled I/O time.
type Stats = metrics.Collector

// Tracer records structured per-query stage events — node-pair
// expansions, aggressive/compensation stage transitions with the
// active eDmax, hybrid-queue spills and reloads, eDmax re-estimations,
// parallel batch barriers, and errors — into a bounded ring buffer.
// Install one via Options.Trace; a nil tracer is a zero-cost no-op.
// See NewTracer and the docs/observability.md event schema.
type Tracer = trace.Tracer

// TraceEvent is one structured event recorded by a Tracer.
type TraceEvent = trace.Event

// TraceKind classifies a TraceEvent; see the constants below and the
// docs/observability.md event schema.
type TraceKind = trace.Kind

// Trace event kinds, re-exported so embedders (and the serving
// layer's ?explain=1 digest) can interpret a recorded timeline
// through the facade alone.
const (
	TraceKindExpansion       = trace.KindExpansion
	TraceKindStageStart      = trace.KindStageStart
	TraceKindStageEnd        = trace.KindStageEnd
	TraceKindCompensation    = trace.KindCompensation
	TraceKindEDmaxUpdate     = trace.KindEDmaxUpdate
	TraceKindQueueSpill      = trace.KindQueueSpill
	TraceKindQueueReload     = trace.KindQueueReload
	TraceKindBarrier         = trace.KindBarrier
	TraceKindError           = trace.KindError
	TraceKindShardPlan       = trace.KindShardPlan
	TraceKindShardRun        = trace.KindShardRun
	TraceKindShardSkip       = trace.KindShardSkip
	TraceKindCutoffBroadcast = trace.KindCutoffBroadcast
)

// DefaultTraceCapacity is the event capacity NewTracer uses when given
// a non-positive value.
const DefaultTraceCapacity = trace.DefaultCapacity

// NewTracer returns a Tracer retaining the most recent capacity events
// (capacity <= 0 selects DefaultTraceCapacity). Once full, the oldest
// events are overwritten and counted in Dropped().
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// WriteStatsJSON writes a Stats snapshot as one JSON object: every
// counter by name plus the derived totals (DistCalcs, QueueInserts,
// BufferHitRatio, ResponseTime). A nil stats writes all zeros.
func WriteStatsJSON(w io.Writer, s *Stats) error { return trace.WriteMetricsJSON(w, s) }

// WriteStatsProm writes a Stats snapshot in Prometheus text exposition
// format under the "distjoin_" namespace, suitable for a textfile
// collector or a scrape handler. A nil stats writes all zeros.
func WriteStatsProm(w io.Writer, s *Stats) error { return trace.WriteMetricsProm(w, s) }

// Registry aggregates observability process-wide: per-algorithm query
// counts, latency / distance-computation / queue-insertion histograms
// (p50/p90/p99 derivable from the log buckets), eDmax-estimator
// accuracy telemetry, and a live table of in-flight queries. Attach
// one via Options.Registry; a nil registry is a zero-cost no-op.
// Expose it over HTTP with ServeObservability or ObservabilityHandler.
type Registry = obsrv.Registry

// RegistrySnapshot is an immutable copy of a Registry's state.
type RegistrySnapshot = obsrv.Snapshot

// ServingMetrics aggregates HTTP serving-layer telemetry — per-family
// request counts and latency histograms, the admission-wait
// distribution, shed/drain/cursor counters, and point-in-time gauges —
// into the registry's Prometheus surface as the distjoin_serving_*
// families. Obtain one with Registry.Serving(); a nil *ServingMetrics
// is a valid no-op sink.
type ServingMetrics = obsrv.ServingMetrics

// ServingGauges is the point-in-time serving state a gauge provider
// hands to ServingMetrics.SetGauges.
type ServingGauges = obsrv.ServingGauges

// NewRegistry returns an empty observability registry.
func NewRegistry() *Registry { return obsrv.NewRegistry() }

var (
	defaultRegistryOnce sync.Once
	defaultRegistry     *Registry
)

// DefaultRegistry returns the lazily-created process-wide registry,
// for applications that want one shared aggregation point without
// plumbing their own.
func DefaultRegistry() *Registry {
	defaultRegistryOnce.Do(func() { defaultRegistry = obsrv.NewRegistry() })
	return defaultRegistry
}

// ObservabilityHandler returns an http.Handler exposing reg:
// /metrics (Prometheus text exposition), /queries (live in-flight
// query inspector, JSON), /debug/vars (full snapshot + runtime stats,
// JSON), /debug/pprof/*, and /healthz. reg may be nil (empty views).
// Mount it on an existing mux, or use ServeObservability to run a
// standalone server.
func ObservabilityHandler(reg *Registry) http.Handler { return obsrv.Handler(reg) }

// ObservabilityServer is a running observability HTTP server started
// by ServeObservability.
type ObservabilityServer = obsrv.Server

// ServeObservability starts an HTTP server on addr (e.g. ":9090", or
// "127.0.0.1:0" for an ephemeral port — read it back with Addr())
// serving ObservabilityHandler(reg). Stop it with Shutdown (graceful:
// in-flight scrapes and queries finish before it returns) or Close
// (hard stop, dropping in-flight responses).
func ServeObservability(addr string, reg *Registry) (*ObservabilityServer, error) {
	return obsrv.Serve(addr, reg)
}

// Estimator predicts the distance of the k-th nearest pair, steering
// the adaptive multi-stage algorithms' pruning. The default is the
// paper's uniform model; NewHistogramEstimator builds the non-uniform
// alternative.
type Estimator = estimate.Estimator

// Algorithm selects a distance join algorithm.
type Algorithm int

const (
	// AMKDJ is the paper's adaptive multi-stage k-distance join
	// (§4.1); for incremental joins it selects AM-IDJ (§4.2). Default.
	AMKDJ Algorithm = iota
	// BKDJ is the single-stage bidirectional k-distance join with
	// optimized plane sweep (§3).
	BKDJ
	// HSKDJ is the Hjaltason & Samet baseline with uni-directional
	// expansion; for incremental joins it selects HS-IDJ.
	HSKDJ
	// SJSort is the spatial-join-then-sort baseline; it requires a
	// distance bound (Options.MaxDist) and is not incremental.
	SJSort
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AMKDJ:
		return "AM-KDJ"
	case BKDJ:
		return "B-KDJ"
	case HSKDJ:
		return "HS-KDJ"
	case SJSort:
		return "SJ-SORT"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options tunes a join query. The zero value (or a nil *Options)
// selects the paper's defaults: AM-KDJ, 512 KB of main-queue memory,
// fully optimized plane sweep.
type Options struct {
	// Algorithm selects the join algorithm.
	Algorithm Algorithm
	// QueueMemBytes bounds the in-memory portion of the main queue;
	// longer-distance pairs spill to disk segments (§4.4).
	QueueMemBytes int
	// Stats, when non-nil, receives the query's performance counters.
	Stats *Stats
	// EDmax overrides the adaptive algorithms' initial estimated
	// cutoff distance; zero uses the Eq. 3 estimate.
	EDmax float64
	// MaxDist is the within-distance bound for SJSort (ignored by the
	// other algorithms).
	MaxDist float64
	// DisableSweepOptimization turns off the sweeping-axis and
	// direction selection of §3.2–3.3 (always x-axis, forward), the
	// configuration the paper's Figure 11 compares against.
	DisableSweepOptimization bool
	// BatchK sets the stage size of incremental AM-IDJ joins.
	BatchK int
	// Estimator overrides the eDmax estimator used by the adaptive
	// multi-stage algorithms (AMKDJ and incremental AM-IDJ). Nil
	// selects the paper's uniform-density model (Eq. 3-5); see
	// NewHistogramEstimator for skewed data.
	Estimator Estimator
	// Context, when non-nil, cancels a running query: the algorithms
	// poll it between queue operations and abort with its error.
	Context context.Context
	// SelfJoin adapts result semantics for joining an index with
	// itself: identity pairs are suppressed and each unordered pair is
	// produced once (LeftID < RightID). KClosestPairs sets this
	// automatically.
	SelfJoin bool
	// Refiner, when non-nil, supplies the exact distance between two
	// objects (e.g. between the true geometries their MBRs bound).
	// Results are then ranked by exact distances via incremental
	// refinement: indexed MBR distances serve as lower bounds and each
	// candidate pair is refined exactly once, when it first reaches
	// the head of the priority queue. The returned distance must be at
	// least the MBR distance and at most the MBR maximum distance —
	// true for any geometry contained in its MBR. With Parallelism > 1
	// the refiner is invoked from worker goroutines and must be safe
	// for concurrent use.
	Refiner func(left, right Object) float64
	// Parallelism sets the number of worker goroutines expanding R-tree
	// node pairs concurrently. 0 or 1 runs the serial algorithms
	// (default); n > 1 uses n workers; AutoParallelism uses
	// runtime.GOMAXPROCS(0). Parallel runs return exactly the same
	// pairs in the same order as serial runs — only the performance
	// counters in Stats differ (parallel pruning is slightly more
	// permissive). Applies to KDistanceJoin/KClosestPairs with AMKDJ or
	// BKDJ and to IncrementalJoin with AMKDJ (AM-IDJ); the baselines
	// and the ancillary joins always run serially.
	Parallelism int
	// Trace, when non-nil, receives structured stage events for the
	// query (see Tracer). Tracing never perturbs results — parallel
	// traced runs return exactly the pairs serial runs return — and a
	// nil tracer adds no allocations to the query hot path.
	Trace *Tracer
	// Registry, when non-nil, aggregates this query into the
	// process-level observability registry: it appears in the live
	// /queries inspector while running and feeds the per-algorithm
	// latency/work histograms and eDmax-accuracy telemetry on
	// completion. A nil registry costs nothing. See NewRegistry,
	// DefaultRegistry, and ServeObservability.
	Registry *Registry
	// QueryID, when non-empty, attaches a caller-minted request
	// identity to the query's Registry entry, so the live /queries
	// inspector row correlates with whatever the caller uses to track
	// the request (the HTTP serving layer mints one per request and
	// returns it as the X-Distjoin-Query-Id header). Ignored when
	// Registry is nil.
	QueryID string
	// Shards, when positive, runs KDistanceJoin / KClosestPairs with
	// AMKDJ or BKDJ through the partition-parallel sharded executor:
	// both datasets are grid-partitioned into roughly Shards spatial
	// shards (rounded to the nearest square grid), each shard gets a
	// private bulk-loaded R-tree, and partition pairs are joined on a
	// Parallelism-sized worker pool with bounds-only pruning against a
	// shared global cutoff. Results are byte-identical to the
	// single-tree engine at any shard and worker count (see
	// docs/sharding.md). Zero disables sharding (default). Paths with
	// no sharded executor do not silently fall back: KDistanceJoin /
	// KClosestPairs with HSKDJ or SJSort and IncrementalJoin return a
	// configuration error when Shards > 0. The ancillary joins
	// (WithinJoin, AllNearest, KNNJoin) ignore the field, documented
	// here: they stream unranked or per-object results where
	// partition-parallel ranking does not apply.
	Shards int
}

// AutoParallelism, assigned to Options.Parallelism, sizes the worker
// pool to runtime.GOMAXPROCS(0).
const AutoParallelism = join.AutoParallelism

// joinOptions lowers Options to the internal representation.
func (o *Options) joinOptions() join.Options {
	if o == nil {
		return join.Options{}
	}
	jo := join.Options{
		QueueMemBytes: o.QueueMemBytes,
		Metrics:       o.Stats,
		EDmax:         o.EDmax,
		BatchK:        o.BatchK,
		Estimator:     o.Estimator,
		SelfJoin:      o.SelfJoin,
		Context:       o.Context,
		Parallelism:   o.Parallelism,
		Trace:         o.Trace,
		Registry:      o.Registry,
		QueryID:       o.QueryID,
	}
	if o.DisableSweepOptimization {
		sp := join.FixedSweep
		jo.Sweep = &sp
	}
	if o.Refiner != nil {
		refine := o.Refiner
		jo.Refiner = func(leftObj, rightObj int64, leftRect, rightRect geom.Rect) float64 {
			return refine(Object{ID: leftObj, Rect: leftRect}, Object{ID: rightObj, Rect: rightRect})
		}
	}
	return jo
}

// Index is an immutable paged R*-tree over a set of objects.
type Index struct {
	tree *rtree.Tree
}

// IndexConfig tunes index construction.
type IndexConfig struct {
	// PageSize is the on-disk node page size (default 4096, the
	// paper's setting).
	PageSize int
	// BufferBytes is the R-tree buffer pool capacity (default 512 KB,
	// the paper's setting).
	BufferBytes int
}

func (c *IndexConfig) pageSize() int {
	if c == nil || c.PageSize <= 0 {
		return storage.DefaultPageSize
	}
	return c.PageSize
}

func (c *IndexConfig) bufferBytes() int {
	if c == nil || c.BufferBytes <= 0 {
		return 512 * 1024
	}
	return c.BufferBytes
}

// NewIndex bulk-loads objects into an in-memory paged R*-tree.
func NewIndex(objects []Object, cfg *IndexConfig) (*Index, error) {
	return buildIndex(objects, cfg, storage.NewMemStore(cfg.pageSize()))
}

// CreateIndexFile bulk-loads objects into an R*-tree persisted at
// path; reopen it later with OpenIndexFile.
func CreateIndexFile(path string, objects []Object, cfg *IndexConfig) (*Index, error) {
	store, err := storage.CreateFileStore(path, cfg.pageSize())
	if err != nil {
		return nil, err
	}
	return buildIndex(objects, cfg, store)
}

// OpenIndexFile opens an index previously written by CreateIndexFile.
func OpenIndexFile(path string, cfg *IndexConfig) (*Index, error) {
	store, err := storage.OpenFileStore(path, cfg.pageSize())
	if err != nil {
		return nil, err
	}
	tree, err := rtree.Open(store, cfg.bufferBytes())
	if err != nil {
		store.Close()
		return nil, err
	}
	return &Index{tree: tree}, nil
}

func buildIndex(objects []Object, cfg *IndexConfig, store storage.Store) (*Index, error) {
	builder, err := rtree.NewBuilderForPageSize(cfg.pageSize())
	if err != nil {
		return nil, err
	}
	items := make([]rtree.Item, len(objects))
	for i, o := range objects {
		if !o.Rect.Valid() {
			return nil, fmt.Errorf("distjoin: object %d has invalid rect %v", o.ID, o.Rect)
		}
		if o.ID < 0 || o.ID >= 1<<48 {
			return nil, fmt.Errorf("distjoin: object ID %d out of range [0, 2^48)", o.ID)
		}
		items[i] = rtree.Item{Rect: o.Rect, Obj: o.ID}
	}
	builder.BulkLoad(items)
	tree, err := builder.Pack(store, cfg.bufferBytes())
	if err != nil {
		return nil, err
	}
	return &Index{tree: tree}, nil
}

// Len returns the number of indexed objects.
func (idx *Index) Len() int { return idx.tree.Size() }

// Bounds returns the MBR of all indexed objects.
func (idx *Index) Bounds() Rect { return idx.tree.Bounds() }

// Height returns the number of R-tree levels.
func (idx *Index) Height() int { return idx.tree.Height() }

// Search invokes fn for every object whose MBR intersects query;
// returning false stops early.
func (idx *Index) Search(query Rect, fn func(Object) bool) error {
	return idx.tree.Search(query, nil, func(it rtree.Item) bool {
		return fn(Object{ID: it.Obj, Rect: it.Rect})
	})
}

// Nearest returns the k objects nearest to query in nondecreasing
// distance order.
func (idx *Index) Nearest(query Rect, k int) ([]Object, []float64, error) {
	ns, err := idx.tree.NearestNeighbors(query, k, nil)
	if err != nil {
		return nil, nil, err
	}
	objs := make([]Object, len(ns))
	dists := make([]float64, len(ns))
	for i, n := range ns {
		objs[i] = Object{ID: n.Item.Obj, Rect: n.Item.Rect}
		dists[i] = n.Dist
	}
	return objs, dists, nil
}

// NewHistogramEstimator builds a grid-histogram eDmax estimator over
// the two indexes — the non-uniform-data strategy the paper lists as
// future work (§6). On skewed data it estimates the k-th pair distance
// far more accurately than the default uniform model, reducing the
// adaptive algorithms' compensation work. Build it once per index pair
// and reuse it via Options.Estimator. grid <= 0 selects a default.
func NewHistogramEstimator(left, right *Index, grid int) (Estimator, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("distjoin: both indexes are required")
	}
	return join.NewHistogramEstimator(left.tree, right.tree, grid)
}

// requireIndexes validates the index arguments of the public join
// entry points, returning a clear error instead of a nil-pointer panic.
func requireIndexes(op string, idxs ...*Index) error {
	for _, idx := range idxs {
		if idx == nil || idx.tree == nil {
			return fmt.Errorf("distjoin: %s requires non-nil indexes", op)
		}
	}
	return nil
}

// rejectShards returns the configuration error for join paths that
// have no sharded executor. Options.Shards used to be silently
// ignored on these paths — a misconfiguration mask: the caller asked
// for partition-parallel execution and quietly got the single-tree
// engine instead.
func rejectShards(algo string, opts *Options) error {
	if opts != nil && opts.Shards > 0 {
		return fmt.Errorf("distjoin: Options.Shards is not supported with %s (sharded execution requires AMKDJ or BKDJ via KDistanceJoin/KClosestPairs); clear Shards or switch algorithms", algo)
	}
	return nil
}

// KDistanceJoin returns the k nearest (left, right) object pairs in
// nondecreasing distance order. Both indexes must be non-nil and k
// must be positive.
func KDistanceJoin(left, right *Index, k int, opts *Options) ([]Pair, error) {
	if err := requireIndexes("KDistanceJoin", left, right); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("distjoin: KDistanceJoin requires k > 0, got %d", k)
	}
	jo := opts.joinOptions()
	algo := AMKDJ
	if opts != nil {
		algo = opts.Algorithm
	}
	var (
		results []join.Result
		err     error
	)
	switch algo {
	case AMKDJ:
		if opts != nil && opts.Shards > 0 {
			results, err = shard.KDJ(left.tree, right.tree, k, shard.AMKDJ, shard.Config{Shards: opts.Shards}, jo)
			break
		}
		results, err = join.AMKDJ(left.tree, right.tree, k, jo)
	case BKDJ:
		if opts != nil && opts.Shards > 0 {
			results, err = shard.KDJ(left.tree, right.tree, k, shard.BKDJ, shard.Config{Shards: opts.Shards}, jo)
			break
		}
		results, err = join.BKDJ(left.tree, right.tree, k, jo)
	case HSKDJ:
		if err := rejectShards("HSKDJ", opts); err != nil {
			return nil, err
		}
		results, err = join.HSKDJ(left.tree, right.tree, k, jo)
	case SJSort:
		if err := rejectShards("SJSort", opts); err != nil {
			return nil, err
		}
		if opts == nil || opts.MaxDist <= 0 {
			return nil, fmt.Errorf("distjoin: SJSort requires Options.MaxDist > 0")
		}
		results, err = join.SJSort(left.tree, right.tree, k, opts.MaxDist, jo)
	default:
		return nil, fmt.Errorf("distjoin: unknown algorithm %v", algo)
	}
	if err != nil {
		return nil, err
	}
	return convertResults(results), nil
}

// Iterator produces incremental distance join results one pair at a
// time, in nondecreasing distance order.
type Iterator struct {
	next  func() (join.Result, bool)
	err   func() error
	close func()
}

// Next returns the next nearest pair; ok is false when the join is
// exhausted or an error occurred (check Err).
func (it *Iterator) Next() (Pair, bool) {
	r, ok := it.next()
	if !ok {
		return Pair{}, false
	}
	return convertResult(r), true
}

// Err returns the first error encountered during iteration.
func (it *Iterator) Err() error { return it.err() }

// Close finalizes the query's observability accounting (its
// Options.Registry entry, if any). It is idempotent and optional when
// the iterator is driven to exhaustion — the terminal Next call
// finalizes implicitly — but should be called when abandoning an
// iterator early, so the query does not linger in the live inspector.
func (it *Iterator) Close() { it.close() }

// IncrementalJoin starts an incremental distance join — no stopping
// cardinality required; pull as many pairs as needed from the
// iterator. Algorithm AMKDJ selects AM-IDJ (default); HSKDJ selects
// the HS-IDJ baseline.
func IncrementalJoin(left, right *Index, opts *Options) (*Iterator, error) {
	if err := requireIndexes("IncrementalJoin", left, right); err != nil {
		return nil, err
	}
	if err := rejectShards("IncrementalJoin", opts); err != nil {
		return nil, err
	}
	jo := opts.joinOptions()
	algo := AMKDJ
	if opts != nil {
		algo = opts.Algorithm
	}
	switch algo {
	case AMKDJ:
		it, err := join.AMIDJ(left.tree, right.tree, jo)
		if err != nil {
			return nil, err
		}
		return &Iterator{next: it.Next, err: it.Err, close: it.Close}, nil
	case HSKDJ:
		it, err := join.HSIDJ(left.tree, right.tree, jo)
		if err != nil {
			return nil, err
		}
		return &Iterator{next: it.Next, err: it.Err, close: it.Close}, nil
	default:
		return nil, fmt.Errorf("distjoin: algorithm %v does not support incremental joins", algo)
	}
}

func convertResults(rs []join.Result) []Pair {
	if rs == nil {
		return nil
	}
	out := make([]Pair, len(rs))
	for i, r := range rs {
		out[i] = convertResult(r)
	}
	return out
}

func convertResult(r join.Result) Pair {
	return Pair{
		LeftID:    r.LeftObj,
		RightID:   r.RightObj,
		LeftRect:  r.LeftRect,
		RightRect: r.RightRect,
		Dist:      r.Dist,
	}
}

// SegmentRefiner builds an exact-distance refiner for data sets whose
// objects are line segments, looked up by object ID. Pass it as
// Options.Refiner to rank join results by true segment distances
// instead of MBR distances.
func SegmentRefiner(left, right func(id int64) Segment) func(a, b Object) float64 {
	return func(a, b Object) float64 {
		return left(a.ID).DistToSegment(right(b.ID))
	}
}

// KClosestPairs returns the k closest distinct pairs of objects within
// one index — the self-join form of the distance join: identity pairs
// are excluded and each unordered pair appears once (LeftID < RightID).
func KClosestPairs(idx *Index, k int, opts *Options) ([]Pair, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	o.SelfJoin = true
	return KDistanceJoin(idx, idx, k, &o)
}

// WithinJoin streams every (left, right) pair within maxDist to fn in
// no particular order — the spatial join with a within predicate.
// Returning false from fn stops early.
//
// maxDist must not be NaN: a NaN threshold makes every distance
// comparison false and would otherwise silently change the result set.
// A +Inf threshold is valid and streams every pair; a negative
// threshold yields no pairs.
func WithinJoin(left, right *Index, maxDist float64, opts *Options, fn func(Pair) bool) error {
	if fn == nil {
		return fmt.Errorf("distjoin: WithinJoin requires a callback")
	}
	if err := requireIndexes("WithinJoin", left, right); err != nil {
		return err
	}
	if math.IsNaN(maxDist) {
		return fmt.Errorf("distjoin: WithinJoin maxDist must not be NaN")
	}
	return join.WithinJoin(left.tree, right.tree, maxDist, opts.joinOptions(), func(r join.Result) bool {
		return fn(convertResult(r))
	})
}

// AllNearest reports, for every object in left, its nearest object in
// right (an all-nearest-neighbors semi-join). Returning false from fn
// stops early. The right index must be non-empty unless left is empty.
func AllNearest(left, right *Index, opts *Options, fn func(Pair) bool) error {
	if fn == nil {
		return fmt.Errorf("distjoin: AllNearest requires a callback")
	}
	if err := requireIndexes("AllNearest", left, right); err != nil {
		return err
	}
	return join.AllNearest(left.tree, right.tree, opts.joinOptions(), func(r join.Result) bool {
		return fn(convertResult(r))
	})
}

// KNNJoin reports, for every object in left, its k nearest objects in
// right in nondecreasing distance order — one callback per left
// object, whose pairs all share the same LeftID. Returning false stops
// early. The right index must be non-empty unless left is empty.
//
// Each callback receives a freshly allocated slice: the callback may
// retain it (e.g. append it to a per-object result map) without it
// being overwritten by a later left object's neighbors.
func KNNJoin(left, right *Index, k int, opts *Options, fn func(neighbors []Pair) bool) error {
	if fn == nil {
		return fmt.Errorf("distjoin: KNNJoin requires a callback")
	}
	if err := requireIndexes("KNNJoin", left, right); err != nil {
		return err
	}
	if k <= 0 {
		return fmt.Errorf("distjoin: KNNJoin requires k > 0, got %d", k)
	}
	return join.AllKNearest(left.tree, right.tree, k, opts.joinOptions(), func(ns []join.Result) bool {
		// A fresh slice per callback: reusing one buffer across
		// callbacks silently corrupted any retained neighbor lists.
		neighbors := make([]Pair, len(ns))
		for i, n := range ns {
			neighbors[i] = convertResult(n)
		}
		return fn(neighbors)
	})
}
