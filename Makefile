# distjoin — build, test, and experiment targets.

GO ?= go

.PHONY: all build vet test test-short race cover fuzz bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Run every fuzz target briefly.
fuzz:
	$(GO) test -fuzz=FuzzReadFrom -fuzztime=20s ./internal/datagen
	$(GO) test -fuzz=FuzzDecodeNode -fuzztime=20s ./internal/rtree
	$(GO) test -fuzz=FuzzPairRoundTrip -fuzztime=20s ./internal/hybridq
	$(GO) test -fuzz=FuzzIndex -fuzztime=20s ./internal/sweep

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation (tables to stdout, figures to ./figures).
experiments:
	$(GO) run ./cmd/distjoin-bench -exp all -svg figures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/citypairs -n 5000 -k 50
	$(GO) run ./examples/incremental -n 5000 -batch 200 -batches 3
	$(GO) run ./examples/tigerscale -n 10000
	$(GO) run ./examples/analytics -customers 5000

clean:
	$(GO) clean ./...
	rm -rf figures
