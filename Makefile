# distjoin — build, test, and experiment targets.

GO ?= go

# Export GOFLAGS into every recipe, so `make sim-smoke GOFLAGS=-count=1`
# (make-variable form, which make does NOT export by default) reaches
# the go tool exactly like the environment-variable form. In particular
# -count=1 keeps cached test results from masking a flaky seed.
export GOFLAGS

# Lint-tool versions — the single source of truth shared by local runs
# and CI (.github/workflows/ci.yml installs exactly these via
# `make lint-tools`), so the two can never disagree about what "clean"
# means.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.4
ACTIONLINT_VERSION ?= v1.7.7

.PHONY: all build vet vet-sarif allow-report lint lint-tools test test-short race cover cover-check sim-smoke sim-soak fuzz fuzz-smoke bench bench-json bench-diff bench-baseline experiments examples serve-smoke ci clean

# Coverage floor for the cover-check gate: the suite sits above 80%,
# so the floor guards against untested subsystems landing, with a
# little margin for statement-count drift.
COVER_FLOOR ?= 78.0

# Simulation-harness knobs (cmd/distjoin-sim): smoke runs in default
# CI, soak runs nightly; SIM_POINTS samples fault-injection points per
# (algorithm, target), 0 = exhaustive.
SIM_SMOKE_DURATION ?= 30s
SIM_SOAK_DURATION ?= 5m
SIM_POINTS ?= 4

# Continuous-benchmark knobs: the committed baseline was produced with
# these values, so candidates must use the same ones to be comparable.
BENCH_SCALE ?= 0.02
BENCH_BASELINE ?= BENCH_9.json
BENCH_NEW ?= bench-new.json
BENCH_THRESHOLD ?= 0.25

all: build vet test

build:
	$(GO) build ./...

# The project lint suite (internal/analysis, docs/static-analysis.md)
# runs through go vet's -vettool protocol so its per-package results
# land in go's build cache alongside the standard vet checks. The
# binary itself is a file target keyed on every .go source under the
# command and the analysis package (found at recipe-expansion time, so
# files added after the Makefile was parsed still count; testdata
# fixtures are excluded — they are inputs to the analysis tests, not
# to the tool), and go's build cache makes even a triggered rebuild
# incremental.
VETTOOL := bin/distjoin-vet
VETTOOL_SRC := $(shell find cmd/distjoin-vet internal/analysis -name '*.go' -not -path '*/testdata/*')

$(VETTOOL): $(VETTOOL_SRC) go.mod
	$(GO) build -o $(VETTOOL) ./cmd/distjoin-vet

vet: $(VETTOOL)
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath $(VETTOOL)) ./...

# Emit the analyzer findings as SARIF 2.1.0 (bin/distjoin-vet.sarif)
# and structurally validate the artifact — the same two commands the
# CI lint job runs before uploading to code scanning. Exits non-zero
# when findings exist, after writing and validating the file.
vet-sarif: $(VETTOOL)
	@rc=0; $(VETTOOL) -sarif bin/distjoin-vet.sarif ./... || rc=$$?; \
	if [ "$$rc" -ne 0 ] && [ "$$rc" -ne 2 ]; then exit "$$rc"; fi; \
	$(VETTOOL) -check-sarif bin/distjoin-vet.sarif; \
	exit "$$rc"

# Audit every //lint:allow suppression in the tree: prints file:line,
# analyzer, and the stated reason; fails when any suppression is
# reasonless or names an unknown analyzer.
allow-report: $(VETTOOL)
	$(VETTOOL) -allow-report ./...

# Install the pinned lint toolchain (staticcheck, govulncheck,
# actionlint). CI runs this before `make lint`; locally it is optional —
# lint degrades missing binaries to notes.
lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
	$(GO) install github.com/rhysd/actionlint/cmd/actionlint@$(ACTIONLINT_VERSION)

# Fail if any file needs gofmt; run staticcheck, govulncheck and
# actionlint when available (CI installs the pinned versions via
# lint-tools — so a missing local binary degrades to a note instead of
# a hard dependency).
lint: vet
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "note: staticcheck not installed, skipping (make lint-tools)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "note: govulncheck not installed, skipping (make lint-tools)"; \
	fi
	@if command -v actionlint >/dev/null 2>&1; then \
		actionlint; \
	else \
		echo "note: actionlint not installed, skipping (make lint-tools)"; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Coverage floor gate: fails when total statement coverage drops below
# COVER_FLOOR percent. Reuses coverage.out when the ci target already
# produced it.
cover-check:
	@[ -f coverage.out ] || $(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	@total="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% below floor $(COVER_FLOOR)%" >&2; exit 1; }

# Time-boxed deterministic-simulation run (internal/simtest): seed
# sweep with sampled fault-schedule exploration. The smoke tier gates
# every PR; the soak tier is the nightly long haul under -race, with
# the failing-seed repro line written where CI can upload it.
sim-smoke:
	$(GO) run ./cmd/distjoin-sim -duration $(SIM_SMOKE_DURATION) -faults -points $(SIM_POINTS)

sim-soak:
	$(GO) run -race ./cmd/distjoin-sim -duration $(SIM_SOAK_DURATION) -faults -points $(SIM_POINTS) -out sim-failures.txt

# Run every fuzz target briefly.
fuzz:
	$(GO) test -fuzz=FuzzReadFrom -fuzztime=20s ./internal/datagen
	$(GO) test -fuzz=FuzzDecodeNode -fuzztime=20s ./internal/rtree
	$(GO) test -fuzz=FuzzPairRoundTrip -fuzztime=20s ./internal/hybridq
	$(GO) test -fuzz=FuzzBatchKernels -fuzztime=20s ./internal/geom
	$(GO) test -fuzz=FuzzIndex -fuzztime=20s ./internal/sweep
	$(GO) test -fuzz=FuzzScenario -fuzztime=20s ./internal/simtest

# Shorter fuzz pass used by CI (10s per target).
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadFrom -fuzztime=10s ./internal/datagen
	$(GO) test -fuzz=FuzzDecodeNode -fuzztime=10s ./internal/rtree
	$(GO) test -fuzz=FuzzPairRoundTrip -fuzztime=10s ./internal/hybridq
	$(GO) test -fuzz=FuzzBatchKernels -fuzztime=10s ./internal/geom
	$(GO) test -fuzz=FuzzIndex -fuzztime=10s ./internal/sweep
	$(GO) test -fuzz=FuzzScenario -fuzztime=10s ./internal/simtest

bench:
	$(GO) test -bench=. -benchmem ./...

# Write a schema-versioned perf record for the regression gate.
bench-json:
	$(GO) run ./cmd/distjoin-bench -bench-json $(BENCH_NEW) -scale $(BENCH_SCALE)

# Gate a candidate record against the committed baseline; fails when a
# deterministic cost counter regresses past BENCH_THRESHOLD. On a fresh
# clone (or after changing BENCH_BASELINE) the baseline may not exist
# yet — say exactly how to create it instead of letting benchdiff die
# on a missing file.
bench-diff: bench-json
	@if [ ! -f "$(BENCH_BASELINE)" ]; then \
		echo "bench-diff: baseline $(BENCH_BASELINE) not found." >&2; \
		echo "bench-diff: record one first with: make bench-baseline" >&2; \
		echo "bench-diff: (baselines are host-specific for wall time; counters are portable)" >&2; \
		exit 1; \
	fi
	$(GO) run ./cmd/benchdiff -old $(BENCH_BASELINE) -new $(BENCH_NEW) -threshold $(BENCH_THRESHOLD)

# Refresh the committed baseline (after a justified counter shift).
bench-baseline:
	$(GO) run ./cmd/distjoin-bench -bench-json $(BENCH_BASELINE) -scale $(BENCH_SCALE)

# Regenerate the paper's evaluation (tables to stdout, figures to ./figures).
experiments:
	$(GO) run ./cmd/distjoin-bench -exp all -svg figures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/citypairs -n 5000 -k 50
	$(GO) run ./examples/incremental -n 5000 -batch 200 -batches 3
	$(GO) run ./examples/tigerscale -n 10000
	$(GO) run ./examples/analytics -customers 5000
	$(GO) run ./examples/serving -duration 3s

# Query-server smoke test (docs/serving.md): bring up a demo
# distjoin-server on an ephemeral port with a 1ms slow-query threshold
# (so real queries land in the slow log), drive it with mixed traffic
# from distjoin-load -quick plus an ?explain=1 roundtrip check, then
# SIGTERM it and require a clean load run, a clean graceful exit
# (drain, code 0), and at least one parseable structured request-log
# line on the server's stderr (kept at bin/serve-log.jsonl; the CI
# serve job uploads it as an artifact).
serve-smoke:
	$(GO) build -o bin/distjoin-server ./cmd/distjoin-server
	$(GO) build -o bin/distjoin-load ./cmd/distjoin-load
	@rm -f bin/serve-addr.txt bin/serve-log.jsonl; \
	bin/distjoin-server -addr 127.0.0.1:0 -demo 4000 -addr-file bin/serve-addr.txt \
		-slow-query 1ms 2> bin/serve-log.jsonl & \
	pid=$$!; \
	for i in $$(seq 1 50); do [ -s bin/serve-addr.txt ] && break; sleep 0.1; done; \
	if [ ! -s bin/serve-addr.txt ]; then \
		echo "serve-smoke: server never bound" >&2; kill $$pid 2>/dev/null; exit 1; \
	fi; \
	addr="$$(cat bin/serve-addr.txt)"; \
	load=0; bin/distjoin-load -addr "$$addr" -quick -check-explain || load=$$?; \
	kill -TERM $$pid; \
	srv=0; wait $$pid || srv=$$?; \
	echo "serve-smoke: load exit $$load, server exit $$srv"; \
	[ "$$load" -eq 0 ] && [ "$$srv" -eq 0 ]; \
	bin/distjoin-load -validate-log bin/serve-log.jsonl

# Everything the CI workflow (.github/workflows/ci.yml) runs, locally:
# lint gate, build, tests with coverage + floor gate, race detector,
# simulation smoke, fuzz smoke, server smoke, bench regression gate.
ci: lint build
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -n 1
	$(MAKE) cover-check
	$(GO) test -race -short ./...
	$(MAKE) sim-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) serve-smoke
	$(MAKE) bench-diff

clean:
	$(GO) clean ./...
	rm -rf figures coverage.out bin $(BENCH_NEW)
