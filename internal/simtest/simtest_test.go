package simtest

import (
	"errors"
	"os"
	"testing"
	"time"

	"distjoin/internal/join"
	"distjoin/internal/obsrv"
	"distjoin/internal/storage"
)

// TestCheckSeeds sweeps the logic battery (differential oracle plus
// every metamorphic invariant) over a block of consecutive seeds.
func TestCheckSeeds(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= n; seed++ {
		if err := Check(FromSeed(seed)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFaultSchedules explores injected-fault schedules for a handful
// of scenarios chosen to cover serial and parallel execution, tight
// queue memory (spill/reload traffic), and self-join semantics. Point
// sampling keeps the default run quick; the nightly soak explores
// exhaustively via cmd/distjoin-sim -faults -points=0.
func TestFaultSchedules(t *testing.T) {
	points := 6
	seeds := []int64{2, 3, 15}
	if testing.Short() {
		points = 2
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		if err := ExploreFaults(FromSeed(seed), ExploreOpts{MaxPointsPerTarget: points}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMutationSmoke validates the harness itself: with a deliberately
// broken pruning cutoff installed, the differential oracle must catch
// the wrong results within a bounded number of seeds — a harness that
// cannot fail proves nothing. The mutation only affects the serial
// AM-KDJ path, so the run is pinned to Parallelism 1.
func TestMutationSmoke(t *testing.T) {
	const maxSeeds = 100
	restore := join.SetPruneMutation(0.85)
	defer restore()
	for seed := int64(1); seed <= maxSeeds; seed++ {
		s := FromSeed(seed)
		e, err := newEnv(s, storage.NewMemStore(s.PageSize), storage.NewMemStore(s.PageSize), nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := e.runAlgo("AM-KDJ", e.options(1, nil, nil, obsrv.NewRegistry()), len(e.ref))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := e.compareExact("mutation-smoke", "AM-KDJ", got); err != nil {
			t.Logf("mutation caught at seed %d: %v", seed, err)
			restore()
			// The restored algorithm must pass again on the same seed —
			// pinning that the failure came from the mutation, not the
			// harness.
			got, err := e.runAlgo("AM-KDJ", e.options(1, nil, nil, obsrv.NewRegistry()), len(e.ref))
			if err != nil {
				t.Fatalf("seed %d after restore: %v", seed, err)
			}
			if err := e.compareExact("mutation-smoke", "AM-KDJ", got); err != nil {
				t.Fatalf("restored algorithm still failing: %v", err)
			}
			return
		}
	}
	t.Fatalf("pruning mutation survived %d seeds undetected — the differential oracle is blind", maxSeeds)
}

// TestFromSeedDeterministic pins the seed -> scenario map: two
// derivations of the same seed must be identical, including the
// materialized data.
func TestFromSeedDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := FromSeed(seed), FromSeed(seed)
		if a != b {
			t.Fatalf("seed %d: scenarios differ:\n%s\n%s", seed, a, b)
		}
		al, ar := a.Items()
		bl, br := b.Items()
		if len(al) != len(bl) || len(ar) != len(br) {
			t.Fatalf("seed %d: item counts differ", seed)
		}
		for i := range al {
			if al[i] != bl[i] {
				t.Fatalf("seed %d: left item %d differs", seed, i)
			}
		}
		for i := range ar {
			if ar[i] != br[i] {
				t.Fatalf("seed %d: right item %d differs", seed, i)
			}
		}
	}
}

// TestSelfJoinScenarioShape pins the self-join contract: both sides
// identical, SelfJoin reported.
func TestSelfJoinScenarioShape(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 64; seed++ {
		s := FromSeed(seed)
		if s.Workload != WorkloadSelf {
			continue
		}
		found = true
		if !s.SelfJoin() {
			t.Fatalf("seed %d: self workload but SelfJoin() false", seed)
		}
		if s.NLeft != s.NRight || s.SubSeedL != s.SubSeedR {
			t.Fatalf("seed %d: self workload with asymmetric sides: %s", seed, s)
		}
	}
	if !found {
		t.Fatal("no self-join workload in 64 seeds — workload distribution broken")
	}
}

// TestParseScheduleRoundTrip checks ParseSchedule against String for
// every algorithm/target combination, plus the error paths.
func TestParseScheduleRoundTrip(t *testing.T) {
	for _, algo := range Algorithms {
		for _, target := range faultTargets {
			in := &FaultSchedule{Algo: algo, Target: target, Point: 7}
			out, err := ParseSchedule(in.String())
			if err != nil {
				t.Fatalf("ParseSchedule(%q): %v", in.String(), err)
			}
			if *out != *in {
				t.Fatalf("round trip: %+v != %+v", out, in)
			}
		}
	}
	for _, bad := range []string{
		"", "AM-KDJ", "AM-KDJ:queue", "NOPE:queue:1", "AM-KDJ:disk:1",
		"AM-KDJ:queue:x", "AM-KDJ:queue:-1", "AM-KDJ:queue:1:2",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted", bad)
		}
	}
}

// TestRunScheduleRepro pins the CLI repro path: a schedule produced by
// exploration must be runnable standalone.
func TestRunScheduleRepro(t *testing.T) {
	s := FromSeed(2)
	for _, spec := range []string{"AM-KDJ:queue:0", "AM-IDJ:reload:0", "B-KDJ:ltree:2", "HS-KDJ:spill:0"} {
		sched, err := ParseSchedule(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := RunSchedule(s, sched); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
	// A point the serial census proves unreachable is a usage error —
	// the "repro" would test nothing — not a hollow pass.
	serial := s
	serial.Parallelism = 1
	sched := &FaultSchedule{Algo: "AM-KDJ", Target: TargetLeftTree, Point: 1 << 20}
	if err := RunSchedule(serial, sched); !errors.Is(err, ErrScheduleNeverFires) {
		t.Fatalf("unreachable serial point: got %v, want ErrScheduleNeverFires", err)
	}
	// Under parallelism the census varies with scheduling, so the armed
	// run still executes; with the fault unreached it must simply
	// reproduce the oracle (not report a swallowed fault).
	par := s
	par.Parallelism = 2
	if err := RunSchedule(par, sched); err != nil {
		t.Fatalf("unreachable parallel point: %v", err)
	}
}

// TestSamplePoints pins the point sampler: exhaustive below the cap,
// strided (first point included, bounds respected, strictly
// increasing) above it.
func TestSamplePoints(t *testing.T) {
	if got := samplePoints(0, 4); got != nil {
		t.Fatalf("samplePoints(0,4) = %v", got)
	}
	if got := samplePoints(3, 0); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("samplePoints(3,0) = %v", got)
	}
	got := samplePoints(1000, 8)
	if len(got) != 8 || got[0] != 0 {
		t.Fatalf("samplePoints(1000,8) = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] || got[i] >= 1000 {
			t.Fatalf("samplePoints(1000,8) not strictly increasing in range: %v", got)
		}
	}
}

// TestFailureRepro pins the one-line repro format the CLI parses back.
func TestFailureRepro(t *testing.T) {
	f := &Failure{
		Scenario: FromSeed(42),
		Schedule: &FaultSchedule{Algo: "AM-KDJ", Target: TargetReload, Point: 3},
		Check:    "fault",
		Detail:   "boom",
	}
	msg := f.Error()
	for _, want := range []string{"-seed=42", "-schedule=AM-KDJ:reload:3", "[fault]", "boom", "cmd/distjoin-sim"} {
		if !contains(msg, want) {
			t.Fatalf("failure message %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSoak is the nightly long-haul run: a time-boxed seed sweep with
// sampled fault exploration, enabled by DISTJOIN_SOAK=full (the
// nightly workflow sets it). The default run does a token pass so the
// code path stays exercised.
func TestSoak(t *testing.T) {
	budget := 2 * time.Second
	faultPoints := 2
	if os.Getenv("DISTJOIN_SOAK") == "full" {
		budget = 3 * time.Minute
		faultPoints = 8
	} else if testing.Short() {
		t.Skip("soak in -short mode")
	}
	deadline := time.Now().Add(budget)
	seed := int64(1000) // disjoint from the fixed sweeps above
	checked := 0
	for time.Now().Before(deadline) {
		s := FromSeed(seed)
		if err := Check(s); err != nil {
			t.Fatal(err)
		}
		if err := ExploreFaults(s, ExploreOpts{
			Algos:              []string{"AM-KDJ", "AM-IDJ"},
			MaxPointsPerTarget: faultPoints,
		}); err != nil {
			t.Fatal(err)
		}
		seed++
		checked++
	}
	t.Logf("soak: %d seeds checked in %v", checked, budget)
}
