package simtest

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"distjoin/internal/datagen"
	"distjoin/internal/estimate"
	"distjoin/internal/geom"
	"distjoin/internal/join"
	"distjoin/internal/rtree"
)

// Workload names a dataset shape for one scenario side pair.
type Workload int

const (
	// WorkloadUniform joins two uniform sets.
	WorkloadUniform Workload = iota
	// WorkloadClustered joins two Gaussian-cluster sets (skew on both
	// sides — the partition-boundary hazard workload).
	WorkloadClustered
	// WorkloadSkewed joins a clustered set with a uniform one.
	WorkloadSkewed
	// WorkloadSelf joins one clustered set with itself under SelfJoin
	// semantics.
	WorkloadSelf
	numWorkloads
)

// String implements fmt.Stringer.
func (w Workload) String() string {
	switch w {
	case WorkloadUniform:
		return "uniform"
	case WorkloadClustered:
		return "clustered"
	case WorkloadSkewed:
		return "skewed"
	case WorkloadSelf:
		return "self"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// EDmaxMode selects how the scenario overrides the initial eDmax
// estimate of the adaptive multi-stage algorithms.
type EDmaxMode int

const (
	// EDmaxModel uses the paper's Eq. 3 model estimate (no override).
	EDmaxModel EDmaxMode = iota
	// EDmaxUnder forces a severe underestimate (0.25 x the true k-th
	// distance), exercising the compensation machinery.
	EDmaxUnder
	// EDmaxOver forces a severe overestimate (4 x the true k-th
	// distance), exercising the overestimate-detection path (AM-KDJ
	// line 8).
	EDmaxOver
	numEDmaxModes
)

// String implements fmt.Stringer.
func (m EDmaxMode) String() string {
	switch m {
	case EDmaxModel:
		return "model"
	case EDmaxUnder:
		return "under"
	case EDmaxOver:
		return "over"
	default:
		return fmt.Sprintf("EDmaxMode(%d)", int(m))
	}
}

// Scenario is one fully-determined simulation configuration: the data,
// the query, and every engine knob. It is a pure function of its Seed
// (see FromSeed), so any failure reproduces from one integer.
type Scenario struct {
	Seed int64

	// Data shape.
	Workload           Workload
	NLeft, NRight      int
	Clusters           int     // cluster count for clustered/skewed/self sides
	Stddev             float64 // cluster spread
	MaxSide            float64 // max rectangle side
	WorldSide          float64 // square world extent
	SubSeedL, SubSeedR int64

	// Index shape.
	Fanout   int // R-tree fanout; 0 means PageSize-derived
	PageSize int // store page size for the trees
	BufBytes int // buffer-pool bytes per tree

	// Query shape.
	K            int
	BatchK       int // AM-IDJ stage growth
	QueueMem     int // hybrid main-queue memory budget, bytes
	Parallelism  int // 1, 2, or 8
	EDmaxMode    EDmaxMode
	Sweep        join.SweepPolicy
	DQPolicy     join.DistanceQueuePolicy
	Correction   estimate.Mode
	NoQueueModel bool // the A4 ablation: overflow-split-only queue
	Refine       bool // rank by exact center distances via Options.Refiner
}

// sized bounds keep the harness fast: the brute-force oracle is
// O(NLeft x NRight) and the HS baselines are deliberately slow.
const (
	minN, maxN = 60, 320
	maxK       = 600
)

// FromSeed deterministically derives a scenario from seed. Every knob
// the engine exposes is randomized within harness-safe bounds; the
// same seed always yields the same scenario on every platform
// (math/rand's generator is stable).
func FromSeed(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	s := Scenario{
		Seed:      seed,
		Workload:  Workload(rng.Intn(int(numWorkloads))),
		NLeft:     minN + rng.Intn(maxN-minN+1),
		NRight:    minN + rng.Intn(maxN-minN+1),
		Clusters:  1 + rng.Intn(6),
		Stddev:    100 + rng.Float64()*500,
		MaxSide:   5 + rng.Float64()*35,
		WorldSide: 2000 + rng.Float64()*6000,
		SubSeedL:  rng.Int63(),
		SubSeedR:  rng.Int63(),

		PageSize: []int{1024, 2048, 4096}[rng.Intn(3)],
		BufBytes: 4096 * (1 + rng.Intn(32)),

		BatchK:       0, // filled below from K
		QueueMem:     512 * (1 + rng.Intn(16)),
		Parallelism:  []int{1, 2, 8}[rng.Intn(3)],
		EDmaxMode:    EDmaxMode(rng.Intn(int(numEDmaxModes))),
		DQPolicy:     join.DistanceQueuePolicy(rng.Intn(2)),
		Correction:   estimate.Mode(rng.Intn(4)),
		NoQueueModel: rng.Intn(4) == 0,
		Refine:       rng.Intn(4) == 0,
	}
	if s.Workload == WorkloadSelf {
		s.NRight = s.NLeft
		s.SubSeedR = s.SubSeedL
	}
	// Fanout-driven trees half the time, page-size-driven otherwise.
	// Pack rejects a fanout beyond the page capacity, so clamp.
	if rng.Intn(2) == 0 {
		s.Fanout = 4 + rng.Intn(28)
		if cap := rtree.PageCapacity(s.PageSize); s.Fanout > cap {
			s.Fanout = cap
		}
	}
	s.K = 1 + rng.Intn(maxK)
	s.BatchK = 1 + rng.Intn(s.K)
	sweeps := []join.SweepPolicy{
		join.OptimizedSweep,
		join.FixedSweep,
		{SelectAxis: true},
		{SelectDirection: true},
	}
	s.Sweep = sweeps[rng.Intn(len(sweeps))]
	return s
}

// FromBytes decodes a scenario from raw bytes — the shared decoder the
// fuzz targets feed. The first 8 bytes are the seed (zero-padded);
// trailing bytes, when present, override individual knobs so the
// fuzzer can explore knob combinations the seed->scenario map alone
// would visit rarely. Sizes are clamped harder than FromSeed so fuzz
// iterations stay fast.
func FromBytes(data []byte) Scenario {
	var buf [8]byte
	copy(buf[:], data)
	s := FromSeed(int64(binary.LittleEndian.Uint64(buf[:])))
	// Knob overrides from trailing bytes (each optional).
	get := func(i int) (byte, bool) {
		if len(data) > 8+i {
			return data[8+i], true
		}
		return 0, false
	}
	if b, ok := get(0); ok {
		s.Workload = Workload(int(b) % int(numWorkloads))
		if s.Workload == WorkloadSelf {
			s.NRight = s.NLeft
			s.SubSeedR = s.SubSeedL
		}
	}
	if b, ok := get(1); ok {
		s.Parallelism = []int{1, 2, 8}[int(b)%3]
	}
	if b, ok := get(2); ok {
		s.EDmaxMode = EDmaxMode(int(b) % int(numEDmaxModes))
	}
	if b, ok := get(3); ok {
		s.K = 1 + int(b)
	}
	if b, ok := get(4); ok {
		s.QueueMem = 512 * (1 + int(b)%16)
	}
	if b, ok := get(5); ok {
		s.Refine = b%2 == 1
	}
	if b, ok := get(6); ok {
		s.NoQueueModel = b%2 == 1
	}
	// Fuzz speed clamp: a quarter of the FromSeed ceiling.
	clamp := func(n int) int {
		if n > maxN/2 {
			return minN + n%(maxN/2-minN+1)
		}
		return n
	}
	s.NLeft, s.NRight = clamp(s.NLeft), clamp(s.NRight)
	if s.Workload == WorkloadSelf {
		s.NRight = s.NLeft
	}
	if s.K > 200 {
		s.K = 1 + s.K%200
	}
	if s.BatchK > s.K {
		s.BatchK = 1 + s.BatchK%s.K
	}
	return s
}

// String renders the scenario as one line, led by the seed repro.
func (s Scenario) String() string {
	return fmt.Sprintf("seed=%d %s |L|=%d |R|=%d k=%d batchK=%d qmem=%d par=%d eDmax=%s sweep=%+v dq=%d corr=%s page=%d fanout=%d refine=%v noqm=%v",
		s.Seed, s.Workload, s.NLeft, s.NRight, s.K, s.BatchK, s.QueueMem,
		s.Parallelism, s.EDmaxMode, s.Sweep, s.DQPolicy, s.Correction,
		s.PageSize, s.Fanout, s.Refine, s.NoQueueModel)
}

// World returns the scenario's coordinate universe.
func (s Scenario) World() geom.Rect {
	return geom.NewRect(0, 0, s.WorldSide, s.WorldSide)
}

// Items materializes the two data sets. For WorkloadSelf both returned
// slices are the same items (value-identical), as self-join semantics
// require.
func (s Scenario) Items() (left, right []rtree.Item) {
	w := s.World()
	gen := func(seed int64, n int, clustered bool) []rtree.Item {
		if clustered {
			return datagen.GaussianClusters(seed, n, s.Clusters, w, s.Stddev, s.MaxSide)
		}
		return datagen.Uniform(seed, n, w, s.MaxSide)
	}
	switch s.Workload {
	case WorkloadUniform:
		return gen(s.SubSeedL, s.NLeft, false), gen(s.SubSeedR, s.NRight, false)
	case WorkloadClustered:
		return gen(s.SubSeedL, s.NLeft, true), gen(s.SubSeedR, s.NRight, true)
	case WorkloadSkewed:
		return gen(s.SubSeedL, s.NLeft, true), gen(s.SubSeedR, s.NRight, false)
	default: // WorkloadSelf
		l := gen(s.SubSeedL, s.NLeft, true)
		return l, l
	}
}

// SelfJoin reports whether the scenario runs under self-join
// semantics.
func (s Scenario) SelfJoin() bool { return s.Workload == WorkloadSelf }
