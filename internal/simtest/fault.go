package simtest

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"distjoin/internal/hybridq"
	"distjoin/internal/join"
	"distjoin/internal/obsrv"
	"distjoin/internal/storage"
)

// FaultTarget names one class of injectable I/O point.
type FaultTarget int

const (
	// TargetLeftTree fails an operation on the left tree's page store.
	TargetLeftTree FaultTarget = iota
	// TargetRightTree fails an operation on the right tree's page store.
	TargetRightTree
	// TargetQueue fails an operation on the main-queue segment store.
	TargetQueue
	// TargetSpill fails a hybrid-queue heap split (memory -> disk).
	TargetSpill
	// TargetReload fails a hybrid-queue segment swap-in (disk -> memory).
	TargetReload
	numTargets
)

// faultTargets lists every target in exploration order.
var faultTargets = [numTargets]FaultTarget{
	TargetLeftTree, TargetRightTree, TargetQueue, TargetSpill, TargetReload,
}

// String implements fmt.Stringer with the names ParseSchedule accepts.
func (t FaultTarget) String() string {
	switch t {
	case TargetLeftTree:
		return "ltree"
	case TargetRightTree:
		return "rtree"
	case TargetQueue:
		return "queue"
	case TargetSpill:
		return "spill"
	case TargetReload:
		return "reload"
	default:
		return fmt.Sprintf("FaultTarget(%d)", int(t))
	}
}

// FaultSchedule pins one injected fault: while running Algo, the
// Point-th operation (0-based) against Target fails.
type FaultSchedule struct {
	Algo   string
	Target FaultTarget
	Point  int
}

// String renders the schedule in the algo:target:point form
// ParseSchedule accepts — the -schedule= repro flag.
func (fs *FaultSchedule) String() string {
	return fmt.Sprintf("%s:%s:%d", fs.Algo, fs.Target, fs.Point)
}

// ParseSchedule decodes an algo:target:point schedule string.
func ParseSchedule(s string) (*FaultSchedule, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("simtest: schedule %q is not algo:target:point", s)
	}
	fs := &FaultSchedule{Algo: parts[0]}
	found := false
	for _, a := range Algorithms {
		if a == fs.Algo {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("simtest: schedule %q: unknown algorithm %q (have %v)", s, parts[0], Algorithms)
	}
	switch parts[1] {
	case "ltree":
		fs.Target = TargetLeftTree
	case "rtree":
		fs.Target = TargetRightTree
	case "queue":
		fs.Target = TargetQueue
	case "spill":
		fs.Target = TargetSpill
	case "reload":
		fs.Target = TargetReload
	default:
		return nil, fmt.Errorf("simtest: schedule %q: unknown target %q", s, parts[1])
	}
	p, err := strconv.Atoi(parts[2])
	if err != nil || p < 0 {
		return nil, fmt.Errorf("simtest: schedule %q: bad point %q", s, parts[2])
	}
	fs.Point = p
	return fs, nil
}

// ExploreOpts tunes fault exploration.
type ExploreOpts struct {
	// Algos restricts exploration to the named algorithms (nil = all).
	Algos []string
	// MaxPointsPerTarget samples at most this many points per
	// (algorithm, target); 0 explores every counted point.
	MaxPointsPerTarget int
}

// faultCounts is the per-target operation census of one clean run.
type faultCounts [numTargets]int

// faultEnv is an env whose every I/O point is instrumented: the tree
// stores are FaultStore-wrapped MemStores (built disarmed, so tree
// construction never consumes an armed budget), the main-queue store
// is created fresh per run, and the hybridq spill/reload transitions
// go through a counting hook. Each faultEnv serves one schedule (plus
// its recovery re-run): a fresh environment per schedule keeps serial
// runs bit-deterministic — cold buffer pools, identical page IDs —
// so the clean-run census maps exactly onto the armed run.
type faultEnv struct {
	*env
	lm, rm *storage.MemStore
	lf, rf *storage.FaultStore
	reg    *obsrv.Registry
}

// newFaultEnv builds the instrumented environment. ref, when non-nil,
// skips the brute-force oracle (ExploreFaults computes it once per
// scenario).
func newFaultEnv(s Scenario, ref []join.Result) (*faultEnv, error) {
	lm, rm := storage.NewMemStore(s.PageSize), storage.NewMemStore(s.PageSize)
	lf, rf := storage.NewFaultStore(lm, -1), storage.NewFaultStore(rm, -1)
	e, err := newEnv(s, lf, rf, ref)
	if err != nil {
		return nil, err
	}
	return &faultEnv{env: e, lm: lm, rm: rm, lf: lf, rf: rf, reg: obsrv.NewRegistry()}, nil
}

// opCount folds a store's cumulative stats into one operation count,
// mirroring FaultStore's tick (which charges Alloc, ReadPage and
// WritePage uniformly).
func opCount(st storage.StoreStats) int {
	return int(st.Reads + st.Writes + st.Allocs)
}

// run executes algo once. A nil sched is a clean (counting) run; a
// non-nil sched arms exactly one fault. The returned census counts the
// operations of THIS run (tree ops are measured as deltas, the queue
// store and the spill/reload hooks are fresh per run).
func (fe *faultEnv) run(algo string, sched *FaultSchedule) ([]join.Result, faultCounts, error) {
	fe.lf.Disarm()
	fe.rf.Disarm()
	qm := storage.NewMemStore(fe.s.PageSize)
	qf := storage.NewFaultStore(qm, -1)
	if sched != nil {
		switch sched.Target {
		case TargetLeftTree:
			fe.lf.Arm(sched.Point)
		case TargetRightTree:
			fe.rf.Arm(sched.Point)
		case TargetQueue:
			qf.Arm(sched.Point)
		}
	}
	// The sharded executor drives concurrent inner joins through this
	// hook (the serial engines only ever call it from the coordinating
	// goroutine), so the counters need the mutex.
	var hookMu sync.Mutex
	var spills, reloads int
	hook := func(op hybridq.FaultOp) error {
		hookMu.Lock()
		defer hookMu.Unlock()
		n, target := &spills, TargetSpill
		if op == hybridq.FaultReload {
			n, target = &reloads, TargetReload
		}
		i := *n
		*n++
		if sched != nil && sched.Target == target && sched.Point == i {
			return fmt.Errorf("simtest: injected %s fault at point %d: %w", target, i, storage.ErrInjected)
		}
		return nil
	}
	l0, r0 := fe.lm.Stats(), fe.rm.Stats()
	got, err := fe.runAlgo(algo, fe.options(fe.s.Parallelism, qf, hook, fe.reg), len(fe.ref))
	var counts faultCounts
	counts[TargetLeftTree] = opCount(fe.lm.Stats()) - opCount(l0)
	counts[TargetRightTree] = opCount(fe.rm.Stats()) - opCount(r0)
	counts[TargetQueue] = opCount(qm.Stats())
	counts[TargetSpill] = spills
	counts[TargetReload] = reloads
	return got, counts, err
}

// samplePoints picks the points to explore out of n counted ones: all
// of them when max <= 0 or n <= max, an evenly-strided subset (always
// including point 0) otherwise.
func samplePoints(n, max int) []int {
	if n <= 0 {
		return nil
	}
	if max <= 0 || n <= max {
		pts := make([]int, n)
		for i := range pts {
			pts[i] = i
		}
		return pts
	}
	pts := make([]int, 0, max)
	for i := 0; i < max; i++ {
		pts = append(pts, i*n/max)
	}
	return pts
}

// ExploreFaults runs the fault-schedule battery for one scenario: for
// each algorithm it counts every I/O point on a clean run (which must
// itself reproduce the oracle), then arms each counted point in turn
// and asserts the engine fails closed. It returns nil or the first
// *Failure, whose Error() carries the -seed= and -schedule= repro.
func ExploreFaults(s Scenario, opts ExploreOpts) error {
	base, err := newEnv(s, storage.NewMemStore(s.PageSize), storage.NewMemStore(s.PageSize), nil)
	if err != nil {
		return failf(s, nil, "fault-setup", "building environment: %v", err)
	}
	ref := base.ref
	algos := opts.Algos
	if len(algos) == 0 {
		algos = Algorithms
	}
	baseG := runtime.NumGoroutine()
	for _, algo := range algos {
		fe, err := newFaultEnv(s, ref)
		if err != nil {
			return failf(s, nil, "fault-setup", "building environment: %v", err)
		}
		got, counts, err := fe.run(algo, nil)
		if err != nil {
			return failf(s, nil, "fault-count", "%s clean run failed: %v", algo, err)
		}
		if err := fe.compareExact("fault-count", algo, got); err != nil {
			return err
		}
		for _, target := range faultTargets {
			for _, point := range samplePoints(counts[target], opts.MaxPointsPerTarget) {
				sched := &FaultSchedule{Algo: algo, Target: target, Point: point}
				// Serial execution is bit-deterministic, so an armed
				// point below the census total MUST fire and surface.
				mustFire := s.Parallelism <= 1
				if err := runSchedule(s, ref, sched, baseG, mustFire); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ErrScheduleNeverFires reports that a -schedule repro names a fault
// point the clean-run census proves unreachable: on a deterministic
// serial run the armed operation would never execute, so the "repro"
// would silently test nothing. Callers (cmd/distjoin-sim) surface it
// instead of reporting a hollow pass.
var ErrScheduleNeverFires = errors.New("simtest: schedule names a fault point that never fires")

// RunSchedule reproduces one fault schedule from the command line: a
// clean census run first (to decide whether the point is reachable),
// then the armed run with the full fail-closed battery.
//
// On a serial scenario the census is bit-deterministic, so a schedule
// point at or beyond the census total is rejected with
// ErrScheduleNeverFires rather than degraded into a no-op run. Under
// parallelism the census varies with scheduling, so an out-of-census
// point is still executed (the fault legitimately may or may not
// fire).
func RunSchedule(s Scenario, sched *FaultSchedule) error {
	fe, err := newFaultEnv(s, nil)
	if err != nil {
		return failf(s, sched, "fault-setup", "building environment: %v", err)
	}
	got, counts, err := fe.run(sched.Algo, nil)
	if err != nil {
		return failf(s, sched, "fault-count", "%s clean run failed: %v", sched.Algo, err)
	}
	if err := fe.compareExact("fault-count", sched.Algo, got); err != nil {
		return err
	}
	serial := s.Parallelism <= 1
	if serial && sched.Point >= counts[sched.Target] {
		return fmt.Errorf("%w: %s counted %d %s operation(s), schedule wants point %d",
			ErrScheduleNeverFires, sched.Algo, counts[sched.Target], sched.Target, sched.Point)
	}
	return runSchedule(s, fe.ref, sched, runtime.NumGoroutine(), serial)
}

// runSchedule executes one armed schedule on a fresh environment and
// applies the fail-closed battery:
//
//   - a surfaced error must wrap the injected fault (storage.ErrInjected);
//   - no surfaced error is acceptable only when the fault provably
//     could not have fired (parallel scheduling variance, or a point
//     beyond the census), and then the results must equal the oracle;
//   - the observability registry must show nothing in flight;
//   - the goroutine count must settle back to the pre-run baseline;
//   - a disarmed re-run on the same trees must reproduce the oracle
//     (the fault must not poison the buffer pool or tree state).
func runSchedule(s Scenario, ref []join.Result, sched *FaultSchedule, baseG int, mustFire bool) error {
	fe, err := newFaultEnv(s, ref)
	if err != nil {
		return failf(s, sched, "fault-setup", "building environment: %v", err)
	}
	got, _, runErr := fe.run(sched.Algo, sched)
	switch {
	case runErr != nil:
		if !errors.Is(runErr, storage.ErrInjected) {
			return failf(s, sched, "fault", "%s surfaced an error that does not wrap the injected fault: %v", sched.Algo, runErr)
		}
	case mustFire:
		return failf(s, sched, "fault", "%s swallowed the injected fault: no error surfaced on a deterministic serial run", sched.Algo)
	default:
		if err := fe.compareExact("fault", sched.Algo+" (fault unreached)", got); err != nil {
			return err
		}
	}
	if n := fe.reg.InFlight(); n != 0 {
		return failf(s, sched, "fault", "%d queries still in flight after faulted %s run", n, sched.Algo)
	}
	if err := settleGoroutines(baseG); err != nil {
		return failf(s, sched, "fault", "%s: %v", sched.Algo, err)
	}
	// Recovery: the injected fault must leave the shared state (trees,
	// buffer pools) clean enough that an immediate re-run reproduces
	// the oracle.
	rec, _, err := fe.run(sched.Algo, nil)
	if err != nil {
		return failf(s, sched, "fault-recovery", "%s re-run after fault failed: %v", sched.Algo, err)
	}
	if err := fe.compareExact("fault-recovery", sched.Algo, rec); err != nil {
		return err
	}
	if n := fe.reg.InFlight(); n != 0 {
		return failf(s, sched, "fault-recovery", "%d queries still in flight after recovery run", n)
	}
	return nil
}

// settleGoroutines waits for the goroutine count to return to (near)
// the baseline, catching leaked expansion workers. The small slack
// absorbs runtime-internal goroutines (GC workers) starting up.
func settleGoroutines(base int) error {
	const slack = 2
	deadline := time.Now().Add(2 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= base+slack {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutine leak: %d running, baseline %d", n, base)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}
