package simtest

import (
	"encoding/binary"
	"testing"
)

// FuzzScenario feeds arbitrary bytes through the shared scenario
// decoder and runs the full logic battery on whatever configuration
// falls out: the fuzzer explores knob combinations (workload x
// parallelism x eDmax mode x refinement x queue model) far faster than
// the seed sweep's uniform sampling does. Any crash or oracle
// violation minimizes to a corpus entry whose first 8 bytes are the
// seed.
func FuzzScenario(f *testing.F) {
	seedBytes := func(seed uint64, rest ...byte) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], seed)
		return append(b[:], rest...)
	}
	f.Add(seedBytes(1))
	f.Add(seedBytes(2, 3, 1, 2, 40, 0, 1, 0)) // self-join, par=2, eDmax over, small k, tight queue, refined
	f.Add(seedBytes(15))
	f.Add(seedBytes(7, 0, 2, 1, 9, 3, 0, 1)) // uniform, par=8, under, model-free queue
	f.Fuzz(func(t *testing.T, data []byte) {
		s := FromBytes(data)
		if err := Check(s); err != nil {
			t.Fatal(err)
		}
	})
}
