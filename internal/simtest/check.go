package simtest

import (
	"fmt"
	"math"

	"distjoin/internal/geom"
	"distjoin/internal/join"
	"distjoin/internal/obsrv"
	"distjoin/internal/rtree"
	"distjoin/internal/shard"
	"distjoin/internal/storage"
)

// Check runs the full logic battery for one scenario: the differential
// oracle across every algorithm, then the metamorphic invariants. It
// returns nil or the first *Failure found. Check performs no fault
// injection — that is ExploreFaults.
func Check(s Scenario) error {
	e, err := newEnv(s, storage.NewMemStore(s.PageSize), storage.NewMemStore(s.PageSize), nil)
	if err != nil {
		return failf(s, nil, "setup", "building environment: %v", err)
	}
	reg := obsrv.NewRegistry()

	// Differential: every algorithm must reproduce the brute-force
	// reference exactly — the paper's §4.1 equivalence claim.
	for _, name := range Algorithms {
		got, err := e.runAlgo(name, e.options(s.Parallelism, nil, nil, reg), len(e.ref))
		if err != nil {
			return failf(s, nil, "differential/"+name, "unexpected error: %v", err)
		}
		if err := e.compareExact("differential", name, got); err != nil {
			return err
		}
	}

	// Cross-parallelism identity: the parallel engine's determinism
	// contract says worker count never changes the emitted pairs.
	for _, name := range []string{"B-KDJ", "AM-KDJ", "AM-IDJ"} {
		for _, par := range []int{1, 2, 8} {
			if par == s.Parallelism {
				continue // already covered by the differential run
			}
			got, err := e.runAlgo(name, e.options(par, nil, nil, reg), len(e.ref))
			if err != nil {
				return failf(s, nil, "parallelism/"+name, "par=%d unexpected error: %v", par, err)
			}
			if err := e.compareExact("parallelism", fmt.Sprintf("%s(par=%d)", name, par), got); err != nil {
				return err
			}
		}
	}

	// Cross-shard-count identity: the sharded executor's determinism
	// contract says neither the shard count nor the worker count can
	// change the emitted pairs — every (shards, parallelism) cell must
	// be byte-identical to the oracle.
	for _, name := range []string{"AM-KDJ", "B-KDJ"} {
		algo := shard.AMKDJ
		if name == "B-KDJ" {
			algo = shard.BKDJ
		}
		for _, shards := range []int{1, 4, 9} {
			for _, par := range []int{1, 8} {
				got, err := e.runShard(algo, shards, e.options(par, nil, nil, reg))
				if err != nil {
					return failf(s, nil, "shard-identity/"+name, "s=%d par=%d unexpected error: %v", shards, par, err)
				}
				if err := e.compareExact("shard-identity", fmt.Sprintf("%s(s=%d,par=%d)", name, shards, par), got); err != nil {
					return err
				}
			}
		}
	}

	if err := checkKPrefix(e, reg); err != nil {
		return err
	}
	if err := checkWithinSuperset(e, reg); err != nil {
		return err
	}
	if err := checkIncrementalMonotone(e, reg); err != nil {
		return err
	}
	if err := checkTranslation(e, reg); err != nil {
		return err
	}
	if err := checkScale(e, reg); err != nil {
		return err
	}

	// Every query begun against the registry must have ended — an
	// in-flight leftover means some path skipped endQuery.
	if n := reg.InFlight(); n != 0 {
		return failf(s, nil, "registry", "%d queries still in flight after all runs", n)
	}
	return nil
}

// checkKPrefix asserts k-prefix monotonicity: the k/2 closest pairs
// are exactly the first k/2 of the k closest pairs. Under the
// canonical tie-break the top-k set is a pure function of the data, so
// this must hold exactly, not just set-wise.
func checkKPrefix(e *env, reg *obsrv.Registry) error {
	k2 := (e.s.K + 1) / 2
	if k2 == e.s.K {
		return nil
	}
	got, err := join.AMKDJ(e.lt, e.rt, k2, e.options(e.s.Parallelism, nil, nil, reg))
	if err != nil {
		return failf(e.s, nil, "k-prefix", "AM-KDJ k=%d unexpected error: %v", k2, err)
	}
	want := e.ref
	if len(want) > k2 {
		want = want[:k2]
	}
	return e.compareExactTo("k-prefix", fmt.Sprintf("AM-KDJ(k=%d)", k2), got, want)
}

// checkWithinSuperset asserts WithinJoin(Dmax_k) ⊇ top-k: the within
// join at the true k-th distance must stream every reference pair (and
// nothing farther than the threshold).
func checkWithinSuperset(e *env, reg *obsrv.Registry) error {
	if len(e.ref) == 0 {
		return nil
	}
	type pairID struct{ l, r int64 }
	seen := make(map[pairID]bool)
	var tooFar *join.Result
	err := join.WithinJoin(e.lt, e.rt, e.kth, e.options(e.s.Parallelism, nil, nil, reg), func(r join.Result) bool {
		seen[pairID{r.LeftObj, r.RightObj}] = true
		if r.Dist > e.kth && tooFar == nil {
			cp := r
			tooFar = &cp
			return false
		}
		return true
	})
	if err != nil {
		return failf(e.s, nil, "within-superset", "WithinJoin unexpected error: %v", err)
	}
	if tooFar != nil {
		return failf(e.s, nil, "within-superset", "WithinJoin(%.17g) produced pair (%d,%d) at dist %.17g beyond the threshold",
			e.kth, tooFar.LeftObj, tooFar.RightObj, tooFar.Dist)
	}
	for _, w := range e.ref {
		if !seen[pairID{w.LeftObj, w.RightObj}] {
			return failf(e.s, nil, "within-superset", "WithinJoin(%.17g) missed reference pair (%d,%d) at dist %.17g",
				e.kth, w.LeftObj, w.RightObj, w.Dist)
		}
	}
	return nil
}

// checkIncrementalMonotone pulls AM-IDJ past the reference length and
// asserts the stream stays sorted: the first len(ref) results are the
// reference exactly, and every further result is no closer than Dmax_k.
func checkIncrementalMonotone(e *env, reg *obsrv.Registry) error {
	it, err := join.AMIDJ(e.lt, e.rt, e.options(e.s.Parallelism, nil, nil, reg))
	if err != nil {
		return failf(e.s, nil, "idj-monotone", "AM-IDJ unexpected error: %v", err)
	}
	defer func() { it.Close(); it.Close() }()
	got, err := drainIter(it.Next, it.Err, len(e.ref)+3)
	if err != nil {
		return failf(e.s, nil, "idj-monotone", "AM-IDJ unexpected error: %v", err)
	}
	n := len(e.ref)
	if len(got) < n {
		return failf(e.s, nil, "idj-monotone", "AM-IDJ produced %d results, oracle has %d", len(got), n)
	}
	if err := e.compareExactTo("idj-monotone", "AM-IDJ", got[:n], e.ref); err != nil {
		return err
	}
	prev := e.kth
	for i := n; i < len(got); i++ {
		if got[i].Dist < prev {
			return failf(e.s, nil, "idj-monotone", "AM-IDJ result %d dist %.17g < previous %.17g (stream not sorted)",
				i, got[i].Dist, prev)
		}
		//lint:allow floatcmp oracle cross-check: the harness recomputes the same pure distance, so bit-equality is the invariant under test
		if d := e.pairDist(got[i].LeftRect, got[i].RightRect); d != got[i].Dist {
			return failf(e.s, nil, "idj-monotone", "AM-IDJ result %d dist %.17g inconsistent with its rects (%.17g)",
				i, got[i].Dist, d)
		}
		prev = got[i].Dist
	}
	return nil
}

// transformItems returns a deep copy of items with f applied to every
// rect.
func transformItems(items []rtree.Item, f func(geom.Rect) geom.Rect) []rtree.Item {
	out := make([]rtree.Item, len(items))
	for i, it := range items {
		out[i] = rtree.Item{Obj: it.Obj, Rect: f(it.Rect)}
	}
	return out
}

// checkTranslation asserts translation invariance: shifting every
// rectangle by the same offset must leave the result distances
// unchanged up to floating-point tolerance. Pair identities are NOT
// compared — a translation can legitimately flip which of two
// almost-tied pairs lands on the k boundary — so the check is over the
// sorted distance multiset only.
func checkTranslation(e *env, reg *obsrv.Registry) error {
	s := e.s
	tx, ty := s.WorldSide+123.456, -0.5*s.WorldSide-7.875
	shift := func(r geom.Rect) geom.Rect {
		return geom.NewRect(r.MinX+tx, r.MinY+ty, r.MaxX+tx, r.MaxY+ty)
	}
	te, err := newEnvItems(s,
		transformItems(e.left, shift), transformItems(e.right, shift),
		storage.NewMemStore(s.PageSize), storage.NewMemStore(s.PageSize),
		e.ref) // reuse the reference so kth (≈ translation-invariant) drives the EDmax overrides
	if err != nil {
		return failf(s, nil, "translation", "building translated environment: %v", err)
	}
	got, err := te.runAlgo("AM-KDJ", te.options(s.Parallelism, nil, nil, reg), len(e.ref))
	if err != nil {
		return failf(s, nil, "translation", "AM-KDJ unexpected error: %v", err)
	}
	if len(got) != len(e.ref) {
		return failf(s, nil, "translation", "AM-KDJ returned %d results on translated data, oracle has %d", len(got), len(e.ref))
	}
	for i := range got {
		want := e.ref[i].Dist
		tol := 1e-9 * (s.WorldSide + want + math.Abs(tx) + math.Abs(ty))
		if math.Abs(got[i].Dist-want) > tol {
			return failf(s, nil, "translation", "result %d dist %.17g on translated data, %.17g on original (tol %.3g)",
				i, got[i].Dist, want, tol)
		}
	}
	return nil
}

// checkScale asserts power-of-two scale equivariance: multiplying
// every coordinate by 4 multiplies every result distance by exactly 4
// (scaling by a power of two commutes with IEEE rounding through the
// squares and the square root), with identical pair identities.
func checkScale(e *env, reg *obsrv.Registry) error {
	const f = 4.0
	s := e.s
	scale := func(r geom.Rect) geom.Rect {
		return geom.NewRect(r.MinX*f, r.MinY*f, r.MaxX*f, r.MaxY*f)
	}
	ref := make([]join.Result, len(e.ref))
	for i, w := range e.ref {
		ref[i] = join.Result{
			LeftObj: w.LeftObj, RightObj: w.RightObj,
			LeftRect: scale(w.LeftRect), RightRect: scale(w.RightRect),
			Dist: w.Dist * f,
		}
	}
	se, err := newEnvItems(s,
		transformItems(e.left, scale), transformItems(e.right, scale),
		storage.NewMemStore(s.PageSize), storage.NewMemStore(s.PageSize), ref)
	if err != nil {
		return failf(s, nil, "scale", "building scaled environment: %v", err)
	}
	got, err := se.runAlgo("AM-KDJ", se.options(s.Parallelism, nil, nil, reg), len(ref))
	if err != nil {
		return failf(s, nil, "scale", "AM-KDJ unexpected error: %v", err)
	}
	return se.compareExact("scale", "AM-KDJ(x4)", got)
}
