package simtest

import (
	"fmt"
	"sort"

	"distjoin/internal/geom"
	"distjoin/internal/hybridq"
	"distjoin/internal/join"
	"distjoin/internal/obsrv"
	"distjoin/internal/rtree"
	"distjoin/internal/shard"
	"distjoin/internal/storage"
)

// Algorithms lists every algorithm the harness drives, in run order.
// The first entry is the paper's baseline; §4.1's equivalence claim is
// that all of them emit exactly the same k closest pairs. The "/sN"
// suffixed entries are the partition-parallel sharded executor over N
// shards (internal/shard), which inherits the full differential and
// fault battery through this list.
var Algorithms = []string{"HS-KDJ", "B-KDJ", "AM-KDJ", "SJ-SORT", "HS-IDJ", "AM-IDJ", "AM-KDJ/s4", "B-KDJ/s9"}

// env is one materialized scenario: the data, the packed trees, and
// the brute-force reference.
type env struct {
	s           Scenario
	left, right []rtree.Item
	lt, rt      *rtree.Tree
	ref         []join.Result // oracle: the true nearest pairs, canonical order
	kth         float64       // Dmax_k — distance of the last reference pair
}

// newEnv builds trees for s on the given stores. ref, when non-nil, is
// a precomputed oracle reference (fault exploration re-enters here per
// schedule and must not pay the O(|R|·|S|) brute force each time).
func newEnv(s Scenario, lstore, rstore storage.Store, ref []join.Result) (*env, error) {
	l, r := s.Items()
	return newEnvItems(s, l, r, lstore, rstore, ref)
}

// newEnvItems is newEnv for explicit item sets — the metamorphic
// checks feed translated and scaled copies of the scenario's data
// through here, together with the correspondingly transformed
// reference.
func newEnvItems(s Scenario, l, r []rtree.Item, lstore, rstore storage.Store, ref []join.Result) (*env, error) {
	e := &env{s: s, left: l, right: r, ref: ref}
	var err error
	if e.lt, err = buildTree(s, l, lstore); err != nil {
		return nil, fmt.Errorf("left tree: %w", err)
	}
	if e.rt, err = buildTree(s, r, rstore); err != nil {
		return nil, fmt.Errorf("right tree: %w", err)
	}
	if e.ref == nil {
		e.ref = e.brute(s.K)
	}
	if len(e.ref) > 0 {
		e.kth = e.ref[len(e.ref)-1].Dist
	}
	return e, nil
}

// buildTree packs items into a paged R-tree per the scenario's index
// knobs: an explicit fanout when set, otherwise the page-size-derived
// maximum.
func buildTree(s Scenario, items []rtree.Item, store storage.Store) (*rtree.Tree, error) {
	var (
		b   *rtree.Builder
		err error
	)
	if s.Fanout > 0 {
		b, err = rtree.NewBuilder(s.Fanout)
	} else {
		b, err = rtree.NewBuilderForPageSize(store.PageSize())
	}
	if err != nil {
		return nil, err
	}
	b.BulkLoad(items)
	return b.Pack(store, s.BufBytes)
}

// pairDist is the scenario's ranking metric: exact center distance for
// refined scenarios (always >= the MBR MinDist, as the refiner
// contract requires, since centers lie inside their rects), MBR
// MinDist otherwise.
func (e *env) pairDist(a, b geom.Rect) float64 {
	if e.s.Refine {
		return a.CenterDist(b)
	}
	return a.MinDist(b)
}

// refiner returns the Options.Refiner for refined scenarios, nil
// otherwise.
func (e *env) refiner() func(int64, int64, geom.Rect, geom.Rect) float64 {
	if !e.s.Refine {
		return nil
	}
	return func(_, _ int64, l, r geom.Rect) float64 { return l.CenterDist(r) }
}

// brute computes the k nearest pairs exhaustively under the scenario's
// semantics (self-join dedup, refined metric), sorted by the engine's
// canonical tie-break (distance, then left ID, then right ID; all IDs
// are non-negative so int64 and uint64 order agree).
func (e *env) brute(k int) []join.Result {
	if k <= 0 {
		return nil
	}
	all := make([]join.Result, 0, len(e.left)*len(e.right)/2)
	for _, a := range e.left {
		for _, b := range e.right {
			if e.s.SelfJoin() && a.Obj >= b.Obj {
				continue
			}
			all = append(all, join.Result{
				LeftObj: a.Obj, RightObj: b.Obj,
				LeftRect: a.Rect, RightRect: b.Rect,
				Dist: e.pairDist(a.Rect, b.Rect),
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		//lint:allow floatcmp oracle tie-break mirrors the engine's bit-exact result order (hybridq.Pair.Less)
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		if all[i].LeftObj != all[j].LeftObj {
			return all[i].LeftObj < all[j].LeftObj
		}
		return all[i].RightObj < all[j].RightObj
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// options assembles the engine Options for this scenario.
//
//	par   — worker count (the scenario's own value, or an override for
//	        the cross-parallelism identity check)
//	qs    — main-queue store; nil uses a private MemStore
//	hook  — hybridq spill/reload fault hook; nil disables
//	reg   — observability registry; the harness attaches one per run
//	        and asserts nothing is left in flight
func (e *env) options(par int, qs storage.Store, hook func(hybridq.FaultOp) error, reg *obsrv.Registry) join.Options {
	sp := e.s.Sweep
	o := join.Options{
		QueueMemBytes:     e.s.QueueMem,
		QueueStore:        qs,
		Sweep:             &sp,
		DistanceQueue:     e.s.DQPolicy,
		Correction:        e.s.Correction,
		BatchK:            e.s.BatchK,
		DisableQueueModel: e.s.NoQueueModel,
		SelfJoin:          e.s.SelfJoin(),
		Parallelism:       par,
		Refiner:           e.refiner(),
		QueueFaultHook:    hook,
		Registry:          reg,
	}
	switch e.s.EDmaxMode {
	case EDmaxUnder:
		if e.kth > 0 {
			o.EDmax = e.kth * 0.25
		}
	case EDmaxOver:
		if e.kth > 0 {
			o.EDmax = e.kth * 4
		}
	}
	return o
}

// runAlgo executes one named algorithm. The incremental iterators pull
// at most limit results (they would otherwise drain the full cross
// product); their Close is always called twice, pinning idempotency on
// every path the harness touches.
func (e *env) runAlgo(name string, opts join.Options, limit int) ([]join.Result, error) {
	switch name {
	case "HS-KDJ":
		return join.HSKDJ(e.lt, e.rt, e.s.K, opts)
	case "B-KDJ":
		return join.BKDJ(e.lt, e.rt, e.s.K, opts)
	case "AM-KDJ":
		return join.AMKDJ(e.lt, e.rt, e.s.K, opts)
	case "SJ-SORT":
		// dmax plays the oracle role exactly as in the paper's §5: the
		// true k-th distance.
		return join.SJSort(e.lt, e.rt, e.s.K, e.kth, opts)
	case "HS-IDJ":
		it, err := join.HSIDJ(e.lt, e.rt, opts)
		if err != nil {
			return nil, err
		}
		defer func() { it.Close(); it.Close() }()
		return drainIter(it.Next, it.Err, limit)
	case "AM-IDJ":
		it, err := join.AMIDJ(e.lt, e.rt, opts)
		if err != nil {
			return nil, err
		}
		defer func() { it.Close(); it.Close() }()
		return drainIter(it.Next, it.Err, limit)
	case "AM-KDJ/s4":
		return e.runShard(shard.AMKDJ, 4, opts)
	case "B-KDJ/s9":
		return e.runShard(shard.BKDJ, 9, opts)
	default:
		return nil, fmt.Errorf("simtest: unknown algorithm %q", name)
	}
}

// runShard executes the partition-parallel executor over the
// scenario's trees, reusing the scenario's index knobs for the
// per-shard trees.
func (e *env) runShard(algo shard.Algo, shards int, opts join.Options) ([]join.Result, error) {
	cfg := shard.Config{Shards: shards, PageSize: e.s.PageSize, BufBytes: e.s.BufBytes}
	return shard.KDJ(e.lt, e.rt, e.s.K, algo, cfg, opts)
}

// drainIter pulls up to limit results from an incremental iterator and
// verifies terminal-state stability: once Next reports !ok it must
// keep doing so.
func drainIter(next func() (join.Result, bool), errf func() error, limit int) ([]join.Result, error) {
	var out []join.Result
	for len(out) < limit {
		res, ok := next()
		if !ok {
			if _, again := next(); again {
				return out, fmt.Errorf("simtest: iterator produced a result after reporting exhaustion")
			}
			break
		}
		out = append(out, res)
	}
	return out, errf()
}

// compareExact checks got against the oracle reference: same length,
// bit-identical distances, identical pair identities, and internal
// consistency (each reported distance must match the reported rects
// under the scenario metric).
func (e *env) compareExact(check, name string, got []join.Result) error {
	return e.compareExactTo(check, name, got, e.ref)
}

// compareExactTo is compareExact against an explicit expectation (a
// reference prefix for the k-monotonicity check).
//
//lint:allow floatcmp oracle comparison is bit-exact by design: the engines must reproduce the reference distances exactly
func (e *env) compareExactTo(check, name string, got, want []join.Result) error {
	if len(got) != len(want) {
		return failf(e.s, nil, check, "%s returned %d results, oracle has %d", name, len(got), len(want))
	}
	for i := range got {
		w := want[i]
		if got[i].Dist != w.Dist {
			return failf(e.s, nil, check, "%s result %d dist %.17g, oracle %.17g", name, i, got[i].Dist, w.Dist)
		}
		if got[i].LeftObj != w.LeftObj || got[i].RightObj != w.RightObj {
			return failf(e.s, nil, check, "%s result %d pair (%d,%d), oracle (%d,%d) at dist %.17g",
				name, i, got[i].LeftObj, got[i].RightObj, w.LeftObj, w.RightObj, w.Dist)
		}
		if d := e.pairDist(got[i].LeftRect, got[i].RightRect); d != got[i].Dist {
			return failf(e.s, nil, check, "%s result %d dist %.17g inconsistent with its rects (%.17g)",
				name, i, got[i].Dist, d)
		}
	}
	return nil
}
