package simtest

import (
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/obsrv"
	"distjoin/internal/storage"
)

// TestSoAIdentityBattery extends the standard seed sweep with a fresh
// block of seeds as the struct-of-arrays identity battery: the join
// engine now decodes leaves into SoA columns and refines leaf pairs
// through the geom batch kernels, and every algorithm's output must
// stay exactly what the scalar reference produces. The differential
// oracle compares against a brute-force computation that never touches
// the SoA path, so any divergence — ordering, distance bits, result
// set — fails the battery. (Seeds 1..40 run in TestCheckSeeds; this
// block extends the swept range rather than re-checking it.)
func TestSoAIdentityBattery(t *testing.T) {
	lo, hi := int64(41), int64(70)
	if testing.Short() {
		hi = lo + 7
	}
	for seed := lo; seed <= hi; seed++ {
		if err := Check(FromSeed(seed)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchTailMutationSmoke validates that the oracle would catch a
// batch-kernel bug: with the planted off-by-one in MinDistSqBatch tail
// handling installed (the last lane of every batch duplicates its
// neighbor — the classic vectorized-rewrite failure), the differential
// oracle must flag wrong results within a bounded number of seeds.
// Mirrors TestMutationSmoke's pruning-cutoff mutation; the hook is
// process-global, so the run is pinned to serial AM-KDJ.
func TestBatchTailMutationSmoke(t *testing.T) {
	const maxSeeds = 100
	restore := geom.SetBatchTailMutation()
	defer restore()
	for seed := int64(1); seed <= maxSeeds; seed++ {
		s := FromSeed(seed)
		e, err := newEnv(s, storage.NewMemStore(s.PageSize), storage.NewMemStore(s.PageSize), nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := e.runAlgo("AM-KDJ", e.options(1, nil, nil, obsrv.NewRegistry()), len(e.ref))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := e.compareExact("batch-tail-smoke", "AM-KDJ", got); err != nil {
			t.Logf("batch-tail mutation caught at seed %d: %v", seed, err)
			restore()
			// The restored kernel must pass again on the same seed,
			// pinning that the failure came from the mutation.
			got, err := e.runAlgo("AM-KDJ", e.options(1, nil, nil, obsrv.NewRegistry()), len(e.ref))
			if err != nil {
				t.Fatalf("seed %d after restore: %v", seed, err)
			}
			if err := e.compareExact("batch-tail-smoke", "AM-KDJ", got); err != nil {
				t.Fatalf("restored kernel still failing: %v", err)
			}
			return
		}
	}
	t.Fatalf("batch-tail mutation survived %d seeds undetected — the oracle is blind to the batch path", maxSeeds)
}
