// Package simtest is the deterministic simulation harness for the
// distance-join engine: seed-reproducible randomized scenarios run
// through every algorithm (HS-KDJ, B-KDJ, AM-KDJ, SJ-SORT and the
// HS-IDJ / AM-IDJ incremental iterators) and are checked three ways —
//
//   - differentially, against the brute-force oracle and against each
//     other under the engine's canonical tie-break (the paper's §4.1
//     claim: the adaptive multi-stage algorithms return *exactly* the
//     k closest pairs HS-KDJ returns, despite aggressive pruning and
//     compensation);
//   - metamorphically, through invariants that need no oracle at all:
//     translation invariance, power-of-two scale equivariance,
//     k-prefix monotonicity, WithinJoin(Dmax_k) ⊇ top-k, and
//     result-set identity across Parallelism 1/2/8;
//   - under fault schedules: every I/O point (R-tree page reads, main
//     queue store operations, hybridq spill/reload transitions) is
//     counted on a clean run and then failed one at a time, proving
//     each algorithm fails closed — a surfaced error wrapping the
//     injected fault, idempotent iterator Close, no goroutine leaks,
//     no query left in flight, and engine state clean enough that an
//     immediate re-run on the same trees reproduces the reference.
//
// Every failure renders as a single line carrying the -seed= (and,
// for fault failures, -schedule=) flags that reproduce it under
// cmd/distjoin-sim. The harness is itself validated by a mutation
// smoke test: with a deliberately broken pruning cutoff installed
// (join.SetPruneMutation) the differential oracle must catch the bug
// within a bounded number of seeds.
package simtest

import "fmt"

// Failure is one detected violation, carrying everything needed to
// reproduce it from the command line.
type Failure struct {
	// Scenario is the failing configuration.
	Scenario Scenario
	// Schedule is the fault schedule in effect, nil for logic
	// (differential / metamorphic) failures.
	Schedule *FaultSchedule
	// Check names the violated oracle or invariant.
	Check string
	// Detail is the human-readable mismatch description.
	Detail string
}

// Error renders the failure with its one-line repro.
func (f *Failure) Error() string {
	repro := fmt.Sprintf("-seed=%d", f.Scenario.Seed)
	if f.Schedule != nil {
		repro += fmt.Sprintf(" -schedule=%s", f.Schedule)
	}
	return fmt.Sprintf("simtest FAIL [%s] %s | scenario: %s | repro: go run ./cmd/distjoin-sim %s",
		f.Check, f.Detail, f.Scenario, repro)
}

// failf builds a *Failure as an error.
func failf(s Scenario, sched *FaultSchedule, check, format string, args ...any) error {
	return &Failure{Scenario: s, Schedule: sched, Check: check, Detail: fmt.Sprintf(format, args...)}
}
