package estimate

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"distjoin/internal/geom"
)

func unitModel(t *testing.T, nr, ns int) Model {
	t.Helper()
	m, err := NewModel(geom.NewRect(0, 0, 1, 1), nr, geom.NewRect(0, 0, 1, 1), ns)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(geom.Rect{}, 0, geom.Rect{}, 5); err == nil {
		t.Fatal("zero cardinality must be rejected")
	}
	if _, err := NewModel(geom.Rect{}, 5, geom.Rect{}, -1); err == nil {
		t.Fatal("negative cardinality must be rejected")
	}
}

func TestRho(t *testing.T) {
	m := unitModel(t, 100, 200)
	want := 1.0 / (math.Pi * 100 * 200)
	if math.Abs(m.Rho()-want) > 1e-15 {
		t.Fatalf("rho = %g, want %g", m.Rho(), want)
	}
}

func TestDisjointBoundsFallBackToUnion(t *testing.T) {
	r := geom.NewRect(0, 0, 1, 1)
	s := geom.NewRect(5, 5, 6, 6)
	m, err := NewModel(r, 10, s, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantArea := r.Union(s).Area() // 36
	if got := m.Rho() * math.Pi * 100; math.Abs(got-wantArea) > 1e-9 {
		t.Fatalf("union-area fallback: got area %g, want %g", got, wantArea)
	}
}

func TestDegenerateBoundsGiveZeroRho(t *testing.T) {
	// Collinear points: zero-area boxes everywhere.
	line := geom.NewRect(0, 5, 10, 5)
	m, err := NewModel(line, 10, line, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rho() != 0 {
		t.Fatalf("rho = %g, want 0 for degenerate bounds", m.Rho())
	}
	if m.Initial(100) != 0 {
		t.Fatal("initial estimate must be 0 with zero rho")
	}
}

func TestInitialFormula(t *testing.T) {
	m := unitModel(t, 1000, 1000)
	for _, k := range []int{1, 10, 100, 100000} {
		want := math.Sqrt(float64(k) * m.Rho())
		if got := m.Initial(k); math.Abs(got-want) > 1e-15 {
			t.Fatalf("Initial(%d) = %g, want %g", k, got, want)
		}
	}
	if m.Initial(0) != 0 || m.Initial(-5) != 0 {
		t.Fatal("non-positive k must estimate 0")
	}
}

// The Eq. 3 model counts about k pairs within the estimated distance
// on actual uniform data (within a generous tolerance: boundary
// effects bias it).
func TestInitialPredictsPairCountOnUniformData(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n = 700
	ptsR := make([]geom.Point, n)
	ptsS := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		ptsR[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
		ptsS[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	m := unitModel(t, n, n)
	for _, k := range []int{100, 1000, 5000} {
		d := m.Initial(k)
		count := 0
		for _, p := range ptsR {
			for _, q := range ptsS {
				dx, dy := p.X-q.X, p.Y-q.Y
				if math.Sqrt(dx*dx+dy*dy) <= d {
					count++
				}
			}
		}
		// Expect count within a factor of 2 of k (uniform model with
		// boundary effects).
		if count < k/2 || count > k*2 {
			t.Fatalf("k=%d: model distance %g captured %d pairs", k, d, count)
		}
	}
}

// The Eq. 3 estimate equals the true Dmax within a small constant
// factor for uniform data — and overestimates for clustered data, the
// tendency §4.3 predicts.
func TestInitialOverestimatesForClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	const n = 500
	const k = 200
	// Clustered: all points inside a tiny patch of the unit square.
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: 0.5 + rng.Float64()*0.01, Y: 0.5 + rng.Float64()*0.01}
	}
	// The declared bounds are the full unit square (as an R-tree root
	// would report for a sparse but wide data set plus one outlier).
	m, err := NewModel(geom.NewRect(0, 0, 1, 1), n, geom.NewRect(0, 0, 1, 1), n)
	if err != nil {
		t.Fatal(err)
	}
	est := m.Initial(k)
	real := kthPairDistance(pts, pts, k)
	if est < real {
		t.Fatalf("clustered data: estimate %g should overestimate real %g", est, real)
	}
}

func kthPairDistance(a, b []geom.Point, k int) float64 {
	var ds []float64
	for _, p := range a {
		for _, q := range b {
			dx, dy := p.X-q.X, p.Y-q.Y
			ds = append(ds, math.Sqrt(dx*dx+dy*dy))
		}
	}
	sort.Float64s(ds)
	return ds[k-1]
}

func TestCorrectArithmetic(t *testing.T) {
	m := unitModel(t, 100, 100)
	d := m.CorrectArithmetic(1000, 100, 0.05)
	want := math.Sqrt(0.05*0.05 + 900*m.Rho())
	if math.Abs(d-want) > 1e-15 {
		t.Fatalf("arithmetic = %g, want %g", d, want)
	}
	// k <= k0: nothing to extrapolate.
	if got := m.CorrectArithmetic(50, 100, 0.05); got != 0.05 {
		t.Fatalf("k<=k0: %g, want 0.05", got)
	}
}

func TestCorrectGeometric(t *testing.T) {
	m := unitModel(t, 100, 100)
	if got, want := m.CorrectGeometric(400, 100, 0.05), 0.05*2; math.Abs(got-want) > 1e-15 {
		t.Fatalf("geometric = %g, want %g", got, want)
	}
	if got := m.CorrectGeometric(50, 100, 0.05); got != 0.05 {
		t.Fatalf("k<=k0: %g", got)
	}
	// Fallback to arithmetic when dK0 == 0 or k0 == 0.
	if got, want := m.CorrectGeometric(100, 0, 0), m.CorrectArithmetic(100, 0, 0); got != want {
		t.Fatalf("fallback: %g vs %g", got, want)
	}
	if got, want := m.CorrectGeometric(100, 10, 0), m.CorrectArithmetic(100, 10, 0); got != want {
		t.Fatalf("zero-distance fallback: %g vs %g", got, want)
	}
}

func TestCorrectModes(t *testing.T) {
	m := unitModel(t, 100, 100)
	k, k0, d := 1000, 100, 0.01
	arith := m.CorrectArithmetic(k, k0, d)
	geo := m.CorrectGeometric(k, k0, d)
	if got := m.Correct(Aggressive, k, k0, d); got != math.Min(arith, geo) {
		t.Fatalf("aggressive = %g, want min(%g,%g)", got, arith, geo)
	}
	if got := m.Correct(Conservative, k, k0, d); got != math.Max(arith, geo) {
		t.Fatalf("conservative = %g", got)
	}
	if got := m.Correct(ArithmeticOnly, k, k0, d); got != arith {
		t.Fatalf("arithmetic-only = %g", got)
	}
	if got := m.Correct(GeometricOnly, k, k0, d); got != geo {
		t.Fatalf("geometric-only = %g", got)
	}
}

func TestModeString(t *testing.T) {
	if Aggressive.String() != "aggressive" || Conservative.String() != "conservative" ||
		ArithmeticOnly.String() != "arithmetic" || GeometricOnly.String() != "geometric" {
		t.Fatal("mode strings mismatch")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode must still render")
	}
}

// Property: corrections are monotone in k and consistent with the
// initial estimate at k0 = 0 observations.
func TestCorrectionMonotonicity(t *testing.T) {
	m := unitModel(t, 500, 500)
	prevA, prevG := 0.0, 0.0
	for k := 100; k <= 10000; k += 100 {
		a := m.CorrectArithmetic(k, 50, 0.001)
		g := m.CorrectGeometric(k, 50, 0.001)
		if a < prevA || g < prevG {
			t.Fatalf("corrections must be nondecreasing in k")
		}
		prevA, prevG = a, g
	}
}

func TestQueueBoundary(t *testing.T) {
	m := unitModel(t, 100, 100)
	n := 1000
	if m.QueueBoundary(0, n) != 0 || m.QueueBoundary(1, 0) != 0 {
		t.Fatal("degenerate boundaries must be 0")
	}
	b1 := m.QueueBoundary(1, n)
	b2 := m.QueueBoundary(2, n)
	if math.Abs(b1-math.Sqrt(float64(n)*m.Rho())) > 1e-15 {
		t.Fatalf("boundary 1 = %g", b1)
	}
	if math.Abs(b2-math.Sqrt(2*float64(n)*m.Rho())) > 1e-15 {
		t.Fatalf("boundary 2 = %g", b2)
	}
	if b2 <= b1 {
		t.Fatal("boundaries must increase")
	}
}
