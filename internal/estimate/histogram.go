package estimate

import (
	"fmt"
	"math"

	"distjoin/internal/geom"
)

// Estimator produces and corrects estimates of the k-th nearest pair
// distance. Model (the paper's uniform Eq. 3-5) and Histogram (the
// §6 future-work direction for non-uniform data) both implement it.
type Estimator interface {
	// Initial estimates the distance of the k-th nearest pair.
	Initial(k int) float64
	// Correct revises the estimate mid-query given that k0 pairs have
	// been produced and the k0-th pair's distance is dK0.
	Correct(mode Mode, k, k0 int, dK0 float64) float64
}

// Model implements Estimator.
var _ Estimator = Model{}

// Histogram estimates join selectivity from per-cell object counts on
// a g x g grid over the join area — the paper's §6 future work for
// skewed data, where the uniform model systematically overestimates
// eDmax (§4.3, confirmed in §5.4). The expected number of pairs within
// distance d is accumulated over occupied cell pairs with a monotone
// quadratic ramp between each cell pair's minimum and maximum
// distances; the k-th pair distance is then found by bisection.
type Histogram struct {
	bounds geom.Rect
	g      int
	left   []float64
	right  []float64
	nLeft  float64
	nRight float64
	// occupied cell indices, for sparse iteration
	leftCells  []int
	rightCells []int
	maxDist    float64
}

// NewHistogram returns an empty histogram over bounds with a g x g
// grid. g must be at least 1; bounds must have positive area for the
// grid to discriminate (degenerate bounds degrade to a single cell).
func NewHistogram(bounds geom.Rect, g int) (*Histogram, error) {
	if g < 1 {
		return nil, fmt.Errorf("estimate: histogram grid %d < 1", g)
	}
	return &Histogram{
		bounds:  bounds,
		g:       g,
		left:    make([]float64, g*g),
		right:   make([]float64, g*g),
		maxDist: bounds.MaxDist(bounds),
	}, nil
}

// Grid returns the grid dimension.
func (h *Histogram) Grid() int { return h.g }

// AddLeft registers one left-side object by its MBR center.
func (h *Histogram) AddLeft(r geom.Rect) {
	h.left[h.cellOf(r)]++
	h.nLeft++
}

// AddRight registers one right-side object by its MBR center.
func (h *Histogram) AddRight(r geom.Rect) {
	h.right[h.cellOf(r)]++
	h.nRight++
}

func (h *Histogram) cellOf(r geom.Rect) int {
	c := r.Center()
	ix, iy := 0, 0
	if w := h.bounds.Side(0); w > 0 {
		ix = int((c.X - h.bounds.MinX) / w * float64(h.g))
	}
	if w := h.bounds.Side(1); w > 0 {
		iy = int((c.Y - h.bounds.MinY) / w * float64(h.g))
	}
	ix = clampIdx(ix, h.g)
	iy = clampIdx(iy, h.g)
	return iy*h.g + ix
}

func clampIdx(i, g int) int {
	if i < 0 {
		return 0
	}
	if i >= g {
		return g - 1
	}
	return i
}

// seal caches the occupied-cell lists; called lazily before estimates.
func (h *Histogram) seal() {
	if h.leftCells != nil || h.nLeft == 0 {
		return
	}
	for i, v := range h.left {
		if v > 0 {
			h.leftCells = append(h.leftCells, i)
		}
	}
	for i, v := range h.right {
		if v > 0 {
			h.rightCells = append(h.rightCells, i)
		}
	}
}

// cellRect returns the rectangle of cell i.
func (h *Histogram) cellRect(i int) geom.Rect {
	ix, iy := i%h.g, i/h.g
	w := h.bounds.Side(0) / float64(h.g)
	ht := h.bounds.Side(1) / float64(h.g)
	x := h.bounds.MinX + float64(ix)*w
	y := h.bounds.MinY + float64(iy)*ht
	return geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + ht}
}

// ExpectedPairs returns the estimated number of object pairs within
// distance d. The function is nondecreasing in d, reaching
// nLeft*nRight at the diameter of the bounds.
func (h *Histogram) ExpectedPairs(d float64) float64 {
	h.seal()
	if d < 0 {
		return 0
	}
	var total float64
	for _, i := range h.leftCells {
		ri := h.cellRect(i)
		ni := h.left[i]
		for _, j := range h.rightCells {
			rj := h.cellRect(j)
			minD := ri.MinDist(rj)
			if minD > d {
				continue
			}
			maxD := ri.MaxDist(rj)
			frac := 1.0
			if maxD > minD && d < maxD {
				// Quadratic ramp: the captured fraction of a cell pair
				// grows roughly with the area of a disc of radius
				// (d - minD) relative to the cell span.
				t := (d - minD) / (maxD - minD)
				frac = t * t
			}
			total += ni * h.right[j] * frac
		}
	}
	return total
}

// Initial implements Estimator: the distance d with about k expected
// pairs inside, found by bisection (ExpectedPairs is monotone).
func (h *Histogram) Initial(k int) float64 {
	if k <= 0 || h.nLeft == 0 || h.nRight == 0 {
		return 0
	}
	target := float64(k)
	lo, hi := 0.0, h.maxDist
	if hi == 0 {
		return 0
	}
	for iter := 0; iter < 60 && hi-lo > hi*1e-9; iter++ {
		mid := (lo + hi) / 2
		if h.ExpectedPairs(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Correct implements Estimator: the geometric extrapolation of Eq. 5
// from the observed k0-th distance, combined per mode with the
// histogram's own absolute estimate for k.
func (h *Histogram) Correct(mode Mode, k, k0 int, dK0 float64) float64 {
	if k <= k0 {
		return dK0
	}
	absolute := h.Initial(k)
	if k0 <= 0 || dK0 <= 0 {
		return absolute
	}
	geometric := dK0 * math.Sqrt(float64(k)/float64(k0))
	switch mode {
	case ArithmeticOnly:
		return absolute
	case GeometricOnly:
		return geometric
	case Conservative:
		return math.Max(absolute, geometric)
	default: // Aggressive
		return math.Min(absolute, geometric)
	}
}

var _ Estimator = (*Histogram)(nil)
