package estimate

import (
	"math"
	"testing"

	"distjoin/internal/geom"
)

// finite fails the test when v is NaN or infinite.
func finite(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("%s = %v, want finite", name, v)
	}
}

// TestModelDegenerateGeometry drives the Eq. 3/4/5 model through the
// geometric edge cases a join engine actually feeds it: point data
// sets (zero-area bounds), line-shaped sets (zero-area overlap),
// disjoint bounds, and a zero-area join window. Every estimate must
// come back finite and non-negative — a NaN eDmax would silently
// disable AM-KDJ's aggressive stage cutoff comparisons.
func TestModelDegenerateGeometry(t *testing.T) {
	point := geom.RectFromPoint(geom.Point{X: 5, Y: 5})
	hline := geom.NewRect(0, 3, 100, 3)
	vline := geom.NewRect(7, 0, 7, 100)
	box := geom.NewRect(0, 0, 100, 100)
	far := geom.NewRect(1e6, 1e6, 1e6+10, 1e6+10)

	cases := []struct {
		name   string
		r, s   geom.Rect
		nr, ns int
	}{
		{"point-vs-point", point, point, 1, 1},
		{"point-vs-box", point, box, 1, 1000},
		{"hline-vs-vline (point overlap)", hline, vline, 50, 50},
		{"hline-vs-hline (zero-area overlap)", hline, hline, 50, 50},
		{"disjoint boxes", box, far, 100, 100},
		{"box-vs-box", box, box, 100, 100},
	}
	for _, tc := range cases {
		m, err := NewModel(tc.r, tc.nr, tc.s, tc.ns)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		finite(t, tc.name+" rho", m.Rho())
		if m.Rho() < 0 {
			t.Fatalf("%s: rho = %v < 0", tc.name, m.Rho())
		}
		// k beyond the cross product: Eq. 3 extrapolates, it must not
		// blow up. |R| x |S| is at most 1e6 here; ask for far more.
		for _, k := range []int{0, 1, tc.nr * tc.ns, tc.nr*tc.ns + 1, 1 << 30} {
			d := m.Initial(k)
			finite(t, tc.name+" Initial", d)
			if d < 0 {
				t.Fatalf("%s: Initial(%d) = %v < 0", tc.name, k, d)
			}
		}
		// Corrections at their boundary inputs: k0 = 0 (nothing
		// produced yet), dK0 = 0 (all pairs so far at distance zero),
		// k <= k0 (stage already satisfied).
		for _, mode := range []Mode{Aggressive, Conservative, ArithmeticOnly, GeometricOnly} {
			for _, in := range []struct {
				k, k0 int
				dK0   float64
			}{
				{10, 0, 0}, {10, 0, 1}, {10, 5, 0}, {5, 10, 3}, {10, 10, 3},
				{1 << 30, 1, 1e-300}, {1 << 30, 1, 1e300},
			} {
				d := m.Correct(mode, in.k, in.k0, in.dK0)
				finite(t, tc.name+" Correct", d)
				if d < 0 {
					t.Fatalf("%s: Correct(%v,%d,%d,%g) = %v < 0", tc.name, mode, in.k, in.k0, in.dK0, d)
				}
			}
		}
		// Queue boundaries likewise.
		for _, i := range []int{0, 1, 7} {
			finite(t, tc.name+" QueueBoundary", m.QueueBoundary(i, 1024))
		}
	}
}

// TestModelKBeyondCrossProductMonotone pins that Eq. 3 stays monotone
// in k even past the cross-product size: a larger stopping cardinality
// can never shrink the estimated window.
func TestModelKBeyondCrossProductMonotone(t *testing.T) {
	m, err := NewModel(geom.NewRect(0, 0, 100, 100), 30, geom.NewRect(0, 0, 100, 100), 40)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, k := range []int{1, 100, 30 * 40, 30*40 + 1, 1 << 20, 1 << 30} {
		d := m.Initial(k)
		if d < prev {
			t.Fatalf("Initial(%d) = %v < previous %v", k, d, prev)
		}
		prev = d
	}
}

// TestGeometricFallback pins the paper's "if Dmax(k0) != 0" guard: a
// zero k0-th distance or empty progress must fall back to the
// arithmetic correction instead of dividing by zero.
func TestGeometricFallback(t *testing.T) {
	m, err := NewModel(geom.NewRect(0, 0, 10, 10), 10, geom.NewRect(0, 0, 10, 10), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.CorrectGeometric(20, 0, 5), m.CorrectArithmetic(20, 0, 5); got != want {
		t.Fatalf("k0=0 fallback: %v != %v", got, want)
	}
	if got, want := m.CorrectGeometric(20, 5, 0), m.CorrectArithmetic(20, 5, 0); got != want {
		t.Fatalf("dK0=0 fallback: %v != %v", got, want)
	}
	finite(t, "geometric fallback", m.CorrectGeometric(20, 0, 0))
}
