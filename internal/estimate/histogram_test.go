package estimate

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"distjoin/internal/geom"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(geom.NewRect(0, 0, 1, 1), 0); err == nil {
		t.Fatal("grid 0 must be rejected")
	}
	h, err := NewHistogram(geom.NewRect(0, 0, 1, 1), 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Grid() != 8 {
		t.Fatalf("Grid = %d", h.Grid())
	}
}

func TestHistogramEmptyAndDegenerate(t *testing.T) {
	h, _ := NewHistogram(geom.NewRect(0, 0, 100, 100), 8)
	if h.Initial(10) != 0 {
		t.Fatal("empty histogram must estimate 0")
	}
	if h.ExpectedPairs(50) != 0 {
		t.Fatal("empty histogram must expect 0 pairs")
	}
	// Degenerate bounds: everything in one cell; no panic, zero
	// distance estimates.
	hd, _ := NewHistogram(geom.RectFromPoint(geom.Point{X: 5, Y: 5}), 4)
	hd.AddLeft(geom.RectFromPoint(geom.Point{X: 5, Y: 5}))
	hd.AddRight(geom.RectFromPoint(geom.Point{X: 5, Y: 5}))
	if d := hd.Initial(1); d != 0 {
		t.Fatalf("degenerate Initial = %g, want 0", d)
	}
}

func TestExpectedPairsMonotoneAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	bounds := geom.NewRect(0, 0, 1000, 1000)
	h, _ := NewHistogram(bounds, 16)
	const n = 400
	for i := 0; i < n; i++ {
		h.AddLeft(geom.RectFromPoint(geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}))
		h.AddRight(geom.RectFromPoint(geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}))
	}
	prev := -1.0
	for d := 0.0; d <= 1500; d += 25 {
		e := h.ExpectedPairs(d)
		if e < prev {
			t.Fatalf("ExpectedPairs not monotone at d=%g: %g < %g", d, e, prev)
		}
		prev = e
	}
	if total := h.ExpectedPairs(1 << 20); math.Abs(total-float64(n*n)) > 1e-6 {
		t.Fatalf("ExpectedPairs at diameter = %g, want %d", total, n*n)
	}
	if h.ExpectedPairs(-1) != 0 {
		t.Fatal("negative distance must expect 0 pairs")
	}
}

// trueKth computes the real k-th pair distance for point sets.
func trueKth(a, b []geom.Point, k int) float64 {
	var ds []float64
	for _, p := range a {
		for _, q := range b {
			dx, dy := p.X-q.X, p.Y-q.Y
			ds = append(ds, math.Sqrt(dx*dx+dy*dy))
		}
	}
	sort.Float64s(ds)
	return ds[k-1]
}

// On uniform data, the histogram estimate is comparable to the uniform
// model's (both within a small factor of truth).
func TestHistogramOnUniformData(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	bounds := geom.NewRect(0, 0, 1000, 1000)
	const n = 500
	var pa, pb []geom.Point
	h, _ := NewHistogram(bounds, 24)
	for i := 0; i < n; i++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		q := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		pa, pb = append(pa, p), append(pb, q)
		h.AddLeft(geom.RectFromPoint(p))
		h.AddRight(geom.RectFromPoint(q))
	}
	for _, k := range []int{50, 500, 5000} {
		truth := trueKth(pa, pb, k)
		est := h.Initial(k)
		if est < truth/4 || est > truth*4 {
			t.Fatalf("k=%d: histogram estimate %g vs truth %g (off > 4x)", k, est, truth)
		}
	}
}

// On heavily clustered data the uniform model overestimates badly
// (§4.3's caveat); the histogram must be much closer to the truth.
func TestHistogramBeatsUniformModelOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	bounds := geom.NewRect(0, 0, 10000, 10000)
	const n = 600
	var pa, pb []geom.Point
	h, _ := NewHistogram(bounds, 32)
	// One dense shared cluster occupying 1% of each axis.
	for i := 0; i < n; i++ {
		p := geom.Point{X: 5000 + rng.NormFloat64()*30, Y: 5000 + rng.NormFloat64()*30}
		q := geom.Point{X: 5000 + rng.NormFloat64()*30, Y: 5000 + rng.NormFloat64()*30}
		pa, pb = append(pa, p), append(pb, q)
		h.AddLeft(geom.RectFromPoint(p))
		h.AddRight(geom.RectFromPoint(q))
	}
	// Outliers stretch the declared bounds to the full square.
	h.AddLeft(geom.RectFromPoint(geom.Point{X: 1, Y: 1}))
	h.AddRight(geom.RectFromPoint(geom.Point{X: 9999, Y: 9999}))

	model, err := NewModel(bounds, n+1, bounds, n+1)
	if err != nil {
		t.Fatal(err)
	}
	k := 1000
	truth := trueKth(pa, pb, k)
	uni := model.Initial(k)
	hist := h.Initial(k)
	if uni < truth*10 {
		t.Fatalf("test premise broken: uniform model %g not >> truth %g", uni, truth)
	}
	uniErr := uni / truth
	histErr := math.Max(hist/truth, truth/hist)
	if histErr*5 > uniErr {
		t.Fatalf("histogram (x%.1f off) not clearly better than uniform model (x%.1f off): est %g vs truth %g",
			histErr, uniErr, hist, truth)
	}
}

func TestHistogramInitialMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	bounds := geom.NewRect(0, 0, 500, 500)
	h, _ := NewHistogram(bounds, 16)
	for i := 0; i < 300; i++ {
		h.AddLeft(geom.RectFromPoint(geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}))
		h.AddRight(geom.RectFromPoint(geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}))
	}
	prev := 0.0
	for _, k := range []int{1, 10, 100, 1000, 10000} {
		d := h.Initial(k)
		if d < prev {
			t.Fatalf("Initial not monotone in k: %g after %g", d, prev)
		}
		prev = d
	}
	if h.Initial(0) != 0 || h.Initial(-3) != 0 {
		t.Fatal("non-positive k must estimate 0")
	}
}

func TestHistogramCorrectModes(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	bounds := geom.NewRect(0, 0, 500, 500)
	h, _ := NewHistogram(bounds, 8)
	for i := 0; i < 200; i++ {
		h.AddLeft(geom.RectFromPoint(geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}))
		h.AddRight(geom.RectFromPoint(geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}))
	}
	k, k0, d := 400, 100, 5.0
	abs := h.Initial(k)
	geo := d * 2 // sqrt(400/100)
	if got := h.Correct(GeometricOnly, k, k0, d); math.Abs(got-geo) > 1e-12 {
		t.Fatalf("geometric = %g, want %g", got, geo)
	}
	if got := h.Correct(ArithmeticOnly, k, k0, d); got != abs {
		t.Fatalf("arithmetic(histogram absolute) = %g, want %g", got, abs)
	}
	if got := h.Correct(Aggressive, k, k0, d); got != math.Min(abs, geo) {
		t.Fatalf("aggressive = %g", got)
	}
	if got := h.Correct(Conservative, k, k0, d); got != math.Max(abs, geo) {
		t.Fatalf("conservative = %g", got)
	}
	if got := h.Correct(Aggressive, 50, 100, d); got != d {
		t.Fatalf("k<=k0 must return dK0, got %g", got)
	}
	if got := h.Correct(Aggressive, k, 0, 0); got != abs {
		t.Fatalf("no observation must return absolute, got %g", got)
	}
}

func BenchmarkHistogramInitial(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bounds := geom.NewRect(0, 0, 1000, 1000)
	h, _ := NewHistogram(bounds, 32)
	for i := 0; i < 5000; i++ {
		h.AddLeft(geom.RectFromPoint(geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}))
		h.AddRight(geom.RectFromPoint(geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Initial(1000)
	}
}
