// Package estimate implements the maximum-distance estimation of paper
// §4.3: the closed-form initial estimate of eDmax for a stopping
// cardinality k (Eq. 3), and the arithmetic (Eq. 4) and geometric
// (Eq. 5) adaptive corrections applied mid-query. The same density
// model also supplies the partition boundaries of the hybrid queue
// (§4.4), exposed here as QueueBoundary.
package estimate

import (
	"fmt"
	"math"

	"distjoin/internal/geom"
)

// Model captures the uniform-density model of §4.3 for one join: the
// per-pair density factor rho = area(R ∩ S) / (pi * |R| * |S|), where
// the intersection is of the two data sets' bounding rectangles.
type Model struct {
	rho float64
}

// NewModel builds the density model for joining a data set of
// cardinality nr bounded by boundsR with one of cardinality ns bounded
// by boundsS. When the bounding rectangles do not overlap, the model
// degenerates; the joint bounding box is used instead so estimates stay
// finite (the paper assumes overlapping uniform sets).
func NewModel(boundsR geom.Rect, nr int, boundsS geom.Rect, ns int) (Model, error) {
	if nr <= 0 || ns <= 0 {
		return Model{}, fmt.Errorf("estimate: cardinalities must be positive, got %d and %d", nr, ns)
	}
	area := 0.0
	if inter, ok := boundsR.Intersection(boundsS); ok {
		area = inter.Area()
	}
	if area <= 0 {
		// Disjoint or degenerate overlap: fall back to the union box so
		// rho stays positive. Degenerate inputs (all points collinear)
		// still produce rho = 0; Initial handles that by returning 0,
		// which AM-KDJ treats as a maximally aggressive estimate that
		// the compensation stage corrects.
		area = boundsR.Union(boundsS).Area()
	}
	return Model{rho: area / (math.Pi * float64(nr) * float64(ns))}, nil
}

// Rho returns the density factor of the model.
func (m Model) Rho() float64 { return m.rho }

// Initial returns the Eq. 3 estimate of the distance within which
// about k object pairs lie: eDmax = sqrt(k * rho).
func (m Model) Initial(k int) float64 {
	if k <= 0 {
		return 0
	}
	return math.Sqrt(float64(k) * m.rho)
}

// CorrectArithmetic returns the Eq. 4 correction: given that k0 pairs
// have been produced and the k0-th pair's distance is dK0, estimate
// the distance of the k-th pair as sqrt(dK0^2 + (k-k0)*rho).
func (m Model) CorrectArithmetic(k, k0 int, dK0 float64) float64 {
	if k <= k0 {
		return dK0
	}
	d2 := dK0*dK0 + float64(k-k0)*m.rho
	if math.IsInf(d2, 1) {
		// dK0^2 (or the correction term) overflowed even though the
		// true result is representable: recompute overflow-free as
		// hypot(dK0, sqrt((k-k0)*rho)). Kept off the common path so
		// in-range estimates stay bit-identical to the direct formula
		// (the deterministic benchmark counters depend on it).
		return math.Hypot(dK0, math.Sqrt(float64(k-k0)*m.rho))
	}
	return math.Sqrt(d2)
}

// CorrectGeometric returns the Eq. 5 correction:
// dK0 * sqrt(k / k0). It requires dK0 > 0 and k0 > 0; otherwise it
// falls back to the arithmetic correction, as the paper prescribes
// ("if Dmax(k0) != 0").
func (m Model) CorrectGeometric(k, k0 int, dK0 float64) float64 {
	if k0 <= 0 || dK0 <= 0 {
		return m.CorrectArithmetic(k, k0, dK0)
	}
	if k <= k0 {
		return dK0
	}
	return dK0 * math.Sqrt(float64(k)/float64(k0))
}

// Mode selects how the two corrections are combined (§4.3.2: "compute
// eDmax' in both ways, then choose the minimum if the query processing
// needs to err on the aggressive side; otherwise the maximum").
type Mode int

const (
	// Aggressive takes the minimum of the two corrections: tighter
	// pruning, more likely to need compensation.
	Aggressive Mode = iota
	// Conservative takes the maximum: looser pruning, compensation
	// rarely needed.
	Conservative
	// ArithmeticOnly uses Eq. 4 alone (exposed for the A3 ablation).
	ArithmeticOnly
	// GeometricOnly uses Eq. 5 alone (exposed for the A3 ablation).
	GeometricOnly
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Aggressive:
		return "aggressive"
	case Conservative:
		return "conservative"
	case ArithmeticOnly:
		return "arithmetic"
	case GeometricOnly:
		return "geometric"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Correct combines the arithmetic and geometric corrections per mode.
func (m Model) Correct(mode Mode, k, k0 int, dK0 float64) float64 {
	switch mode {
	case ArithmeticOnly:
		return m.CorrectArithmetic(k, k0, dK0)
	case GeometricOnly:
		return m.CorrectGeometric(k, k0, dK0)
	case Conservative:
		return math.Max(m.CorrectArithmetic(k, k0, dK0), m.CorrectGeometric(k, k0, dK0))
	default: // Aggressive
		return math.Min(m.CorrectArithmetic(k, k0, dK0), m.CorrectGeometric(k, k0, dK0))
	}
}

// QueueBoundary returns the §4.4 partition boundary between hybrid
// queue segments: with n elements fitting in memory, segment i (i >= 1,
// counting the in-memory heap as segment 0) begins at distance
// sqrt(i * n * rho).
func (m Model) QueueBoundary(i, n int) float64 {
	if i <= 0 || n <= 0 {
		return 0
	}
	return math.Sqrt(float64(i) * float64(n) * m.rho)
}
