package join

import (
	"distjoin/internal/hybridq"
	"distjoin/internal/obsrv"
	"distjoin/internal/rtree"
	"distjoin/internal/sweep"
	"distjoin/internal/trace"
)

// pairKey identifies a node pair for compensation bookkeeping.
type pairKey [2]uint64

func keyOf(p hybridq.Pair) pairKey { return pairKey{p.Left, p.Right} }

// compInfo is one compensation-queue entry: the expanded pair, the
// sweep plan used (so the compensation stage reproduces the exact
// stage-one order), the per-anchor examined ranges, and — for AM-IDJ —
// the real-distance cutoff those ranges were examined under.
type compInfo struct {
	pair       hybridq.Pair
	plan       sweep.Plan
	ranges     sweepRanges
	examCutoff float64
}

// AMKDJ runs the adaptive multi-stage k-distance join of paper §4.1
// (Algorithms 2 and 3): an aggressive pruning stage cut off at the
// estimated eDmax, followed — only if needed — by a compensation stage
// that re-expands the bookkept pairs, skipping the child pairs already
// examined.
func AMKDJ(left, right *rtree.Tree, k int, opts Options) (results []Result, err error) {
	c, err := newContext(left, right, opts)
	if err != nil {
		return nil, err
	}
	if k <= 0 || c.left.Size() == 0 || c.right.Size() == 0 {
		return nil, nil
	}
	c.algo = "AM-KDJ"
	c.beginQuery(k)
	defer func() { c.endQuery(err) }() // after mc.Finish (LIFO), so WallTime is set
	c.mc.Start()
	defer c.mc.Finish()
	if c.par != nil {
		return amkdjParallel(c, k, opts)
	}

	ct := newCutoffTracker(c, k, c.dqPolicy)
	eDmax := opts.EDmax
	estMode := obsrv.ModeOverride
	if eDmax <= 0 {
		eDmax = c.est.Initial(k) // Eq. 3 (or the configured estimator)
		estMode = obsrv.ModeInitial
	}
	// The initial estimate, kept for the accuracy sample recorded once
	// the realized k-th distance is known.
	est0 := eDmax
	c.traceStage(trace.KindStageStart, "aggressive", eDmax, 0)

	results = make([]Result, 0, k)
	var compList []*compInfo
	compMap := make(map[pairKey]*compInfo)

	// Stage one: aggressive pruning (Algorithm 2).
	if c.push(c.rootPair()) {
		ct.OnPush(c.rootPair())
	}
	for len(results) < k {
		if err := c.cancelled(); err != nil {
			return nil, err
		}
		p, ok := c.queue.Pop()
		if !ok {
			break
		}
		// Line 8: an overestimated eDmax is detected once qDmax drops
		// to it; from then on eDmax tracks qDmax and AM-KDJ behaves
		// exactly like B-KDJ.
		if q := ct.Cutoff(); q <= eDmax {
			c.traceEDmax(eDmax, q)
			eDmax = q
		}
		// Stage-one termination (condition 3): once the dequeued pair —
		// of ANY kind — is farther than eDmax, the aggressive stage can
		// produce nothing more that is certainly in order: pairs pruned
		// earlier all lie beyond eDmax too, but may lie closer than p,
		// so even an <object,object> p may not be emitted yet. The pair
		// is reinserted for the compensation stage.
		if p.Dist > eDmax {
			c.push(p)
			break
		}
		if p.IsResult() {
			if c.needsRefinement(p) {
				ct.OnRemove(p)
				rp := c.refine(p)
				if c.push(rp) {
					ct.OnPush(rp)
				}
				continue
			}
			results = append(results, pairResult(p))
			c.mc.AddResult(1)
			continue
		}
		ct.OnRemove(p)
		ci, err := c.amAggressiveSweep(p, eDmax, ct)
		if err != nil {
			return nil, err
		}
		compList = append(compList, ci)
		compMap[keyOf(p)] = ci
		c.mc.AddCompQueueInsert(1)
	}
	c.traceStage(trace.KindStageEnd, "aggressive", eDmax, int64(len(results)))

	// Stage two: compensation (Algorithm 3), needed only when the
	// aggressive stage fell short (line 12).
	if len(results) < k && c.queue.Err() == nil {
		c.mc.AddCompensationStage()
		c.traceStage(trace.KindCompensation, "compensation", eDmax, int64(len(compList)))
		// Re-seed the main queue with the bookkept pairs. Their bounds
		// are NOT re-registered with the cutoff tracker: a re-seeded
		// pair stands only for its unexamined remainder, which may be
		// empty, so it must not act as a qDmax witness (its stage-one
		// children already carry their own bounds). Omitting a bound
		// can only leave the cutoff larger, which is always safe.
		for _, ci := range compList {
			c.push(ci.pair)
		}
		for len(results) < k {
			if err := c.cancelled(); err != nil {
				return nil, err
			}
			p, ok := c.queue.Pop()
			if !ok {
				break
			}
			if p.IsResult() {
				if c.needsRefinement(p) {
					ct.OnRemove(p)
					rp := c.refine(p)
					if c.push(rp) {
						ct.OnPush(rp)
					}
					continue
				}
				results = append(results, pairResult(p))
				c.mc.AddResult(1)
				continue
			}
			if ci := compMap[keyOf(p)]; ci != nil {
				// No OnRemove: this pair's bound was not re-registered.
				delete(compMap, keyOf(p))
				if err := c.amCompensateSweep(p, ci, ct); err != nil {
					return nil, err
				}
			} else {
				ct.OnRemove(p)
				if err := c.bkdjPlaneSweep(p, ct); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := c.queue.Err(); err != nil {
		return nil, c.traceError(err)
	}
	if len(results) == k {
		c.recordEstimate(est0, results[k-1].Dist, estMode)
	}
	return results, nil
}

// amAggressiveSweep is AggressivePlaneSweep of Algorithm 2: axis
// pruning against eDmax (line 22), real-distance filtering against
// qDmax (as in B-KDJ), with per-anchor bookkeeping of the examined
// ranges (lines 19/21).
func (c *execContext) amAggressiveSweep(p hybridq.Pair, eDmax float64, ct *cutoffTracker) (*compInfo, error) {
	run, err := c.ex.expansion(p, eDmax)
	if err != nil {
		return nil, c.traceError(err)
	}
	var children int64
	run.fixCutoff(eDmax)
	run.record = true
	run.emit = func(le, re rtree.NodeEntry, d float64) {
		if d > mutatedCutoff(ct.Cutoff()) { // mutatedCutoff is identity outside harness self-tests
			return
		}
		np := run.childPair(le, re, d)
		if c.push(np) {
			ct.OnPush(np)
			children++
		}
	}
	run.run()
	c.traceExpansion(p, eDmax, children)
	return &compInfo{pair: p, plan: run.plan, ranges: run.out, examCutoff: eDmax}, nil
}

// amCompensateSweep is CompensatePlaneSweep of Algorithm 3: replay the
// stage-one sweep order and process only the child pairs the first
// stage never examined. The prefix skip is safe because the stage-one
// real-distance cutoff (qDmax) only shrinks: anything examined and
// rejected then would be rejected now, and anything accepted is
// already in the main queue.
func (c *execContext) amCompensateSweep(p hybridq.Pair, ci *compInfo, ct *cutoffTracker) error {
	run, err := c.ex.expansionWithPlan(p, ci.plan)
	if err != nil {
		return c.traceError(err)
	}
	var children int64
	run.prev = &ci.ranges
	run.axisCutoff = ct.Cutoff
	run.emit = func(le, re rtree.NodeEntry, d float64) {
		if d > ct.Cutoff() {
			return
		}
		np := run.childPair(le, re, d)
		if c.push(np) {
			ct.OnPush(np)
			children++
		}
	}
	run.run()
	c.traceExpansion(p, ct.Cutoff(), children)
	return nil
}
