package join

import (
	"sort"

	"distjoin/internal/pqueue"
	"distjoin/internal/rtree"
)

// BruteForce computes the k nearest pairs between two item sets by
// exhaustive O(|R|x|S|) scan. It is the correctness reference for the
// index-based algorithms (tests and EXPERIMENTS.md verification) and
// is only practical for small inputs.
func BruteForce(left, right []rtree.Item, k int) []Result {
	if k <= 0 || len(left) == 0 || len(right) == 0 {
		return nil
	}
	// Bounded max-heap of the k best pairs seen.
	h := pqueue.NewHeap(func(a, b Result) bool { return a.Dist > b.Dist })
	for _, l := range left {
		for _, r := range right {
			d := l.Rect.MinDist(r.Rect)
			if h.Len() < k {
				h.Push(Result{
					LeftObj: l.Obj, RightObj: r.Obj,
					LeftRect: l.Rect, RightRect: r.Rect, Dist: d,
				})
				continue
			}
			if d < h.Peek().Dist {
				h.ReplaceTop(Result{
					LeftObj: l.Obj, RightObj: r.Obj,
					LeftRect: l.Rect, RightRect: r.Rect, Dist: d,
				})
			}
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.Pop()
	}
	// Deterministic order among ties.
	sort.Slice(out, func(i, j int) bool {
		//lint:allow floatcmp deterministic tie-break on bit-equal distances matches hybridq.Pair.Less
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		if out[i].LeftObj != out[j].LeftObj {
			return out[i].LeftObj < out[j].LeftObj
		}
		return out[i].RightObj < out[j].RightObj
	})
	return out
}
