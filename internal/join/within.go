package join

import (
	"fmt"
	"math"

	"distjoin/internal/hybridq"
	"distjoin/internal/rtree"
)

// WithinJoin streams every object pair whose distance is at most
// maxDist to fn, in no particular order — the within-predicate spatial
// join that also forms SJ-SORT's first phase (§5), exposed as an
// operation of its own. Returning false from fn stops the join early.
//
// With a refiner installed, pairs are filtered by their exact
// distances; under SelfJoin semantics identity and mirror pairs are
// suppressed. The traversal is a synchronized depth-first descent with
// plane-sweep pruning, so no priority queue is involved.
//
// maxDist must not be NaN (an error is returned: a NaN threshold makes
// every comparison false, which would silently stream the full cross
// product). A +Inf threshold is valid and means "no distance limit" —
// every pair is produced.
func WithinJoin(left, right *rtree.Tree, maxDist float64, opts Options, fn func(Result) bool) (err error) {
	if fn == nil {
		return fmt.Errorf("join: WithinJoin requires a callback")
	}
	if math.IsNaN(maxDist) {
		return fmt.Errorf("join: WithinJoin maxDist must not be NaN")
	}
	c, err := newContext(left, right, opts)
	if err != nil {
		return err
	}
	if maxDist < 0 || c.left.Size() == 0 || c.right.Size() == 0 {
		return nil
	}
	c.algo, c.stage = "WITHIN", "descend"
	c.beginQuery(0)
	defer func() { c.endQuery(err) }()
	c.mc.Start()
	defer c.mc.Finish()

	stop := false
	stack := []hybridq.Pair{c.rootPair()}
	for len(stack) > 0 && !stop {
		if err := c.cancelled(); err != nil {
			return err
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p.Dist > maxDist {
			continue
		}
		run, err := c.ex.expansion(p, maxDist)
		if err != nil {
			return c.traceError(err)
		}
		var children int64
		run.fixCutoff(maxDist)
		run.emit = func(le, re rtree.NodeEntry, d float64) {
			if stop || d > maxDist {
				return
			}
			np := run.childPair(le, re, d)
			if !np.IsResult() {
				stack = append(stack, np)
				children++
				return
			}
			if c.opts.SelfJoin && np.Left >= np.Right {
				return
			}
			if c.refiner != nil {
				np = c.refine(np)
				if np.Dist > maxDist {
					return
				}
			}
			c.mc.AddResult(1)
			children++
			if !fn(pairResult(np)) {
				stop = true
			}
		}
		run.run()
		c.traceExpansion(p, maxDist, children)
	}
	return nil
}

// AllNearest reports, for every object in the left tree, its nearest
// object in the right tree (an all-nearest-neighbors semi-join).
// Objects are visited in index order of the left tree's leaves; fn
// returning false stops early. Ties resolve to an arbitrary nearest
// object. The right tree must be non-empty.
//
// The implementation runs one best-first NN search per left object —
// O(|R|) searches, each logarithmic-ish with warm buffers — which is
// the right trade-off for the moderate result cardinalities this
// library targets; the per-search node accesses are all recorded
// against the collector.
func AllNearest(left, right *rtree.Tree, opts Options, fn func(left Result) bool) (err error) {
	if fn == nil {
		return fmt.Errorf("join: AllNearest requires a callback")
	}
	c, err := newContext(left, right, opts)
	if err != nil {
		return err
	}
	if c.left.Size() == 0 {
		return nil
	}
	if c.right.Size() == 0 {
		return fmt.Errorf("join: AllNearest requires a non-empty right tree")
	}
	c.algo, c.stage = "ALL-NN", "scan"
	c.beginQuery(1)
	defer func() { c.endQuery(err) }()
	c.mc.Start()
	defer c.mc.Finish()

	var innerErr error
	err = left.Search(left.Bounds(), c.mc, func(it rtree.Item) bool {
		ns, err := right.NearestNeighbors(it.Rect, 1, c.mc)
		if err != nil {
			innerErr = err
			return false
		}
		if len(ns) == 0 {
			// Defensive: Size() > 0 was checked above, but a corrupt or
			// truncated index can still yield an empty search frontier.
			// Fail with a diagnosable error instead of panicking.
			innerErr = fmt.Errorf("join: AllNearest: right tree returned no nearest neighbor for left object %d (index may be corrupt)", it.Obj)
			return false
		}
		n := ns[0]
		res := Result{
			LeftObj:   it.Obj,
			RightObj:  n.Item.Obj,
			LeftRect:  it.Rect,
			RightRect: n.Item.Rect,
			Dist:      n.Dist,
		}
		c.mc.AddResult(1)
		return fn(res)
	})
	if innerErr != nil {
		return innerErr
	}
	return err
}

// AllKNearest reports, for every object in the left tree, its k
// nearest objects in the right tree in nondecreasing distance order (a
// kNN join). fn receives one batch per left object — every Result in a
// batch shares the same LeftObj — and may return false to stop early.
// Fewer than k neighbors are reported when the right tree is smaller
// than k.
func AllKNearest(left, right *rtree.Tree, k int, opts Options, fn func(neighbors []Result) bool) (err error) {
	if fn == nil {
		return fmt.Errorf("join: AllKNearest requires a callback")
	}
	if k <= 0 {
		return fmt.Errorf("join: AllKNearest requires k > 0")
	}
	c, err := newContext(left, right, opts)
	if err != nil {
		return err
	}
	if c.left.Size() == 0 {
		return nil
	}
	if c.right.Size() == 0 {
		return fmt.Errorf("join: AllKNearest requires a non-empty right tree")
	}
	c.algo, c.stage = "ALL-KNN", "scan"
	c.beginQuery(k)
	defer func() { c.endQuery(err) }()
	c.mc.Start()
	defer c.mc.Finish()

	batch := make([]Result, 0, k)
	var innerErr error
	err = left.Search(left.Bounds(), c.mc, func(it rtree.Item) bool {
		ns, err := right.NearestNeighbors(it.Rect, k, c.mc)
		if err != nil {
			innerErr = err
			return false
		}
		batch = batch[:0]
		for _, n := range ns {
			batch = append(batch, Result{
				LeftObj:   it.Obj,
				RightObj:  n.Item.Obj,
				LeftRect:  it.Rect,
				RightRect: n.Item.Rect,
				Dist:      n.Dist,
			})
		}
		c.mc.AddResult(int64(len(batch)))
		return fn(batch)
	})
	if innerErr != nil {
		return innerErr
	}
	return err
}
