package join

import (
	"math"
	"sync/atomic"

	"distjoin/internal/hybridq"
	"distjoin/internal/pqueue"
)

// cutoffTracker maintains qDmax — the pruning cutoff drawn from the
// distance queue — under the configured policy (§3.1 footnote 1).
//
//   - ObjectPairsOnly (the paper's choice): the k smallest object-pair
//     distances. Without a refiner, object pairs carry their final
//     distances and are permanent witnesses, so a simple bounded
//     max-heap suffices and no removal is ever needed.
//   - AllPairs (Hjaltason & Samet's scheme): additionally tracks the
//     maximum distance of every *enqueued* node pair. Soundness then
//     requires removing a node pair's bound when it is dequeued for
//     expansion — its children's bounds replace it — because a parent
//     and its children cover overlapping object pairs and must not be
//     counted as distinct witnesses.
//
// With a refiner installed, an unrefined object pair's queue distance
// is only a lower bound on its exact distance, so it may not witness
// the cutoff directly; instead its MBR maximum distance (a valid upper
// bound on the exact distance) is tracked and retired when the pair is
// refined. Both removal cases need the KthTracker.
type cutoffTracker struct {
	c      *execContext
	policy DistanceQueuePolicy
	refine bool
	objQ   *pqueue.DistanceQueue
	kth    *pqueue.KthTracker
	// live mirrors Cutoff() as Float64bits for lock-free reads by
	// parallel expansion workers. The tracker itself is mutated only
	// by the coordinating goroutine (between worker barriers), so the
	// heaps need no lock; workers read the atomically-maintained
	// global cutoff through LiveCutoff. A worker may observe a value
	// at most as stale as the last barrier — i.e. never smaller than
	// the true qDmax — so pruning against it is always sound.
	live atomic.Uint64
}

func newCutoffTracker(c *execContext, k int, policy DistanceQueuePolicy) *cutoffTracker {
	t := &cutoffTracker{c: c, policy: policy, refine: c.refiner != nil}
	if t.useKth() {
		t.kth = pqueue.NewKthTracker(k)
	} else {
		t.objQ = pqueue.NewDistanceQueue(k)
	}
	t.live.Store(math.Float64bits(math.Inf(1)))
	return t
}

// LiveCutoff returns the atomically-published qDmax; safe to call from
// any goroutine.
func (t *cutoffTracker) LiveCutoff() float64 {
	return math.Float64frombits(t.live.Load())
}

// publish refreshes the atomic mirror after a tracker mutation.
func (t *cutoffTracker) publish() {
	t.live.Store(math.Float64bits(t.Cutoff()))
}

// useKth reports whether deletions are needed, forcing the two-heap
// tracker.
func (t *cutoffTracker) useKth() bool {
	return t.refine || t.policy == AllPairs
}

// Cutoff returns the current qDmax.
func (t *cutoffTracker) Cutoff() float64 {
	if t.kth != nil {
		return t.kth.Cutoff()
	}
	return t.objQ.Cutoff()
}

// bound returns the upper-bound distance contributed by p and whether
// p is tracked at all under the policy. The counted parameter selects
// whether a fresh MaxDist computation is charged as a real distance
// computation (insertions are; retirement recomputation is
// bookkeeping).
func (t *cutoffTracker) bound(p hybridq.Pair, counted bool) (float64, bool) {
	if p.IsResult() {
		if t.refine && !p.Refined {
			return t.pairMaxDist(p, counted), true
		}
		return p.Dist, true
	}
	if t.policy == AllPairs {
		return t.pairMaxDist(p, counted), true
	}
	return 0, false
}

func (t *cutoffTracker) pairMaxDist(p hybridq.Pair, counted bool) float64 {
	if counted {
		return t.c.ex.maxDist(p.LeftRect, p.RightRect)
	}
	return p.LeftRect.MaxDist(p.RightRect)
}

// OnPush records a pair entering the main queue.
func (t *cutoffTracker) OnPush(p hybridq.Pair) {
	b, ok := t.bound(p, true)
	if !ok {
		return
	}
	if t.kth != nil {
		t.kth.Insert(b)
	} else {
		t.objQ.Insert(b)
	}
	t.publish()
	t.c.mc.AddDistQueueInsert(1)
}

// OnRemove retires the bound of a pair leaving the queue without being
// a final result: a node pair dequeued for expansion, or an unrefined
// object pair dequeued for refinement (its refined bound is re-added
// by the subsequent OnPush). Refined/final result pops must NOT call
// OnRemove — they remain permanent witnesses.
func (t *cutoffTracker) OnRemove(p hybridq.Pair) {
	if t.kth == nil {
		return // bounded queue tracks only permanent witnesses
	}
	if b, ok := t.bound(p, false); ok {
		t.kth.Delete(b)
		t.publish()
	}
}
