package join

import (
	"context"
	"math/rand"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/geom"
	"distjoin/internal/obsrv"
)

// TestRegistryOffNoAllocs extends the zero-cost contract of
// TestTraceOffNoAllocs to the observability registry: with
// Options.Registry nil, the begin/progress/end hooks sitting on the
// per-expansion hot path must not allocate.
func TestRegistryOffNoAllocs(t *testing.T) {
	c := &execContext{algo: "AM-KDJ", stage: "aggressive"} // opts.Registry == nil
	allocs := testing.AllocsPerRun(200, func() {
		c.beginQuery(10) // nil registry -> nil handle
		c.rq.SetStage("aggressive")
		c.rq.SetEDmax(2.5)
		c.rq.SetQueueDepth(1, 2, 3)
		c.recordEstimate(1.5, 1.0, obsrv.ModeInitial)
		if err := c.cancelled(); err != nil {
			t.Fatal(err)
		}
		c.endQuery(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil-registry hooks allocate %v times per run, want 0", allocs)
	}
}

// TestRegistryIntegrationBlocking runs every blocking algorithm with a
// shared registry and checks the per-algorithm aggregates: one
// completed query each, latency and work histograms fed, collector
// stats folded, and (for AM-KDJ) an eDmax-accuracy sample labeled with
// the initial-estimate mode.
func TestRegistryIntegrationBlocking(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 400, w, 10)
	r := datagen.Uniform(rng.Int63(), 300, w, 10)
	lt, rt := buildTree(t, l, 16), buildTree(t, r, 16)
	const k = 50

	reg := obsrv.NewRegistry()
	opts := Options{Registry: reg}
	if _, err := AMKDJ(lt, rt, k, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := BKDJ(lt, rt, k, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := HSKDJ(lt, rt, k, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := SJSort(lt, rt, k, 100, opts); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if len(s.InFlight) != 0 {
		t.Fatalf("queries still in flight after completion: %+v", s.InFlight)
	}
	byAlgo := make(map[string]obsrv.AlgoSnapshot, len(s.Algos))
	for _, a := range s.Algos {
		byAlgo[a.Algo] = a
	}
	for _, name := range []string{"AM-KDJ", "B-KDJ", "HS-KDJ", "SJ-SORT"} {
		a, ok := byAlgo[name]
		if !ok {
			t.Fatalf("%s missing from registry aggregates (have %v)", name, s.Algos)
		}
		if a.Queries != 1 || a.Errors != 0 {
			t.Errorf("%s: queries=%d errors=%d, want 1/0", name, a.Queries, a.Errors)
		}
		if a.Latency.Count != 1 || a.Latency.Sum <= 0 {
			t.Errorf("%s: latency histogram %+v, want one positive sample", name, a.Latency)
		}
		if a.DistCalcs.Count != 1 || a.Stats.DistCalcs() == 0 {
			t.Errorf("%s: collector stats not folded (hist %+v, stats %d)",
				name, a.DistCalcs, a.Stats.DistCalcs())
		}
	}
	am := byAlgo["AM-KDJ"]
	if am.EstimateRatio.Count != 1 {
		t.Fatalf("AM-KDJ estimate-ratio samples = %d, want 1", am.EstimateRatio.Count)
	}
	if am.Corrections[obsrv.ModeInitial] != 1 {
		t.Fatalf("AM-KDJ corrections = %v, want one %q", am.Corrections, obsrv.ModeInitial)
	}
	if am.Underestimates+am.Overestimates != 1 {
		t.Fatalf("AM-KDJ under+over = %d+%d, want exactly 1 classified sample",
			am.Underestimates, am.Overestimates)
	}
}

// TestRegistryIntegrationParallel checks that the parallel AM-KDJ path
// records through the same handle as the serial one: one query, one
// estimate sample, no leaks, and identical results.
func TestRegistryIntegrationParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 500, w, 10)
	r := datagen.Uniform(rng.Int63(), 400, w, 10)
	lt, rt := buildTree(t, l, 16), buildTree(t, r, 16)

	reg := obsrv.NewRegistry()
	res, err := AMKDJ(lt, rt, 80, Options{Registry: reg, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 80 {
		t.Fatalf("parallel AM-KDJ returned %d results, want 80", len(res))
	}
	s := reg.Snapshot()
	if len(s.InFlight) != 0 {
		t.Fatalf("in-flight after parallel join: %+v", s.InFlight)
	}
	if len(s.Algos) != 1 || s.Algos[0].Queries != 1 {
		t.Fatalf("aggregates after parallel join: %+v", s.Algos)
	}
	if s.Algos[0].EstimateRatio.Count != 1 {
		t.Fatalf("parallel AM-KDJ estimate samples = %d, want 1", s.Algos[0].EstimateRatio.Count)
	}
}

// TestRegistryIntegrationIterators covers the incremental algorithms:
// a drained iterator ends its registry query on its own; an abandoned
// one ends it via Close. Either way nothing is left in flight.
func TestRegistryIntegrationIterators(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 200, w, 10)
	r := datagen.Uniform(rng.Int63(), 150, w, 10)
	lt, rt := buildTree(t, l, 16), buildTree(t, r, 16)

	reg := obsrv.NewRegistry()
	// Small stages so the drain below crosses several stage boundaries
	// and the correction-mode telemetry fires.
	opts := Options{Registry: reg, BatchK: 32}

	// AM-IDJ, drained past several stages so correction modes fire.
	it, err := AMIDJ(lt, rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	it.Close() // drained or not, Close is idempotent with the internal End

	// HS-IDJ, abandoned early: only Close ends the query.
	hit, err := HSIDJ(lt, rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hit.Next(); !ok {
		t.Fatal("HS-IDJ produced nothing")
	}
	hit.Close()
	hit.Close() // double Close must be harmless

	s := reg.Snapshot()
	if len(s.InFlight) != 0 {
		t.Fatalf("iterator queries leaked in flight: %+v", s.InFlight)
	}
	byAlgo := make(map[string]obsrv.AlgoSnapshot)
	for _, a := range s.Algos {
		byAlgo[a.Algo] = a
	}
	if a := byAlgo["AM-IDJ"]; a.Queries != 1 {
		t.Fatalf("AM-IDJ aggregate %+v, want 1 query", a)
	}
	if a := byAlgo["HS-IDJ"]; a.Queries != 1 {
		t.Fatalf("HS-IDJ aggregate %+v, want 1 query", a)
	}
	// Drained AM-IDJ must have recorded at least one per-stage
	// accuracy sample with a correction-mode label.
	if a := byAlgo["AM-IDJ"]; a.EstimateRatio.Count == 0 || len(a.Corrections) == 0 {
		t.Fatalf("AM-IDJ recorded no eDmax accuracy telemetry: %+v", a)
	}
}

// TestRegistryErrorPath: a cancelled query must end up in the error
// count, not in flight.
func TestRegistryErrorPath(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 600, w, 10)
	r := datagen.Uniform(rng.Int63(), 600, w, 10)
	lt, rt := buildTree(t, l, 8), buildTree(t, r, 8)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reg := obsrv.NewRegistry()
	// Large k so the join loops well past the cancellation poll interval.
	if _, err := AMKDJ(lt, rt, 5000, Options{Registry: reg, Context: ctx}); err == nil {
		t.Fatal("pre-cancelled AM-KDJ did not fail")
	}
	s := reg.Snapshot()
	if len(s.InFlight) != 0 {
		t.Fatalf("cancelled query left in flight: %+v", s.InFlight)
	}
	if len(s.Algos) != 1 || s.Algos[0].Errors != 1 || s.Algos[0].Queries != 1 {
		t.Fatalf("cancelled query aggregate %+v, want queries=1 errors=1", s.Algos)
	}
}
