package join

import (
	"math/rand"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/geom"
	"distjoin/internal/metrics"
)

// requireSameResults asserts got is identical to want — same pairs, in
// the same order, with bitwise-equal distances. Parallel execution
// promises exact equivalence with the serial path, not merely
// distance-multiset equivalence.
func requireSameResults(t *testing.T, name string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d differs:\n  got  %+v\n  want %+v", name, i, got[i], want[i])
		}
	}
}

// midpointRefiner is a deterministic exact-distance refiner within the
// MBR min/max contract, safe for concurrent use (pure function).
func midpointRefiner(leftObj, rightObj int64, l, r geom.Rect) float64 {
	return (l.MinDist(r) + l.MaxDist(r)) / 2
}

func TestParallelKDJMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7701))
	for wname, sets := range testWorkloads(rng) {
		left := buildTree(t, sets[0], 8)
		right := buildTree(t, sets[1], 8)
		for _, k := range []int{1, 25, 157, 100000} {
			algos := map[string]func(Options) ([]Result, error){
				"B-KDJ":  func(o Options) ([]Result, error) { return BKDJ(left, right, k, o) },
				"AM-KDJ": func(o Options) ([]Result, error) { return AMKDJ(left, right, k, o) },
			}
			for aname, f := range algos {
				serial, err := f(Options{})
				if err != nil {
					t.Fatalf("%s/%s k=%d serial: %v", wname, aname, k, err)
				}
				for _, par := range []int{2, 8} {
					got, err := f(Options{Parallelism: par})
					if err != nil {
						t.Fatalf("%s/%s k=%d par=%d: %v", wname, aname, k, par, err)
					}
					requireSameResults(t, wname+"/"+aname, got, serial)
					checkAgainstBrute(t, wname+"/"+aname, got, sets[0], sets[1], k)
				}
			}
		}
	}
}

func TestParallelKDJWithRefiner(t *testing.T) {
	rng := rand.New(rand.NewSource(7702))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 300, w, 12)
	r := datagen.Uniform(rng.Int63(), 250, w, 12)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	for _, algo := range []struct {
		name string
		f    func(Options) ([]Result, error)
	}{
		{"B-KDJ", func(o Options) ([]Result, error) { return BKDJ(left, right, 80, o) }},
		{"AM-KDJ", func(o Options) ([]Result, error) { return AMKDJ(left, right, 80, o) }},
	} {
		serial, err := algo.f(Options{Refiner: midpointRefiner})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 8} {
			got, err := algo.f(Options{Refiner: midpointRefiner, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			requireSameResults(t, algo.name+"/refined", got, serial)
		}
	}
}

func TestParallelSelfJoinMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7703))
	w := geom.NewRect(0, 0, 1000, 1000)
	items := datagen.Uniform(rng.Int63(), 400, w, 10)
	tree := buildTree(t, items, 8)
	serial, err := AMKDJ(tree, tree, 120, Options{SelfJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		got, err := AMKDJ(tree, tree, 120, Options{SelfJoin: true, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, "self-join", got, serial)
	}
}

func TestParallelAMIDJMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7704))
	for wname, sets := range testWorkloads(rng) {
		left := buildTree(t, sets[0], 8)
		right := buildTree(t, sets[1], 8)
		pull := func(o Options, n int) []Result {
			t.Helper()
			it, err := AMIDJ(left, right, o)
			if err != nil {
				t.Fatalf("%s: %v", wname, err)
			}
			var rs []Result
			for len(rs) < n {
				r, ok := it.Next()
				if !ok {
					break
				}
				rs = append(rs, r)
			}
			if err := it.Err(); err != nil {
				t.Fatalf("%s: %v", wname, err)
			}
			return rs
		}
		// Small BatchK forces several compensation stages, exercising
		// the band re-examination path under the pool.
		serial := pull(Options{BatchK: 32}, 500)
		for _, par := range []int{2, 8} {
			got := pull(Options{BatchK: 32, Parallelism: par}, 500)
			requireSameResults(t, wname+"/AM-IDJ", got, serial)
		}
	}
}

func TestParallelAMIDJWithRefiner(t *testing.T) {
	rng := rand.New(rand.NewSource(7705))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 250, w, 12)
	r := datagen.Uniform(rng.Int63(), 250, w, 12)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	pull := func(o Options, n int) []Result {
		t.Helper()
		it, err := AMIDJ(left, right, o)
		if err != nil {
			t.Fatal(err)
		}
		var rs []Result
		for len(rs) < n {
			res, ok := it.Next()
			if !ok {
				break
			}
			rs = append(rs, res)
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		return rs
	}
	serial := pull(Options{BatchK: 16, Refiner: midpointRefiner}, 300)
	for _, par := range []int{2, 8} {
		got := pull(Options{BatchK: 16, Refiner: midpointRefiner, Parallelism: par}, 300)
		requireSameResults(t, "AM-IDJ/refined", got, serial)
	}
}

// TestParallelEDmaxExtremes replays the DESIGN.md invariant — AM-KDJ
// must be correct for ANY eDmax estimate — through the parallel path,
// covering both the all-compensation and no-compensation regimes.
func TestParallelEDmaxExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7706))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 300, w, 10)
	r := datagen.Uniform(rng.Int63(), 250, w, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	for _, eDmax := range []float64{1e-12, 0.5, 50, 1e6} {
		serial, err := AMKDJ(left, right, 100, Options{EDmax: eDmax})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 8} {
			got, err := AMKDJ(left, right, 100, Options{EDmax: eDmax, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			requireSameResults(t, "AM-KDJ/eDmax", got, serial)
			checkAgainstBrute(t, "AM-KDJ/eDmax", got, l, r, 100)
		}
	}
}

// TestParallelMetricsSane checks that a parallel run accounts its work:
// the counters the algorithms rely on for reporting must be non-zero
// and the distance-computation count must be at least the serial one
// (frozen cutoffs only ever admit more work, never less).
func TestParallelMetricsSane(t *testing.T) {
	rng := rand.New(rand.NewSource(7707))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 400, w, 10)
	r := datagen.Uniform(rng.Int63(), 400, w, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)

	var serial, par metrics.Collector
	if _, err := AMKDJ(left, right, 200, Options{Metrics: &serial}); err != nil {
		t.Fatal(err)
	}
	if _, err := AMKDJ(left, right, 200, Options{Metrics: &par, Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	if par.RealDistCalcs == 0 || par.NodeAccessesLogical == 0 || par.MainQueueInserts == 0 {
		t.Fatalf("parallel run left counters empty: %+v", par)
	}
	if par.ResultsProduced != serial.ResultsProduced {
		t.Fatalf("results produced: parallel %d, serial %d", par.ResultsProduced, serial.ResultsProduced)
	}
	if par.RealDistCalcs < serial.RealDistCalcs {
		t.Fatalf("parallel did less distance work (%d) than serial (%d): frozen cutoffs cannot prune more",
			par.RealDistCalcs, serial.RealDistCalcs)
	}
}

// TestWorkersResolution pins the Parallelism semantics: zero value is
// serial, negatives mean auto, large values clamp.
func TestWorkersResolution(t *testing.T) {
	cases := []struct {
		in   int
		want int
	}{
		{0, 1},
		{1, 1},
		{5, 5},
		{MaxParallelism + 100, MaxParallelism},
	}
	for _, c := range cases {
		if got := (Options{Parallelism: c.in}).workers(); got != c.want {
			t.Errorf("workers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := (Options{Parallelism: AutoParallelism}).workers(); got < 1 {
		t.Errorf("workers(auto) = %d, want >= 1", got)
	}
}

// TestParallelLargeK drives the queue into disk segments with a big k
// and tiny memory so batching interacts with hybrid-queue swap-ins.
func TestParallelLargeK(t *testing.T) {
	rng := rand.New(rand.NewSource(7708))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 500, w, 15)
	r := datagen.Uniform(rng.Int63(), 500, w, 15)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	const k = 5000
	serial, err := AMKDJ(left, right, k, Options{QueueMemBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	got, err := AMKDJ(left, right, k, Options{QueueMemBytes: 4096, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "large-k", got, serial)
	checkAgainstBrute(t, "large-k", got, l, r, k)
}
