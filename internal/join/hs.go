package join

import (
	"distjoin/internal/geom"
	"distjoin/internal/hybridq"
	"distjoin/internal/rtree"
)

// HS-KDJ and HS-IDJ: Hjaltason & Samet's incremental distance join
// (SIGMOD '98), the baseline of the paper's §5. Node expansion is
// uni-directional: when a pair <r, s> is dequeued, only one side is
// expanded and each of its children is paired with the *other side
// intact*, so no plane sweeping applies and every child pairing costs
// a real distance computation. The k-bounded variant prunes with a
// distance queue that, following [13], receives the maximum distance
// of every generated pair (not just object pairs).

// HSKDJ runs the baseline k-distance join and returns the k nearest
// pairs in nondecreasing distance order.
func HSKDJ(left, right *rtree.Tree, k int, opts Options) (results []Result, err error) {
	c, err := newContext(left, right, opts)
	if err != nil {
		return nil, err
	}
	if k <= 0 || c.left.Size() == 0 || c.right.Size() == 0 {
		return nil, nil
	}
	c.algo, c.stage = "HS-KDJ", "expand"
	c.beginQuery(k)
	defer func() { c.endQuery(err) }()
	c.mc.Start()
	defer c.mc.Finish()

	// HS-KDJ prunes with the all-pairs distance queue of [13]: every
	// enqueued pair contributes an upper bound, retired on expansion.
	ct := newCutoffTracker(c, k, AllPairs)
	results = make([]Result, 0, k)
	if c.push(c.rootPair()) {
		ct.OnPush(c.rootPair())
	}
	for len(results) < k {
		if err := c.cancelled(); err != nil {
			return nil, err
		}
		p, ok := c.queue.Pop()
		if !ok {
			break
		}
		if p.IsResult() {
			if c.needsRefinement(p) {
				ct.OnRemove(p)
				rp := c.refine(p)
				if c.push(rp) {
					ct.OnPush(rp)
				}
				continue
			}
			results = append(results, pairResult(p))
			c.mc.AddResult(1)
			continue
		}
		ct.OnRemove(p)
		if err := c.hsExpand(p, ct); err != nil {
			return nil, err
		}
	}
	if err := c.queue.Err(); err != nil {
		return nil, c.traceError(err)
	}
	return results, nil
}

// hsExpand performs one uni-directional expansion: the non-object side
// (or, with two nodes, the higher-level side, ties to the left) is
// expanded and each child is paired with the other side intact. The
// children decode into the expander's reusable SoA buffer and their
// distances to the fixed other side come from one batch kernel call —
// the uni-directional baseline is the most distance-computation-bound
// algorithm of the suite, so it benefits the most from the contiguous
// scan.
func (c *execContext) hsExpand(p hybridq.Pair, ct *cutoffTracker) error {
	expandLeft := c.hsPickSide(p)
	tree, ref, isObj, rect := c.left, p.Left, p.LeftObj, p.LeftRect
	otherRect := p.RightRect
	if !expandLeft {
		tree, ref, isObj, rect = c.right, p.Right, p.RightObj, p.RightRect
		otherRect = p.LeftRect
	}
	ex := &c.ex
	soa := &ex.soaL
	childIsObj, err := ex.sideSoA(tree, ref, isObj, rect, soa)
	if err != nil {
		return c.traceError(err)
	}
	n := soa.Len()
	dists := ex.distScratch(n)
	geom.MinDistBatch(dists, otherRect, soa.MinX, soa.MinY, soa.MaxX, soa.MaxY)
	ex.mc.AddRealDist(int64(n))
	var children int64
	for i := 0; i < n; i++ {
		e := soa.Entry(i)
		var np hybridq.Pair
		if expandLeft {
			np = hybridq.Pair{
				LeftObj: childIsObj, RightObj: p.RightObj,
				Left: e.Ref, Right: p.Right,
				LeftRect: e.Rect, RightRect: p.RightRect,
			}
		} else {
			np = hybridq.Pair{
				LeftObj: p.LeftObj, RightObj: childIsObj,
				Left: p.Left, Right: e.Ref,
				LeftRect: p.LeftRect, RightRect: e.Rect,
			}
		}
		np.Dist = dists[i]
		if ct != nil && np.Dist > ct.Cutoff() {
			continue
		}
		if c.push(np) {
			if ct != nil {
				ct.OnPush(np)
			}
			children++
		}
	}
	cutoff := 0.0
	if ct != nil {
		cutoff = ct.Cutoff()
	}
	c.traceExpansion(p, cutoff, children)
	return nil
}

// hsPickSide chooses the side to expand: an object side is never
// expanded; between two nodes the higher-level one is expanded so the
// traversal stays balanced (ties expand the left).
func (c *execContext) hsPickSide(p hybridq.Pair) (expandLeft bool) {
	switch {
	case p.LeftObj:
		return false
	case p.RightObj:
		return true
	default:
		return refLevel(p.Left) >= refLevel(p.Right)
	}
}

// HSIDJIterator produces join results incrementally with HS-IDJ.
type HSIDJIterator struct {
	c    *execContext
	err  error
	done bool
}

// HSIDJ starts the baseline incremental distance join; results are
// pulled with Next.
func HSIDJ(left, right *rtree.Tree, opts Options) (*HSIDJIterator, error) {
	c, err := newContext(left, right, opts)
	if err != nil {
		return nil, err
	}
	c.algo, c.stage = "HS-IDJ", "expand"
	c.beginQuery(0)
	it := &HSIDJIterator{c: c}
	if c.left.Size() == 0 || c.right.Size() == 0 {
		it.done = true
		c.endQuery(nil)
		return it, nil
	}
	c.push(c.rootPair())
	return it, nil
}

// Close completes the query's registry entry. It is idempotent; Next's
// terminal paths call it implicitly, so Close is only required when
// abandoning an iterator early.
func (it *HSIDJIterator) Close() { it.c.endQuery(it.err) }

// Next returns the next nearest pair. ok is false when the join is
// exhausted or an error occurred (check Err).
func (it *HSIDJIterator) Next() (Result, bool) {
	if it.done || it.err != nil {
		return Result{}, false
	}
	for {
		if err := it.c.cancelled(); err != nil {
			it.err = err
			it.done = true
			it.Close()
			return Result{}, false
		}
		p, ok := it.c.queue.Pop()
		if !ok {
			it.err = it.c.traceError(it.c.queue.Err())
			it.done = true
			it.Close()
			return Result{}, false
		}
		if p.IsResult() {
			if it.c.needsRefinement(p) {
				it.c.push(it.c.refine(p))
				continue
			}
			it.c.mc.AddResult(1)
			return pairResult(p), true
		}
		if err := it.c.hsExpand(p, nil); err != nil {
			it.err = err
			it.done = true
			it.Close()
			return Result{}, false
		}
	}
}

// Err returns the first error encountered.
func (it *HSIDJIterator) Err() error { return it.err }
