package join

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/geom"
	"distjoin/internal/hybridq"
	"distjoin/internal/rtree"
	"distjoin/internal/storage"
	"distjoin/internal/trace"
)

// TestTraceDeterminism is the acceptance property of the observability
// layer: installing a tracer must not perturb results, serial or
// parallel. Every traced run must match the untraced serial baseline
// exactly, and the trace itself must contain the expected structural
// events (expansions everywhere, batch barriers when parallel).
func TestTraceDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 500, w, 10)
	r := datagen.Uniform(rng.Int63(), 400, w, 10)
	left, right := buildTree(t, l, 16), buildTree(t, r, 16)
	const k = 300

	baseline, err := AMKDJ(left, right, k, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 2, 8} {
		tr := trace.New(1 << 14)
		got, err := AMKDJ(left, right, k, Options{Trace: tr, Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism=%d: %v", par, err)
		}
		if len(got) != len(baseline) {
			t.Fatalf("parallelism=%d: %d results, want %d", par, len(got), len(baseline))
		}
		for i := range got {
			if got[i] != baseline[i] {
				t.Fatalf("parallelism=%d: result %d = %+v, want %+v (tracing perturbed the join)",
					par, i, got[i], baseline[i])
			}
		}
		if n := tr.CountKind(trace.KindExpansion); n == 0 {
			t.Errorf("parallelism=%d: trace has no expansion events", par)
		}
		if n := tr.CountKind(trace.KindStageStart); n == 0 {
			t.Errorf("parallelism=%d: trace has no stage_start event", par)
		}
		if par > 1 {
			if n := tr.CountKind(trace.KindBarrier); n == 0 {
				t.Errorf("parallelism=%d: parallel trace has no batch_barrier events", par)
			}
		}
		// Seq numbers must be strictly increasing (gapless emission
		// order), even when events were buffered per task and merged.
		evs := tr.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq <= evs[i-1].Seq {
				t.Fatalf("parallelism=%d: event %d out of sequence: %d after %d",
					par, i, evs[i].Seq, evs[i-1].Seq)
			}
		}
	}
}

// TestTraceDeterminismIDJ repeats the determinism check for the staged
// incremental join, whose stage transitions happen mid-iteration.
func TestTraceDeterminismIDJ(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 400, w, 10)
	r := datagen.Uniform(rng.Int63(), 300, w, 10)
	left, right := buildTree(t, l, 16), buildTree(t, r, 16)
	const pulls = 600

	pull := func(opts Options) ([]Result, error) {
		it, err := AMIDJ(left, right, opts)
		if err != nil {
			return nil, err
		}
		var out []Result
		for i := 0; i < pulls; i++ {
			res, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, res)
		}
		return out, it.Err()
	}

	baseline, err := pull(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(1 << 14)
	got, err := pull(Options{Trace: tr, BatchK: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(baseline) {
		t.Fatalf("traced AM-IDJ produced %d results, want %d", len(got), len(baseline))
	}
	for i := range got {
		if got[i].Dist != baseline[i].Dist {
			t.Fatalf("traced AM-IDJ result %d dist %g, want %g", i, got[i].Dist, baseline[i].Dist)
		}
	}
	if tr.CountKind(trace.KindExpansion) == 0 {
		t.Error("AM-IDJ trace has no expansion events")
	}
	if tr.CountKind(trace.KindStageStart) == 0 {
		t.Error("AM-IDJ trace has no stage_start event")
	}
}

// TestTraceFaultEmitsErrorEvent verifies that a query dying on an
// injected storage fault leaves a terminal error event in its trace, so
// a trace file always explains why a run ended.
func TestTraceFaultEmitsErrorEvent(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 300, w, 10)
	r := datagen.Uniform(rng.Int63(), 300, w, 10)
	left := buildTree(t, l, 16)
	fault := storage.NewFaultStore(storage.NewMemStore(4096), -1)
	right := buildTreeOnStore(t, r, fault)
	fault.Arm(3) // a few reads succeed, then every access fails

	tr := trace.New(1 << 12)
	_, err := AMKDJ(left, right, 200, Options{Trace: tr})
	if err == nil {
		t.Fatal("fault not surfaced")
	}
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("error %v does not wrap the injected fault", err)
	}
	if n := tr.CountKind(trace.KindError); n == 0 {
		t.Fatalf("trace has no error event after a faulted run (kinds: %v)", kindHistogram(tr))
	}
	evs := tr.Events()
	last := evs[len(evs)-1]
	if last.Kind != trace.KindError {
		t.Errorf("last trace event is %q, want error", last.Kind)
	}
	if !strings.Contains(last.Err, "injected") {
		t.Errorf("error event text %q does not mention the injected fault", last.Err)
	}
}

func kindHistogram(tr *trace.Tracer) map[trace.Kind]int {
	m := map[trace.Kind]int{}
	for _, ev := range tr.Events() {
		m[ev.Kind]++
	}
	return m
}

// TestTraceOffNoAllocs pins the zero-cost contract: with no tracer,
// registry, or stats collector installed, the emission and telemetry
// helpers must not allocate (they are on the per-expansion hot path).
func TestTraceOffNoAllocs(t *testing.T) {
	c := &execContext{algo: "AM-KDJ", stage: "aggressive"} // tr, mc, rq all nil
	p := hybridq.Pair{Left: 3, Right: 4, Dist: 1.25}
	var nilTr *trace.Tracer
	allocs := testing.AllocsPerRun(200, func() {
		c.traceExpansion(p, 2.5, 7)
		c.traceEDmax(4, 2)
		c.traceStage(trace.KindStageStart, "aggressive", 2.5, 0)
		c.traceBarrier(4)
		_ = c.traceError(nil)
		nilTr.Emit(trace.Event{Kind: trace.KindExpansion})
		nilTr.EmitAll(nil)
		// Registry-off query accounting: BeginNamed on a nil registry
		// and estimate-mode recording on a nil collector are free.
		c.beginQuery(100)
		c.recordEstimate(1.5, 1.25, "arithmetic")
	})
	if allocs != 0 {
		t.Fatalf("disabled-telemetry helpers allocate %v times per run, want 0", allocs)
	}
}

// BenchmarkAMKDJTraceOff measures the default (untraced) hot path so
// regressions from the observability instrumentation show up in CI
// benchmark diffs.
func BenchmarkAMKDJTraceOff(b *testing.B) {
	rng := rand.New(rand.NewSource(503))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 2000, w, 10)
	r := datagen.Uniform(rng.Int63(), 1500, w, 10)
	left, right := buildTree(b, l, 16), buildTree(b, r, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AMKDJ(left, right, 500, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMKDJTraceOn is the traced counterpart, for eyeballing the
// tracer's overhead against BenchmarkAMKDJTraceOff.
func BenchmarkAMKDJTraceOn(b *testing.B) {
	rng := rand.New(rand.NewSource(503))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 2000, w, 10)
	r := datagen.Uniform(rng.Int63(), 1500, w, 10)
	left, right := buildTree(b, l, 16), buildTree(b, r, 16)
	tr := trace.New(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		if _, err := AMKDJ(left, right, 500, Options{Trace: tr}); err != nil {
			b.Fatal(err)
		}
	}
}

// corruptEmptyTree hand-crafts a packed store whose metadata claims
// objects exist but whose root leaf holds zero entries — the truncated-
// index shape that used to panic AllNearest on ns[0].
func corruptEmptyTree(t *testing.T) *rtree.Tree {
	t.Helper()
	store := storage.NewMemStore(4096)
	if _, err := store.Alloc(); err != nil { // page 0: meta
		t.Fatal(err)
	}
	if _, err := store.Alloc(); err != nil { // page 1: root leaf
		t.Fatal(err)
	}
	meta := make([]byte, 4096)
	copy(meta, "DJRT0001")
	binary.LittleEndian.PutUint32(meta[8:], 1)  // root page id
	binary.LittleEndian.PutUint32(meta[12:], 1) // height 1: root is a leaf
	binary.LittleEndian.PutUint64(meta[16:], 7) // claims 7 objects
	binary.LittleEndian.PutUint32(meta[24:], 1) // one node
	binary.LittleEndian.PutUint64(meta[28:], math.Float64bits(0))
	binary.LittleEndian.PutUint64(meta[36:], math.Float64bits(0))
	binary.LittleEndian.PutUint64(meta[44:], math.Float64bits(100))
	binary.LittleEndian.PutUint64(meta[52:], math.Float64bits(100))
	if err := store.WritePage(0, meta); err != nil {
		t.Fatal(err)
	}
	// Page 1 stays zeroed: level 0, count 0 — a valid empty leaf.
	tree, err := rtree.Open(store, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() == 0 {
		t.Fatal("test premise broken: corrupt tree reports size 0")
	}
	return tree
}

// TestAllNearestCorruptTree is the regression test for the ns[0] panic:
// a right tree whose metadata advertises objects but whose leaves are
// empty must produce a diagnosable error, never an index-out-of-range.
func TestAllNearestCorruptTree(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	w := geom.NewRect(0, 0, 100, 100)
	left := buildTree(t, datagen.Uniform(rng.Int63(), 20, w, 5), 8)
	right := corruptEmptyTree(t)

	err := AllNearest(left, right, Options{}, func(Result) bool { return true })
	if err == nil {
		t.Fatal("AllNearest on a corrupt right tree must error")
	}
	if !strings.Contains(err.Error(), "no nearest neighbor") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestWithinJoinMaxDistValidation covers the NaN rejection and the +Inf
// "no limit" semantics.
func TestWithinJoinMaxDistValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	w := geom.NewRect(0, 0, 100, 100)
	l := datagen.Uniform(rng.Int63(), 30, w, 5)
	r := datagen.Uniform(rng.Int63(), 20, w, 5)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)

	if err := WithinJoin(left, right, math.NaN(), Options{}, func(Result) bool { return true }); err == nil {
		t.Fatal("NaN maxDist must be rejected")
	}

	var n int
	if err := WithinJoin(left, right, math.Inf(1), Options{}, func(Result) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if want := len(l) * len(r); n != want {
		t.Fatalf("+Inf maxDist produced %d pairs, want the full cross product %d", n, want)
	}

	n = 0
	if err := WithinJoin(left, right, -1, Options{}, func(Result) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("negative maxDist produced %d pairs, want 0", n)
	}
}
