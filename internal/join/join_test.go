package join

import (
	"math"
	"math/rand"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/estimate"
	"distjoin/internal/geom"
	"distjoin/internal/hybridq"
	"distjoin/internal/metrics"
	"distjoin/internal/rtree"
	"distjoin/internal/storage"
)

// buildTree packs items into a paged R-tree with a generous buffer.
func buildTree(t testing.TB, items []rtree.Item, fanout int) *rtree.Tree {
	t.Helper()
	b, err := rtree.NewBuilder(fanout)
	if err != nil {
		t.Fatal(err)
	}
	b.BulkLoad(items)
	tree, err := b.Pack(storage.NewMemStore(4096), 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// checkAgainstBrute verifies that got matches the brute-force k
// nearest pairs as a distance multiset, and is in nondecreasing order.
func checkAgainstBrute(t *testing.T, name string, got []Result, left, right []rtree.Item, k int) {
	t.Helper()
	want := BruteForce(left, right, k)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", name, len(got), len(want))
	}
	for i := range got {
		if i > 0 && got[i].Dist < got[i-1].Dist {
			t.Fatalf("%s: result %d out of order: %g after %g", name, i, got[i].Dist, got[i-1].Dist)
		}
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("%s: result %d dist %.12g, want %.12g", name, i, got[i].Dist, want[i].Dist)
		}
		// The reported distance must match the reported rect pair.
		if d := got[i].LeftRect.MinDist(got[i].RightRect); math.Abs(d-got[i].Dist) > 1e-9 {
			t.Fatalf("%s: result %d dist %g inconsistent with rects (%g)", name, i, got[i].Dist, d)
		}
	}
}

// workloads for the correctness matrix.
func testWorkloads(rng *rand.Rand) map[string][2][]rtree.Item {
	w := geom.NewRect(0, 0, 1000, 1000)
	return map[string][2][]rtree.Item{
		"uniform": {
			datagen.Uniform(rng.Int63(), 300, w, 10),
			datagen.Uniform(rng.Int63(), 200, w, 10),
		},
		"clustered": {
			datagen.GaussianClusters(rng.Int63(), 300, 4, w, 40, 8),
			datagen.GaussianClusters(rng.Int63(), 250, 3, w, 60, 8),
		},
		"points": {
			datagen.Uniform(rng.Int63(), 250, w, 0),
			datagen.Uniform(rng.Int63(), 250, w, 0),
		},
		"disjoint-regions": {
			datagen.Uniform(rng.Int63(), 150, geom.NewRect(0, 0, 400, 400), 5),
			datagen.Uniform(rng.Int63(), 150, geom.NewRect(600, 600, 1000, 1000), 5),
		},
		"tiny": {
			datagen.Uniform(rng.Int63(), 3, w, 10),
			datagen.Uniform(rng.Int63(), 5, w, 10),
		},
	}
}

func TestKDJAlgorithmsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for wname, sets := range testWorkloads(rng) {
		left := buildTree(t, sets[0], 8)
		right := buildTree(t, sets[1], 8)
		for _, k := range []int{1, 10, 57, 300, 100000} {
			algos := map[string]func() ([]Result, error){
				"HS-KDJ": func() ([]Result, error) { return HSKDJ(left, right, k, Options{}) },
				"B-KDJ":  func() ([]Result, error) { return BKDJ(left, right, k, Options{}) },
				"AM-KDJ": func() ([]Result, error) { return AMKDJ(left, right, k, Options{}) },
			}
			for aname, f := range algos {
				got, err := f()
				if err != nil {
					t.Fatalf("%s/%s k=%d: %v", wname, aname, k, err)
				}
				checkAgainstBrute(t, wname+"/"+aname, got, sets[0], sets[1], k)
			}
		}
	}
}

func TestKDJWithUnoptimizedSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 300, w, 10)
	r := datagen.Uniform(rng.Int63(), 300, w, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	for _, sp := range []SweepPolicy{FixedSweep, {SelectAxis: true}, {SelectDirection: true}} {
		sp := sp
		got, err := BKDJ(left, right, 100, Options{Sweep: &sp})
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstBrute(t, "B-KDJ/unopt", got, l, r, 100)
	}
}

// DESIGN.md invariant: AM-KDJ returns correct results for ANY eDmax,
// including extreme under- and over-estimates — compensation guarantees
// no false dismissals.
func TestAMKDJAnyEDmax(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.GaussianClusters(rng.Int63(), 250, 3, w, 50, 10)
	r := datagen.Uniform(rng.Int63(), 250, w, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	k := 150
	want := BruteForce(l, r, k)
	realDmax := want[k-1].Dist
	for _, f := range []float64{1e-9, 0.01, 0.1, 0.5, 1, 2, 10, 1e6} {
		got, err := AMKDJ(left, right, k, Options{EDmax: realDmax * f})
		if err != nil {
			t.Fatalf("factor %g: %v", f, err)
		}
		checkAgainstBrute(t, "AM-KDJ", got, l, r, k)
	}
	// Also a literally tiny absolute estimate (forces full compensation).
	got, err := AMKDJ(left, right, k, Options{EDmax: math.SmallestNonzeroFloat64})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBrute(t, "AM-KDJ/min", got, l, r, k)
}

func TestAMKDJCompensationCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 400, w, 10)
	r := datagen.Uniform(rng.Int63(), 400, w, 10)
	left, right := buildTree(t, l, 16), buildTree(t, r, 16)
	k := 200
	real := BruteForce(l, r, k)[k-1].Dist

	// Overestimate: no compensation stage.
	mc := &metrics.Collector{}
	if _, err := AMKDJ(left, right, k, Options{EDmax: real * 4, Metrics: mc}); err != nil {
		t.Fatal(err)
	}
	if mc.CompensationStages != 0 {
		t.Fatalf("overestimate triggered %d compensation stages", mc.CompensationStages)
	}
	// Underestimate: exactly one.
	mc2 := &metrics.Collector{}
	if _, err := AMKDJ(left, right, k, Options{EDmax: real / 4, Metrics: mc2}); err != nil {
		t.Fatal(err)
	}
	if mc2.CompensationStages != 1 {
		t.Fatalf("underestimate triggered %d compensation stages, want 1", mc2.CompensationStages)
	}
	if mc2.CompQueueInserts == 0 {
		t.Fatal("aggressive stage must populate the compensation queue")
	}
}

func TestIDJIteratorsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for wname, sets := range testWorkloads(rng) {
		left := buildTree(t, sets[0], 8)
		right := buildTree(t, sets[1], 8)
		total := len(sets[0]) * len(sets[1])
		pull := 200
		if pull > total {
			pull = total
		}
		want := BruteForce(sets[0], sets[1], pull)

		hs, err := HSIDJ(left, right, Options{})
		if err != nil {
			t.Fatal(err)
		}
		am, err := AMIDJ(left, right, Options{BatchK: 37})
		if err != nil {
			t.Fatal(err)
		}
		for name, next := range map[string]func() (Result, bool){
			"HS-IDJ": hs.Next,
			"AM-IDJ": am.Next,
		} {
			var got []Result
			for len(got) < pull {
				res, ok := next()
				if !ok {
					break
				}
				got = append(got, res)
			}
			if len(got) != pull {
				t.Fatalf("%s/%s: produced %d of %d", wname, name, len(got), pull)
			}
			for i := range got {
				if i > 0 && got[i].Dist < got[i-1].Dist {
					t.Fatalf("%s/%s: out of order at %d", wname, name, i)
				}
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("%s/%s: result %d dist %.12g want %.12g",
						wname, name, i, got[i].Dist, want[i].Dist)
				}
			}
		}
		if hs.Err() != nil || am.Err() != nil {
			t.Fatalf("%s: iterator errors %v / %v", wname, hs.Err(), am.Err())
		}
	}
}

// Exhaustion: pulling past |R|x|S| ends cleanly, with every pair
// produced exactly once.
func TestIDJExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	w := geom.NewRect(0, 0, 100, 100)
	l := datagen.Uniform(rng.Int63(), 23, w, 5)
	r := datagen.Uniform(rng.Int63(), 17, w, 5)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	total := len(l) * len(r)

	for name, mk := range map[string]func() (func() (Result, bool), func() error){
		"HS-IDJ": func() (func() (Result, bool), func() error) {
			it, err := HSIDJ(left, right, Options{})
			if err != nil {
				t.Fatal(err)
			}
			return it.Next, it.Err
		},
		"AM-IDJ": func() (func() (Result, bool), func() error) {
			it, err := AMIDJ(left, right, Options{BatchK: 50})
			if err != nil {
				t.Fatal(err)
			}
			return it.Next, it.Err
		},
	} {
		next, errf := mk()
		seen := map[[2]int64]bool{}
		count := 0
		for {
			res, ok := next()
			if !ok {
				break
			}
			key := [2]int64{res.LeftObj, res.RightObj}
			if seen[key] {
				t.Fatalf("%s: duplicate pair %v", name, key)
			}
			seen[key] = true
			count++
			if count > total {
				t.Fatalf("%s: produced more than %d pairs", name, total)
			}
		}
		if err := errf(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if count != total {
			t.Fatalf("%s: produced %d of %d pairs", name, count, total)
		}
	}
}

func TestAMIDJWithOracleEDmax(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 200, w, 10)
	r := datagen.Uniform(rng.Int63(), 200, w, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	want := BruteForce(l, r, 300)
	// Oracle hook supplying the true k-th distance per stage (the
	// Figure 15 "real Dmax" variant).
	oracle := func(k, produced int, lastDist float64) float64 {
		if k > len(want) {
			k = len(want)
		}
		return want[k-1].Dist
	}
	it, err := AMIDJ(left, right, Options{BatchK: 60, EDmaxForK: oracle})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		res, ok := it.Next()
		if !ok {
			t.Fatalf("exhausted at %d: %v", i, it.Err())
		}
		if math.Abs(res.Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("result %d dist %.12g want %.12g", i, res.Dist, want[i].Dist)
		}
	}
	if it.Produced() != 300 {
		t.Fatalf("Produced = %d", it.Produced())
	}
	if it.EDmax() <= 0 {
		t.Fatal("EDmax accessor must be positive")
	}
}

func TestSJSortMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for wname, sets := range testWorkloads(rng) {
		left := buildTree(t, sets[0], 8)
		right := buildTree(t, sets[1], 8)
		for _, k := range []int{1, 50, 250} {
			want := BruteForce(sets[0], sets[1], k)
			if len(want) == 0 {
				continue
			}
			dmax := want[len(want)-1].Dist
			got, err := SJSort(left, right, k, dmax, Options{})
			if err != nil {
				t.Fatalf("%s k=%d: %v", wname, k, err)
			}
			checkAgainstBrute(t, wname+"/SJ-SORT", got, sets[0], sets[1], min(k, len(want)))
		}
	}
}

func TestSJSortUnderestimatedDmaxReturnsFewer(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 100, w, 0)
	r := datagen.Uniform(rng.Int63(), 100, w, 0)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	want := BruteForce(l, r, 100)
	// Cut dmax at the 50th distance: at most ~50 pairs qualify.
	got, err := SJSort(left, right, 100, want[49].Dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= 100 {
		t.Fatalf("underestimated dmax returned %d pairs", len(got))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("prefix mismatch at %d", i)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	w := geom.NewRect(0, 0, 100, 100)
	empty := buildTree(t, nil, 8)
	one := buildTree(t, []rtree.Item{{Rect: geom.NewRect(1, 1, 2, 2), Obj: 7}}, 8)
	items := datagen.Uniform(3, 50, w, 5)
	many := buildTree(t, items, 8)

	for name, f := range map[string]func() ([]Result, error){
		"HS-KDJ": func() ([]Result, error) { return HSKDJ(empty, many, 10, Options{}) },
		"B-KDJ":  func() ([]Result, error) { return BKDJ(many, empty, 10, Options{}) },
		"AM-KDJ": func() ([]Result, error) { return AMKDJ(empty, empty, 10, Options{}) },
		"k=0":    func() ([]Result, error) { return BKDJ(many, many, 0, Options{}) },
		"SJ":     func() ([]Result, error) { return SJSort(empty, many, 10, 100, Options{}) },
	} {
		got, err := f()
		if err != nil || got != nil {
			t.Fatalf("%s: %v, %v", name, got, err)
		}
	}

	// Single object vs many.
	got, err := BKDJ(one, many, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBrute(t, "one-vs-many", got,
		[]rtree.Item{{Rect: geom.NewRect(1, 1, 2, 2), Obj: 7}}, items, 5)

	// Nil trees.
	if _, err := BKDJ(nil, many, 5, Options{}); err == nil {
		t.Fatal("nil tree must error")
	}
}

// Identical coordinates everywhere: massive ties must not break any
// algorithm.
func TestAllTies(t *testing.T) {
	items := make([]rtree.Item, 40)
	for i := range items {
		items[i] = rtree.Item{Rect: geom.NewRect(5, 5, 6, 6), Obj: int64(i)}
	}
	left := buildTree(t, items, 8)
	right := buildTree(t, items, 8)
	k := 100
	for name, f := range map[string]func() ([]Result, error){
		"HS-KDJ": func() ([]Result, error) { return HSKDJ(left, right, k, Options{}) },
		"B-KDJ":  func() ([]Result, error) { return BKDJ(left, right, k, Options{}) },
		"AM-KDJ": func() ([]Result, error) { return AMKDJ(left, right, k, Options{}) },
	} {
		got, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != k {
			t.Fatalf("%s: got %d results", name, len(got))
		}
		for _, res := range got {
			if res.Dist != 0 {
				t.Fatalf("%s: tie distance %g", name, res.Dist)
			}
		}
	}
}

// Tiny queue memory: all algorithms stay correct when the main queue
// spills heavily (the Figure 13 regime).
func TestTinyQueueMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 300, w, 10)
	r := datagen.Uniform(rng.Int63(), 300, w, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	opts := Options{QueueMemBytes: 1024} // ~10 pairs in memory
	k := 200
	mc := &metrics.Collector{}
	optsM := opts
	optsM.Metrics = mc
	for name, f := range map[string]func() ([]Result, error){
		"HS-KDJ": func() ([]Result, error) { return HSKDJ(left, right, k, optsM) },
		"B-KDJ":  func() ([]Result, error) { return BKDJ(left, right, k, opts) },
		"AM-KDJ": func() ([]Result, error) { return AMKDJ(left, right, k, opts) },
	} {
		got, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkAgainstBrute(t, name+"/tinyq", got, l, r, k)
	}
	if mc.QueuePageWrites == 0 {
		t.Fatal("tiny queue memory must spill pages")
	}
}

func TestDistanceQueuePolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 250, w, 10)
	r := datagen.Uniform(rng.Int63(), 250, w, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	for _, pol := range []DistanceQueuePolicy{ObjectPairsOnly, AllPairs} {
		got, err := BKDJ(left, right, 120, Options{DistanceQueue: pol})
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstBrute(t, "B-KDJ/dqpolicy", got, l, r, 120)
	}
}

func TestCorrectionModesAMIDJ(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 200, w, 10)
	r := datagen.Uniform(rng.Int63(), 200, w, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	want := BruteForce(l, r, 250)
	for _, mode := range []estimate.Mode{estimate.Aggressive, estimate.Conservative,
		estimate.ArithmeticOnly, estimate.GeometricOnly} {
		it, err := AMIDJ(left, right, Options{BatchK: 40, Correction: mode})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 250; i++ {
			res, ok := it.Next()
			if !ok {
				t.Fatalf("mode %v: exhausted at %d", mode, i)
			}
			if math.Abs(res.Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("mode %v: result %d mismatch", mode, i)
			}
		}
	}
}

// The headline efficiency claims, in miniature: B-KDJ computes far
// fewer distances than HS-KDJ, and the optimized sweep beats the fixed
// sweep.
func TestEfficiencyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	w := geom.NewRect(0, 0, 10000, 10000)
	l := datagen.Uniform(rng.Int63(), 3000, w, 20)
	r := datagen.Uniform(rng.Int63(), 3000, w, 20)
	left, right := buildTree(t, l, 50), buildTree(t, r, 50)
	k := 100

	run := func(f func(mc *metrics.Collector) error) *metrics.Collector {
		mc := &metrics.Collector{}
		if err := f(mc); err != nil {
			t.Fatal(err)
		}
		return mc
	}
	hs := run(func(mc *metrics.Collector) error {
		_, err := HSKDJ(left, right, k, Options{Metrics: mc})
		return err
	})
	bk := run(func(mc *metrics.Collector) error {
		_, err := BKDJ(left, right, k, Options{Metrics: mc})
		return err
	})
	am := run(func(mc *metrics.Collector) error {
		_, err := AMKDJ(left, right, k, Options{Metrics: mc})
		return err
	})
	if bk.DistCalcs() >= hs.DistCalcs() {
		t.Fatalf("B-KDJ dist calcs %d not below HS-KDJ %d", bk.DistCalcs(), hs.DistCalcs())
	}
	if am.QueueInserts() > bk.QueueInserts() {
		t.Fatalf("AM-KDJ queue inserts %d above B-KDJ %d", am.QueueInserts(), bk.QueueInserts())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestIteratorConstructorErrors(t *testing.T) {
	some := buildTree(t, []rtree.Item{{Rect: geom.NewRect(0, 0, 1, 1), Obj: 1}}, 8)
	if _, err := AMIDJ(nil, some, Options{}); err == nil {
		t.Fatal("AMIDJ with nil tree must error")
	}
	if _, err := HSIDJ(some, nil, Options{}); err == nil {
		t.Fatal("HSIDJ with nil tree must error")
	}
	// Empty-side iterators are immediately exhausted.
	empty := buildTree(t, nil, 8)
	hs, err := HSIDJ(empty, some, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hs.Next(); ok || hs.Err() != nil {
		t.Fatal("empty HSIDJ must be exhausted cleanly")
	}
}

func TestHSPickSide(t *testing.T) {
	some := buildTree(t, []rtree.Item{{Rect: geom.NewRect(0, 0, 1, 1), Obj: 1}}, 8)
	c, err := newContext(some, some, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Object on the left: expand right.
	if c.hsPickSide(hybridq.Pair{LeftObj: true}) {
		t.Fatal("left object must expand right")
	}
	// Object on the right: expand left.
	if !c.hsPickSide(hybridq.Pair{RightObj: true}) {
		t.Fatal("right object must expand left")
	}
	// Two nodes: higher level expands; ties expand left.
	hiLo := hybridq.Pair{Left: nodeRef(1, 3), Right: nodeRef(2, 1)}
	if !c.hsPickSide(hiLo) {
		t.Fatal("higher-level left must expand")
	}
	loHi := hybridq.Pair{Left: nodeRef(1, 0), Right: nodeRef(2, 4)}
	if c.hsPickSide(loHi) {
		t.Fatal("higher-level right must expand")
	}
	tie := hybridq.Pair{Left: nodeRef(1, 2), Right: nodeRef(2, 2)}
	if !c.hsPickSide(tie) {
		t.Fatal("ties must expand left")
	}
}

func TestExhaustiveDistDegenerate(t *testing.T) {
	// All objects at one point: the exhaustive distance degenerates to
	// the smallest positive float so AM-IDJ stage growth terminates.
	pt := buildTree(t, []rtree.Item{
		{Rect: geom.RectFromPoint(geom.Point{X: 5, Y: 5}), Obj: 1},
		{Rect: geom.RectFromPoint(geom.Point{X: 5, Y: 5}), Obj: 2},
	}, 8)
	it, err := AMIDJ(pt, pt, Options{BatchK: 10})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		res, ok := it.Next()
		if !ok {
			break
		}
		if res.Dist != 0 {
			t.Fatalf("dist %g on point data", res.Dist)
		}
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("produced %d of 4", count)
	}
}

// Regression: AM-KDJ under the AllPairs distance-queue policy with a
// forced compensation stage. Re-seeded compensation pairs must not
// act as qDmax witnesses (their unexamined remainder may be empty), or
// the cutoff can undershoot and dismiss true results.
func TestAMKDJAllPairsCompensation(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 8; trial++ {
		w := geom.NewRect(0, 0, 1000, 1000)
		l := datagen.GaussianClusters(rng.Int63(), 220, 1+trial%4, w, 60, 10)
		r := datagen.Uniform(rng.Int63(), 220, w, 10)
		left, right := buildTree(t, l, 5+trial), buildTree(t, r, 5+trial)
		k := 120
		want := BruteForce(l, r, k)
		for _, f := range []float64{1e-6, 0.1, 0.4, 0.9} {
			got, err := AMKDJ(left, right, k, Options{
				EDmax:         want[k-1].Dist * f,
				DistanceQueue: AllPairs,
			})
			if err != nil {
				t.Fatalf("trial %d f=%g: %v", trial, f, err)
			}
			checkAgainstBrute(t, "AM-KDJ/allpairs", got, l, r, k)
		}
	}
}
