package join

import (
	"distjoin/internal/estimate"
	"distjoin/internal/hybridq"
	"distjoin/internal/obsrv"
	"distjoin/internal/rtree"
	"distjoin/internal/trace"
)

// AMIDJIterator produces join results incrementally with AM-IDJ
// (paper §4.2). Each stage prunes with a fixed estimated cutoff
// eDmax_s; when the queue drains, a compensation stage begins with a
// grown cutoff eDmax_{s+1}, re-expanding the bookkept node pairs and
// recovering exactly the pairs in the band (eDmax_s, eDmax_{s+1}].
// This continues until the caller stops asking or every pair has been
// produced.
type AMIDJIterator struct {
	c         *execContext
	compMap   map[pairKey]*compInfo
	compOrder []pairKey
	eDmax     float64
	stageK    int
	batchK    int
	produced  int
	lastDist  float64
	maxd      float64
	exhausted bool
	err       error
	// modeLabel names the source of the current stage cutoff for the
	// registry's eDmax-accuracy sample: "initial" (Eq. 3), "arithmetic"
	// (Eq. 4), "geometric" (Eq. 5), or "override" (caller-supplied
	// EDmax / EDmaxForK).
	modeLabel string
}

// AMIDJ starts the adaptive multi-stage incremental distance join;
// results are pulled with Next.
func AMIDJ(left, right *rtree.Tree, opts Options) (*AMIDJIterator, error) {
	c, err := newContext(left, right, opts)
	if err != nil {
		return nil, err
	}
	batch := opts.BatchK
	if batch <= 0 {
		batch = DefaultBatchK
	}
	it := &AMIDJIterator{
		c:       c,
		compMap: make(map[pairKey]*compInfo),
		batchK:  batch,
		stageK:  batch,
		maxd:    c.exhaustiveDist(),
	}
	c.algo = "AM-IDJ"
	c.beginQuery(batch)
	if c.left.Size() == 0 || c.right.Size() == 0 {
		it.exhausted = true
		c.endQuery(nil)
		return it, nil
	}
	switch {
	case opts.EDmax > 0:
		it.eDmax = opts.EDmax
		it.modeLabel = obsrv.ModeOverride
	case opts.EDmaxForK != nil:
		it.eDmax = opts.EDmaxForK(batch, 0, 0)
		it.modeLabel = obsrv.ModeOverride
	default:
		it.eDmax = c.est.Initial(batch)
		it.modeLabel = obsrv.ModeInitial
	}
	if it.eDmax > it.maxd {
		it.eDmax = it.maxd
	}
	c.traceStage(trace.KindStageStart, "stage-1", it.eDmax, 0)
	c.push(c.rootPair())
	return it, nil
}

// Close completes the query's registry entry (latency, counters,
// error outcome). It is idempotent and safe on iterators without a
// registry; Next's terminal paths call it implicitly, so Close is
// only required when abandoning an iterator early.
func (it *AMIDJIterator) Close() { it.c.endQuery(it.err) }

// Produced returns the number of results emitted so far.
func (it *AMIDJIterator) Produced() int { return it.produced }

// EDmax returns the current stage cutoff (exposed for experiments).
func (it *AMIDJIterator) EDmax() float64 { return it.eDmax }

// Err returns the first error encountered.
func (it *AMIDJIterator) Err() error { return it.err }

// Next returns the next nearest pair. ok is false when the join is
// exhausted or an error occurred (check Err).
func (it *AMIDJIterator) Next() (Result, bool) {
	if it.exhausted || it.err != nil {
		return Result{}, false
	}
	for {
		if err := it.c.cancelled(); err != nil {
			it.err = err
			it.Close()
			return Result{}, false
		}
		p, ok := it.c.queue.Pop()
		if !ok {
			if err := it.c.queue.Err(); err != nil {
				it.err = it.c.traceError(err)
				it.Close()
				return Result{}, false
			}
			if !it.advanceStage() {
				it.exhausted = true
				it.Close()
				return Result{}, false
			}
			continue
		}
		// Pairs beyond the current stage cutoff — refined object pairs
		// whose exact distance exceeds it, re-seeded compensation
		// entries, or an initially distant root pair — wait for the
		// next stage: closer pairs may still be pending compensation.
		// (Once the cutoff has reached the exhaustive bound nothing is
		// pruned anymore, so remaining pairs flow in queue order; this
		// also tolerates refiners that exceed the MBR maximum distance
		// in violation of their contract.)
		if p.Dist > it.eDmax && it.eDmax < it.maxd {
			if _, tracked := it.compMap[keyOf(p)]; !tracked {
				it.c.push(p) // advanceStage re-seeds tracked pairs itself
			}
			if !it.advanceStage() {
				it.exhausted = true
				it.Close()
				return Result{}, false
			}
			continue
		}
		if p.IsResult() {
			if it.c.needsRefinement(p) {
				it.c.push(it.c.refine(p))
				continue
			}
			it.produced++
			it.lastDist = p.Dist
			it.c.mc.AddResult(1)
			if it.produced == it.stageK {
				// The stage cutoff was estimated to yield stageK results;
				// the stageK-th distance just realized is its ground truth.
				it.c.recordEstimate(it.eDmax, p.Dist, it.modeLabel)
			}
			return pairResult(p), true
		}
		expand := it.expand
		if it.c.par != nil {
			expand = it.expandParallel
		}
		if err := expand(p); err != nil {
			it.err = err
			it.Close()
			return Result{}, false
		}
	}
}

// expand processes one node pair under the current stage cutoff.
// Fresh pairs get a full sweep with bookkeeping; pairs already
// expanded in an earlier stage get a band re-examination plus the
// unexamined suffix.
func (it *AMIDJIterator) expand(p hybridq.Pair) error {
	c := it.c
	cur := it.eDmax
	key := keyOf(p)
	ci := it.compMap[key]
	if ci == nil {
		run, err := c.ex.expansion(p, cur)
		if err != nil {
			return c.traceError(err)
		}
		var children int64
		run.fixCutoff(cur)
		run.record = true
		run.emit = func(le, re rtree.NodeEntry, d float64) {
			if d > cur {
				return
			}
			if c.push(run.childPair(le, re, d)) {
				children++
			}
		}
		run.run()
		c.traceExpansion(p, cur, children)
		// Once the cutoff covers the pair's own diameter, every child
		// pair has been pushed; no compensation bookkeeping is needed.
		if cur < p.LeftRect.MaxDist(p.RightRect) {
			it.compMap[key] = &compInfo{pair: p, plan: run.plan, ranges: run.out, examCutoff: cur}
			it.compOrder = append(it.compOrder, key)
			c.mc.AddCompQueueInsert(1)
		}
		return nil
	}

	// Re-expansion: recover the band (prev, cur] among previously
	// examined pairs, and everything <= cur in the unexamined suffix.
	prev := ci.examCutoff
	run, err := c.ex.expansionWithPlan(p, ci.plan)
	if err != nil {
		return c.traceError(err)
	}
	var children int64
	run.prev = &ci.ranges
	run.record = true
	run.fixCutoff(cur)
	run.reexamine = func(le, re rtree.NodeEntry, d float64) {
		if d > prev && d <= cur {
			if c.push(run.childPair(le, re, d)) {
				children++
			}
		}
	}
	run.emit = func(le, re rtree.NodeEntry, d float64) {
		if d <= cur {
			if c.push(run.childPair(le, re, d)) {
				children++
			}
		}
	}
	run.run()
	c.traceExpansion(p, cur, children)
	if cur >= p.LeftRect.MaxDist(p.RightRect) {
		// Fully covered: retire the entry so later stages stop
		// re-seeding it (compOrder is compacted at the next advance).
		delete(it.compMap, key)
		return nil
	}
	ci.ranges = run.out
	ci.examCutoff = cur
	return nil
}

// advanceStage grows the cutoff and re-seeds the queue with the
// compensation entries. It returns false when the previous stage
// already covered the entire distance range (join exhausted).
func (it *AMIDJIterator) advanceStage() bool {
	if it.eDmax >= it.maxd {
		return false
	}
	it.stageK = it.produced + it.batchK
	var next float64
	switch {
	case it.c.opts.EDmaxForK != nil:
		next = it.c.opts.EDmaxForK(it.stageK, it.produced, it.lastDist)
		it.modeLabel = obsrv.ModeOverride
	case it.produced > 0 && it.lastDist > 0:
		next = it.c.est.Correct(it.c.opts.Correction, it.stageK, it.produced, it.lastDist)
		if it.c.rq != nil {
			// Resolve which equation won under the combined modes so the
			// registry can attribute the accuracy sample: re-evaluate the
			// pure Eq. 4 / Eq. 5 corrections and match. (Only done with a
			// registry attached; the comparison costs two extra estimator
			// calls.)
			//lint:allow floatcmp attribution re-runs the exact same pure computation, so bit-equality is the correct match; mismatch only demotes the label
			switch next {
			case it.c.est.Correct(estimate.ArithmeticOnly, it.stageK, it.produced, it.lastDist):
				it.modeLabel = obsrv.ModeArithmetic
			case it.c.est.Correct(estimate.GeometricOnly, it.stageK, it.produced, it.lastDist):
				it.modeLabel = obsrv.ModeGeometric
			default:
				it.modeLabel = it.c.opts.Correction.String()
			}
		}
	default:
		next = it.c.est.Initial(it.stageK)
		it.modeLabel = obsrv.ModeInitial
	}
	// Guarantee strict progress toward the exhaustive bound.
	if next <= it.eDmax {
		if it.eDmax == 0 {
			next = it.maxd * 1e-9
		} else {
			next = it.eDmax * 2
		}
	}
	// Clamp, and jump straight to the bound when the growth step
	// underflowed (fully degenerate data with a subnormal bound).
	if next > it.maxd || next <= it.eDmax {
		next = it.maxd
	}
	it.c.traceStage(trace.KindStageEnd, it.c.stage, it.eDmax, int64(it.produced))
	it.eDmax = next
	it.c.mc.AddCompensationStage()
	if it.c.tr.Enabled() {
		it.c.tr.Emit(trace.Event{
			Kind: trace.KindCompensation, Algo: it.c.algo, Stage: "compensation",
			EDmax: next, Count: int64(len(it.compOrder)),
		})
	}
	it.c.stage = "compensation"

	// Re-seed: push every live compensation entry; entries already
	// examined at the exhaustive bound can never yield more pairs.
	liveOrder := it.compOrder[:0]
	for _, key := range it.compOrder {
		ci := it.compMap[key]
		if ci == nil {
			continue
		}
		if ci.examCutoff >= ci.pair.LeftRect.MaxDist(ci.pair.RightRect) {
			delete(it.compMap, key)
			continue
		}
		liveOrder = append(liveOrder, key)
		it.c.push(ci.pair)
	}
	it.compOrder = liveOrder
	return true
}
