package join

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/geom"
	"distjoin/internal/metrics"
)

func TestWithinJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 300, w, 10)
	r := datagen.GaussianClusters(rng.Int63(), 300, 4, w, 60, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)

	for _, maxDist := range []float64{0, 1, 10, 50, 2000} {
		want := map[[2]int64]bool{}
		for _, a := range l {
			for _, b := range r {
				if a.Rect.MinDist(b.Rect) <= maxDist {
					want[[2]int64{a.Obj, b.Obj}] = true
				}
			}
		}
		got := map[[2]int64]bool{}
		err := WithinJoin(left, right, maxDist, Options{}, func(res Result) bool {
			key := [2]int64{res.LeftObj, res.RightObj}
			if got[key] {
				t.Fatalf("maxDist=%g: duplicate pair %v", maxDist, key)
			}
			if res.Dist > maxDist {
				t.Fatalf("maxDist=%g: pair at %g beyond bound", maxDist, res.Dist)
			}
			got[key] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("maxDist=%g: got %d pairs, want %d", maxDist, len(got), len(want))
		}
		for key := range want {
			if !got[key] {
				t.Fatalf("maxDist=%g: missing %v", maxDist, key)
			}
		}
	}
}

func TestWithinJoinEarlyStopAndEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	w := geom.NewRect(0, 0, 100, 100)
	l := datagen.Uniform(rng.Int63(), 100, w, 5)
	left := buildTree(t, l, 8)

	count := 0
	err := WithinJoin(left, left, 1000, Options{}, func(Result) bool {
		count++
		return count < 7
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}

	if err := WithinJoin(left, left, 10, Options{}, nil); err == nil {
		t.Fatal("nil callback must error")
	}
	if err := WithinJoin(left, left, -1, Options{}, func(Result) bool { return true }); err != nil {
		t.Fatal(err)
	}
	empty := buildTree(t, nil, 8)
	called := false
	if err := WithinJoin(empty, left, 10, Options{}, func(Result) bool { called = true; return true }); err != nil || called {
		t.Fatal("empty within join must produce nothing")
	}
}

func TestWithinJoinSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	w := geom.NewRect(0, 0, 200, 200)
	l := datagen.Uniform(rng.Int63(), 80, w, 5)
	left := buildTree(t, l, 8)
	const maxDist = 25.0

	want := 0
	for i := range l {
		for j := i + 1; j < len(l); j++ {
			if l[i].Rect.MinDist(l[j].Rect) <= maxDist {
				want++
			}
		}
	}
	got := 0
	err := WithinJoin(left, left, maxDist, Options{SelfJoin: true}, func(res Result) bool {
		if res.LeftObj >= res.RightObj {
			t.Fatalf("self-join produced non-canonical pair (%d,%d)", res.LeftObj, res.RightObj)
		}
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("self within join: %d pairs, want %d", got, want)
	}
}

func TestWithinJoinRefined(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	w := geom.NewRect(0, 0, 500, 500)
	l := datagen.Uniform(rng.Int63(), 150, w, 20)
	r := datagen.Uniform(rng.Int63(), 150, w, 20)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	const maxDist = 40.0

	want := 0
	for _, a := range l {
		for _, b := range r {
			if a.Rect.CenterDist(b.Rect) <= maxDist {
				want++
			}
		}
	}
	got := 0
	err := WithinJoin(left, right, maxDist, Options{Refiner: centerRefiner}, func(res Result) bool {
		if res.Dist > maxDist {
			t.Fatalf("refined pair at %g beyond bound", res.Dist)
		}
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("refined within join: %d pairs, want %d", got, want)
	}
}

func TestAllNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(604))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 200, w, 10)
	r := datagen.GaussianClusters(rng.Int63(), 300, 3, w, 80, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)

	mc := &metrics.Collector{}
	got := map[int64]Result{}
	err := AllNearest(left, right, Options{Metrics: mc}, func(res Result) bool {
		got[res.LeftObj] = res
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(l) {
		t.Fatalf("covered %d of %d left objects", len(got), len(l))
	}
	for _, a := range l {
		best := math.Inf(1)
		for _, b := range r {
			if d := a.Rect.MinDist(b.Rect); d < best {
				best = d
			}
		}
		res, ok := got[a.Obj]
		if !ok {
			t.Fatalf("object %d missing", a.Obj)
		}
		if math.Abs(res.Dist-best) > 1e-9 {
			t.Fatalf("object %d: nearest %g, want %g", a.Obj, res.Dist, best)
		}
	}
	if mc.NodeAccessesLogical == 0 || mc.ResultsProduced != int64(len(l)) {
		t.Fatalf("metrics: %+v", mc)
	}
}

func TestAllNearestEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(605))
	w := geom.NewRect(0, 0, 100, 100)
	some := buildTree(t, datagen.Uniform(rng.Int63(), 20, w, 5), 8)
	empty := buildTree(t, nil, 8)

	if err := AllNearest(some, some, Options{}, nil); err == nil {
		t.Fatal("nil callback must error")
	}
	if err := AllNearest(empty, some, Options{}, func(Result) bool { return true }); err != nil {
		t.Fatal("empty left must succeed vacuously")
	}
	if err := AllNearest(some, empty, Options{}, func(Result) bool { return true }); err == nil {
		t.Fatal("empty right must error")
	}
	// Early stop.
	count := 0
	if err := AllNearest(some, some, Options{}, func(Result) bool {
		count++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestSelfJoinKDJ(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	w := geom.NewRect(0, 0, 500, 500)
	l := datagen.Uniform(rng.Int63(), 120, w, 8)
	left := buildTree(t, l, 8)
	k := 60

	// Reference: k closest unordered distinct pairs.
	type dp struct {
		d    float64
		a, b int64
	}
	var all []dp
	for i := range l {
		for j := i + 1; j < len(l); j++ {
			all = append(all, dp{l[i].Rect.MinDist(l[j].Rect), l[i].Obj, l[j].Obj})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })

	for name, f := range map[string]func() ([]Result, error){
		"HS-KDJ": func() ([]Result, error) { return HSKDJ(left, left, k, Options{SelfJoin: true}) },
		"B-KDJ":  func() ([]Result, error) { return BKDJ(left, left, k, Options{SelfJoin: true}) },
		"AM-KDJ": func() ([]Result, error) { return AMKDJ(left, left, k, Options{SelfJoin: true}) },
	} {
		got, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != k {
			t.Fatalf("%s: %d results", name, len(got))
		}
		for i := range got {
			if got[i].LeftObj >= got[i].RightObj {
				t.Fatalf("%s: non-canonical pair (%d,%d)", name, got[i].LeftObj, got[i].RightObj)
			}
			if math.Abs(got[i].Dist-all[i].d) > 1e-9 {
				t.Fatalf("%s: result %d dist %.12g, want %.12g", name, i, got[i].Dist, all[i].d)
			}
		}
	}

	// Incremental self-join too.
	it, err := AMIDJ(left, left, Options{SelfJoin: true, BatchK: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		res, ok := it.Next()
		if !ok {
			t.Fatalf("AM-IDJ self: exhausted at %d", i)
		}
		if math.Abs(res.Dist-all[i].d) > 1e-9 {
			t.Fatalf("AM-IDJ self: result %d mismatch", i)
		}
	}
}

func TestAllKNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 150, w, 10)
	r := datagen.GaussianClusters(rng.Int63(), 200, 3, w, 80, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	const k = 7

	got := map[int64][]float64{}
	err := AllKNearest(left, right, k, Options{}, func(ns []Result) bool {
		for i, n := range ns {
			if n.LeftObj != ns[0].LeftObj {
				t.Fatal("batch mixes left objects")
			}
			if i > 0 && n.Dist < ns[i-1].Dist {
				t.Fatal("batch out of order")
			}
			got[n.LeftObj] = append(got[n.LeftObj], n.Dist)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(l) {
		t.Fatalf("covered %d of %d left objects", len(got), len(l))
	}
	for _, a := range l {
		var ds []float64
		for _, b := range r {
			ds = append(ds, a.Rect.MinDist(b.Rect))
		}
		sort.Float64s(ds)
		g := got[a.Obj]
		if len(g) != k {
			t.Fatalf("object %d got %d neighbors", a.Obj, len(g))
		}
		for i := 0; i < k; i++ {
			if math.Abs(g[i]-ds[i]) > 1e-9 {
				t.Fatalf("object %d neighbor %d: %g, want %g", a.Obj, i, g[i], ds[i])
			}
		}
	}
}

func TestAllKNearestEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(608))
	w := geom.NewRect(0, 0, 100, 100)
	some := buildTree(t, datagen.Uniform(rng.Int63(), 20, w, 5), 8)
	tiny := buildTree(t, datagen.Uniform(rng.Int63(), 3, w, 5), 8)
	empty := buildTree(t, nil, 8)

	if err := AllKNearest(some, some, 3, Options{}, nil); err == nil {
		t.Fatal("nil callback must error")
	}
	if err := AllKNearest(some, some, 0, Options{}, func([]Result) bool { return true }); err == nil {
		t.Fatal("k=0 must error")
	}
	if err := AllKNearest(empty, some, 3, Options{}, func([]Result) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := AllKNearest(some, empty, 3, Options{}, func([]Result) bool { return true }); err == nil {
		t.Fatal("empty right must error")
	}
	// Fewer neighbors than k when the right side is small.
	if err := AllKNearest(some, tiny, 10, Options{}, func(ns []Result) bool {
		if len(ns) != 3 {
			t.Fatalf("batch size %d, want 3", len(ns))
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// Early stop after the first batch.
	count := 0
	if err := AllKNearest(some, some, 2, Options{}, func([]Result) bool {
		count++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("early stop visited %d batches", count)
	}
}
