package join

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/geom"
	"distjoin/internal/metrics"
	"distjoin/internal/rtree"
)

// centerRefiner is a contract-conforming exact distance: the distance
// between rect centers, which always lies between the MBR minimum and
// maximum distances.
func centerRefiner(l, r int64, lr, rr geom.Rect) float64 {
	return lr.CenterDist(rr)
}

// bruteRefined computes the reference k nearest pairs under the
// refined (center) distance.
func bruteRefined(left, right []rtree.Item, k int) []float64 {
	var ds []float64
	for _, l := range left {
		for _, r := range right {
			ds = append(ds, l.Rect.CenterDist(r.Rect))
		}
	}
	sort.Float64s(ds)
	if len(ds) > k {
		ds = ds[:k]
	}
	return ds
}

func TestRefinedKDJMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 250, w, 20)
	r := datagen.GaussianClusters(rng.Int63(), 250, 4, w, 80, 20)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	k := 120
	want := bruteRefined(l, r, k)
	opts := Options{Refiner: centerRefiner}

	for name, f := range map[string]func() ([]Result, error){
		"HS-KDJ": func() ([]Result, error) { return HSKDJ(left, right, k, opts) },
		"B-KDJ":  func() ([]Result, error) { return BKDJ(left, right, k, opts) },
		"AM-KDJ": func() ([]Result, error) { return AMKDJ(left, right, k, opts) },
	} {
		got, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != k {
			t.Fatalf("%s: got %d results", name, len(got))
		}
		for i := range got {
			if i > 0 && got[i].Dist < got[i-1].Dist {
				t.Fatalf("%s: out of order at %d", name, i)
			}
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				t.Fatalf("%s: result %d dist %.12g, want %.12g", name, i, got[i].Dist, want[i])
			}
			// Every emitted result must carry the refined distance.
			if d := got[i].LeftRect.CenterDist(got[i].RightRect); math.Abs(d-got[i].Dist) > 1e-9 {
				t.Fatalf("%s: result %d distance is not the refined one", name, i)
			}
		}
	}
}

func TestRefinedKDJWithAllPairsPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 200, w, 15)
	r := datagen.Uniform(rng.Int63(), 200, w, 15)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	k := 80
	want := bruteRefined(l, r, k)
	got, err := BKDJ(left, right, k, Options{Refiner: centerRefiner, DistanceQueue: AllPairs})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i]) > 1e-9 {
			t.Fatalf("result %d dist %.12g, want %.12g", i, got[i].Dist, want[i])
		}
	}
}

func TestRefinedSJSort(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 200, w, 15)
	r := datagen.Uniform(rng.Int63(), 200, w, 15)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	k := 70
	want := bruteRefined(l, r, k)
	got, err := SJSort(left, right, k, want[k-1], Options{Refiner: centerRefiner})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != k {
		t.Fatalf("got %d results", len(got))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i]) > 1e-9 {
			t.Fatalf("result %d dist %.12g, want %.12g", i, got[i].Dist, want[i])
		}
	}
}

func TestRefinedIncrementalJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 150, w, 15)
	r := datagen.GaussianClusters(rng.Int63(), 150, 3, w, 60, 15)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	pull := 200
	want := bruteRefined(l, r, pull)

	hs, err := HSIDJ(left, right, Options{Refiner: centerRefiner})
	if err != nil {
		t.Fatal(err)
	}
	am, err := AMIDJ(left, right, Options{Refiner: centerRefiner, BatchK: 45})
	if err != nil {
		t.Fatal(err)
	}
	for name, next := range map[string]func() (Result, bool){"HS-IDJ": hs.Next, "AM-IDJ": am.Next} {
		for i := 0; i < pull; i++ {
			res, ok := next()
			if !ok {
				t.Fatalf("%s: exhausted at %d", name, i)
			}
			if math.Abs(res.Dist-want[i]) > 1e-9 {
				t.Fatalf("%s: result %d dist %.12g, want %.12g", name, i, res.Dist, want[i])
			}
		}
	}
}

// Refined AM-IDJ pulled to exhaustion still produces every pair
// exactly once.
func TestRefinedIDJExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	w := geom.NewRect(0, 0, 200, 200)
	l := datagen.Uniform(rng.Int63(), 19, w, 8)
	r := datagen.Uniform(rng.Int63(), 23, w, 8)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	it, err := AMIDJ(left, right, Options{Refiner: centerRefiner, BatchK: 40})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int64]bool{}
	prev := math.Inf(-1)
	count := 0
	for {
		res, ok := it.Next()
		if !ok {
			break
		}
		if res.Dist < prev-1e-12 {
			t.Fatalf("out of order at %d", count)
		}
		prev = res.Dist
		key := [2]int64{res.LeftObj, res.RightObj}
		if seen[key] {
			t.Fatalf("duplicate %v", key)
		}
		seen[key] = true
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != len(l)*len(r) {
		t.Fatalf("produced %d of %d", count, len(l)*len(r))
	}
}

// Each candidate pair is refined at most once, and the refinement
// count is far below the full cross product.
func TestRefinementCountedAndLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	w := geom.NewRect(0, 0, 2000, 2000)
	l := datagen.Uniform(rng.Int63(), 500, w, 10)
	r := datagen.Uniform(rng.Int63(), 500, w, 10)
	left, right := buildTree(t, l, 16), buildTree(t, r, 16)
	mc := &metrics.Collector{}
	k := 50
	if _, err := BKDJ(left, right, k, Options{Refiner: centerRefiner, Metrics: mc}); err != nil {
		t.Fatal(err)
	}
	if mc.RefinementCalcs == 0 {
		t.Fatal("no refinements recorded")
	}
	total := int64(len(l) * len(r))
	if mc.RefinementCalcs > total/10 {
		t.Fatalf("refined %d of %d pairs; refinement is not lazy", mc.RefinementCalcs, total)
	}
}

// A refiner returning less than the MBR lower bound is clamped, so
// ordering invariants hold even against a buggy refiner.
func TestRefinerClampedFromBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	w := geom.NewRect(0, 0, 500, 500)
	l := datagen.Uniform(rng.Int63(), 100, w, 10)
	r := datagen.Uniform(rng.Int63(), 100, w, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	bad := func(int64, int64, geom.Rect, geom.Rect) float64 { return -1 }
	got, err := BKDJ(left, right, 40, Options{Refiner: bad})
	if err != nil {
		t.Fatal(err)
	}
	// Clamping turns the refiner into the identity on MBR distances.
	want := BruteForce(l, r, 40)
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("result %d dist %.12g, want %.12g", i, got[i].Dist, want[i].Dist)
		}
	}
}

// AM-KDJ with refinement stays correct across extreme eDmax values.
func TestRefinedAMKDJAnyEDmax(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 180, w, 12)
	r := datagen.Uniform(rng.Int63(), 180, w, 12)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)
	k := 90
	want := bruteRefined(l, r, k)
	for _, e := range []float64{1e-9, 1, 20, 1e6} {
		got, err := AMKDJ(left, right, k, Options{Refiner: centerRefiner, EDmax: e})
		if err != nil {
			t.Fatalf("eDmax=%g: %v", e, err)
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				t.Fatalf("eDmax=%g: result %d dist %.12g, want %.12g", e, i, got[i].Dist, want[i])
			}
		}
	}
}

// The histogram estimator plugs in via Options.Estimator and yields
// correct results with fewer/cheaper stages on clustered data.
func TestHistogramEstimatorIntegration(t *testing.T) {
	rng := rand.New(rand.NewSource(208))
	w := geom.NewRect(0, 0, 10000, 10000)
	// Dense shared cluster plus outliers: the uniform model
	// overestimates eDmax badly here.
	l := datagen.GaussianClusters(rng.Int63(), 400, 1, w, 40, 5)
	r := datagen.GaussianClusters(rng.Int63(), 400, 1, w, 40, 5)
	l = append(l, rtree.Item{Rect: geom.NewRect(0, 0, 1, 1), Obj: 9001})
	r = append(r, rtree.Item{Rect: geom.NewRect(9999, 9999, 10000, 10000), Obj: 9001})
	left, right := buildTree(t, l, 16), buildTree(t, r, 16)

	hist, err := NewHistogramEstimator(left, right, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := 200
	want := BruteForce(l, r, k)

	for name, opts := range map[string]Options{
		"uniform":   {},
		"histogram": {Estimator: hist},
	} {
		got, err := AMKDJ(left, right, k, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkAgainstBrute(t, "AM-KDJ/"+name, got, l, r, k)
	}

	// The histogram's initial estimate must be much closer to truth.
	realD := want[k-1].Dist
	histEst := hist.Initial(k)
	if histEst > realD*20 {
		t.Fatalf("histogram estimate %g still wildly above real %g", histEst, realD)
	}

	// AM-IDJ with the histogram estimator also stays correct.
	it, err := AMIDJ(left, right, Options{Estimator: hist, BatchK: 60})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		res, ok := it.Next()
		if !ok {
			t.Fatalf("exhausted at %d", i)
		}
		if math.Abs(res.Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("AM-IDJ/histogram: result %d mismatch", i)
		}
	}
}

func TestNewHistogramEstimatorValidation(t *testing.T) {
	if _, err := NewHistogramEstimator(nil, nil, 8); err == nil {
		t.Fatal("nil trees must be rejected")
	}
}
