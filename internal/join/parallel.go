package join

// Parallel distance-join execution: a worker pool expands multiple
// head pairs of the main queue concurrently, running the §3.2
// optimized plane sweep per pair inside workers, and merges the
// surviving candidate pairs back into the hybrid queue on the
// coordinating goroutine.
//
// # Execution model
//
// The coordinator repeatedly pops a batch of up to W pairs — the W
// globally smallest — from the main queue and splits it:
//
//  1. the longest prefix of final <object,object> pairs is emitted
//     immediately (they precede everything still queued, and every
//     still-unexpanded node pair can only produce children at least
//     as distant as itself, because a child MBR is contained in its
//     parent MBR and MinDist is monotone under containment);
//  2. node pairs and unrefined object pairs become expansion /
//     refinement tasks, dispatched to the worker pool;
//  3. final result pairs popped behind a pending expansion are
//     returned to the queue — the expansion's children may be closer.
//
// Workers prune against cutoffs that are frozen for the duration of
// the batch: the atomically-published qDmax mirror
// (cutoffTracker.LiveCutoff) and, for the adaptive stages, the stage
// eDmax. A frozen cutoff is never smaller than the live serial cutoff
// at the corresponding point, so parallel pruning admits a superset
// of the pairs serial pruning admits — pruning is a performance
// optimization, never a correctness requirement, hence the k nearest
// pairs are unaffected. After the batch barrier the coordinator
// merges each task's candidates in task order, re-applying the (now
// current) cutoff filter and feeding the distance queue, so the
// tracker and hybrid queue are only ever mutated single-threaded.
//
// # Determinism
//
// Results are emitted in nondecreasing distance order with the same
// deterministic tie-break as the serial path (hybridq.Pair.Less), so
// a parallel run returns exactly the same pairs in the same order as
// the serial run regardless of worker count — only the performance
// counters differ (frozen cutoffs admit more candidates). Worker
// scheduling cannot leak into results: task outputs are buffered
// per-task and merged in batch order, and every per-worker side
// effect (metrics) goes to a private shard folded in at the barrier.

import (
	"sync"
	"sync/atomic"

	"distjoin/internal/hybridq"
	"distjoin/internal/metrics"
	"distjoin/internal/obsrv"
	"distjoin/internal/rtree"
	"distjoin/internal/trace"
)

// parallelState is the per-query worker-pool state: one expander (and
// one metrics shard) per worker, plus reusable per-task output slots.
type parallelState struct {
	workers int
	shards  *metrics.Shards
	exs     []expander
	outs    []expandOut
}

func newParallelState(c *execContext, workers int) *parallelState {
	ps := &parallelState{
		workers: workers,
		shards:  metrics.NewShards(workers),
		exs:     make([]expander, workers),
		outs:    make([]expandOut, workers),
	}
	for i := range ps.exs {
		ps.exs[i] = expander{c: c, mc: ps.shards.Shard(i)}
	}
	return ps
}

// expandOut is one task's buffered output, merged by the coordinator
// after the batch barrier.
type expandOut struct {
	// pairs holds the surviving candidate child pairs in sweep
	// emission order (or the single refined pair for refine tasks).
	pairs []hybridq.Pair
	// ci carries new compensation bookkeeping (AM aggressive and
	// fresh AM-IDJ expansions).
	ci *compInfo
	// ranges carries updated bookkeeping for AM-IDJ band
	// re-expansions.
	ranges sweepRanges
	// direct marks outputs that bypass the merge-time cutoff filter
	// (refinement results are pushed unconditionally, as in serial).
	direct bool
	// events buffers the task's trace events (empty when no tracer is
	// installed). They are emitted by the coordinator at the batch
	// barrier, in task order, so trace output is deterministic for a
	// given worker count regardless of goroutine scheduling.
	events []trace.Event
	err    error
}

// out resets and returns the i-th output slot for the next batch.
func (ps *parallelState) out(i int) *expandOut {
	o := &ps.outs[i]
	*o = expandOut{pairs: o.pairs[:0], events: o.events[:0]}
	return o
}

// traceExpansion buffers an expansion event for p into out when
// tracing is enabled. children is the number of buffered candidate
// pairs the expansion produced (before the merge-time cutoff filter —
// the pre-merge count is what the worker observed under the frozen
// cutoff).
func (e *expander) traceExpansion(out *expandOut, p hybridq.Pair, cutoff float64, children int64) {
	if !e.c.tr.Enabled() {
		return
	}
	out.events = append(out.events, expansionEvent(e.c.algo, e.c.stage, p, cutoff, children))
}

// ptask is one unit of worker work with its output slot.
type ptask struct {
	fn  func(e *expander)
	out *expandOut
}

// run executes tasks on up to ps.workers goroutines and folds the
// workers' metrics shards into the query collector once all workers
// are quiescent. Tasks are claimed through an atomic counter for load
// balance; outputs are indexed, so merge order is independent of
// scheduling.
func (ps *parallelState) run(c *execContext, tasks []ptask) {
	if len(tasks) == 0 {
		return
	}
	if len(tasks) == 1 {
		tasks[0].fn(&ps.exs[0])
		ps.shards.MergeInto(c.mc)
		return
	}
	n := ps.workers
	if n > len(tasks) {
		n = len(tasks)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(e *expander) {
			defer wg.Done()
			//lint:allow ctxpoll bounded by len(tasks): each iteration claims one task and exits past the end; task bodies poll cancellation at the coordinator barriers
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tasks[i].fn(e)
			}
		}(&ps.exs[w])
	}
	wg.Wait()
	ps.shards.MergeInto(c.mc)
}

// popBatch pops up to n pairs (the n globally smallest) into dst.
func popBatch(c *execContext, dst []hybridq.Pair, n int) []hybridq.Pair {
	//lint:allow ctxpoll bounded by n (the worker count); the caller's drive loop polls cancellation every iteration
	for len(dst) < n {
		p, ok := c.queue.Pop()
		if !ok {
			break
		}
		dst = append(dst, p)
	}
	return dst
}

// Worker task bodies. Each runs entirely on one worker's expander —
// private scratch node, private metrics shard — and buffers its
// emissions into out.

// sweepChildren is the parallel form of bkdjPlaneSweep: a full
// bidirectional expansion pruned against the frozen qDmax.
func (e *expander) sweepChildren(p hybridq.Pair, cutoff func() float64, out *expandOut) {
	run, err := e.expansion(p, cutoff())
	if err != nil {
		out.err = err
		return
	}
	run.axisCutoff = cutoff
	run.emit = func(le, re rtree.NodeEntry, d float64) {
		if d > cutoff() {
			return
		}
		out.pairs = append(out.pairs, run.childPair(le, re, d))
	}
	run.run()
	e.traceExpansion(out, p, cutoff(), int64(len(out.pairs)))
}

// aggressiveChildren is the parallel form of amAggressiveSweep: axis
// pruning against the stage eDmax with per-anchor bookkeeping.
func (e *expander) aggressiveChildren(p hybridq.Pair, eDmax float64, cutoff func() float64, out *expandOut) {
	run, err := e.expansion(p, eDmax)
	if err != nil {
		out.err = err
		return
	}
	run.fixCutoff(eDmax)
	run.record = true
	run.emit = func(le, re rtree.NodeEntry, d float64) {
		if d > cutoff() {
			return
		}
		out.pairs = append(out.pairs, run.childPair(le, re, d))
	}
	run.run()
	out.ci = &compInfo{pair: p, plan: run.plan, ranges: run.out, examCutoff: eDmax}
	e.traceExpansion(out, p, eDmax, int64(len(out.pairs)))
}

// compensateChildren is the parallel form of amCompensateSweep:
// replay the stage-one sweep order, processing only the child pairs
// stage one never examined.
func (e *expander) compensateChildren(p hybridq.Pair, ci *compInfo, cutoff func() float64, out *expandOut) {
	run, err := e.expansionWithPlan(p, ci.plan)
	if err != nil {
		out.err = err
		return
	}
	run.prev = &ci.ranges
	run.axisCutoff = cutoff
	run.emit = func(le, re rtree.NodeEntry, d float64) {
		if d > cutoff() {
			return
		}
		out.pairs = append(out.pairs, run.childPair(le, re, d))
	}
	run.run()
	e.traceExpansion(out, p, cutoff(), int64(len(out.pairs)))
}

// refineTask refines one <object,object> pair; the refined pair is
// pushed unconditionally at merge, exactly like the serial path.
func (e *expander) refineTask(p hybridq.Pair, out *expandOut) {
	out.direct = true
	out.pairs = append(out.pairs, e.refine(p))
}

// idjFreshChildren is the parallel form of AM-IDJ's first-time
// expansion under the stage cutoff cur.
func (e *expander) idjFreshChildren(p hybridq.Pair, cur float64, record bool, out *expandOut) {
	run, err := e.expansion(p, cur)
	if err != nil {
		out.err = err
		return
	}
	run.fixCutoff(cur)
	run.record = true
	run.emit = func(le, re rtree.NodeEntry, d float64) {
		if d > cur {
			return
		}
		out.pairs = append(out.pairs, run.childPair(le, re, d))
	}
	run.run()
	if record {
		out.ci = &compInfo{pair: p, plan: run.plan, ranges: run.out, examCutoff: cur}
	}
	e.traceExpansion(out, p, cur, int64(len(out.pairs)))
}

// idjBandChildren is the parallel form of AM-IDJ's band
// re-examination: recover the (prev, cur] band among previously
// examined pairs plus everything <= cur in the unexamined suffix.
func (e *expander) idjBandChildren(p hybridq.Pair, ci *compInfo, cur, prev float64, out *expandOut) {
	run, err := e.expansionWithPlan(p, ci.plan)
	if err != nil {
		out.err = err
		return
	}
	run.prev = &ci.ranges
	run.record = true
	run.fixCutoff(cur)
	run.reexamine = func(le, re rtree.NodeEntry, d float64) {
		if d > prev && d <= cur {
			out.pairs = append(out.pairs, run.childPair(le, re, d))
		}
	}
	run.emit = func(le, re rtree.NodeEntry, d float64) {
		if d <= cur {
			out.pairs = append(out.pairs, run.childPair(le, re, d))
		}
	}
	run.run()
	out.ranges = run.out
	e.traceExpansion(out, p, cur, int64(len(out.pairs)))
}

// emitPrefix appends to results the longest batch prefix of
// immediately-final result pairs and returns the number consumed.
func emitPrefix(c *execContext, batch []hybridq.Pair, results *[]Result, k int) int {
	i := 0
	for i < len(batch) && len(*results) < k {
		p := batch[i]
		if !p.IsResult() || c.needsRefinement(p) {
			break
		}
		*results = append(*results, pairResult(p))
		c.mc.AddResult(1)
		i++
	}
	return i
}

// mergeTask folds one task's output into the queue and the cutoff
// tracker, applying the now-current qDmax filter exactly as the
// serial emit closures do.
func mergeTask(c *execContext, ct *cutoffTracker, out *expandOut) error {
	if out.err != nil {
		return c.traceError(out.err)
	}
	if len(out.events) > 0 {
		c.tr.EmitAll(out.events)
	}
	for _, np := range out.pairs {
		if !out.direct && np.Dist > ct.Cutoff() {
			continue
		}
		if c.push(np) {
			ct.OnPush(np)
		}
	}
	return nil
}

// traceBarrier emits one batch_barrier event after a batch's tasks
// have been merged, recording how many tasks the barrier synchronized.
func (c *execContext) traceBarrier(tasks int) {
	if !c.tr.Enabled() || tasks == 0 {
		return
	}
	c.tr.Emit(trace.Event{Kind: trace.KindBarrier, Algo: c.algo, Stage: c.stage, Count: int64(tasks)})
}

// bkdjParallel is the worker-pool form of B-KDJ (Algorithm 1).
func bkdjParallel(c *execContext, k int) ([]Result, error) {
	ps := c.par
	ct := newCutoffTracker(c, k, c.dqPolicy)
	live := ct.LiveCutoff
	results := make([]Result, 0, k)
	if c.push(c.rootPair()) {
		ct.OnPush(c.rootPair())
	}
	batch := make([]hybridq.Pair, 0, ps.workers)
	tasks := make([]ptask, 0, ps.workers)
	for len(results) < k {
		if err := c.cancelled(); err != nil {
			return nil, err
		}
		batch = popBatch(c, batch[:0], ps.workers)
		if len(batch) == 0 {
			break
		}
		i := emitPrefix(c, batch, &results, k)
		if len(results) >= k {
			break
		}
		tasks = tasks[:0]
		for _, p := range batch[i:] {
			p := p
			switch {
			case !p.IsResult():
				ct.OnRemove(p)
				out := ps.out(len(tasks))
				tasks = append(tasks, ptask{fn: func(e *expander) { e.sweepChildren(p, live, out) }, out: out})
			case c.needsRefinement(p):
				ct.OnRemove(p)
				out := ps.out(len(tasks))
				tasks = append(tasks, ptask{fn: func(e *expander) { e.refineTask(p, out) }, out: out})
			default:
				// A final result behind a pending expansion: its
				// emission must wait for the expansion's children, so
				// it returns to the queue. Its cutoff witness remains
				// registered — no OnRemove, no OnPush.
				c.push(p)
			}
		}
		ps.run(c, tasks)
		for t := range tasks {
			if err := mergeTask(c, ct, tasks[t].out); err != nil {
				return nil, err
			}
		}
		c.traceBarrier(len(tasks))
	}
	if err := c.queue.Err(); err != nil {
		return nil, c.traceError(err)
	}
	return results, nil
}

// amkdjParallel is the worker-pool form of AM-KDJ (Algorithms 2–3).
func amkdjParallel(c *execContext, k int, opts Options) ([]Result, error) {
	ps := c.par
	ct := newCutoffTracker(c, k, c.dqPolicy)
	live := ct.LiveCutoff
	eDmax := opts.EDmax
	estMode := obsrv.ModeOverride
	if eDmax <= 0 {
		eDmax = c.est.Initial(k) // Eq. 3 (or the configured estimator)
		estMode = obsrv.ModeInitial
	}
	est0 := eDmax
	c.traceStage(trace.KindStageStart, "aggressive", eDmax, 0)
	results := make([]Result, 0, k)
	var compList []*compInfo
	compMap := make(map[pairKey]*compInfo)
	if c.push(c.rootPair()) {
		ct.OnPush(c.rootPair())
	}
	batch := make([]hybridq.Pair, 0, ps.workers)
	tasks := make([]ptask, 0, ps.workers)

	// Stage one: aggressive pruning (Algorithm 2), batched.
	stageOne := true
	for stageOne && len(results) < k {
		if err := c.cancelled(); err != nil {
			return nil, err
		}
		// Line 8, applied once per batch: once qDmax drops to eDmax
		// the estimate was an overestimate and eDmax tracks qDmax.
		if q := ct.Cutoff(); q <= eDmax {
			c.traceEDmax(eDmax, q)
			eDmax = q
		}
		batch = popBatch(c, batch[:0], ps.workers)
		if len(batch) == 0 {
			break
		}
		// Stage-one termination (condition 3): pairs beyond eDmax
		// wait for the compensation stage; the batch tail returns to
		// the queue exactly like serial's single re-pushed pair.
		cut := len(batch)
		for j, p := range batch {
			if p.Dist > eDmax {
				cut = j
				break
			}
		}
		for _, p := range batch[cut:] {
			c.push(p)
		}
		if cut < len(batch) {
			stageOne = false
		}
		work := batch[:cut]
		i := emitPrefix(c, work, &results, k)
		if len(results) >= k {
			break
		}
		tasks = tasks[:0]
		frozen := eDmax
		for _, p := range work[i:] {
			p := p
			switch {
			case !p.IsResult():
				ct.OnRemove(p)
				out := ps.out(len(tasks))
				tasks = append(tasks, ptask{fn: func(e *expander) { e.aggressiveChildren(p, frozen, live, out) }, out: out})
			case c.needsRefinement(p):
				ct.OnRemove(p)
				out := ps.out(len(tasks))
				tasks = append(tasks, ptask{fn: func(e *expander) { e.refineTask(p, out) }, out: out})
			default:
				c.push(p)
			}
		}
		ps.run(c, tasks)
		for t := range tasks {
			out := tasks[t].out
			if out.ci != nil && out.err == nil {
				compList = append(compList, out.ci)
				compMap[keyOf(out.ci.pair)] = out.ci
				c.mc.AddCompQueueInsert(1)
			}
			if err := mergeTask(c, ct, out); err != nil {
				return nil, err
			}
		}
		c.traceBarrier(len(tasks))
	}
	c.traceStage(trace.KindStageEnd, "aggressive", eDmax, int64(len(results)))

	// Stage two: compensation (Algorithm 3), needed only when the
	// aggressive stage fell short.
	if len(results) < k && c.queue.Err() == nil {
		c.mc.AddCompensationStage()
		c.traceStage(trace.KindCompensation, "compensation", eDmax, int64(len(compList)))
		// Re-seed the bookkept pairs; their bounds are NOT
		// re-registered with the cutoff tracker (see the serial
		// AMKDJ for the reasoning).
		for _, ci := range compList {
			c.push(ci.pair)
		}
		for len(results) < k {
			if err := c.cancelled(); err != nil {
				return nil, err
			}
			batch = popBatch(c, batch[:0], ps.workers)
			if len(batch) == 0 {
				break
			}
			i := emitPrefix(c, batch, &results, k)
			if len(results) >= k {
				break
			}
			tasks = tasks[:0]
			for _, p := range batch[i:] {
				p := p
				switch {
				case !p.IsResult():
					out := ps.out(len(tasks))
					if ci := compMap[keyOf(p)]; ci != nil {
						// No OnRemove: this pair's bound was not
						// re-registered.
						delete(compMap, keyOf(p))
						ci := ci
						tasks = append(tasks, ptask{fn: func(e *expander) { e.compensateChildren(p, ci, live, out) }, out: out})
					} else {
						ct.OnRemove(p)
						tasks = append(tasks, ptask{fn: func(e *expander) { e.sweepChildren(p, live, out) }, out: out})
					}
				case c.needsRefinement(p):
					ct.OnRemove(p)
					out := ps.out(len(tasks))
					tasks = append(tasks, ptask{fn: func(e *expander) { e.refineTask(p, out) }, out: out})
				default:
					c.push(p)
				}
			}
			ps.run(c, tasks)
			for t := range tasks {
				if err := mergeTask(c, ct, tasks[t].out); err != nil {
					return nil, err
				}
			}
			c.traceBarrier(len(tasks))
		}
	}
	if err := c.queue.Err(); err != nil {
		return nil, c.traceError(err)
	}
	if len(results) == k {
		c.recordEstimate(est0, results[k-1].Dist, estMode)
	}
	return results, nil
}

// expandParallel is AM-IDJ's batched expansion: starting from the
// already-popped first pair, it additionally claims up to W-1 more
// node pairs from the queue head — stopping at any result pair or
// stage boundary, which Next must see — expands them on the pool, and
// merges children and compensation bookkeeping in batch order.
// Because AM-IDJ prunes only against the stage cutoff (frozen between
// stages by construction), a parallel stage examines exactly the
// pairs the serial stage examines.
func (it *AMIDJIterator) expandParallel(first hybridq.Pair) error {
	c := it.c
	ps := c.par
	cur := it.eDmax
	batch := append(make([]hybridq.Pair, 0, ps.workers), first)
	//lint:allow ctxpoll claim loop is bounded by the worker count; Next polls cancellation before each batch
	for len(batch) < ps.workers {
		p, ok := c.queue.Peek()
		if !ok || p.IsResult() {
			break
		}
		if p.Dist > cur && cur < it.maxd {
			break // stage boundary: leave for Next's advanceStage path
		}
		c.queue.Pop()
		batch = append(batch, p)
	}

	tasks := make([]ptask, 0, len(batch))
	fresh := make([]bool, len(batch))
	for j, p := range batch {
		p := p
		out := ps.out(len(tasks))
		if ci := it.compMap[keyOf(p)]; ci != nil {
			ci := ci
			prev := ci.examCutoff
			tasks = append(tasks, ptask{fn: func(e *expander) { e.idjBandChildren(p, ci, cur, prev, out) }, out: out})
		} else {
			fresh[j] = true
			record := cur < p.LeftRect.MaxDist(p.RightRect)
			tasks = append(tasks, ptask{fn: func(e *expander) { e.idjFreshChildren(p, cur, record, out) }, out: out})
		}
	}
	ps.run(c, tasks)

	for j := range tasks {
		out := tasks[j].out
		if out.err != nil {
			return c.traceError(out.err)
		}
		if len(out.events) > 0 {
			c.tr.EmitAll(out.events)
		}
		for _, np := range out.pairs {
			c.push(np)
		}
		p := batch[j]
		key := keyOf(p)
		if fresh[j] {
			if out.ci == nil {
				continue
			}
			if existing := it.compMap[key]; existing != nil {
				// Duplicate key within one batch: keep the wider,
				// later bookkeeping.
				*existing = *out.ci
				continue
			}
			it.compMap[key] = out.ci
			it.compOrder = append(it.compOrder, key)
			c.mc.AddCompQueueInsert(1)
			continue
		}
		if cur >= p.LeftRect.MaxDist(p.RightRect) {
			// Fully covered: retire the entry (compacted at the next
			// advanceStage).
			delete(it.compMap, key)
			continue
		}
		if ci := it.compMap[key]; ci != nil {
			ci.ranges = out.ranges
			ci.examCutoff = cur
		}
	}
	c.traceBarrier(len(tasks))
	return nil
}
