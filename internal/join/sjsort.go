package join

import (
	"distjoin/internal/extsort"
	"distjoin/internal/hybridq"
	"distjoin/internal/rtree"
)

// SJSort runs the SJ-SORT baseline of §5: an R-tree spatial join with
// a within(dmax) predicate (synchronized bidirectional traversal with
// plane-sweep pruning, after Brinkhoff/Kriegel/Seeger), followed by an
// external merge sort of the qualifying pairs by distance, returning
// the first k. As in the paper, dmax plays the role of an *oracle*:
// the experiments feed it the real distance of the k-th nearest pair,
// an assumption favorable to this baseline.
func SJSort(left, right *rtree.Tree, k int, dmax float64, opts Options) (results []Result, err error) {
	c, err := newContext(left, right, opts)
	if err != nil {
		return nil, err
	}
	if k <= 0 || c.left.Size() == 0 || c.right.Size() == 0 {
		return nil, nil
	}
	c.algo, c.stage = "SJ-SORT", "spatial-join"
	c.beginQuery(k)
	defer func() { c.endQuery(err) }()
	c.mc.Start()
	defer c.mc.Finish()

	mem := opts.QueueMemBytes
	if mem <= 0 {
		mem = DefaultQueueMemBytes
	}
	sorter, err := extsort.NewSorter(pairCodec, func(a, b hybridq.Pair) bool { return a.Less(b) },
		extsort.Config{MemBytes: mem, Metrics: opts.Metrics, IOCost: c.ioCost})
	if err != nil {
		return nil, err
	}

	// Phase one: the spatial join. A DFS over node pairs; qualifying
	// object pairs stream into the sorter.
	stack := []hybridq.Pair{c.rootPair()}
	for len(stack) > 0 {
		if err := c.cancelled(); err != nil {
			return nil, err
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p.Dist > dmax {
			continue
		}
		run, err := c.ex.expansion(p, dmax)
		if err != nil {
			return nil, err
		}
		run.fixCutoff(dmax)
		run.emit = func(le, re rtree.NodeEntry, d float64) {
			if d > dmax {
				return
			}
			np := run.childPair(le, re, d)
			if np.IsResult() {
				// Self-join semantics: suppress identity pairs and keep
				// one of each mirror pair — the same filter execContext.push
				// applies for the queue-driven algorithms. Pairs stream
				// into the sorter directly, so the filter must be applied
				// here. (Caught by the simtest differential oracle: the
				// self-join workload otherwise ranks <a,a> pairs at
				// distance zero ahead of every real result.)
				if c.opts.SelfJoin && np.Left >= np.Right {
					return
				}
				if c.refiner != nil {
					np = c.refine(np)
					if np.Dist > dmax {
						return
					}
				}
				sorter.Add(np)
				c.mc.AddMainQueueInsert(1) // counted as the baseline's queue work
			} else {
				stack = append(stack, np)
			}
		}
		run.run()
	}
	if err := sorter.Err(); err != nil {
		return nil, err
	}

	// Phase two: external sort, then emit the first k.
	c.stage = "sort"
	c.rq.SetStage("sort")
	it, err := sorter.Sort()
	if err != nil {
		return nil, err
	}
	results = make([]Result, 0, k)
	for len(results) < k {
		// The sorted runs can hold every candidate pair; honour
		// cancellation while draining rather than after.
		if err := c.cancelled(); err != nil {
			return nil, err
		}
		p, ok := it.Next()
		if !ok {
			break
		}
		results = append(results, pairResult(p))
		c.mc.AddResult(1)
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// pairCodec adapts hybridq.Pair's fixed-size encoding to the external
// sorter.
var pairCodec = extsort.Codec[hybridq.Pair]{
	Size:   hybridq.RecordSize,
	Encode: func(buf []byte, p hybridq.Pair) { p.Encode(buf) },
	Decode: hybridq.DecodePair,
}
