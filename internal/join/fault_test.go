package join

import (
	"errors"
	"math/rand"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/geom"
	"distjoin/internal/rtree"
	"distjoin/internal/storage"
)

// buildTreeOnStore packs items onto the given store with a tiny buffer
// so queries actually hit the store.
func buildTreeOnStore(t *testing.T, items []rtree.Item, store storage.Store) *rtree.Tree {
	t.Helper()
	b, err := rtree.NewBuilderForPageSize(store.PageSize())
	if err != nil {
		t.Fatal(err)
	}
	b.BulkLoad(items)
	tree, err := b.Pack(store, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// Every algorithm must surface injected R-tree storage failures as
// errors — never panic, hang, or return silently truncated results.
func TestJoinsSurfaceTreeStorageFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 400, w, 10)
	r := datagen.Uniform(rng.Int63(), 400, w, 10)

	algos := map[string]func(left, right *rtree.Tree) error{
		"HS-KDJ": func(left, right *rtree.Tree) error {
			_, err := HSKDJ(left, right, 200, Options{})
			return err
		},
		"B-KDJ": func(left, right *rtree.Tree) error {
			_, err := BKDJ(left, right, 200, Options{})
			return err
		},
		"AM-KDJ": func(left, right *rtree.Tree) error {
			_, err := AMKDJ(left, right, 200, Options{})
			return err
		},
		"SJ-SORT": func(left, right *rtree.Tree) error {
			_, err := SJSort(left, right, 200, 100, Options{})
			return err
		},
		// The incremental joins pull a bounded number of results: the
		// clean-run read budget is measured over the same pull count,
		// so every injected fault lands inside it.
		"HS-IDJ": func(left, right *rtree.Tree) error {
			it, err := HSIDJ(left, right, Options{})
			if err != nil {
				return err
			}
			for i := 0; i < 2000; i++ {
				if _, ok := it.Next(); !ok {
					return it.Err()
				}
			}
			return it.Err()
		},
		"AM-IDJ": func(left, right *rtree.Tree) error {
			it, err := AMIDJ(left, right, Options{BatchK: 500})
			if err != nil {
				return err
			}
			for i := 0; i < 2000; i++ {
				if _, ok := it.Next(); !ok {
					return it.Err()
				}
			}
			return it.Err()
		},
	}

	for name, run := range algos {
		// Learn how many store operations a clean run performs, then
		// inject faults at fractions of that budget.
		left := buildTree(t, l, 16)
		plain := storage.NewMemStore(4096)
		right := buildTreeOnStore(t, r, plain)
		baseline := plain.Stats().Reads
		if err := run(left, right); err != nil {
			t.Fatalf("%s: clean run failed: %v", name, err)
		}
		total := int(plain.Stats().Reads - baseline)
		if total < 2 {
			t.Fatalf("%s: clean run performed only %d reads", name, total)
		}
		for _, failAfter := range []int{0, total / 2, total - 1} {
			fault := storage.NewFaultStore(storage.NewMemStore(4096), -1)
			right := buildTreeOnStore(t, r, fault)
			fault.Arm(failAfter) // next failAfter operations succeed, then fail
			err := run(left, right)
			if err == nil {
				t.Fatalf("%s failAfter=%d/%d: fault not surfaced", name, failAfter, total)
			}
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("%s failAfter=%d: error %v does not wrap the injected fault",
					name, failAfter, err)
			}
		}
	}
}

// Queue spill faults (main-queue store) also surface cleanly.
func TestJoinsSurfaceQueueStorageFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 400, w, 10)
	r := datagen.Uniform(rng.Int63(), 400, w, 10)
	left := buildTree(t, l, 16)
	right := buildTree(t, r, 16)

	// DisableQueueModel concentrates spills into one overflow segment
	// so page I/O actually happens at this small scale (the model's
	// many narrow segments would otherwise sit in write buffers).
	opts := func(qs storage.Store) Options {
		return Options{QueueMemBytes: 1024, QueueStore: qs, DisableQueueModel: true}
	}
	// Sanity: the configuration does reach the store at all.
	plain := storage.NewMemStore(4096)
	if _, err := BKDJ(left, right, 300, opts(plain)); err != nil {
		t.Fatal(err)
	}
	if st := plain.Stats(); st.Writes == 0 {
		t.Fatal("test premise broken: no queue page writes happened")
	}

	for name, run := range map[string]func(qs storage.Store) error{
		"B-KDJ": func(qs storage.Store) error {
			_, err := BKDJ(left, right, 300, opts(qs))
			return err
		},
		"AM-KDJ": func(qs storage.Store) error {
			_, err := AMKDJ(left, right, 300, opts(qs))
			return err
		},
		"HS-KDJ": func(qs storage.Store) error {
			_, err := HSKDJ(left, right, 300, opts(qs))
			return err
		},
	} {
		qStore := storage.NewFaultStore(storage.NewMemStore(4096), 2)
		if err := run(qStore); !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("%s: queue fault not surfaced: %v", name, err)
		}
	}
}
