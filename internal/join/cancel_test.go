package join

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/geom"
)

// Every algorithm honors context cancellation: a pre-canceled context
// aborts the join with context.Canceled instead of running it.
func TestContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 600, w, 10)
	r := datagen.Uniform(rng.Int63(), 600, w, 10)
	left, right := buildTree(t, l, 8), buildTree(t, r, 8)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Context: ctx}
	// Large k so every algorithm must loop well past the poll interval.
	k := 5000

	for name, run := range map[string]func() error{
		"HS-KDJ": func() error { _, err := HSKDJ(left, right, k, opts); return err },
		"B-KDJ":  func() error { _, err := BKDJ(left, right, k, opts); return err },
		"AM-KDJ": func() error { _, err := AMKDJ(left, right, k, opts); return err },
		"SJ-SORT": func() error {
			_, err := SJSort(left, right, k, 1e9, opts)
			return err
		},
		"WithinJoin": func() error {
			return WithinJoin(left, right, 1e9, opts, func(Result) bool { return true })
		},
		"HS-IDJ": func() error {
			it, err := HSIDJ(left, right, opts)
			if err != nil {
				return err
			}
			for i := 0; i < k; i++ {
				if _, ok := it.Next(); !ok {
					return it.Err()
				}
			}
			return nil
		},
		"AM-IDJ": func() error {
			it, err := AMIDJ(left, right, opts)
			if err != nil {
				return err
			}
			for i := 0; i < k; i++ {
				if _, ok := it.Next(); !ok {
					return it.Err()
				}
			}
			return nil
		},
	} {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: got %v, want context.Canceled", name, err)
		}
	}

	// A live context does not interfere.
	live := Options{Context: context.Background()}
	got, err := BKDJ(left, right, 50, live)
	if err != nil || len(got) != 50 {
		t.Fatalf("live context: %d results, %v", len(got), err)
	}
}
