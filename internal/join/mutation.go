package join

// Test-only mutation hooks.
//
// The deterministic simulation harness (internal/simtest) must be able
// to prove that it would actually catch a pruning bug — a harness that
// never fails is indistinguishable from a harness that cannot fail.
// SetPruneMutation deliberately breaks the real-distance pruning
// filter of AM-KDJ's aggressive stage by scaling the qDmax cutoff:
// with a scale below 1, child pairs whose distance lies in
// (scale*qDmax, qDmax] are wrongly discarded. Because the compensation
// stage replays only the *unexamined* remainder of each bookkept pair
// (examined-and-rejected children are assumed correctly rejected),
// those pairs are unrecoverable and the join silently returns wrong
// k-nearest pairs — exactly the bug class the differential oracle
// exists to catch.
//
// The hook is process-global and not synchronized: it must only be
// flipped on the goroutine that runs the (serial) join, with no query
// in flight. It deliberately affects only the serial AM-KDJ path; the
// mutation-smoke self-test runs with Parallelism <= 1.

// mutantPruneScale scales the aggressive-stage real-distance cutoff.
// 1 (the default) is the correct algorithm.
var mutantPruneScale = 1.0

// SetPruneMutation installs the deliberate pruning bug used by the
// harness self-test and returns a func that restores correctness.
// Callers must restore before any concurrent or correct-path use.
func SetPruneMutation(scale float64) (restore func()) {
	prev := mutantPruneScale
	mutantPruneScale = scale
	return func() { mutantPruneScale = prev }
}

// mutatedCutoff applies the active pruning mutation to an
// aggressive-stage real-distance cutoff.
func mutatedCutoff(c float64) float64 {
	if mutantPruneScale == 1.0 {
		return c
	}
	return c * mutantPruneScale
}
