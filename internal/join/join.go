// Package join implements the distance join algorithms of the paper —
// the paper's contributions B-KDJ (§3), AM-KDJ (§4.1), and AM-IDJ
// (§4.2) — together with the evaluation baselines HS-KDJ / HS-IDJ
// (Hjaltason & Samet's uni-directional incremental distance join,
// SIGMOD '98) and SJ-SORT (R-tree spatial join with a within predicate
// followed by an external sort).
//
// All algorithms operate over two packed rtree.Tree indexes, share the
// hybrid memory/disk main queue of §4.4, and account their work
// (distance computations, queue insertions, node accesses) through a
// metrics.Collector, which is how the experiments of §5 are
// reproduced.
package join

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"distjoin/internal/estimate"
	"distjoin/internal/geom"
	"distjoin/internal/hybridq"
	"distjoin/internal/metrics"
	"distjoin/internal/obsrv"
	"distjoin/internal/rtree"
	"distjoin/internal/storage"
	"distjoin/internal/sweep"
	"distjoin/internal/trace"
)

// Result is one produced pair: the two object identifiers, their MBRs,
// and the distance between them. Results are produced in nondecreasing
// distance order.
type Result struct {
	LeftObj   int64
	RightObj  int64
	LeftRect  geom.Rect
	RightRect geom.Rect
	Dist      float64
}

// DistanceQueuePolicy selects which pairs feed the distance queue
// (paper §3.1 footnote 1).
type DistanceQueuePolicy int

const (
	// ObjectPairsOnly inserts only <object,object> real distances —
	// the paper's choice.
	ObjectPairsOnly DistanceQueuePolicy = iota
	// AllPairs additionally inserts the *maximum* distance of every
	// non-object pair, as Hjaltason & Samet's algorithms do. Exposed
	// for the A2 ablation and used by the HS baselines.
	AllPairs
)

// SweepPolicy controls the §3.2/§3.3 plane-sweep optimizations,
// exposed separately for the Figure 11 experiment and the A1 ablation.
type SweepPolicy struct {
	// SelectAxis enables sweeping-axis selection by sweeping index;
	// disabled, the x axis is always used.
	SelectAxis bool
	// SelectDirection enables direction selection from the projected
	// intervals; disabled, the sweep is always forward.
	SelectDirection bool
}

// OptimizedSweep is the default fully-enabled sweep policy.
var OptimizedSweep = SweepPolicy{SelectAxis: true, SelectDirection: true}

// FixedSweep disables both optimizations (fixed x axis, forward), the
// configuration Figure 11 compares against.
var FixedSweep = SweepPolicy{}

// Options configures a join execution. The zero value is usable: it
// means the paper's defaults (512 KB queue memory, optimized sweep,
// object-pairs-only distance queue, Eq. 3 initial estimate, aggressive
// correction).
type Options struct {
	// QueueMemBytes bounds the in-memory portion of the main queue
	// (default 512 KB, the paper's setting).
	QueueMemBytes int
	// QueueStore backs spilled queue segments (default: private
	// MemStore).
	QueueStore storage.Store
	// Metrics receives all counters; may be nil.
	Metrics *metrics.Collector
	// IOCost charges simulated time for page traffic (default: the
	// paper's disk, metrics.DefaultIOCostModel).
	IOCost *metrics.IOCostModel
	// Sweep selects the plane-sweep optimization policy (default
	// OptimizedSweep).
	Sweep *SweepPolicy
	// DistanceQueue selects the distance queue feed policy.
	DistanceQueue DistanceQueuePolicy
	// EDmax overrides the initial estimated maximum distance for the
	// adaptive multi-stage algorithms. Zero means "estimate with
	// Eq. 3". Ignored by HS-KDJ, B-KDJ, and SJ-SORT.
	EDmax float64
	// Correction selects how Eq. 4/5 corrections combine (AM-IDJ).
	Correction estimate.Mode
	// BatchK is AM-IDJ's stage growth: each stage targets BatchK more
	// results than already produced (default 1024).
	BatchK int
	// EDmaxForK, when non-nil, supplies the per-stage cutoff for
	// AM-IDJ given the stage target k, results produced so far, and
	// the last produced distance. Used by the Figure 15 "real Dmax"
	// variant. When nil the estimate model is used.
	EDmaxForK func(k, produced int, lastDist float64) float64
	// DisableQueueModel turns off the §4.4 model-based segment
	// boundaries of the hybrid main queue, leaving only overflow
	// splits (the A4 ablation).
	DisableQueueModel bool
	// Context, when non-nil, cancels a running join: the algorithms
	// poll it between queue operations and return ctx.Err(). Nil means
	// no cancellation.
	Context context.Context
	// SelfJoin adapts the join for joining a data set with itself:
	// identity pairs (same object on both sides) are suppressed and
	// each unordered pair is produced exactly once (left ID < right
	// ID). The k closest pairs of one set are then simply the join of
	// its tree with itself.
	SelfJoin bool
	// Estimator overrides the eDmax estimator used by the adaptive
	// multi-stage algorithms. Nil selects the paper's uniform model
	// (Eq. 3-5); NewHistogramEstimator builds the non-uniform
	// alternative of §6's future work.
	Estimator estimate.Estimator
	// Refiner, when non-nil, supplies the exact distance between two
	// objects given their IDs and MBRs. The joins then rank results by
	// exact distances using incremental refinement: MBR distances act
	// as lower bounds, an <object,object> pair is refined when it
	// first reaches the queue head, and is reinserted under its exact
	// distance. This is the correct generalization of the filter/
	// refinement split that §1 of the paper shows cannot be applied
	// naively to distance joins. The exact distance must never be
	// smaller than the MBR distance (true for any geometry contained
	// in its MBR); smaller return values are clamped. With
	// Parallelism > 1 the refiner may be invoked from multiple
	// goroutines concurrently and must be safe for concurrent use.
	Refiner func(leftObj, rightObj int64, leftRect, rightRect geom.Rect) float64
	// Parallelism selects the number of worker goroutines used for
	// node expansion and plane sweeping by BKDJ, AMKDJ, and AMIDJ:
	//
	//   0 or 1          — the paper-exact serial path (default);
	//   n > 1           — n expansion workers;
	//   AutoParallelism — runtime.GOMAXPROCS(0) workers.
	//
	// Parallel runs return exactly the same pairs in the same order
	// as serial runs (see the package-level determinism notes in
	// parallel.go); only the performance counters differ, because the
	// pruning cutoffs are frozen per expansion batch instead of
	// tightening after every single expansion. The other algorithms
	// (HS baselines, SJ-SORT, WithinJoin, AllNearest) ignore the
	// field and always run serially.
	Parallelism int
	// Trace, when non-nil, receives structured stage events for the
	// query: expansion rounds, aggressive-stage start/stop with the
	// active eDmax, compensation passes, hybrid-queue spills/reloads,
	// eDmax re-estimations, parallel batch barriers, and error
	// events. A nil tracer is a zero-cost no-op. Under
	// Parallelism > 1 worker events are buffered per task and merged
	// at the batch barriers in task order, so installing a tracer
	// never perturbs results.
	Trace *trace.Tracer
	// QueueFaultHook, when non-nil, is handed to the hybrid main queue
	// as hybridq.Config.FaultHook: it fires at every spill (heap split
	// moving pairs to disk) and reload (segment swap-in), and a non-nil
	// return latches the queue into its failed state. It exists for
	// failure-injection testing (internal/simtest and the join fault
	// tests) — unlike QueueStore-level faults it fires even when
	// segment pages never leave their write buffers, so every logical
	// disk transition of the queue is a schedulable fault point. Nil
	// costs nothing.
	QueueFaultHook func(op hybridq.FaultOp) error
	// Registry, when non-nil, receives process-level observability for
	// the query: a live in-flight entry (algorithm, k, stage, current
	// eDmax, queue depth, elapsed) updated at a bounded rate while the
	// query runs, and — on completion — the query's latency, its
	// metrics.Collector counters, and eDmax-estimator accuracy samples,
	// aggregated per algorithm into log-bucketed histograms. A nil
	// registry is a zero-alloc no-op on the hot path, the same
	// discipline as Trace. When Registry is set but Metrics is nil, a
	// private collector is allocated so the registry still receives
	// counters.
	Registry *obsrv.Registry
	// QueryID, when non-empty, names the query's Registry entry with a
	// caller-minted request identity (the serving layer's per-request
	// ID), so live-inspector rows correlate with response headers and
	// request logs. Ignored when Registry is nil.
	QueryID string
}

// AutoParallelism requests one expansion worker per available CPU
// (runtime.GOMAXPROCS(0)) without hard-coding a count.
const AutoParallelism = -1

// MaxParallelism caps the resolved worker count; beyond this the
// sequential merge phase dominates and extra workers only add memory.
const MaxParallelism = 64

// workers resolves Options.Parallelism to an effective worker count
// (>= 1, where 1 means the serial path).
func (o Options) workers() int {
	p := o.Parallelism
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	if p > MaxParallelism {
		p = MaxParallelism
	}
	return p
}

// DefaultQueueMemBytes is the paper's main-queue memory setting.
const DefaultQueueMemBytes = 512 * 1024

// DefaultBatchK is AM-IDJ's default stage size.
const DefaultBatchK = 1024

// context carries the resolved execution state shared by the
// algorithms.
type execContext struct {
	left, right *rtree.Tree
	mc          *metrics.Collector
	ioCost      metrics.IOCostModel
	sweepPolicy SweepPolicy
	dqPolicy    DistanceQueuePolicy
	model       estimate.Model
	est         estimate.Estimator
	queue       *hybridq.Queue
	refiner     func(leftObj, rightObj int64, leftRect, rightRect geom.Rect) float64
	opts        Options
	cancelTick  int
	ex          expander       // serial expansion state (scratch + main collector)
	par         *parallelState // non-nil when Options.Parallelism resolves to > 1
	tr          *trace.Tracer  // optional event sink (nil = no-op)
	rq          *obsrv.Query   // live registry handle (nil = no-op)
	algo        string         // trace label: running algorithm
	stage       string         // trace label: current stage
}

// expander carries the per-goroutine state a node expansion needs: the
// struct-of-arrays decode buffers, the sweep scratch, and the metrics
// collector the work is accounted to. The execContext owns one for the
// serial path; the parallel engine gives each worker goroutine its
// own, backed by a metrics shard, so expansions never share mutable
// state. All scratch is reused across expansions, so a warm expander
// expands nodes without allocating.
type expander struct {
	c          *execContext
	mc         *metrics.Collector
	soaL, soaR rtree.NodeSoA   // reused SoA decode buffers for sideSoA
	sorter     sweep.SoASorter // reused sweep-order sorter
	run        sweepRun        // reused sweep state, handed out by expansion
	distBuf    []float64       // reused batch distance kernel output
}

// distScratch returns a length-n float64 scratch slice, growing the
// expander's reusable buffer when needed. The slice is only valid
// until the next distScratch call on this expander.
func (e *expander) distScratch(n int) []float64 {
	if cap(e.distBuf) < n {
		e.distBuf = make([]float64, n)
	}
	return e.distBuf[:n]
}

// newContext validates inputs and builds the shared state.
func newContext(left, right *rtree.Tree, opts Options) (*execContext, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("join: both trees are required")
	}
	mem := opts.QueueMemBytes
	if mem <= 0 {
		mem = DefaultQueueMemBytes
	}
	cost := metrics.DefaultIOCostModel()
	if opts.IOCost != nil {
		cost = *opts.IOCost
	}
	sp := OptimizedSweep
	if opts.Sweep != nil {
		sp = *opts.Sweep
	}
	model, err := estimate.NewModel(left.Bounds(), max(left.Size(), 1),
		right.Bounds(), max(right.Size(), 1))
	if err != nil {
		return nil, err
	}
	// When a registry is attached but no collector was supplied, run
	// with a private one so the registry still aggregates counters.
	if opts.Registry != nil && opts.Metrics == nil {
		opts.Metrics = &metrics.Collector{}
	}
	ctx := &execContext{
		left:        left,
		right:       right,
		mc:          opts.Metrics,
		ioCost:      cost,
		sweepPolicy: sp,
		dqPolicy:    opts.DistanceQueue,
		model:       model,
		est:         opts.Estimator,
		refiner:     opts.Refiner,
		opts:        opts,
		tr:          opts.Trace,
	}
	if ctx.est == nil {
		ctx.est = model
	}
	ctx.ex = expander{c: ctx, mc: opts.Metrics}
	if w := opts.workers(); w > 1 {
		ctx.par = newParallelState(ctx, w)
	}
	rho := model.Rho()
	if opts.DisableQueueModel {
		rho = 0
	}
	ctx.queue = hybridq.New(hybridq.Config{
		MemBytes: mem,
		Rho:      rho,
		Store:    opts.QueueStore,
		Metrics:  opts.Metrics,
		IOCost:   cost,
		// Workers never touch the main queue directly — all pushes
		// and pops happen on the coordinating goroutine between
		// expansion barriers — but parallel runs still enable the
		// queue's internal lock as defense in depth.
		Concurrent: ctx.par != nil,
		Trace:      opts.Trace,
		FaultHook:  opts.QueueFaultHook,
	})
	return ctx, nil
}

// Node/object references. Node refs embed the node's level in the high
// bits of the page ID so the algorithms can decide expansion order
// without extra node reads; object refs carry the object ID directly
// (which must therefore fit in 63 bits).
const refLevelShift = 48

func nodeRef(page storage.PageID, level int) uint64 {
	return uint64(level)<<refLevelShift | uint64(page)
}

func refPage(ref uint64) storage.PageID {
	return storage.PageID(ref & (1<<refLevelShift - 1))
}

func refLevel(ref uint64) int {
	return int(ref >> refLevelShift)
}

// rootPair returns the initial <R.root, S.root> queue element.
func (c *execContext) rootPair() hybridq.Pair {
	return hybridq.Pair{
		Dist:      c.left.Bounds().MinDist(c.right.Bounds()),
		Left:      nodeRef(c.left.Root(), c.left.Height()-1),
		Right:     nodeRef(c.right.Root(), c.right.Height()-1),
		LeftRect:  c.left.Bounds(),
		RightRect: c.right.Bounds(),
	}
}

// push enqueues p on the main queue, counting the insertion, and
// reports whether the pair was accepted. Under SelfJoin semantics,
// object pairs that are identities or mirror duplicates are rejected
// here — centrally, so every algorithm inherits the filter. (Node
// pairs are never filtered: the mirror node pair produces the mirror
// object pairs, which this filter dedupes.)
func (c *execContext) push(p hybridq.Pair) bool {
	if c.opts.SelfJoin && p.IsResult() && p.Left >= p.Right {
		return false
	}
	c.queue.Push(p)
	c.mc.AddMainQueueInsert(1)
	c.mc.ObserveQueueLen(c.queue.Len())
	return true
}

// refine replaces an <object,object> pair's MBR lower-bound distance
// with the refiner's exact distance (clamped to be no smaller) and
// marks it refined. The call is counted as a refinement computation.
func (c *execContext) refine(p hybridq.Pair) hybridq.Pair {
	return c.ex.refine(p)
}

// needsRefinement reports whether a dequeued result pair must go back
// through the refiner before it may be emitted.
func (c *execContext) needsRefinement(p hybridq.Pair) bool {
	return c.refiner != nil && !p.Refined
}

// result converts an <object,object> pair.
func pairResult(p hybridq.Pair) Result {
	return Result{
		LeftObj:   int64(p.Left),
		RightObj:  int64(p.Right),
		LeftRect:  p.LeftRect,
		RightRect: p.RightRect,
		Dist:      p.Dist,
	}
}

// sideSoA materializes the expandable entries of one pair side into
// dst (one of the expander's reusable SoA buffers): the node's
// children for node sides (reading the node and recording the access),
// or the object itself as a singleton. childIsObj reports whether the
// materialized entries are objects.
func (e *expander) sideSoA(tree *rtree.Tree, ref uint64, isObj bool, rect geom.Rect, dst *rtree.NodeSoA) (childIsObj bool, err error) {
	if isObj {
		dst.SetSingle(rect, ref)
		return true, nil
	}
	if err := tree.ReadNodeSoA(refPage(ref), dst, e.mc); err != nil {
		return false, err
	}
	if !dst.IsLeaf() {
		// Stamp child levels into the refs.
		lvl := dst.Level - 1
		for i, r := range dst.Refs {
			dst.Refs[i] = nodeRef(storage.PageID(r), lvl)
		}
	}
	return dst.IsLeaf(), nil
}

// maxDist computes the maximum distance between two rects, counted as
// a real distance computation.
func (e *expander) maxDist(a, b geom.Rect) float64 {
	e.mc.AddRealDist(1)
	return a.MaxDist(b)
}

// minDist computes the minimum distance, counted.
func (e *expander) minDist(a, b geom.Rect) float64 {
	e.mc.AddRealDist(1)
	return a.MinDist(b)
}

// refine replaces an <object,object> pair's MBR lower-bound distance
// with the refiner's exact distance (clamped to be no smaller) and
// marks it refined, accounting the call to this expander's collector.
func (e *expander) refine(p hybridq.Pair) hybridq.Pair {
	d := e.c.refiner(int64(p.Left), int64(p.Right), p.LeftRect, p.RightRect)
	e.mc.AddRefinement(1)
	if d > p.Dist {
		p.Dist = d
	}
	p.Refined = true
	return p
}

// pairLevel maps one side of a queue pair to the level recorded in
// trace events: the node level for node sides, -1 for object sides.
func pairLevel(ref uint64, isObj bool) int {
	if isObj {
		return -1
	}
	return refLevel(ref)
}

// expansionEvent builds the trace event for one node-pair expansion:
// the pair's distance and levels, the cutoff active when it was
// expanded, and how many children the expansion enqueued. It is a free
// function so the parallel engine can build events inside worker tasks
// (buffered per task, emitted at the barrier) without touching the
// shared tracer.
func expansionEvent(algo, stage string, p hybridq.Pair, eDmax float64, children int64) trace.Event {
	return trace.Event{
		Kind:       trace.KindExpansion,
		Algo:       algo,
		Stage:      stage,
		EDmax:      eDmax,
		Dist:       p.Dist,
		Count:      children,
		LeftLevel:  pairLevel(p.Left, p.LeftObj),
		RightLevel: pairLevel(p.Right, p.RightObj),
	}
}

// traceExpansion emits an expansion event for p on the serial path.
func (c *execContext) traceExpansion(p hybridq.Pair, eDmax float64, children int64) {
	if !c.tr.Enabled() {
		return
	}
	c.tr.Emit(expansionEvent(c.algo, c.stage, p, eDmax, children))
}

// traceStage emits a stage_start or stage_end event carrying the
// currently active eDmax and a result/queue count, and mirrors the
// stage transition to the live registry entry.
func (c *execContext) traceStage(kind trace.Kind, stage string, eDmax float64, count int64) {
	c.stage = stage
	c.rq.SetStage(stage)
	c.rq.SetEDmax(eDmax)
	if !c.tr.Enabled() {
		return
	}
	c.tr.Emit(trace.Event{Kind: kind, Algo: c.algo, Stage: stage, EDmax: eDmax, Count: count})
}

// traceEDmax emits an edmax_update event when the cutoff strictly
// tightens (old > new), recording both values, and mirrors the new
// cutoff to the live registry entry.
func (c *execContext) traceEDmax(old, new float64) {
	if !(new < old) {
		return
	}
	c.rq.SetEDmax(new)
	if !c.tr.Enabled() {
		return
	}
	c.tr.Emit(trace.Event{Kind: trace.KindEDmaxUpdate, Algo: c.algo, Stage: c.stage, EDmax: new, Dist: old})
}

// traceError records err (if non-nil) as an error event and returns it
// unchanged, so call sites can wrap their returns.
func (c *execContext) traceError(err error) error {
	if err != nil && c.tr.Enabled() {
		c.tr.Emit(trace.Event{Kind: trace.KindError, Algo: c.algo, Stage: c.stage, Err: err.Error()})
	}
	return err
}

// cancelEvery bounds how many pops happen between cancellation polls.
const cancelEvery = 256

// progressEvery bounds how many pops happen between live-registry
// queue-depth samples. A multiple/divisor relationship with
// cancelEvery is not required; the two hooks tick independently off
// the same counter.
const progressEvery = 64

// cancelled polls the configured context at a bounded rate, returning
// its error once it fires. It doubles as the live-progress heartbeat:
// every progressEvery calls it samples the main queue's depth into
// the registry entry. With neither a context nor a registry attached
// it stays a branch-and-increment no-op.
func (c *execContext) cancelled() error {
	if c.opts.Context == nil && c.rq == nil {
		return nil
	}
	c.cancelTick++
	if c.rq != nil && c.cancelTick%progressEvery == 0 {
		mem, disk, segs := c.queue.Depth()
		c.rq.SetQueueDepth(mem, disk, segs)
	}
	if c.opts.Context == nil || c.cancelTick%cancelEvery != 0 {
		return nil
	}
	return c.opts.Context.Err()
}

// beginQuery registers the query with the configured registry (a nil
// registry yields a nil handle; every handle method is a nil-safe
// no-op). Callers pair it with a deferred endQuery *registered before*
// mc.Start's deferred Finish, so Finish runs first and the collector's
// WallTime is populated when the registry folds it in.
func (c *execContext) beginQuery(k int) {
	c.rq = c.opts.Registry.BeginNamed(c.algo, k, c.opts.QueryID)
}

// endQuery completes the registry entry, folding in the final counters
// and the error outcome. Idempotent: safe to call from both an
// iterator's terminal paths and its Close.
func (c *execContext) endQuery(err error) {
	c.rq.End(c.mc, err)
}

// recordEstimate reports one eDmax-estimator accuracy sample — the
// estimated cutoff against the realized k-th distance — to the
// registry, and remembers the correction mode on the query's collector
// so completion telemetry can report which equation last steered the
// cutoff. Both sinks are nil-safe no-ops, and mode is always one of
// the engine's constant strings, so the disabled path stays
// allocation-free.
func (c *execContext) recordEstimate(estimated, actual float64, mode string) {
	c.mc.SetEstimateMode(mode)
	c.rq.RecordEstimate(estimated, actual, mode)
}

// exhaustiveDist is a conservative upper bound on any pair distance in
// the join, used to detect AM-IDJ exhaustion.
func (c *execContext) exhaustiveDist() float64 {
	d := c.left.Bounds().MaxDist(c.right.Bounds())
	if d == 0 {
		return math.SmallestNonzeroFloat64
	}
	return d
}

// DefaultHistogramGrid is the grid dimension NewHistogramEstimator
// uses when given a non-positive value.
const DefaultHistogramGrid = 32

// NewHistogramEstimator builds the non-uniform eDmax estimator of the
// paper's §6 future work from the leaf contents of both trees: a
// g x g grid histogram over the joint bounds. Building it reads every
// leaf once (outside any query's measured node accesses), so construct
// it once per tree pair and reuse it across queries via
// Options.Estimator.
func NewHistogramEstimator(left, right *rtree.Tree, g int) (*estimate.Histogram, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("join: both trees are required")
	}
	if g <= 0 {
		g = DefaultHistogramGrid
	}
	h, err := estimate.NewHistogram(left.Bounds().Union(right.Bounds()), g)
	if err != nil {
		return nil, err
	}
	if err := left.Search(left.Bounds(), nil, func(it rtree.Item) bool {
		h.AddLeft(it.Rect)
		return true
	}); err != nil {
		return nil, err
	}
	if err := right.Search(right.Bounds(), nil, func(it rtree.Item) bool {
		h.AddRight(it.Rect)
		return true
	}); err != nil {
		return nil, err
	}
	return h, nil
}
