package join

import (
	"distjoin/internal/geom"
	"distjoin/internal/hybridq"
	"distjoin/internal/rtree"
	"distjoin/internal/sweep"
)

// anchorRange records, for one anchor of a plane sweep, the half-open
// index range of candidates in the opposite sorted list that were
// examined (axis gap within the stage's cutoff). AM-KDJ's compensation
// stage resumes each anchor at .to; AM-IDJ's band re-examination
// revisits [.from,.to) under a grown cutoff.
type anchorRange struct {
	from, to int32
}

// sweepRanges is the per-expansion compensation bookkeeping: one range
// per sorted child of each side (lines 19/21 of Algorithm 2).
type sweepRanges struct {
	l, r []anchorRange
}

// sweepRun executes one bidirectional node expansion by plane sweep
// (the PlaneSweep / AggressivePlaneSweep / CompensatePlaneSweep
// procedures of Algorithms 1–3, unified) over the struct-of-arrays
// node layout: both sides are rtree.NodeSoA columns, so the merge
// loop, the axis-gap scans, and the distance kernels all read
// contiguous float64 slices.
//
// L and R must already be sorted per plan. The merge loop repeatedly
// takes the entry with the minimum sweep key as the anchor and scans
// the not-yet-anchored prefix-remainder of the opposite list in key
// order, breaking at the first candidate whose axis gap exceeds the
// axis cutoff. For each surviving candidate the real distance is
// computed (and counted) and emit is invoked; emit applies the
// real-distance filter and the queueing.
//
// The axis cutoff comes in two forms with different scan strategies:
//
//   - fixCutoff(c): the cutoff is a constant for the whole sweep
//     (aggressive stages, AM-IDJ stages, within-joins). The candidate
//     window of an anchor is then independent of emission, so the scan
//     finds the whole window first and computes its distances with one
//     geom.MinDistBatch call over the coordinate columns.
//   - axisCutoff (func): the cutoff tightens as emissions feed the
//     distance queue (B-KDJ, AM-KDJ compensation). The scan stays
//     interleaved — cutoff, distance, emit per candidate — because the
//     window depends on what was already emitted.
//
// Both paths count axis and real distance computations exactly as the
// historical per-entry engine did and emit in the same candidate
// order, which is what keeps results and counters byte-identical.
//
// Compensation: when prev is non-nil the anchor scan skips the ranges
// examined by the earlier stage; when reexamine is additionally
// non-nil those ranges are revisited through it first (the AM-IDJ band
// case, where the real-distance cutoff has grown between stages).
type sweepRun struct {
	e          *expander
	L, R       *rtree.NodeSoA
	lObj, rObj bool // whether L / R entries are objects
	plan       sweep.Plan
	axisCutoff func() float64 // dynamic cutoff; nil selects the fixed batch path
	cutoff     float64        // fixed axis cutoff, valid when axisCutoff is nil
	emit       func(le, re rtree.NodeEntry, d float64)
	prev       *sweepRanges
	reexamine  func(le, re rtree.NodeEntry, d float64)
	record     bool
	out        sweepRanges
}

// fixCutoff declares the axis cutoff constant for the whole sweep,
// selecting the batched candidate scan. Stages whose cutoff tightens
// mid-sweep must assign axisCutoff instead.
func (s *sweepRun) fixCutoff(c float64) {
	s.axisCutoff = nil
	s.cutoff = c
}

// run executes the sweep. When record is set, out holds the examined
// ranges afterwards.
func (s *sweepRun) run() {
	if s.record {
		s.out.l = makeEmptyRanges(s.L.Len(), s.R.Len())
		s.out.r = makeEmptyRanges(s.R.Len(), s.L.Len())
	}
	i, j := 0, 0
	nl, nr := s.L.Len(), s.R.Len()
	for i < nl && j < nr {
		kl := soaKey(s.L, i, s.plan)
		kr := soaKey(s.R, j, s.plan)
		if kl <= kr {
			s.sweepAnchor(true, i, j)
			i++
		} else {
			s.sweepAnchor(false, j, i)
			j++
		}
	}
}

// soaKey is sweep.Key read straight from the coordinate columns.
func soaKey(n *rtree.NodeSoA, i int, p sweep.Plan) float64 {
	if p.Dir == sweep.Forward {
		return n.Lo(p.Axis)[i]
	}
	return -n.Hi(p.Axis)[i]
}

// makeEmptyRanges initializes per-anchor ranges to empty-at-end, the
// correct value for entries that never become anchors (their pairs are
// all covered from the opposite side). The slices are freshly
// allocated on purpose: recorded ranges escape into long-lived
// compensation bookkeeping (compInfo), so they must not alias any
// reused scratch.
func makeEmptyRanges(n, otherLen int) []anchorRange {
	rs := make([]anchorRange, n)
	for i := range rs {
		rs[i] = anchorRange{from: int32(otherLen), to: int32(otherLen)}
	}
	return rs
}

// sweepAnchor processes one anchor: the entry at index ai on the given
// side, with oj the current consumption point of the opposite list.
func (s *sweepRun) sweepAnchor(fromL bool, ai, oj int) {
	var a, o *rtree.NodeSoA
	if fromL {
		a, o = s.L, s.R
	} else {
		a, o = s.R, s.L
	}
	anchor := a.Entry(ai)

	start := oj
	recFrom := oj
	if s.prev != nil {
		var pr anchorRange
		if fromL {
			pr = s.prev.l[ai]
		} else {
			pr = s.prev.r[ai]
		}
		if s.reexamine != nil {
			// Band mode: the earlier stage examined [pr.from, pr.to)
			// under a smaller real-distance cutoff; revisit them so
			// pairs in the grown band are recovered.
			s.scanBand(fromL, anchor, o, int(pr.from), int(pr.to))
		}
		if int(pr.to) > start {
			start = int(pr.to)
		}
		if int(pr.from) < recFrom {
			recFrom = int(pr.from)
		}
	}

	// The axis-gap scan reads one coordinate column: the candidates'
	// lower bounds against the anchor's upper bound for forward sweeps
	// (and mirrored for backward), exactly sweep.AxisGap unrolled.
	axis := s.plan.Axis
	forward := s.plan.Dir == sweep.Forward
	var base float64
	var col []float64
	if forward {
		base = anchor.Rect.Max(axis)
		col = o.Lo(axis)
	} else {
		base = anchor.Rect.Min(axis)
		col = o.Hi(axis)
	}
	n := o.Len()

	stop := start
	if s.axisCutoff == nil {
		// Fixed cutoff: find the whole candidate window first, then
		// compute its distances with one batch kernel call.
		cut := s.cutoff
		scanned := 0
		if forward {
			for m := start; m < n; m++ {
				scanned++
				g := col[m] - base
				if g < 0 {
					g = 0
				}
				if g > cut {
					break
				}
				stop = m + 1
			}
		} else {
			for m := start; m < n; m++ {
				scanned++
				g := base - col[m]
				if g < 0 {
					g = 0
				}
				if g > cut {
					break
				}
				stop = m + 1
			}
		}
		s.e.mc.AddAxisDist(int64(scanned))
		if stop > start {
			dst := s.e.distScratch(stop - start)
			geom.MinDistBatch(dst, anchor.Rect,
				o.MinX[start:stop], o.MinY[start:stop],
				o.MaxX[start:stop], o.MaxY[start:stop])
			s.e.mc.AddRealDist(int64(stop - start))
			for m := start; m < stop; m++ {
				le, re := orientEntries(fromL, anchor, o.Entry(m))
				s.emit(le, re, dst[m-start])
			}
		}
	} else {
		// Dynamic cutoff: emissions tighten the window mid-scan, so
		// cutoff, distance, and emit stay interleaved per candidate.
		for m := start; m < n; m++ {
			s.e.mc.AddAxisDist(1)
			var g float64
			if forward {
				g = col[m] - base
			} else {
				g = base - col[m]
			}
			if g < 0 {
				g = 0
			}
			if g > s.axisCutoff() {
				break
			}
			le, re := orientEntries(fromL, anchor, o.Entry(m))
			s.emit(le, re, s.e.minDist(le.Rect, re.Rect))
			stop = m + 1
		}
	}

	if s.record {
		r := anchorRange{from: int32(recFrom), to: int32(stop)}
		if r.to < r.from {
			r.to = r.from
		}
		if fromL {
			s.out.l[ai] = r
		} else {
			s.out.r[ai] = r
		}
	}
}

// scanBand revisits the previously examined candidate range
// [from, to) of one anchor through reexamine, batching the distance
// computations when the cutoff is fixed (the only mode band
// re-examination runs under).
func (s *sweepRun) scanBand(fromL bool, anchor rtree.NodeEntry, o *rtree.NodeSoA, from, to int) {
	if to <= from {
		return
	}
	if s.axisCutoff == nil {
		dst := s.e.distScratch(to - from)
		geom.MinDistBatch(dst, anchor.Rect,
			o.MinX[from:to], o.MinY[from:to], o.MaxX[from:to], o.MaxY[from:to])
		s.e.mc.AddRealDist(int64(to - from))
		for m := from; m < to; m++ {
			le, re := orientEntries(fromL, anchor, o.Entry(m))
			s.reexamine(le, re, dst[m-from])
		}
		return
	}
	for m := from; m < to; m++ {
		le, re := orientEntries(fromL, anchor, o.Entry(m))
		s.reexamine(le, re, s.e.minDist(le.Rect, re.Rect))
	}
}

// orientEntries returns the pair in (left, right) orientation given
// which side the anchor came from.
func orientEntries(anchorFromL bool, anchor, other rtree.NodeEntry) (le, re rtree.NodeEntry) {
	if anchorFromL {
		return anchor, other
	}
	return other, anchor
}

// childPair builds the queue element for a candidate child pair.
func (s *sweepRun) childPair(le, re rtree.NodeEntry, d float64) hybridq.Pair {
	return hybridq.Pair{
		Dist:      d,
		LeftObj:   s.lObj,
		RightObj:  s.rObj,
		Left:      le.Ref,
		Right:     re.Ref,
		LeftRect:  le.Rect,
		RightRect: re.Rect,
	}
}

// expansion materializes both sides of a pair for sweeping: the child
// entries in SoA form, their kind, and the sweep plan (per-pair axis
// and direction selection of §3.2/§3.3, or the fixed policy for the
// ablation). The returned run is the expander's reusable scratch: it
// is valid until the expander's next expansion.
func (e *expander) expansion(p hybridq.Pair, cutoff float64) (*sweepRun, error) {
	return e.expansionWithPlan(p, e.c.choosePlan(p, cutoff))
}

// expansionWithPlan is expansion with a predetermined plan, used by the
// compensation stage to reproduce the stage-one sweep order exactly.
func (e *expander) expansionWithPlan(p hybridq.Pair, plan sweep.Plan) (*sweepRun, error) {
	c := e.c
	lObj, err := e.sideSoA(c.left, p.Left, p.LeftObj, p.LeftRect, &e.soaL)
	if err != nil {
		return nil, err
	}
	rObj, err := e.sideSoA(c.right, p.Right, p.RightObj, p.RightRect, &e.soaR)
	if err != nil {
		return nil, err
	}
	e.sorter.Sort(&e.soaL, plan)
	e.sorter.Sort(&e.soaR, plan)
	r := &e.run
	*r = sweepRun{e: e, L: &e.soaL, R: &e.soaR, lObj: lObj, rObj: rObj, plan: plan}
	return r, nil
}

// choosePlan applies the sweep policy.
func (c *execContext) choosePlan(p hybridq.Pair, cutoff float64) sweep.Plan {
	switch {
	case c.sweepPolicy.SelectAxis && c.sweepPolicy.SelectDirection:
		return sweep.Choose(p.LeftRect, p.RightRect, cutoff)
	case c.sweepPolicy.SelectAxis:
		plan := sweep.Choose(p.LeftRect, p.RightRect, cutoff)
		plan.Dir = sweep.Forward
		return plan
	case c.sweepPolicy.SelectDirection:
		return sweep.Plan{Axis: 0, Dir: sweep.ChooseDirection(p.LeftRect, p.RightRect, 0)}
	default:
		return sweep.Plan{Axis: 0, Dir: sweep.Forward}
	}
}
