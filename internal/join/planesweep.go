package join

import (
	"distjoin/internal/hybridq"
	"distjoin/internal/rtree"
	"distjoin/internal/sweep"
)

// anchorRange records, for one anchor of a plane sweep, the half-open
// index range of candidates in the opposite sorted list that were
// examined (axis gap within the stage's cutoff). AM-KDJ's compensation
// stage resumes each anchor at .to; AM-IDJ's band re-examination
// revisits [.from,.to) under a grown cutoff.
type anchorRange struct {
	from, to int32
}

// sweepRanges is the per-expansion compensation bookkeeping: one range
// per sorted child of each side (lines 19/21 of Algorithm 2).
type sweepRanges struct {
	l, r []anchorRange
}

// sweepRun executes one bidirectional node expansion by plane sweep
// (the PlaneSweep / AggressivePlaneSweep / CompensatePlaneSweep
// procedures of Algorithms 1–3, unified).
//
// L and R must already be sorted per plan. The merge loop repeatedly
// takes the entry with the minimum sweep key as the anchor and scans
// the not-yet-anchored prefix-remainder of the opposite list in key
// order, breaking at the first candidate whose axis gap exceeds
// axisCutoff(). For each surviving candidate the real distance is
// computed (and counted) and emit is invoked; emit applies the
// real-distance filter and the queueing.
//
// Compensation: when prev is non-nil the anchor scan skips the ranges
// examined by the earlier stage; when reexamine is additionally
// non-nil those ranges are revisited through it first (the AM-IDJ band
// case, where the real-distance cutoff has grown between stages).
type sweepRun struct {
	e          *expander
	L, R       []rtree.NodeEntry
	lObj, rObj bool // whether L / R entries are objects
	plan       sweep.Plan
	axisCutoff func() float64
	emit       func(le, re rtree.NodeEntry, d float64)
	prev       *sweepRanges
	reexamine  func(le, re rtree.NodeEntry, d float64)
	record     bool
	out        sweepRanges
}

// run executes the sweep. When record is set, out holds the examined
// ranges afterwards.
func (s *sweepRun) run() {
	if s.record {
		s.out.l = makeEmptyRanges(len(s.L), len(s.R))
		s.out.r = makeEmptyRanges(len(s.R), len(s.L))
	}
	i, j := 0, 0
	for i < len(s.L) && j < len(s.R) {
		kl := sweep.Key(s.L[i].Rect, s.plan.Axis, s.plan.Dir)
		kr := sweep.Key(s.R[j].Rect, s.plan.Axis, s.plan.Dir)
		if kl <= kr {
			s.sweepAnchor(true, i, j)
			i++
		} else {
			s.sweepAnchor(false, j, i)
			j++
		}
	}
}

// makeEmptyRanges initializes per-anchor ranges to empty-at-end, the
// correct value for entries that never become anchors (their pairs are
// all covered from the opposite side).
func makeEmptyRanges(n, otherLen int) []anchorRange {
	rs := make([]anchorRange, n)
	for i := range rs {
		rs[i] = anchorRange{from: int32(otherLen), to: int32(otherLen)}
	}
	return rs
}

// sweepAnchor processes one anchor: the entry at index ai on the given
// side, with oj the current consumption point of the opposite list.
func (s *sweepRun) sweepAnchor(fromL bool, ai, oj int) {
	var anchor rtree.NodeEntry
	var others []rtree.NodeEntry
	if fromL {
		anchor = s.L[ai]
		others = s.R
	} else {
		anchor = s.R[ai]
		others = s.L
	}

	start := oj
	recFrom := oj
	if s.prev != nil {
		var pr anchorRange
		if fromL {
			pr = s.prev.l[ai]
		} else {
			pr = s.prev.r[ai]
		}
		if s.reexamine != nil {
			// Band mode: the earlier stage examined [pr.from, pr.to)
			// under a smaller real-distance cutoff; revisit them so
			// pairs in the grown band are recovered.
			for m := pr.from; m < pr.to; m++ {
				s.dispatch(fromL, anchor, others[m], s.reexamine)
			}
		}
		if int(pr.to) > start {
			start = int(pr.to)
		}
		if int(pr.from) < recFrom {
			recFrom = int(pr.from)
		}
	}

	stop := start
	for m := start; m < len(others); m++ {
		s.e.mc.AddAxisDist(1)
		if sweep.AxisGap(anchor.Rect, others[m].Rect, s.plan.Axis, s.plan.Dir) > s.axisCutoff() {
			break
		}
		s.dispatch(fromL, anchor, others[m], s.emit)
		stop = m + 1
	}

	if s.record {
		r := anchorRange{from: int32(recFrom), to: int32(stop)}
		if r.to < r.from {
			r.to = r.from
		}
		if fromL {
			s.out.l[ai] = r
		} else {
			s.out.r[ai] = r
		}
	}
}

// dispatch computes the (counted) real distance of the candidate pair
// and forwards it, in (left, right) orientation, to fn.
func (s *sweepRun) dispatch(anchorFromL bool, anchor, other rtree.NodeEntry, fn func(le, re rtree.NodeEntry, d float64)) {
	var le, re rtree.NodeEntry
	if anchorFromL {
		le, re = anchor, other
	} else {
		le, re = other, anchor
	}
	d := s.e.minDist(le.Rect, re.Rect)
	fn(le, re, d)
}

// childPair builds the queue element for a candidate child pair.
func (s *sweepRun) childPair(le, re rtree.NodeEntry, d float64) hybridq.Pair {
	return hybridq.Pair{
		Dist:      d,
		LeftObj:   s.lObj,
		RightObj:  s.rObj,
		Left:      le.Ref,
		Right:     re.Ref,
		LeftRect:  le.Rect,
		RightRect: re.Rect,
	}
}

// expansion materializes both sides of a pair for sweeping: the child
// entries, their kind, and the sweep plan (per-pair axis and direction
// selection of §3.2/§3.3, or the fixed policy for the ablation).
func (e *expander) expansion(p hybridq.Pair, cutoff float64) (*sweepRun, error) {
	c := e.c
	L, lObj, err := e.sideEntries(c.left, p.Left, p.LeftObj, p.LeftRect)
	if err != nil {
		return nil, err
	}
	R, rObj, err := e.sideEntries(c.right, p.Right, p.RightObj, p.RightRect)
	if err != nil {
		return nil, err
	}
	plan := c.choosePlan(p, cutoff)
	sweep.SortEntries(L, plan)
	sweep.SortEntries(R, plan)
	return &sweepRun{e: e, L: L, R: R, lObj: lObj, rObj: rObj, plan: plan}, nil
}

// expansionWithPlan is expansion with a predetermined plan, used by the
// compensation stage to reproduce the stage-one sweep order exactly.
func (e *expander) expansionWithPlan(p hybridq.Pair, plan sweep.Plan) (*sweepRun, error) {
	c := e.c
	L, lObj, err := e.sideEntries(c.left, p.Left, p.LeftObj, p.LeftRect)
	if err != nil {
		return nil, err
	}
	R, rObj, err := e.sideEntries(c.right, p.Right, p.RightObj, p.RightRect)
	if err != nil {
		return nil, err
	}
	sweep.SortEntries(L, plan)
	sweep.SortEntries(R, plan)
	return &sweepRun{e: e, L: L, R: R, lObj: lObj, rObj: rObj, plan: plan}, nil
}

// choosePlan applies the sweep policy.
func (c *execContext) choosePlan(p hybridq.Pair, cutoff float64) sweep.Plan {
	switch {
	case c.sweepPolicy.SelectAxis && c.sweepPolicy.SelectDirection:
		return sweep.Choose(p.LeftRect, p.RightRect, cutoff)
	case c.sweepPolicy.SelectAxis:
		plan := sweep.Choose(p.LeftRect, p.RightRect, cutoff)
		plan.Dir = sweep.Forward
		return plan
	case c.sweepPolicy.SelectDirection:
		return sweep.Plan{Axis: 0, Dir: sweep.ChooseDirection(p.LeftRect, p.RightRect, 0)}
	default:
		return sweep.Plan{Axis: 0, Dir: sweep.Forward}
	}
}
