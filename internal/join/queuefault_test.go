package join

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/geom"
	"distjoin/internal/hybridq"
	"distjoin/internal/rtree"
)

// queueFaultTrees builds a join whose main queue is forced onto disk:
// enough pairs and a tiny QueueMemBytes so both spill and reload
// transitions happen during a k-distance join.
func queueFaultTrees(t *testing.T) (*rtree.Tree, *rtree.Tree) {
	t.Helper()
	rng := rand.New(rand.NewSource(4242))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 400, w, 10)
	r := datagen.Uniform(rng.Int63(), 400, w, 10)
	return buildTree(t, l, 16), buildTree(t, r, 16)
}

// tightQueueOpts forces hybrid-queue disk traffic.
func tightQueueOpts(hook func(hybridq.FaultOp) error) Options {
	return Options{QueueMemBytes: 16 * hybridq.RecordSize, QueueFaultHook: hook}
}

// TestQueueFaultHookSurfacesInAMKDJ proves the queue-transition fault
// hook is a real fault point for AM-KDJ: the clean run counts spills
// and reloads, then each transition is failed in turn and the join
// must return an error wrapping the injected one — not truncated
// results.
func TestQueueFaultHookSurfacesInAMKDJ(t *testing.T) {
	left, right := queueFaultTrees(t)
	const k = 300

	var spills, reloads int
	ref, err := AMKDJ(left, right, k, tightQueueOpts(func(op hybridq.FaultOp) error {
		if op == hybridq.FaultSpill {
			spills++
		} else {
			reloads++
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != k {
		t.Fatalf("clean run produced %d results, want %d", len(ref), k)
	}
	if spills == 0 || reloads == 0 {
		t.Fatalf("workload does not exercise the queue transitions (spills=%d reloads=%d); tighten the budget", spills, reloads)
	}

	sentinel := errors.New("injected queue-transition fault")
	for _, tc := range []struct {
		op    hybridq.FaultOp
		count int
	}{{hybridq.FaultSpill, spills}, {hybridq.FaultReload, reloads}} {
		for point := 0; point < tc.count; point++ {
			var seen int
			got, err := AMKDJ(left, right, k, tightQueueOpts(func(op hybridq.FaultOp) error {
				if op != tc.op {
					return nil
				}
				i := seen
				seen++
				if i == point {
					return fmt.Errorf("%s %d: %w", op, i, sentinel)
				}
				return nil
			}))
			if err == nil {
				t.Fatalf("%s point %d: no error surfaced (got %d results)", tc.op, point, len(got))
			}
			if !errors.Is(err, sentinel) {
				t.Fatalf("%s point %d: error %v does not wrap the injected fault", tc.op, point, err)
			}
		}
	}

	// And with the hook disarmed again, the join still reproduces the
	// reference on the same trees.
	again, err := AMKDJ(left, right, k, tightQueueOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != ref[i] {
			t.Fatalf("result %d differs after fault runs: %+v != %+v", i, again[i], ref[i])
		}
	}
}

// TestQueueFaultHookSurfacesInAMIDJ is the incremental-iterator
// counterpart: a failed transition must terminate the stream with
// Err() wrapping the injection, Next must stay exhausted, and Close
// must be idempotent.
func TestQueueFaultHookSurfacesInAMIDJ(t *testing.T) {
	left, right := queueFaultTrees(t)
	const pull = 300

	var reloads int
	opts := tightQueueOpts(func(op hybridq.FaultOp) error {
		if op == hybridq.FaultReload {
			reloads++
		}
		return nil
	})
	opts.BatchK = 64
	it, err := AMIDJ(left, right, opts)
	if err != nil {
		t.Fatal(err)
	}
	clean := 0
	for clean < pull {
		if _, ok := it.Next(); !ok {
			break
		}
		clean++
	}
	it.Close()
	it.Close()
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if reloads == 0 {
		t.Fatal("workload does not exercise reloads; tighten the budget")
	}

	sentinel := errors.New("injected queue-transition fault")
	for point := 0; point < reloads; point++ {
		var seen int
		opts := tightQueueOpts(func(op hybridq.FaultOp) error {
			if op != hybridq.FaultReload {
				return nil
			}
			i := seen
			seen++
			if i == point {
				return fmt.Errorf("reload %d: %w", i, sentinel)
			}
			return nil
		})
		opts.BatchK = 64
		it, err := AMIDJ(left, right, opts)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for n < pull {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if n == pull {
			t.Fatalf("point %d: full pull succeeded despite injected fault", point)
		}
		if err := it.Err(); !errors.Is(err, sentinel) {
			t.Fatalf("point %d: Err() = %v, want wrapped injection", point, err)
		}
		if _, ok := it.Next(); ok {
			t.Fatalf("point %d: Next produced a result after failure", point)
		}
		it.Close()
		it.Close() // idempotent
		if err := it.Err(); !errors.Is(err, sentinel) {
			t.Fatalf("point %d: error lost after Close", point)
		}
	}
}
