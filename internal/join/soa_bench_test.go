package join

import (
	"math/rand"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/geom"
)

// BenchmarkLeafSweepSoA drives the struct-of-arrays leaf sweep through
// its batch-kernel fast path: WithinJoin runs every expansion with a
// fixed axis cutoff, so all leaf-pair refinement goes through
// MinDistSqBatch over the SoA columns rather than the scalar
// entry-at-a-time loop. A generous distance keeps most candidate pairs
// unpruned, making distance arithmetic — not tree traversal — the
// dominant cost, which is the regime the batch kernels exist for.
func BenchmarkLeafSweepSoA(b *testing.B) {
	rng := rand.New(rand.NewSource(811))
	w := geom.NewRect(0, 0, 1000, 1000)
	l := datagen.Uniform(rng.Int63(), 2000, w, 10)
	r := datagen.Uniform(rng.Int63(), 1500, w, 10)
	left, right := buildTree(b, l, 16), buildTree(b, r, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := WithinJoin(left, right, 40, Options{}, func(Result) bool {
			n++
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("within join produced no pairs; benchmark is not exercising refinement")
		}
	}
}
