package join

import (
	"distjoin/internal/hybridq"
	"distjoin/internal/rtree"
)

// BKDJ runs the B-KDJ algorithm of paper §3 (Algorithm 1): k-distance
// join with bidirectional node expansion and the optimized plane sweep.
// It returns the k nearest pairs in nondecreasing distance order.
func BKDJ(left, right *rtree.Tree, k int, opts Options) (results []Result, err error) {
	c, err := newContext(left, right, opts)
	if err != nil {
		return nil, err
	}
	if k <= 0 || c.left.Size() == 0 || c.right.Size() == 0 {
		return nil, nil
	}
	c.algo, c.stage = "B-KDJ", "sweep"
	c.beginQuery(k)
	defer func() { c.endQuery(err) }()
	c.mc.Start()
	defer c.mc.Finish()
	if c.par != nil {
		return bkdjParallel(c, k)
	}

	ct := newCutoffTracker(c, k, c.dqPolicy)
	results = make([]Result, 0, k)
	if c.push(c.rootPair()) {
		ct.OnPush(c.rootPair())
	}
	for len(results) < k {
		if err := c.cancelled(); err != nil {
			return nil, err
		}
		p, ok := c.queue.Pop()
		if !ok {
			break
		}
		if p.IsResult() {
			if c.needsRefinement(p) {
				ct.OnRemove(p)
				rp := c.refine(p)
				if c.push(rp) {
					ct.OnPush(rp)
				}
				continue
			}
			results = append(results, pairResult(p))
			c.mc.AddResult(1)
			continue
		}
		ct.OnRemove(p)
		if err := c.bkdjPlaneSweep(p, ct); err != nil {
			return nil, err
		}
	}
	if err := c.queue.Err(); err != nil {
		return nil, c.traceError(err)
	}
	return results, nil
}

// bkdjPlaneSweep is the PlaneSweep procedure of Algorithm 1: expand
// both sides, sweep along the chosen axis/direction, prune candidates
// whose axis gap exceeds qDmax, and enqueue candidates whose real
// distance is within qDmax, feeding the distance queue (which shrinks
// qDmax).
func (c *execContext) bkdjPlaneSweep(p hybridq.Pair, ct *cutoffTracker) error {
	run, err := c.ex.expansion(p, ct.Cutoff())
	if err != nil {
		return c.traceError(err)
	}
	var children int64
	run.axisCutoff = ct.Cutoff
	run.emit = func(le, re rtree.NodeEntry, d float64) {
		if d > ct.Cutoff() {
			return
		}
		np := run.childPair(le, re, d)
		if c.push(np) {
			ct.OnPush(np)
			children++
		}
	}
	run.run()
	c.traceExpansion(p, ct.Cutoff(), children)
	return nil
}
