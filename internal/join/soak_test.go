package join

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

// TestSoakCrossAlgorithmAgreement runs randomized configurations —
// workload shape, sizes, k, queue memory, fanout, sweep policy,
// distance-queue policy, eDmax estimates — and demands that every
// algorithm produce the identical distance sequence. B-KDJ with ample
// memory serves as the reference; it is itself validated against brute
// force elsewhere. This is the long-haul confidence test for the
// interactions the targeted tests cannot enumerate.
//
// The trial count is tiered: -short skips entirely, the default run
// does a reduced pass (keeping plain `go test ./...` quick), and the
// nightly workflow sets DISTJOIN_SOAK=full for the complete sweep.
// The trial loop consumes the shared rng identically in both tiers,
// so a failing full-tier trial index reproduces locally by exporting
// the same variable.
func TestSoakCrossAlgorithmAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	trials := 6
	if os.Getenv("DISTJOIN_SOAK") == "full" {
		trials = 15
	}
	rng := rand.New(rand.NewSource(8888))
	for trial := 0; trial < trials; trial++ {
		nL := 200 + rng.Intn(700)
		nR := 200 + rng.Intn(700)
		w := geom.NewRect(0, 0, 5000, 5000)
		var l, r []rtree.Item
		switch trial % 3 {
		case 0:
			l = datagen.Uniform(rng.Int63(), nL, w, 30)
			r = datagen.Uniform(rng.Int63(), nR, w, 30)
		case 1:
			l = datagen.GaussianClusters(rng.Int63(), nL, 1+rng.Intn(6), w, 100+rng.Float64()*400, 20)
			r = datagen.GaussianClusters(rng.Int63(), nR, 1+rng.Intn(6), w, 100+rng.Float64()*400, 20)
		default:
			l = datagen.GaussianClusters(rng.Int63(), nL, 2, w, 150, 10)
			r = datagen.Uniform(rng.Int63(), nR, w, 40)
		}
		fanout := 6 + rng.Intn(60)
		left, right := buildTree(t, l, fanout), buildTree(t, r, fanout)
		k := 1 + rng.Intn(3000) // cap: the HS baselines are deliberately slow
		queueMem := 512 * (1 + rng.Intn(200))

		ref, err := BKDJ(left, right, k, Options{QueueMemBytes: 16 << 20})
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}

		sweeps := []SweepPolicy{OptimizedSweep, FixedSweep,
			{SelectAxis: true}, {SelectDirection: true}}
		sp := sweeps[rng.Intn(len(sweeps))]
		dq := DistanceQueuePolicy(rng.Intn(2))
		eDmax := 0.0
		if rng.Intn(2) == 0 && len(ref) > 0 {
			eDmax = ref[len(ref)-1].Dist * math.Pow(10, rng.Float64()*4-2)
		}
		opts := Options{
			QueueMemBytes:     queueMem,
			Sweep:             &sp,
			DistanceQueue:     dq,
			EDmax:             eDmax,
			DisableQueueModel: rng.Intn(4) == 0,
		}

		check := func(name string, got []Result, err error) {
			if err != nil {
				t.Fatalf("trial %d (%s, k=%d, mem=%d, sweep=%+v, dq=%d, eDmax=%g): %v",
					trial, name, k, queueMem, sp, dq, eDmax, err)
			}
			if len(got) != len(ref) {
				t.Fatalf("trial %d (%s): %d results, want %d", trial, name, len(got), len(ref))
			}
			for i := range got {
				if math.Abs(got[i].Dist-ref[i].Dist) > 1e-9 {
					t.Fatalf("trial %d (%s, k=%d, mem=%d, sweep=%+v, dq=%d, eDmax=%g): result %d dist %.12g, want %.12g",
						trial, name, k, queueMem, sp, dq, eDmax, i, got[i].Dist, ref[i].Dist)
				}
			}
		}

		got, err := HSKDJ(left, right, k, opts)
		check("HS-KDJ", got, err)
		got, err = BKDJ(left, right, k, opts)
		check("B-KDJ", got, err)
		got, err = AMKDJ(left, right, k, opts)
		check("AM-KDJ", got, err)
		if len(ref) > 0 {
			got, err = SJSort(left, right, k, ref[len(ref)-1].Dist, opts)
			check("SJ-SORT", got, err)
		}

		// Incremental pulls of the same k.
		pull := func(next func() (Result, bool), errf func() error, name string) {
			var got []Result
			for len(got) < len(ref) {
				res, ok := next()
				if !ok {
					break
				}
				got = append(got, res)
			}
			check(name, got, errf())
		}
		hs, err := HSIDJ(left, right, opts)
		if err != nil {
			t.Fatal(err)
		}
		pull(hs.Next, hs.Err, "HS-IDJ")
		batch := k/7 + 1
		am, err := AMIDJ(left, right, Options{
			QueueMemBytes: queueMem,
			Sweep:         &sp,
			BatchK:        batch,
			EDmax:         eDmax,
		})
		if err != nil {
			t.Fatal(err)
		}
		pull(am.Next, am.Err, "AM-IDJ")
	}
}
