package join

import (
	"math/rand"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/geom"
)

// BenchmarkBKDJLarge exercises the full B-KDJ path on a 50k x 50k
// uniform workload (k=5000), the package's allocation/CPU canary.
func BenchmarkBKDJLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := geom.NewRect(0, 0, 100000, 100000)
	l := datagen.Uniform(rng.Int63(), 50000, w, 50)
	r := datagen.Uniform(rng.Int63(), 50000, w, 50)
	left, right := buildTree(b, l, 102), buildTree(b, r, 102)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKDJ(left, right, 5000, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
