package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestRingWrap(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindExpansion, Count: int64(i)})
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("Events returned %d events, want 4", len(evs))
	}
	// The survivors are the four newest, in order, with gapless
	// sequence numbers assigned at emission time.
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("event %d Seq = %d, want %d", i, ev.Seq, want)
		}
		if want := int64(6 + i); ev.Count != want {
			t.Errorf("event %d Count = %d, want %d", i, ev.Count, want)
		}
	}
}

func TestNewClampsCapacity(t *testing.T) {
	for _, capacity := range []int{0, -3} {
		tr := New(capacity)
		for i := 0; i < DefaultCapacity+1; i++ {
			tr.Emit(Event{Kind: KindExpansion})
		}
		if got := tr.Len(); got != DefaultCapacity {
			t.Fatalf("New(%d): Len = %d, want DefaultCapacity %d", capacity, got, DefaultCapacity)
		}
		if got := tr.Dropped(); got != 1 {
			t.Fatalf("New(%d): Dropped = %d, want 1", capacity, got)
		}
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports Enabled")
	}
	tr.Emit(Event{Kind: KindError}) // must not panic
	tr.EmitAll([]Event{{Kind: KindError}})
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.CountKind(KindError) != 0 {
		t.Error("nil tracer reports nonzero state")
	}
	if evs := tr.Events(); evs != nil {
		t.Errorf("nil tracer Events = %v, want nil", evs)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
	var dump struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("nil tracer WriteJSON output invalid: %v", err)
	}
	if dump.Dropped != 0 || len(dump.Events) != 0 {
		t.Errorf("nil tracer dump = %+v, want empty", dump)
	}
}

func TestResetKeepsSequence(t *testing.T) {
	tr := New(8)
	tr.Emit(Event{Kind: KindStageStart})
	tr.Emit(Event{Kind: KindStageEnd})
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("Reset left Len=%d Dropped=%d", tr.Len(), tr.Dropped())
	}
	tr.Emit(Event{Kind: KindExpansion})
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Seq != 3 {
		t.Fatalf("after Reset, first event Seq = %d, want 3 (sequence keeps increasing)", evs[0].Seq)
	}
}

func TestEmitAllOrderAndCountKind(t *testing.T) {
	tr := New(16)
	tr.Emit(Event{Kind: KindStageStart, Algo: "AM-KDJ"})
	tr.EmitAll([]Event{
		{Kind: KindExpansion, Count: 1},
		{Kind: KindExpansion, Count: 2},
		{Kind: KindQueueSpill, Count: 50},
	})
	tr.Emit(Event{Kind: KindStageEnd})
	if got := tr.CountKind(KindExpansion); got != 2 {
		t.Errorf("CountKind(expansion) = %d, want 2", got)
	}
	if got := tr.CountKind(KindQueueSpill); got != 1 {
		t.Errorf("CountKind(queue_spill) = %d, want 1", got)
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := uint64(i + 1); ev.Seq != want {
			t.Fatalf("event %d Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if evs[1].Count != 1 || evs[2].Count != 2 {
		t.Errorf("EmitAll did not preserve order: %+v", evs[1:3])
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tr := New(2)
	tr.Emit(Event{Kind: KindStageStart, Algo: "AM-KDJ", Stage: "aggressive", EDmax: 1.5})
	tr.Emit(Event{Kind: KindExpansion, Dist: 0.25, Count: 9, LeftLevel: 2, RightLevel: -1})
	tr.Emit(Event{Kind: KindError, Err: "boom"}) // wraps: drops the stage_start
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("WriteJSON output invalid: %v", err)
	}
	if dump.Dropped != 1 {
		t.Errorf("dump.Dropped = %d, want 1", dump.Dropped)
	}
	if len(dump.Events) != 2 {
		t.Fatalf("dump has %d events, want 2", len(dump.Events))
	}
	if ev := dump.Events[0]; ev.Kind != KindExpansion || ev.Count != 9 || ev.RightLevel != -1 {
		t.Errorf("round-tripped expansion = %+v", ev)
	}
	if ev := dump.Events[1]; ev.Kind != KindError || ev.Err != "boom" {
		t.Errorf("round-tripped error = %+v", ev)
	}
	// Zero-valued fields must be omitted from the wire form.
	if bytes.Contains(buf.Bytes(), []byte(`"edmax": 0`)) {
		t.Error("zero edmax not omitted from JSON")
	}
}

// A cutoff that has not tightened yet is +Inf (e.g. B-KDJ's starting
// qDmax, or a sharded task launched before k results exist), and
// encoding/json rejects infinities — WriteJSON must render such events
// with the field absent instead of failing the whole dump.
func TestWriteJSONNonFiniteEDmax(t *testing.T) {
	tr := New(8)
	tr.Emit(Event{Kind: KindShardRun, Algo: "AM-KDJ", EDmax: math.Inf(1), Dist: 1.5, Count: 3})
	tr.Emit(Event{Kind: KindEDmaxUpdate, Algo: "B-KDJ", EDmax: 2.5, Dist: math.Inf(1)})
	tr.Emit(Event{Kind: KindExpansion, Algo: "AM-KDJ", EDmax: math.NaN()})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON with +Inf/NaN fields: %v", err)
	}
	var dump struct {
		Events []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("output invalid JSON: %v", err)
	}
	if n := len(dump.Events); n != 3 {
		t.Fatalf("got %d events, want 3", n)
	}
	if _, ok := dump.Events[0]["edmax"]; ok {
		t.Errorf("infinite edmax should be omitted, got %v", dump.Events[0]["edmax"])
	}
	if got := dump.Events[0]["dist"]; got != 1.5 {
		t.Errorf("finite dist dropped: got %v, want 1.5", got)
	}
	if got := dump.Events[1]["edmax"]; got != 2.5 {
		t.Errorf("finite edmax dropped: got %v, want 2.5", got)
	}
	if _, ok := dump.Events[1]["dist"]; ok {
		t.Errorf("infinite dist should be omitted, got %v", dump.Events[1]["dist"])
	}
}
