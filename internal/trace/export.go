package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"time"

	"distjoin/internal/metrics"
)

// Metrics export: turn a metrics.Collector snapshot into machine
// formats. Two are provided:
//
//   - WriteMetricsJSON: the collector's exported fields plus the
//     derived totals, as one JSON object.
//   - WriteMetricsProm: Prometheus text exposition format (HELP/TYPE
//     comments + samples), suitable for a textfile collector or a
//     scrape handler.
//
// Both exporters enumerate the Collector's exported fields by
// reflection, so a counter added to the Collector can never be
// silently dropped from the export — the same property the
// reflection test in internal/metrics enforces for Add/Reset/isZero.

// promNamespace prefixes every exported Prometheus metric name.
const promNamespace = "distjoin"

// promGaugeFields are Collector fields exported as gauges rather than
// monotone counters (everything else integral is a counter and gets a
// _total suffix).
var promGaugeFields = map[string]bool{
	"MainQueuePeak": true,
}

// durationType identifies time.Duration fields, exported as *_seconds
// gauges.
var durationType = reflect.TypeOf(time.Duration(0))

// collectorField is one exported Collector field resolved by
// reflection.
type collectorField struct {
	Name     string // Go field name
	Prom     string // full Prometheus metric name
	Gauge    bool
	Seconds  bool // value is a duration, exported in seconds
	Index    int  // struct field index
	DocBrief string
}

// collectorFields enumerates the exported numeric fields of
// metrics.Collector in declaration order. Computed once at package
// init; a non-numeric exported field would be a programming error
// caught by the panic (and by TestPromExportCoversCollector).
var collectorFields = enumerateCollectorFields()

func enumerateCollectorFields() []collectorField {
	t := reflect.TypeOf(metrics.Collector{})
	fields := make([]collectorField, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		cf := collectorField{Name: f.Name, Index: i}
		switch {
		case f.Type == durationType:
			cf.Seconds = true
			cf.Gauge = true
			cf.Prom = fmt.Sprintf("%s_%s_seconds", promNamespace, snakeCase(f.Name))
		case f.Type.Kind() == reflect.Int64:
			cf.Gauge = promGaugeFields[f.Name]
			suffix := "_total"
			if cf.Gauge {
				suffix = ""
			}
			cf.Prom = fmt.Sprintf("%s_%s%s", promNamespace, snakeCase(f.Name), suffix)
		default:
			panic(fmt.Sprintf("trace: unsupported Collector field %s of type %s", f.Name, f.Type))
		}
		cf.DocBrief = fmt.Sprintf("Collector field %s.", f.Name)
		fields = append(fields, cf)
	}
	return fields
}

// snakeCase converts a Go CamelCase identifier to snake_case
// ("NodeAccessesLogical" -> "node_accesses_logical", "IOTime" ->
// "io_time").
func snakeCase(s string) string {
	var b strings.Builder
	runes := []rune(s)
	for i, r := range runes {
		lower := r | 0x20 // ASCII lowercase; identifiers here are ASCII
		isUpper := r >= 'A' && r <= 'Z'
		if isUpper && i > 0 {
			prevUpper := runes[i-1] >= 'A' && runes[i-1] <= 'Z'
			nextLower := i+1 < len(runes) && runes[i+1] >= 'a' && runes[i+1] <= 'z'
			if !prevUpper || nextLower {
				b.WriteByte('_')
			}
		}
		b.WriteRune(lower)
	}
	return b.String()
}

// derived Prometheus metrics computed from the collector rather than
// read from a field.
type derivedMetric struct {
	Name  string
	Help  string
	Gauge bool
	Value func(c *metrics.Collector) float64
}

var derivedMetrics = []derivedMetric{
	{
		Name:  promNamespace + "_buffer_hit_ratio",
		Help:  "Buffer pool hit ratio: hits / (hits + misses); 0 before any access.",
		Gauge: true,
		Value: func(c *metrics.Collector) float64 { return c.BufferHitRatio() },
	},
	{
		Name:  promNamespace + "_dist_calcs_total",
		Help:  "Total distance computations (axis + real), the quantity of Figures 10(a)/12(a)/14(a).",
		Value: func(c *metrics.Collector) float64 { return float64(c.DistCalcs()) },
	},
	{
		Name:  promNamespace + "_queue_inserts_total",
		Help:  "Total queue insertions across all queues, the quantity of Figures 10(b)/12(b)/14(b).",
		Value: func(c *metrics.Collector) float64 { return float64(c.QueueInserts()) },
	},
	{
		Name:  promNamespace + "_response_time_seconds",
		Help:  "Modeled response time: wall clock plus charged I/O time.",
		Gauge: true,
		Value: func(c *metrics.Collector) float64 { return c.ResponseTime().Seconds() },
	},
}

// WriteMetricsProm writes c as Prometheus text exposition format
// (version 0.0.4): one HELP line, one TYPE line, and one sample per
// metric, all under the "distjoin_" namespace. A nil collector
// exports all zeros.
func WriteMetricsProm(w io.Writer, c *metrics.Collector) error {
	if c == nil {
		c = &metrics.Collector{}
	}
	v := reflect.ValueOf(c).Elem()
	for _, f := range collectorFields {
		val := float64(v.Field(f.Index).Int())
		if f.Seconds {
			val = time.Duration(v.Field(f.Index).Int()).Seconds()
		}
		if err := writePromSample(w, f.Prom, f.DocBrief, f.Gauge, val); err != nil {
			return err
		}
	}
	for _, d := range derivedMetrics {
		if err := writePromSample(w, d.Name, d.Help, d.Gauge, d.Value(c)); err != nil {
			return err
		}
	}
	return nil
}

func writePromSample(w io.Writer, name, help string, gauge bool, val float64) error {
	typ := "counter"
	if gauge {
		typ = "gauge"
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, typ, name, strconv.FormatFloat(val, 'g', -1, 64))
	return err
}

// PromField is one Prometheus metric derivable from a
// metrics.Collector snapshot — the unit the process-level registry
// exporter (internal/obsrv) reuses to emit the same metric families
// with per-algorithm labels. The set covers every exported Collector
// field (by reflection, so new counters are never silently dropped)
// plus the derived totals.
type PromField struct {
	// Name is the full Prometheus metric name ("distjoin_..." with
	// the _total/_seconds suffix conventions of WriteMetricsProm).
	Name string
	// Help is the HELP text.
	Help string
	// Gauge marks non-monotone metrics (TYPE gauge vs counter).
	Gauge bool
	// Value extracts the sample value from a collector snapshot; a
	// nil collector yields zero.
	Value func(c *metrics.Collector) float64
}

// PromFields enumerates every metric WriteMetricsProm emits, in
// emission order.
func PromFields() []PromField {
	out := make([]PromField, 0, len(collectorFields)+len(derivedMetrics))
	for _, f := range collectorFields {
		f := f
		out = append(out, PromField{
			Name:  f.Prom,
			Help:  f.DocBrief,
			Gauge: f.Gauge,
			Value: func(c *metrics.Collector) float64 {
				if c == nil {
					return 0
				}
				raw := reflect.ValueOf(c).Elem().Field(f.Index).Int()
				if f.Seconds {
					return time.Duration(raw).Seconds()
				}
				return float64(raw)
			},
		})
	}
	for _, d := range derivedMetrics {
		d := d
		out = append(out, PromField{
			Name:  d.Name,
			Help:  d.Help,
			Gauge: d.Gauge,
			Value: func(c *metrics.Collector) float64 {
				if c == nil {
					return 0
				}
				return d.Value(c)
			},
		})
	}
	return out
}

// PromMetricNames returns the sorted metric names WriteMetricsProm
// emits — exposed so tests (and documentation generators) can assert
// export completeness.
func PromMetricNames() []string {
	names := make([]string, 0, len(collectorFields)+len(derivedMetrics))
	for _, f := range collectorFields {
		names = append(names, f.Prom)
	}
	for _, d := range derivedMetrics {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return names
}

// WriteMetricsJSON writes c as one JSON object: every exported
// Collector field by name, plus the derived totals DistCalcs,
// QueueInserts, BufferHitRatio, and ResponseTime. Durations are
// nanoseconds (Go's time.Duration encoding). A nil collector exports
// all zeros.
func WriteMetricsJSON(w io.Writer, c *metrics.Collector) error {
	if c == nil {
		c = &metrics.Collector{}
	}
	obj := make(map[string]any, len(collectorFields)+4)
	v := reflect.ValueOf(c).Elem()
	for _, f := range collectorFields {
		obj[f.Name] = v.Field(f.Index).Int()
	}
	obj["DistCalcs"] = c.DistCalcs()
	obj["QueueInserts"] = c.QueueInserts()
	obj["BufferHitRatio"] = c.BufferHitRatio()
	obj["ResponseTime"] = int64(c.ResponseTime())
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}
