package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"distjoin/internal/metrics"
)

func TestSnakeCase(t *testing.T) {
	for in, want := range map[string]string{
		"RealDistCalcs":       "real_dist_calcs",
		"NodeAccessesLogical": "node_accesses_logical",
		"MainQueuePeak":       "main_queue_peak",
		"ModeledIOTime":       "modeled_io_time",
		"BufferHits":          "buffer_hits",
		"WallTime":            "wall_time",
		"QueuePageReads":      "queue_page_reads",
	} {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

// populatedCollector fills every exported field with a distinct
// nonzero value via reflection, so export omissions are detectable.
func populatedCollector(t *testing.T) *metrics.Collector {
	t.Helper()
	c := &metrics.Collector{}
	v := reflect.ValueOf(c).Elem()
	typ := v.Type()
	n := 0
	for i := 0; i < typ.NumField(); i++ {
		if !typ.Field(i).IsExported() {
			continue
		}
		n++
		v.Field(i).SetInt(int64(n) * 1e6) // big enough that durations are whole microseconds
	}
	if n == 0 {
		t.Fatal("Collector has no exported fields")
	}
	return c
}

// TestPromExportCoversCollector asserts that every exported Collector
// field appears in the Prometheus output with its populated value, that
// the text parses as exposition format, and that PromMetricNames
// matches what is actually written.
func TestPromExportCoversCollector(t *testing.T) {
	c := populatedCollector(t)
	var buf bytes.Buffer
	if err := WriteMetricsProm(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Parse: every non-comment line is "name value"; collect samples.
	samples := map[string]float64{}
	helps := map[string]bool{}
	types := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			helps[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			types[f[2]] = f[3]
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		val, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			t.Fatalf("sample %q has non-numeric value: %v", line, err)
		}
		if _, dup := samples[f[0]]; dup {
			t.Fatalf("metric %s emitted twice", f[0])
		}
		samples[f[0]] = val
	}

	// Every name from PromMetricNames is present exactly once, with
	// HELP and TYPE comments; and vice versa.
	names := PromMetricNames()
	if len(samples) != len(names) {
		t.Fatalf("output has %d samples, PromMetricNames lists %d", len(samples), len(names))
	}
	for _, name := range names {
		if _, ok := samples[name]; !ok {
			t.Errorf("declared metric %s missing from output", name)
		}
		if !helps[name] {
			t.Errorf("metric %s has no HELP line", name)
		}
		if typ := types[name]; typ != "counter" && typ != "gauge" {
			t.Errorf("metric %s has TYPE %q", name, typ)
		}
	}

	// Every exported Collector field maps to a sample carrying its
	// populated value.
	v := reflect.ValueOf(c).Elem()
	typ := v.Type()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		raw := v.Field(i).Int()
		base := promNamespace + "_" + snakeCase(f.Name)
		var name string
		var want float64
		switch {
		case f.Type == reflect.TypeOf(time.Duration(0)):
			name = base + "_seconds"
			want = time.Duration(raw).Seconds()
		case promGaugeFields[f.Name]:
			name = base
			want = float64(raw)
		default:
			name = base + "_total"
			want = float64(raw)
		}
		got, ok := samples[name]
		if !ok {
			t.Errorf("Collector field %s has no sample %s", f.Name, name)
			continue
		}
		if got != want {
			t.Errorf("sample %s = %g, want %g", name, got, want)
		}
	}

	// MainQueuePeak must be a gauge, counters must end in _total.
	if types[promNamespace+"_main_queue_peak"] != "gauge" {
		t.Error("main_queue_peak is not exported as a gauge")
	}
	if types[promNamespace+"_real_dist_calcs_total"] != "counter" {
		t.Error("real_dist_calcs_total is not exported as a counter")
	}
}

func TestPromExportNilCollector(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsProm(&buf, nil); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 || f[1] != "0" {
			t.Fatalf("nil collector sample %q, want value 0", line)
		}
	}
}

func TestWriteMetricsJSON(t *testing.T) {
	c := populatedCollector(t)
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, c); err != nil {
		t.Fatal(err)
	}
	var obj map[string]json.Number
	dec := json.NewDecoder(&buf)
	dec.UseNumber()
	if err := dec.Decode(&obj); err != nil {
		t.Fatalf("JSON export invalid: %v", err)
	}

	v := reflect.ValueOf(c).Elem()
	typ := v.Type()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		got, ok := obj[f.Name]
		if !ok {
			t.Errorf("JSON export missing field %s", f.Name)
			continue
		}
		n, err := got.Int64()
		if err != nil || n != v.Field(i).Int() {
			t.Errorf("JSON field %s = %v, want %d", f.Name, got, v.Field(i).Int())
		}
	}
	for _, derived := range []string{"DistCalcs", "QueueInserts", "BufferHitRatio", "ResponseTime"} {
		if _, ok := obj[derived]; !ok {
			t.Errorf("JSON export missing derived field %s", derived)
		}
	}

	// Nil collector exports a valid all-zero object.
	buf.Reset()
	if err := WriteMetricsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil collector JSON export invalid")
	}
}
