// Package trace is the query observability layer: a per-query Tracer
// records structured stage events — node-pair expansions, the adaptive
// algorithms' aggressive-stage start/stop with the active eDmax,
// compensation passes, hybrid-queue spills and reloads with
// memory-vs-disk depth, eDmax re-estimations, and parallel batch
// barriers — into a bounded ring buffer, cheap enough to leave on in
// production.
//
// The paper's whole argument is quantitative (distance calculations,
// queue inserts, node accesses, stage transitions; Figures 10–15), so
// every knob the engine exposes needs a surface that shows *where* a
// query spent its work. A Tracer provides the per-stage time line;
// the exporters in export.go turn a metrics.Collector snapshot into
// JSON or Prometheus text exposition format for dashboards.
//
// # Cost model
//
// A nil *Tracer is a valid sink: every method no-ops, the event
// structs passed to Emit are stack-allocated values, and the traced
// hot paths add zero allocations (guarded by TestTraceOffNoAllocs and
// BenchmarkAMKDJTraceOff in internal/join). A non-nil Tracer
// allocates its ring buffer once, up front; recording an event is a
// mutex acquire plus a struct copy.
//
// # Parallel determinism
//
// Under join.Options.Parallelism > 1, expansion events are buffered
// per worker task (alongside the task's candidate pairs) and merged
// into the Tracer at the existing batch barriers in task order, so
// installing a tracer never perturbs the engine's scheduling and a
// traced parallel run returns byte-identical results to a serial run.
package trace

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"time"
)

// Kind classifies a trace event.
type Kind string

// Event kinds emitted by the join engine and the hybrid queue.
const (
	// KindExpansion is one node-pair expansion (an "expansion round"):
	// both sides materialized, plane-swept, and the surviving children
	// enqueued. Count holds the number of children emitted.
	KindExpansion Kind = "expansion"
	// KindStageStart marks a stage beginning (AM-KDJ aggressive stage,
	// AM-IDJ stage s); EDmax carries the stage's active cutoff.
	KindStageStart Kind = "stage_start"
	// KindStageEnd marks a stage ending; Count carries the results
	// produced so far.
	KindStageEnd Kind = "stage_end"
	// KindCompensation marks a compensation pass beginning; Count
	// carries the number of bookkept pairs re-seeded into the queue.
	KindCompensation Kind = "compensation"
	// KindEDmaxUpdate records a re-estimation (or qDmax-driven
	// tightening) of the adaptive cutoff; EDmax carries the new value.
	KindEDmaxUpdate Kind = "edmax_update"
	// KindQueueSpill records the hybrid main queue moving pairs to a
	// disk segment (an overflow split). Count is the number of pairs
	// spilled; MemLen/DiskLen/Segments snapshot the queue afterwards.
	KindQueueSpill Kind = "queue_spill"
	// KindQueueReload records the hybrid main queue swapping a disk
	// segment back into memory. Count is the number of pairs loaded;
	// MemLen/DiskLen/Segments snapshot the queue afterwards.
	KindQueueReload Kind = "queue_reload"
	// KindBarrier marks a parallel batch barrier: Count workers' task
	// outputs were merged on the coordinating goroutine.
	KindBarrier Kind = "batch_barrier"
	// KindError records a query aborting with an error (storage fault,
	// cancellation); Err carries the message. Emitted so an aborted
	// run is distinguishable from one that legitimately produced few
	// results.
	KindError Kind = "error"
	// KindShardPlan records the sharded scheduler's plan: Count is the
	// number of partition-pair tasks, LeftLevel / RightLevel the number
	// of non-empty left / right shards.
	KindShardPlan Kind = "shard_plan"
	// KindShardRun records one partition pair joined: LeftLevel /
	// RightLevel are the shard ordinals, Dist the pair's MBR-to-MBR
	// mindist, EDmax the global cutoff observed when the task started,
	// and Count the distance calculations the inner join performed
	// (per-shard dist-calc attribution).
	KindShardRun Kind = "shard_run"
	// KindShardSkip records one partition pair pruned by the
	// bounds-only test: LeftLevel / RightLevel are the shard ordinals,
	// Dist the pair's MBR-to-MBR mindist, EDmax the cutoff that proved
	// the pair cannot contribute (Dist > EDmax).
	KindShardSkip Kind = "shard_skip"
	// KindCutoffBroadcast records the shared global cutoff tightening
	// after a task's results merged: EDmax is the new k-th distance
	// upper bound, Count the broadcast sequence number (total number
	// of tightenings so far).
	KindCutoffBroadcast Kind = "cutoff_broadcast"
)

// Event is one structured trace record. Numeric fields are reused
// across kinds (see the Kind doc comments); unused fields are zero and
// omitted from JSON.
type Event struct {
	// Seq is the tracer-assigned sequence number (1-based, gapless
	// even when the ring buffer drops old events).
	Seq uint64 `json:"seq"`
	// At is the event's recording time in microseconds since the
	// tracer was constructed, assigned together with Seq. Worker
	// events buffered under Parallelism > 1 are stamped when they
	// merge at the batch barrier, so At is monotone with Seq and
	// recording never perturbs worker scheduling.
	At int64 `json:"at_us,omitempty"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Algo names the emitting algorithm ("AM-KDJ", "B-KDJ", ...).
	Algo string `json:"algo,omitempty"`
	// Stage labels the phase within the algorithm ("aggressive",
	// "compensation", "stage", ...).
	Stage string `json:"stage,omitempty"`
	// EDmax is the active estimated cutoff, where meaningful.
	EDmax float64 `json:"edmax,omitempty"`
	// Dist is the driving pair's distance, where meaningful.
	Dist float64 `json:"dist,omitempty"`
	// Count is the kind-specific cardinality (children emitted, pairs
	// spilled, batch size, ...).
	Count int64 `json:"count,omitempty"`
	// LeftLevel / RightLevel are the expanded pair's node levels
	// (0 = leaf, -1 = object side).
	LeftLevel  int `json:"left_level,omitempty"`
	RightLevel int `json:"right_level,omitempty"`
	// MemLen / DiskLen / Segments snapshot the hybrid queue: pairs in
	// the in-memory heap, pairs in disk segments, segment count.
	MemLen   int `json:"mem_len,omitempty"`
	DiskLen  int `json:"disk_len,omitempty"`
	Segments int `json:"segments,omitempty"`
	// Err is the error message for KindError events.
	Err string `json:"error,omitempty"`
}

// MarshalJSON renders the event with non-finite EDmax/Dist values
// omitted (JSON has no Inf literal, and encoding/json errors on one,
// which would make WriteJSON fail on any trace recorded before the
// engine's cutoff left its +Inf starting value). An infinite cutoff
// means "no cutoff established yet", which the absent field already
// expresses via omitempty.
func (e Event) MarshalJSON() ([]byte, error) {
	type plain Event // drops the method, avoiding marshal recursion
	p := plain(e)
	if math.IsInf(p.EDmax, 0) || math.IsNaN(p.EDmax) {
		p.EDmax = 0
	}
	if math.IsInf(p.Dist, 0) || math.IsNaN(p.Dist) {
		p.Dist = 0
	}
	return json.Marshal(p)
}

// DefaultCapacity is the ring-buffer size used when New is given a
// non-positive capacity. At ~200 bytes per event this bounds a tracer
// at roughly 1 MB.
const DefaultCapacity = 4096

// Tracer records Events into a bounded ring buffer. The zero value is
// not usable; construct with New. A nil *Tracer is a valid no-op sink
// (see the package comment), which is how library code threads an
// optional tracer without call-site nil checks.
//
// A Tracer is safe for concurrent use; in practice the join engine
// emits only from its coordinating goroutine (worker events are
// buffered per task and merged at barriers), so the internal mutex is
// uncontended.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest buffered event
	n       int // number of buffered events
	seq     uint64
	dropped uint64
	start   time.Time // epoch for Event.At
}

// New returns a Tracer whose ring buffer holds up to capacity events;
// capacity <= 0 selects DefaultCapacity. Once full, each new event
// overwrites the oldest (Dropped counts the casualties) so a
// long-running query keeps its most recent history.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity), start: time.Now()}
}

// Enabled reports whether events are actually recorded. It lets
// callers skip expensive event-argument computation (nil tracers
// record nothing).
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records ev, assigning its sequence number. Safe on a nil
// receiver (no-op).
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emitLocked(ev)
	t.mu.Unlock()
}

// EmitAll records evs in order under one lock acquisition — how the
// parallel engine merges a task's buffered events at a batch barrier.
// Safe on a nil receiver.
func (t *Tracer) EmitAll(evs []Event) {
	if t == nil || len(evs) == 0 {
		return
	}
	t.mu.Lock()
	for _, ev := range evs {
		t.emitLocked(ev)
	}
	t.mu.Unlock()
}

func (t *Tracer) emitLocked(ev Event) {
	t.seq++
	ev.Seq = t.seq
	ev.At = int64(time.Since(t.start) / time.Microsecond)
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		t.n++
		return
	}
	// Ring full: overwrite the oldest.
	t.buf[t.head] = ev
	t.head = (t.head + 1) % len(t.buf)
	t.dropped++
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered events in emission (sequence)
// order. Nil receivers return nil.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.head+i)%len(t.buf)])
	}
	return out
}

// Reset discards all buffered events and the drop counter; sequence
// numbers keep increasing so a reused tracer's time line stays
// totally ordered.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = t.buf[:0]
	t.head = 0
	t.n = 0
	t.dropped = 0
}

// traceDump is the JSON document shape written by WriteJSON.
type traceDump struct {
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// WriteJSON writes the buffered events as one JSON document:
//
//	{"dropped": N, "events": [{...}, ...]}
//
// Safe on a nil receiver (writes an empty document).
func (t *Tracer) WriteJSON(w io.Writer) error {
	dump := traceDump{Events: t.Events(), Dropped: t.Dropped()}
	if dump.Events == nil {
		dump.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// CountKind returns how many buffered events have the given kind —
// a convenience for tests and assertions on trace contents.
func (t *Tracer) CountKind(k Kind) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := 0
	for i := 0; i < t.n; i++ {
		if t.buf[(t.head+i)%len(t.buf)].Kind == k {
			c++
		}
	}
	return c
}
