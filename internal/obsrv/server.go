package obsrv

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// HTTP observability surface. Handler builds a mux over a Registry
// exposing:
//
//	/metrics       Prometheus text exposition (WriteProm)
//	/queries       live in-flight query inspector (JSON)
//	/debug/vars    full registry snapshot + runtime stats (JSON)
//	/debug/pprof/  the standard pprof handlers
//	/healthz       liveness probe
//	/              tiny plain-text index
//
// Every handler is snapshot-then-render: it deep-copies registry
// state under the registry mutex (Registry.Snapshot) and renders from
// the copy, so a query finishing — or the whole pool churning —
// mid-render can never panic or torn-read the response. The handlers
// are safe on a nil registry (they render the empty snapshot), so a
// server can be mounted before any engine wiring exists.

// Handler returns an http.Handler serving the observability
// endpoints for reg. reg may be nil.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteProm(w); err != nil {
			// Headers are already out; nothing useful to do but drop.
			return
		}
	})
	mux.HandleFunc("/queries", func(w http.ResponseWriter, r *http.Request) {
		s := reg.Snapshot()
		writeJSON(w, struct {
			UptimeSeconds float64         `json:"uptime_seconds"`
			InFlight      []QuerySnapshot `json:"in_flight"`
		}{s.UptimeSeconds, s.InFlight})
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		s := reg.Snapshot()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		writeJSON(w, struct {
			Snapshot
			Runtime runtimeVars `json:"runtime"`
		}{s, runtimeVars{
			Goroutines:   runtime.NumGoroutine(),
			HeapAlloc:    ms.HeapAlloc,
			TotalAlloc:   ms.TotalAlloc,
			Mallocs:      ms.Mallocs,
			NumGC:        ms.NumGC,
			PauseTotalNs: ms.PauseTotalNs,
		}})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "distjoin observability\n\n"+
			"/metrics       Prometheus text exposition\n"+
			"/queries       in-flight query inspector (JSON)\n"+
			"/debug/vars    registry snapshot + runtime stats (JSON)\n"+
			"/debug/pprof/  pprof profiles\n"+
			"/healthz       liveness probe\n")
	})
	return mux
}

// runtimeVars is the runtime block of /debug/vars.
type runtimeVars struct {
	Goroutines   int    `json:"goroutines"`
	HeapAlloc    uint64 `json:"heap_alloc_bytes"`
	TotalAlloc   uint64 `json:"total_alloc_bytes"`
	Mallocs      uint64 `json:"mallocs"`
	NumGC        uint32 `json:"num_gc"`
	PauseTotalNs uint64 `json:"gc_pause_total_ns"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Snapshot values are finite by construction (RecordEstimate
		// and Snapshot filter NaN/Inf); an error here means the client
		// went away — nothing to do.
		_ = err
	}
}

// Server is a running observability HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server on addr (e.g. ":9090" or
// "127.0.0.1:0") serving Handler(reg). It returns once the listener
// is bound; the accept loop runs in a background goroutine.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeHandler(addr, Handler(reg))
}

// ServeHandler starts an HTTP server on addr serving h — the
// lifecycle half of Serve, reusable for handlers beyond the
// observability mux (the query-serving API embeds it this way). It
// returns once the listener is bound; the accept loop runs in a
// background goroutine. Stop the server with Shutdown (graceful) or
// Close (hard stop).
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsrv: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server: the listener closes
// immediately (no new connections), but responses already in flight —
// an in-progress /metrics scrape, a query request on an embedding
// server — run to completion before Shutdown returns. If ctx expires
// first, Shutdown returns ctx's error with connections still open;
// pair it with Close as the hard-stop escalation:
//
//	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
//	defer cancel()
//	if err := srv.Shutdown(sctx); err != nil {
//	    srv.Close()
//	}
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close immediately shuts the server down, closing the listener and
// any active connections — in-flight responses are dropped
// mid-stream. Prefer Shutdown for orderly process exit.
func (s *Server) Close() error { return s.srv.Close() }
