package obsrv

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"distjoin/internal/metrics"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := populatedRegistry()
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", code, body)
	}
	if code, body := get(t, srv, "/metrics"); code != 200 {
		t.Errorf("/metrics: %d", code)
	} else {
		parsePromStrict(t, body) // served exposition must lint clean too
	}
	code, body := get(t, srv, "/queries")
	if code != 200 {
		t.Fatalf("/queries: %d", code)
	}
	var queries struct {
		UptimeSeconds float64         `json:"uptime_seconds"`
		InFlight      []QuerySnapshot `json:"in_flight"`
	}
	if err := json.Unmarshal([]byte(body), &queries); err != nil {
		t.Fatalf("/queries not JSON: %v\n%s", err, body)
	}
	if len(queries.InFlight) != 1 || queries.InFlight[0].Algo != "B-KDJ" {
		t.Errorf("/queries in-flight %+v, want the live B-KDJ query", queries.InFlight)
	}

	code, body = get(t, srv, "/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["runtime"]; !ok {
		t.Errorf("/debug/vars missing runtime block: %v", vars)
	}
	if code, _ := get(t, srv, "/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: %d", code)
	}
	if code, body := get(t, srv, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: %d %q", code, body)
	}
	if code, _ := get(t, srv, "/nonexistent"); code != http.StatusNotFound {
		t.Errorf("/nonexistent: %d, want 404", code)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/metrics", "/queries", "/debug/vars"} {
		if code, _ := get(t, srv, path); code != 200 {
			t.Errorf("nil registry %s: %d", path, code)
		}
	}
}

func TestServe(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz on %s: %v", s.Addr(), err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestShutdownDrainsInFlight is the graceful-stop contract: a response
// already being written when Shutdown is called must complete — the
// bug this guards against was ServeObservability consumers calling
// Close on exit and chopping in-flight scrapes mid-body.
func TestShutdownDrainsInFlight(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	s, err := ServeHandler("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
		fmt.Fprint(w, "drained-ok")
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr() + "/")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()
	<-inHandler

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// Shutdown must wait for the in-flight response, not race past it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a response was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	if r := <-got; r.err != nil || r.body != "drained-ok" {
		t.Fatalf("in-flight response: body %q err %v, want full body", r.body, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Post-shutdown connections must be refused.
	if _, err := http.Get("http://" + s.Addr() + "/"); err == nil {
		t.Fatal("GET after Shutdown succeeded, want connection error")
	}
}

// TestShutdownDeadline: an expired drain context surfaces its error so
// callers can escalate to Close.
func TestShutdownDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	inHandler := make(chan struct{})
	s, err := ServeHandler("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	go func() {
		resp, err := http.Get("http://" + s.Addr() + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inHandler

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown with a stuck handler and expired context returned nil, want deadline error")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close escalation: %v", err)
	}
}

// TestHandlersUnderQueryChurn is the no-panic-on-finish guard: handlers
// snapshot-then-render, so a pool of queries beginning, progressing,
// and ending as fast as possible must never panic or corrupt a
// response. Run under -race in CI.
func TestHandlersUnderQueryChurn(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churners: short-lived queries across several algorithms.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			algos := []string{"AM-KDJ", "AM-IDJ", "B-KDJ", "HS-KDJ"}
			mc := &metrics.Collector{}
			mc.AddRealDist(10)
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := reg.Begin(algos[(g+i)%len(algos)], 10+i%100)
				q.SetStage("aggressive")
				q.SetEDmax(float64(i%7) + 0.5)
				q.SetQueueDepth(i%100, i%10, i%3)
				q.RecordEstimate(1.0+float64(i%3), 1.5, ModeInitial)
				q.End(mc, nil)
				i++
			}
		}(g)
	}

	// Hammer every read surface while the pool churns.
	deadline := time.Now().Add(750 * time.Millisecond)
	paths := []string{"/metrics", "/queries", "/debug/vars", "/healthz"}
	for time.Now().Before(deadline) {
		for _, p := range paths {
			code, body := get(t, srv, p)
			if code != 200 {
				t.Fatalf("%s during churn: %d", p, code)
			}
			if p == "/metrics" {
				// Cheap consistency probe on every scrape; a full strict
				// parse each round would dominate the churn window.
				if !strings.HasPrefix(body, "# HELP distjoin_registry_uptime_seconds") {
					t.Fatalf("scrape corrupted:\n%.200s", body)
				}
			}
			if p == "/queries" && !json.Valid([]byte(body)) {
				t.Fatalf("/queries produced invalid JSON during churn:\n%.200s", body)
			}
		}
	}
	// One full strict lint while still churning.
	_, body := get(t, srv, "/metrics")
	close(stop)
	wg.Wait()
	parsePromStrict(t, body)
}
