package obsrv

import (
	"fmt"
	"math"
)

// Histogram is a log-bucketed distribution: observations are counted
// into buckets with exponentially growing upper bounds plus an
// implicit +Inf overflow bucket, exactly the shape Prometheus
// histogram exposition expects (`le` buckets are cumulative at export
// time; see writePromHistogram). Log bucketing keeps the series count
// small while preserving order-of-magnitude resolution across the
// enormous dynamic range of join workloads — a k=10 query costs
// thousands of distance computations, a k=100,000 query billions.
//
// p50/p90/p99 are derivable from the buckets (Quantile); the registry
// does not store raw samples.
//
// A Histogram is not internally synchronized: the Registry mutates
// and snapshots its histograms under the registry mutex, which is why
// Observe stays branch-and-add cheap.
type Histogram struct {
	bounds []float64 // ascending finite upper bounds (le values)
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	total  uint64
}

// ExpBuckets returns n exponentially growing bucket bounds:
// start, start*factor, start*factor^2, ... — the standard Prometheus
// exponential layout. start must be positive and factor > 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if !(start > 0) || !(factor > 1) || n < 1 {
		panic(fmt.Sprintf("obsrv: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// NewHistogram returns a histogram over the given ascending finite
// bucket bounds (the +Inf overflow bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obsrv: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe counts one observation. NaN observations are dropped (they
// would poison the sum and fit no bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.total++
	h.sum += v
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1)
// derived from the buckets: the upper bound of the bucket containing
// the q*total-th observation. Observations in the overflow bucket
// report +Inf; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Snapshot returns a deep copy safe to read after the histogram keeps
// mutating.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.total,
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram, the form the
// exporters and the /debug/vars JSON consume.
type HistogramSnapshot struct {
	// Bounds holds the finite bucket upper bounds; Counts has one more
	// entry than Bounds, the overflow (+Inf) bucket last. Counts are
	// per-bucket (non-cumulative); exporters accumulate.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Quantile is Histogram.Quantile over a snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || !(q > 0) {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1) // unreachable: cum == Count >= rank
}
