package obsrv

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"distjoin/internal/trace"
)

// Prometheus text exposition (version 0.0.4) for a registry snapshot.
//
// The per-query exporter of internal/trace emits one unlabeled sample
// per Collector counter; here the same metric families — enumerated
// through trace.PromFields, so the two surfaces can never drift — are
// emitted once per algorithm with an {algo="..."} label, followed by
// the registry-only families: query/error counts, the log-bucketed
// histograms (`_bucket`/`_sum`/`_count` with cumulative `le` series),
// and the eDmax-estimator accuracy metrics.

// promEscape escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func promEscape(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promW accumulates exposition lines, latching the first write error.
type promW struct {
	w   io.Writer
	err error
}

func (p *promW) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the HELP/TYPE preamble of one metric family.
func (p *promW) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line; labels is the pre-rendered label set
// without braces ("" for none).
func (p *promW) sample(name, labels string, v float64) {
	if labels == "" {
		p.printf("%s %s\n", name, promFloat(v))
		return
	}
	p.printf("%s{%s} %s\n", name, labels, promFloat(v))
}

// histogram emits one algorithm's series of a histogram family:
// cumulative _bucket samples (le ascending, +Inf last), then _sum and
// _count.
func (p *promW) histogram(name, labels string, h HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		p.printf("%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, promFloat(bound), cum)
	}
	p.printf("%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count)
	p.sample(name+"_sum", labels, h.Sum)
	p.printf("%s_count{%s} %d\n", name, labels, h.Count)
}

func algoLabel(algo string) string {
	// promEscape already produces exposition-format escapes; quoting
	// with %q would double-escape.
	return `algo="` + promEscape(algo) + `"`
}

// registryHistogram describes one per-algorithm histogram family.
type registryHistogram struct {
	name string
	help string
	get  func(AlgoSnapshot) HistogramSnapshot
}

var registryHistograms = []registryHistogram{
	{
		name: "distjoin_query_latency_seconds",
		help: "Per-query wall-clock latency, by algorithm.",
		get:  func(a AlgoSnapshot) HistogramSnapshot { return a.Latency },
	},
	{
		name: "distjoin_query_dist_calcs",
		help: "Distance computations per query (axis + real), by algorithm.",
		get:  func(a AlgoSnapshot) HistogramSnapshot { return a.DistCalcs },
	},
	{
		name: "distjoin_query_queue_inserts",
		help: "Priority-queue insertions per query (all queues), by algorithm.",
		get:  func(a AlgoSnapshot) HistogramSnapshot { return a.QueueInserts },
	},
	{
		name: "distjoin_edmax_estimate_ratio",
		help: "eDmax estimator accuracy: estimated cutoff divided by the realized k-th distance (1.0 = exact, <1 underestimate forcing compensation, >1 overestimate; paper Eq. 3-5).",
		get:  func(a AlgoSnapshot) HistogramSnapshot { return a.EstimateRatio },
	},
}

// WriteProm writes the registry snapshot as Prometheus text
// exposition. Safe on a nil registry (exports only the process
// gauges, all zero).
func (r *Registry) WriteProm(w io.Writer) error {
	return writeProm(w, r.Snapshot())
}

func writeProm(w io.Writer, s Snapshot) error {
	p := &promW{w: w}

	p.header("distjoin_registry_uptime_seconds", "Seconds since the observability registry was created.", "gauge")
	p.sample("distjoin_registry_uptime_seconds", "", s.UptimeSeconds)
	p.header("distjoin_inflight_queries", "Number of queries currently executing.", "gauge")
	p.sample("distjoin_inflight_queries", "", float64(len(s.InFlight)))

	if len(s.Algos) > 0 {
		p.header("distjoin_queries_total", "Completed queries, by algorithm.", "counter")
		for _, a := range s.Algos {
			p.sample("distjoin_queries_total", algoLabel(a.Algo), float64(a.Queries))
		}
		p.header("distjoin_query_errors_total", "Completed queries that returned an error, by algorithm.", "counter")
		for _, a := range s.Algos {
			p.sample("distjoin_query_errors_total", algoLabel(a.Algo), float64(a.Errors))
		}

		// The per-query Collector families, aggregated per algorithm.
		// trace.PromFields enumerates by reflection, so a counter added
		// to metrics.Collector automatically appears here too.
		for _, f := range trace.PromFields() {
			typ := "counter"
			if f.Gauge {
				typ = "gauge"
			}
			p.header(f.Name, f.Help+" Aggregated across completed queries, by algorithm.", typ)
			for _, a := range s.Algos {
				a := a
				p.sample(f.Name, algoLabel(a.Algo), f.Value(&a.Stats))
			}
		}

		for _, rh := range registryHistograms {
			p.header(rh.name, rh.help, "histogram")
			for _, a := range s.Algos {
				p.histogram(rh.name, algoLabel(a.Algo), rh.get(a))
			}
		}

		p.header("distjoin_edmax_corrections_total",
			"eDmax estimates recorded, by algorithm and correction mode (initial = Eq. 3, arithmetic = Eq. 4, geometric = Eq. 5, override = caller-supplied).",
			"counter")
		for _, a := range s.Algos {
			modes := make([]string, 0, len(a.Corrections))
			for m := range a.Corrections {
				modes = append(modes, m)
			}
			sort.Strings(modes)
			for _, m := range modes {
				p.sample("distjoin_edmax_corrections_total",
					algoLabel(a.Algo)+`,mode="`+promEscape(m)+`"`,
					float64(a.Corrections[m]))
			}
		}
		p.header("distjoin_edmax_underestimates_total",
			"eDmax estimates that undershot the realized cutoff (compensation territory), by algorithm.", "counter")
		for _, a := range s.Algos {
			p.sample("distjoin_edmax_underestimates_total", algoLabel(a.Algo), float64(a.Underestimates))
		}
		p.header("distjoin_edmax_overestimates_total",
			"eDmax estimates at or above the realized cutoff, by algorithm.", "counter")
		for _, a := range s.Algos {
			p.sample("distjoin_edmax_overestimates_total", algoLabel(a.Algo), float64(a.Overestimates))
		}
	}
	if s.Serving != nil {
		writeServingProm(p, s.Serving)
	}
	return p.err
}
