package obsrv

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ServingMetrics aggregates the HTTP serving layer's telemetry —
// per-family request counts and latency distributions, the admission
// queue's wait distribution, shed/drain/cursor counters, and
// point-in-time gauges — into the same Prometheus surface the query
// registry exports. The serving layer obtains one from
// Registry.Serving and feeds it through the public facade, keeping
// every distjoin_serving_* family literal inside this package where
// the promdrift contract can see it.
//
// A nil *ServingMetrics is a valid no-op sink, the same discipline as
// the Registry itself, so a server constructed without a registry
// costs nothing. All methods are safe for concurrent use.
type ServingMetrics struct {
	mu       sync.Mutex
	families map[string]*servingFamily
	names    []string // sorted keys of families, maintained on insert

	admissionWait *Histogram

	shed             uint64
	rejectedDraining uint64
	deadlineExceeded uint64
	clientGone       uint64
	failed           uint64
	slowQueries      uint64
	cursorsOpened    uint64
	cursorsExpired   uint64

	// gauges is the serving layer's point-in-time state provider,
	// installed with SetGauges. It is invoked with no obsrv lock held:
	// the provider reads the server's own admission gate and lifecycle
	// state, and holding a registry mutex across foreign locks is
	// exactly what the lockheld analyzer forbids.
	gauges atomic.Pointer[func() ServingGauges]
}

// servingFamily is one request family's aggregate.
type servingFamily struct {
	requests uint64
	latency  *Histogram
}

// waitBuckets spans 1µs..~18m of admission wait with factor-4
// resolution — queue waits are usually microseconds (uncontended
// channel receive) but stretch to the full deadline under overload.
var waitBuckets = ExpBuckets(1e-6, 4, 16)

func newServingMetrics() *ServingMetrics {
	return &ServingMetrics{
		families:      make(map[string]*servingFamily),
		admissionWait: NewHistogram(waitBuckets),
	}
}

// ServingGauges is the point-in-time serving state exported as gauge
// families, supplied on demand by the provider given to SetGauges.
type ServingGauges struct {
	// InFlight is the number of queries currently executing.
	InFlight int `json:"in_flight"`
	// Queued is the number of admitted requests waiting for a slot.
	Queued int `json:"queued"`
	// OpenCursors is the number of live incremental cursors.
	OpenCursors int `json:"open_cursors"`
	// Draining reports whether the server has begun graceful shutdown.
	Draining bool `json:"draining"`
}

// SetGauges installs the serving layer's gauge provider. The provider
// must be safe for concurrent use; it is called once per snapshot,
// never under an obsrv lock. A nil receiver no-ops.
func (m *ServingMetrics) SetGauges(provider func() ServingGauges) {
	if m == nil || provider == nil {
		return
	}
	m.gauges.Store(&provider)
}

// family returns (creating if needed) the aggregate for the named
// request family. Callers hold m.mu.
func (m *ServingMetrics) family(name string) *servingFamily {
	f := m.families[name]
	if f == nil {
		f = &servingFamily{latency: NewHistogram(latencyBuckets)}
		m.families[name] = f
		i := sort.SearchStrings(m.names, name)
		m.names = append(m.names, "")
		copy(m.names[i+1:], m.names[i:])
		m.names[i] = name
	}
	return f
}

// ObserveRequest records one served request of the given family: its
// total latency (admission wait + execution) and, separately, the time
// it spent waiting for an admission slot.
func (m *ServingMetrics) ObserveRequest(family string, latency, admissionWait time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	f := m.family(family)
	f.requests++
	f.latency.Observe(latency.Seconds())
	m.admissionWait.Observe(admissionWait.Seconds())
	m.mu.Unlock()
}

// The Inc* methods are nil-safe: each guards the receiver before
// taking a field address (evaluating &m.field on a nil receiver would
// itself panic, so the guard cannot live inside inc alone).

// IncShed counts one request rejected with 429 (admission queue full).
func (m *ServingMetrics) IncShed() {
	if m != nil {
		m.inc(&m.shed)
	}
}

// IncRejectedDraining counts one request rejected with 503 because the
// server was draining.
func (m *ServingMetrics) IncRejectedDraining() {
	if m != nil {
		m.inc(&m.rejectedDraining)
	}
}

// IncDeadlineExceeded counts one request that ran out of deadline
// budget (504).
func (m *ServingMetrics) IncDeadlineExceeded() {
	if m != nil {
		m.inc(&m.deadlineExceeded)
	}
}

// IncClientGone counts one request abandoned by its client (499).
func (m *ServingMetrics) IncClientGone() {
	if m != nil {
		m.inc(&m.clientGone)
	}
}

// IncFailed counts one request that failed with a server-side error.
func (m *ServingMetrics) IncFailed() {
	if m != nil {
		m.inc(&m.failed)
	}
}

// IncSlowQuery counts one request whose latency exceeded the
// configured slow-query threshold.
func (m *ServingMetrics) IncSlowQuery() {
	if m != nil {
		m.inc(&m.slowQueries)
	}
}

// IncCursorOpened counts one incremental cursor opened.
func (m *ServingMetrics) IncCursorOpened() {
	if m != nil {
		m.inc(&m.cursorsOpened)
	}
}

// IncCursorExpired counts one incremental cursor reaped by the idle
// sweep (as opposed to an explicit close).
func (m *ServingMetrics) IncCursorExpired() {
	if m != nil {
		m.inc(&m.cursorsExpired)
	}
}

func (m *ServingMetrics) inc(counter *uint64) {
	m.mu.Lock()
	*counter++
	m.mu.Unlock()
}

// ServingFamilySnapshot is one request family's aggregate as rendered
// by the exporters.
type ServingFamilySnapshot struct {
	Family   string            `json:"family"`
	Requests uint64            `json:"requests"`
	Latency  HistogramSnapshot `json:"latency_seconds"`
}

// ServingSnapshot is an immutable copy of the serving telemetry,
// embedded in the registry Snapshot when a serving layer is attached.
type ServingSnapshot struct {
	Families      []ServingFamilySnapshot `json:"families"`
	AdmissionWait HistogramSnapshot       `json:"admission_wait_seconds"`

	Shed             uint64 `json:"shed"`
	RejectedDraining uint64 `json:"rejected_draining"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	ClientGone       uint64 `json:"client_gone"`
	Failed           uint64 `json:"failed"`
	SlowQueries      uint64 `json:"slow_queries"`
	CursorsOpened    uint64 `json:"cursors_opened"`
	CursorsExpired   uint64 `json:"cursors_expired"`

	Gauges ServingGauges `json:"gauges"`
}

// Snapshot copies the serving telemetry. The gauge provider runs
// before the metrics mutex is taken, so a provider reading the
// server's own locks can never deadlock against a concurrent
// ObserveRequest. Safe on a nil receiver (returns an empty snapshot).
func (m *ServingMetrics) Snapshot() ServingSnapshot {
	if m == nil {
		return ServingSnapshot{}
	}
	var g ServingGauges
	if p := m.gauges.Load(); p != nil {
		g = (*p)()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := ServingSnapshot{
		Families:         make([]ServingFamilySnapshot, 0, len(m.names)),
		AdmissionWait:    m.admissionWait.Snapshot(),
		Shed:             m.shed,
		RejectedDraining: m.rejectedDraining,
		DeadlineExceeded: m.deadlineExceeded,
		ClientGone:       m.clientGone,
		Failed:           m.failed,
		SlowQueries:      m.slowQueries,
		CursorsOpened:    m.cursorsOpened,
		CursorsExpired:   m.cursorsExpired,
		Gauges:           g,
	}
	for _, name := range m.names {
		f := m.families[name]
		s.Families = append(s.Families, ServingFamilySnapshot{
			Family:   name,
			Requests: f.requests,
			Latency:  f.latency.Snapshot(),
		})
	}
	return s
}

// familyLabel renders the {family="..."} label set of the serving
// families.
func familyLabel(family string) string {
	return `family="` + promEscape(family) + `"`
}

// writeServingProm appends the distjoin_serving_* families to the
// exposition. Called by writeProm when the snapshot carries serving
// telemetry.
func writeServingProm(p *promW, s *ServingSnapshot) {
	p.header("distjoin_serving_requests_total", "HTTP requests served, by request family.", "counter")
	for _, f := range s.Families {
		p.sample("distjoin_serving_requests_total", familyLabel(f.Family), float64(f.Requests))
	}
	p.header("distjoin_serving_request_latency_seconds", "End-to-end request latency (admission wait + execution), by request family.", "histogram")
	for _, f := range s.Families {
		p.histogram("distjoin_serving_request_latency_seconds", familyLabel(f.Family), f.Latency)
	}
	p.header("distjoin_serving_admission_wait_seconds", "Time requests spent waiting for an admission slot.", "histogram")
	p.histogram("distjoin_serving_admission_wait_seconds", "", s.AdmissionWait)

	p.header("distjoin_serving_shed_total", "Requests rejected with 429 because the admission queue was full.", "counter")
	p.sample("distjoin_serving_shed_total", "", float64(s.Shed))
	p.header("distjoin_serving_rejected_draining_total", "Requests rejected with 503 during graceful drain.", "counter")
	p.sample("distjoin_serving_rejected_draining_total", "", float64(s.RejectedDraining))
	p.header("distjoin_serving_deadline_exceeded_total", "Requests that exceeded their deadline budget (504).", "counter")
	p.sample("distjoin_serving_deadline_exceeded_total", "", float64(s.DeadlineExceeded))
	p.header("distjoin_serving_client_gone_total", "Requests abandoned by their client before completion (499).", "counter")
	p.sample("distjoin_serving_client_gone_total", "", float64(s.ClientGone))
	p.header("distjoin_serving_failed_total", "Requests that failed with a server-side error.", "counter")
	p.sample("distjoin_serving_failed_total", "", float64(s.Failed))
	p.header("distjoin_serving_slow_queries_total", "Requests slower than the configured slow-query threshold.", "counter")
	p.sample("distjoin_serving_slow_queries_total", "", float64(s.SlowQueries))
	p.header("distjoin_serving_cursors_opened_total", "Incremental cursors opened.", "counter")
	p.sample("distjoin_serving_cursors_opened_total", "", float64(s.CursorsOpened))
	p.header("distjoin_serving_cursors_expired_total", "Incremental cursors reaped by the idle sweep.", "counter")
	p.sample("distjoin_serving_cursors_expired_total", "", float64(s.CursorsExpired))

	p.header("distjoin_serving_inflight_queries", "Queries currently executing in the serving layer.", "gauge")
	p.sample("distjoin_serving_inflight_queries", "", float64(s.Gauges.InFlight))
	p.header("distjoin_serving_queued_requests", "Admitted requests waiting for an execution slot.", "gauge")
	p.sample("distjoin_serving_queued_requests", "", float64(s.Gauges.Queued))
	p.header("distjoin_serving_open_cursors", "Live incremental cursors.", "gauge")
	p.sample("distjoin_serving_open_cursors", "", float64(s.Gauges.OpenCursors))
	draining := 0.0
	if s.Gauges.Draining {
		draining = 1
	}
	p.header("distjoin_serving_draining", "1 while the server is draining for graceful shutdown, else 0.", "gauge")
	p.sample("distjoin_serving_draining", "", draining)
}
