package obsrv

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"distjoin/internal/metrics"
	"distjoin/internal/trace"
)

// Strict lint of the Prometheus text exposition format (version 0.0.4)
// as emitted by Registry.WriteProm and trace.WriteMetricsProm: every
// family must be announced by a `# HELP` line immediately followed by
// `# TYPE`, all samples of a family must be contiguous, metric and
// label names must match the exposition charsets, label values must be
// correctly escaped, histogram `le` buckets must be ascending and
// cumulative with the `+Inf` bucket equal to `_count`, and no series
// (name + label set) may repeat.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	helpRe       = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	typeRe       = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

type promFamily struct {
	name    string
	typ     string
	samples []promSample
}

// parsePromStrict parses text, failing on any lint violation.
func parsePromStrict(t *testing.T, text string) []promFamily {
	t.Helper()
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "" {
		t.Fatalf("exposition does not end with a newline")
	}
	lines = lines[:len(lines)-1]

	var fams []promFamily
	seenFamily := map[string]bool{}
	seenSeries := map[string]int{}
	var cur *promFamily
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		lineNo := i + 1
		switch {
		case line == "":
			t.Fatalf("line %d: blank line in exposition", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			m := helpRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed HELP line %q", lineNo, line)
			}
			name := m[1]
			if seenFamily[name] {
				t.Fatalf("line %d: family %q announced twice", lineNo, name)
			}
			seenFamily[name] = true
			if i+1 >= len(lines) {
				t.Fatalf("line %d: HELP not followed by TYPE", lineNo)
			}
			tm := typeRe.FindStringSubmatch(lines[i+1])
			if tm == nil {
				t.Fatalf("line %d: HELP for %q not followed by a valid TYPE line (got %q)", lineNo, name, lines[i+1])
			}
			if tm[1] != name {
				t.Fatalf("line %d: TYPE names %q, HELP names %q", lineNo+1, tm[1], name)
			}
			i++ // consume TYPE
			fams = append(fams, promFamily{name: name, typ: tm[2]})
			cur = &fams[len(fams)-1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		default:
			s, err := parseSampleLine(line)
			if err != nil {
				t.Fatalf("line %d: %v", lineNo, err)
			}
			s.line = lineNo
			if cur == nil {
				t.Fatalf("line %d: sample %q before any HELP/TYPE", lineNo, line)
			}
			if !sampleBelongs(s.name, cur) {
				t.Fatalf("line %d: sample %q outside its family (current family %q) — families must be contiguous", lineNo, s.name, cur.name)
			}
			key := s.name + "|" + canonicalLabels(s.labels)
			if prev, dup := seenSeries[key]; dup {
				t.Fatalf("line %d: duplicate series %q (first at line %d)", lineNo, key, prev)
			}
			seenSeries[key] = lineNo
			cur.samples = append(cur.samples, s)
		}
	}
	for _, f := range fams {
		if len(f.samples) == 0 {
			t.Fatalf("family %q has HELP/TYPE but no samples", f.name)
		}
		if f.typ == "histogram" {
			lintHistogramFamily(t, f)
		}
	}
	return fams
}

func sampleBelongs(sample string, f *promFamily) bool {
	if sample == f.name {
		return true
	}
	if f.typ == "histogram" {
		return sample == f.name+"_bucket" || sample == f.name+"_sum" || sample == f.name+"_count"
	}
	return false
}

func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	// insertion sort; tiny maps
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// parseSampleLine parses `name{label="value",...} value` strictly.
func parseSampleLine(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else {
		nameEnd = strings.IndexByte(rest, ' ')
		if nameEnd < 0 {
			return s, fmt.Errorf("no value separator in %q", line)
		}
	}
	s.name = rest[:nameEnd]
	if !metricNameRe.MatchString(s.name) {
		return s, fmt.Errorf("invalid metric name %q", s.name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		end, err := parseLabels(rest, s.labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	if !strings.HasPrefix(rest, " ") {
		return s, fmt.Errorf("missing single-space separator before value in %q", line)
	}
	valStr := rest[1:]
	if valStr == "" || strings.ContainsAny(valStr, " \t") {
		return s, fmt.Errorf("malformed value %q", valStr)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("unparsable value %q: %v", valStr, err)
	}
	s.value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block starting at rest[0] == '{',
// returning the index just past the closing brace.
func parseLabels(rest string, out map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(rest) {
			return 0, errors.New("unterminated label block")
		}
		if rest[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '=' in %q", rest[i:])
		}
		name := rest[i : i+eq]
		if !labelNameRe.MatchString(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return 0, fmt.Errorf("label %q value not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return 0, fmt.Errorf("unterminated label value for %q", name)
			}
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return 0, errors.New("dangling escape")
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("invalid escape \\%c in label %q", rest[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			if c == '\n' {
				return 0, errors.New("raw newline in label value")
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val.String()
		if i < len(rest) && rest[i] == ',' {
			i++
		}
	}
}

// lintHistogramFamily checks, per label set (minus `le`): buckets
// ascending by le, cumulative counts nondecreasing, a final +Inf
// bucket equal to the _count sample.
func lintHistogramFamily(t *testing.T, f promFamily) {
	t.Helper()
	type series struct {
		les    []float64
		counts []float64
		sum    *float64
		count  *float64
	}
	bySeries := map[string]*series{}
	get := func(labels map[string]string) *series {
		rest := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := canonicalLabels(rest)
		sr := bySeries[key]
		if sr == nil {
			sr = &series{}
			bySeries[key] = sr
		}
		return sr
	}
	for _, s := range f.samples {
		switch s.name {
		case f.name + "_bucket":
			leStr, ok := s.labels["le"]
			if !ok {
				t.Fatalf("line %d: %s_bucket without le label", s.line, f.name)
			}
			var le float64
			if leStr == "+Inf" {
				le = math.Inf(1)
			} else {
				v, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					t.Fatalf("line %d: unparsable le %q", s.line, leStr)
				}
				le = v
			}
			sr := get(s.labels)
			sr.les = append(sr.les, le)
			sr.counts = append(sr.counts, s.value)
		case f.name + "_sum":
			v := s.value
			get(s.labels).sum = &v
		case f.name + "_count":
			v := s.value
			get(s.labels).count = &v
		default:
			t.Fatalf("line %d: unexpected sample %q in histogram family %q", s.line, s.name, f.name)
		}
	}
	for key, sr := range bySeries {
		if len(sr.les) == 0 {
			t.Fatalf("histogram %q{%s} has no buckets", f.name, key)
		}
		if sr.sum == nil || sr.count == nil {
			t.Fatalf("histogram %q{%s} missing _sum or _count", f.name, key)
		}
		for i := 1; i < len(sr.les); i++ {
			if !(sr.les[i] > sr.les[i-1]) {
				t.Fatalf("histogram %q{%s}: le not ascending at %v", f.name, key, sr.les)
			}
			if sr.counts[i] < sr.counts[i-1] {
				t.Fatalf("histogram %q{%s}: bucket counts not cumulative: %v", f.name, key, sr.counts)
			}
		}
		if !math.IsInf(sr.les[len(sr.les)-1], 1) {
			t.Fatalf("histogram %q{%s}: last bucket le=%v, want +Inf", f.name, key, sr.les[len(sr.les)-1])
		}
		if got := sr.counts[len(sr.counts)-1]; got != *sr.count {
			t.Fatalf("histogram %q{%s}: +Inf bucket %v != _count %v", f.name, key, got, *sr.count)
		}
	}
}

// populatedRegistry builds a registry with live and completed queries
// across several algorithms, exercising every exported family —
// including a label value that needs escaping.
func populatedRegistry() *Registry {
	r := NewRegistry()
	mc := &metrics.Collector{}
	mc.AddRealDist(123)
	mc.AddAxisDist(45)
	mc.AddMainQueueInsert(67)
	mc.NodeAccess(true, 0)

	q := r.Begin("AM-KDJ", 100)
	q.SetStage("aggressive")
	q.SetEDmax(1.25)
	q.RecordEstimate(1.25, 1.5, ModeInitial)
	q.End(mc, nil)

	q2 := r.Begin("AM-IDJ", 1000)
	q2.RecordEstimate(2.0, 1.0, ModeArithmetic)
	q2.RecordEstimate(0.5, 1.0, ModeGeometric)
	q2.End(mc, errors.New("boom"))

	// Label escaping: algorithm names are caller-controlled strings.
	q3 := r.Begin(`evil"algo\with`+"\n", 1)
	q3.End(nil, nil)

	// One query left in flight.
	live := r.Begin("B-KDJ", 10)
	live.SetStage("sweep")
	live.SetQueueDepth(10, 5, 1)

	// Serving-layer families, including a family label that needs
	// escaping and a gauge provider so every distjoin_serving_* family
	// gets samples.
	sm := r.Serving()
	sm.ObserveRequest("join/k", 5*time.Millisecond, 120*time.Microsecond)
	sm.ObserveRequest("incremental/open", time.Millisecond, 0)
	sm.ObserveRequest(`odd"family`+"\n", time.Second, time.Millisecond)
	sm.IncShed()
	sm.IncRejectedDraining()
	sm.IncDeadlineExceeded()
	sm.IncClientGone()
	sm.IncFailed()
	sm.IncSlowQuery()
	sm.IncCursorOpened()
	sm.IncCursorExpired()
	sm.SetGauges(func() ServingGauges {
		return ServingGauges{InFlight: 2, Queued: 1, OpenCursors: 3, Draining: true}
	})
	return r
}

func TestPromExpositionLint(t *testing.T) {
	var buf bytes.Buffer
	if err := populatedRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parsePromStrict(t, buf.String())

	want := map[string]string{
		"distjoin_registry_uptime_seconds":    "gauge",
		"distjoin_inflight_queries":           "gauge",
		"distjoin_queries_total":              "counter",
		"distjoin_query_errors_total":         "counter",
		"distjoin_query_latency_seconds":      "histogram",
		"distjoin_query_dist_calcs":           "histogram",
		"distjoin_query_queue_inserts":        "histogram",
		"distjoin_edmax_estimate_ratio":       "histogram",
		"distjoin_edmax_corrections_total":    "counter",
		"distjoin_edmax_underestimates_total": "counter",
		"distjoin_edmax_overestimates_total":  "counter",
		"distjoin_real_dist_calcs_total":      "counter", // a Collector family, via trace.PromFields
		"distjoin_dist_calcs_total":           "counter", // a derived family

		"distjoin_serving_requests_total":          "counter",
		"distjoin_serving_request_latency_seconds": "histogram",
		"distjoin_serving_admission_wait_seconds":  "histogram",
		"distjoin_serving_shed_total":              "counter",
		"distjoin_serving_rejected_draining_total": "counter",
		"distjoin_serving_deadline_exceeded_total": "counter",
		"distjoin_serving_client_gone_total":       "counter",
		"distjoin_serving_failed_total":            "counter",
		"distjoin_serving_slow_queries_total":      "counter",
		"distjoin_serving_cursors_opened_total":    "counter",
		"distjoin_serving_cursors_expired_total":   "counter",
		"distjoin_serving_inflight_queries":        "gauge",
		"distjoin_serving_queued_requests":         "gauge",
		"distjoin_serving_open_cursors":            "gauge",
		"distjoin_serving_draining":                "gauge",
	}
	got := map[string]string{}
	for _, f := range fams {
		got[f.name] = f.typ
	}
	for name, typ := range want {
		if got[name] != typ {
			t.Errorf("family %s: type %q, want %q (present: %v)", name, got[name], typ, got[name] != "")
		}
	}

	// Every trace.PromFields family must appear with per-algo labels.
	for _, pf := range trace.PromFields() {
		if _, ok := got[pf.Name]; !ok {
			t.Errorf("collector family %s missing from registry exposition", pf.Name)
		}
	}

	// The escaped algo label must round-trip through the strict parser.
	found := false
	for _, f := range fams {
		if f.name != "distjoin_queries_total" {
			continue
		}
		for _, s := range f.samples {
			if s.labels["algo"] == "evil\"algo\\with\n" {
				found = true
			}
		}
	}
	if !found {
		t.Error("escaped algo label did not survive the exposition round-trip")
	}
}

// TestPerQueryPromExpositionLint runs the same strict lint over the
// PR 2 per-query exporter, so both exposition surfaces stay valid.
func TestPerQueryPromExpositionLint(t *testing.T) {
	mc := &metrics.Collector{}
	mc.AddRealDist(5)
	mc.BufferAccess(true, 0)
	mc.BufferAccess(false, 1)
	var buf bytes.Buffer
	if err := trace.WriteMetricsProm(&buf, mc); err != nil {
		t.Fatal(err)
	}
	parsePromStrict(t, buf.String())
}
