package obsrv

import (
	"math"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("got %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d: got %v, want %v", i, b[i], want[i])
		}
	}
	for _, bad := range [](func()){
		func() { ExpBuckets(0, 2, 4) },
		func() { ExpBuckets(1, 1, 4) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid ExpBuckets did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramObserveAndCounts(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000, math.NaN()} {
		h.Observe(v)
	}
	// NaN dropped: 5 observations.
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if want := 0.5 + 1 + 2 + 50 + 1000; h.Sum() != want {
		t.Fatalf("Sum = %v, want %v", h.Sum(), want)
	}
	s := h.Snapshot()
	wantCounts := []uint64{2, 1, 1, 1} // le=1: {0.5,1}; le=10: {2}; le=100: {50}; +Inf: {1000}
	for i, c := range wantCounts {
		if s.Counts[i] != c {
			t.Fatalf("bucket %d count = %d, want %d (counts %v)", i, s.Counts[i], c, s.Counts)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10)) // 1,2,4,...,512
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	if q := h.Quantile(0.5); q != 64 {
		// rank 50 → observation 49 lands in bucket le=64.
		t.Errorf("p50 = %v, want 64", q)
	}
	if q := h.Quantile(1); q != 128 {
		t.Errorf("p100 = %v, want 128 (max observation 99 <= 128)", q)
	}
	if q := h.Quantile(0.01); q != 1 {
		t.Errorf("p1 = %v, want 1", q)
	}
	// Overflow bucket reports +Inf.
	h.Observe(1e9)
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Errorf("quantile in overflow bucket = %v, want +Inf", q)
	}
	// Degenerate inputs.
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	if q := h.Snapshot().Quantile(0); q != 0 {
		t.Errorf("q=0 quantile = %v, want 0", q)
	}
}

func TestHistogramSnapshotIsDeepCopy(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	s := h.Snapshot()
	h.Observe(0.5)
	if s.Counts[0] != 1 {
		t.Fatalf("snapshot mutated by later Observe: %v", s.Counts)
	}
	s.Counts[0] = 99
	if h.Snapshot().Counts[0] != 2 {
		t.Fatal("mutating a snapshot reached the live histogram")
	}
}

func TestNewHistogramPanicsOnUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}
