package obsrv

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServingMetricsNilSafe: a server without a registry holds a nil
// *ServingMetrics; every method must no-op rather than panic, matching
// the Registry's own nil discipline.
func TestServingMetricsNilSafe(t *testing.T) {
	var m *ServingMetrics
	m.ObserveRequest("join/k", time.Millisecond, time.Microsecond)
	m.IncShed()
	m.IncRejectedDraining()
	m.IncDeadlineExceeded()
	m.IncClientGone()
	m.IncFailed()
	m.IncSlowQuery()
	m.IncCursorOpened()
	m.IncCursorExpired()
	m.SetGauges(func() ServingGauges { return ServingGauges{InFlight: 1} })
	if s := m.Snapshot(); len(s.Families) != 0 || s.Shed != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}

	// A nil Registry hands out a nil ServingMetrics.
	var r *Registry
	if r.Serving() != nil {
		t.Fatal("nil Registry.Serving() must be nil")
	}
}

// TestServingSnapshot: counters, per-family aggregates (sorted), and
// gauges all land in the snapshot; the gauge provider runs outside the
// metrics lock (a provider that itself touches the metrics must not
// deadlock).
func TestServingSnapshot(t *testing.T) {
	r := NewRegistry()
	m := r.Serving()
	if m == nil {
		t.Fatal("Registry.Serving() returned nil")
	}
	if again := r.Serving(); again != m {
		t.Fatal("Registry.Serving() not idempotent")
	}

	m.ObserveRequest("join/k", 10*time.Millisecond, time.Millisecond)
	m.ObserveRequest("join/k", 20*time.Millisecond, time.Millisecond)
	m.ObserveRequest("incremental/open", time.Millisecond, 0)
	m.IncShed()
	m.IncShed()
	m.IncCursorOpened()
	m.SetGauges(func() ServingGauges {
		// Reading the metrics from inside the provider must not
		// deadlock: Snapshot invokes it before taking the lock.
		m.IncFailed()
		return ServingGauges{InFlight: 3, Queued: 2, OpenCursors: 1, Draining: true}
	})

	s := m.Snapshot()
	if len(s.Families) != 2 {
		t.Fatalf("%d families, want 2", len(s.Families))
	}
	if s.Families[0].Family != "incremental/open" || s.Families[1].Family != "join/k" {
		t.Fatalf("families not sorted: %q, %q", s.Families[0].Family, s.Families[1].Family)
	}
	if s.Families[1].Requests != 2 {
		t.Fatalf("join/k requests = %d, want 2", s.Families[1].Requests)
	}
	if s.Shed != 2 || s.CursorsOpened != 1 || s.Failed != 1 {
		t.Fatalf("counters shed=%d cursors=%d failed=%d, want 2/1/1", s.Shed, s.CursorsOpened, s.Failed)
	}
	if s.AdmissionWait.Count != 3 {
		t.Fatalf("admission-wait count %d, want 3", s.AdmissionWait.Count)
	}
	if !s.Gauges.Draining || s.Gauges.InFlight != 3 {
		t.Fatalf("gauges %+v not from provider", s.Gauges)
	}

	// The registry snapshot embeds the serving block once attached.
	reg := r.Snapshot()
	if reg.Serving == nil {
		t.Fatal("registry snapshot has no serving block after Serving()")
	}
	if reg.Serving.Shed != 2 {
		t.Fatalf("embedded serving shed = %d, want 2", reg.Serving.Shed)
	}

	// And the exposition carries the serving families.
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"distjoin_serving_requests_total",
		"distjoin_serving_admission_wait_seconds_count",
		"distjoin_serving_shed_total 2",
		"distjoin_serving_draining 1",
	} {
		if !strings.Contains(b.String(), fam) {
			t.Errorf("exposition missing %q", fam)
		}
	}
}

// TestQueryIDInInspector: a query begun with a serving-minted ID
// carries it into the /queries in-flight snapshot, tying the
// inspector to response headers and request logs.
func TestQueryIDInInspector(t *testing.T) {
	r := NewRegistry()
	q := r.BeginNamed("AM-KDJ", 10, "3fa27b91-42")
	defer q.End(nil, nil)
	anon := r.Begin("B-KDJ", 5) // no serving layer: no ID
	defer anon.End(nil, nil)

	snap := r.Snapshot()
	byAlgo := map[string]string{}
	for _, qs := range snap.InFlight {
		byAlgo[qs.Algo] = qs.QueryID
	}
	if byAlgo["AM-KDJ"] != "3fa27b91-42" {
		t.Fatalf("inspector query_id %q, want 3fa27b91-42", byAlgo["AM-KDJ"])
	}
	if byAlgo["B-KDJ"] != "" {
		t.Fatalf("anonymous query leaked ID %q", byAlgo["B-KDJ"])
	}
}

// TestServingMetricsConcurrent drives every mutator alongside
// snapshots; run under -race this pins the locking discipline.
func TestServingMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	m := r.Serving()
	m.SetGauges(func() ServingGauges { return ServingGauges{InFlight: 1} })
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.ObserveRequest("join/k", time.Millisecond, time.Microsecond)
				m.IncShed()
				m.IncCursorOpened()
				m.IncSlowQuery()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = m.Snapshot()
		}
	}()
	wg.Wait()
	s := m.Snapshot()
	if s.Shed != 800 || s.Families[0].Requests != 800 {
		t.Fatalf("lost updates: shed=%d requests=%d, want 800/800", s.Shed, s.Families[0].Requests)
	}
}
