// Package obsrv is the process-level observability subsystem: a
// concurrency-safe Registry aggregates per-query metrics.Collector
// snapshots across every query a process runs — log-bucketed latency /
// distance-computation / queue-insertion histograms per algorithm,
// eDmax-estimator accuracy telemetry (estimated-vs-actual cutoff
// ratios, correction-equation usage), and a live table of in-flight
// queries — and an embeddable HTTP server (Handler / Serve) exposes it
// all as /metrics Prometheus text, /queries live-inspector JSON,
// /debug/vars, /debug/pprof/*, and /healthz.
//
// Where the per-query tracer of internal/trace answers "where did this
// one query spend its work", the registry answers the fleet questions
// a production service needs: what is p99 latency per algorithm, how
// often does the Eq. 3 estimate undershoot and force compensation, and
// what are the in-flight queries doing right now.
//
// # Cost model
//
// A nil *Registry — and the nil *Query handles it hands out — is a
// valid no-op sink: every method nil-checks its receiver and the hot
// progress hooks (SetEDmax, SetQueueDepth, SetStage) are atomic stores
// on a live handle, zero allocations on a nil one. This is the same
// discipline as join.Options.Trace, pinned by TestRegistryOffNoAllocs
// in internal/join.
//
// # Snapshot-then-render
//
// HTTP handlers never walk live registry state: they take a Snapshot
// (deep copies built under the registry mutex, reading in-flight
// handles only through atomics) and render from that, so a query
// finishing mid-render can never panic or tear a handler — enforced
// by the churn tests in server_test.go under -race.
package obsrv

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distjoin/internal/metrics"
)

// Correction-mode labels recorded with estimator accuracy samples.
// Initial is the closed-form Eq. 3 estimate; Arithmetic and Geometric
// name the Eq. 4 / Eq. 5 corrections; Override marks user-supplied
// cutoffs (Options.EDmax / EDmaxForK).
const (
	ModeInitial    = "initial"
	ModeArithmetic = "arithmetic"
	ModeGeometric  = "geometric"
	ModeOverride   = "override"
)

// Registry aggregates query observability process-wide. Construct
// with NewRegistry; a nil *Registry is a valid no-op sink (every
// method nil-checks), which is how library code threads an optional
// registry without call-site checks.
type Registry struct {
	start time.Time

	mu     sync.Mutex
	nextID uint64
	active map[uint64]*Query
	algos  map[string]*algoAgg
	names  []string // sorted keys of algos, maintained on insert

	// serving is the lazily created serving-layer telemetry, outside
	// r.mu so its own lock ordering stays independent of the query
	// aggregates.
	serving atomic.Pointer[ServingMetrics]
}

// algoAgg is the per-algorithm aggregate: completed-query counts, the
// summed Collector, and the distributions.
type algoAgg struct {
	queries uint64
	errors  uint64
	stats   metrics.Collector

	latency      *Histogram // query wall-clock latency, seconds
	distCalcs    *Histogram // distance computations per query
	queueInserts *Histogram // queue insertions per query

	// eDmax-estimator accuracy (paper §4.3, Eq. 3–5): the ratio
	// estimated/actual cutoff per recorded estimate, which correction
	// equation produced each estimate, and how often the estimator
	// under- vs over-shot. Compensation-pair counts ride along in
	// stats.CompQueueInserts / stats.CompensationStages.
	estRatio       *Histogram
	corrections    map[string]uint64
	underestimates uint64
	overestimates  uint64
}

// Histogram layouts. Latency spans 10µs..~3h; work counters span
// 1..~10^9 per query; the estimate ratio is centered on 1.0 with
// factor-2 resolution across [1/64, 64].
var (
	latencyBuckets = ExpBuckets(1e-5, 2, 31)
	workBuckets    = ExpBuckets(1, 4, 16)
	ratioBuckets   = ExpBuckets(1.0/64, 2, 13)
)

func newAlgoAgg() *algoAgg {
	return &algoAgg{
		latency:      NewHistogram(latencyBuckets),
		distCalcs:    NewHistogram(workBuckets),
		queueInserts: NewHistogram(workBuckets),
		estRatio:     NewHistogram(ratioBuckets),
		corrections:  make(map[string]uint64),
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:  time.Now(),
		active: make(map[uint64]*Query),
		algos:  make(map[string]*algoAgg),
	}
}

// agg returns (creating if needed) the aggregate for algo. Callers
// hold r.mu.
func (r *Registry) agg(algo string) *algoAgg {
	a := r.algos[algo]
	if a == nil {
		a = newAlgoAgg()
		r.algos[algo] = a
		i := sort.SearchStrings(r.names, algo)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = algo
	}
	return a
}

// Begin registers an in-flight query and returns its live handle. The
// handle's setters are safe to call from the query's coordinating
// goroutine while HTTP handlers snapshot concurrently. A nil registry
// returns a nil handle, whose methods all no-op.
func (r *Registry) Begin(algo string, k int) *Query {
	return r.BeginNamed(algo, k, "")
}

// BeginNamed is Begin with a caller-minted query ID (the serving
// layer's per-request identity) attached to the live handle, so the
// /queries inspector row, the response header, and the request log
// all correlate. An empty queryID behaves exactly like Begin.
func (r *Registry) BeginNamed(algo string, k int, queryID string) *Query {
	if r == nil {
		return nil
	}
	q := &Query{reg: r, algo: algo, k: k, queryID: queryID, started: time.Now()}
	q.edmax.Store(math.Float64bits(math.NaN()))
	r.mu.Lock()
	r.nextID++
	q.id = r.nextID
	r.active[q.id] = q
	r.mu.Unlock()
	return q
}

// Serving returns the registry's serving-layer telemetry, creating it
// on first use. A nil registry returns a nil *ServingMetrics, itself
// a valid no-op sink.
func (r *Registry) Serving() *ServingMetrics {
	if r == nil {
		return nil
	}
	if sm := r.serving.Load(); sm != nil {
		return sm
	}
	sm := newServingMetrics()
	if r.serving.CompareAndSwap(nil, sm) {
		return sm
	}
	return r.serving.Load()
}

// Uptime returns how long the registry has existed.
func (r *Registry) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// Reset drops every completed-query aggregate and restarts the uptime
// clock, leaving in-flight queries registered (their handles stay
// valid and they fold into the fresh aggregates when they End). It
// exists for repeated-run hygiene — a shared registry (the package
// facade's DefaultRegistry, a soak driver's per-process instance) can
// be returned to a pristine state between test iterations without
// racing live queries. A nil registry no-ops, like every other method.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.start = time.Now()
	r.algos = make(map[string]*algoAgg)
	r.names = nil
}

// InFlight returns the number of currently registered queries.
func (r *Registry) InFlight() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// Query is the live handle of one in-flight query. The owning
// goroutine mutates it through atomic setters; snapshot readers load
// the same atomics, so no lock sits on the query hot path. A nil
// *Query no-ops everywhere.
type Query struct {
	reg     *Registry
	id      uint64
	algo    string
	k       int
	queryID string // serving-layer request identity, "" for direct calls
	started time.Time

	stage    atomic.Pointer[string]
	edmax    atomic.Uint64 // Float64bits; NaN = not yet estimated
	queueMem atomic.Int64
	queueDsk atomic.Int64
	queueSeg atomic.Int64
	ended    atomic.Bool
}

// SetStage publishes the query's current stage label ("aggressive",
// "compensation", ...).
func (q *Query) SetStage(stage string) {
	if q == nil {
		return
	}
	// Copy into a fresh local before taking the address: taking &stage
	// directly would make the parameter escape and allocate even on the
	// nil-receiver fast path above.
	s := stage
	q.stage.Store(&s)
}

// SetEDmax publishes the currently active estimated cutoff.
func (q *Query) SetEDmax(eDmax float64) {
	if q == nil {
		return
	}
	q.edmax.Store(math.Float64bits(eDmax))
}

// SetQueueDepth publishes the main queue's population split: pairs in
// the in-memory heap, pairs in disk segments, and the segment count.
func (q *Query) SetQueueDepth(mem, disk, segments int) {
	if q == nil {
		return
	}
	q.queueMem.Store(int64(mem))
	q.queueDsk.Store(int64(disk))
	q.queueSeg.Store(int64(segments))
}

// RecordEstimate records one eDmax-accuracy sample: the estimated
// cutoff against the actually realized k-th distance, labeled with the
// correction mode that produced the estimate (ModeInitial,
// ModeArithmetic, ModeGeometric, ModeOverride, or an estimator-defined
// label). Samples with a non-positive or non-finite actual are
// dropped — a degenerate join (all pairs at distance 0) has no
// meaningful ratio.
func (q *Query) RecordEstimate(estimated, actual float64, mode string) {
	if q == nil || q.reg == nil {
		return
	}
	if !(actual > 0) || math.IsInf(actual, 0) ||
		math.IsNaN(estimated) || math.IsInf(estimated, 0) || estimated < 0 {
		return
	}
	ratio := estimated / actual
	r := q.reg
	r.mu.Lock()
	a := r.agg(q.algo)
	a.estRatio.Observe(ratio)
	a.corrections[mode]++
	if estimated < actual {
		a.underestimates++
	} else {
		a.overestimates++
	}
	r.mu.Unlock()
}

// End deregisters the query and folds its final counters into the
// per-algorithm aggregates. Idempotent: only the first call counts, so
// iterator Close paths may call it defensively. mc may be nil (only
// the latency histogram is then fed).
func (q *Query) End(mc *metrics.Collector, err error) {
	if q == nil || q.reg == nil || !q.ended.CompareAndSwap(false, true) {
		return
	}
	elapsed := time.Since(q.started)
	r := q.reg
	r.mu.Lock()
	delete(r.active, q.id)
	a := r.agg(q.algo)
	a.queries++
	if err != nil {
		a.errors++
	}
	(&a.stats).Add(mc)
	a.latency.Observe(elapsed.Seconds())
	a.distCalcs.Observe(float64(mc.DistCalcs()))
	a.queueInserts.Observe(float64(mc.QueueInserts()))
	r.mu.Unlock()
}

// QuerySnapshot is one in-flight query as rendered by /queries.
type QuerySnapshot struct {
	ID uint64 `json:"id"`
	// QueryID is the serving layer's request identity (the
	// X-Distjoin-Query-Id response header), empty for queries run
	// outside the HTTP server.
	QueryID string `json:"query_id,omitempty"`
	Algo    string `json:"algo"`
	K       int    `json:"k"`
	Stage   string `json:"stage,omitempty"`
	// EDmax is nil until the query publishes a cutoff (and for
	// algorithms that never estimate one); pointers keep NaN out of
	// the JSON encoder.
	EDmax          *float64 `json:"edmax,omitempty"`
	QueueMem       int64    `json:"queue_mem"`
	QueueDisk      int64    `json:"queue_disk"`
	QueueSegments  int64    `json:"queue_segments"`
	ElapsedSeconds float64  `json:"elapsed_seconds"`
}

// AlgoSnapshot is one algorithm's completed-query aggregate.
type AlgoSnapshot struct {
	Algo           string            `json:"algo"`
	Queries        uint64            `json:"queries"`
	Errors         uint64            `json:"errors"`
	Stats          metrics.Collector `json:"stats"`
	Latency        HistogramSnapshot `json:"latency_seconds"`
	DistCalcs      HistogramSnapshot `json:"dist_calcs"`
	QueueInserts   HistogramSnapshot `json:"queue_inserts"`
	EstimateRatio  HistogramSnapshot `json:"edmax_estimate_ratio"`
	Corrections    map[string]uint64 `json:"edmax_corrections"`
	Underestimates uint64            `json:"edmax_underestimates"`
	Overestimates  uint64            `json:"edmax_overestimates"`
}

// Snapshot is a consistent, immutable copy of the registry: everything
// the HTTP surface renders. Handlers build one and never touch live
// state afterwards.
type Snapshot struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	InFlight      []QuerySnapshot `json:"inflight"`
	Algos         []AlgoSnapshot  `json:"algos"`
	// Serving carries the HTTP serving layer's telemetry when one is
	// attached (Registry.Serving was called), nil otherwise.
	Serving *ServingSnapshot `json:"serving,omitempty"`
}

// Snapshot copies the registry's state. Safe on a nil registry
// (returns an empty snapshot) and safe to call concurrently with any
// number of queries beginning, progressing, and ending.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	// Serving telemetry snapshots outside r.mu: its gauge provider
	// reads the HTTP server's own state and must never run under a
	// registry lock.
	var serving *ServingSnapshot
	if sm := r.serving.Load(); sm != nil {
		ss := sm.Snapshot()
		serving = &ss
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Serving:       serving,
		UptimeSeconds: now.Sub(r.start).Seconds(),
		InFlight:      make([]QuerySnapshot, 0, len(r.active)),
		Algos:         make([]AlgoSnapshot, 0, len(r.names)),
	}
	for _, q := range r.active {
		qs := QuerySnapshot{
			ID:             q.id,
			QueryID:        q.queryID,
			Algo:           q.algo,
			K:              q.k,
			QueueMem:       q.queueMem.Load(),
			QueueDisk:      q.queueDsk.Load(),
			QueueSegments:  q.queueSeg.Load(),
			ElapsedSeconds: now.Sub(q.started).Seconds(),
		}
		if e := math.Float64frombits(q.edmax.Load()); !math.IsNaN(e) && !math.IsInf(e, 0) {
			e := e
			qs.EDmax = &e
		}
		if st := q.stage.Load(); st != nil {
			qs.Stage = *st
		}
		s.InFlight = append(s.InFlight, qs)
	}
	sort.Slice(s.InFlight, func(i, j int) bool { return s.InFlight[i].ID < s.InFlight[j].ID })
	for _, name := range r.names {
		a := r.algos[name]
		as := AlgoSnapshot{
			Algo:           name,
			Queries:        a.queries,
			Errors:         a.errors,
			Stats:          a.stats,
			Latency:        a.latency.Snapshot(),
			DistCalcs:      a.distCalcs.Snapshot(),
			QueueInserts:   a.queueInserts.Snapshot(),
			EstimateRatio:  a.estRatio.Snapshot(),
			Corrections:    make(map[string]uint64, len(a.corrections)),
			Underestimates: a.underestimates,
			Overestimates:  a.overestimates,
		}
		for m, n := range a.corrections {
			as.Corrections[m] = n
		}
		s.Algos = append(s.Algos, as)
	}
	return s
}
