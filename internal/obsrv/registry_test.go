package obsrv

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"distjoin/internal/metrics"
)

func TestNilRegistryAndNilQueryNoOp(t *testing.T) {
	var r *Registry
	q := r.Begin("AM-KDJ", 10)
	if q != nil {
		t.Fatalf("nil registry Begin returned non-nil handle %v", q)
	}
	// Every handle method must be callable on nil.
	q.SetStage("aggressive")
	q.SetEDmax(1.5)
	q.SetQueueDepth(1, 2, 3)
	q.RecordEstimate(1, 2, ModeInitial)
	q.End(nil, nil)
	if r.InFlight() != 0 || r.Uptime() != 0 {
		t.Fatal("nil registry reported non-zero state")
	}
	s := r.Snapshot()
	if len(s.InFlight) != 0 || len(s.Algos) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("nil registry WriteProm: %v", err)
	}
	if !strings.Contains(buf.String(), "distjoin_inflight_queries 0") {
		t.Fatalf("nil registry exposition missing gauges:\n%s", buf.String())
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry()
	q := r.Begin("AM-KDJ", 10)
	q.SetStage("aggressive")
	q.SetEDmax(2.5)
	q.SetQueueDepth(100, 40, 2)

	s := r.Snapshot()
	if len(s.InFlight) != 1 {
		t.Fatalf("in-flight = %d, want 1", len(s.InFlight))
	}
	qs := s.InFlight[0]
	if qs.Algo != "AM-KDJ" || qs.K != 10 || qs.Stage != "aggressive" {
		t.Fatalf("bad in-flight snapshot %+v", qs)
	}
	if qs.EDmax == nil || *qs.EDmax != 2.5 {
		t.Fatalf("EDmax = %v, want 2.5", qs.EDmax)
	}
	if qs.QueueMem != 100 || qs.QueueDisk != 40 || qs.QueueSegments != 2 {
		t.Fatalf("queue depth %+v", qs)
	}

	mc := &metrics.Collector{}
	mc.AddRealDist(7)
	mc.AddMainQueueInsert(3)
	q.End(mc, nil)
	q.End(mc, errors.New("double")) // idempotent: second call ignored

	s = r.Snapshot()
	if len(s.InFlight) != 0 {
		t.Fatalf("in-flight after End = %d, want 0", len(s.InFlight))
	}
	if len(s.Algos) != 1 {
		t.Fatalf("algos = %d, want 1", len(s.Algos))
	}
	a := s.Algos[0]
	if a.Algo != "AM-KDJ" || a.Queries != 1 || a.Errors != 0 {
		t.Fatalf("bad aggregate %+v", a)
	}
	if a.Stats.RealDistCalcs != 7 {
		t.Fatalf("stats not folded: %+v", a.Stats)
	}
	if a.Latency.Count != 1 || a.DistCalcs.Count != 1 || a.QueueInserts.Count != 1 {
		t.Fatalf("histograms not fed: %+v", a)
	}

	// An erroring query counts as an error.
	q2 := r.Begin("AM-KDJ", 5)
	q2.End(nil, errors.New("boom"))
	a = r.Snapshot().Algos[0]
	if a.Queries != 2 || a.Errors != 1 {
		t.Fatalf("after error: queries=%d errors=%d", a.Queries, a.Errors)
	}
}

func TestRecordEstimate(t *testing.T) {
	r := NewRegistry()
	q := r.Begin("AM-IDJ", 100)
	q.RecordEstimate(0.5, 1.0, ModeInitial)    // under
	q.RecordEstimate(2.0, 1.0, ModeArithmetic) // over
	q.RecordEstimate(1.0, 1.0, ModeGeometric)  // exact counts as over
	// Dropped samples: degenerate or non-finite.
	q.RecordEstimate(1, 0, ModeInitial)
	q.RecordEstimate(1, math.Inf(1), ModeInitial)
	q.RecordEstimate(math.NaN(), 1, ModeInitial)
	q.RecordEstimate(math.Inf(1), 1, ModeInitial)
	q.RecordEstimate(-1, 1, ModeInitial)
	q.End(nil, nil)

	a := r.Snapshot().Algos[0]
	if a.EstimateRatio.Count != 3 {
		t.Fatalf("ratio samples = %d, want 3", a.EstimateRatio.Count)
	}
	if a.Underestimates != 1 || a.Overestimates != 2 {
		t.Fatalf("under=%d over=%d, want 1/2", a.Underestimates, a.Overestimates)
	}
	if a.Corrections[ModeInitial] != 1 || a.Corrections[ModeArithmetic] != 1 || a.Corrections[ModeGeometric] != 1 {
		t.Fatalf("corrections %v", a.Corrections)
	}
}

func TestSnapshotSortsAlgosAndQueries(t *testing.T) {
	r := NewRegistry()
	r.Begin("HS-KDJ", 1).End(nil, nil)
	r.Begin("AM-KDJ", 1).End(nil, nil)
	r.Begin("B-KDJ", 1).End(nil, nil)
	r.Begin("X", 1).End(nil, nil) // aggregates appear on completion...
	q1 := r.Begin("X", 1)         // ...in-flight entries on Begin
	q2 := r.Begin("X", 2)
	_ = q1
	_ = q2
	s := r.Snapshot()
	var names []string
	for _, a := range s.Algos {
		names = append(names, a.Algo)
	}
	want := []string{"AM-KDJ", "B-KDJ", "HS-KDJ", "X"}
	if len(names) != len(want) {
		t.Fatalf("algos %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("algos %v not sorted, want %v", names, want)
		}
	}
	if len(s.InFlight) != 2 || s.InFlight[0].ID >= s.InFlight[1].ID {
		t.Fatalf("in-flight not ID-sorted: %+v", s.InFlight)
	}
}

// TestSnapshotJSONRoundTrips guards the /queries and /debug/vars
// surfaces: a snapshot with a not-yet-estimated eDmax (internally NaN)
// must encode cleanly.
func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	q := r.Begin("AM-KDJ", 10) // eDmax never set: stays NaN internally
	defer q.End(nil, nil)
	q2 := r.Begin("AM-IDJ", 5)
	q2.SetEDmax(math.Inf(1)) // infinite cutoff must not leak into JSON
	defer q2.End(nil, nil)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	for _, qs := range back.InFlight {
		if qs.EDmax != nil {
			t.Fatalf("unestimated/non-finite eDmax leaked: %+v", qs)
		}
	}
}

// TestRegistryReset pins the repeated-run hygiene contract: Reset
// clears completed aggregates and restarts the clock, but leaves
// in-flight queries registered — and their later End lands in the
// fresh aggregates rather than vanishing or panicking.
func TestRegistryReset(t *testing.T) {
	var nilReg *Registry
	nilReg.Reset() // nil-safe like every other method

	r := NewRegistry()
	q := r.Begin("AM-KDJ", 10)
	q.End(&metrics.Collector{}, nil)
	if got := r.Snapshot(); len(got.Algos) != 1 || got.Algos[0].Queries != 1 {
		t.Fatalf("pre-reset snapshot: %+v", got.Algos)
	}

	live := r.Begin("B-KDJ", 5) // in flight across the reset
	r.Reset()
	s := r.Snapshot()
	if len(s.Algos) != 0 {
		t.Fatalf("post-reset aggregates survive: %+v", s.Algos)
	}
	if len(s.InFlight) != 1 || s.InFlight[0].Algo != "B-KDJ" {
		t.Fatalf("post-reset in-flight: %+v", s.InFlight)
	}
	if r.InFlight() != 1 {
		t.Fatalf("InFlight() = %d after reset, want 1", r.InFlight())
	}

	live.End(&metrics.Collector{}, nil)
	s = r.Snapshot()
	if len(s.InFlight) != 0 {
		t.Fatalf("query still in flight after End: %+v", s.InFlight)
	}
	if len(s.Algos) != 1 || s.Algos[0].Algo != "B-KDJ" || s.Algos[0].Queries != 1 {
		t.Fatalf("post-reset End not aggregated: %+v", s.Algos)
	}
}
