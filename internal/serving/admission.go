package serving

import "context"

// gate is the admission controller: a fixed pool of execution slots
// plus a bounded count of waiters. Acquire first tries for a free
// slot; failing that it joins the wait queue unless the queue is
// already full, in which case the request is rejected immediately —
// load the server cannot absorb is pushed back to the client as a 429
// instead of accumulating as unbounded goroutines.
type gate struct {
	slots   chan struct{} // buffered; one token per executing query
	waiting chan struct{} // buffered; one token per queued waiter
}

func newGate(inFlight, queued int) *gate {
	return &gate{
		slots:   make(chan struct{}, inFlight),
		waiting: make(chan struct{}, queued),
	}
}

// acquire obtains an execution slot, waiting in the bounded queue if
// none is free. It returns errQueueFull when the queue is saturated,
// or ctx's error if the deadline expires while waiting.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	// No free slot: take a waiter token or reject. The token channel
	// makes the bound exact — at most cap(waiting) goroutines block on
	// the slot send below.
	select {
	case g.waiting <- struct{}{}:
	default:
		return errQueueFull
	}
	defer func() { <-g.waiting }()
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot.
func (g *gate) release() { <-g.slots }

// inFlight reports how many queries currently hold slots.
func (g *gate) inFlight() int { return len(g.slots) }

// queued reports how many requests are waiting for a slot.
func (g *gate) queued() int { return len(g.waiting) }
