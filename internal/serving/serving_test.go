package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"distjoin"
)

// testObjects builds n point-ish objects, mixing a few clusters with
// a uniform background so every query family has interesting answers.
func testObjects(seed int64, n int) []distjoin.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]distjoin.Object, n)
	for i := range objs {
		var x, y float64
		if i%3 == 0 {
			cx, cy := float64(rng.Intn(4))*2500, float64(rng.Intn(4))*2500
			x, y = cx+rng.NormFloat64()*300, cy+rng.NormFloat64()*300
		} else {
			x, y = rng.Float64()*10000, rng.Float64()*10000
		}
		objs[i] = distjoin.Object{ID: int64(i), Rect: distjoin.PointRect(x, y)}
	}
	return objs
}

// testServer builds a query server over two synthetic datasets and an
// httptest frontend. Returns the serving server, the datasets, and
// the base URL.
func testServer(t *testing.T, cfg Config) (*Server, *distjoin.Index, *distjoin.Index, *httptest.Server) {
	t.Helper()
	left, err := distjoin.NewIndex(testObjects(11, 900), nil)
	if err != nil {
		t.Fatal(err)
	}
	right, err := distjoin.NewIndex(testObjects(13, 1100), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	if err := s.AddIndex("left", left); err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex("right", right); err != nil {
		t.Fatal(err)
	}
	h := httptest.NewServer(s.Handler())
	t.Cleanup(h.Close)
	t.Cleanup(s.Close)
	return s, left, right, h
}

// postJSON posts body (marshalled) to url and returns the status and
// raw response body.
func postJSON(t *testing.T, client *http.Client, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read: %v", url, err)
	}
	return resp.StatusCode, out
}

func decodeInto(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, b)
	}
}

// samePairs asserts server pairs equal facade pairs (IDs exact,
// distance to float64 round-trip precision).
func samePairs(t *testing.T, label string, got []pairJSON, want []distjoin.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Left != want[i].LeftID || got[i].Right != want[i].RightID ||
			math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
			t.Fatalf("%s: pair %d = %+v, want {%d %d %g}", label, i, got[i],
				want[i].LeftID, want[i].RightID, want[i].Dist)
		}
	}
}

// TestKDistanceDifferential: every algorithm served over HTTP returns
// exactly what the direct facade call returns.
func TestKDistanceDifferential(t *testing.T) {
	_, left, right, h := testServer(t, Config{})
	const k = 40

	oracle, err := distjoin.KDistanceJoin(left, right, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxDist := oracle[len(oracle)-1].Dist

	for _, tc := range []struct {
		algo   string
		shards int
		par    int
	}{
		{algo: "am"}, {algo: "b"}, {algo: "hs"}, {algo: "sj"},
		{algo: "am", shards: 4, par: 2}, {algo: "b", shards: 4},
	} {
		name := fmt.Sprintf("%s/s=%d/p=%d", tc.algo, tc.shards, tc.par)
		opts := &distjoin.Options{Shards: tc.shards, Parallelism: tc.par}
		switch tc.algo {
		case "am":
			opts.Algorithm = distjoin.AMKDJ
		case "b":
			opts.Algorithm = distjoin.BKDJ
		case "hs":
			opts.Algorithm = distjoin.HSKDJ
		case "sj":
			opts.Algorithm = distjoin.SJSort
			opts.MaxDist = maxDist
		}
		want, err := distjoin.KDistanceJoin(left, right, k, opts)
		if err != nil {
			t.Fatalf("%s facade: %v", name, err)
		}
		req := kDistanceRequest{Left: "left", Right: "right", K: k,
			Algorithm: tc.algo, Shards: tc.shards, Parallelism: tc.par}
		if tc.algo == "sj" {
			req.MaxDist = maxDist
		}
		code, body := postJSON(t, h.Client(), h.URL+"/v1/join/k", req)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, code, body)
		}
		var resp queryResponse
		decodeInto(t, body, &resp)
		samePairs(t, name, resp.Pairs, want)
		if resp.Stats.DistCalcs == 0 {
			t.Errorf("%s: stats not populated", name)
		}
	}
}

// TestKClosestAndWithinDifferential covers the self-join and
// within-predicate endpoints against direct facade calls.
func TestKClosestAndWithinDifferential(t *testing.T) {
	_, left, right, h := testServer(t, Config{})

	want, err := distjoin.KClosestPairs(left, 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	code, body := postJSON(t, h.Client(), h.URL+"/v1/join/closest",
		kClosestRequest{Index: "left", K: 25})
	if code != http.StatusOK {
		t.Fatalf("closest: %d: %s", code, body)
	}
	var resp queryResponse
	decodeInto(t, body, &resp)
	samePairs(t, "closest", resp.Pairs, want)

	// Within: order is unspecified — compare as multisets of ID pairs.
	const dist = 120.0
	wantSet := map[[2]int64]int{}
	if err := distjoin.WithinJoin(left, right, dist, nil, func(p distjoin.Pair) bool {
		wantSet[[2]int64{p.LeftID, p.RightID}]++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	code, body = postJSON(t, h.Client(), h.URL+"/v1/join/within",
		withinRequest{Left: "left", Right: "right", MaxDist: dist})
	if code != http.StatusOK {
		t.Fatalf("within: %d: %s", code, body)
	}
	var wresp queryResponse
	decodeInto(t, body, &wresp)
	if wresp.Truncated {
		t.Fatalf("within: unexpected truncation at %d pairs", len(wresp.Pairs))
	}
	if len(wresp.Pairs) != len(wantSet) {
		t.Fatalf("within: %d pairs, want %d", len(wresp.Pairs), len(wantSet))
	}
	for _, p := range wresp.Pairs {
		if wantSet[[2]int64{p.Left, p.Right}] != 1 {
			t.Fatalf("within: unexpected pair %+v", p)
		}
	}

	// Limit clamp: a limit below the result count truncates and says so.
	code, body = postJSON(t, h.Client(), h.URL+"/v1/join/within",
		withinRequest{Left: "left", Right: "right", MaxDist: dist, Limit: 3})
	if code != http.StatusOK {
		t.Fatalf("within limit: %d: %s", code, body)
	}
	decodeInto(t, body, &wresp)
	if len(wresp.Pairs) != 3 || !wresp.Truncated {
		t.Fatalf("within limit: %d pairs truncated=%v, want 3 truncated", len(wresp.Pairs), wresp.Truncated)
	}
}

// TestIncrementalPagination: pages pulled through the cursor API,
// resumed across requests, concatenate to exactly the one-shot
// incremental join's prefix.
func TestIncrementalPagination(t *testing.T) {
	_, left, right, h := testServer(t, Config{})
	const total, page = 137, 20

	// One-shot oracle: drive a direct facade iterator.
	it, err := distjoin.IncrementalJoin(left, right, &distjoin.Options{BatchK: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var want []distjoin.Pair
	for len(want) < total {
		p, ok := it.Next()
		if !ok {
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			break
		}
		want = append(want, p)
	}

	code, body := postJSON(t, h.Client(), h.URL+"/v1/join/incremental",
		incrementalOpenRequest{Left: "left", Right: "right", PageSize: page, BatchK: 16})
	if code != http.StatusOK {
		t.Fatalf("open: %d: %s", code, body)
	}
	var resp incrementalResponse
	decodeInto(t, body, &resp)
	if resp.Cursor == "" || resp.Done {
		t.Fatalf("open: cursor %q done %v, want live cursor", resp.Cursor, resp.Done)
	}
	if resp.DeadlineMS <= 0 {
		t.Fatalf("open: deadline_ms %d, want positive budget", resp.DeadlineMS)
	}
	got := resp.Pairs
	for len(got) < total {
		code, body = postJSON(t, h.Client(), h.URL+"/v1/join/incremental/next",
			incrementalNextRequest{Cursor: resp.Cursor, PageSize: page})
		if code != http.StatusOK {
			t.Fatalf("next at %d: %d: %s", len(got), code, body)
		}
		var next incrementalResponse
		decodeInto(t, body, &next)
		got = append(got, next.Pairs...)
		if next.Done {
			break
		}
		if next.Returned != int64(len(got)) {
			t.Fatalf("returned %d after %d pairs", next.Returned, len(got))
		}
	}
	if len(got) < total {
		t.Fatalf("paginated %d pairs, want >= %d", len(got), total)
	}
	samePairs(t, "pagination", got[:total], want)

	// Close is explicit and the cursor is gone afterwards.
	code, _ = postJSON(t, h.Client(), h.URL+"/v1/join/incremental/close",
		incrementalCloseRequest{Cursor: resp.Cursor})
	if code != http.StatusOK {
		t.Fatalf("close: %d", code)
	}
	code, _ = postJSON(t, h.Client(), h.URL+"/v1/join/incremental/close",
		incrementalCloseRequest{Cursor: resp.Cursor})
	if code != http.StatusNotFound {
		t.Fatalf("double close: %d, want 404", code)
	}
	code, _ = postJSON(t, h.Client(), h.URL+"/v1/join/incremental/next",
		incrementalNextRequest{Cursor: resp.Cursor})
	if code != http.StatusNotFound {
		t.Fatalf("next after close: %d, want 404", code)
	}
}

// TestAdmissionControl is the saturation contract: with every
// execution slot held and the wait queue full, new queries are
// rejected immediately with 429; a queued query runs once a slot
// frees.
func TestAdmissionControl(t *testing.T) {
	s, _, _, h := testServer(t, Config{MaxInFlight: 1, MaxQueued: 1, DefaultDeadline: 5 * time.Second})

	// Deterministically saturate: take the only slot directly.
	if err := s.gate.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	slotHeld := true
	defer func() {
		if slotHeld {
			s.gate.release()
		}
	}()

	// One query may wait in the queue.
	queued := make(chan struct {
		code int
		body []byte
	}, 1)
	go func() {
		code, body := postJSON(t, h.Client(), h.URL+"/v1/join/k",
			kDistanceRequest{Left: "left", Right: "right", K: 5})
		queued <- struct {
			code int
			body []byte
		}{code, body}
	}()
	// Wait until it is actually queued, so the next request sees a
	// full queue rather than racing for the waiter token.
	waitFor(t, time.Second, func() bool { return s.gate.queued() == 1 })

	// The queue is full: the next query must be shed with 429 now.
	start := time.Now()
	code, body := postJSON(t, h.Client(), h.URL+"/v1/join/k",
		kDistanceRequest{Left: "left", Right: "right", K: 5})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-admission: %d: %s, want 429", code, body)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("429 took %v; rejection must be immediate, not queued", d)
	}
	var e errorResponse
	decodeInto(t, body, &e)
	if !strings.Contains(e.Error, "queue full") {
		t.Fatalf("429 body %q does not explain the rejection", e.Error)
	}

	// Release the slot: the queued query must complete normally.
	s.gate.release()
	slotHeld = false
	select {
	case r := <-queued:
		if r.code != http.StatusOK {
			t.Fatalf("queued query: %d: %s", r.code, r.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued query never completed after slot release")
	}

	// Accounting: one accepted (the queued one), one rejected.
	st := getStats(t, h)
	if st.RejectedFull != 1 {
		t.Fatalf("rejected_queue_full_total = %d, want 1", st.RejectedFull)
	}
}

type statsResponse struct {
	InFlight     int   `json:"in_flight"`
	Queued       int   `json:"queued"`
	OpenCursors  int   `json:"open_cursors"`
	Accepted     int64 `json:"accepted_total"`
	RejectedFull int64 `json:"rejected_queue_full_total"`
	RejectedDown int64 `json:"rejected_draining_total"`
	Deadline     int64 `json:"deadline_exceeded_total"`
	Draining     bool  `json:"draining"`
}

func getStats(t *testing.T, h *httptest.Server) statsResponse {
	t.Helper()
	resp, err := h.Client().Get(h.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats: %d: %s", resp.StatusCode, b)
	}
	var st statsResponse
	decodeInto(t, b, &st)
	return st
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadlineExpiry: a query whose deadline passes while it waits
// for a slot returns 504 — it does not hang and does not run.
func TestDeadlineWhileQueued(t *testing.T) {
	s, _, _, h := testServer(t, Config{MaxInFlight: 1, MaxQueued: 4})
	if err := s.gate.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.gate.release()

	code, body := postJSON(t, h.Client(), h.URL+"/v1/join/k",
		kDistanceRequest{Left: "left", Right: "right", K: 5, DeadlineMS: 30})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("queued past deadline: %d: %s, want 504", code, body)
	}
	if st := getStats(t, h); st.Deadline != 1 {
		t.Fatalf("deadline_exceeded_total = %d, want 1", st.Deadline)
	}
}

// TestDeadlineMidQuery: a deadline expiring during execution aborts
// the engine run (the cancellation poll fires) and maps to 504.
func TestDeadlineMidQuery(t *testing.T) {
	_, _, _, h := testServer(t, Config{})
	// k large enough that the join cannot finish within 1ms; the
	// engine polls Options.Context and aborts.
	code, body := postJSON(t, h.Client(), h.URL+"/v1/join/k",
		kDistanceRequest{Left: "left", Right: "right", K: 50_000, DeadlineMS: 1})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("mid-query deadline: %d: %s, want 504", code, body)
	}
}

// TestCursorExpiry: an expired cursor is swept and reads as unknown.
func TestCursorExpiry(t *testing.T) {
	s, _, _, h := testServer(t, Config{})
	code, body := postJSON(t, h.Client(), h.URL+"/v1/join/incremental",
		incrementalOpenRequest{Left: "left", Right: "right", PageSize: 5, DeadlineMS: 40})
	if code != http.StatusOK {
		t.Fatalf("open: %d: %s", code, body)
	}
	var resp incrementalResponse
	decodeInto(t, body, &resp)
	if resp.Cursor == "" {
		t.Fatal("no cursor")
	}
	waitFor(t, time.Second, func() bool {
		_, ok := s.cursors.get(resp.Cursor, time.Now())
		return !ok
	})
	code, body = postJSON(t, h.Client(), h.URL+"/v1/join/incremental/next",
		incrementalNextRequest{Cursor: resp.Cursor})
	if code != http.StatusNotFound {
		t.Fatalf("next on expired cursor: %d: %s, want 404", code, body)
	}
	if s.cursors.open() != 0 {
		t.Fatalf("%d cursors still open after expiry", s.cursors.open())
	}
}

// TestCursorBudget: the cursor table bounds open cursors with 429.
func TestCursorBudget(t *testing.T) {
	_, _, _, h := testServer(t, Config{MaxCursors: 2})
	open := func() (int, incrementalResponse) {
		code, body := postJSON(t, h.Client(), h.URL+"/v1/join/incremental",
			incrementalOpenRequest{Left: "left", Right: "right", PageSize: 1})
		var resp incrementalResponse
		if code == http.StatusOK {
			decodeInto(t, body, &resp)
		}
		return code, resp
	}
	for i := 0; i < 2; i++ {
		if code, resp := open(); code != http.StatusOK || resp.Cursor == "" {
			t.Fatalf("open %d failed: %d", i, code)
		}
	}
	if code, _ := open(); code != http.StatusTooManyRequests {
		t.Fatalf("third cursor: %d, want 429", code)
	}
}

// TestValidationErrors walks the 400/404 surface.
func TestValidationErrors(t *testing.T) {
	_, _, _, h := testServer(t, Config{MaxK: 100})
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"unknown left", "/v1/join/k", kDistanceRequest{Left: "nope", Right: "right", K: 5}, 404},
		{"unknown right", "/v1/join/k", kDistanceRequest{Left: "left", Right: "nope", K: 5}, 404},
		{"bad algorithm", "/v1/join/k", kDistanceRequest{Left: "left", Right: "right", K: 5, Algorithm: "x"}, 400},
		{"k zero", "/v1/join/k", kDistanceRequest{Left: "left", Right: "right"}, 400},
		{"k over budget", "/v1/join/k", kDistanceRequest{Left: "left", Right: "right", K: 101}, 400},
		{"sj needs max_dist", "/v1/join/k", kDistanceRequest{Left: "left", Right: "right", K: 5, Algorithm: "sj"}, 400},
		{"shards with hs", "/v1/join/k", kDistanceRequest{Left: "left", Right: "right", K: 5, Algorithm: "hs", Shards: 4}, 400},
		{"negative max_dist", "/v1/join/within", withinRequest{Left: "left", Right: "right", MaxDist: -1}, 400},
		{"negative limit", "/v1/join/within", withinRequest{Left: "left", Right: "right", MaxDist: 1, Limit: -2}, 400},
		{"negative page", "/v1/join/incremental", incrementalOpenRequest{Left: "left", Right: "right", PageSize: -1}, 400},
		{"negative batch", "/v1/join/incremental", incrementalOpenRequest{Left: "left", Right: "right", BatchK: -1}, 400},
		{"closest unknown", "/v1/join/closest", kClosestRequest{Index: "nope", K: 5}, 404},
		{"empty names", "/v1/join/k", kDistanceRequest{K: 5}, 400},
	}
	for _, tc := range cases {
		code, body := postJSON(t, h.Client(), h.URL+tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s: %d: %s, want %d", tc.name, code, body, tc.want)
		}
		var e errorResponse
		decodeInto(t, body, &e)
		if e.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
	// Malformed JSON and unknown fields are 400s too.
	resp, err := h.Client().Post(h.URL+"/v1/join/k", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	drainBody(resp.Body)
	if resp.StatusCode != 400 {
		t.Errorf("malformed JSON: %d, want 400", resp.StatusCode)
	}
	resp, err = h.Client().Post(h.URL+"/v1/join/k", "application/json",
		strings.NewReader(`{"left":"left","right":"right","k":5,"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	drainBody(resp.Body)
	if resp.StatusCode != 400 {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}
}

// TestIndexesAndObservabilityEndpoints: dataset listing plus the
// mounted obsrv surface.
func TestIndexesAndObservabilityEndpoints(t *testing.T) {
	_, left, _, h := testServer(t, Config{Registry: distjoin.NewRegistry()})
	resp, err := h.Client().Get(h.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var idx struct {
		Indexes []struct {
			Name string `json:"name"`
			Len  int    `json:"len"`
		} `json:"indexes"`
	}
	decodeInto(t, b, &idx)
	if len(idx.Indexes) != 2 || idx.Indexes[0].Name != "left" || idx.Indexes[0].Len != left.Len() {
		t.Fatalf("/v1/indexes: %s", b)
	}
	for _, path := range []string{"/healthz", "/metrics", "/queries", "/"} {
		resp, err := h.Client().Get(h.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		drainBody(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}
	// Served queries appear in the registry-backed /metrics.
	if code, _ := postJSON(t, h.Client(), h.URL+"/v1/join/k",
		kDistanceRequest{Left: "left", Right: "right", K: 5}); code != 200 {
		t.Fatalf("query: %d", code)
	}
	resp, err = h.Client().Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `distjoin_queries_total{algo="AM-KDJ"} 1`) {
		t.Errorf("/metrics does not show the served query:\n%.400s", b)
	}
}

// TestGracefulShutdownDrain: Shutdown lets admitted queries finish —
// their responses arrive complete — while new queries get 503. Run
// with -race: the drain path crosses the admission gate, the
// wait-group, and the cursor table.
func TestGracefulShutdownDrain(t *testing.T) {
	s, _, _, h := testServer(t, Config{MaxInFlight: 2, MaxQueued: 8})

	// Park an open cursor first (opening needs a slot); the drain must
	// close it.
	code, body := postJSON(t, h.Client(), h.URL+"/v1/join/incremental",
		incrementalOpenRequest{Left: "left", Right: "right", PageSize: 3})
	if code != http.StatusOK {
		t.Fatalf("open cursor: %d", code)
	}
	var cresp incrementalResponse
	decodeInto(t, body, &cresp)

	// Park workers inside admit by holding both slots, so queries are
	// verifiably in flight when Shutdown begins.
	if err := s.gate.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.gate.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	const n = 4
	results := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _ := postJSON(t, h.Client(), h.URL+"/v1/join/k",
				kDistanceRequest{Left: "left", Right: "right", K: 10})
			results <- code
		}()
	}
	waitFor(t, 2*time.Second, func() bool { return s.gate.queued() == n })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, 2*time.Second, s.Draining)

	// New queries are rejected while draining.
	code, body = postJSON(t, h.Client(), h.URL+"/v1/join/k",
		kDistanceRequest{Left: "left", Right: "right", K: 5})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: %d: %s, want 503", code, body)
	}

	// Release the slots: every admitted query must complete with 200.
	s.gate.release()
	s.gate.release()
	wg.Wait()
	close(results)
	for code := range results {
		if code != http.StatusOK {
			t.Fatalf("drained query returned %d, want 200", code)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if open := s.cursors.open(); open != 0 {
		t.Fatalf("%d cursors open after drain", open)
	}
	// The cursor was closed by the drain: a client retrying it gets a
	// clean 503/404, not a hang.
	code, _ = postJSON(t, h.Client(), h.URL+"/v1/join/incremental/next",
		incrementalNextRequest{Cursor: cresp.Cursor})
	if code != http.StatusServiceUnavailable && code != http.StatusNotFound {
		t.Fatalf("cursor after drain: %d, want 503 or 404", code)
	}
}

// TestShutdownDeadlineEscalation: a Shutdown whose context expires
// reports the error; Close then hard-stops cursor queries.
func TestShutdownDeadlineEscalation(t *testing.T) {
	s, _, _, h := testServer(t, Config{MaxInFlight: 1})
	if err := s.gate.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	released := false
	defer func() {
		if !released {
			s.gate.release()
		}
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		postJSON(t, h.Client(), h.URL+"/v1/join/k",
			kDistanceRequest{Left: "left", Right: "right", K: 5, DeadlineMS: 60_000})
	}()
	waitFor(t, 2*time.Second, func() bool { return s.gate.queued() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown with a stuck query and expired context returned nil")
	}
	s.Close()
	s.gate.release()
	released = true
	<-done
}

// TestConcurrentMixedLoad hammers every endpoint concurrently — the
// -race exercise for the gate, cursor table, and counters — and
// differentially validates every successful k-distance response.
func TestConcurrentMixedLoad(t *testing.T) {
	_, left, right, h := testServer(t, Config{MaxInFlight: 4, MaxQueued: 64})
	const k = 15
	want, err := distjoin.KDistanceJoin(left, right, k, nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				switch (w + i) % 3 {
				case 0:
					code, body := postJSON(t, h.Client(), h.URL+"/v1/join/k",
						kDistanceRequest{Left: "left", Right: "right", K: k})
					if code != http.StatusOK {
						errCh <- fmt.Errorf("k: %d: %s", code, body)
						return
					}
					var resp queryResponse
					if err := json.Unmarshal(body, &resp); err != nil {
						errCh <- err
						return
					}
					for j := range resp.Pairs {
						if resp.Pairs[j].Left != want[j].LeftID || resp.Pairs[j].Right != want[j].RightID {
							errCh <- fmt.Errorf("k: pair %d drifted under load", j)
							return
						}
					}
				case 1:
					code, body := postJSON(t, h.Client(), h.URL+"/v1/join/within",
						withinRequest{Left: "left", Right: "right", MaxDist: 60, Limit: 50})
					if code != http.StatusOK {
						errCh <- fmt.Errorf("within: %d: %s", code, body)
						return
					}
				case 2:
					code, body := postJSON(t, h.Client(), h.URL+"/v1/join/incremental",
						incrementalOpenRequest{Left: "left", Right: "right", PageSize: 10})
					if code != http.StatusOK {
						errCh <- fmt.Errorf("incr open: %d: %s", code, body)
						return
					}
					var resp incrementalResponse
					if err := json.Unmarshal(body, &resp); err != nil {
						errCh <- err
						return
					}
					if resp.Cursor == "" {
						continue
					}
					code, body = postJSON(t, h.Client(), h.URL+"/v1/join/incremental/next",
						incrementalNextRequest{Cursor: resp.Cursor, PageSize: 10})
					if code != http.StatusOK {
						errCh <- fmt.Errorf("incr next: %d: %s", code, body)
						return
					}
					code, _ = postJSON(t, h.Client(), h.URL+"/v1/join/incremental/close",
						incrementalCloseRequest{Cursor: resp.Cursor})
					if code != http.StatusOK {
						errCh <- fmt.Errorf("incr close: %d", code)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestAddIndexValidation covers registration errors.
func TestAddIndexValidation(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if err := s.AddIndex("", nil); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.AddIndex("a", nil); err == nil {
		t.Error("nil index accepted")
	}
	idx, err := distjoin.NewIndex(testObjects(1, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex("a", idx); err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex("a", idx); err == nil {
		t.Error("duplicate name accepted")
	}
}
