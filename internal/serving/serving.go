// Package serving turns the distance-join engine into a long-running
// multi-tenant query server: an HTTP/JSON API over pre-built indexes
// with concurrent query scheduling, admission control, per-query
// deadline and queue-memory budgets, incremental pagination, and
// graceful shutdown.
//
// The design treats the paper's §4.4 queue-memory budget as the unit
// of per-query resource rationing: every request runs under a clamped
// Options.QueueMemBytes and a clamped deadline enforced through
// Options.Context, and the server bounds how many queries execute
// concurrently (Config.MaxInFlight) and how many may wait for a slot
// (Config.MaxQueued) — beyond that, requests are rejected immediately
// with 429 rather than queued without bound.
//
// Layering: the package speaks only the public distjoin facade — the
// same API any external embedder uses — so the server is also a
// continuous integration test of the facade's contract. The
// observability surface (internal/obsrv) is mounted alongside the
// query endpoints, and the HTTP lifecycle reuses obsrv.ServeHandler /
// Server.Shutdown.
//
// See docs/serving.md for the wire schema and cmd/distjoin-server for
// the binary.
package serving

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distjoin"
)

// Config tunes a query server. The zero value is usable; every field
// falls back to the package default noted on it.
type Config struct {
	// MaxInFlight bounds how many queries execute concurrently
	// (default: GOMAXPROCS). Each request — a blocking join or one
	// incremental page pull — holds a slot while it executes; an idle
	// open cursor holds no slot, only its cursor-table entry.
	MaxInFlight int
	// MaxQueued bounds how many admitted requests may wait for an
	// execution slot (default: 2 * MaxInFlight). Requests arriving
	// beyond that are rejected with HTTP 429 immediately — the
	// admission queue is a shock absorber, not an unbounded backlog.
	MaxQueued int
	// DefaultDeadline is the per-query deadline applied when a request
	// does not set deadline_ms (default 30s). The deadline covers slot
	// wait plus execution; for incremental queries it covers the whole
	// cursor lifetime, from open to the last page.
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested deadlines (default 2m).
	MaxDeadline time.Duration
	// DefaultQueueMemBytes is the §4.4 in-memory main-queue budget
	// applied when a request does not set queue_mem_bytes (default:
	// the engine default, 512 KB).
	DefaultQueueMemBytes int
	// MaxQueueMemBytes clamps client-requested queue memory
	// (default 8 MB).
	MaxQueueMemBytes int
	// MaxK bounds the k of ranked queries (default 100000). Larger
	// requests are rejected with 400 rather than silently truncated.
	MaxK int
	// MaxResults bounds how many pairs a within query may return in
	// one response (default 100000); larger result sets are truncated
	// and flagged in the response.
	MaxResults int
	// MaxPageSize bounds one incremental page (default 4096).
	MaxPageSize int
	// MaxCursors bounds how many incremental cursors may be open at
	// once (default 64); each holds a live engine iterator and its
	// queue memory until closed, exhausted, or expired.
	MaxCursors int
	// Registry, when non-nil, aggregates every served query into the
	// process observability registry and backs the mounted /metrics,
	// /queries, and /debug endpoints. The server additionally feeds the
	// registry's serving telemetry (Registry.Serving): the
	// distjoin_serving_* Prometheus families on /metrics.
	Registry *distjoin.Registry
	// Logger, when non-nil, receives one structured record per /v1
	// request ("request" at Info, or Warn when over the slow-query
	// threshold) with the request's full telemetry: query ID, family,
	// index, k, admission wait, queue depth at entry, deadline budget
	// vs. elapsed, dist-calcs, eDmax correction mode, result count,
	// and status. Nil disables request logging.
	Logger *slog.Logger
	// SlowQueryThreshold classifies a request as slow when its total
	// latency strictly exceeds it (default 1s). Slow requests are
	// logged at Warn, counted in distjoin_serving_slow_queries_total,
	// and retained in the /debug/slowlog ring.
	SlowQueryThreshold time.Duration
	// SlowLogCapacity bounds the /debug/slowlog ring (default 128);
	// once full, each new slow query evicts the oldest entry.
	SlowLogCapacity int
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxQueued() int {
	if c.MaxQueued > 0 {
		return c.MaxQueued
	}
	return 2 * c.maxInFlight()
}

func (c Config) defaultDeadline() time.Duration {
	if c.DefaultDeadline > 0 {
		return c.DefaultDeadline
	}
	return 30 * time.Second
}

func (c Config) maxDeadline() time.Duration {
	if c.MaxDeadline > 0 {
		return c.MaxDeadline
	}
	return 2 * time.Minute
}

func (c Config) maxQueueMemBytes() int {
	if c.MaxQueueMemBytes > 0 {
		return c.MaxQueueMemBytes
	}
	return 8 << 20
}

func (c Config) maxK() int {
	if c.MaxK > 0 {
		return c.MaxK
	}
	return 100_000
}

func (c Config) maxResults() int {
	if c.MaxResults > 0 {
		return c.MaxResults
	}
	return 100_000
}

func (c Config) maxPageSize() int {
	if c.MaxPageSize > 0 {
		return c.MaxPageSize
	}
	return 4096
}

func (c Config) maxCursors() int {
	if c.MaxCursors > 0 {
		return c.MaxCursors
	}
	return 64
}

func (c Config) slowQueryThreshold() time.Duration {
	if c.SlowQueryThreshold > 0 {
		return c.SlowQueryThreshold
	}
	return time.Second
}

func (c Config) slowLogCapacity() int {
	if c.SlowLogCapacity > 0 {
		return c.SlowLogCapacity
	}
	return 128
}

// Sentinel errors of the admission and lifecycle paths; the API layer
// maps them to HTTP statuses (queue full → 429, draining → 503).
var (
	errQueueFull = errors.New("serving: admission queue full")
	errDraining  = errors.New("serving: server is shutting down")
)

// counters aggregates the server's own request accounting, separate
// from the engine-level registry: how traffic was admitted, rejected,
// and completed. Exposed as JSON on /v1/stats.
type counters struct {
	Accepted     atomic.Int64
	RejectedFull atomic.Int64
	RejectedDown atomic.Int64
	Deadline     atomic.Int64
	ClientGone   atomic.Int64
	Failed       atomic.Int64
}

// Server serves distance-join queries over a fixed set of named
// indexes. Build one with New, register datasets with AddIndex, mount
// Handler on an HTTP server (obsrv.ServeHandler pairs naturally), and
// stop it with Shutdown.
type Server struct {
	cfg  Config
	gate *gate

	mu      sync.RWMutex
	indexes map[string]*distjoin.Index

	cursors *cursorTable
	stats   counters

	// Telemetry: metrics is the registry's serving-metrics sink (a
	// nil-safe no-op without a registry), slow the /debug/slowlog
	// ring, drain the completion-rate tracker pricing Retry-After,
	// and qidPrefix/qidSeq the query-ID mint.
	metrics   *distjoin.ServingMetrics
	slow      *slowLog
	drain     drainTracker
	qidPrefix string
	qidSeq    atomic.Uint64

	// Lifecycle state: lmu guards the draining flag together with the
	// count of queries past admission, so a query either sees draining
	// and is rejected, or increments active before Shutdown samples it —
	// never neither. drained closes (once) when the last active query
	// finishes after draining began.
	lmu         sync.Mutex
	active      int
	drainFlag   bool
	drained     chan struct{}
	drainedOnce sync.Once

	// base is the parent context of cursor-scoped query contexts — it
	// must survive individual requests, so cursors keep working across
	// pages. Close cancels it as the hard stop.
	base     context.Context
	baseStop context.CancelFunc
}

// New returns a server with no datasets registered.
func New(cfg Config) *Server {
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		gate:      newGate(cfg.maxInFlight(), cfg.maxQueued()),
		indexes:   make(map[string]*distjoin.Index),
		cursors:   newCursorTable(cfg.maxCursors()),
		drained:   make(chan struct{}),
		base:      base,
		baseStop:  stop,
		metrics:   cfg.Registry.Serving(),
		slow:      newSlowLog(cfg.slowLogCapacity()),
		qidPrefix: newQIDPrefix(),
	}
	s.cursors.expired = s.metrics.IncCursorExpired
	// The gauge provider reads the server's own admission gate and
	// lifecycle state; obsrv invokes it outside its locks.
	s.metrics.SetGauges(func() distjoin.ServingGauges {
		return distjoin.ServingGauges{
			InFlight:    s.gate.inFlight(),
			Queued:      s.gate.queued(),
			OpenCursors: s.cursors.open(),
			Draining:    s.Draining(),
		}
	})
	return s
}

// AddIndex registers idx under name, making it addressable by
// queries. Names must be unique and non-empty; indexes must be
// non-nil. Registration is typically done before serving, but is safe
// at any time.
func (s *Server) AddIndex(name string, idx *distjoin.Index) error {
	if name == "" {
		return fmt.Errorf("serving: index name must be non-empty")
	}
	if idx == nil {
		return fmt.Errorf("serving: index %q is nil", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.indexes[name]; ok {
		return fmt.Errorf("serving: index %q already registered", name)
	}
	s.indexes[name] = idx
	return nil
}

// lookup resolves a dataset name.
func (s *Server) lookup(name string) (*distjoin.Index, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, ok := s.indexes[name]
	return idx, ok
}

// indexNames returns the registered names, sorted for stable output.
func (s *Server) indexNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.indexes))
	for name := range s.indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// admit runs the admission path for one query: reject when draining,
// then acquire an execution slot, waiting in the bounded admission
// queue if the server is saturated. ctx bounds the wait (it carries
// the query deadline, so a query never waits longer than it is
// allowed to run). On success the query is tracked for shutdown
// draining; the caller must call the returned release exactly once.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if !s.begin() {
		s.stats.RejectedDown.Add(1)
		return nil, errDraining
	}
	if err := s.gate.acquire(ctx); err != nil {
		s.end()
		if errors.Is(err, errQueueFull) {
			s.stats.RejectedFull.Add(1)
		}
		return nil, err
	}
	s.stats.Accepted.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			s.gate.release()
			s.end()
		})
	}, nil
}

// begin registers a query for drain tracking; it reports false — the
// query must be rejected — once draining has started.
func (s *Server) begin() bool {
	s.lmu.Lock()
	defer s.lmu.Unlock()
	if s.drainFlag {
		return false
	}
	s.active++
	return true
}

// end is begin's counterpart; the last query out after draining began
// releases the drain waiters.
func (s *Server) end() {
	s.lmu.Lock()
	s.active--
	idle := s.drainFlag && s.active == 0
	s.lmu.Unlock()
	if idle {
		s.drainedOnce.Do(func() { close(s.drained) })
	}
}

// deadline resolves a client-requested deadline (milliseconds; 0
// means "server default") to a duration, clamped to MaxDeadline.
func (s *Server) deadline(deadlineMS int64) time.Duration {
	d := s.cfg.defaultDeadline()
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if m := s.cfg.maxDeadline(); d > m {
		d = m
	}
	return d
}

// queueMem resolves a client-requested queue-memory budget (bytes; 0
// means "server default") clamped to MaxQueueMemBytes.
func (s *Server) queueMem(req int) int {
	m := s.cfg.DefaultQueueMemBytes
	if req > 0 {
		m = req
	}
	if cap := s.cfg.maxQueueMemBytes(); m > cap {
		m = cap
	}
	return m
}

// Shutdown gracefully stops the server: new queries are rejected with
// 503, queries already admitted (including queued ones) run to
// completion, and open incremental cursors are closed once the drain
// finishes. If ctx expires before the drain completes, Shutdown
// returns ctx.Err() with queries still running; escalate with Close.
//
// Shutdown only drains the query scheduler — pair it with the HTTP
// server's own graceful stop (obsrv.Server.Shutdown) so in-flight
// response bodies are also flushed before the process exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lmu.Lock()
	s.drainFlag = true
	idle := s.active == 0
	s.lmu.Unlock()
	if idle {
		s.drainedOnce.Do(func() { close(s.drained) })
	}
	select {
	case <-s.drained:
		s.cursors.closeAll()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close hard-stops the server: the base context is cancelled, which
// aborts in-flight cursor queries at their next cancellation poll,
// and all cursors are closed. Prefer Shutdown; use Close as the
// escalation when the drain deadline expires.
func (s *Server) Close() {
	s.lmu.Lock()
	s.drainFlag = true
	s.lmu.Unlock()
	s.baseStop()
	s.cursors.closeAll()
}

// Draining reports whether Shutdown or Close has been initiated.
func (s *Server) Draining() bool {
	s.lmu.Lock()
	defer s.lmu.Unlock()
	return s.drainFlag
}

// Handler returns the server's HTTP handler: the /v1 query API plus
// the observability surface (/metrics, /queries, /healthz,
// /debug/...) of the configured registry. See docs/serving.md for the
// wire schema.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/join/k", s.handleKDistance)
	mux.HandleFunc("POST /v1/join/closest", s.handleKClosest)
	mux.HandleFunc("POST /v1/join/within", s.handleWithin)
	mux.HandleFunc("POST /v1/join/incremental", s.handleIncrementalOpen)
	mux.HandleFunc("POST /v1/join/incremental/next", s.handleIncrementalNext)
	mux.HandleFunc("POST /v1/join/incremental/close", s.handleIncrementalClose)
	mux.HandleFunc("GET /v1/indexes", s.handleIndexes)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	// More specific than the /debug/ catch-all below, so it wins the
	// ServeMux precedence contest.
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowLog)

	// Observability endpoints share the mux, so one listener serves
	// both the query API and the scrape surface.
	obs := distjoin.ObservabilityHandler(s.cfg.Registry)
	mux.Handle("/metrics", obs)
	mux.Handle("/queries", obs)
	mux.Handle("/healthz", obs)
	mux.Handle("/debug/", obs)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			//lint:allow servecontract the root mux fallback has no query context; a plain 404 matches net/http convention for unknown paths
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "distjoin query server\n\n"+
			"POST /v1/join/k                   k-distance join\n"+
			"POST /v1/join/closest             k closest pairs (self-join)\n"+
			"POST /v1/join/within              within-distance join\n"+
			"POST /v1/join/incremental         open incremental cursor (+ first page)\n"+
			"POST /v1/join/incremental/next    next page\n"+
			"POST /v1/join/incremental/close   close cursor\n"+
			"GET  /v1/indexes                  registered datasets\n"+
			"GET  /v1/stats                    admission/scheduling counters\n"+
			"GET  /metrics /queries /healthz /debug/...  observability\n")
	})
	return mux
}
