package serving

import (
	"net/http"

	"distjoin"
)

// ?explain=1 support: the blocking /v1 query endpoints accept an
// explain query parameter; when set, the server installs a per-request
// tracer and the response embeds the merged trace timeline plus a
// digest — per-stage durations, spill/reload activity, the shard plan
// — so a client can see where its query spent its time without
// server-side log access. The dist-calc total in the digest comes from
// the same Stats collector as the response's stats block, so the two
// always agree.

// wantExplain reports whether the request opted into the trace
// timeline.
func wantExplain(r *http.Request) bool {
	switch r.URL.Query().Get("explain") {
	case "1", "true":
		return true
	}
	return false
}

// stageSpan is one stage's [start, end] window on the trace timeline,
// in microseconds since the tracer (and hence the query) started.
type stageSpan struct {
	Algo       string `json:"algo,omitempty"`
	Stage      string `json:"stage"`
	StartUS    int64  `json:"start_us"`
	EndUS      int64  `json:"end_us"`
	DurationUS int64  `json:"duration_us"`
	// Results is the cumulative result count reported at stage end.
	Results int64 `json:"results,omitempty"`
}

// shardPlanJSON digests the sharded executor's trace events.
type shardPlanJSON struct {
	Tasks       int64 `json:"tasks"`
	LeftShards  int   `json:"left_shards"`
	RightShards int   `json:"right_shards"`
	Runs        int   `json:"runs"`
	Skips       int   `json:"skips"`
}

// explainSummary is the digest of the trace timeline.
type explainSummary struct {
	DurationUS    int64          `json:"duration_us"`
	Stages        []stageSpan    `json:"stages"`
	Expansions    int            `json:"expansions"`
	Spills        int            `json:"spills"`
	SpilledPairs  int64          `json:"spilled_pairs"`
	Reloads       int            `json:"reloads"`
	ReloadedPairs int64          `json:"reloaded_pairs"`
	EDmaxUpdates  int            `json:"edmax_updates"`
	Compensations int            `json:"compensations"`
	Barriers      int            `json:"barriers"`
	ShardPlan     *shardPlanJSON `json:"shard_plan,omitempty"`
	// DistCalcs and QueueInserts mirror the response's stats block
	// (same collector), tying the timeline to the counters.
	DistCalcs    int64 `json:"dist_calcs"`
	QueueInserts int64 `json:"queue_inserts"`
}

// explainJSON is the explain block of a query response.
type explainJSON struct {
	Events  []distjoin.TraceEvent `json:"events"`
	Dropped uint64                `json:"dropped"`
	Summary explainSummary        `json:"summary"`
}

// buildExplain digests the tracer's buffered events. st supplies the
// counter totals (the same collector rendered into the response's
// stats block).
func buildExplain(tr *distjoin.Tracer, st *distjoin.Stats) *explainJSON {
	events := tr.Events()
	sum := explainSummary{
		DistCalcs:    st.DistCalcs(),
		QueueInserts: st.QueueInserts(),
	}
	// Open stage spans by algo+stage, supporting repeated stages
	// (AM-IDJ runs one span per incremental stage).
	open := make(map[string][]int) // key -> indexes into sum.Stages
	key := func(algo, stage string) string { return algo + "\x00" + stage }
	var shard *shardPlanJSON
	for _, ev := range events {
		if ev.At > sum.DurationUS {
			sum.DurationUS = ev.At
		}
		switch ev.Kind {
		case distjoin.TraceKindStageStart:
			k := key(ev.Algo, ev.Stage)
			open[k] = append(open[k], len(sum.Stages))
			sum.Stages = append(sum.Stages, stageSpan{
				Algo:    ev.Algo,
				Stage:   ev.Stage,
				StartUS: ev.At,
				EndUS:   ev.At,
			})
		case distjoin.TraceKindStageEnd:
			k := key(ev.Algo, ev.Stage)
			if idxs := open[k]; len(idxs) > 0 {
				i := idxs[len(idxs)-1]
				open[k] = idxs[:len(idxs)-1]
				sum.Stages[i].EndUS = ev.At
				sum.Stages[i].DurationUS = ev.At - sum.Stages[i].StartUS
				sum.Stages[i].Results = ev.Count
			}
		case distjoin.TraceKindExpansion:
			sum.Expansions++
		case distjoin.TraceKindQueueSpill:
			sum.Spills++
			sum.SpilledPairs += ev.Count
		case distjoin.TraceKindQueueReload:
			sum.Reloads++
			sum.ReloadedPairs += ev.Count
		case distjoin.TraceKindEDmaxUpdate:
			sum.EDmaxUpdates++
		case distjoin.TraceKindCompensation:
			sum.Compensations++
		case distjoin.TraceKindBarrier:
			sum.Barriers++
		case distjoin.TraceKindShardPlan:
			shard = &shardPlanJSON{
				Tasks:       ev.Count,
				LeftShards:  ev.LeftLevel,
				RightShards: ev.RightLevel,
			}
		case distjoin.TraceKindShardRun:
			if shard != nil {
				shard.Runs++
			}
		case distjoin.TraceKindShardSkip:
			if shard != nil {
				shard.Skips++
			}
		}
	}
	// A stage still open at the end of the timeline (the ring dropped
	// its end event, or the query aborted mid-stage) extends to the
	// last event.
	for _, idxs := range open {
		for _, i := range idxs {
			sum.Stages[i].EndUS = sum.DurationUS
			sum.Stages[i].DurationUS = sum.DurationUS - sum.Stages[i].StartUS
		}
	}
	sum.ShardPlan = shard
	if events == nil {
		events = []distjoin.TraceEvent{}
	}
	return &explainJSON{Events: events, Dropped: tr.Dropped(), Summary: sum}
}
