package serving

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"distjoin"
)

// cursor is one open incremental join: a live engine iterator plus
// the bookkeeping that lets pages resume where the previous page
// stopped. The cursor's deadline covers its whole lifetime — open
// through last page — enforced both here (expired cursors refuse
// pages and are swept) and inside the engine (the iterator's
// Options.Context carries the same deadline, so a pull in progress
// when the deadline passes aborts at the next cancellation poll).
type cursor struct {
	id       string
	deadline time.Time
	cancel   func() // cancels the iterator's context

	mu       sync.Mutex // serializes page pulls on one cursor
	it       *distjoin.Iterator
	returned int64
	done     bool
	closed   bool
}

// next pulls up to n pairs, returning the cursor's running total of
// returned pairs alongside. done reports exhaustion; after an engine
// error the cursor is closed and the error returned.
func (c *cursor) next(n int) (pairs []distjoin.Pair, done bool, returned int64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, true, c.returned, fmt.Errorf("serving: cursor %s is closed", c.id)
	}
	if c.done {
		return nil, true, c.returned, nil
	}
	//lint:allow ctxpoll bounded by the page size n; the engine iterator polls Options.Context between batches
	for len(pairs) < n {
		p, ok := c.it.Next()
		if !ok {
			c.done = true
			err := c.it.Err()
			c.returned += int64(len(pairs))
			c.closeLocked()
			return pairs, true, c.returned, err
		}
		pairs = append(pairs, p)
	}
	c.returned += int64(len(pairs))
	return pairs, false, c.returned, nil
}

// closeLocked releases the iterator and its context; callers hold
// c.mu.
func (c *cursor) closeLocked() {
	if c.closed {
		return
	}
	c.closed = true
	c.it.Close()
	c.cancel()
}

func (c *cursor) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closeLocked()
}

// cursorTable tracks open cursors by ID, bounding how many exist and
// sweeping expired ones. Cursors are a budgeted resource exactly like
// execution slots: each holds an engine iterator with up to a full
// queue-memory budget until closed.
type cursorTable struct {
	mu   sync.Mutex
	byID map[string]*cursor
	max  int

	// expired, when non-nil, is called once per cursor reaped by the
	// idle sweep (never for explicit closes), outside the table lock —
	// the serving metrics hook behind
	// distjoin_serving_cursors_expired_total.
	expired func()
}

// notifyExpired fires the expiry hook n times; callers must not hold
// t.mu.
func (t *cursorTable) notifyExpired(n int) {
	if t.expired == nil {
		return
	}
	for i := 0; i < n; i++ {
		t.expired()
	}
}

func newCursorTable(max int) *cursorTable {
	return &cursorTable{byID: make(map[string]*cursor), max: max}
}

// newID returns a 24-hex-character random cursor ID.
func newID() (string, error) {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serving: cursor id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// add registers a cursor, first sweeping any expired ones. It fails
// with errQueueFull when the table is at capacity even after the
// sweep.
func (t *cursorTable) add(c *cursor, now time.Time) error {
	t.mu.Lock()
	expired := t.sweepLocked(now)
	if len(t.byID) >= t.max {
		t.mu.Unlock()
		closeCursors(expired)
		t.notifyExpired(len(expired))
		return fmt.Errorf("%w: %d incremental cursors open", errQueueFull, t.max)
	}
	t.byID[c.id] = c
	t.mu.Unlock()
	closeCursors(expired)
	t.notifyExpired(len(expired))
	return nil
}

// get resolves a cursor ID; expired cursors are treated as missing
// (and swept), so a client using a stale cursor sees "unknown
// cursor", matching what it would see moments later anyway.
func (t *cursorTable) get(id string, now time.Time) (*cursor, bool) {
	t.mu.Lock()
	expired := t.sweepLocked(now)
	c, ok := t.byID[id]
	t.mu.Unlock()
	closeCursors(expired)
	t.notifyExpired(len(expired))
	return c, ok
}

// remove unregisters (but does not close) a cursor.
func (t *cursorTable) remove(id string) (*cursor, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.byID[id]
	if ok {
		delete(t.byID, id)
	}
	return c, ok
}

// sweepLocked removes expired cursors from the table, returning them
// for the caller to close outside the table lock (closing finalizes
// registry accounting; no I/O belongs under the map mutex).
func (t *cursorTable) sweepLocked(now time.Time) []*cursor {
	var expired []*cursor
	for id, c := range t.byID {
		if now.After(c.deadline) {
			delete(t.byID, id)
			expired = append(expired, c)
		}
	}
	return expired
}

// open reports how many cursors are registered.
func (t *cursorTable) open() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

// closeAll closes and drops every cursor (shutdown path).
func (t *cursorTable) closeAll() {
	t.mu.Lock()
	all := make([]*cursor, 0, len(t.byID))
	for id, c := range t.byID {
		delete(t.byID, id)
		all = append(all, c)
	}
	t.mu.Unlock()
	closeCursors(all)
}

func closeCursors(cs []*cursor) {
	for _, c := range cs {
		c.close()
	}
}
