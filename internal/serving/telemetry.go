package serving

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"distjoin"
)

// Request telemetry: every /v1 request is minted a query ID at entry
// (returned as the X-Distjoin-Query-Id header and threaded into the
// engine's registry entry via Options.QueryID), timed through
// admission and execution, recorded in the structured request log,
// classified into the distjoin_serving_* metric families, and — when
// slower than the configured threshold — retained in a bounded
// in-memory ring served at /debug/slowlog.

// mintQueryID returns the next request identity: a per-process random
// prefix plus a sequence number. The prefix keeps IDs from colliding
// across server restarts; the sequence keeps minting allocation-cheap
// and collision-free within a process (no per-request entropy read,
// which can fail and would put an error path on every request).
func (s *Server) mintQueryID() string {
	seq := s.qidSeq.Add(1)
	// Render the sequence without fmt to keep this path trivial.
	var buf [20]byte
	i := len(buf)
	for n := seq; ; n /= 10 {
		i--
		buf[i] = byte('0' + n%10)
		if n < 10 {
			break
		}
	}
	return s.qidPrefix + "-" + string(buf[i:])
}

// newQIDPrefix draws the per-process query-ID prefix. A failed entropy
// read degrades to a fixed prefix: IDs stay unique within the process,
// which is what the telemetry needs.
func newQIDPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "q0"
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the status code a handler writes so the
// deferred telemetry finisher can classify the request after the fact.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// reqTelemetry accumulates one request's telemetry as the handler
// progresses; finish (deferred at handler entry) turns it into the
// log record, the slow-query ring entry, and the metric samples.
type reqTelemetry struct {
	s       *Server
	w       *statusRecorder
	family  string
	queryID string
	start   time.Time

	// Set by admitTimed.
	admissionWait     time.Duration
	queueDepthAtEntry int

	// Set by the handler as the request is resolved.
	index    string        // dataset name(s), comma-joined for two-sided joins
	k        int           // ranked-query k, 0 where not applicable
	deadline time.Duration // resolved deadline budget
	st       *distjoin.Stats
	results  int
	err      error
}

// beginRequest starts telemetry for one /v1 request: mints the query
// ID, exposes it as a response header, and wraps the ResponseWriter so
// the final status is observable. Callers defer tel.finish()
// immediately.
func (s *Server) beginRequest(w http.ResponseWriter, family string) (*reqTelemetry, http.ResponseWriter) {
	rec := &statusRecorder{ResponseWriter: w}
	tel := &reqTelemetry{
		s:       s,
		w:       rec,
		family:  family,
		queryID: s.mintQueryID(),
		start:   time.Now(),
	}
	rec.Header().Set("X-Distjoin-Query-Id", tel.queryID)
	return tel, rec
}

// admitTimed is admit with the wait measured into tel and surfaced as
// the X-Distjoin-Admission-Wait response header (integer microseconds)
// so load generators can separate queueing from execution. The queue
// depth observed at entry — before this request joined the line — is
// recorded alongside. Completions feed the drain-rate tracker that
// prices Retry-After on 429s.
func (s *Server) admitTimed(ctx context.Context, tel *reqTelemetry) (func(), error) {
	tel.queueDepthAtEntry = s.gate.queued()
	waitStart := time.Now()
	release, err := s.admit(ctx)
	tel.admissionWait = time.Since(waitStart)
	if err != nil {
		tel.err = err
		return nil, err
	}
	tel.w.Header().Set("X-Distjoin-Admission-Wait",
		strconv.FormatInt(tel.admissionWait.Microseconds(), 10))
	return func() {
		release()
		s.drain.observe()
	}, nil
}

// finish closes out the request: one structured log line per request,
// a slow-ring entry and counter when over threshold, and the metric
// family samples. Deferred at handler entry so every exit path —
// success, validation failure, shed, deadline — is recorded.
func (t *reqTelemetry) finish() {
	t.s.recordRequest(t, time.Since(t.start))
}

// slowLogEntry is the JSON schema of one slow-query record, shared by
// the request log's attribute set and /debug/slowlog. Field order and
// names are pinned by TestSlowLogSchema.
type slowLogEntry struct {
	QueryID           string  `json:"query_id"`
	Family            string  `json:"family"`
	Index             string  `json:"index,omitempty"`
	K                 int     `json:"k,omitempty"`
	Status            int     `json:"status"`
	AdmissionWaitUS   int64   `json:"admission_wait_us"`
	QueueDepthAtEntry int     `json:"queue_depth_at_entry"`
	DeadlineMS        int64   `json:"deadline_ms"`
	ElapsedMS         float64 `json:"elapsed_ms"`
	DistCalcs         int64   `json:"dist_calcs"`
	EDmaxMode         string  `json:"edmax_mode,omitempty"`
	Results           int     `json:"results"`
	Error             string  `json:"error,omitempty"`
}

// recordRequest classifies and records one finished request. Split
// from finish with elapsed as a parameter so the threshold boundary is
// unit-testable without clock control: a request is slow iff
// elapsed is strictly greater than the threshold.
func (s *Server) recordRequest(t *reqTelemetry, elapsed time.Duration) {
	status := t.w.status
	if status == 0 {
		status = http.StatusOK
	}
	entry := slowLogEntry{
		QueryID:           t.queryID,
		Family:            t.family,
		Index:             t.index,
		K:                 t.k,
		Status:            status,
		AdmissionWaitUS:   t.admissionWait.Microseconds(),
		QueueDepthAtEntry: t.queueDepthAtEntry,
		DeadlineMS:        t.deadline.Milliseconds(),
		ElapsedMS:         float64(elapsed.Microseconds()) / 1e3,
		DistCalcs:         t.st.DistCalcs(),
		EDmaxMode:         t.st.EstimateMode(),
		Results:           t.results,
	}
	if t.err != nil {
		entry.Error = t.err.Error()
	}
	slow := elapsed > s.cfg.slowQueryThreshold()
	if slow {
		s.slow.push(entry)
	}

	switch status {
	case http.StatusOK:
		s.metrics.ObserveRequest(t.family, elapsed, t.admissionWait)
	case http.StatusTooManyRequests:
		s.metrics.IncShed()
	case http.StatusServiceUnavailable:
		s.metrics.IncRejectedDraining()
	case http.StatusGatewayTimeout:
		s.metrics.IncDeadlineExceeded()
	case statusClientClosedRequest:
		s.metrics.IncClientGone()
	default:
		if status >= 500 {
			s.metrics.IncFailed()
		}
	}
	if slow {
		s.metrics.IncSlowQuery()
	}

	if lg := s.cfg.Logger; lg != nil {
		level := slog.LevelInfo
		if slow {
			level = slog.LevelWarn
		}
		lg.LogAttrs(context.Background(), level, "request",
			slog.String("query_id", entry.QueryID),
			slog.String("family", entry.Family),
			slog.String("index", entry.Index),
			slog.Int("k", entry.K),
			slog.Int("status", entry.Status),
			slog.Int64("admission_wait_us", entry.AdmissionWaitUS),
			slog.Int("queue_depth_at_entry", entry.QueueDepthAtEntry),
			slog.Int64("deadline_ms", entry.DeadlineMS),
			slog.Float64("elapsed_ms", entry.ElapsedMS),
			slog.Int64("dist_calcs", entry.DistCalcs),
			slog.String("edmax_mode", entry.EDmaxMode),
			slog.Int("results", entry.Results),
			slog.Bool("slow", slow),
			slog.String("error", entry.Error),
		)
	}
}

// slowLog is a bounded FIFO ring of recent slow-query records: once
// full, each new entry evicts the oldest, so /debug/slowlog always
// shows the most recent history.
type slowLog struct {
	mu   sync.Mutex
	buf  []slowLogEntry
	head int // index of the oldest entry
	n    int
}

func newSlowLog(capacity int) *slowLog {
	return &slowLog{buf: make([]slowLogEntry, 0, capacity)}
}

func (l *slowLog) push(e slowLogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		l.n++
		return
	}
	l.buf[l.head] = e
	l.head = (l.head + 1) % len(l.buf)
}

// snapshot returns the retained entries, oldest first.
func (l *slowLog) snapshot() []slowLogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]slowLogEntry, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(l.head+i)%len(l.buf)])
	}
	return out
}

// handleSlowLog serves GET /debug/slowlog: the retained slow-query
// records, oldest first, under the schema of slowLogEntry.
func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		ThresholdMS int64          `json:"threshold_ms"`
		Entries     []slowLogEntry `json:"entries"`
	}{
		ThresholdMS: s.cfg.slowQueryThreshold().Milliseconds(),
		Entries:     s.slow.snapshot(),
	})
}

// drainTracker observes request completions and derives the server's
// recent drain rate, which prices the Retry-After header of 429
// responses: a client should come back once the queue ahead of it has
// plausibly drained.
type drainTracker struct {
	completions atomic.Int64

	mu          sync.Mutex
	windowStart time.Time
	windowBase  int64   // completions at windowStart
	lastRate    float64 // completions/sec over the last full window
}

// observe counts one completed request (anything that held a slot).
func (d *drainTracker) observe() { d.completions.Add(1) }

// ratePerSec returns the observed completion rate. Windows of at
// least one second are folded into lastRate; before the first window
// completes, the in-window rate is used so a fresh server still
// prices its Retry-After from real observations.
func (d *drainTracker) ratePerSec(now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.completions.Load()
	if d.windowStart.IsZero() {
		d.windowStart = now
		d.windowBase = cur
		return 0
	}
	elapsed := now.Sub(d.windowStart)
	if elapsed >= time.Second {
		d.lastRate = float64(cur-d.windowBase) / elapsed.Seconds()
		d.windowStart = now
		d.windowBase = cur
		return d.lastRate
	}
	if d.lastRate > 0 {
		return d.lastRate
	}
	if elapsed > 0 {
		return float64(cur-d.windowBase) / elapsed.Seconds()
	}
	return 0
}

// retryAfterSeconds prices a 429's Retry-After from the queue depth a
// rejected client saw and the observed drain rate: roughly how long
// until the line ahead has drained, clamped to [1, 60] seconds. An
// unknown rate (cold server) falls back to the floor.
func retryAfterSeconds(queueDepth int, ratePerSec float64) int {
	if ratePerSec <= 0 {
		return 1
	}
	secs := int(math.Ceil(float64(queueDepth+1) / ratePerSec))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}
