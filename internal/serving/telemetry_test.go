package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"distjoin"
)

// newTelemetry builds a finished-looking reqTelemetry against s with
// the recorder already carrying status.
func newTelemetry(s *Server, family string, status int) *reqTelemetry {
	rec := &statusRecorder{ResponseWriter: httptest.NewRecorder(), status: status}
	return &reqTelemetry{
		s:       s,
		w:       rec,
		family:  family,
		queryID: s.mintQueryID(),
		start:   time.Now(),
	}
}

// TestSlowThresholdBoundary pins the classification contract: a
// request whose latency lands exactly on the threshold is NOT slow;
// one nanosecond over is.
func TestSlowThresholdBoundary(t *testing.T) {
	threshold := 250 * time.Millisecond
	s := New(Config{Registry: distjoin.NewRegistry(), SlowQueryThreshold: threshold})
	defer s.Close()

	s.recordRequest(newTelemetry(s, "join/k", http.StatusOK), threshold)
	if got := s.slow.snapshot(); len(got) != 0 {
		t.Fatalf("elapsed == threshold logged as slow: %+v", got)
	}
	if n := s.metrics.Snapshot().SlowQueries; n != 0 {
		t.Fatalf("slow counter after exactly-at-threshold request: %d, want 0", n)
	}

	over := newTelemetry(s, "join/k", http.StatusOK)
	s.recordRequest(over, threshold+time.Nanosecond)
	got := s.slow.snapshot()
	if len(got) != 1 {
		t.Fatalf("elapsed just over threshold: %d slow entries, want 1", len(got))
	}
	if got[0].QueryID != over.queryID {
		t.Fatalf("slow entry query_id %q, want %q", got[0].QueryID, over.queryID)
	}
	if n := s.metrics.Snapshot().SlowQueries; n != 1 {
		t.Fatalf("slow counter: %d, want 1", n)
	}
}

// TestSlowLogRingEviction: the ring keeps the most recent entries and
// snapshots them oldest-first.
func TestSlowLogRingEviction(t *testing.T) {
	l := newSlowLog(3)
	for i := 0; i < 5; i++ {
		l.push(slowLogEntry{QueryID: fmt.Sprintf("q-%d", i)})
	}
	got := l.snapshot()
	want := []string{"q-2", "q-3", "q-4"}
	if len(got) != len(want) {
		t.Fatalf("ring holds %d entries, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].QueryID != id {
			t.Fatalf("entry %d = %q, want %q (oldest first)", i, got[i].QueryID, id)
		}
	}
}

// syncBuffer serializes writes so the slog handler (invoked on request
// goroutines) and the test's reads don't race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestLogSchema pins the structured request log's JSON shape:
// one parseable line per request carrying the documented keys with the
// documented types. Runs under -race in CI, guarding the logging path
// against data races with concurrent telemetry.
func TestRequestLogSchema(t *testing.T) {
	var logBuf syncBuffer
	_, left, right, h := testServer(t, Config{
		Registry:           distjoin.NewRegistry(),
		Logger:             slog.New(slog.NewJSONHandler(&logBuf, nil)),
		SlowQueryThreshold: time.Nanosecond, // everything is slow
	})
	_, _ = left, right

	code, body := postJSON(t, http.DefaultClient, h.URL+"/v1/join/k",
		kDistanceRequest{Left: "left", Right: "right", K: 5})
	if code != http.StatusOK {
		t.Fatalf("query: %d: %s", code, body)
	}

	lines := bytes.Split(bytes.TrimSpace([]byte(logBuf.String())), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("no request log line emitted")
	}
	var rec map[string]any
	if err := json.Unmarshal(lines[len(lines)-1], &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if rec["msg"] != "request" {
		t.Fatalf("log msg %q, want \"request\"", rec["msg"])
	}
	if rec["level"] != "WARN" {
		t.Fatalf("slow request logged at %v, want WARN", rec["level"])
	}
	// Schema: key -> required JSON type. Renaming or dropping one of
	// these breaks downstream log pipelines; this test is the contract.
	wantString := []string{"query_id", "family", "index", "edmax_mode", "error"}
	wantNumber := []string{"k", "status", "admission_wait_us", "queue_depth_at_entry",
		"deadline_ms", "elapsed_ms", "dist_calcs", "results"}
	for _, key := range wantString {
		if _, ok := rec[key].(string); !ok {
			t.Errorf("log key %q: %T(%v), want string", key, rec[key], rec[key])
		}
	}
	for _, key := range wantNumber {
		if _, ok := rec[key].(float64); !ok {
			t.Errorf("log key %q: %T(%v), want number", key, rec[key], rec[key])
		}
	}
	if slow, ok := rec["slow"].(bool); !ok || !slow {
		t.Errorf("log key slow = %v, want true", rec["slow"])
	}
	if rec["family"] != "join/k" {
		t.Errorf("family %v, want join/k", rec["family"])
	}
	if rec["status"] != float64(http.StatusOK) {
		t.Errorf("status %v, want 200", rec["status"])
	}
}

// TestQueryIDCorrelation: the minted ID appears as the response
// header, in the response body, and on the registry's in-flight /
// query accounting path.
func TestQueryIDCorrelation(t *testing.T) {
	reg := distjoin.NewRegistry()
	_, _, _, h := testServer(t, Config{Registry: reg})

	b, _ := json.Marshal(kDistanceRequest{Left: "left", Right: "right", K: 5})
	resp, err := http.Post(h.URL+"/v1/join/k", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	qid := resp.Header.Get("X-Distjoin-Query-Id")
	if qid == "" {
		t.Fatal("no X-Distjoin-Query-Id response header")
	}
	if resp.Header.Get("X-Distjoin-Admission-Wait") == "" {
		t.Fatal("no X-Distjoin-Admission-Wait response header")
	}
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.QueryID != qid {
		t.Fatalf("body query_id %q != header %q", out.QueryID, qid)
	}

	// A second request gets a distinct ID.
	resp2, err := http.Post(h.URL+"/v1/join/k", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if qid2 := resp2.Header.Get("X-Distjoin-Query-Id"); qid2 == qid {
		t.Fatalf("two requests share query ID %q", qid)
	}
}

// TestExplainRoundtrip: ?explain=1 embeds the trace timeline, and its
// dist-calc total matches the response's stats block exactly (both
// read the same collector).
func TestExplainRoundtrip(t *testing.T) {
	_, _, _, h := testServer(t, Config{Registry: distjoin.NewRegistry()})

	code, body := postJSON(t, http.DefaultClient, h.URL+"/v1/join/k?explain=1",
		kDistanceRequest{Left: "left", Right: "right", K: 25})
	if code != http.StatusOK {
		t.Fatalf("explain query: %d: %s", code, body)
	}
	var out queryResponse
	decodeInto(t, body, &out)
	if out.Explain == nil {
		t.Fatal("?explain=1 response has no explain block")
	}
	ex := out.Explain
	if len(ex.Events) == 0 {
		t.Fatal("explain block has no trace events")
	}
	if len(ex.Summary.Stages) == 0 {
		t.Fatal("explain summary has no stage spans")
	}
	for _, sp := range ex.Summary.Stages {
		if sp.EndUS < sp.StartUS {
			t.Fatalf("stage %s/%s: end %d before start %d", sp.Algo, sp.Stage, sp.EndUS, sp.StartUS)
		}
	}
	if ex.Summary.DistCalcs != out.Stats.DistCalcs {
		t.Fatalf("explain dist_calcs %d != stats dist_calcs %d (must share one collector)",
			ex.Summary.DistCalcs, out.Stats.DistCalcs)
	}
	if ex.Summary.QueueInserts != out.Stats.QueueInserts {
		t.Fatalf("explain queue_inserts %d != stats queue_inserts %d",
			ex.Summary.QueueInserts, out.Stats.QueueInserts)
	}

	// Without the parameter the block is absent.
	code, body = postJSON(t, http.DefaultClient, h.URL+"/v1/join/k",
		kDistanceRequest{Left: "left", Right: "right", K: 25})
	if code != http.StatusOK {
		t.Fatalf("plain query: %d: %s", code, body)
	}
	var plain queryResponse
	decodeInto(t, body, &plain)
	if plain.Explain != nil {
		t.Fatal("explain block present without ?explain=1")
	}
}

// TestSlowLogEndpoint: slow queries surface on /debug/slowlog with the
// slowLogEntry schema, and the endpoint wins the mux precedence
// contest against the /debug/ observability catch-all.
func TestSlowLogEndpoint(t *testing.T) {
	_, _, _, h := testServer(t, Config{
		Registry:           distjoin.NewRegistry(),
		SlowQueryThreshold: time.Nanosecond,
	})

	code, body := postJSON(t, http.DefaultClient, h.URL+"/v1/join/k",
		kDistanceRequest{Left: "left", Right: "right", K: 5})
	if code != http.StatusOK {
		t.Fatalf("query: %d: %s", code, body)
	}

	resp, err := http.Get(h.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slowlog: %d", resp.StatusCode)
	}
	var out struct {
		ThresholdMS int64          `json:"threshold_ms"`
		Entries     []slowLogEntry `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) == 0 {
		t.Fatal("slow query not retained in /debug/slowlog")
	}
	e := out.Entries[len(out.Entries)-1]
	if e.Family != "join/k" || e.QueryID == "" || e.Status != http.StatusOK {
		t.Fatalf("slowlog entry %+v: want family join/k, non-empty query_id, status 200", e)
	}
}

// TestRetryAfterSeconds pins the 429 backoff pricing: ceil((depth+1) /
// rate), clamped to [1, 60], with a floor fallback when the rate is
// unknown.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		depth int
		rate  float64
		want  int
	}{
		{depth: 0, rate: 0, want: 1},    // cold server: floor
		{depth: 100, rate: -1, want: 1}, // nonsense rate: floor
		{depth: 0, rate: 10, want: 1},   // one ahead, fast drain
		{depth: 9, rate: 10, want: 1},   // 10 ahead at 10/s
		{depth: 10, rate: 10, want: 2},  // 11 ahead at 10/s: ceil
		{depth: 99, rate: 2, want: 50},
		{depth: 10_000, rate: 1, want: 60}, // clamp at 60s
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.depth, c.rate); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %g) = %d, want %d", c.depth, c.rate, got, c.want)
		}
	}
}

// TestShedHeaders: a queue-full rejection carries the drain-rate
// priced Retry-After and the observed queue depth.
func TestShedHeaders(t *testing.T) {
	s := New(Config{Registry: distjoin.NewRegistry()})
	defer s.Close()
	rec := httptest.NewRecorder()
	s.writeError(rec, errQueueFull)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("Retry-After %q, want integer in [1, 60]", rec.Header().Get("Retry-After"))
	}
	if _, err := strconv.Atoi(rec.Header().Get("X-Queue-Depth")); err != nil {
		t.Fatalf("X-Queue-Depth %q, want integer", rec.Header().Get("X-Queue-Depth"))
	}
}

// TestDrainTrackerRate: completions observed over a full window become
// the published rate; an idle tracker reports zero (falling back to
// the Retry-After floor).
func TestDrainTrackerRate(t *testing.T) {
	var d drainTracker
	base := time.Now()
	if r := d.ratePerSec(base); r != 0 {
		t.Fatalf("cold tracker rate %g, want 0", r)
	}
	for i := 0; i < 30; i++ {
		d.observe()
	}
	got := d.ratePerSec(base.Add(2 * time.Second)) // full window: 30 done in 2s
	if got < 14 || got > 16 {
		t.Fatalf("windowed rate %g, want ~15", got)
	}
	// Inside the next window the last full-window rate still applies.
	if r := d.ratePerSec(base.Add(2*time.Second + 100*time.Millisecond)); r != got {
		t.Fatalf("in-window rate %g, want last window's %g", r, got)
	}
}
