package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"distjoin"
)

// Wire schema of the /v1 query API (docs/serving.md). All request
// bodies are JSON; all responses are JSON. Omitted numeric fields
// select server defaults; every client-supplied budget (deadline_ms,
// queue_mem_bytes, k, page_size, limit) is clamped or rejected
// against the server's configured maxima.

// statusClientClosedRequest is the nginx-convention status for a
// query aborted because the client went away mid-execution.
const statusClientClosedRequest = 499

// maxBodyBytes bounds one request body; query requests are small.
const maxBodyBytes = 1 << 20

type pairJSON struct {
	Left  int64   `json:"left"`
	Right int64   `json:"right"`
	Dist  float64 `json:"dist"`
}

type statsJSON struct {
	ElapsedMS    float64 `json:"elapsed_ms"`
	DistCalcs    int64   `json:"dist_calcs"`
	QueueInserts int64   `json:"queue_inserts"`
	NodesRead    int64   `json:"nodes_read"`
}

type queryResponse struct {
	// QueryID echoes the X-Distjoin-Query-Id header so the response
	// body is self-describing in logs and captures.
	QueryID   string     `json:"query_id,omitempty"`
	Pairs     []pairJSON `json:"pairs"`
	Truncated bool       `json:"truncated,omitempty"`
	Stats     statsJSON  `json:"stats"`
	// Explain carries the per-query trace timeline when the request
	// opted in with ?explain=1.
	Explain *explainJSON `json:"explain,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

type kDistanceRequest struct {
	Left          string  `json:"left"`
	Right         string  `json:"right"`
	K             int     `json:"k"`
	Algorithm     string  `json:"algorithm,omitempty"`
	MaxDist       float64 `json:"max_dist,omitempty"` // SJ-SORT's within bound
	Shards        int     `json:"shards,omitempty"`
	Parallelism   int     `json:"parallelism,omitempty"`
	QueueMemBytes int     `json:"queue_mem_bytes,omitempty"`
	DeadlineMS    int64   `json:"deadline_ms,omitempty"`
}

type kClosestRequest struct {
	Index         string `json:"index"`
	K             int    `json:"k"`
	Shards        int    `json:"shards,omitempty"`
	Parallelism   int    `json:"parallelism,omitempty"`
	QueueMemBytes int    `json:"queue_mem_bytes,omitempty"`
	DeadlineMS    int64  `json:"deadline_ms,omitempty"`
}

type withinRequest struct {
	Left          string  `json:"left"`
	Right         string  `json:"right"`
	MaxDist       float64 `json:"max_dist"`
	Limit         int     `json:"limit,omitempty"`
	QueueMemBytes int     `json:"queue_mem_bytes,omitempty"`
	DeadlineMS    int64   `json:"deadline_ms,omitempty"`
}

type incrementalOpenRequest struct {
	Left          string `json:"left"`
	Right         string `json:"right"`
	PageSize      int    `json:"page_size,omitempty"`
	BatchK        int    `json:"batch_k,omitempty"`
	QueueMemBytes int    `json:"queue_mem_bytes,omitempty"`
	DeadlineMS    int64  `json:"deadline_ms,omitempty"`
}

type incrementalNextRequest struct {
	Cursor   string `json:"cursor"`
	PageSize int    `json:"page_size,omitempty"`
}

type incrementalCloseRequest struct {
	Cursor string `json:"cursor"`
}

type incrementalResponse struct {
	QueryID  string     `json:"query_id,omitempty"`
	Cursor   string     `json:"cursor,omitempty"`
	Pairs    []pairJSON `json:"pairs"`
	Done     bool       `json:"done"`
	Returned int64      `json:"returned"`
	// DeadlineMS is how long the cursor has left, so clients can pace
	// their pagination.
	DeadlineMS int64 `json:"deadline_ms"`
}

// apiError pairs an HTTP status with a client-facing message.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) *apiError {
	return &apiError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// writeError renders err with the right status and counts it. The
// mapping is the budget contract of the API: admission overflow → 429
// (shed load, retry later), shutdown → 503, deadline → 504, client
// disconnect → 499, malformed request → 400.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		status = ae.status
	case errors.Is(err, errQueueFull):
		status = http.StatusTooManyRequests
		// Retry-After is priced from the observed drain rate: roughly
		// how long until the queue ahead of this client has drained.
		// X-Queue-Depth lets clients back off proportionally.
		depth := s.gate.queued()
		w.Header().Set("Retry-After",
			strconv.Itoa(retryAfterSeconds(depth, s.drain.ratePerSec(time.Now()))))
		w.Header().Set("X-Queue-Depth", strconv.Itoa(depth))
	case errors.Is(err, errDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		s.stats.Deadline.Add(1)
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
		s.stats.ClientGone.Add(1)
	}
	if status == http.StatusInternalServerError {
		s.stats.Failed.Add(1)
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// failRequest records err on the request's telemetry, then renders it.
func (s *Server) failRequest(w http.ResponseWriter, tel *reqTelemetry, err error) {
	tel.err = err
	s.writeError(w, err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// The response is already streaming; an error here means the
		// client went away.
		_ = err
	}
}

// decode reads one JSON request body into v.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("invalid request body: trailing data")
	}
	return nil
}

// parseAlgorithm maps the wire names onto Algorithm values.
func parseAlgorithm(name string) (distjoin.Algorithm, error) {
	switch strings.ToLower(name) {
	case "", "am", "amkdj", "am-kdj":
		return distjoin.AMKDJ, nil
	case "b", "bkdj", "b-kdj":
		return distjoin.BKDJ, nil
	case "hs", "hskdj", "hs-kdj":
		return distjoin.HSKDJ, nil
	case "sj", "sjsort", "sj-sort":
		return distjoin.SJSort, nil
	default:
		return 0, badRequest("unknown algorithm %q (want am, b, hs, or sj)", name)
	}
}

// resolve looks up a dataset by name with a 404-mapped error.
func (s *Server) resolve(field, name string) (*distjoin.Index, error) {
	if name == "" {
		return nil, badRequest("%s: dataset name required", field)
	}
	idx, ok := s.lookup(name)
	if !ok {
		return nil, notFound("%s: unknown dataset %q", field, name)
	}
	return idx, nil
}

// checkK validates a ranked query's k against the server budget.
func (s *Server) checkK(k int) error {
	if k <= 0 {
		return badRequest("k must be positive, got %d", k)
	}
	if m := s.cfg.maxK(); k > m {
		return badRequest("k %d exceeds the server budget %d", k, m)
	}
	return nil
}

// pageSize resolves a requested incremental page size against the
// budget (0 selects the maximum).
func (s *Server) pageSize(req int) (int, error) {
	m := s.cfg.maxPageSize()
	if req < 0 {
		return 0, badRequest("page_size must be non-negative, got %d", req)
	}
	if req == 0 || req > m {
		return m, nil
	}
	return req, nil
}

// makeStats converts engine counters for the response.
func makeStats(st *distjoin.Stats, elapsed time.Duration) statsJSON {
	return statsJSON{
		ElapsedMS:    float64(elapsed.Microseconds()) / 1e3,
		DistCalcs:    st.DistCalcs(),
		QueueInserts: st.QueueInserts(),
		NodesRead:    st.NodeAccessesLogical,
	}
}

func makePairs(pairs []distjoin.Pair) []pairJSON {
	out := make([]pairJSON, len(pairs))
	for i, p := range pairs {
		out[i] = pairJSON{Left: p.LeftID, Right: p.RightID, Dist: p.Dist}
	}
	return out
}

// handleKDistance serves POST /v1/join/k.
func (s *Server) handleKDistance(w http.ResponseWriter, r *http.Request) {
	tel, w := s.beginRequest(w, "join/k")
	defer tel.finish()
	var req kDistanceRequest
	if err := decode(r, &req); err != nil {
		s.failRequest(w, tel, err)
		return
	}
	tel.index = req.Left + "," + req.Right
	tel.k = req.K
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}
	if err := s.checkK(req.K); err != nil {
		s.failRequest(w, tel, err)
		return
	}
	// Mirror the facade's Shards contract at the API boundary so the
	// client gets a 400, not a 500, for the misconfiguration.
	if req.Shards > 0 && algo != distjoin.AMKDJ && algo != distjoin.BKDJ {
		s.failRequest(w, tel, badRequest("shards requires algorithm am or b, got %q", req.Algorithm))
		return
	}
	if algo == distjoin.SJSort && req.MaxDist <= 0 {
		s.failRequest(w, tel, badRequest("algorithm sj requires max_dist > 0"))
		return
	}
	left, err := s.resolve("left", req.Left)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}
	right, err := s.resolve("right", req.Right)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}

	tel.deadline = s.deadline(req.DeadlineMS)
	ctx, cancel := context.WithTimeout(r.Context(), tel.deadline)
	defer cancel()
	release, err := s.admitTimed(ctx, tel)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	var st distjoin.Stats
	tel.st = &st
	opts := &distjoin.Options{
		Algorithm:     algo,
		MaxDist:       req.MaxDist,
		Shards:        req.Shards,
		Parallelism:   req.Parallelism,
		QueueMemBytes: s.queueMem(req.QueueMemBytes),
		Context:       ctx,
		Stats:         &st,
		Registry:      s.cfg.Registry,
		QueryID:       tel.queryID,
	}
	var tr *distjoin.Tracer
	if wantExplain(r) {
		tr = distjoin.NewTracer(0)
		opts.Trace = tr
	}
	start := time.Now()
	pairs, err := distjoin.KDistanceJoin(left, right, req.K, opts)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}
	tel.results = len(pairs)
	resp := queryResponse{
		QueryID: tel.queryID,
		Pairs:   makePairs(pairs),
		Stats:   makeStats(&st, time.Since(start)),
	}
	if tr != nil {
		resp.Explain = buildExplain(tr, &st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleKClosest serves POST /v1/join/closest.
func (s *Server) handleKClosest(w http.ResponseWriter, r *http.Request) {
	tel, w := s.beginRequest(w, "join/closest")
	defer tel.finish()
	var req kClosestRequest
	if err := decode(r, &req); err != nil {
		s.failRequest(w, tel, err)
		return
	}
	tel.index = req.Index
	tel.k = req.K
	if err := s.checkK(req.K); err != nil {
		s.failRequest(w, tel, err)
		return
	}
	idx, err := s.resolve("index", req.Index)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}

	tel.deadline = s.deadline(req.DeadlineMS)
	ctx, cancel := context.WithTimeout(r.Context(), tel.deadline)
	defer cancel()
	release, err := s.admitTimed(ctx, tel)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	var st distjoin.Stats
	tel.st = &st
	opts := &distjoin.Options{
		Shards:        req.Shards,
		Parallelism:   req.Parallelism,
		QueueMemBytes: s.queueMem(req.QueueMemBytes),
		Context:       ctx,
		Stats:         &st,
		Registry:      s.cfg.Registry,
		QueryID:       tel.queryID,
	}
	var tr *distjoin.Tracer
	if wantExplain(r) {
		tr = distjoin.NewTracer(0)
		opts.Trace = tr
	}
	start := time.Now()
	pairs, err := distjoin.KClosestPairs(idx, req.K, opts)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}
	tel.results = len(pairs)
	resp := queryResponse{
		QueryID: tel.queryID,
		Pairs:   makePairs(pairs),
		Stats:   makeStats(&st, time.Since(start)),
	}
	if tr != nil {
		resp.Explain = buildExplain(tr, &st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWithin serves POST /v1/join/within. Pairs stream from the
// engine in no particular order; the response carries up to the
// requested limit (clamped to the server budget) and flags
// truncation.
func (s *Server) handleWithin(w http.ResponseWriter, r *http.Request) {
	tel, w := s.beginRequest(w, "join/within")
	defer tel.finish()
	var req withinRequest
	if err := decode(r, &req); err != nil {
		s.failRequest(w, tel, err)
		return
	}
	tel.index = req.Left + "," + req.Right
	if req.MaxDist < 0 || math.IsNaN(req.MaxDist) {
		s.failRequest(w, tel, badRequest("max_dist must be a non-negative number"))
		return
	}
	limit := s.cfg.maxResults()
	if req.Limit < 0 {
		s.failRequest(w, tel, badRequest("limit must be non-negative, got %d", req.Limit))
		return
	}
	if req.Limit > 0 && req.Limit < limit {
		limit = req.Limit
	}
	left, err := s.resolve("left", req.Left)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}
	right, err := s.resolve("right", req.Right)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}

	tel.deadline = s.deadline(req.DeadlineMS)
	ctx, cancel := context.WithTimeout(r.Context(), tel.deadline)
	defer cancel()
	release, err := s.admitTimed(ctx, tel)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	var st distjoin.Stats
	tel.st = &st
	opts := &distjoin.Options{
		QueueMemBytes: s.queueMem(req.QueueMemBytes),
		Context:       ctx,
		Stats:         &st,
		Registry:      s.cfg.Registry,
		QueryID:       tel.queryID,
	}
	var tr *distjoin.Tracer
	if wantExplain(r) {
		tr = distjoin.NewTracer(0)
		opts.Trace = tr
	}
	var (
		pairs     []distjoin.Pair
		truncated bool
	)
	start := time.Now()
	err = distjoin.WithinJoin(left, right, req.MaxDist, opts, func(p distjoin.Pair) bool {
		if len(pairs) >= limit {
			truncated = true
			return false
		}
		pairs = append(pairs, p)
		return true
	})
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}
	tel.results = len(pairs)
	resp := queryResponse{
		QueryID:   tel.queryID,
		Pairs:     makePairs(pairs),
		Truncated: truncated,
		Stats:     makeStats(&st, time.Since(start)),
	}
	if tr != nil {
		resp.Explain = buildExplain(tr, &st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleIncrementalOpen serves POST /v1/join/incremental: it opens an
// incremental join, pulls the first page, and — unless the join is
// already exhausted — registers a cursor whose remaining pages are
// fetched with /v1/join/incremental/next. The deadline covers the
// cursor's whole lifetime.
func (s *Server) handleIncrementalOpen(w http.ResponseWriter, r *http.Request) {
	tel, w := s.beginRequest(w, "incremental/open")
	defer tel.finish()
	var req incrementalOpenRequest
	if err := decode(r, &req); err != nil {
		s.failRequest(w, tel, err)
		return
	}
	tel.index = req.Left + "," + req.Right
	page, err := s.pageSize(req.PageSize)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}
	if req.BatchK < 0 {
		s.failRequest(w, tel, badRequest("batch_k must be non-negative, got %d", req.BatchK))
		return
	}
	left, err := s.resolve("left", req.Left)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}
	right, err := s.resolve("right", req.Right)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}

	d := s.deadline(req.DeadlineMS)
	tel.deadline = d
	deadline := time.Now().Add(d)
	// Admission waits under the request context; the iterator runs
	// under a cursor context rooted in the server's base context (it
	// must outlive this request), sharing the same absolute deadline.
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()
	release, err := s.admitTimed(ctx, tel)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	curCtx, curCancel := context.WithDeadline(s.base, deadline)
	it, err := distjoin.IncrementalJoin(left, right, &distjoin.Options{
		BatchK:        req.BatchK,
		QueueMemBytes: s.queueMem(req.QueueMemBytes),
		Context:       curCtx,
		Registry:      s.cfg.Registry,
		QueryID:       tel.queryID,
	})
	if err != nil {
		curCancel()
		s.failRequest(w, tel, err)
		return
	}
	id, err := newID()
	if err != nil {
		it.Close()
		curCancel()
		s.failRequest(w, tel, err)
		return
	}
	cur := &cursor{id: id, deadline: deadline, cancel: curCancel, it: it}

	pairs, done, returned, err := cur.next(page)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}
	tel.results = len(pairs)
	resp := incrementalResponse{
		QueryID:    tel.queryID,
		Pairs:      makePairs(pairs),
		Done:       done,
		Returned:   returned,
		DeadlineMS: time.Until(deadline).Milliseconds(),
	}
	if !done {
		if err := s.cursors.add(cur, time.Now()); err != nil {
			cur.close()
			s.failRequest(w, tel, err)
			return
		}
		s.metrics.IncCursorOpened()
		resp.Cursor = id
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleIncrementalNext serves POST /v1/join/incremental/next.
func (s *Server) handleIncrementalNext(w http.ResponseWriter, r *http.Request) {
	tel, w := s.beginRequest(w, "incremental/next")
	defer tel.finish()
	var req incrementalNextRequest
	if err := decode(r, &req); err != nil {
		s.failRequest(w, tel, err)
		return
	}
	page, err := s.pageSize(req.PageSize)
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}
	cur, ok := s.cursors.get(req.Cursor, time.Now())
	if !ok {
		s.failRequest(w, tel, notFound("unknown cursor %q (closed, expired, or never opened)", req.Cursor))
		return
	}

	// Bound the admission wait by the cursor's remaining lifetime.
	tel.deadline = time.Until(cur.deadline)
	ctx, cancel := context.WithDeadline(r.Context(), cur.deadline)
	defer cancel()
	release, err := s.admitTimed(ctx, tel)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	pairs, done, returned, err := cur.next(page)
	if done {
		s.cursors.remove(cur.id)
	}
	if err != nil {
		s.failRequest(w, tel, err)
		return
	}
	tel.results = len(pairs)
	writeJSON(w, http.StatusOK, incrementalResponse{
		QueryID:    tel.queryID,
		Cursor:     req.Cursor,
		Pairs:      makePairs(pairs),
		Done:       done,
		Returned:   returned,
		DeadlineMS: time.Until(cur.deadline).Milliseconds(),
	})
}

// handleIncrementalClose serves POST /v1/join/incremental/close.
// Closing releases the cursor's engine iterator (idempotent at the
// iterator level) and its registry entry.
func (s *Server) handleIncrementalClose(w http.ResponseWriter, r *http.Request) {
	tel, w := s.beginRequest(w, "incremental/close")
	defer tel.finish()
	var req incrementalCloseRequest
	if err := decode(r, &req); err != nil {
		s.failRequest(w, tel, err)
		return
	}
	cur, ok := s.cursors.remove(req.Cursor)
	if !ok {
		s.failRequest(w, tel, notFound("unknown cursor %q (closed, expired, or never opened)", req.Cursor))
		return
	}
	cur.close()
	writeJSON(w, http.StatusOK, struct {
		QueryID string `json:"query_id"`
		Closed  bool   `json:"closed"`
	}{tel.queryID, true})
}

// handleIndexes serves GET /v1/indexes.
func (s *Server) handleIndexes(w http.ResponseWriter, r *http.Request) {
	type indexJSON struct {
		Name   string     `json:"name"`
		Len    int        `json:"len"`
		Height int        `json:"height"`
		Bounds [4]float64 `json:"bounds"` // x1 y1 x2 y2
	}
	names := s.indexNames()
	out := make([]indexJSON, 0, len(names))
	for _, name := range names {
		idx, ok := s.lookup(name)
		if !ok {
			continue
		}
		b := idx.Bounds()
		out = append(out, indexJSON{
			Name:   name,
			Len:    idx.Len(),
			Height: idx.Height(),
			Bounds: [4]float64{b.MinX, b.MinY, b.MaxX, b.MaxY},
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Indexes []indexJSON `json:"indexes"`
	}{out})
}

// handleStats serves GET /v1/stats: the server's own admission and
// scheduling counters (the engine-level view lives on /metrics).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		InFlight      int   `json:"in_flight"`
		Queued        int   `json:"queued"`
		OpenCursors   int   `json:"open_cursors"`
		Accepted      int64 `json:"accepted_total"`
		RejectedFull  int64 `json:"rejected_queue_full_total"`
		RejectedDown  int64 `json:"rejected_draining_total"`
		DeadlineTotal int64 `json:"deadline_exceeded_total"`
		ClientGone    int64 `json:"client_gone_total"`
		Failed        int64 `json:"failed_total"`
		Draining      bool  `json:"draining"`
	}{
		InFlight:      s.gate.inFlight(),
		Queued:        s.gate.queued(),
		OpenCursors:   s.cursors.open(),
		Accepted:      s.stats.Accepted.Load(),
		RejectedFull:  s.stats.RejectedFull.Load(),
		RejectedDown:  s.stats.RejectedDown.Load(),
		DeadlineTotal: s.stats.Deadline.Load(),
		ClientGone:    s.stats.ClientGone.Load(),
		Failed:        s.stats.Failed.Load(),
		Draining:      s.Draining(),
	})
}

// drainBody fully reads and closes a response body so the HTTP client
// can reuse the connection; shared by the in-repo API clients
// (cmd/distjoin-load and the tests).
func drainBody(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}
