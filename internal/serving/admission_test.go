package serving

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestGateBounds: slot and waiter capacities are exact.
func TestGateBounds(t *testing.T) {
	g := newGate(2, 1)
	ctx := context.Background()
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if g.inFlight() != 2 {
		t.Fatalf("inFlight = %d, want 2", g.inFlight())
	}

	// One waiter fits in the queue.
	waited := make(chan error, 1)
	go func() { waited <- g.acquire(ctx) }()
	deadline := time.Now().Add(time.Second)
	for g.queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full: the next acquire is rejected, not blocked.
	if err := g.acquire(ctx); !errors.Is(err, errQueueFull) {
		t.Fatalf("acquire on full queue = %v, want errQueueFull", err)
	}

	// Releasing a slot admits the waiter.
	g.release()
	if err := <-waited; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	g.release()
	g.release()
	if g.inFlight() != 0 || g.queued() != 0 {
		t.Fatalf("after release: inFlight=%d queued=%d, want 0/0", g.inFlight(), g.queued())
	}
}

// TestGateContextCancel: a queued waiter unblocks with the context's
// error and frees its queue token.
func TestGateContextCancel(t *testing.T) {
	g := newGate(1, 2)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waited := make(chan error, 1)
	go func() { waited <- g.acquire(ctx) }()
	deadline := time.Now().Add(time.Second)
	for g.queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-waited; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	if g.queued() != 0 {
		t.Fatalf("queue token leaked: queued = %d", g.queued())
	}
	g.release()
}

// TestGateStress: heavy concurrent acquire/release never exceeds the
// slot bound and never deadlocks (run with -race).
func TestGateStress(t *testing.T) {
	const slots = 3
	g := newGate(slots, 8)
	var (
		mu      sync.Mutex
		cur, mx int
	)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 50; i++ {
				if err := g.acquire(ctx); err != nil {
					if !errors.Is(err, errQueueFull) {
						t.Errorf("acquire: %v", err)
						return
					}
					continue
				}
				mu.Lock()
				cur++
				if cur > mx {
					mx = cur
				}
				mu.Unlock()
				mu.Lock()
				cur--
				mu.Unlock()
				g.release()
			}
		}()
	}
	wg.Wait()
	if mx > slots {
		t.Fatalf("observed %d concurrent holders, bound is %d", mx, slots)
	}
	if g.inFlight() != 0 || g.queued() != 0 {
		t.Fatalf("tokens leaked: inFlight=%d queued=%d", g.inFlight(), g.queued())
	}
}
