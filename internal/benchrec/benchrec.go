// Package benchrec defines the schema-versioned JSON performance
// record produced by `distjoin-bench -bench-json` and the comparison
// logic used by `cmd/benchdiff` and the CI regression gate.
//
// A Record captures one harness run: the workload identity (scale,
// seed) plus one Entry per benchmarked query. Entries carry the
// deterministic cost counters of internal/metrics (distance
// computations, queue insertions, node accesses, modeled page I/O) and
// the noisy wall-clock/allocation measurements. Comparison gates on
// the deterministic counters — two runs at the same scale and seed
// execute the identical serial query plan, so any counter growth is a
// real algorithmic regression, not scheduler jitter — while wall time
// stays informational unless a time threshold is explicitly set.
package benchrec

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"distjoin/internal/metrics"
)

// SchemaVersion is bumped whenever Record/Entry change incompatibly.
// benchdiff refuses to compare records with mismatched schemas rather
// than misreading old fields as zeros.
const SchemaVersion = 1

// Record is one full harness run.
type Record struct {
	Schema    int    `json:"schema"`
	CreatedAt string `json:"created_at,omitempty"` // RFC 3339; informational
	GoVersion string `json:"go_version,omitempty"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`

	// Workload identity: counters are only comparable between records
	// with equal scale and seed.
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`

	Entries []Entry `json:"entries"`
}

// Entry is one benchmarked query.
type Entry struct {
	Name        string `json:"name"` // unique key, e.g. "AM-KDJ/k=200"
	Algo        string `json:"algo"`
	K           int    `json:"k"`
	Parallelism int    `json:"parallelism,omitempty"` // 0/1 = serial

	// Noisy measurements: informational by default.
	WallSeconds float64 `json:"wall_seconds"`
	AllocBytes  uint64  `json:"alloc_bytes"`

	// Deterministic cost counters (serial runs).
	DistCalcs     int64 `json:"dist_calcs"`
	QueueInserts  int64 `json:"queue_inserts"`
	NodesLogical  int64 `json:"nodes_logical"`
	NodesPhysical int64 `json:"nodes_physical"`
	QueuePageIO   int64 `json:"queue_page_io"`
	SortPageIO    int64 `json:"sort_page_io"`
	Results       int64 `json:"results"`
	CompStages    int64 `json:"comp_stages"`
}

// FromCollector builds an Entry from one query's counters.
func FromCollector(name, algo string, k, parallelism int, mc *metrics.Collector, allocBytes uint64) Entry {
	return Entry{
		Name:          name,
		Algo:          algo,
		K:             k,
		Parallelism:   parallelism,
		WallSeconds:   mc.WallTime.Seconds(),
		AllocBytes:    allocBytes,
		DistCalcs:     mc.DistCalcs(),
		QueueInserts:  mc.QueueInserts(),
		NodesLogical:  mc.NodeAccessesLogical,
		NodesPhysical: mc.NodeAccessesPhysical,
		QueuePageIO:   mc.QueuePageReads + mc.QueuePageWrites,
		SortPageIO:    mc.SortPageReads + mc.SortPageWrites,
		Results:       mc.ResultsProduced,
		CompStages:    mc.CompensationStages,
	}
}

// WriteFile writes r as indented JSON (with trailing newline) to path.
func WriteFile(path string, r *Record) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile reads and validates a record.
func ReadFile(path string) (*Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this build understands %d", path, r.Schema, SchemaVersion)
	}
	seen := make(map[string]bool, len(r.Entries))
	for _, e := range r.Entries {
		if e.Name == "" {
			return nil, fmt.Errorf("%s: entry with empty name", path)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("%s: duplicate entry %q", path, e.Name)
		}
		seen[e.Name] = true
	}
	return &r, nil
}

// Options configures Compare.
type Options struct {
	// Threshold is the relative counter-growth gate: new > old*(1+T)
	// flags a regression. The CI pipeline uses 0.25.
	Threshold float64
	// TimeThreshold, when > 0, additionally gates wall-clock growth.
	// Zero (the default) keeps wall time informational: shared CI
	// runners make it too noisy to fail a build on.
	TimeThreshold float64
	// AbsFloor suppresses counter findings whose absolute growth is
	// below this many units; tiny workloads otherwise trip the
	// relative gate on single-digit deltas. Default 64.
	AbsFloor int64
}

func (o Options) withDefaults() Options {
	if o.Threshold <= 0 {
		o.Threshold = 0.25
	}
	if o.AbsFloor <= 0 {
		o.AbsFloor = 64
	}
	return o
}

// Finding is one metric of one entry that grew past its threshold.
type Finding struct {
	Entry  string
	Metric string
	Old    float64
	New    float64
	// Gating findings fail the gate; non-gating ones (wall time
	// without -time-threshold, counters of parallel entries, which
	// are scheduling-dependent) are reported but don't.
	Gating bool
}

// Ratio returns New/Old (Inf when Old is zero).
func (f Finding) Ratio() float64 {
	if f.Old == 0 {
		if f.New == 0 {
			return 1
		}
		return float64(int64(1) << 62) // effectively infinite growth
	}
	return f.New / f.Old
}

func (f Finding) String() string {
	tag := "regression"
	if !f.Gating {
		tag = "note"
	}
	return fmt.Sprintf("%-10s %s %s: %.6g -> %.6g (%+.1f%%)",
		tag, f.Entry, f.Metric, f.Old, f.New, (f.Ratio()-1)*100)
}

// counterOf enumerates the gated counters of an entry.
var counters = []struct {
	name string
	get  func(Entry) int64
}{
	{"dist_calcs", func(e Entry) int64 { return e.DistCalcs }},
	{"queue_inserts", func(e Entry) int64 { return e.QueueInserts }},
	{"nodes_logical", func(e Entry) int64 { return e.NodesLogical }},
	{"nodes_physical", func(e Entry) int64 { return e.NodesPhysical }},
	{"queue_page_io", func(e Entry) int64 { return e.QueuePageIO }},
	{"sort_page_io", func(e Entry) int64 { return e.SortPageIO }},
	{"comp_stages", func(e Entry) int64 { return e.CompStages }},
}

// Compare diffs new against old and returns every finding, sorted by
// entry name then metric. It errors (rather than reporting findings)
// when the records aren't comparable: mismatched workload identity, or
// a baseline entry missing from the new record. Entries only present
// in the new record are fine — they are fresh coverage with no
// baseline to regress against.
func Compare(old, new *Record, opts Options) ([]Finding, error) {
	opts = opts.withDefaults()
	//lint:allow floatcmp workload identity check on recorded config values round-tripped through JSON, not computed distances
	if old.Scale != new.Scale || old.Seed != new.Seed {
		return nil, fmt.Errorf("records not comparable: baseline scale=%g seed=%d vs new scale=%g seed=%d",
			old.Scale, old.Seed, new.Scale, new.Seed)
	}
	byName := make(map[string]Entry, len(new.Entries))
	for _, e := range new.Entries {
		byName[e.Name] = e
	}
	var findings []Finding
	for _, oe := range old.Entries {
		ne, ok := byName[oe.Name]
		if !ok {
			return nil, fmt.Errorf("baseline entry %q missing from new record (coverage lost)", oe.Name)
		}
		// Serial counters are deterministic; parallel totals depend on
		// worker scheduling, so their findings never gate.
		gating := oe.Parallelism <= 1 && ne.Parallelism <= 1
		if oe.Results != ne.Results && gating {
			findings = append(findings, Finding{
				Entry: oe.Name, Metric: "results",
				Old: float64(oe.Results), New: float64(ne.Results), Gating: true,
			})
		}
		for _, c := range counters {
			ov, nv := c.get(oe), c.get(ne)
			if nv-ov < opts.AbsFloor {
				continue
			}
			if float64(nv) > float64(ov)*(1+opts.Threshold) {
				findings = append(findings, Finding{
					Entry: oe.Name, Metric: c.name,
					Old: float64(ov), New: float64(nv), Gating: gating,
				})
			}
		}
		if oe.WallSeconds > 0 && ne.WallSeconds > oe.WallSeconds*(1+wallThreshold(opts)) {
			findings = append(findings, Finding{
				Entry: oe.Name, Metric: "wall_seconds",
				Old: oe.WallSeconds, New: ne.WallSeconds,
				Gating: opts.TimeThreshold > 0,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Entry != findings[j].Entry {
			return findings[i].Entry < findings[j].Entry
		}
		return findings[i].Metric < findings[j].Metric
	})
	return findings, nil
}

// wallThreshold picks the wall-clock reporting threshold: the explicit
// gate when set, otherwise the counter threshold (for informational
// notes).
func wallThreshold(opts Options) float64 {
	if opts.TimeThreshold > 0 {
		return opts.TimeThreshold
	}
	return opts.Threshold
}

// Gating reports whether any finding should fail the gate.
func Gating(findings []Finding) bool {
	for _, f := range findings {
		if f.Gating {
			return true
		}
	}
	return false
}
