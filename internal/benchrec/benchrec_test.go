package benchrec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"distjoin/internal/metrics"
)

func baseRecord() *Record {
	return &Record{
		Schema: SchemaVersion,
		Scale:  0.02,
		Seed:   20000516,
		Entries: []Entry{
			{Name: "AM-KDJ/k=200", Algo: "AM-KDJ", K: 200,
				WallSeconds: 0.5, DistCalcs: 10000, QueueInserts: 5000,
				NodesLogical: 400, NodesPhysical: 100, Results: 200, CompStages: 1},
			{Name: "AM-KDJ/k=200/parallel", Algo: "AM-KDJ", K: 200, Parallelism: 8,
				WallSeconds: 0.2, DistCalcs: 10000, QueueInserts: 5000, Results: 200},
		},
	}
}

func clone(r *Record) *Record {
	c := *r
	c.Entries = append([]Entry(nil), r.Entries...)
	return &c
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rec := baseRecord()
	if err := WriteFile(path, rec); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || len(back.Entries) != 2 || back.Entries[0] != rec.Entries[0] {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	// Identical records: no findings, gate passes.
	findings, err := Compare(rec, back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 || Gating(findings) {
		t.Fatalf("identical records produced findings: %v", findings)
	}
}

func TestReadFileRejectsBadRecords(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	for _, tc := range []struct {
		name, body, wantErr string
	}{
		{"schema.json", `{"schema": 99, "entries": []}`, "schema 99"},
		{"dup.json", `{"schema": 1, "entries": [{"name":"a"},{"name":"a"}]}`, "duplicate"},
		{"unnamed.json", `{"schema": 1, "entries": [{"algo":"x"}]}`, "empty name"},
		{"garbage.json", `{]`, "invalid"},
	} {
		if _, err := ReadFile(write(tc.name, tc.body)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestCompareGatesCounterRegressions(t *testing.T) {
	old := baseRecord()
	cur := clone(old)
	cur.Entries[0].DistCalcs = 13000 // +30% > 25% threshold

	findings, err := Compare(old, cur, Options{Threshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Metric != "dist_calcs" || !findings[0].Gating {
		t.Fatalf("findings = %v, want one gating dist_calcs regression", findings)
	}
	if !Gating(findings) {
		t.Fatal("gate did not fail")
	}
	// Just under threshold: clean.
	cur.Entries[0].DistCalcs = 12400 // +24%
	if findings, _ = Compare(old, cur, Options{Threshold: 0.25}); len(findings) != 0 {
		t.Fatalf("sub-threshold growth flagged: %v", findings)
	}
}

func TestCompareAbsFloorSuppressesTinyDeltas(t *testing.T) {
	old := baseRecord()
	old.Entries[0].CompStages = 2
	cur := clone(old)
	cur.Entries[0].CompStages = 3 // +50% relative, +1 absolute
	findings, err := Compare(old, cur, Options{Threshold: 0.25, AbsFloor: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("abs-floor did not suppress single-unit growth: %v", findings)
	}
}

func TestCompareWallTimeInformationalByDefault(t *testing.T) {
	old := baseRecord()
	cur := clone(old)
	cur.Entries[0].WallSeconds = 5 // 10x slower

	findings, err := Compare(old, cur, Options{Threshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Metric != "wall_seconds" || findings[0].Gating {
		t.Fatalf("findings = %v, want one non-gating wall_seconds note", findings)
	}
	if Gating(findings) {
		t.Fatal("wall time gated without -time-threshold")
	}
	// With an explicit time threshold it gates.
	findings, err = Compare(old, cur, Options{Threshold: 0.25, TimeThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !Gating(findings) {
		t.Fatal("wall time did not gate with TimeThreshold set")
	}
}

func TestCompareParallelEntriesNeverGate(t *testing.T) {
	old := baseRecord()
	cur := clone(old)
	cur.Entries[1].DistCalcs = 100000 // 10x, but parallel
	findings, err := Compare(old, cur, Options{Threshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Gating {
		t.Fatalf("findings = %v, want one non-gating parallel note", findings)
	}
}

func TestCompareResultCardinalityChangeGates(t *testing.T) {
	old := baseRecord()
	cur := clone(old)
	cur.Entries[0].Results = 150 // join answer changed: always wrong
	findings, err := Compare(old, cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !Gating(findings) {
		t.Fatalf("result-count change did not gate: %v", findings)
	}
}

func TestCompareErrors(t *testing.T) {
	old := baseRecord()
	// Different workload identity.
	cur := clone(old)
	cur.Scale = 0.05
	if _, err := Compare(old, cur, Options{}); err == nil {
		t.Fatal("scale mismatch not rejected")
	}
	// Lost coverage.
	cur = clone(old)
	cur.Entries = cur.Entries[:1]
	if _, err := Compare(old, cur, Options{}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("lost entry err = %v", err)
	}
	// Extra entries in the candidate are fine.
	cur = clone(old)
	cur.Entries = append(cur.Entries, Entry{Name: "new-coverage"})
	if _, err := Compare(old, cur, Options{}); err != nil {
		t.Fatalf("extra entry rejected: %v", err)
	}
}

func TestFromCollector(t *testing.T) {
	mc := &metrics.Collector{}
	mc.AddRealDist(3)
	mc.AddAxisDist(4)
	mc.AddMainQueueInsert(5)
	mc.AddResult(2)
	mc.WallTime = 1500 * time.Millisecond
	e := FromCollector("AM-KDJ/k=2", "AM-KDJ", 2, 0, mc, 4096)
	if e.DistCalcs != 7 || e.QueueInserts != 5 || e.Results != 2 {
		t.Fatalf("counters not captured: %+v", e)
	}
	if e.WallSeconds != 1.5 || e.AllocBytes != 4096 {
		t.Fatalf("measurements not captured: %+v", e)
	}
}
