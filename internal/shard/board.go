package shard

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"distjoin/internal/join"
)

// canonicalLess is the engine's result tie-break (hybridq.Pair.Less):
// distance, then left ID, then right ID. All object IDs are
// non-negative, so int64 order agrees with the queue's uint64 order.
//
//lint:allow floatcmp canonical tie-break is bit-exact by contract: equal-distance pairs order by ID
func canonicalLess(a, b join.Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	if a.LeftObj != b.LeftObj {
		return a.LeftObj < b.LeftObj
	}
	return a.RightObj < b.RightObj
}

// cutoffBoard is the shared top-k accumulator: a mutex-guarded
// k-bounded max-heap of results under the canonical order, plus an
// atomically published copy of the current k-th distance upper bound
// so workers can run the pruning test without taking the lock.
//
// The bound starts at +Inf and only ever tightens; a k-bounded
// canonical heap's final content is a pure function of the inserted
// multiset, which is what makes the merge deterministic under any
// worker interleaving.
type cutoffBoard struct {
	k    int
	mu   sync.Mutex
	heap []join.Result // max-heap: heap[0] is the canonical-worst kept result
	bits atomic.Uint64 // math.Float64bits of the published bound
	seq  atomic.Int64  // cutoff-broadcast counter
}

func newBoard(k int) *cutoffBoard {
	b := &cutoffBoard{k: k}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// bound returns the published k-th distance upper bound: +Inf until k
// results have merged, then the heap root's distance.
func (b *cutoffBoard) bound() float64 {
	return math.Float64frombits(b.bits.Load())
}

// merge folds a task's results into the board. It reports the bound
// after the merge, whether this merge tightened it, and the broadcast
// sequence number of the tightening.
func (b *cutoffBoard) merge(rs []join.Result) (bound float64, tightened bool, seq int64) {
	if len(rs) == 0 {
		return b.bound(), false, 0
	}
	b.mu.Lock()
	for _, r := range rs {
		if len(b.heap) < b.k {
			b.heap = append(b.heap, r)
			b.siftUp(len(b.heap) - 1)
			continue
		}
		if canonicalLess(r, b.heap[0]) {
			b.heap[0] = r
			b.siftDown(0)
		}
	}
	bound = math.Inf(1)
	if len(b.heap) == b.k {
		bound = b.heap[0].Dist
	}
	if bound < math.Float64frombits(b.bits.Load()) {
		b.bits.Store(math.Float64bits(bound))
		tightened = true
		seq = b.seq.Add(1)
	}
	b.mu.Unlock()
	return bound, tightened, seq
}

// final returns the kept results in canonical ascending order.
func (b *cutoffBoard) final() []join.Result {
	b.mu.Lock()
	out := make([]join.Result, len(b.heap))
	copy(out, b.heap)
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return canonicalLess(out[i], out[j]) })
	return out
}

// siftUp / siftDown maintain the max-heap property under the
// canonical order: a parent is never canonically less than a child.
func (b *cutoffBoard) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !canonicalLess(b.heap[p], b.heap[i]) {
			return
		}
		b.heap[p], b.heap[i] = b.heap[i], b.heap[p]
		i = p
	}
}

func (b *cutoffBoard) siftDown(i int) {
	n := len(b.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && canonicalLess(b.heap[big], b.heap[l]) {
			big = l
		}
		if r < n && canonicalLess(b.heap[big], b.heap[r]) {
			big = r
		}
		if big == i {
			return
		}
		b.heap[i], b.heap[big] = b.heap[big], b.heap[i]
		i = big
	}
}
