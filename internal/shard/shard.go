// Package shard adds a second axis of parallelism to the k-distance
// join: instead of parallelizing expansions inside one R-tree pair, it
// grid-partitions both datasets into spatial shards, bulk-loads a
// private R-tree per shard, and schedules the cross product of
// partition *pairs* onto a worker pool. A shared, atomically published
// global cutoff — the running upper bound on the k-th smallest
// distance — feeds a bounds-only pruning test: any partition pair
// whose shard-MBR-to-shard-MBR mindist exceeds the cutoff cannot
// contribute a top-k pair and is skipped without touching its trees.
//
// # Determinism contract
//
// Sharded execution returns results byte-identical to the single-tree
// serial engine, at any shard count and any worker count:
//
//   - Every object pair appears in exactly one partition pair (each
//     object is assigned to exactly one shard by its MBR center), so
//     no pair is seen twice and none is lost.
//   - Each inner join runs the serial engine on shard trees; it
//     computes the same float operations on the same rectangles as the
//     single-tree engine, so surviving pair distances are bit-exact.
//   - The merged result set is a k-bounded heap under the engine's
//     canonical tie-break (Dist, LeftObj, RightObj). A k-bounded
//     canonical heap's final content is a pure function of the
//     inserted multiset — insertion order, and therefore worker
//     scheduling, cannot change it.
//   - Pruning is conservative: a pair is skipped only when its MBR
//     mindist is strictly greater than the current cutoff, and the
//     cutoff is always an upper bound on the final k-th distance.
//     Every object pair inside a pruned partition pair is at distance
//     >= the partition mindist > cutoff >= final k-th distance, so
//     pruned pairs contain no final result (ties at the k-boundary
//     survive because the test is strict). Which pairs get pruned is
//     timing-dependent; the final top-k is not.
//
// The trace event stream (shard_run / shard_skip / cutoff_broadcast)
// reflects actual execution order and is therefore not deterministic
// across runs with Parallelism > 1 — only the results are.
package shard

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"distjoin/internal/geom"
	"distjoin/internal/join"
	"distjoin/internal/metrics"
	"distjoin/internal/obsrv"
	"distjoin/internal/rtree"
	"distjoin/internal/storage"
	"distjoin/internal/trace"
)

// Algo selects the inner per-shard join algorithm.
type Algo int

const (
	// AMKDJ runs the adaptive multi-stage k-distance join per shard,
	// seeding each inner run's EDmax from the global cutoff (AM-KDJ's
	// compensation machinery keeps any seed exact).
	AMKDJ Algo = iota
	// BKDJ runs the basic k-distance join per shard.
	BKDJ
)

// String returns the engine's canonical algorithm name.
func (a Algo) String() string {
	if a == BKDJ {
		return "B-KDJ"
	}
	return "AM-KDJ"
}

// Config sizes the partitioning.
type Config struct {
	// Shards is the requested shard count per dataset. The grid is
	// g x g with g = round(sqrt(Shards)), so non-square requests are
	// rounded to the nearest square (minimum 1). Empty grid cells are
	// dropped, so the effective shard count can be lower on sparse or
	// skewed data.
	Shards int
	// PageSize is the page size for the per-shard tree stores;
	// <= 0 selects storage.DefaultPageSize.
	PageSize int
	// BufBytes is the per-shard tree buffer-pool size; <= 0 selects
	// defaultBufBytes.
	BufBytes int
}

// defaultBufBytes is the per-shard buffer pool used when Config leaves
// BufBytes unset. Shard trees are small (1/Shards of the data), so a
// modest pool keeps them memory-resident.
const defaultBufBytes = 512 << 10

func (c Config) grid() int {
	g := int(math.Round(math.Sqrt(float64(c.Shards))))
	if g < 1 {
		g = 1
	}
	return g
}

func (c Config) pageSize() int {
	if c.PageSize <= 0 {
		return storage.DefaultPageSize
	}
	return c.PageSize
}

func (c Config) bufBytes() int {
	if c.BufBytes <= 0 {
		return defaultBufBytes
	}
	return c.BufBytes
}

// part is one non-empty spatial shard: its members, their tight MBR,
// and the private R-tree packed over them.
type part struct {
	items []rtree.Item
	mbr   geom.Rect
	tree  *rtree.Tree
}

// task is one scheduled partition pair. mindist is the shard-MBR
// lower bound driving the pruning test.
type task struct {
	li, ri  int
	mindist float64
}

// KDJ runs the sharded k-distance join: results are byte-identical to
// join.AMKDJ / join.BKDJ on the original trees (see the package
// comment for the determinism argument). opts.Parallelism sizes the
// partition-pair worker pool (join.AutoParallelism for one worker per
// CPU); each inner per-shard join runs serially. opts.SelfJoin applies
// the usual self-join semantics (left and right must then hold the
// same dataset, and only pairs with LeftObj < RightObj are reported).
func KDJ(left, right *rtree.Tree, k int, algo Algo, cfg Config, opts join.Options) (results []join.Result, retErr error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("shard: nil tree")
	}
	if k <= 0 {
		return nil, fmt.Errorf("shard: k must be positive, got %d", k)
	}

	mc := opts.Metrics
	if mc == nil && opts.Registry != nil {
		// The registry snapshot needs a collector even when the caller
		// didn't ask for one.
		mc = &metrics.Collector{}
	}
	rq := opts.Registry.BeginNamed(algo.String()+"/shard", k, opts.QueryID)
	defer func() { rq.End(mc, retErr) }()
	mc.Start()
	defer mc.Finish()
	tr := opts.Trace

	// --- Partition ----------------------------------------------------
	rq.SetStage("partition")
	g := cfg.grid()
	world := left.Bounds().Union(right.Bounds())
	lparts, err := buildParts(left, world, g, cfg)
	if err != nil {
		return nil, fmt.Errorf("shard: left partition: %w", err)
	}
	var rparts []part
	if opts.SelfJoin {
		// Self-join: both sides are the same dataset; partition once
		// and reuse the shard trees, exactly as the serial engine
		// walks one tree against itself.
		rparts = lparts
	} else if rparts, err = buildParts(right, world, g, cfg); err != nil {
		return nil, fmt.Errorf("shard: right partition: %w", err)
	}
	if len(lparts) == 0 || len(rparts) == 0 {
		return nil, nil
	}

	tasks := planTasks(lparts, rparts, opts.SelfJoin, mc)
	if tr.Enabled() {
		tr.Emit(trace.Event{
			Kind: trace.KindShardPlan, Algo: algo.String(), Stage: "partition",
			Count: int64(len(tasks)), LeftLevel: len(lparts), RightLevel: len(rparts),
		})
	}

	// --- Join ---------------------------------------------------------
	rq.SetStage("join")
	board := newBoard(k)
	workers := resolveWorkers(opts.Parallelism)
	if workers > len(tasks) {
		workers = len(tasks)
	}

	var (
		next    atomic.Int64
		aborted atomic.Bool
		errMu   sync.Mutex
		wg      sync.WaitGroup
	)
	setErr := func(err error) {
		errMu.Lock()
		if retErr == nil {
			retErr = err
		}
		errMu.Unlock()
		aborted.Store(true)
	}
	aggs := make([]*metrics.Collector, workers)
	for w := 0; w < workers; w++ {
		agg := &metrics.Collector{}
		aggs[w] = agg
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if aborted.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				if opts.Context != nil {
					if cerr := opts.Context.Err(); cerr != nil {
						setErr(cerr)
						return
					}
				}
				if err := runTask(tasks[i], lparts, rparts, k, algo, opts, board, rq, tr, agg); err != nil {
					setErr(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if retErr != nil {
		if tr.Enabled() {
			tr.Emit(trace.Event{Kind: trace.KindError, Algo: algo.String(), Stage: "join", Err: retErr.Error()})
		}
		return nil, retErr
	}
	for _, agg := range aggs {
		mc.Add(agg)
	}

	// --- Merge --------------------------------------------------------
	rq.SetStage("merge")
	out := board.final()
	mc.AddResult(int64(len(out)))
	return out, nil
}

// resolveWorkers mirrors the join engine's Parallelism resolution:
// negative requests one worker per CPU, and the result is clamped to
// [1, join.MaxParallelism].
func resolveWorkers(p int) int {
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	if p > join.MaxParallelism {
		p = join.MaxParallelism
	}
	return p
}

// buildParts extracts t's objects, assigns each to a g x g grid cell
// by MBR center, and packs one R-tree per non-empty cell. The shard
// MBR is the tight union of member rects (tighter than the grid cell,
// which sharpens the pruning bound).
func buildParts(t *rtree.Tree, world geom.Rect, g int, cfg Config) ([]part, error) {
	items := make([]rtree.Item, 0, t.Size())
	// A nil collector keeps extraction out of the query's node-access
	// accounting; the serial engine never pays this scan either.
	err := t.Search(t.Bounds(), nil, func(it rtree.Item) bool {
		items = append(items, it)
		return true
	})
	if err != nil {
		return nil, err
	}
	cells := make([][]rtree.Item, g*g)
	for _, it := range items {
		ci := cellIndex(it.Rect.Center(), world, g)
		cells[ci] = append(cells[ci], it)
	}
	parts := make([]part, 0, len(cells))
	for _, cell := range cells {
		if len(cell) == 0 {
			continue
		}
		mbr := cell[0].Rect
		for _, it := range cell[1:] {
			mbr = mbr.Union(it.Rect)
		}
		b, err := rtree.NewBuilderForPageSize(cfg.pageSize())
		if err != nil {
			return nil, err
		}
		b.BulkLoad(cell)
		tree, err := b.Pack(storage.NewMemStore(cfg.pageSize()), cfg.bufBytes())
		if err != nil {
			return nil, err
		}
		parts = append(parts, part{items: cell, mbr: mbr, tree: tree})
	}
	return parts, nil
}

// cellIndex maps a center point to its grid cell, clamping boundary
// and degenerate (zero-extent world) cases into [0, g-1] per axis.
func cellIndex(c geom.Point, world geom.Rect, g int) int {
	ix := cellCoord(c.X, world.MinX, world.Side(0), g)
	iy := cellCoord(c.Y, world.MinY, world.Side(1), g)
	return iy*g + ix
}

func cellCoord(v, lo, side float64, g int) int {
	if side <= 0 {
		return 0
	}
	i := int(float64(g) * (v - lo) / side)
	if i < 0 {
		return 0
	}
	if i >= g {
		return g - 1
	}
	return i
}

// planTasks enumerates partition pairs with their MBR mindist lower
// bounds and sorts them ascending by (mindist, li, ri). Running likely
// close pairs first tightens the cutoff early, which is what makes the
// bounds-only pruning bite; the deterministic sort also makes the
// single-worker schedule fully reproducible for the fault harness.
func planTasks(lparts, rparts []part, selfJoin bool, mc *metrics.Collector) []task {
	var tasks []task
	for li := range lparts {
		for ri := range rparts {
			if selfJoin && ri < li {
				// (i,j) and (j,i) cover the same unordered object
				// pairs; keep the li <= ri half.
				continue
			}
			mc.AddRealDist(1)
			tasks = append(tasks, task{li: li, ri: ri, mindist: lparts[li].mbr.MinDist(rparts[ri].mbr)})
		}
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].mindist < tasks[j].mindist {
			return true
		}
		if tasks[j].mindist < tasks[i].mindist {
			return false
		}
		if tasks[i].li != tasks[j].li {
			return tasks[i].li < tasks[j].li
		}
		return tasks[i].ri < tasks[j].ri
	})
	return tasks
}

// runTask executes one partition pair on a worker: prune against the
// current cutoff, otherwise run the inner serial join on the shard
// trees, normalize self-join cross-pair orientation, and merge into
// the global board. Inner metrics fold into agg with WallTime and
// ResultsProduced zeroed — wall time is the coordinator's measurement
// and results are counted once at the end, matching the serial
// engine's accounting.
func runTask(t task, lparts, rparts []part, k int, algo Algo, opts join.Options,
	board *cutoffBoard, rq *obsrv.Query, tr *trace.Tracer, agg *metrics.Collector) error {
	bound := board.bound()
	if t.mindist > bound {
		if tr.Enabled() {
			tr.Emit(trace.Event{
				Kind: trace.KindShardSkip, Algo: algo.String(), Stage: "join",
				Dist: t.mindist, EDmax: bound, LeftLevel: t.li, RightLevel: t.ri,
			})
		}
		return nil
	}

	crossSelf := opts.SelfJoin && t.li != t.ri
	imc := &metrics.Collector{}
	inner := opts
	inner.Parallelism = 0
	inner.Metrics = imc
	inner.Trace = nil
	inner.Registry = nil
	inner.SelfJoin = opts.SelfJoin && t.li == t.ri
	if !math.IsInf(bound, 1) {
		// Seed the inner run from the global cutoff: for AM-KDJ any
		// seed is exact (compensation recovers missed pairs); B-KDJ
		// ignores EDmax entirely.
		inner.EDmax = bound
	}
	if crossSelf && opts.Refiner != nil {
		// The serial self-join engine only ever refines pairs with
		// LeftObj < RightObj. A cross-shard pair can arrive in either
		// orientation, so normalize before calling the user refiner to
		// keep the float computation bit-identical.
		user := opts.Refiner
		inner.Refiner = func(l, r int64, lr, rr geom.Rect) float64 {
			if l > r {
				return user(r, l, rr, lr)
			}
			return user(l, r, lr, rr)
		}
	}

	var (
		rs  []join.Result
		err error
	)
	switch algo {
	case BKDJ:
		rs, err = join.BKDJ(lparts[t.li].tree, rparts[t.ri].tree, k, inner)
	default:
		rs, err = join.AMKDJ(lparts[t.li].tree, rparts[t.ri].tree, k, inner)
	}
	if err != nil {
		return err
	}
	if crossSelf {
		for i := range rs {
			if rs[i].LeftObj > rs[i].RightObj {
				rs[i].LeftObj, rs[i].RightObj = rs[i].RightObj, rs[i].LeftObj
				rs[i].LeftRect, rs[i].RightRect = rs[i].RightRect, rs[i].LeftRect
			}
		}
	}

	newBound, tightened, seq := board.merge(rs)
	if tightened {
		rq.SetEDmax(newBound)
		if tr.Enabled() {
			tr.Emit(trace.Event{
				Kind: trace.KindCutoffBroadcast, Algo: algo.String(), Stage: "join",
				EDmax: newBound, Count: seq,
			})
		}
	}
	if tr.Enabled() {
		tr.Emit(trace.Event{
			Kind: trace.KindShardRun, Algo: algo.String(), Stage: "join",
			Dist: t.mindist, EDmax: bound, Count: imc.DistCalcs(),
			LeftLevel: t.li, RightLevel: t.ri,
		})
	}
	imc.WallTime = 0
	imc.ResultsProduced = 0
	agg.Add(imc)
	return nil
}
