package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"distjoin/internal/datagen"
	"distjoin/internal/geom"
	"distjoin/internal/hybridq"
	"distjoin/internal/join"
	"distjoin/internal/metrics"
	"distjoin/internal/obsrv"
	"distjoin/internal/rtree"
	"distjoin/internal/storage"
	"distjoin/internal/trace"
)

func buildTree(t *testing.T, items []rtree.Item) *rtree.Tree {
	t.Helper()
	b, err := rtree.NewBuilderForPageSize(storage.DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	b.BulkLoad(items)
	tree, err := b.Pack(storage.NewMemStore(storage.DefaultPageSize), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// sameResults asserts bit-exact identity with the serial reference.
func sameResults(t *testing.T, label string, got, want []join.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		//lint:allow floatcmp identity check is bit-exact by the determinism contract
		if got[i].Dist != want[i].Dist || got[i].LeftObj != want[i].LeftObj ||
			got[i].RightObj != want[i].RightObj ||
			got[i].LeftRect != want[i].LeftRect || got[i].RightRect != want[i].RightRect {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestShardIdentity is the tentpole contract: sharded execution is
// byte-identical to the single-tree serial engine across shard counts
// {1,4,9} x parallelism {1,8} for both inner algorithms, on uniform
// and partition-hostile data. CI's shard-identity race step runs
// exactly this test under -race.
func TestShardIdentity(t *testing.T) {
	datasets := []struct {
		name        string
		left, right []rtree.Item
	}{
		{"uniform", datagen.Uniform(7, 500, datagen.World, 4000), datagen.Uniform(8, 400, datagen.World, 4000)},
		{"straddle", datagen.GridStraddle(9, 450, 3, datagen.World, 3000), datagen.GridStraddle(10, 350, 3, datagen.World, 3000)},
	}
	for _, ds := range datasets {
		lt, rt := buildTree(t, ds.left), buildTree(t, ds.right)
		for _, algo := range []Algo{AMKDJ, BKDJ} {
			k := 64
			var want []join.Result
			var err error
			switch algo {
			case BKDJ:
				want, err = join.BKDJ(lt, rt, k, join.Options{})
			default:
				want, err = join.AMKDJ(lt, rt, k, join.Options{})
			}
			if err != nil {
				t.Fatalf("%s serial %s: %v", ds.name, algo, err)
			}
			for _, shards := range []int{1, 4, 9} {
				for _, par := range []int{1, 8} {
					got, err := KDJ(lt, rt, k, algo, Config{Shards: shards}, join.Options{Parallelism: par})
					if err != nil {
						t.Fatalf("%s %s s=%d par=%d: %v", ds.name, algo, shards, par, err)
					}
					sameResults(t, fmt.Sprintf("%s/%s/s=%d/par=%d", ds.name, algo, shards, par), got, want)
				}
			}
		}
	}
}

// TestShardRefinerIdentity covers the exact-distance refinement path:
// the refiner contract (exact >= MBR mindist) must survive sharding.
func TestShardRefinerIdentity(t *testing.T) {
	left := datagen.GaussianClusters(11, 400, 6, datagen.World, 30000, 3000)
	right := datagen.GaussianClusters(12, 300, 6, datagen.World, 30000, 3000)
	lt, rt := buildTree(t, left), buildTree(t, right)
	refine := func(_, _ int64, l, r geom.Rect) float64 { return l.CenterDist(r) }
	want, err := join.AMKDJ(lt, rt, 48, join.Options{Refiner: refine})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{4, 9} {
		got, err := KDJ(lt, rt, 48, AMKDJ, Config{Shards: shards}, join.Options{Refiner: refine, Parallelism: 8})
		if err != nil {
			t.Fatalf("s=%d: %v", shards, err)
		}
		sameResults(t, fmt.Sprintf("refined/s=%d", shards), got, want)
	}
}

// TestShardSelfJoinIdentity: sharding a self-join must reproduce the
// serial self-join exactly, including cross-shard pairs that the
// workers see in reversed orientation.
func TestShardSelfJoinIdentity(t *testing.T) {
	items := datagen.GridStraddle(13, 420, 3, datagen.World, 3000)
	tree := buildTree(t, items)
	refine := func(_, _ int64, l, r geom.Rect) float64 { return l.CenterDist(r) }
	for _, ref := range []func(int64, int64, geom.Rect, geom.Rect) float64{nil, refine} {
		want, err := join.AMKDJ(tree, tree, 56, join.Options{SelfJoin: true, Refiner: ref})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 4, 9} {
			for _, par := range []int{1, 8} {
				got, err := KDJ(tree, tree, 56, AMKDJ, Config{Shards: shards},
					join.Options{SelfJoin: true, Refiner: ref, Parallelism: par})
				if err != nil {
					t.Fatalf("s=%d par=%d: %v", shards, par, err)
				}
				sameResults(t, fmt.Sprintf("self/s=%d/par=%d/refined=%v", shards, par, ref != nil), got, want)
			}
		}
	}
}

// TestShardEDmaxSeedIdentity: a caller-supplied EDmax (under- or
// over-estimate) seeds the inner AM-KDJ runs; compensation must keep
// the sharded result exact either way.
func TestShardEDmaxSeedIdentity(t *testing.T) {
	left := datagen.Uniform(17, 400, datagen.World, 4000)
	right := datagen.Uniform(18, 300, datagen.World, 4000)
	lt, rt := buildTree(t, left), buildTree(t, right)
	want, err := join.AMKDJ(lt, rt, 40, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kth := want[len(want)-1].Dist
	for _, seed := range []float64{kth * 0.25, kth * 4} {
		got, err := KDJ(lt, rt, 40, AMKDJ, Config{Shards: 4}, join.Options{EDmax: seed, Parallelism: 8})
		if err != nil {
			t.Fatalf("seed=%g: %v", seed, err)
		}
		sameResults(t, fmt.Sprintf("edmax=%g", seed), got, want)
	}
}

// TestShardSmallK exercises k larger than the candidate pair count:
// the cutoff never becomes finite, nothing is pruned, and the full
// pair set comes back in canonical order.
func TestShardSmallK(t *testing.T) {
	left := datagen.Uniform(19, 12, datagen.World, 1000)
	right := datagen.Uniform(20, 9, datagen.World, 1000)
	lt, rt := buildTree(t, left), buildTree(t, right)
	want, err := join.AMKDJ(lt, rt, 500, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := KDJ(lt, rt, 500, AMKDJ, Config{Shards: 9}, join.Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "small", got, want)
}

// TestShardPruningSkips: with tight far-apart clusters and a small k,
// distant partition pairs must actually be pruned — and the result
// must stay exact despite the skips.
func TestShardPruningSkips(t *testing.T) {
	left := datagen.GaussianClusters(21, 400, 3, datagen.World, 8000, 500)
	right := datagen.GaussianClusters(21, 300, 3, datagen.World, 8000, 500)
	lt, rt := buildTree(t, left), buildTree(t, right)
	want, err := join.AMKDJ(lt, rt, 8, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(0)
	got, err := KDJ(lt, rt, 8, AMKDJ, Config{Shards: 16}, join.Options{Parallelism: 1, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "pruned", got, want)
	if skips := tr.CountKind(trace.KindShardSkip); skips == 0 {
		t.Fatalf("expected partition pairs to be pruned, got 0 shard_skip events (%d shard_run)",
			tr.CountKind(trace.KindShardRun))
	}
	if tr.CountKind(trace.KindCutoffBroadcast) == 0 {
		t.Fatal("expected at least one cutoff_broadcast event")
	}
}

// TestShardTraceAndRegistry checks the observability threading: plan /
// run / skip accounting is consistent, per-shard dist-calc attribution
// lands in the run events, metrics reflect the merged result count,
// and the registry sees the query end.
func TestShardTraceAndRegistry(t *testing.T) {
	left := datagen.Uniform(23, 300, datagen.World, 4000)
	right := datagen.Uniform(24, 250, datagen.World, 4000)
	lt, rt := buildTree(t, left), buildTree(t, right)
	tr := trace.New(0)
	reg := obsrv.NewRegistry()
	mc := &metrics.Collector{}
	got, err := KDJ(lt, rt, 32, AMKDJ, Config{Shards: 4},
		join.Options{Parallelism: 2, Trace: tr, Registry: reg, Metrics: mc})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 32 {
		t.Fatalf("got %d results, want 32", len(got))
	}
	if n := tr.CountKind(trace.KindShardPlan); n != 1 {
		t.Fatalf("shard_plan events = %d, want 1", n)
	}
	evs := tr.Events()
	var planned, runs, skips int64
	var attributed int64
	for _, ev := range evs {
		switch ev.Kind {
		case trace.KindShardPlan:
			planned = ev.Count
		case trace.KindShardRun:
			runs++
			attributed += ev.Count
		case trace.KindShardSkip:
			skips++
		}
	}
	if runs+skips != planned {
		t.Fatalf("run (%d) + skip (%d) events != planned tasks (%d)", runs, skips, planned)
	}
	if attributed == 0 {
		t.Fatal("shard_run events carry no dist-calc attribution")
	}
	if mc.ResultsProduced != int64(len(got)) {
		t.Fatalf("ResultsProduced = %d, want %d", mc.ResultsProduced, len(got))
	}
	if mc.DistCalcs() == 0 {
		t.Fatal("merged collector has no distance calculations")
	}
	if mc.WallTime <= 0 {
		t.Fatal("merged collector has no wall time")
	}
	if n := reg.InFlight(); n != 0 {
		t.Fatalf("registry left %d queries in flight", n)
	}
}

// TestShardCancellation: a cancelled context surfaces as the context
// error and leaves no query in flight.
func TestShardCancellation(t *testing.T) {
	left := datagen.Uniform(27, 300, datagen.World, 4000)
	lt := buildTree(t, left)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reg := obsrv.NewRegistry()
	_, err := KDJ(lt, lt, 16, AMKDJ, Config{Shards: 4},
		join.Options{SelfJoin: true, Parallelism: 4, Context: ctx, Registry: reg})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := reg.InFlight(); n != 0 {
		t.Fatalf("registry left %d queries in flight after cancellation", n)
	}
}

// TestShardFaultPropagation: an injected hybrid-queue fault inside one
// inner join must abort the whole sharded run with the fault surfaced.
func TestShardFaultPropagation(t *testing.T) {
	left := datagen.Uniform(29, 500, datagen.World, 5000)
	right := datagen.Uniform(30, 400, datagen.World, 5000)
	lt, rt := buildTree(t, left), buildTree(t, right)
	boom := fmt.Errorf("shard fault: %w", storage.ErrInjected)
	hook := func(hybridq.FaultOp) error { return boom }
	tr := trace.New(0)
	_, err := KDJ(lt, rt, 256, AMKDJ, Config{Shards: 4},
		join.Options{Parallelism: 4, QueueMemBytes: 512, QueueFaultHook: hook, Trace: tr})
	if err == nil {
		t.Skip("queue never spilled; scenario too small to trip the hook")
	}
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want wrapped storage.ErrInjected", err)
	}
	if tr.CountKind(trace.KindError) == 0 {
		t.Fatal("aborted run emitted no error trace event")
	}
}

// TestShardInvalidInput covers the argument guard rails.
func TestShardInvalidInput(t *testing.T) {
	left := datagen.Uniform(31, 20, datagen.World, 1000)
	lt := buildTree(t, left)
	if _, err := KDJ(nil, lt, 4, AMKDJ, Config{}, join.Options{}); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := KDJ(lt, lt, 0, AMKDJ, Config{}, join.Options{}); err == nil {
		t.Fatal("k = 0 accepted")
	}
}

// TestConfigGrid pins the Shards -> grid mapping documented on Config.
func TestConfigGrid(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 1, 4: 2, 5: 2, 9: 3, 16: 4}
	for shards, g := range cases {
		if got := (Config{Shards: shards}).grid(); got != g {
			t.Errorf("grid(%d) = %d, want %d", shards, got, g)
		}
	}
}

// TestResolveWorkers pins the Parallelism resolution mirror.
func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(0); got != 1 {
		t.Errorf("resolveWorkers(0) = %d, want 1", got)
	}
	if got := resolveWorkers(7); got != 7 {
		t.Errorf("resolveWorkers(7) = %d, want 7", got)
	}
	if got := resolveWorkers(1000); got != join.MaxParallelism {
		t.Errorf("resolveWorkers(1000) = %d, want %d", got, join.MaxParallelism)
	}
	if got := resolveWorkers(join.AutoParallelism); got < 1 || got > join.MaxParallelism {
		t.Errorf("resolveWorkers(auto) = %d out of range", got)
	}
}

// TestBoardOrderInvariance: the k-bounded canonical heap's final
// content must not depend on merge order — the heart of the
// determinism contract.
func TestBoardOrderInvariance(t *testing.T) {
	mk := func(d float64, l, r int64) join.Result {
		return join.Result{Dist: d, LeftObj: l, RightObj: r}
	}
	all := []join.Result{
		mk(5, 1, 2), mk(3, 2, 3), mk(3, 1, 9), mk(8, 4, 4), mk(1, 7, 7),
		mk(3, 1, 4), mk(9, 0, 1), mk(2, 5, 5), mk(5, 0, 9), mk(7, 3, 3),
	}
	ref := newBoard(4)
	ref.merge(all)
	want := ref.final()
	perms := [][]int{
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
		{4, 0, 8, 2, 6, 1, 9, 3, 7, 5},
	}
	for pi, p := range perms {
		b := newBoard(4)
		for _, i := range p {
			b.merge([]join.Result{all[i]})
		}
		sameResults(t, fmt.Sprintf("perm %d", pi), b.final(), want)
	}
	if got := ref.bound(); got != want[len(want)-1].Dist { //lint:allow floatcmp bound equals the kept k-th distance exactly
		t.Fatalf("bound = %g, want %g", got, want[len(want)-1].Dist)
	}
	under := newBoard(4)
	under.merge(all[:2])
	if !math.IsInf(under.bound(), 1) {
		t.Fatalf("bound with < k results = %g, want +Inf", under.bound())
	}
}
