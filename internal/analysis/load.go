package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loader type-checks repo packages without golang.org/x/tools: it asks
// the go command for gc export data (`go list -e -export -deps -test`)
// and feeds it to importer.ForCompiler, then parses and checks the
// target packages from source. One Loader shares a FileSet and an
// import cache across every load, so fixture packages (whose synthetic
// import paths live outside the module) can import real repo packages
// by their canonical paths.
type Loader struct {
	// Dir is the module root; empty locates it via `go env GOMOD`
	// relative to the current directory.
	Dir string

	once    sync.Once
	initErr error
	exports map[string]string // import path -> export file
	fset    *token.FileSet
	imp     types.Importer
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath  string
	Dir         string
	Name        string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Error       *struct{ Err string }
}

// goList runs the go command in l.Dir and decodes the concatenated
// JSON package objects.
func (l *Loader) goList(args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// init resolves the module root, builds the export-data map for the
// whole module plus its (transitive, test-inclusive) dependencies, and
// constructs the shared gc importer.
func (l *Loader) init() error {
	l.once.Do(func() { l.initErr = l.initSlow() })
	return l.initErr
}

func (l *Loader) initSlow() error {
	if l.Dir == "" {
		cmd := exec.Command("go", "env", "GOMOD")
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go env GOMOD: %v", err)
		}
		gomod := strings.TrimSpace(string(out))
		if gomod == "" || gomod == os.DevNull {
			return fmt.Errorf("analysis: not inside a module")
		}
		l.Dir = filepath.Dir(gomod)
	}
	pkgs, err := l.goList("list", "-e", "-export", "-deps", "-test",
		"-json=ImportPath,Export", "./...")
	if err != nil {
		return err
	}
	l.exports = make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.fset = token.NewFileSet()
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
	return nil
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() (*token.FileSet, error) {
	if err := l.init(); err != nil {
		return nil, err
	}
	return l.fset, nil
}

// check parses the named source files (mapping file name to content;
// nil content reads the file) and type-checks them as one package unit
// under pkgPath.
func (l *Loader) check(pkgPath string, filenames []string, sources map[string][]byte) (*Unit, error) {
	if err := l.init(); err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range filenames {
		src := sources[name]
		if src == nil {
			b, err := os.ReadFile(name)
			if err != nil {
				return nil, err
			}
			src = b
		}
		f, err := parser.ParseFile(l.fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Unit{PkgPath: pkgPath, Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// LoadPatterns loads every package matching the go list patterns
// (e.g. "./...") as analysis units. In-package test files are included
// in each unit; external (_test package) files are not.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Unit, error) {
	if err := l.init(); err != nil {
		return nil, err
	}
	args := append([]string{"list", "-e", "-json=ImportPath,Dir,Name,GoFiles,TestGoFiles"}, patterns...)
	pkgs, err := l.goList(args...)
	if err != nil {
		return nil, err
	}
	var units []*Unit
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		var names []string
		for _, g := range append(append([]string{}, p.GoFiles...), p.TestGoFiles...) {
			names = append(names, filepath.Join(p.Dir, g))
		}
		if len(names) == 0 {
			continue
		}
		u, err := l.check(p.ImportPath, names, nil)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// PackageFiles returns the absolute paths of the package's Go files
// (in-package tests included), for callers that mutate sources.
func (l *Loader) PackageFiles(pkgPath string) ([]string, error) {
	if err := l.init(); err != nil {
		return nil, err
	}
	pkgs, err := l.goList("list", "-json=ImportPath,Dir,GoFiles,TestGoFiles", pkgPath)
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("analysis: %q matched %d packages", pkgPath, len(pkgs))
	}
	var names []string
	for _, g := range append(append([]string{}, pkgs[0].GoFiles...), pkgs[0].TestGoFiles...) {
		names = append(names, filepath.Join(pkgs[0].Dir, g))
	}
	return names, nil
}

// CheckSources type-checks an explicit file-name -> content map as one
// package under pkgPath. Used by the mutation tests to re-check a real
// package with one planted edit.
func (l *Loader) CheckSources(pkgPath string, sources map[string][]byte) (*Unit, error) {
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	return l.check(pkgPath, names, sources)
}

// LoadDir loads every .go file of one directory as a package unit with
// the given synthetic import path — the analysistest-style entry point
// for testdata fixtures. Fixtures may import real repo packages by
// their canonical import paths.
func (l *Loader) LoadDir(dir, pkgPath string) (*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(names)
	return l.check(pkgPath, names, nil)
}
