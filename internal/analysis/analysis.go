// Package analysis is the distjoin-vet lint suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) carrying nine project-specific
// analyzers that turn the engine's correctness conventions into
// compile-time-checked invariants:
//
//   - floatcmp — no ==/!=/switch on non-constant float64 distance
//     values and no NaN-unsafe builtin min/max, outside annotated
//     bit-exact sites;
//   - nilhook — every Options.Trace / Options.Registry /
//     Config.FaultHook / Options.QueueFaultHook call is nil-guarded
//     (or the provider method is a nil-receiver no-op), preserving the
//     zero-alloc off path pinned by TestTraceOffNoAllocs;
//   - lockheld — no storage/extsort I/O, channel operation, or sync
//     blocking call while a hybridq/obsrv mutex is held, resolved to
//     arbitrary depth through per-function call-graph summaries (see
//     summary.go);
//   - promdrift — the trace/obsrv Prometheus surfaces and the strict
//     exposition lint's expected series cannot drift from the
//     canonical contract;
//   - ctxpoll — unbounded drain loops in join, shard, and serving
//     (queue pops, spill-run merges, iterator page fills, atomic
//     task claims) must contain the cancellation/progress poll;
//   - poolsafe — sync.Pool objects have exactly one owner between get
//     and put: no use after put, no double put, no put of memory that
//     escaped (docs/memory.md);
//   - mapdet — no map iteration, wall-clock reads, or math/rand on
//     determinism-critical paths (join, shard, hybridq, pqueue, sweep,
//     extsort);
//   - atomicmix — a variable accessed via sync/atomic is never read or
//     written plainly, and typed atomic wrappers are only touched
//     through their methods or by address;
//   - servecontract — serving handlers snapshot-then-render, keep the
//     canonical 400/404/429/499/503/504 status table, emit the
//     structured request-log record, and register every
//     distjoin_serving_* metric family in the promdrift contract.
//
// Suppressions use the annotation grammar
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line, on the line directly above it, or in
// the doc comment of the enclosing function (covering the whole
// function). The reason is mandatory; a bare allow is itself reported.
// See docs/static-analysis.md.
//
// The suite has no external dependencies: type information comes from
// the gc export data the go command already produces (see load.go and
// cmd/distjoin-vet for the `go vet -vettool` unit-checker protocol).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow annotations.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// SkipTests excludes _test.go files from the pass. Most of the
	// suite guards production hot paths; tests legitimately compare
	// floats bit-exactly and call hooks directly.
	SkipTests bool
	// Run performs the check, reporting findings through pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Unit is one type-checked package ready for analysis.
type Unit struct {
	// PkgPath is the package's import path. Analyzers scope
	// themselves by its path segments (see scopeBase).
	PkgPath string
	Fset    *token.FileSet
	// Files holds every parsed file of the unit, tests included.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// summaries caches the per-function call-graph effect summaries
	// (summary.go), built lazily by the first analyzer that needs
	// call-graph depth and shared by the rest of the suite.
	summaries *summaryTable
}

// A Pass carries one analyzer's view of one unit.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the unit's file list, with _test.go files removed when
	// the analyzer sets SkipTests.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	PkgPath   string

	unit    *Unit
	allows  *allowIndex
	parents map[ast.Node]ast.Node
	sink    *[]Diagnostic
}

// Reportf records a finding at pos unless an in-scope
// //lint:allow annotation suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allows.covers(p.Analyzer.Name, position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite returns the nine distjoin-vet analyzers in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		Floatcmp, Nilhook, Lockheld, Promdrift, Ctxpoll,
		Poolsafe, Mapdet, Atomicmix, Servecontract,
	}
}

// RunUnit applies analyzers to one unit and returns the findings
// sorted by position. Malformed //lint:allow annotations are reported
// once per unit under the pseudo-analyzer name "allow".
func RunUnit(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := buildAllowIndex(u, analyzers)
	parents := buildParents(u.Files)
	var diags []Diagnostic
	diags = append(diags, allows.malformed...)
	for _, a := range analyzers {
		files := u.Files
		if a.SkipTests {
			files = nil
			for _, f := range u.Files {
				if !strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
					files = append(files, f)
				}
			}
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			PkgPath:   u.PkgPath,
			unit:      u,
			allows:    allows,
			parents:   parents,
			sink:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: running %s: %w", u.PkgPath, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// allowPrefix introduces a suppression annotation.
const allowPrefix = "//lint:allow"

// allow is one parsed //lint:allow annotation with its line coverage.
type allow struct {
	analyzer  string
	reason    string
	file      string
	fromLine  int
	toLine    int
	annotLine int
}

// allowIndex resolves suppressions by (analyzer, file, line).
type allowIndex struct {
	allows    []allow
	malformed []Diagnostic
}

// buildAllowIndex scans every comment of the unit for allow
// annotations. An annotation inside a function's doc comment covers
// the whole function; otherwise it covers its own line and the line
// directly below it.
func buildAllowIndex(u *Unit, analyzers []*Analyzer) *allowIndex {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	idx := &allowIndex{}
	for _, f := range u.Files {
		// Doc-comment coverage: map each doc comment group to its
		// function's line range.
		docRange := make(map[*ast.CommentGroup][2]int)
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Doc != nil {
				docRange[fd.Doc] = [2]int{
					u.Fset.Position(fd.Pos()).Line,
					u.Fset.Position(fd.End()).Line,
				}
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					idx.malformed = append(idx.malformed, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  fmt.Sprintf("malformed %s annotation: need %q", allowPrefix, allowPrefix+" <analyzer> <reason>"),
					})
					continue
				}
				name := fields[0]
				if len(known) > 0 && !known[name] {
					idx.malformed = append(idx.malformed, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  fmt.Sprintf("%s names unknown analyzer %q", allowPrefix, name),
					})
					continue
				}
				a := allow{
					analyzer:  name,
					reason:    strings.Join(fields[1:], " "),
					file:      pos.Filename,
					fromLine:  pos.Line,
					toLine:    pos.Line + 1,
					annotLine: pos.Line,
				}
				if r, ok := docRange[cg]; ok {
					a.fromLine, a.toLine = r[0], r[1]
				}
				idx.allows = append(idx.allows, a)
			}
		}
	}
	return idx
}

// covers reports whether an allow for the named analyzer is in scope
// at position.
func (idx *allowIndex) covers(analyzer string, pos token.Position) bool {
	for _, a := range idx.allows {
		if a.analyzer == analyzer && a.file == pos.Filename &&
			pos.Line >= a.fromLine && pos.Line <= a.toLine {
			return true
		}
	}
	return false
}

// scopeBase returns the last segment of an import path — the handle
// analyzers use to scope themselves ("hybridq", "obsrv", "join", …).
// Fixture packages under testdata mimic real packages by ending their
// synthetic import paths with the same segment.
func scopeBase(pkgPath string) string {
	if i := strings.LastIndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[i+1:]
	}
	return pkgPath
}

// exampleTree reports whether the package lives under an examples/
// directory. Example programs demonstrate the public API and are not
// subject to the engine-internal scope rules keyed on the package
// basename (examples/serving is not internal/serving).
func exampleTree(pkgPath string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		if seg == "examples" {
			return true
		}
	}
	return false
}
