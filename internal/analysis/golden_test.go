package analysis

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// sharedLoader amortizes the `go list -export` pass across every test
// in the package: the Loader caches export data and the FileSet.
var sharedLoader = &Loader{}

// goldenFixtures maps each analyzer to its testdata fixture packages.
// The synthetic import path ends with the directory's base name, which
// is how fixtures opt into scope-restricted analyzers (a path ending
// in /hybridq is "package hybridq" to the scope check).
var goldenFixtures = []struct {
	analyzer *Analyzer
	dir      string // under testdata/src
}{
	{Floatcmp, "floatcmp/a"},
	{Nilhook, "nilhook/hooks"},
	{Nilhook, "nilhook/trace"},
	{Lockheld, "lockheld/hybridq"},
	{Promdrift, "promdrift/obsrv"},
	{Promdrift, "promdrift/trace"},
	{Ctxpoll, "ctxpoll/join"},
	{Ctxpoll, "ctxpoll/shard"},
	{Ctxpoll, "ctxpoll/serving"},
	{Poolsafe, "poolsafe/hybridq"},
	{Mapdet, "mapdet/join"},
	{Atomicmix, "atomicmix/cutoff"},
	{Servecontract, "servecontract/serving"},
}

// wantRE matches analysistest-style expectations: a `// want "regex"`
// comment on the line the diagnostic must land on.
var wantRE = regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)

type wantExp struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// collectWants scans the unit's comments for want expectations.
func collectWants(t *testing.T, u *Unit) []*wantExp {
	t.Helper()
	var wants []*wantExp
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s: bad want string %s: %v", u.Fset.Position(c.Pos()), m[1], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", u.Fset.Position(c.Pos()), pat, err)
				}
				pos := u.Fset.Position(c.Pos())
				wants = append(wants, &wantExp{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// TestGoldenFixtures runs each analyzer over its fixture package and
// diffs the findings against the inline want expectations, both ways:
// every finding must be expected, every expectation must be found.
func TestGoldenFixtures(t *testing.T) {
	for _, fx := range goldenFixtures {
		fx := fx
		t.Run(fx.analyzer.Name+"/"+filepath.Base(fx.dir), func(t *testing.T) {
			dir := filepath.Join("testdata", "src", filepath.FromSlash(fx.dir))
			u, err := sharedLoader.LoadDir(dir, "fixture/"+fx.dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags, err := RunUnit(u, []*Analyzer{fx.analyzer})
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, u)
			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.used = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", d)
				}
			}
			for _, w := range wants {
				if !w.used {
					t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestAllowAnnotationGrammar pins the annotation parser itself: a
// missing reason and an unknown analyzer name are findings, and a
// malformed allow does not suppress anything.
func TestAllowAnnotationGrammar(t *testing.T) {
	const src = `package allowfix

func pair() (float64, float64) { return 1, 2 }

//lint:allow floatcmp
func unsuppressed() bool {
	a, b := pair()
	return a == b
}

//lint:allow nosuch because reasons
func named() {}

//lint:allowance is a different directive entirely
func unrelated() {}
`
	u, err := sharedLoader.CheckSources("fixture/allowfix", map[string][]byte{
		"allowfix.go": []byte(src),
	})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunUnit(u, Suite())
	if err != nil {
		t.Fatal(err)
	}
	var malformed, unknown, floatcmp int
	for _, d := range diags {
		switch {
		case d.Analyzer == "allow" && regexp.MustCompile("malformed").MatchString(d.Message):
			malformed++
		case d.Analyzer == "allow" && regexp.MustCompile("unknown analyzer").MatchString(d.Message):
			unknown++
		case d.Analyzer == "floatcmp":
			floatcmp++
		default:
			t.Errorf("unexpected finding: %s", d)
		}
	}
	if malformed != 1 || unknown != 1 || floatcmp != 1 {
		t.Fatalf("got malformed=%d unknown=%d floatcmp=%d, want 1 each (diags: %v)",
			malformed, unknown, floatcmp, diags)
	}
}
