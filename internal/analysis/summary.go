package analysis

import (
	"go/ast"
	"go/types"
)

// Conservative per-function call-graph summaries.
//
// PR 9 layered helpers between the public queue operations and the
// blocking primitives they eventually reach (Push → spill →
// appendToSegment → flushSegmentPage → storage.WritePage), which put
// the interesting operations out of reach of lockheld's original
// one-level callee walk. The summaries below close that gap: for every
// function declared in the unit we compute, once per package load, the
// set of *effects* the function may perform directly or through any
// chain of same-package static calls.
//
// The analysis is deliberately conservative (a may-analysis):
//
//   - call edges are syntactic — every static call to a same-package
//     declared function propagates the callee's effects to the caller,
//     whether or not the call is reachable at run time;
//   - conditional effects count: an effect behind `if debug { ... }`
//     is still an effect of the function;
//   - function literals are excluded from the summary of the function
//     that *creates* them (their bodies run later, often on another
//     goroutine), but a literal's body contributes to summaries when
//     an analyzer walks the literal itself;
//   - dynamic calls (function values, interface methods outside the
//     recognized sets) contribute nothing — the recognized leaf sets
//     (storage/extsort/os I/O, sync.Wait, channel ops, pool Get/Put,
//     context polls, HTTP rendering) are what the invariants name.
//
// Consequently a summary-based finding can be a false positive on a
// path that never executes; such sites are suppressed at the *report
// site* (the call in the locked/draining region) with //lint:allow,
// never inside the callee — the callee's summary stays honest for its
// other callers.
//
// Fixpoint: effects are monotone booleans (with a witness path
// attached on first discovery), so iterating "propagate callee
// summaries into callers" until nothing changes terminates even with
// recursion and mutual recursion (SCCs): each of the finitely many
// (function, effect) bits flips at most once.

// effectKind classifies one blocking or contract-relevant behavior.
type effectKind int

const (
	effIO       effectKind = iota // storage/extsort/os call
	effChanSend                   // ch <- v
	effChanRecv                   // <-ch
	effSelect                     // select statement
	effSyncWait                   // sync.WaitGroup.Wait / sync.Cond.Wait
	effSleep                      // time.Sleep
	effRender                     // writes an HTTP response body/header
	numEffects
)

// funcSummary records what one function may do, transitively through
// same-package static calls. effects[k] is "" when the function cannot
// perform effect k, else a witness path like "spill → appendToSegment
// → storage.WritePage" naming one chain that reaches the effect.
type funcSummary struct {
	effects [numEffects]string
	// polls: the function calls a cancellation poll (a function or
	// method named `cancelled`, or context.Context.Err) on some path.
	polls bool
	// getsPool: the function's own body obtains an object from a
	// sync.Pool. Deliberately NOT propagated through call edges —
	// poolsafe uses it to recognize get-helpers (getPairBuf,
	// getSegment), whose return value is the pooled object; a deeper
	// caller's return value usually is not.
	getsPool bool
	// putParams marks parameter indices whose argument is returned to
	// a sync.Pool by the call (directly, through a holder object, or
	// via a deeper put-helper). Receiver parameters are index -1.
	// This one IS propagated: a wrapper that forwards its parameter to
	// putSegment returns it to the pool too.
	putParams map[int]bool
	// putsPool: the function's own body calls sync.Pool.Put
	// (not propagated; see getsPool).
	putsPool bool
}

// summaryTable holds the unit-wide summaries, built lazily once per
// unit and shared by every analyzer that needs call-graph depth.
type summaryTable struct {
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*funcSummary
}

// summaries returns the unit's summary table, computing it on first use.
func (p *Pass) summaries() *summaryTable {
	if p.unit.summaries == nil {
		p.unit.summaries = buildSummaries(p.unit)
	}
	return p.unit.summaries
}

// summaryFor returns fn's summary, or nil when fn is not declared in
// this unit (imported functions are classified by the leaf sets, not
// by summaries).
func (t *summaryTable) summaryFor(fn *types.Func) *funcSummary {
	if t == nil || fn == nil {
		return nil
	}
	return t.sums[fn]
}

// declFor returns the declaration of a unit function, or nil.
func (t *summaryTable) declFor(fn *types.Func) *ast.FuncDecl {
	if t == nil || fn == nil {
		return nil
	}
	return t.decls[fn]
}

// buildSummaries computes the direct effects of every declared
// function, then iterates same-package call-edge propagation to a
// fixpoint.
func buildSummaries(u *Unit) *summaryTable {
	t := &summaryTable{
		decls: make(map[*types.Func]*ast.FuncDecl),
		sums:  make(map[*types.Func]*funcSummary),
	}
	for _, f := range u.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil || fd.Body == nil {
				continue
			}
			if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
				t.decls[fn] = fd
			}
		}
	}
	// calls[caller] lists the same-package static calls in caller's
	// body (function literals excluded), kept as AST nodes so the
	// putParams propagation can map arguments to parameters.
	calls := make(map[*types.Func][]*ast.CallExpr)
	for fn, fd := range t.decls {
		s := &funcSummary{putParams: make(map[int]bool)}
		t.sums[fn] = s
		directEffects(u.Info, fd, s, func(call *ast.CallExpr, callee *types.Func) {
			if _, ok := t.decls[callee]; ok {
				calls[fn] = append(calls[fn], call)
			}
		})
		markDirectPutParams(u.Info, fd, s)
	}
	// Fixpoint propagation. Every iteration can only set bits that
	// were clear, so the loop terminates.
	for changed := true; changed; {
		changed = false
		for fn, fd := range t.decls {
			s := t.sums[fn]
			for _, call := range calls[fn] {
				callee := calleeFunc(u.Info, call)
				cs := t.sums[callee]
				if cs == nil || callee == fn {
					continue
				}
				for k := effectKind(0); k < numEffects; k++ {
					if s.effects[k] == "" && cs.effects[k] != "" {
						s.effects[k] = callee.Name() + " → " + cs.effects[k]
						changed = true
					}
				}
				if !s.polls && cs.polls {
					s.polls = true
					changed = true
				}
				// A parameter handed straight to a pool-putting callee
				// parameter is itself returned to the pool.
				for j, arg := range call.Args {
					if !cs.putParams[j] {
						continue
					}
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok {
						continue
					}
					if i := paramIndex(u.Info, fd, id); i != putParamNone && !s.putParams[i] {
						s.putParams[i] = true
						changed = true
					}
				}
			}
		}
	}
	return t
}

// putParamNone marks "not a parameter" for paramIndex.
const putParamNone = -2

// paramIndex returns the parameter index of id within fd (receiver =
// -1), or putParamNone.
func paramIndex(info *types.Info, fd *ast.FuncDecl, id *ast.Ident) int {
	obj := info.Uses[id]
	if obj == nil {
		return putParamNone
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if info.Defs[name] == obj {
					return -1
				}
			}
		}
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return putParamNone
}

// directEffects records fd's own effects into s and hands every
// resolvable call to onCall. Function literal bodies are skipped.
func directEffects(info *types.Info, fd *ast.FuncDecl, s *funcSummary, onCall func(*ast.CallExpr, *types.Func)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			s.setEffect(effChanSend, "channel send")
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" {
				s.setEffect(effChanRecv, "channel receive")
			}
		case *ast.SelectStmt:
			s.setEffect(effSelect, "select")
		case *ast.CallExpr:
			fn := calleeFunc(info, e)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			base := scopeBase(fn.Pkg().Path())
			name := fn.Name()
			switch {
			case lockheldIOPkgs[base]:
				s.setEffect(effIO, base+"."+name)
			case base == "sync" && name == "Wait":
				s.setEffect(effSyncWait, "sync Wait")
			case base == "time" && name == "Sleep":
				s.setEffect(effSleep, "time.Sleep")
			case isPoolMethod(e, info, "Put"):
				s.putsPool = true
			case isPoolMethod(e, info, "Get"):
				s.getsPool = true
			case renderCall(info, e) != "":
				s.setEffect(effRender, renderCall(info, e))
			}
			if name == "cancelled" || (base == "context" && name == "Err") {
				s.polls = true
			}
			onCall(e, fn)
		}
		return true
	})
}

// setEffect records the first witness for an effect kind.
func (s *funcSummary) setEffect(k effectKind, witness string) {
	if s.effects[k] == "" {
		s.effects[k] = witness
	}
}

// isPoolMethod matches a call to (sync.Pool).<name>.
func isPoolMethod(call *ast.CallExpr, info *types.Info, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return namedTypeIn(info.Types[sel.X].Type, "Pool", "sync")
}

// renderCall classifies a call that writes an HTTP response ("" when
// it does not): http.ResponseWriter Write/WriteHeader, http.Error and
// http.NotFound, and (json.Encoder).Encode — the primitives the
// serving snapshot-then-render contract cares about.
func renderCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	base := scopeBase(fn.Pkg().Path())
	name := fn.Name()
	switch {
	case base == "http" && (name == "Error" || name == "NotFound"):
		return "http." + name
	case base == "http" && (name == "Write" || name == "WriteHeader"):
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if namedTypeIn(info.Types[sel.X].Type, "ResponseWriter", "http") {
				return "ResponseWriter." + name
			}
		}
		// Interface method resolved through the named interface type.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if namedTypeIn(sig.Recv().Type(), "ResponseWriter", "http") {
				return "ResponseWriter." + name
			}
		}
	case base == "json" && name == "Encode":
		return "json.Encoder.Encode"
	}
	return ""
}

// markDirectPutParams marks fd parameters that reach a sync.Pool.Put
// in fd's own body. Two shapes are recognized:
//
//   - the parameter is itself an argument of a (sync.Pool).Put call
//     (putPairBuf, putSegment);
//   - the function calls (sync.Pool).Put at all and the parameter is
//     the source of an assignment through a pointer or into a
//     structure (putPageBuf's holder indirection: `*h = b;
//     pagePool.Put(h)`). This is the conservative half: any
//     store-then-put pattern counts.
//
// Only pointer-, slice-, map-, chan-, and interface-typed parameters
// are considered; a put cannot retain a plain scalar.
func markDirectPutParams(info *types.Info, fd *ast.FuncDecl, s *funcSummary) {
	if !s.putsPool || fd.Type.Params == nil {
		return
	}
	poolable := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		switch obj.Type().Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
			return true
		}
		return false
	}
	mark := func(id *ast.Ident) {
		if obj := info.Uses[id]; poolable(obj) {
			if i := paramIndex(info, fd, id); i != putParamNone {
				s.putParams[i] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isPoolMethod(e, info, "Put") {
				for _, arg := range e.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						mark(id)
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range e.Lhs {
				if i >= len(e.Rhs) {
					break
				}
				switch ast.Unparen(lhs).(type) {
				case *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr:
					if id, ok := ast.Unparen(e.Rhs[i]).(*ast.Ident); ok {
						mark(id)
					}
				}
			}
		}
		return true
	})
}
