package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
	"sort"
	"strings"
)

// Servecontract pins the serving layer's externally observable
// contracts (docs/serving.md):
//
//  1. snapshot-then-render: no HTTP response may be written while a
//     mutex is held — handlers copy state out under the lock and
//     render after releasing it (a slow client under the cursor-table
//     or slow-log lock would stall every other request). Calls are
//     resolved through the call-graph summaries, so a helper that
//     renders transitively counts.
//
//  2. the canonical error table: writeError must keep every row of
//     the status mapping — apiError → 400/404, errQueueFull → 429,
//     errDraining → 503, context.DeadlineExceeded → 504,
//     context.Canceled → 499. Dropping a row silently turns a
//     load-shedding signal into a 500.
//
//  3. no side-channel statuses: handlers map errors through
//     writeError/writeJSON; direct http.Error, http.NotFound, or
//     WriteHeader(4xx/5xx) calls bypass the table and the telemetry
//     classification.
//
//  4. the structured request log: recordRequest must emit the
//     "request" record with the canonical attribute set — the fields
//     cmd/distjoin-load -validate-log and the serve-smoke CI job
//     parse.
//
//  5. serving metric families: every distjoin_serving_* literal must
//     be a family of the promdrift registry contract, so a new family
//     joins the canonical scrape surface instead of drifting beside
//     it.
var Servecontract = &Analyzer{
	Name:      "servecontract",
	Doc:       "serving handlers must snapshot-then-render, keep the canonical status table, and emit the request-log contract",
	SkipTests: true,
	Run:       runServecontract,
}

// servecontractRenderScopes are the packages under the
// snapshot-then-render rule (rule 1).
var servecontractRenderScopes = map[string]bool{"serving": true, "obsrv": true}

// requestLogKeys is the canonical attribute set of the "request"
// record (telemetry.go), mirrored by cmd/distjoin-load -validate-log.
var requestLogKeys = []string{
	"query_id", "family", "index", "k", "status",
	"admission_wait_us", "queue_depth_at_entry", "deadline_ms",
	"elapsed_ms", "dist_calcs", "edmax_mode", "results", "slow", "error",
}

// statusTableRows are the identifiers writeError must keep using, one
// per row of the canonical error table.
var statusTableRows = []struct {
	ident string
	label string
}{
	{"errQueueFull", "the 429 queue-full row (errQueueFull → http.StatusTooManyRequests)"},
	{"StatusTooManyRequests", "the 429 queue-full row (errQueueFull → http.StatusTooManyRequests)"},
	{"errDraining", "the 503 draining row (errDraining → http.StatusServiceUnavailable)"},
	{"StatusServiceUnavailable", "the 503 draining row (errDraining → http.StatusServiceUnavailable)"},
	{"DeadlineExceeded", "the 504 deadline row (context.DeadlineExceeded → http.StatusGatewayTimeout)"},
	{"StatusGatewayTimeout", "the 504 deadline row (context.DeadlineExceeded → http.StatusGatewayTimeout)"},
	{"Canceled", "the 499 client-gone row (context.Canceled → statusClientClosedRequest)"},
	{"statusClientClosedRequest", "the 499 client-gone row (context.Canceled → statusClientClosedRequest)"},
}

var servingFamilyRE = regexp.MustCompile(`^distjoin_serving_[a-z0-9_]+$`)

func runServecontract(pass *Pass) error {
	base := scopeBase(pass.PkgPath)
	if exampleTree(pass.PkgPath) {
		return nil
	}
	if servecontractRenderScopes[base] {
		pass.serveRenderUnderLock()
	}
	if base != "serving" {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch fd.Name.Name {
			case "writeError":
				pass.serveStatusTable(fd)
			case "recordRequest":
				pass.serveRequestLog(fd)
			}
		}
		pass.serveDirectStatus(f)
		pass.serveFamilies(f)
	}
	return nil
}

// serveRenderUnderLock enforces rule 1: no response rendering while a
// mutex is held, directly or through a same-package helper.
func (pass *Pass) serveRenderUnderLock() {
	sums := pass.summaries()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			forEachLockedStmt(pass, fd, func(s ast.Stmt) {
				ast.Inspect(s, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if r := renderCall(pass.TypesInfo, call); r != "" {
						pass.Reportf(call.Pos(), "%s while a %s mutex is held: a slow client stalls every request behind this lock; snapshot the state under the lock and render after releasing it", r, scopeBase(pass.PkgPath))
						return true
					}
					fn := calleeFunc(pass.TypesInfo, call)
					if fn == nil || fn.Pkg() != pass.Pkg {
						return true
					}
					if cs := sums.summaryFor(fn); cs != nil && cs.effects[effRender] != "" {
						pass.Reportf(call.Pos(), "call to %s renders an HTTP response (%s) while a %s mutex is held: snapshot the state under the lock and render after releasing it",
							fn.Name(), cs.effects[effRender], scopeBase(pass.PkgPath))
					}
					return true
				})
			})
		}
	}
}

// serveStatusTable enforces rule 2 on the writeError declaration.
func (pass *Pass) serveStatusTable(fd *ast.FuncDecl) {
	used := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	reported := map[string]bool{}
	for _, row := range statusTableRows {
		if used[row.ident] || reported[row.label] {
			continue
		}
		reported[row.label] = true
		pass.Reportf(fd.Name.Pos(), "writeError no longer maps %s: the canonical serving status table (400/404/429/499/503/504, docs/serving.md) must stay complete — clients key their retry behavior on it", row.label)
	}
}

// serveRequestLog enforces rule 4 on the recordRequest declaration:
// the LogAttrs "request" record exists and carries every canonical
// key.
func (pass *Pass) serveRequestLog(fd *ast.FuncDecl) {
	var logCall *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if logCall != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "LogAttrs" || len(call.Args) < 3 {
			return true
		}
		if msg, ok := constString(pass.TypesInfo, call.Args[2]); ok && msg == "request" {
			logCall = call
		}
		return true
	})
	if logCall == nil {
		pass.Reportf(fd.Name.Pos(), "recordRequest no longer emits the structured \"request\" log record: cmd/distjoin-load -validate-log and the serve-smoke CI job parse it (docs/serving.md)")
		return
	}
	have := map[string]bool{}
	for _, arg := range logCall.Args[3:] {
		call, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if key, ok := constString(pass.TypesInfo, call.Args[0]); ok {
			have[key] = true
		}
	}
	var missing []string
	for _, key := range requestLogKeys {
		if !have[key] {
			missing = append(missing, key)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(logCall.Pos(), "the \"request\" log record is missing canonical key%s %s: the request-log schema is parsed by cmd/distjoin-load -validate-log and the serve-smoke CI job (docs/serving.md)",
			plural(len(missing), "", "s"), strings.Join(missing, ", "))
	}
}

// serveDirectStatus enforces rule 3: error statuses reach the client
// only through writeError/writeJSON.
func (pass *Pass) serveDirectStatus(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fd := pass.EnclosingFunc(call)
		if fd != nil && (fd.Name.Name == "writeError" || fd.Name.Name == "writeJSON") {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		base := scopeBase(fn.Pkg().Path())
		name := fn.Name()
		switch {
		case base == "http" && (name == "Error" || name == "NotFound"):
			pass.Reportf(call.Pos(), "http.%s bypasses the canonical status table: map the error through writeError so telemetry classifies it and clients see the documented statuses, or annotate with %s servecontract <reason>",
				name, allowPrefix)
		case name == "WriteHeader" && len(call.Args) == 1:
			if status, ok := constIntValue(pass, call.Args[0]); ok && status >= 400 {
				pass.Reportf(call.Pos(), "WriteHeader(%d) bypasses the canonical status table: map the error through writeError so telemetry classifies it, or annotate with %s servecontract <reason>",
					status, allowPrefix)
			}
		}
		return true
	})
}

// serveFamilies enforces rule 5: distjoin_serving_* literals must be
// contract families.
func (pass *Pass) serveFamilies(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		v, isConst := constString(pass.TypesInfo, e)
		if !isConst || !servingFamilyRE.MatchString(v) {
			return true
		}
		if _, ok := registryContract[v]; !ok {
			pass.Reportf(e.Pos(), "serving Prometheus family %q is not in the promdrift registry contract: new distjoin_serving_* families must be added to internal/analysis/promdrift.go (and obsrv/serving.go) so the scrape surface stays canonical", v)
		}
		return false
	})
}

// constIntValue evaluates a compile-time integer expression.
func constIntValue(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
