// Package trace is the promdrift golden fixture for the per-query
// surface: a drifted namespace constant and a derived-family list with
// one silent removal.
package trace // want "package trace no longer mentions contract family distjoin_queue_inserts_total"

// promNamespace drifted away from the canonical prefix.
const promNamespace = "nope" // want "promNamespace is \"nope\", want \"distjoin\""

// derived mirrors an exporter's derived-family list, with
// distjoin_queue_inserts_total silently dropped.
var derived = []string{
	"distjoin_response_time_seconds",
	"distjoin_dist_calcs_total",
	"distjoin_buffer_hit_ratio",
}
