// Package obsrv is the promdrift golden fixture for the registry
// surface: one bogus family plus one deliberately missing contract
// family, so both the unknown-name and the silent-removal checks fire.
package obsrv // want "package obsrv no longer mentions contract family distjoin_edmax_overestimates_total"

// families mirrors an exporter's literal name list: every contract
// family except one (distjoin_edmax_overestimates_total is missing)
// plus one that the contract does not know.
var families = []string{
	"distjoin_registry_uptime_seconds",
	"distjoin_inflight_queries",
	"distjoin_queries_total",
	"distjoin_query_errors_total",
	"distjoin_query_latency_seconds",
	"distjoin_query_dist_calcs",
	"distjoin_query_queue_inserts",
	"distjoin_edmax_estimate_ratio",
	"distjoin_edmax_corrections_total",
	"distjoin_edmax_underestimates_total",
	"distjoin_serving_requests_total",
	"distjoin_serving_request_latency_seconds",
	"distjoin_serving_admission_wait_seconds",
	"distjoin_serving_shed_total",
	"distjoin_serving_rejected_draining_total",
	"distjoin_serving_deadline_exceeded_total",
	"distjoin_serving_client_gone_total",
	"distjoin_serving_failed_total",
	"distjoin_serving_slow_queries_total",
	"distjoin_serving_cursors_opened_total",
	"distjoin_serving_cursors_expired_total",
	"distjoin_serving_inflight_queries",
	"distjoin_serving_queued_requests",
	"distjoin_serving_open_cursors",
	"distjoin_serving_draining",
	"distjoin_bogus_total", // want "not in the canonical contract"
}

// series exercises the histogram-suffix acceptance: exposition series
// of a contract histogram are fine.
var series = []string{
	"distjoin_query_latency_seconds_bucket",
	"distjoin_query_latency_seconds_sum",
	"distjoin_query_latency_seconds_count",
	"distjoin_serving_request_latency_seconds_bucket",
	"distjoin_serving_admission_wait_seconds_sum",
}
