// Package serving is the ctxpoll golden fixture for the cursor page
// loops: engine iterator drains with and without the poll, and the
// page-bounded annotation.
package serving

import (
	"context"

	"distjoin"
)

type cursor struct {
	it  *distjoin.Iterator
	ctx context.Context
}

func (c *cursor) badPageFill(n int) []distjoin.Pair {
	var pairs []distjoin.Pair
	for len(pairs) < n { // want "drains distjoin.Iterator.Next without polling cancellation"
		p, ok := c.it.Next()
		if !ok {
			break
		}
		pairs = append(pairs, p)
	}
	return pairs
}

func (c *cursor) goodPolledFill(n int) ([]distjoin.Pair, error) {
	var pairs []distjoin.Pair
	for len(pairs) < n {
		if err := c.ctx.Err(); err != nil {
			return pairs, err
		}
		p, ok := c.it.Next()
		if !ok {
			break
		}
		pairs = append(pairs, p)
	}
	return pairs, nil
}

// allowedBounded mirrors the real cursor.next: bounded by the page
// size, with the engine iterator polling Options.Context internally.
//
//lint:allow ctxpoll fixture demonstrates the page-bounded annotation
func (c *cursor) allowedBounded(n int) int {
	got := 0
	for got < n {
		if _, ok := c.it.Next(); !ok {
			break
		}
		got++
	}
	return got
}
