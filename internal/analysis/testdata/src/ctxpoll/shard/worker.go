// Package shard is the ctxpoll golden fixture for the partition
// worker loops: atomic task-claim drains with and without the
// cancellation poll, including a poll reached through a same-package
// helper (recognized via the call-graph summaries).
package shard

import (
	"context"
	"sync/atomic"
)

type board struct {
	next  atomic.Int64
	tasks []func()
}

func (b *board) badClaimLoop() {
	for { // want "drains an atomic task-claim counter without polling cancellation"
		i := int(b.next.Add(1)) - 1
		if i >= len(b.tasks) {
			return
		}
		b.tasks[i]()
	}
}

func (b *board) goodPolledClaim(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		i := int(b.next.Add(1)) - 1
		if i >= len(b.tasks) {
			return nil
		}
		b.tasks[i]()
	}
}

// check is a same-package poll helper: its summary records the
// context.Err call, so loops that call it count as polled.
func check(ctx context.Context) error { return ctx.Err() }

func (b *board) goodPolledViaHelper(ctx context.Context) error {
	for {
		if err := check(ctx); err != nil {
			return err
		}
		i := int(b.next.Add(1)) - 1
		if i >= len(b.tasks) {
			return nil
		}
		b.tasks[i]()
	}
}

// A conditioned for loop is bounded by construction, not a claim drain.
func (b *board) goodBoundedFor(n int) {
	for i := 0; i < n; i++ {
		b.next.Add(1)
	}
}
