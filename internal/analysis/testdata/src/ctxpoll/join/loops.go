// Package join is the ctxpoll golden fixture: queue- and
// iterator-draining loops with and without the cancellation poll.
package join

import (
	"distjoin/internal/extsort"
	"distjoin/internal/hybridq"
)

type execContext struct {
	queue *hybridq.Queue
}

func (c *execContext) cancelled() error { return nil }

func (c *execContext) badQueueDrain() {
	for { // want "drains hybridq.Queue.Pop without polling cancellation"
		_, ok := c.queue.Pop()
		if !ok {
			break
		}
	}
}

func (c *execContext) badPeekDrain(cur float64) {
	for cur > 0 { // want "drains hybridq.Queue.Peek without polling cancellation"
		p, ok := c.queue.Peek()
		if !ok {
			break
		}
		cur = p.Dist
	}
}

func (c *execContext) badIteratorDrain(it *extsort.Iterator[int], k int) []int {
	out := make([]int, 0, k)
	for len(out) < k { // want "drains extsort Next without polling cancellation"
		v, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

func (c *execContext) goodPolledDrain() error {
	for {
		if err := c.cancelled(); err != nil {
			return err
		}
		_, ok := c.queue.Pop()
		if !ok {
			return nil
		}
	}
}

// goodBounded mirrors the real claim loops: bounded by construction.
//
//lint:allow ctxpoll fixture demonstrates a worker-count-bounded claim loop
func (c *execContext) goodBounded(n int) {
	for i := 0; i < n; i++ {
		_, ok := c.queue.Peek()
		if !ok {
			break
		}
	}
}

func (c *execContext) goodNoDrain(total int) int {
	sum := 0
	for i := 0; i < total; i++ {
		sum += i
	}
	return sum
}
