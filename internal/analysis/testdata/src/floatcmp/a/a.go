// Package a is the floatcmp golden fixture: every flagged form, every
// accepted sentinel/idiom, and the allow annotation.
package a

import "math"

func distances() (float64, float64) { return 1.0, 2.0 }

func bad() {
	a, b := distances()
	if a == b { // want "bit-exact float comparison"
		_ = a
	}
	if a != b { // want "bit-exact float comparison"
		_ = a
	}
	switch a { // want "switch on float value"
	case 1.0:
	}
	_ = min(a, b) // want "builtin min on float operands"
	_ = max(a, 2) // want "builtin max on float operands"
}

func good() {
	a, b := distances()
	if a == 0 { // sentinel against a constant: accepted
		_ = a
	}
	if b != 1.0 { // sentinel: accepted
		_ = b
	}
	if a != a { // NaN idiom: accepted
		_ = a
	}
	if math.IsNaN(a) {
		return
	}
	_ = min(1.0, 2.0) // all-constant: accepted
	_ = max(3, 4)     // integer: accepted
	//lint:allow floatcmp fixture demonstrates an annotated bit-exact site
	if a == b {
		_ = a
	}
}
