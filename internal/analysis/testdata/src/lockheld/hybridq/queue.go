// Package hybridq is the lockheld golden fixture: blocking work under
// both lock idioms, callees resolved through the call-graph
// summaries, and the single-owner annotation.
package hybridq

import (
	"sync"
	"time"

	"distjoin/internal/storage"
)

type queue struct {
	mu    sync.Mutex
	store storage.Store
	ch    chan int
	wg    sync.WaitGroup
}

// lock mirrors the real hybridq unlock-func idiom.
func (q *queue) lock() func() {
	q.mu.Lock()
	return q.mu.Unlock
}

func (q *queue) badDeferIdiom(page []byte) {
	defer q.lock()()
	_ = q.store.ReadPage(0, page) // want "does disk I/O while the hybridq mutex is held"
	q.ch <- 1                     // want "channel send while a hybridq mutex is held"
	<-q.ch                        // want "channel receive while a hybridq mutex is held"
}

func (q *queue) badExplicitLock(page []byte) {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while the hybridq mutex is held"
	q.wg.Wait()                  // want "blocking sync Wait while the hybridq mutex is held"
	q.mu.Unlock()
	_ = q.store.ReadPage(0, page) // after Unlock: accepted
}

// load is the direct callee whose summary carries the I/O effect.
func (q *queue) load(page []byte) {
	_ = q.store.ReadPage(0, page)
}

func (q *queue) badViaCallee(page []byte) {
	defer q.lock()()
	q.load(page) // want "call to load does disk I/O"
}

func (q *queue) goodStaged(page []byte) {
	q.mu.Lock()
	n := len(page)
	q.mu.Unlock()
	_ = q.store.ReadPage(0, page[:n])
}

// allowedSingleOwner mirrors the real queue's deliberate design.
//
//lint:allow lockheld fixture demonstrates the single-owner annotation
func (q *queue) allowedSingleOwner(page []byte) {
	defer q.lock()()
	_ = q.store.ReadPage(0, page)
}

// pagePool mirrors the real queue's buffer pools: sync.Pool Get and
// Put are pointer swaps, not blocking operations, so the pooled disk
// path recycles slabs, page buffers, and segments entirely under the
// queue mutex without a finding.
var pagePool sync.Pool

func (q *queue) goodPooledUnderLock(n int) []byte {
	defer q.lock()()
	h, _ := pagePool.Get().(*[]byte)
	if h == nil || cap(*h) < n {
		b := make([]byte, n)
		h = &b
	}
	page := (*h)[:n]
	pagePool.Put(h)
	return page
}

// getBuf is a pool-only callee: its summary records no blocking
// effects, so calling it under the lock is accepted.
func (q *queue) getBuf() interface{} { return pagePool.Get() }

func (q *queue) goodPooledViaCallee() {
	defer q.lock()()
	_ = q.getBuf()
}
