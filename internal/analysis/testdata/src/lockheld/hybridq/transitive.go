// Transitive chains exercise the call-graph summaries: the blocking
// leaf sits two same-package calls below the locked region, with the
// witness path surfacing in the message.
package hybridq

func (q *queue) flushPage(page []byte) { _ = q.store.WritePage(0, page) }

func (q *queue) spill(page []byte) { q.flushPage(page) }

func (q *queue) badTwoLevel(page []byte) {
	defer q.lock()()
	q.spill(page) // want "call to spill does disk I/O .flushPage → storage.WritePage. while the hybridq mutex is held"
}

func (q *queue) notify() { q.ch <- 1 }

func (q *queue) signal() { q.notify() }

func (q *queue) badTransitiveSend() {
	q.mu.Lock()
	q.signal() // want "call to signal performs a channel send while the hybridq mutex is held .via notify → channel send."
	q.mu.Unlock()
}

// staged has no blocking effects at any depth: its summary is empty,
// so calling it under the lock stays clean.
func (q *queue) staged(page []byte) int { return len(page) }

func (q *queue) goodTransitive(page []byte) int {
	defer q.lock()()
	return q.staged(page)
}
