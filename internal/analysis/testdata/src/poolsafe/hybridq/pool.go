// Package hybridq is the poolsafe golden fixture: get/put ownership,
// aliasing through fields and slices, double puts, escaped backing
// memory, put-and-bail error paths, and the holder indirection idiom.
package hybridq

import "sync"

type pairBuf struct{ items []int }

var pairPool sync.Pool

// getPairBuf / putPairBuf mirror the real pool helpers; the call-graph
// summaries mark them as get/put helpers.
func getPairBuf() *pairBuf {
	if b, _ := pairPool.Get().(*pairBuf); b != nil {
		return b
	}
	return &pairBuf{}
}

func putPairBuf(b *pairBuf) { pairPool.Put(b) }

func badUseAfterPut() int {
	buf := getPairBuf()
	buf.items = append(buf.items[:0], 1, 2, 3)
	putPairBuf(buf)
	return len(buf.items) // want "use of buf after it was returned to the pool"
}

func badAliasUse() int {
	buf := getPairBuf()
	items := buf.items
	putPairBuf(buf)
	return len(items) // want "use of items after it was returned to the pool"
}

func badDoublePut() {
	buf := getPairBuf()
	putPairBuf(buf)
	putPairBuf(buf) // want "returned to the pool twice"
}

type sink struct{ held []int }

func badEscapeThenPut(s *sink) {
	buf := getPairBuf()
	s.held = buf.items
	putPairBuf(buf) // want "backing memory escaped"
}

func badSendEscape(ch chan []int) {
	buf := getPairBuf()
	ch <- buf.items
	putPairBuf(buf) // want "backing memory escaped"
}

func goodCopyOut(s *sink) {
	buf := getPairBuf()
	s.held = append(s.held[:0], buf.items...)
	putPairBuf(buf)
}

func goodPutOnErrorPath(fail bool) int {
	buf := getPairBuf()
	if fail {
		putPairBuf(buf)
		return 0
	}
	n := len(buf.items)
	putPairBuf(buf)
	return n
}

func goodLoopLocal(n int) {
	for i := 0; i < n; i++ {
		buf := getPairBuf()
		buf.items = buf.items[:0]
		putPairBuf(buf)
	}
}

// Page buffers travel in holder objects, the real putPageBuf idiom:
// the slice header is copied out and the slot nilled before the holder
// goes back, so the copy is owned by the caller, not the pool.
var holderPool sync.Pool

func goodHolderGet(size int) []byte {
	if h, _ := holderPool.Get().(*[]byte); h != nil {
		b := *h
		*h = nil
		holderPool.Put(h)
		if cap(b) >= size {
			return b[:size]
		}
	}
	return make([]byte, size)
}

// goodDeferredPut runs the put at function exit, after every use.
func goodDeferredPut() int {
	buf := getPairBuf()
	defer putPairBuf(buf)
	buf.items = append(buf.items[:0], 7)
	return len(buf.items)
}

//lint:allow poolsafe fixture demonstrates the annotation for a deliberate single-owner design
func allowedRetain(s *sink) {
	buf := getPairBuf()
	s.held = buf.items
	putPairBuf(buf)
}
