// Package cutoff is the atomicmix golden fixture: mixed plain/atomic
// access to one variable and by-value use of typed atomic wrappers.
package cutoff

import "sync/atomic"

type tracker struct {
	live   uint64
	frozen atomic.Uint64
}

func (t *tracker) publish(v uint64) {
	atomic.StoreUint64(&t.live, v)
}

func (t *tracker) goodAtomicRead() uint64 {
	return atomic.LoadUint64(&t.live)
}

func (t *tracker) badPlainRead() uint64 {
	return t.live // want "live is accessed with sync/atomic"
}

func (t *tracker) badPlainWrite() {
	t.live = 0 // want "live is accessed with sync/atomic"
}

func (t *tracker) goodWrapperMethod() uint64 {
	return t.frozen.Load()
}

func (t *tracker) goodWrapperAddr() *atomic.Uint64 {
	return &t.frozen
}

func (t *tracker) badWrapperCopy() atomic.Uint64 {
	return t.frozen // want "used by value"
}

func sink(atomic.Uint64) {}

func (t *tracker) badWrapperArg() {
	sink(t.frozen) // want "used by value"
}

// newTracker seeds the mirror before any goroutine can observe it.
//
//lint:allow atomicmix single-threaded constructor; no goroutine observes the value yet
func newTracker(seed uint64) *tracker {
	t := &tracker{}
	t.live = seed
	return t
}
