// Package serving is the servecontract golden fixture: the canonical
// status table, the structured request-log record, direct statuses,
// snapshot-then-render, and the serving metric-family contract.
package serving

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"sync"
)

var (
	errQueueFull = errors.New("queue full")
	errDraining  = errors.New("draining")
)

const statusClientClosedRequest = 499

// writeError has lost its 504 row: context.DeadlineExceeded now falls
// through to the 500 default.
func writeError(w http.ResponseWriter, err error) { // want "writeError no longer maps the 504 deadline row"
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, errQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// recordRequest has dropped the error attribute from the record.
func recordRequest(lg *slog.Logger, status int) {
	lg.LogAttrs(context.Background(), slog.LevelInfo, "request", // want "missing canonical key error"
		slog.String("query_id", "q1"),
		slog.String("family", "knn"),
		slog.String("index", "pt"),
		slog.Int("k", 1),
		slog.Int("status", status),
		slog.Int64("admission_wait_us", 0),
		slog.Int("queue_depth_at_entry", 0),
		slog.Int64("deadline_ms", 0),
		slog.Float64("elapsed_ms", 0),
		slog.Int64("dist_calcs", 0),
		slog.String("edmax_mode", "off"),
		slog.Int("results", 0),
		slog.Bool("slow", false),
	)
}

func badNotFound(w http.ResponseWriter, r *http.Request) {
	http.NotFound(w, r) // want "http.NotFound bypasses the canonical status table"
}

func badWriteHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusBadGateway) // want "WriteHeader.502. bypasses the canonical status table"
}

func goodViaTable(w http.ResponseWriter) {
	writeError(w, errQueueFull)
}

type table struct {
	mu   sync.Mutex
	rows []string
}

func (t *table) badRenderLocked(w http.ResponseWriter) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = json.NewEncoder(w).Encode(t.rows) // want "json.Encoder.Encode while a serving mutex is held"
}

// render is the transitive case: its summary carries the render
// effect, so calling it under the lock is the same bug.
func (t *table) render(w http.ResponseWriter) {
	_ = json.NewEncoder(w).Encode(t.rows)
}

func (t *table) badTransitiveRender(w http.ResponseWriter) {
	t.mu.Lock()
	t.render(w) // want "call to render renders an HTTP response .json.Encoder.Encode. while a serving mutex is held"
	t.mu.Unlock()
}

func (t *table) goodSnapshotThenRender(w http.ResponseWriter) {
	t.mu.Lock()
	rows := append([]string(nil), t.rows...)
	t.mu.Unlock()
	_ = json.NewEncoder(w).Encode(rows)
}

// A family outside the promdrift registry contract drifts beside the
// canonical scrape surface.
const badFamily = "distjoin_serving_bogus_total" // want "not in the promdrift registry contract"

const goodFamily = "distjoin_serving_requests_total"
