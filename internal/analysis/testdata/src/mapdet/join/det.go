// Package join is the mapdet golden fixture: map iteration,
// wall-clock reads, and math/rand on the determinism-critical path.
package join

import (
	"math/rand"
	mrand "math/rand/v2"
	"sort"
	"time"
)

func badMapRange(weights map[string]float64) float64 {
	sum := 0.0
	for _, w := range weights { // want "range over a map in determinism-critical package join"
		sum += w
	}
	return sum
}

func badClock() int64 {
	return time.Now().UnixNano() // want "time.Now in determinism-critical package join"
}

func badRand() int {
	return rand.Intn(10) // want "math/rand call .rand.Intn. in determinism-critical package join"
}

func badRandV2() int {
	return mrand.IntN(10) // want "math/rand call .rand.IntN. in determinism-critical package join"
}

func goodSliceRange(dists []float64) float64 {
	sum := 0.0
	for _, d := range dists {
		sum += d
	}
	return sum
}

// goodSortedKeys is the sanctioned pattern: the one collection range
// is order-insensitive, and the sort restores a deterministic order.
//
//lint:allow mapdet key collection is order-insensitive; the sort restores determinism
func goodSortedKeys(weights map[string]float64) []string {
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
