// Package hooks is the nilhook golden fixture for rules 1 and 2:
// hook-field calls and tracer emission, guarded and unguarded.
package hooks

import (
	"sync"

	"distjoin/internal/trace"
)

type queue struct {
	fault func(op int) error
	tr    *trace.Tracer
}

type Config struct {
	FaultHook func(op int) error
}

func bad(q *queue, cfg Config, ev trace.Event, events []trace.Event) {
	_ = q.fault(1)       // want "call through hook field q.fault without a nil guard"
	_ = cfg.FaultHook(2) // want "call through hook field cfg.FaultHook without a nil guard"
	q.tr.Emit(ev)        // want "without an q.tr.Enabled\\(\\) guard"
	q.tr.EmitAll(events) // want "without an q.tr.Enabled\\(\\) or len\\(events\\) > 0 guard"
}

func good(q *queue, cfg Config, ev trace.Event, events []trace.Event) {
	if q.fault != nil {
		_ = q.fault(1)
	}
	if cfg.FaultHook != nil {
		if err := cfg.FaultHook(2); err != nil {
			return
		}
	}
	if q.tr.Enabled() {
		q.tr.Emit(ev)
	}
	if len(events) > 0 {
		q.tr.EmitAll(events)
	}
	if len(events) == 0 {
		return
	}
	q.tr.EmitAll(events)
}

func earlyExit(q *queue, ev trace.Event) {
	if !q.tr.Enabled() {
		return
	}
	q.tr.Emit(ev)
}

func conjunct(q *queue, err error, ev trace.Event) {
	if err != nil && q.tr.Enabled() {
		q.tr.Emit(ev)
	}
}

// pooledEmit mirrors hybridq's pooled spill path: buffers return to
// their sync.Pool before the trace event is emitted, and the emission
// stays guarded — pool traffic around a hook call changes nothing
// about the guard requirement.
func pooledEmit(q *queue, pool *sync.Pool, h *[]byte, ev trace.Event) {
	pool.Put(h)
	if q.tr.Enabled() {
		q.tr.Emit(ev)
	}
	q.tr.Emit(ev) // want "without an q.tr.Enabled\\(\\) guard"
	if q.fault != nil {
		_ = q.fault(1)
	}
	pool.Put(h)
}
