// Package hooks is the nilhook golden fixture for rules 1 and 2:
// hook-field calls and tracer emission, guarded and unguarded.
package hooks

import "distjoin/internal/trace"

type queue struct {
	fault func(op int) error
	tr    *trace.Tracer
}

type Config struct {
	FaultHook func(op int) error
}

func bad(q *queue, cfg Config, ev trace.Event, events []trace.Event) {
	_ = q.fault(1)       // want "call through hook field q.fault without a nil guard"
	_ = cfg.FaultHook(2) // want "call through hook field cfg.FaultHook without a nil guard"
	q.tr.Emit(ev)        // want "without an q.tr.Enabled\\(\\) guard"
	q.tr.EmitAll(events) // want "without an q.tr.Enabled\\(\\) or len\\(events\\) > 0 guard"
}

func good(q *queue, cfg Config, ev trace.Event, events []trace.Event) {
	if q.fault != nil {
		_ = q.fault(1)
	}
	if cfg.FaultHook != nil {
		if err := cfg.FaultHook(2); err != nil {
			return
		}
	}
	if q.tr.Enabled() {
		q.tr.Emit(ev)
	}
	if len(events) > 0 {
		q.tr.EmitAll(events)
	}
	if len(events) == 0 {
		return
	}
	q.tr.EmitAll(events)
}

func earlyExit(q *queue, ev trace.Event) {
	if !q.tr.Enabled() {
		return
	}
	q.tr.Emit(ev)
}

func conjunct(q *queue, err error, ev trace.Event) {
	if err != nil && q.tr.Enabled() {
		q.tr.Emit(ev)
	}
}
