// Package trace is the nilhook golden fixture for rule 3: exported
// pointer-receiver methods of hook provider types (here, a Tracer
// mimicking the real trace.Tracer) must be nil-receiver no-ops.
package trace

type Tracer struct {
	n       int
	dropped uint64
}

// Enabled is nil-safe: the receiver is used only in a nil comparison.
func (t *Tracer) Enabled() bool { return t != nil }

// Len is nil-safe via the first-statement bail-out.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Reset is nil-safe via a disjunctive bail-out.
func (t *Tracer) Reset() {
	if t == nil || t.n == 0 {
		return
	}
	t.n = 0
}

// Count calls only nil-safe siblings: accepted one level deep.
func (t *Tracer) Count() int {
	return t.Len()
}

// Dropped dereferences a possibly-nil receiver with no guard.
func (t *Tracer) Dropped() uint64 { // want "not a nil-receiver no-op"
	return t.dropped
}

// unexportedPeek is not part of the contract: unexported methods may
// assume a non-nil receiver.
func (t *Tracer) unexportedPeek() int { return t.n }
