package analysis

import (
	"bytes"
	"os"
	"testing"
)

// TestSuiteCleanOnTree pins the zero-findings contract: the checked-in
// tree (with its //lint:allow annotations) produces no diagnostics.
// Every planted-mutation case below relies on this baseline — a
// mutation proving "removing X trips analyzer Y" is only meaningful if
// the unmutated tree is clean.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	units, err := sharedLoader.LoadPatterns("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, u := range units {
		diags, err := RunUnit(u, Suite())
		if err != nil {
			t.Fatalf("%s: %v", u.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: unexpected finding: %s", u.PkgPath, d)
		}
	}
}

// mutations plants one regression per analyzer into a real package —
// deleting an annotation, widening a guard, renaming a metric family,
// dropping a cancellation poll — and demands the suite catch it. This
// is the "removing any annotation or guard fails CI" acceptance bar.
var mutations = []struct {
	name     string
	pkg      string // real import path to mutate
	analyzer string // analyzer that must fire
	old, new string // first occurrence of old becomes new
}{
	{
		name:     "floatcmp/strip-pair-less-allow",
		pkg:      "distjoin/internal/hybridq",
		analyzer: "floatcmp",
		old:      "//lint:allow floatcmp bit-exact distance tie-break IS the determinism contract the parallel engine relies on\n",
		new:      "",
	},
	{
		name:     "nilhook/widen-fault-guard",
		pkg:      "distjoin/internal/hybridq",
		analyzer: "nilhook",
		old:      "if q.fault != nil {\n\t\tif err := q.fault(FaultSpill); err != nil {",
		new:      "if true {\n\t\tif err := q.fault(FaultSpill); err != nil {",
	},
	{
		name:     "lockheld/strip-pop-allow",
		pkg:      "distjoin/internal/hybridq",
		analyzer: "lockheld",
		old:      "//lint:allow lockheld reload I/O under the queue's own single-owner lock is the §4.4 design; the lock is defense-in-depth, never contended on the hot path\nfunc (q *Queue) Pop",
		new:      "func (q *Queue) Pop",
	},
	{
		name:     "promdrift/rename-family",
		pkg:      "distjoin/internal/obsrv",
		analyzer: "promdrift",
		old:      `"distjoin_queries_total"`,
		new:      `"distjoin_queries_renamed_total"`,
	},
	{
		name:     "promdrift/rename-serving-family",
		pkg:      "distjoin/internal/obsrv",
		analyzer: "promdrift",
		old:      `"distjoin_serving_requests_total"`,
		new:      `"distjoin_serving_reqs_total"`,
	},
	{
		name:     "ctxpoll/drop-drain-poll",
		pkg:      "distjoin/internal/join",
		analyzer: "ctxpoll",
		old:      "if err := c.cancelled(); err != nil {\n\t\t\treturn nil, err\n\t\t}\n\t\tp, ok := it.Next()",
		new:      "p, ok := it.Next()",
	},
}

// TestPlantedMutations applies each mutation to an in-memory copy of
// the package sources (the tree on disk is never written) and runs the
// whole suite over the re-checked unit.
func TestPlantedMutations(t *testing.T) {
	for _, m := range mutations {
		m := m
		t.Run(m.name, func(t *testing.T) {
			names, err := sharedLoader.PackageFiles(m.pkg)
			if err != nil {
				t.Fatalf("listing %s: %v", m.pkg, err)
			}
			sources := make(map[string][]byte, len(names))
			planted := false
			for _, name := range names {
				src, err := os.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				if !planted && bytes.Contains(src, []byte(m.old)) {
					src = bytes.Replace(src, []byte(m.old), []byte(m.new), 1)
					planted = true
				}
				sources[name] = src
			}
			if !planted {
				t.Fatalf("mutation target %q not found in %s; the fixture drifted from the tree", m.old, m.pkg)
			}
			u, err := sharedLoader.CheckSources(m.pkg, sources)
			if err != nil {
				t.Fatalf("re-checking mutated %s: %v", m.pkg, err)
			}
			diags, err := RunUnit(u, Suite())
			if err != nil {
				t.Fatal(err)
			}
			fired := 0
			for _, d := range diags {
				if d.Analyzer == m.analyzer {
					fired++
				}
			}
			if fired == 0 {
				t.Fatalf("planted %s regression not caught; got %d other diagnostics: %v",
					m.analyzer, len(diags), diags)
			}
		})
	}
}
