package analysis

import (
	"bytes"
	"os"
	"testing"
)

// TestSuiteCleanOnTree pins the zero-findings contract: the checked-in
// tree (with its //lint:allow annotations) produces no diagnostics.
// Every planted-mutation case below relies on this baseline — a
// mutation proving "removing X trips analyzer Y" is only meaningful if
// the unmutated tree is clean.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	units, err := sharedLoader.LoadPatterns("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, u := range units {
		diags, err := RunUnit(u, Suite())
		if err != nil {
			t.Fatalf("%s: %v", u.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: unexpected finding: %s", u.PkgPath, d)
		}
	}
}

// textEdit replaces the first occurrence of old (searching the
// package's files in listing order) with new.
type textEdit struct{ old, new string }

// mutations plants one regression per analyzer into a real package —
// deleting an annotation, widening a guard, renaming a metric family,
// dropping a cancellation poll, retaining a recycled slab — and
// demands the suite catch it. This is the "removing any annotation or
// guard fails CI" acceptance bar.
var mutations = []struct {
	name     string
	pkg      string // real import path to mutate
	analyzer string // analyzer that must fire
	edits    []textEdit
}{
	{
		name:     "floatcmp/strip-pair-less-allow",
		pkg:      "distjoin/internal/hybridq",
		analyzer: "floatcmp",
		edits: []textEdit{{
			old: "//lint:allow floatcmp bit-exact distance tie-break IS the determinism contract the parallel engine relies on\n",
			new: "",
		}},
	},
	{
		name:     "nilhook/widen-fault-guard",
		pkg:      "distjoin/internal/hybridq",
		analyzer: "nilhook",
		edits: []textEdit{{
			old: "if q.fault != nil {\n\t\tif err := q.fault(FaultSpill); err != nil {",
			new: "if true {\n\t\tif err := q.fault(FaultSpill); err != nil {",
		}},
	},
	{
		name:     "lockheld/strip-pop-allow",
		pkg:      "distjoin/internal/hybridq",
		analyzer: "lockheld",
		edits: []textEdit{{
			old: "//lint:allow lockheld reload I/O under the queue's own single-owner lock is the §4.4 design; the lock is defense-in-depth, never contended on the hot path\nfunc (q *Queue) Pop",
			new: "func (q *Queue) Pop",
		}},
	},
	{
		name:     "promdrift/rename-family",
		pkg:      "distjoin/internal/obsrv",
		analyzer: "promdrift",
		edits:    []textEdit{{old: `"distjoin_queries_total"`, new: `"distjoin_queries_renamed_total"`}},
	},
	{
		name:     "promdrift/rename-serving-family",
		pkg:      "distjoin/internal/obsrv",
		analyzer: "promdrift",
		edits:    []textEdit{{old: `"distjoin_serving_requests_total"`, new: `"distjoin_serving_reqs_total"`}},
	},
	{
		name:     "ctxpoll/drop-drain-poll",
		pkg:      "distjoin/internal/join",
		analyzer: "ctxpoll",
		edits: []textEdit{{
			old: "if err := c.cancelled(); err != nil {\n\t\t\treturn nil, err\n\t\t}\n\t\tp, ok := it.Next()",
			new: "p, ok := it.Next()",
		}},
	},
	{
		// The slab is touched after splitHeap recycles it: the next
		// spill's owner would race the read.
		name:     "poolsafe/retain-slab-after-put",
		pkg:      "distjoin/internal/hybridq",
		analyzer: "poolsafe",
		edits: []textEdit{{
			old: "\tbuf.items = items\n\tputPairBuf(buf)\n\tif q.tr.Enabled() {",
			new: "\tbuf.items = items\n\tputPairBuf(buf)\n\tspilled = len(buf.items)\n\tif q.tr.Enabled() {",
		}},
	},
	{
		// Compaction iterates the map instead of the insertion-order
		// slice: re-seed order becomes run-dependent.
		name:     "mapdet/range-comp-map",
		pkg:      "distjoin/internal/join",
		analyzer: "mapdet",
		edits: []textEdit{{
			old: "for _, key := range it.compOrder {",
			new: "for key := range it.compMap {",
		}},
	},
	{
		// The frozen-cutoff mirror degrades to a plain field read on
		// the worker path while the writers stay atomic.
		name:     "atomicmix/plain-read-of-live-cutoff",
		pkg:      "distjoin/internal/join",
		analyzer: "atomicmix",
		edits: []textEdit{
			{old: "live atomic.Uint64", new: "live uint64"},
			{old: "t.live.Store(math.Float64bits(math.Inf(1)))", new: "atomic.StoreUint64(&t.live, math.Float64bits(math.Inf(1)))"},
			{old: "math.Float64frombits(t.live.Load())", new: "math.Float64frombits(t.live)"},
			{old: "t.live.Store(math.Float64bits(t.Cutoff()))", new: "atomic.StoreUint64(&t.live, math.Float64bits(t.Cutoff()))"},
		},
	},
	{
		// The 504 row disappears from the canonical status table:
		// deadline-exceeded queries silently become 500s.
		name:     "servecontract/drop-504-mapping",
		pkg:      "distjoin/internal/serving",
		analyzer: "servecontract",
		edits: []textEdit{{
			old: "\tcase errors.Is(err, context.DeadlineExceeded):\n\t\tstatus = http.StatusGatewayTimeout\n\t\ts.stats.Deadline.Add(1)\n",
			new: "",
		}},
	},
	{
		// The shard worker's claim loop loses its cancellation poll: a
		// cancelled query spins until the task list empties.
		name:     "ctxpoll/drop-shard-claim-poll",
		pkg:      "distjoin/internal/shard",
		analyzer: "ctxpoll",
		edits: []textEdit{{
			old: "\t\t\t\tif opts.Context != nil {\n\t\t\t\t\tif cerr := opts.Context.Err(); cerr != nil {\n\t\t\t\t\t\tsetErr(cerr)\n\t\t\t\t\t\treturn\n\t\t\t\t\t}\n\t\t\t\t}\n",
			new: "",
		}},
	},
}

// TestPlantedMutations applies each mutation to an in-memory copy of
// the package sources (the tree on disk is never written) and runs the
// whole suite over the re-checked unit.
func TestPlantedMutations(t *testing.T) {
	for _, m := range mutations {
		m := m
		t.Run(m.name, func(t *testing.T) {
			names, err := sharedLoader.PackageFiles(m.pkg)
			if err != nil {
				t.Fatalf("listing %s: %v", m.pkg, err)
			}
			sources := make(map[string][]byte, len(names))
			for _, name := range names {
				src, err := os.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				sources[name] = src
			}
			for _, e := range m.edits {
				planted := false
				for _, name := range names {
					if bytes.Contains(sources[name], []byte(e.old)) {
						sources[name] = bytes.Replace(sources[name], []byte(e.old), []byte(e.new), 1)
						planted = true
						break
					}
				}
				if !planted {
					t.Fatalf("mutation target %q not found in %s; the fixture drifted from the tree", e.old, m.pkg)
				}
			}
			u, err := sharedLoader.CheckSources(m.pkg, sources)
			if err != nil {
				t.Fatalf("re-checking mutated %s: %v", m.pkg, err)
			}
			diags, err := RunUnit(u, Suite())
			if err != nil {
				t.Fatal(err)
			}
			fired := 0
			for _, d := range diags {
				if d.Analyzer == m.analyzer {
					fired++
				}
			}
			if fired == 0 {
				t.Fatalf("planted %s regression not caught; got %d other diagnostics: %v",
					m.analyzer, len(diags), diags)
			}
		})
	}
}
