package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicmix forbids mixing atomic and plain access to the same
// variable — the data race that silently corrupts the frozen-cutoff
// mirror (join.cutoffTracker.live) and the shard cutoff board, whose
// whole point is lock-free publication. Two patterns are enforced,
// package-wide:
//
//   - a variable that is ever passed by address to a sync/atomic
//     function (atomic.LoadUint64(&x), atomic.StoreUint64(&x, v), …)
//     must not be read or written plainly anywhere else in the
//     package;
//
//   - a field of one of the typed atomic wrappers (atomic.Uint64,
//     atomic.Int64, atomic.Bool, atomic.Pointer, atomic.Value, …) may
//     only be touched through its methods or passed by address —
//     copying it, assigning it, or comparing it bypasses the
//     atomicity (and vet's copylocks only catches some of these).
//
// The check runs in every package: mixed access is never correct. A
// guaranteed-single-threaded phase (setup before any goroutine can
// observe the value) is annotated with
// `//lint:allow atomicmix <reason>`.
var Atomicmix = &Analyzer{
	Name:      "atomicmix",
	Doc:       "variables accessed via sync/atomic must never be read or written plainly",
	SkipTests: true,
	Run:       runAtomicmix,
}

// atomicTypeNames are the typed wrappers of sync/atomic.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func runAtomicmix(pass *Pass) error {
	// Pass 1: every variable passed by address to a sync/atomic
	// function anywhere in the unit.
	atomicVars := map[*types.Var]token.Pos{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				if v := addressedVar(pass.TypesInfo, ue.X); v != nil {
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = call.Pos()
					}
				}
			}
			return true
		})
	}
	// Pass 2: judge every use.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			if firstAt, ok := atomicVars[v]; ok && !pass.atomicFuncOperand(id) {
				pass.Reportf(id.Pos(), "%s is accessed with sync/atomic (first at line %d) but read/written plainly here: mixed access is a data race the race detector only catches when both sides actually run; use the atomic API everywhere, or annotate a single-threaded phase with %s atomicmix <reason>",
					id.Name, pass.Fset.Position(firstAt).Line, allowPrefix)
			}
			if isAtomicWrapperType(v.Type()) && !pass.wrapperSafeUse(id) {
				pass.Reportf(id.Pos(), "sync/atomic value %s used by value: typed atomics must only be touched through their methods (Load/Store/Add/CAS) or passed by address; copying or assigning one bypasses the atomicity",
					id.Name)
			}
			return true
		})
	}
	return nil
}

// isAtomicFuncCall matches package-level sync/atomic functions
// (LoadUint64, StoreInt64, AddUint32, SwapPointer, CompareAndSwap…),
// as opposed to methods of the typed wrappers.
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedVar resolves &expr's variable when expr is an ident or a
// field selector.
func addressedVar(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	}
	return nil
}

// accessExpr returns the largest expression denoting the variable
// named by id: the enclosing selector when id is its field side
// (t.live for the use of live), id itself otherwise.
func (p *Pass) accessExpr(id *ast.Ident) ast.Expr {
	if sel, ok := p.Parent(id).(*ast.SelectorExpr); ok && sel.Sel == id {
		return sel
	}
	return id
}

// atomicFuncOperand reports whether id's access is the &x operand of a
// sync/atomic function call — the only sanctioned use of a variable in
// the address-taken atomic set.
func (p *Pass) atomicFuncOperand(id *ast.Ident) bool {
	n := ast.Node(p.accessExpr(id))
	for {
		parent := p.Parent(n)
		if pe, ok := parent.(*ast.ParenExpr); ok {
			n = pe
			continue
		}
		ue, ok := parent.(*ast.UnaryExpr)
		if !ok || ue.Op != token.AND {
			return false
		}
		n = ue
		for {
			if pe, ok := p.Parent(n).(*ast.ParenExpr); ok {
				n = pe
				continue
			}
			break
		}
		call, ok := p.Parent(n).(*ast.CallExpr)
		return ok && isAtomicFuncCall(p.TypesInfo, call)
	}
}

// isAtomicWrapperType matches the sync/atomic typed wrappers
// (including generic instantiations like atomic.Pointer[T]).
func isAtomicWrapperType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()]
}

// wrapperSafeUse reports whether the use of a typed-atomic variable is
// one of the two safe shapes: selecting one of its methods
// (x.f.Load()) or taking its address (&x.f).
func (p *Pass) wrapperSafeUse(id *ast.Ident) bool {
	access := p.accessExpr(id)
	switch parent := p.Parent(access).(type) {
	case *ast.SelectorExpr:
		// x.f.<Sel> — safe when <Sel> is a method of the wrapper.
		if parent.X != access {
			return false
		}
		if sel, ok := p.TypesInfo.Selections[parent]; ok {
			return sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr
		}
		return false
	case *ast.UnaryExpr:
		return parent.Op == token.AND
	}
	return false
}
