package analysis

import (
	"go/ast"
)

// Ctxpoll requires every queue-draining loop in package join to poll
// for cancellation. The paper's multi-stage traversal (§4.2–§4.3)
// drains the hybrid priority queue and the external-sort iterator in
// unbounded `for` loops; without a poll, a cancelled or deadline-hit
// query spins until the queue empties — the exact hang the
// execContext.cancelled() throttle (cancelEvery/progressEvery) exists
// to prevent.
//
// A loop is in scope when its body (function literals excluded — they
// run on other goroutines or later) drains a work source:
//
//   - Pop or Peek on a hybridq.Queue, or
//   - Next on an extsort iterator.
//
// Such a loop must call a method or function named `cancelled` (the
// execContext poll) somewhere in its body. Loops that are bounded by
// construction — a claim loop capped by the worker count, a batch
// fill capped by batch size — are annotated with
// `//lint:allow ctxpoll <reason>` instead.
var Ctxpoll = &Analyzer{
	Name:      "ctxpoll",
	Doc:       "queue-draining loops in package join must poll execContext.cancelled",
	SkipTests: true,
	Run:       runCtxpoll,
}

func runCtxpoll(pass *Pass) error {
	if scopeBase(pass.PkgPath) != "join" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				// Function literals are inspected when the walk reaches
				// them from the top; a loop inside one is still a loop.
				return true
			}
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			trigger := pass.ctxpollTrigger(loop.Body)
			if trigger == "" {
				return true
			}
			if ctxpollHasPoll(loop.Body) {
				return true
			}
			pass.Reportf(loop.For, "loop drains %s without polling cancellation: a cancelled query spins until the source empties; call c.cancelled() in the loop body or annotate a bounded loop with %s ctxpoll <reason>",
				trigger, allowPrefix)
			return true
		})
	}
	return nil
}

// ctxpollTrigger reports the first work-source drain in the loop body
// ("" when none): hybridq.Queue Pop/Peek or an extsort Next.
// Function literals are skipped — their bodies execute elsewhere.
func (pass *Pass) ctxpollTrigger(body *ast.BlockStmt) string {
	trigger := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if trigger != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Pop", "Peek":
			if namedTypeIn(pass.TypesInfo.Types[sel.X].Type, "Queue", "hybridq") {
				trigger = "hybridq.Queue." + sel.Sel.Name
			}
		case "Next":
			if fn := calleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil &&
				scopeBase(fn.Pkg().Path()) == "extsort" {
				trigger = "extsort " + sel.Sel.Name
			}
		}
		return true
	})
	return trigger
}

// ctxpollHasPoll reports whether the loop body calls something named
// `cancelled` — the execContext poll — outside function literals.
func ctxpollHasPoll(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "cancelled" {
				found = true
			}
		case *ast.Ident:
			if fun.Name == "cancelled" {
				found = true
			}
		}
		return !found
	})
	return found
}
