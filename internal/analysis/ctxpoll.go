package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxpoll requires every queue-draining loop in the join, shard, and
// serving packages to poll for cancellation. The paper's multi-stage
// traversal (§4.2–§4.3) drains the hybrid priority queue and the
// external-sort iterator in unbounded `for` loops; without a poll, a
// cancelled or deadline-hit query spins until the queue empties — the
// exact hang the execContext.cancelled() throttle
// (cancelEvery/progressEvery) exists to prevent. PRs 6–8 added two
// more drain shapes with the same failure mode: the shard executor's
// partition-pair workers claim tasks from an atomic counter in an
// unbounded loop, and the serving layer's cursors pull pages from the
// public Iterator.
//
// A loop is in scope when its body (function literals excluded — they
// run on other goroutines or later) drains a work source:
//
//   - Pop or Peek on a hybridq.Queue,
//   - Next on an extsort iterator,
//   - Next on the public distjoin.Iterator (the serving cursor pull),
//   - an Add on a sync/atomic counter inside an unbounded
//     condition-less `for` (the task-claim idiom of the shard worker
//     pool and the parallel engine).
//
// Such a loop must poll cancellation in its body: a call to a method
// or function named `cancelled` (the execContext poll), a
// context.Context Err() check, or a same-package helper whose
// call-graph summary (summary.go) says it polls. Loops that are
// bounded by construction — a claim loop capped by the task list, a
// batch fill capped by page size — are annotated with
// `//lint:allow ctxpoll <reason>` instead.
var Ctxpoll = &Analyzer{
	Name:      "ctxpoll",
	Doc:       "queue-draining loops in join/shard/serving must poll cancellation",
	SkipTests: true,
	Run:       runCtxpoll,
}

// ctxpollScopes are the package scope bases the analyzer runs in.
var ctxpollScopes = map[string]bool{"join": true, "shard": true, "serving": true}

func runCtxpoll(pass *Pass) error {
	if exampleTree(pass.PkgPath) || !ctxpollScopes[scopeBase(pass.PkgPath)] {
		return nil
	}
	sums := pass.summaries()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				// Function literals are inspected when the walk reaches
				// them from the top; a loop inside one is still a loop.
				return true
			}
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			trigger := pass.ctxpollTrigger(loop)
			if trigger == "" {
				return true
			}
			if pass.ctxpollHasPoll(loop.Body, sums) {
				return true
			}
			pass.Reportf(loop.For, "loop drains %s without polling cancellation: a cancelled query spins until the source empties; call c.cancelled() in the loop body or annotate a bounded loop with %s ctxpoll <reason>",
				trigger, allowPrefix)
			return true
		})
	}
	return nil
}

// ctxpollTrigger reports the first work-source drain in the loop body
// ("" when none): hybridq.Queue Pop/Peek, an extsort Next, a
// distjoin.Iterator Next, or — for unbounded condition-less loops —
// an atomic task-claim Add. Function literals are skipped — their
// bodies execute elsewhere.
func (pass *Pass) ctxpollTrigger(loop *ast.ForStmt) string {
	trigger := ""
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if trigger != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := pass.TypesInfo.Types[sel.X].Type
		switch sel.Sel.Name {
		case "Pop", "Peek":
			if namedTypeIn(recv, "Queue", "hybridq") {
				trigger = "hybridq.Queue." + sel.Sel.Name
			}
		case "Next":
			if fn := calleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil &&
				scopeBase(fn.Pkg().Path()) == "extsort" {
				trigger = "extsort " + sel.Sel.Name
			} else if namedTypeIn(recv, "Iterator", "distjoin") {
				trigger = "distjoin.Iterator.Next"
			}
		case "Add":
			// The task-claim idiom: `i := next.Add(1) - 1` inside a
			// condition-less for. Only unbounded loops are in scope —
			// `for i > 0 { seq.Add(1) }` shapes bound themselves.
			if loop.Cond == nil && atomicCounterType(recv) {
				trigger = "an atomic task-claim counter"
			}
		}
		return true
	})
	return trigger
}

// atomicCounterType matches the sync/atomic integer counter types used
// by the task-claim idiom.
func atomicCounterType(t types.Type) bool {
	for _, name := range [...]string{"Int32", "Int64", "Uint32", "Uint64"} {
		if namedTypeIn(t, name, "atomic") {
			return true
		}
	}
	return false
}

// ctxpollHasPoll reports whether the loop body polls cancellation
// outside function literals: a call to something named `cancelled`
// (the execContext poll), an Err() on a context.Context, or a
// same-package helper that transitively polls (per its summary).
func (pass *Pass) ctxpollHasPoll(body *ast.BlockStmt, sums *summaryTable) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "cancelled" {
				found = true
				break
			}
			if fun.Sel.Name == "Err" && namedTypeIn(pass.TypesInfo.Types[fun.X].Type, "Context", "context") {
				found = true
				break
			}
		case *ast.Ident:
			if fun.Name == "cancelled" {
				found = true
			}
		}
		if !found {
			if fn := calleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() == pass.Pkg {
				if s := sums.summaryFor(fn); s != nil && s.polls {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
