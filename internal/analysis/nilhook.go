package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilhook enforces the zero-alloc hook discipline that
// TestTraceOffNoAllocs pins at runtime: every optional observability
// or fault hook is either nil-guarded at the call site or a nil-safe
// no-op at the provider. Three rules:
//
//  1. Calls through function-valued hook fields (Config.FaultHook /
//     Options.QueueFaultHook, stored as the hybridq `fault` field)
//     must be dominated by an `if <field> != nil` guard.
//  2. Calls to (*trace.Tracer).Emit / EmitAll outside package trace
//     must be dominated by an Enabled()/!= nil guard — or, for
//     EmitAll, a `len(events) > 0` guard on the argument — so the
//     off path never constructs an Event or touches the tracer.
//  3. The hook provider types themselves (trace.Tracer,
//     obsrv.Registry, obsrv.Query) must keep every exported
//     pointer-receiver method a nil-receiver no-op: the first
//     statement bails on `recv == nil`, or the receiver is only used
//     in nil comparisons and calls to other nil-safe methods
//     (one level deep).
var Nilhook = &Analyzer{
	Name:      "nilhook",
	Doc:       "optional hook calls must be nil-guarded or provider-side nil-safe no-ops",
	SkipTests: true,
	Run:       runNilhook,
}

// hookFieldNames are the function-valued hook fields rule 1 covers.
var hookFieldNames = map[string]bool{
	"fault":          true, // hybridq.Queue's stored Config.FaultHook
	"FaultHook":      true, // hybridq.Config
	"QueueFaultHook": true, // join.Options / distjoin.Options
}

// nilhookProviders maps package scope base to the provider type names
// whose exported methods rule 3 requires to be nil-safe.
var nilhookProviders = map[string][]string{
	"trace": {"Tracer"},
	"obsrv": {"Registry", "Query"},
}

func runNilhook(pass *Pass) error {
	runNilhookCalls(pass)
	runNilhookProviders(pass)
	return nil
}

// runNilhookCalls applies rules 1 and 2.
func runNilhookCalls(pass *Pass) {
	info := pass.TypesInfo
	inTrace := scopeBase(pass.PkgPath) == "trace"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Rule 1: calls through hook fields.
			if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal && hookFieldNames[sel.Sel.Name] {
				if _, isFunc := s.Type().Underlying().(*types.Signature); isFunc {
					expr := types.ExprString(sel)
					posOK, negOK := nilCheckGuards(expr)
					if !pass.isGuarded(call, posOK, negOK) {
						pass.Reportf(call.Pos(), "call through hook field %s without a nil guard: the hook is optional and nil on the zero-alloc off path; wrap it in `if %s != nil { ... }`", expr, expr)
					}
				}
				return true
			}
			// Rule 2: tracer emission outside the provider package.
			if inTrace {
				return true
			}
			name := sel.Sel.Name
			if name != "Emit" && name != "EmitAll" {
				return true
			}
			fn, _ := info.Uses[sel.Sel].(*types.Func)
			if fn == nil {
				return true
			}
			recvType := info.Types[sel.X].Type
			if !namedTypeIn(recvType, "Tracer", "trace") {
				return true
			}
			recvStr := types.ExprString(sel.X)
			posNil, negNil := nilCheckGuards(recvStr)
			posOK := func(e ast.Expr) bool {
				if posNil(e) {
					return true
				}
				if isEnabledCall(e, recvStr) {
					return true
				}
				if name == "EmitAll" && len(call.Args) == 1 {
					return isLenPositive(e, types.ExprString(call.Args[0]))
				}
				return false
			}
			negOK := func(e ast.Expr) bool {
				if negNil(e) {
					return true
				}
				if name == "EmitAll" && len(call.Args) == 1 {
					return isLenZero(e, types.ExprString(call.Args[0]))
				}
				return false
			}
			if !pass.isGuarded(call, posOK, negOK) {
				hint := recvStr + ".Enabled()"
				if name == "EmitAll" {
					hint += " or len(events) > 0"
				}
				pass.Reportf(call.Pos(), "%s.%s without an %s guard: the off path must not build events or touch the tracer (zero-alloc discipline pinned by TestTraceOffNoAllocs)", recvStr, name, hint)
			}
			return true
		})
	}
}

// isEnabledCall matches `<recv>.Enabled()` for the receiver rendered
// as recvStr.
func isEnabledCall(e ast.Expr, recvStr string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Enabled" && types.ExprString(sel.X) == recvStr
}

// isLenPositive matches `len(arg) > 0` / `len(arg) != 0` /
// `0 < len(arg)` for the argument rendered as argStr.
func isLenPositive(e ast.Expr, argStr string) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.GTR, token.NEQ:
		return isLenOf(be.X, argStr) && types.ExprString(be.Y) == "0"
	case token.LSS:
		return types.ExprString(be.X) == "0" && isLenOf(be.Y, argStr)
	}
	return false
}

// isLenZero matches `len(arg) == 0`.
func isLenZero(e ast.Expr, argStr string) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	return (isLenOf(be.X, argStr) && types.ExprString(be.Y) == "0") ||
		(isLenOf(be.Y, argStr) && types.ExprString(be.X) == "0")
}

func isLenOf(e ast.Expr, argStr string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "len" && types.ExprString(call.Args[0]) == argStr
}

// runNilhookProviders applies rule 3.
func runNilhookProviders(pass *Pass) {
	typeNames := nilhookProviders[scopeBase(pass.PkgPath)]
	if len(typeNames) == 0 {
		return
	}
	wanted := make(map[string]bool, len(typeNames))
	for _, n := range typeNames {
		wanted[n] = true
	}
	// Collect the provider types' pointer-receiver methods.
	methods := make(map[string]map[string]*ast.FuncDecl) // type -> method -> decl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			tn := recvTypeName(fd)
			if !wanted[tn] {
				continue
			}
			if methods[tn] == nil {
				methods[tn] = make(map[string]*ast.FuncDecl)
			}
			methods[tn][fd.Name.Name] = fd
		}
	}
	for tn, ms := range methods {
		for name, fd := range ms {
			if !ast.IsExported(name) {
				continue
			}
			if !pass.methodNilSafe(fd, ms, 1) {
				pass.Reportf(fd.Name.Pos(), "exported method (*%s).%s is not a nil-receiver no-op: callers rely on nil hooks being safe (guard with `if %s == nil { return ... }` as the first statement)",
					tn, name, fd.Recv.List[0].Names[0].Name)
			}
		}
	}
}

// recvTypeName returns the base type name of a method's receiver
// ("" when unnamed or not a pointer receiver).
func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return ""
	}
	switch e := ast.Unparen(star.X).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// methodNilSafe reports whether fd is safe to call on a nil receiver:
// its first statement is a nil-receiver bail-out, or every receiver
// use is a nil comparison or a call to another nil-safe method of the
// same type (recursing depth levels).
func (pass *Pass) methodNilSafe(fd *ast.FuncDecl, siblings map[string]*ast.FuncDecl, depth int) bool {
	if fd.Body == nil || len(fd.Recv.List[0].Names) == 0 {
		return false
	}
	recvName := fd.Recv.List[0].Names[0].Name
	if firstStmtNilBailout(fd.Body.List, recvName) {
		return true
	}
	// Otherwise every use of the receiver must itself be nil-safe.
	recvObj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil {
		return false
	}
	safe := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !safe {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recvObj {
			return true
		}
		parent := pass.Parent(id)
		// recv == nil / recv != nil (including `return t != nil`).
		if be, ok := parent.(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
			if types.ExprString(be.X) == "nil" || types.ExprString(be.Y) == "nil" {
				return true
			}
		}
		// recv.M(...) where M is a nil-safe sibling.
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
			if call, ok := pass.Parent(sel).(*ast.CallExpr); ok && call.Fun == sel {
				if sib := siblings[sel.Sel.Name]; sib != nil && depth > 0 &&
					pass.methodNilSafe(sib, siblings, depth-1) {
					return true
				}
			}
		}
		safe = false
		return false
	})
	return safe
}

// firstStmtNilBailout reports whether the statement list opens with
// `if recv == nil [|| ...] { return/panic }`.
func firstStmtNilBailout(list []ast.Stmt, recvName string) bool {
	if len(list) == 0 {
		return false
	}
	ifs, ok := list[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil || !terminates(ifs.Body.List) {
		return false
	}
	found := false
	var scan func(e ast.Expr)
	scan = func(e ast.Expr) {
		switch be := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			if be.Op == token.LOR {
				scan(be.X)
				scan(be.Y)
				return
			}
			if be.Op == token.EQL {
				x, y := types.ExprString(be.X), types.ExprString(be.Y)
				if (x == recvName && y == "nil") || (y == recvName && x == "nil") {
					found = true
				}
			}
		}
	}
	scan(ifs.Cond)
	return found
}
