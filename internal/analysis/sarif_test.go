package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestWriteSARIFRoundTrip pins the emitter against the validator: a
// document produced by WriteSARIF must pass ValidateSARIF, carry a
// rule per analyzer plus the "allow" pseudo-rule, and anchor paths
// under root to the SRCROOT base.
func TestWriteSARIFRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "lockheld",
			Pos:      token.Position{Filename: "/repo/internal/hybridq/queue.go", Line: 42, Column: 3},
			Message:  "storage.WritePage does disk I/O while the hybridq mutex is held",
		},
		{
			Analyzer: "servecontract",
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 7},
			Message:  "http.NotFound bypasses the canonical status table",
		},
		{
			// An analyzer not in the suite (e.g. the "allow"
			// pseudo-analyzer's cousin from a future version) must still
			// yield a declared rule.
			Analyzer: "futurecheck",
			Pos:      token.Position{Filename: "/repo/x.go", Line: 0},
			Message:  "something",
		},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/repo", Suite(), diags); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if err := ValidateSARIF(buf.Bytes()); err != nil {
		t.Fatalf("emitted SARIF does not validate: %v", err)
	}

	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != sarifVersion || log.Schema != sarifSchema {
		t.Fatalf("version/schema = %q/%q", log.Version, log.Schema)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "distjoin-vet" {
		t.Fatalf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range Suite() {
		if !ruleIDs[a.Name] {
			t.Errorf("rule %q missing from driver.rules", a.Name)
		}
	}
	for _, id := range []string{"allow", "futurecheck"} {
		if !ruleIDs[id] {
			t.Errorf("rule %q missing from driver.rules", id)
		}
	}

	if got := len(run.Results); got != len(diags) {
		t.Fatalf("got %d results, want %d", got, len(diags))
	}
	r0 := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation
	if r0.URI != "internal/hybridq/queue.go" || r0.URIBaseID != sarifSrcRoot {
		t.Errorf("in-root path: uri=%q base=%q", r0.URI, r0.URIBaseID)
	}
	r1 := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation
	if !strings.HasSuffix(r1.URI, "outside.go") || r1.URIBaseID != "" {
		t.Errorf("out-of-root path: uri=%q base=%q", r1.URI, r1.URIBaseID)
	}
	if ln := run.Results[2].Locations[0].PhysicalLocation.Region.StartLine; ln != 1 {
		t.Errorf("zero line clamped to %d, want 1", ln)
	}
	if run.Results[0].RuleIndex < 0 || run.Tool.Driver.Rules[run.Results[0].RuleIndex].ID != "lockheld" {
		t.Errorf("ruleIndex does not resolve to lockheld")
	}
	if base, ok := run.OriginalURIBaseIDs[sarifSrcRoot]; !ok || base.URI != "file:///repo/" {
		t.Errorf("originalUriBaseIds = %+v", run.OriginalURIBaseIDs)
	}
}

// TestWriteSARIFEmpty pins that a clean run still yields a valid
// document with an empty (non-null) results array — the shape GitHub
// code scanning requires to close out previously reported alerts.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/repo", Suite(), nil); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSARIF(buf.Bytes()); err != nil {
		t.Fatalf("empty SARIF does not validate: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"results": []`)) {
		t.Errorf("results must serialize as an empty array, not null:\n%s", buf.String())
	}
}

// TestValidateSARIFRejects drives the validator with broken documents
// so the CI -check-sarif step actually guards something.
func TestValidateSARIFRejects(t *testing.T) {
	valid := func() string {
		var buf bytes.Buffer
		if err := WriteSARIF(&buf, "/repo", Suite(), []Diagnostic{{
			Analyzer: "floatcmp",
			Pos:      token.Position{Filename: "/repo/a.go", Line: 3},
			Message:  "x == y on float64",
		}}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()

	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"not-json", func(s string) string { return s[:len(s)/2] }, "not valid JSON"},
		{"wrong-version", func(s string) string { return strings.Replace(s, `"2.1.0"`, `"2.0.0"`, 1) }, "version"},
		{"no-runs", func(string) string { return `{"version":"2.1.0","runs":[]}` }, "no runs"},
		{"no-driver-name", func(s string) string { return strings.Replace(s, `"distjoin-vet"`, `""`, 1) }, "tool.driver.name"},
		{"undeclared-rule", func(s string) string {
			return strings.Replace(s, `"ruleId": "floatcmp"`, `"ruleId": "ghost"`, 1)
		}, "undeclared rule"},
		{"empty-message", func(s string) string {
			return strings.Replace(s, `"text": "x == y on float64"`, `"text": ""`, 1)
		}, "message.text"},
		{"bad-start-line", func(s string) string {
			return strings.Replace(s, `"startLine": 3`, `"startLine": 0`, 1)
		}, "startLine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := tc.mutate(valid)
			err := ValidateSARIF([]byte(doc))
			if err == nil {
				t.Fatalf("validator accepted broken document:\n%s", doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestCollectAllows pins the -allow-report data source: well-formed
// suppressions come back sorted with their reasons, malformed ones
// come back as diagnostics.
func TestCollectAllows(t *testing.T) {
	const src = `package allowrep

func pair() (float64, float64) { return 1, 2 }

//lint:allow floatcmp exact equality is the sentinel contract here
func suppressed() bool {
	a, b := pair()
	return a == b
}

//lint:allow floatcmp
func reasonless() {}
`
	u, err := sharedLoader.CheckSources("fixture/allowrep", map[string][]byte{
		"allowrep.go": []byte(src),
	})
	if err != nil {
		t.Fatal(err)
	}
	allows, malformed := CollectAllows([]*Unit{u}, Suite())
	if len(allows) != 1 {
		t.Fatalf("got %d allows, want 1: %+v", len(allows), allows)
	}
	a := allows[0]
	if a.Analyzer != "floatcmp" || a.Reason != "exact equality is the sentinel contract here" || a.Line != 5 {
		t.Errorf("allow = %+v", a)
	}
	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, "malformed") {
		t.Errorf("malformed = %v, want one missing-reason diagnostic", malformed)
	}
}
