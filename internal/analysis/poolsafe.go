package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Poolsafe enforces the sync.Pool ownership rules of docs/memory.md
// over the hybridq and extsort pool helpers: a pooled object is owned
// by exactly one operation between get and put.
//
// Two rules, checked per function with a linear, aliasing-aware walk:
//
//   - use-after-put: once an object (or any alias of it — a slice of
//     its slab, a field selector, a re-binding) has been handed to a
//     put helper or sync.Pool.Put, no later statement of the function
//     may touch it. Putting it a second time is the same bug (two
//     owners, one slab) and is reported as a double put.
//
//   - escape-then-put: an object obtained from a get helper (or
//     pool.Get) whose backing memory escapes the function — stored
//     into a field or element of some other structure, sent on a
//     channel, or captured by a goroutine — must not be put: the next
//     owner would overwrite memory the escapee still sees.
//
// The walk is conservative in the directions that matter: aliases are
// tracked through plain assignments, slicing, field selection, and
// append's first argument; branch-local puts in terminating blocks
// (error paths that put-and-return) do not poison the fallthrough
// path; loop-local objects are released at the end of the loop body.
// What the walk cannot prove it does not report — the -race stress
// tests in pool_test.go remain the runtime backstop. Put helpers are
// recognized through the call-graph summaries (summary.go), so
// wrappers and the holder indirection of putPageBuf count.
var Poolsafe = &Analyzer{
	Name:      "poolsafe",
	Doc:       "sync.Pool ownership: no use after put, no put of escaped memory (docs/memory.md)",
	SkipTests: true,
	Run:       runPoolsafe,
}

// poolsafeScopes are the package scope bases with pooled hot paths.
var poolsafeScopes = map[string]bool{"hybridq": true, "extsort": true}

func runPoolsafe(pass *Pass) error {
	if exampleTree(pass.PkgPath) || !poolsafeScopes[scopeBase(pass.PkgPath)] {
		return nil
	}
	sums := pass.summaries()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st := &poolWalk{
				pass:   pass,
				sums:   sums,
				alias:  map[*types.Var]*types.Var{},
				poison: map[*types.Var]token.Pos{},
				origin: map[*types.Var]bool{},
				escape: map[*types.Var]token.Pos{},
			}
			st.walkStmts(fd.Body.List)
		}
	}
	return nil
}

// poolWalk is the per-function state of the ownership walk. State is
// threaded through statements in source order; branches share it
// (no join), except that terminating branches — error paths that put
// and return — have their effects rolled back for the fallthrough.
type poolWalk struct {
	pass *Pass
	sums *summaryTable
	// alias maps a variable to the representative root of the memory
	// it aliases (union by assignment; roots map to themselves
	// implicitly).
	alias map[*types.Var]*types.Var
	// poison maps a root to the position of the put that released it.
	poison map[*types.Var]token.Pos
	// origin marks roots obtained from a pool get in this function.
	origin map[*types.Var]bool
	// escape maps an origin root to the first position where its
	// backing memory escaped the function.
	escape map[*types.Var]token.Pos
}

// root resolves v through the alias chain.
func (w *poolWalk) root(v *types.Var) *types.Var {
	for i := 0; i < 32; i++ {
		next, ok := w.alias[v]
		if !ok || next == v {
			return v
		}
		v = next
	}
	return v
}

// rootOf returns the root variable whose memory e denotes, or nil.
// Selectors, indexing, slicing, dereference, and address-of all keep
// the base variable's identity; append aliases its first argument.
func (w *poolWalk) rootOf(e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
				e = x.Args[0]
				continue
			}
			return nil
		case *ast.Ident:
			if v, ok := w.pass.TypesInfo.Uses[x].(*types.Var); ok {
				return w.root(v)
			}
			if v, ok := w.pass.TypesInfo.Defs[x].(*types.Var); ok {
				return w.root(v)
			}
			return nil
		default:
			return nil
		}
	}
}

// snapshot captures poison/escape for terminating-branch rollback.
func (w *poolWalk) snapshot() (map[*types.Var]token.Pos, map[*types.Var]token.Pos) {
	p := make(map[*types.Var]token.Pos, len(w.poison))
	for k, v := range w.poison {
		p[k] = v
	}
	e := make(map[*types.Var]token.Pos, len(w.escape))
	for k, v := range w.escape {
		e[k] = v
	}
	return p, e
}

// walkStmts processes a statement list in source order.
func (w *poolWalk) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		w.walkStmt(s)
	}
}

func (w *poolWalk) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(st.List)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.checkUses(st.Cond)
		w.walkBranch(st.Body)
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			w.walkBranch(e)
		case *ast.IfStmt:
			w.walkStmt(e)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if st.Cond != nil {
			w.checkUses(st.Cond)
		}
		w.walkStmts(st.Body.List)
		if st.Post != nil {
			w.walkStmt(st.Post)
		}
		w.releaseLoopLocals(st)
	case *ast.RangeStmt:
		w.checkUses(st.X)
		w.walkStmts(st.Body.List)
		w.releaseLoopLocals(st)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if st.Tag != nil {
			w.checkUses(st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.checkUses(e)
				}
				w.walkCaseBody(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkCaseBody(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.walkStmt(cc.Comm)
				}
				w.walkCaseBody(cc.Body)
			}
		}
	case *ast.AssignStmt:
		w.assign(st)
	case *ast.SendStmt:
		w.checkUses(st)
		if r := w.rootOf(st.Value); r != nil && w.origin[r] {
			w.recordEscape(r, st.Pos())
		}
	case *ast.GoStmt:
		// A goroutine capturing a pooled object retains it beyond
		// this operation's ownership window.
		for _, arg := range st.Call.Args {
			if r := w.rootOf(arg); r != nil && w.origin[r] {
				w.recordEscape(r, st.Pos())
			}
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if v, ok := w.pass.TypesInfo.Uses[id].(*types.Var); ok {
						if r := w.root(v); w.origin[r] {
							w.recordEscape(r, st.Pos())
						}
					}
				}
				return true
			})
		}
	case *ast.DeferStmt:
		// Deferred puts run at function exit, after every later
		// statement: rule A does not apply. Deliberately skipped.
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							w.checkUses(vs.Values[i])
							w.bind(name, vs.Values[i])
						}
					}
				}
			}
		}
	default:
		// A put call's arguments are ownership transfers, not uses:
		// skip them here so processPuts reports a second put as a
		// double put rather than a use-after-put.
		w.checkUsesSkip(s, w.putCallsIn(s))
		w.processPuts(s)
	}
}

// walkBranch walks an if/else body; when the branch terminates
// (returns, breaks, panics — the put-and-bail error path), its poison
// and escape effects are rolled back so the fallthrough path is
// judged on its own.
func (w *poolWalk) walkBranch(body *ast.BlockStmt) {
	if terminates(body.List) {
		p, e := w.snapshot()
		w.walkStmts(body.List)
		w.poison, w.escape = p, e
		return
	}
	w.walkStmts(body.List)
}

func (w *poolWalk) walkCaseBody(body []ast.Stmt) {
	if terminates(body) {
		p, e := w.snapshot()
		w.walkStmts(body)
		w.poison, w.escape = p, e
		return
	}
	w.walkStmts(body)
}

// releaseLoopLocals drops poison/escape/origin state for variables
// declared inside the loop: each iteration re-binds them, so a put at
// the bottom of the body does not poison the next iteration's object.
func (w *poolWalk) releaseLoopLocals(loop ast.Node) {
	for v := range w.poison {
		if v.Pos() >= loop.Pos() && v.Pos() < loop.End() {
			delete(w.poison, v)
		}
	}
	for v := range w.escape {
		if v.Pos() >= loop.Pos() && v.Pos() < loop.End() {
			delete(w.escape, v)
		}
	}
	for v := range w.origin {
		if v.Pos() >= loop.Pos() && v.Pos() < loop.End() {
			delete(w.origin, v)
		}
	}
}

// assign processes one assignment: report poisoned uses on the RHS,
// update aliases and origins for plain-ident LHS, record escapes for
// stores of pooled memory into other structures, then process puts.
func (w *poolWalk) assign(st *ast.AssignStmt) {
	skip := w.putCallsIn(st)
	for _, rhs := range st.Rhs {
		w.checkUsesSkip(rhs, skip)
	}
	for _, lhs := range st.Lhs {
		if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
			// Writing through x.f, x[i], *x is a use of x's memory.
			w.checkUsesSkip(lhs, skip)
		}
	}
	// Escape: a pooled object stored into a different structure.
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			switch ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				lr := w.rootOf(lhs)
				rr := w.rootOf(st.Rhs[i])
				if rr != nil && w.origin[rr] && lr != rr {
					w.recordEscape(rr, st.Pos())
				}
			}
		}
	}
	// Alias/origin bookkeeping for plain-ident LHS.
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				w.bind(id, st.Rhs[i])
			}
		}
	} else if len(st.Lhs) == 2 && len(st.Rhs) == 1 {
		// Comma-ok form (h, ok := pool.Get().(*T)): the first name
		// binds to the value — the pool-get origin idiom.
		if id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident); ok {
			w.bind(id, st.Rhs[0])
		}
		if id, ok := ast.Unparen(st.Lhs[1]).(*ast.Ident); ok {
			w.bindFresh(id)
		}
	} else {
		// Multi-value form (v, err := f()): fresh bindings.
		for _, lhs := range st.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				w.bindFresh(id)
			}
		}
	}
	w.processPuts(st)
}

// bind points id at the memory rhs denotes, clearing any stale state
// from a previous binding.
func (w *poolWalk) bind(id *ast.Ident, rhs ast.Expr) {
	v := w.objOf(id)
	if v == nil {
		return
	}
	delete(w.poison, v)
	delete(w.alias, v)
	// Alias only memory of a pool-origin object, and never through a
	// pointer dereference: `b := *h` copies the value out of the holder
	// (the putPageBuf holder idiom nils the slot before putting it
	// back), and `seg := q.segs[i]` pulls a child out of a container —
	// putting the child must not implicate the container.
	if _, isDeref := ast.Unparen(rhs).(*ast.StarExpr); !isDeref {
		if r := w.rootOf(rhs); r != nil && r != v && w.origin[r] {
			w.alias[v] = r
			return
		}
	}
	// A fresh root: is it a pool get?
	if call, ok := ast.Unparen(stripAssert(rhs)).(*ast.CallExpr); ok {
		if isPoolMethod(call, w.pass.TypesInfo, "Get") {
			w.origin[v] = true
			delete(w.escape, v)
			return
		}
		if fn := calleeFunc(w.pass.TypesInfo, call); fn != nil && fn.Pkg() == w.pass.Pkg {
			if s := w.sums.summaryFor(fn); s != nil && s.getsPool {
				w.origin[v] = true
				delete(w.escape, v)
			}
		}
	}
}

func (w *poolWalk) bindFresh(id *ast.Ident) {
	if v := w.objOf(id); v != nil {
		delete(w.poison, v)
		delete(w.alias, v)
	}
}

func (w *poolWalk) objOf(id *ast.Ident) *types.Var {
	if v, ok := w.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := w.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// stripAssert unwraps a type assertion (pool.Get().(*pairBuf)).
func stripAssert(e ast.Expr) ast.Expr {
	if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
		return ta.X
	}
	return e
}

// checkUses reports every reference to poisoned memory inside n.
func (w *poolWalk) checkUses(n ast.Node) { w.checkUsesSkip(n, nil) }

// checkUsesSkip is checkUses with a set of put calls whose subtrees
// are ownership transfers and therefore not uses.
func (w *poolWalk) checkUsesSkip(n ast.Node, skip map[ast.Node]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if skip[m] {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		r := w.root(v)
		if putPos, poisoned := w.poison[r]; poisoned {
			w.pass.Reportf(id.Pos(), "use of %s after it was returned to the pool at line %d: a pooled object is owned by exactly one operation between get and put (docs/memory.md); copy the data out before the put, or annotate with %s poolsafe <reason>",
				id.Name, w.pass.Fset.Position(putPos).Line, allowPrefix)
			// Report each released object once per function.
			delete(w.poison, r)
		}
		return true
	})
}

// processPuts finds put calls in n (function literals excluded) and
// applies the ownership transitions: double-put and escape-then-put
// checks, then poisoning.
func (w *poolWalk) processPuts(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range w.putArgsOf(call) {
			r := w.rootOf(arg)
			if r == nil {
				continue
			}
			if first, ok := w.poison[r]; ok {
				w.pass.Reportf(call.Pos(), "%s is returned to the pool twice (first at line %d): a double put gives the pool two owners for one object",
					types.ExprString(arg), w.pass.Fset.Position(first).Line)
				continue
			}
			if escPos, ok := w.escape[r]; ok && escPos < call.Pos() {
				w.pass.Reportf(call.Pos(), "%s is returned to the pool but its backing memory escaped at line %d: the next owner will overwrite memory the escapee still sees; copy instead of aliasing, or annotate with %s poolsafe <reason>",
					types.ExprString(arg), w.pass.Fset.Position(escPos).Line, allowPrefix)
			}
			w.poison[r] = call.Pos()
		}
		return true
	})
}

// putArgsOf returns the expressions call hands to a pool put —
// directly (sync.Pool.Put), or through a same-package put helper's
// put parameters/receiver. Empty when call is not a put.
func (w *poolWalk) putArgsOf(call *ast.CallExpr) []ast.Expr {
	if isPoolMethod(call, w.pass.TypesInfo, "Put") {
		return call.Args
	}
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() != w.pass.Pkg {
		return nil
	}
	s := w.sums.summaryFor(fn)
	if s == nil || len(s.putParams) == 0 {
		return nil
	}
	var args []ast.Expr
	for j, arg := range call.Args {
		if s.putParams[j] {
			args = append(args, arg)
		}
	}
	if s.putParams[-1] {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args = append(args, sel.X)
		}
	}
	return args
}

// putCallsIn collects the put calls inside n (function literals
// excluded) so checkUsesSkip can treat their subtrees as ownership
// transfers rather than uses.
func (w *poolWalk) putCallsIn(n ast.Node) map[ast.Node]bool {
	var skip map[ast.Node]bool
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && len(w.putArgsOf(call)) > 0 {
			if skip == nil {
				skip = map[ast.Node]bool{}
			}
			skip[call] = true
		}
		return true
	})
	return skip
}

// recordEscape stores the first escape position for a root.
func (w *poolWalk) recordEscape(r *types.Var, pos token.Pos) {
	if _, ok := w.escape[r]; !ok {
		w.escape[r] = pos
	}
}
