package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Lockheld forbids blocking work while a hybridq or obsrv mutex is
// held: disk I/O through storage/extsort (or os), channel sends,
// receives and selects, and sync blocking calls (WaitGroup.Wait,
// Cond.Wait, time.Sleep). A spill or reload that blocks under the
// queue lock is exactly the deadlock shape the paper's hybrid
// memory/disk queue (§4.4) invites once traversal is concurrent.
//
// Lock acquisition is recognized in the two idioms the codebase uses:
//
//   - `defer q.lock()()` — the hybridq unlock-func idiom, which holds
//     the lock for the rest of the function;
//   - `x.mu.Lock()` / `x.mu.RLock()` on a sync.(RW)Mutex — held until
//     the matching Unlock in the same block, or function end.
//
// Calls out of a locked region are resolved through the per-function
// call-graph summaries (summary.go): a same-package callee that may
// block — at any depth of same-package calls — is reported at the
// caller's call site, with the witness chain in the message, so
// `Push → spill → appendToSegment → storage.WritePage` is caught
// without whole-program analysis. The summaries are conservative
// (may-effects, unreachable paths included); deliberate I/O under the
// queue's own single-owner lock is annotated at the locked call site
// with `//lint:allow lockheld <reason>`.
var Lockheld = &Analyzer{
	Name:      "lockheld",
	Doc:       "no I/O, channel, or sync blocking operations while a hybridq/obsrv mutex is held",
	SkipTests: true,
	Run:       runLockheld,
}

// lockheldScopes are the package scope bases the analyzer runs in.
var lockheldScopes = map[string]bool{"hybridq": true, "obsrv": true}

// lockheldIOPkgs are packages whose calls count as I/O under a lock.
var lockheldIOPkgs = map[string]bool{"storage": true, "extsort": true, "os": true}

func runLockheld(pass *Pass) error {
	if exampleTree(pass.PkgPath) || !lockheldScopes[scopeBase(pass.PkgPath)] {
		return nil
	}
	sums := pass.summaries()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			forEachLockedStmt(pass, fd, func(s ast.Stmt) {
				pass.lockheldViolations(s, fd, sums)
			})
		}
	}
	return nil
}

// forEachLockedStmt walks fd's body tracking the mutex-held state and
// invokes check on every statement that executes with a lock held.
// Shared by lockheld and servecontract (render-under-lock).
func forEachLockedStmt(pass *Pass, fd *ast.FuncDecl, check func(ast.Stmt)) {
	var checkBlock func(list []ast.Stmt, locked bool)
	checkBlock = func(list []ast.Stmt, locked bool) {
		lockExprs := map[string]bool{}
		for _, s := range list {
			switch st := s.(type) {
			case *ast.DeferStmt:
				// defer x.lock()() — locked for the rest of the block.
				if inner, ok := st.Call.Fun.(*ast.CallExpr); ok {
					if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "lock" {
						locked = true
						continue
					}
				}
				// defer mu.Unlock() does not end the region: the lock
				// is held until function exit.
				continue
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if recv, kind := mutexCall(pass.TypesInfo, call); kind != "" {
						switch kind {
						case "Lock", "RLock":
							locked = true
							lockExprs[recv] = true
							continue
						case "Unlock", "RUnlock":
							if lockExprs[recv] {
								delete(lockExprs, recv)
								if len(lockExprs) == 0 {
									locked = false
								}
								continue
							}
						}
					}
				}
			}
			if locked {
				check(s)
			}
			// Nested blocks inherit the locked state through check's
			// recursive inspection, except that explicit sub-blocks with
			// their own lock/unlock discipline are handled by recursion.
			if !locked {
				switch st := s.(type) {
				case *ast.BlockStmt:
					checkBlock(st.List, false)
				case *ast.IfStmt:
					checkBlock(st.Body.List, false)
					if blk, ok := st.Else.(*ast.BlockStmt); ok {
						checkBlock(blk.List, false)
					}
				case *ast.ForStmt:
					checkBlock(st.Body.List, false)
				case *ast.RangeStmt:
					checkBlock(st.Body.List, false)
				case *ast.SwitchStmt:
					for _, c := range st.Body.List {
						if cc, ok := c.(*ast.CaseClause); ok {
							checkBlock(cc.Body, false)
						}
					}
				}
			}
		}
	}
	checkBlock(fd.Body.List, false)
}

// mutexCall matches a call to a method of sync.Mutex/RWMutex and
// returns the receiver expression string and the method name.
func mutexCall(info *types.Info, call *ast.CallExpr) (recv, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return "", ""
	}
	t := info.Types[sel.X].Type
	if namedTypeIn(t, "Mutex", "sync") || namedTypeIn(t, "RWMutex", "sync") {
		return types.ExprString(sel.X), name
	}
	return "", ""
}

// lockheldViolations reports blocking operations reachable from n:
// direct channel/select syntax, direct blocking calls, and —
// through the call-graph summaries — same-package callees that may
// block at any depth. Function literals are excluded (their bodies
// run later).
func (pass *Pass) lockheldViolations(n ast.Node, fd *ast.FuncDecl, sums *summaryTable) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(e.Pos(), "channel send while a %s mutex is held: a blocked receiver deadlocks every queue operation; move the send outside the locked region", scopeBase(pass.PkgPath))
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" {
				pass.Reportf(e.Pos(), "channel receive while a %s mutex is held: move the receive outside the locked region", scopeBase(pass.PkgPath))
			}
		case *ast.SelectStmt:
			pass.Reportf(e.Pos(), "select while a %s mutex is held: move channel operations outside the locked region", scopeBase(pass.PkgPath))
		case *ast.CallExpr:
			pass.lockheldCall(e, fd, sums)
		}
		return true
	})
}

// lockheldCall classifies one call inside a locked region: a direct
// blocking primitive, or a same-package callee whose summary says it
// may block.
func (pass *Pass) lockheldCall(call *ast.CallExpr, fd *ast.FuncDecl, sums *summaryTable) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	base := scopeBase(fn.Pkg().Path())
	lockPkg := scopeBase(pass.PkgPath)
	switch {
	case lockheldIOPkgs[base]:
		pass.Reportf(call.Pos(), "%s.%s does disk I/O while the %s mutex is held: a slow or faulted page operation stalls every caller of the queue; stage the I/O outside the lock or annotate the single-owner design with %s lockheld <reason>",
			base, fn.Name(), lockPkg, allowPrefix)
	case base == "sync" && fn.Name() == "Wait":
		pass.Reportf(call.Pos(), "blocking sync Wait while the %s mutex is held: waiting for other goroutines under the lock deadlocks when they need it", lockPkg)
	case base == "time" && fn.Name() == "Sleep":
		pass.Reportf(call.Pos(), "time.Sleep while the %s mutex is held", lockPkg)
	case fn.Pkg() == pass.Pkg:
		// Same-package callee: consult its call-graph summary. Skip
		// self-recursion — the function's own region is checked
		// directly.
		if sums.declFor(fn) == fd {
			return
		}
		s := sums.summaryFor(fn)
		if s == nil {
			return
		}
		name := fn.Name()
		switch {
		case s.effects[effIO] != "":
			pass.Reportf(call.Pos(), "call to %s does disk I/O (%s) while the %s mutex is held; stage the I/O outside the lock or annotate the single-owner design with %s lockheld <reason>",
				name, s.effects[effIO], lockPkg, allowPrefix)
		case s.effects[effChanSend] != "":
			pass.Reportf(call.Pos(), "call to %s performs a channel send while the %s mutex is held%s", name, lockPkg, viaClause(s.effects[effChanSend]))
		case s.effects[effChanRecv] != "":
			pass.Reportf(call.Pos(), "call to %s performs a channel receive while the %s mutex is held%s", name, lockPkg, viaClause(s.effects[effChanRecv]))
		case s.effects[effSelect] != "":
			pass.Reportf(call.Pos(), "call to %s runs a select while the %s mutex is held%s", name, lockPkg, viaClause(s.effects[effSelect]))
		case s.effects[effSyncWait] != "":
			pass.Reportf(call.Pos(), "call to %s waits on other goroutines (blocking sync Wait) while the %s mutex is held%s", name, lockPkg, viaClause(s.effects[effSyncWait]))
		case s.effects[effSleep] != "":
			pass.Reportf(call.Pos(), "call to %s sleeps (time.Sleep) while the %s mutex is held%s", name, lockPkg, viaClause(s.effects[effSleep]))
		}
	}
}

// viaClause renders a witness path as a " (via …)" suffix when the
// effect is reached through intermediate callees, and as nothing when
// the callee performs it directly.
func viaClause(witness string) string {
	if strings.Contains(witness, "→") {
		return " (via " + witness + ")"
	}
	return ""
}
