package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF 2.1.0 emission, the interchange format CI uses to surface
// findings as code-scanning annotations. The emitter writes the
// minimal valid subset — tool.driver with one reportingDescriptor per
// analyzer, one result per diagnostic with a physicalLocation region —
// and ValidateSARIF structurally checks any document against the same
// subset, so the CI step that validates the uploaded artifact does not
// need an external schema validator.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"
	// sarifSrcRoot is the uriBaseId every result URI is relative to;
	// GitHub code scanning resolves it to the repository root.
	sarifSrcRoot = "SRCROOT"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool              `json:"tool"`
	Results            []sarifResult          `json:"results"`
	OriginalURIBaseIDs map[string]sarifArtLoc `json:"originalUriBaseIds,omitempty"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtLoc `json:"artifactLocation"`
	Region           sarifRegion `json:"region"`
}

type sarifArtLoc struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diags as a SARIF 2.1.0 log. root anchors the
// %SRCROOT% base: file paths under it are emitted relative (with
// forward slashes); paths outside it are emitted as-is without a
// uriBaseId. The rules table carries every analyzer plus the "allow"
// pseudo-analyzer that reports malformed annotations, so every
// possible ruleId resolves.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	index := map[string]int{}
	addRule := func(id, doc string) {
		if _, ok := index[id]; ok {
			return
		}
		index[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule("allow", "//lint:allow annotations must name a known analyzer and carry a reason")

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := index[d.Analyzer]
		if !ok {
			addRule(d.Analyzer, "(undeclared analyzer)")
			idx = index[d.Analyzer]
		}
		loc := sarifArtLoc{URI: filepath.ToSlash(d.Pos.Filename)}
		if root != "" {
			if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				loc = sarifArtLoc{URI: filepath.ToSlash(rel), URIBaseID: sarifSrcRoot}
			}
		}
		line := d.Pos.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: loc,
					Region:           sarifRegion{StartLine: line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "distjoin-vet", Rules: rules}},
			Results: results,
		}},
	}
	if root != "" {
		log.Runs[0].OriginalURIBaseIDs = map[string]sarifArtLoc{
			sarifSrcRoot: {URI: "file://" + filepath.ToSlash(root) + "/"},
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// ValidateSARIF structurally checks a SARIF document against the
// 2.1.0 subset WriteSARIF emits: version, at least one run with a
// named tool driver, every result referencing a declared rule and
// carrying a message and a physical location with a positive start
// line. The first violation is returned as an error.
func ValidateSARIF(data []byte) error {
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		return fmt.Errorf("sarif: not valid JSON: %w", err)
	}
	if log.Version != sarifVersion {
		return fmt.Errorf("sarif: version %q, want %q", log.Version, sarifVersion)
	}
	if len(log.Runs) == 0 {
		return fmt.Errorf("sarif: no runs")
	}
	for ri, run := range log.Runs {
		if run.Tool.Driver.Name == "" {
			return fmt.Errorf("sarif: runs[%d] has no tool.driver.name", ri)
		}
		ruleIDs := map[string]bool{}
		for _, r := range run.Tool.Driver.Rules {
			if r.ID == "" {
				return fmt.Errorf("sarif: runs[%d] declares a rule with no id", ri)
			}
			ruleIDs[r.ID] = true
		}
		for i, res := range run.Results {
			if res.RuleID == "" {
				return fmt.Errorf("sarif: runs[%d].results[%d] has no ruleId", ri, i)
			}
			if !ruleIDs[res.RuleID] {
				return fmt.Errorf("sarif: runs[%d].results[%d] references undeclared rule %q", ri, i, res.RuleID)
			}
			if res.Message.Text == "" {
				return fmt.Errorf("sarif: runs[%d].results[%d] has no message.text", ri, i)
			}
			if len(res.Locations) == 0 {
				return fmt.Errorf("sarif: runs[%d].results[%d] has no locations", ri, i)
			}
			for j, l := range res.Locations {
				if l.PhysicalLocation.ArtifactLocation.URI == "" {
					return fmt.Errorf("sarif: runs[%d].results[%d].locations[%d] has no artifact URI", ri, i, j)
				}
				if l.PhysicalLocation.Region.StartLine < 1 {
					return fmt.Errorf("sarif: runs[%d].results[%d].locations[%d] startLine %d < 1",
						ri, i, j, l.PhysicalLocation.Region.StartLine)
				}
			}
		}
	}
	return nil
}

// Allow is one parsed //lint:allow suppression, surfaced by the
// -allow-report mode so reviewers can audit every live suppression
// and its stated reason in one place.
type Allow struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
}

// CollectAllows scans units for //lint:allow annotations. The first
// return is every well-formed suppression; the second is the
// malformed ones (missing reason, unknown analyzer) as diagnostics —
// the -allow-report CI step fails when any exist.
func CollectAllows(units []*Unit, analyzers []*Analyzer) ([]Allow, []Diagnostic) {
	var out []Allow
	var bad []Diagnostic
	for _, u := range units {
		idx := buildAllowIndex(u, analyzers)
		for _, a := range idx.allows {
			out = append(out, Allow{File: a.file, Line: a.annotLine, Analyzer: a.analyzer, Reason: a.reason})
		}
		bad = append(bad, idx.malformed...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, bad
}
