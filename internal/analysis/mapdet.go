package analysis

import (
	"go/ast"
	"go/types"
)

// Mapdet enforces the determinism contract on the packages whose
// output feeds result ordering: the sharded executor's merge is
// byte-identical across shard and worker counts (the property that
// makes bounds-only pruning and partition-parallel evaluation safe to
// compose), and that only holds if no code on the result path consults
// a nondeterministic source. Three sources are banned:
//
//   - `range` over a map — iteration order is deliberately randomized
//     by the runtime; iterate a sorted key slice instead;
//   - time.Now — wall-clock reads steer cutoff scheduling differently
//     run to run (telemetry belongs in trace/obsrv, which are out of
//     scope);
//   - math/rand and math/rand/v2 — randomized choices on the result
//     path break replay and the cross-shard identity tests.
//
// In-scope packages are the engine core: join, shard, hybridq, pqueue,
// sweep, extsort. Deliberate exceptions (a debug dump, a
// reproducibility-irrelevant sampling decision) are annotated with
// `//lint:allow mapdet <reason>`.
var Mapdet = &Analyzer{
	Name:      "mapdet",
	Doc:       "no map iteration, wall-clock, or math/rand on determinism-critical paths",
	SkipTests: true,
	Run:       runMapdet,
}

// mapdetScopes are the determinism-critical package scope bases.
var mapdetScopes = map[string]bool{
	"join": true, "shard": true, "hybridq": true,
	"pqueue": true, "sweep": true, "extsort": true,
}

func runMapdet(pass *Pass) error {
	base := scopeBase(pass.PkgPath)
	if exampleTree(pass.PkgPath) || !mapdetScopes[base] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypesInfo.Types[e.X].Type
				if t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(e.For, "range over a map in determinism-critical package %s: iteration order is randomized and would leak into result ordering; iterate a sorted key slice instead, or annotate with %s mapdet <reason>",
							base, allowPrefix)
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, e)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch path := fn.Pkg().Path(); {
				case path == "time" && fn.Name() == "Now":
					pass.Reportf(e.Pos(), "time.Now in determinism-critical package %s: wall-clock reads make runs diverge; thread explicit state instead, or annotate with %s mapdet <reason>",
						base, allowPrefix)
				case path == "math/rand" || path == "math/rand/v2":
					pass.Reportf(e.Pos(), "math/rand call (%s.%s) in determinism-critical package %s: randomized choices on the result path break replay and cross-shard identity; annotate a deliberate use with %s mapdet <reason>",
						fn.Pkg().Name(), fn.Name(), base, allowPrefix)
				}
			}
			return true
		})
	}
	return nil
}
