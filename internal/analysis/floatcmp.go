package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatcmp flags bit-exact comparisons of computed floating-point
// values — the class of bug that makes AM-KDJ's compensation logic
// (paper §4.1) silently dismiss pairs when a distance is NaN or
// differs in the last ulp:
//
//   - `==` / `!=` between two non-constant float operands;
//   - `switch` on a float tag;
//   - the builtin min/max over non-constant float operands, which
//     silently propagates NaN into pruning cutoffs.
//
// Comparisons against compile-time constants (`d == 0`,
// `ratio != 1.0`) are sentinel checks, not distance identity, and are
// not flagged; neither is the `x != x` NaN idiom. Legitimate bit-exact
// sites — the deterministic tie-breaks the parallel engine relies on,
// and the hybrid queue's tie-run boundary scans — carry
// `//lint:allow floatcmp <reason>` annotations.
var Floatcmp = &Analyzer{
	Name:      "floatcmp",
	Doc:       "flag ==/!=/switch and builtin min/max on non-constant float values",
	SkipTests: true,
	Run:       runFloatcmp,
}

func runFloatcmp(pass *Pass) error {
	info := pass.TypesInfo
	isConst := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && tv.Value != nil
	}
	exprFloat := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && typeIsFloat(tv.Type)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if !exprFloat(e.X) || !exprFloat(e.Y) {
					return true
				}
				if isConst(e.X) || isConst(e.Y) {
					return true // sentinel comparison
				}
				if types.ExprString(e.X) == types.ExprString(e.Y) {
					return true // x != x NaN idiom
				}
				pass.Reportf(e.OpPos, "bit-exact float comparison %s %s %s: NaN or last-ulp drift silently changes the result; compare with a tolerance, use math.IsNaN, or annotate the bit-exact intent with %s floatcmp <reason>",
					types.ExprString(e.X), e.Op, types.ExprString(e.Y), allowPrefix)
			case *ast.SwitchStmt:
				if e.Tag != nil && exprFloat(e.Tag) {
					pass.Reportf(e.Switch, "switch on float value %s: float case matching is bit-exact and NaN never matches; restructure as ordered comparisons or annotate with %s floatcmp <reason>",
						types.ExprString(e.Tag), allowPrefix)
				}
			case *ast.CallExpr:
				id, ok := ast.Unparen(e.Fun).(*ast.Ident)
				if !ok || (id.Name != "min" && id.Name != "max") {
					return true
				}
				if _, ok := info.Uses[id].(*types.Builtin); !ok {
					return true
				}
				anyFloat, allConst := false, true
				for _, arg := range e.Args {
					if exprFloat(arg) {
						anyFloat = true
					}
					if !isConst(arg) {
						allConst = false
					}
				}
				if anyFloat && !allConst {
					pass.Reportf(e.Pos(), "builtin %s on float operands propagates NaN into the result: a NaN distance poisons every downstream cutoff; guard operands with math.IsNaN or annotate with %s floatcmp <reason>",
						id.Name, allowPrefix)
				}
			}
			return true
		})
	}
	return nil
}
