package analysis

import (
	"go/ast"
	"regexp"
	"sort"
	"strings"

	"distjoin/internal/trace"
)

// Promdrift pins the Prometheus surface: the per-query exporter
// (internal/trace), the process-level registry exporter
// (internal/obsrv), and the strict exposition lint's expected series
// must all agree with the canonical contract held here. A renamed or
// dropped metric then fails `go vet`, not a production scrape.
//
// The contract has two halves:
//
//   - the Collector-derived families, obtained live from
//     trace.PromFields() (reflection over metrics.Collector, so a new
//     counter extends the contract automatically);
//   - the registry-only families and the derived totals, listed
//     literally below — the arbiter all three surfaces are checked
//     against.
//
// Checks (packages trace and obsrv, tests included):
//
//  1. every compile-time string constant matching ^distjoin_ must name
//     a contract family (histogram _bucket/_sum/_count series of
//     contract histograms are accepted);
//  2. package obsrv must mention every registry family and package
//     trace every derived family — a silent removal is a finding;
//  3. trace's promNamespace constant must be "distjoin".
//
// To rename a metric intentionally, change all three surfaces AND the
// contract below in the same commit (see docs/static-analysis.md).
var Promdrift = &Analyzer{
	Name: "promdrift",
	Doc:  "trace/obsrv Prometheus families and the exposition lint must match the canonical contract",
	// Tests are scanned too: the strict exposition lint's expected
	// series (obsrv/promlint_test.go) is one of the guarded surfaces.
	SkipTests: false,
	Run:       runPromdrift,
}

// registryContract is the canonical registry-only Prometheus surface:
// family name -> exposition type. It must match obsrv/export.go and
// the want map of TestPromExpositionLint.
var registryContract = map[string]string{
	"distjoin_registry_uptime_seconds":    "gauge",
	"distjoin_inflight_queries":           "gauge",
	"distjoin_queries_total":              "counter",
	"distjoin_query_errors_total":         "counter",
	"distjoin_query_latency_seconds":      "histogram",
	"distjoin_query_dist_calcs":           "histogram",
	"distjoin_query_queue_inserts":        "histogram",
	"distjoin_edmax_estimate_ratio":       "histogram",
	"distjoin_edmax_corrections_total":    "counter",
	"distjoin_edmax_underestimates_total": "counter",
	"distjoin_edmax_overestimates_total":  "counter",

	// Serving-layer families (obsrv/serving.go), exported when an HTTP
	// serving layer attaches a ServingMetrics to the registry.
	"distjoin_serving_requests_total":          "counter",
	"distjoin_serving_request_latency_seconds": "histogram",
	"distjoin_serving_admission_wait_seconds":  "histogram",
	"distjoin_serving_shed_total":              "counter",
	"distjoin_serving_rejected_draining_total": "counter",
	"distjoin_serving_deadline_exceeded_total": "counter",
	"distjoin_serving_client_gone_total":       "counter",
	"distjoin_serving_failed_total":            "counter",
	"distjoin_serving_slow_queries_total":      "counter",
	"distjoin_serving_cursors_opened_total":    "counter",
	"distjoin_serving_cursors_expired_total":   "counter",
	"distjoin_serving_inflight_queries":        "gauge",
	"distjoin_serving_queued_requests":         "gauge",
	"distjoin_serving_open_cursors":            "gauge",
	"distjoin_serving_draining":                "gauge",
}

// derivedContract is the canonical set of derived per-query families
// (trace/export.go derivedMetrics) — a subset of trace.PromFields.
var derivedContract = []string{
	"distjoin_buffer_hit_ratio",
	"distjoin_dist_calcs_total",
	"distjoin_queue_inserts_total",
	"distjoin_response_time_seconds",
}

// promNamespaceWant is the required value of trace's promNamespace.
const promNamespaceWant = "distjoin"

var promNameRE = regexp.MustCompile(`^distjoin_[a-z0-9_]+$`)

// promExpected builds the full allowed-name set and the histogram
// stems from the live trace.PromFields plus the literal contract.
func promExpected() (names map[string]bool, histograms map[string]bool) {
	names = make(map[string]bool)
	for _, f := range trace.PromFields() {
		names[f.Name] = true
	}
	histograms = make(map[string]bool)
	for name, typ := range registryContract {
		names[name] = true
		if typ == "histogram" {
			histograms[name] = true
		}
	}
	return names, histograms
}

func runPromdrift(pass *Pass) error {
	base := scopeBase(pass.PkgPath)
	if base != "trace" && base != "obsrv" {
		return nil
	}
	expected, histograms := promExpected()

	// Sanity: the literal derived contract must still be exported by
	// trace.PromFields — otherwise the contract itself is stale.
	for _, name := range derivedContract {
		if !expected[name] {
			pass.Reportf(pass.Files[0].Name.Pos(), "promdrift contract is stale: derived family %q is no longer exported by trace.PromFields; update internal/analysis/promdrift.go together with the rename", name)
		}
	}

	accepted := func(name string) bool {
		if expected[name] {
			return true
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if stem, ok := strings.CutSuffix(name, suffix); ok && histograms[stem] {
				return true
			}
		}
		return false
	}

	seen := make(map[string]bool)
	for _, f := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")

		// Check 3: the namespace constant (trace, non-test files).
		if base == "trace" && !isTest {
			ast.Inspect(f, func(n ast.Node) bool {
				vs, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for i, name := range vs.Names {
					if name.Name == "promNamespace" && i < len(vs.Values) {
						if v, ok := constString(pass.TypesInfo, vs.Values[i]); ok && v != promNamespaceWant {
							pass.Reportf(vs.Values[i].Pos(), "promNamespace is %q, want %q: every exported family name would change and break the registry exporter and the exposition lint", v, promNamespaceWant)
						}
					}
				}
				return true
			})
		}

		// Check 1: every distjoin_* string constant names a contract
		// family. Stop descending once a constant expression matched,
		// so one name reports once.
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			v, isConst := constString(pass.TypesInfo, e)
			if !isConst || !promNameRE.MatchString(v) {
				return true
			}
			if !isTest {
				seen[v] = true
			}
			if !accepted(v) {
				pass.Reportf(e.Pos(), "Prometheus family %q is not in the canonical contract: renamed or new metrics must update trace/obsrv, the exposition lint, and the promdrift contract together (docs/static-analysis.md)", v)
			}
			return false
		})
	}

	// Check 2: required families must still be mentioned by the
	// exporter sources. The aggregated report points at the package
	// clause; the len(seen) gate skips units with no exporter files.
	var missing []string
	switch base {
	case "obsrv":
		for name := range registryContract {
			if !seen[name] {
				missing = append(missing, name)
			}
		}
	case "trace":
		for _, name := range derivedContract {
			if !seen[name] {
				missing = append(missing, name)
			}
		}
	}
	if len(missing) > 0 && len(seen) > 0 {
		sort.Strings(missing)
		pass.Reportf(pass.Files[0].Name.Pos(), "package %s no longer mentions contract famil%s %s: removing or renaming an exported metric must update the promdrift contract too (docs/static-analysis.md)",
			base, plural(len(missing), "y", "ies"), strings.Join(missing, ", "))
	}
	return nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
