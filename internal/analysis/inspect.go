package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Syntax and guard-dominance helpers shared by the analyzers.
//
// The guard model is deliberately syntactic: an expression E is
// "guarded" at a call site when either
//
//  1. an ancestor if-statement encloses the call in its THEN branch
//     and its condition positively requires the guard (directly or as
//     a conjunct of &&), or
//  2. an earlier statement of an enclosing block is an early-exit of
//     the form `if <negated guard> { return/continue/break/panic }`,
//     which dominates everything after it in that block.
//
// This matches the two idioms the codebase uses everywhere
// (`if q.fault != nil { q.fault(op) }` and
// `if !c.tr.Enabled() { return }; c.tr.Emit(...)`) without needing a
// full dominator analysis.

// buildParents maps every node of files to its parent node.
func buildParents(files []*ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			// The file itself has no parent; mapping it to itself
			// would turn every ancestor walk into an infinite loop.
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}

// Parent returns n's syntactic parent within the unit (nil for files).
func (p *Pass) Parent(n ast.Node) ast.Node {
	return p.parents[n]
}

// EnclosingFunc returns the function declaration lexically containing
// n, or nil.
func (p *Pass) EnclosingFunc(n ast.Node) *ast.FuncDecl {
	for cur := n; cur != nil; cur = p.parents[cur] {
		if fd, ok := cur.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// posContains reports whether cond positively requires ok: the guard
// holds whenever cond is true. Conjunctions distribute; disjunctions
// and negations do not.
func posContains(cond ast.Expr, ok func(ast.Expr) bool) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return posContains(e.X, ok)
	case *ast.BinaryExpr:
		if e.Op.String() == "&&" {
			return posContains(e.X, ok) || posContains(e.Y, ok)
		}
	}
	return ok(cond)
}

// negContains reports whether cond truthiness implies the guard does
// NOT hold (the early-exit form): `!guard`, `x == nil`, or any
// disjunct thereof.
func negContains(cond ast.Expr, ok func(ast.Expr) bool, notOK func(ast.Expr) bool) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return negContains(e.X, ok, notOK)
	case *ast.UnaryExpr:
		if e.Op.String() == "!" {
			return posContains(e.X, ok)
		}
	case *ast.BinaryExpr:
		if e.Op.String() == "||" {
			return negContains(e.X, ok, notOK) || negContains(e.Y, ok, notOK)
		}
	}
	return notOK(cond)
}

// terminates reports whether a statement list unconditionally leaves
// the enclosing scope: its last statement is a return, a branch
// (break/continue/goto), or a call to panic.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// isGuarded reports whether node n is dominated by a guard, where ok
// recognizes a positive guard expression and notOK its negation.
func (p *Pass) isGuarded(n ast.Node, ok, notOK func(ast.Expr) bool) bool {
	// Case 1: ancestor if with a positively-guarding condition, with n
	// inside the THEN branch.
	prev := n
	for cur := p.parents[n]; cur != nil; cur = p.parents[cur] {
		if ifs, ok2 := cur.(*ast.IfStmt); ok2 {
			if prev == ifs.Body && posContains(ifs.Cond, ok) {
				return true
			}
		}
		// Case 2: an earlier sibling early-exit in any enclosing block.
		if blk, ok2 := cur.(*ast.BlockStmt); ok2 {
			for _, st := range blk.List {
				if st == prev {
					break
				}
				ifs, ok3 := st.(*ast.IfStmt)
				if !ok3 || ifs.Else != nil {
					continue
				}
				if negContains(ifs.Cond, ok, notOK) && terminates(ifs.Body.List) {
					return true
				}
			}
		}
		prev = cur
	}
	return false
}

// nilCheckGuards builds the (ok, notOK) predicate pair recognizing
// `<expr> != nil` / `<expr> == nil` for the expression rendered as s.
func nilCheckGuards(s string) (func(ast.Expr) bool, func(ast.Expr) bool) {
	match := func(e ast.Expr, op string) bool {
		be, ok := e.(*ast.BinaryExpr)
		if !ok || be.Op.String() != op {
			return false
		}
		x, y := types.ExprString(be.X), types.ExprString(be.Y)
		return (x == s && y == "nil") || (y == s && x == "nil")
	}
	return func(e ast.Expr) bool { return match(e, "!=") },
		func(e ast.Expr) bool { return match(e, "==") }
}

// typeIsFloat reports whether t's core type is a floating-point kind.
func typeIsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// namedTypeIn reports whether t (after stripping pointers) is a named
// type with the given name declared in a package whose import path
// ends in pkgBase.
func namedTypeIn(t types.Type, name, pkgBase string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && scopeBase(obj.Pkg().Path()) == pkgBase
}

// calleeFunc resolves the called function or method object of call,
// or nil for calls through function values, builtins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// calleePkgBase returns the scope base of the called function's
// defining package ("" when unresolvable or builtin).
func calleePkgBase(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return scopeBase(fn.Pkg().Path())
}

// constString returns the compile-time string value of e, if any.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
