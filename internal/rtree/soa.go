package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"distjoin/internal/geom"
)

// NodeSoA is a struct-of-arrays decoding of one paged node: the entry
// MBRs as four parallel coordinate slices plus the refs. The plane
// sweep and the geom batch distance kernels scan these slices as
// contiguous float64 memory instead of striding over 40-byte
// NodeEntry records.
//
// All five slices share one backing allocation (coords for the four
// coordinate columns, refs for the references), sized once and reused
// across decodes, so a warm NodeSoA decodes with zero allocations.
type NodeSoA struct {
	// Level is the node's height above the leaves; 0 means leaf.
	Level int
	// MinX, MinY, MaxX, MaxY are the entry MBR coordinate columns.
	MinX, MinY, MaxX, MaxY []float64
	// Refs holds child page IDs at internal nodes and object IDs at
	// leaves, in entry order.
	Refs []uint64

	coords []float64 // single backing array for the four columns
}

// Len returns the number of entries.
func (s *NodeSoA) Len() int { return len(s.Refs) }

// IsLeaf reports whether the node is a leaf.
func (s *NodeSoA) IsLeaf() bool { return s.Level == 0 }

// Reset resizes the node to n entries with undefined contents, reusing
// the backing arrays when they are large enough (one allocation of the
// coordinate block and one of the ref block otherwise).
func (s *NodeSoA) Reset(n int) {
	if cap(s.coords) < 4*n {
		s.coords = make([]float64, 4*n)
	}
	c := s.coords[:4*n]
	s.MinX = c[0*n : 1*n : 1*n]
	s.MinY = c[1*n : 2*n : 2*n]
	s.MaxX = c[2*n : 3*n : 3*n]
	s.MaxY = c[3*n : 4*n : 4*n]
	if cap(s.Refs) < n {
		s.Refs = make([]uint64, n)
	}
	s.Refs = s.Refs[:n]
}

// SetSingle makes the node a one-entry leaf holding r with the given
// ref — the singleton list a join expansion uses for an object side.
func (s *NodeSoA) SetSingle(r geom.Rect, ref uint64) {
	s.Reset(1)
	s.Level = 0
	s.MinX[0], s.MinY[0], s.MaxX[0], s.MaxY[0] = r.MinX, r.MinY, r.MaxX, r.MaxY
	s.Refs[0] = ref
}

// Rect returns the i-th entry's MBR.
func (s *NodeSoA) Rect(i int) geom.Rect {
	return geom.Rect{MinX: s.MinX[i], MinY: s.MinY[i], MaxX: s.MaxX[i], MaxY: s.MaxY[i]}
}

// Entry returns the i-th entry in NodeEntry form.
func (s *NodeSoA) Entry(i int) NodeEntry {
	return NodeEntry{Rect: s.Rect(i), Ref: s.Refs[i]}
}

// Swap exchanges entries i and j across all columns.
func (s *NodeSoA) Swap(i, j int) {
	s.MinX[i], s.MinX[j] = s.MinX[j], s.MinX[i]
	s.MinY[i], s.MinY[j] = s.MinY[j], s.MinY[i]
	s.MaxX[i], s.MaxX[j] = s.MaxX[j], s.MaxX[i]
	s.MaxY[i], s.MaxY[j] = s.MaxY[j], s.MaxY[i]
	s.Refs[i], s.Refs[j] = s.Refs[j], s.Refs[i]
}

// Lo returns the lower-bound column for axis (0 = MinX, 1 = MinY).
func (s *NodeSoA) Lo(axis int) []float64 {
	if axis == 0 {
		return s.MinX
	}
	return s.MinY
}

// Hi returns the upper-bound column for axis (0 = MaxX, 1 = MaxY).
func (s *NodeSoA) Hi(axis int) []float64 {
	if axis == 0 {
		return s.MaxX
	}
	return s.MaxY
}

// decodeNodeSoA parses a page into dst column-wise, reusing dst's
// backing arrays. The page layout is the row-major one of decodeNode.
func decodeNodeSoA(page []byte, dst *NodeSoA) error {
	if len(page) < nodeHeaderSize {
		return fmt.Errorf("rtree: page too small: %d bytes", len(page))
	}
	level := int(binary.LittleEndian.Uint16(page[0:]))
	count := int(binary.LittleEndian.Uint16(page[2:]))
	if count > PageCapacity(len(page)) {
		return fmt.Errorf("rtree: corrupt page: count %d exceeds capacity %d",
			count, PageCapacity(len(page)))
	}
	dst.Level = level
	dst.Reset(count)
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		dst.MinX[i] = math.Float64frombits(binary.LittleEndian.Uint64(page[off:]))
		dst.MinY[i] = math.Float64frombits(binary.LittleEndian.Uint64(page[off+8:]))
		dst.MaxX[i] = math.Float64frombits(binary.LittleEndian.Uint64(page[off+16:]))
		dst.MaxY[i] = math.Float64frombits(binary.LittleEndian.Uint64(page[off+24:]))
		dst.Refs[i] = binary.LittleEndian.Uint64(page[off+32:])
		off += entrySize
	}
	return nil
}
