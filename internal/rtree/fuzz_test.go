package rtree

import (
	"testing"

	"distjoin/internal/geom"
)

// FuzzDecodeNode ensures arbitrary page bytes never panic the decoder
// and that whatever decodes successfully re-encodes.
func FuzzDecodeNode(f *testing.F) {
	page := make([]byte, 256)
	entries := []encEntry{{rect: geom.NewRect(1, 2, 3, 4), ref: 7}}
	if err := encodeNode(page, 2, entries); err != nil {
		f.Fatal(err)
	}
	f.Add(page)
	f.Add(make([]byte, 256))
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		var n Node
		if err := decodeNode(data, &n); err != nil {
			return
		}
		if len(n.Entries) > PageCapacity(len(data)) {
			t.Fatalf("decoded %d entries beyond capacity %d", len(n.Entries), PageCapacity(len(data)))
		}
		// Re-encode decoded nodes whose rects are valid.
		for _, e := range n.Entries {
			if !e.Rect.Valid() {
				return // NaN/inverted rects can round-trip bitwise but not semantically
			}
		}
		out := make([]byte, len(data))
		encs := make([]encEntry, len(n.Entries))
		for i, e := range n.Entries {
			encs[i] = encEntry{rect: e.Rect, ref: e.Ref}
		}
		if err := encodeNode(out, n.Level, encs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var again Node
		if err := decodeNode(out, &again); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Level != n.Level || len(again.Entries) != len(n.Entries) {
			t.Fatal("round trip mismatch")
		}
	})
}
