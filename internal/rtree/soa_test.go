package rtree

import (
	"math/rand"
	"testing"

	"distjoin/internal/geom"
)

// randomNodePage encodes a node with n random entries at the given
// level into a fresh page.
func randomNodePage(t *testing.T, rng *rand.Rand, pageSize, level, n int) []byte {
	t.Helper()
	page := make([]byte, pageSize)
	entries := make([]encEntry, n)
	for i := range entries {
		x, y := rng.Float64()*100, rng.Float64()*100
		entries[i] = encEntry{
			rect: geom.NewRect(x, y, x+rng.Float64()*5, y+rng.Float64()*5),
			ref:  rng.Uint64(),
		}
	}
	if err := encodeNode(page, level, entries); err != nil {
		t.Fatal(err)
	}
	return page
}

// TestDecodeNodeSoAMatchesDecodeNode pins the SoA decoder against the
// row-major reference on the same pages: level, count, every MBR, and
// every ref must agree entry-for-entry. The SoA buffer is reused
// across decodes of different sizes — growing and shrinking — because
// that is exactly how the join expander uses it.
func TestDecodeNodeSoAMatchesDecodeNode(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const pageSize = 1024
	var soa NodeSoA
	for _, n := range []int{0, 1, 3, 17, PageCapacity(pageSize), 2, 5} {
		page := randomNodePage(t, rng, pageSize, n%3, n)
		var node Node
		if err := decodeNode(page, &node); err != nil {
			t.Fatalf("n=%d: decodeNode: %v", n, err)
		}
		if err := decodeNodeSoA(page, &soa); err != nil {
			t.Fatalf("n=%d: decodeNodeSoA: %v", n, err)
		}
		if soa.Level != node.Level || soa.Len() != len(node.Entries) {
			t.Fatalf("n=%d: level/len mismatch: SoA (%d,%d) vs node (%d,%d)",
				n, soa.Level, soa.Len(), node.Level, len(node.Entries))
		}
		if soa.IsLeaf() != (node.Level == 0) {
			t.Fatalf("n=%d: IsLeaf mismatch", n)
		}
		for i, e := range node.Entries {
			if got := soa.Entry(i); got != e {
				t.Fatalf("n=%d entry %d: SoA %+v vs node %+v", n, i, got, e)
			}
			if soa.Rect(i) != e.Rect {
				t.Fatalf("n=%d entry %d: Rect mismatch", n, i)
			}
		}
	}
}

// TestDecodeNodeSoAWarmNoAllocs pins the reuse contract: once the SoA
// buffer has grown to a node's size, re-decoding allocates nothing.
func TestDecodeNodeSoAWarmNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	page := randomNodePage(t, rng, 1024, 0, 20)
	var soa NodeSoA
	if err := decodeNodeSoA(page, &soa); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := decodeNodeSoA(page, &soa); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("warm decodeNodeSoA allocates %v per call, want 0", avg)
	}
}

// TestDecodeNodeSoARejectsCorruptPages mirrors decodeNode's error
// contract on truncated and count-corrupted pages.
func TestDecodeNodeSoARejectsCorruptPages(t *testing.T) {
	var soa NodeSoA
	if err := decodeNodeSoA([]byte{1, 2}, &soa); err == nil {
		t.Error("short page decoded without error")
	}
	page := make([]byte, 256)
	page[2] = 0xff // count field far beyond capacity
	page[3] = 0xff
	if err := decodeNodeSoA(page, &soa); err == nil {
		t.Error("corrupt count decoded without error")
	}
}

// TestNodeSoASetSingleAndSwap covers the two mutators the join uses:
// the singleton object side and the sweep sorter's column-lockstep
// swap.
func TestNodeSoASetSingleAndSwap(t *testing.T) {
	var soa NodeSoA
	r := geom.NewRect(1, 2, 3, 4)
	soa.SetSingle(r, 42)
	if soa.Len() != 1 || !soa.IsLeaf() || soa.Rect(0) != r || soa.Refs[0] != 42 {
		t.Fatalf("SetSingle: %+v", soa)
	}
	soa.Reset(2)
	soa.MinX[0], soa.MinY[0], soa.MaxX[0], soa.MaxY[0], soa.Refs[0] = 1, 2, 3, 4, 10
	soa.MinX[1], soa.MinY[1], soa.MaxX[1], soa.MaxY[1], soa.Refs[1] = 5, 6, 7, 8, 11
	soa.Swap(0, 1)
	if soa.Rect(0) != geom.NewRect(5, 6, 7, 8) || soa.Refs[0] != 11 ||
		soa.Rect(1) != geom.NewRect(1, 2, 3, 4) || soa.Refs[1] != 10 {
		t.Fatalf("Swap left columns out of lockstep: %+v", soa)
	}
	if soa.Lo(0)[0] != 5 || soa.Hi(0)[0] != 7 || soa.Lo(1)[0] != 6 || soa.Hi(1)[0] != 8 {
		t.Fatalf("Lo/Hi columns wrong after swap")
	}
}
