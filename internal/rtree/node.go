// Package rtree implements the R*-tree index (Beckmann, Kriegel,
// Schneider, Seeger 1990) used as the access method in the paper's
// experiments (§5.1). It has two layers:
//
//   - Builder: an in-memory R*-tree supporting dynamic insertion with
//     forced reinsertion, R*-splits, deletion with tree condensation,
//     and STR bulk loading.
//   - Tree: a read-only paged image of a built tree, serialized onto
//     fixed-size pages (4 KB by default) and read back through a
//     storage.BufferPool so that every node access — and whether it hit
//     the buffer — is observable by the join algorithms (Table 2).
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"distjoin/internal/geom"
)

// Item is one spatial object: its MBR and an opaque object identifier.
type Item struct {
	Rect geom.Rect
	Obj  int64
}

// entry is an in-memory node slot: either a child pointer (internal
// node) or an object reference (leaf).
type entry struct {
	rect  geom.Rect
	child *node // nil at leaves
	obj   int64 // valid at leaves
}

// node is an in-memory R-tree node. level 0 is a leaf.
type node struct {
	level   int
	entries []entry
}

// mbr returns the union of all entry rectangles.
func (n *node) mbr() geom.Rect {
	if len(n.entries) == 0 {
		return geom.Rect{}
	}
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// Page layout constants. Each node occupies exactly one page:
//
//	offset 0: uint16 level        (0 = leaf)
//	offset 2: uint16 entry count
//	offset 4: uint32 reserved
//	offset 8: count * entrySize entry records:
//	          4 x float64 MBR, then uint64 ref (child page id at
//	          internal nodes, object id at leaves)
const (
	nodeHeaderSize = 8
	entrySize      = 4*8 + 8
)

// PageCapacity returns the maximum number of entries a node page of
// the given size can hold.
func PageCapacity(pageSize int) int {
	return (pageSize - nodeHeaderSize) / entrySize
}

// NodeEntry is one decoded slot of a paged node.
type NodeEntry struct {
	// Rect is the entry's MBR.
	Rect geom.Rect
	// Ref is the child page ID at internal nodes and the object ID at
	// leaves.
	Ref uint64
}

// Node is a decoded paged R-tree node.
type Node struct {
	// Level is the node's height above the leaves; 0 means leaf.
	Level int
	// Entries are the node's slots.
	Entries []NodeEntry
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// MBR returns the union of the node's entry rectangles.
func (n *Node) MBR() geom.Rect {
	if len(n.Entries) == 0 {
		return geom.Rect{}
	}
	r := n.Entries[0].Rect
	for _, e := range n.Entries[1:] {
		r = r.Union(e.Rect)
	}
	return r
}

// encodeNode serializes n into page, which must be large enough.
func encodeNode(page []byte, level int, entries []encEntry) error {
	if cap := PageCapacity(len(page)); len(entries) > cap {
		return fmt.Errorf("rtree: %d entries exceed page capacity %d", len(entries), cap)
	}
	if level < 0 || level > math.MaxUint16 {
		return fmt.Errorf("rtree: level %d out of range", level)
	}
	for i := range page {
		page[i] = 0
	}
	binary.LittleEndian.PutUint16(page[0:], uint16(level))
	binary.LittleEndian.PutUint16(page[2:], uint16(len(entries)))
	off := nodeHeaderSize
	for _, e := range entries {
		binary.LittleEndian.PutUint64(page[off:], math.Float64bits(e.rect.MinX))
		binary.LittleEndian.PutUint64(page[off+8:], math.Float64bits(e.rect.MinY))
		binary.LittleEndian.PutUint64(page[off+16:], math.Float64bits(e.rect.MaxX))
		binary.LittleEndian.PutUint64(page[off+24:], math.Float64bits(e.rect.MaxY))
		binary.LittleEndian.PutUint64(page[off+32:], e.ref)
		off += entrySize
	}
	return nil
}

// encEntry is the serialization form of an entry.
type encEntry struct {
	rect geom.Rect
	ref  uint64
}

// decodeNode parses a page into dst, reusing dst.Entries capacity.
func decodeNode(page []byte, dst *Node) error {
	if len(page) < nodeHeaderSize {
		return fmt.Errorf("rtree: page too small: %d bytes", len(page))
	}
	level := int(binary.LittleEndian.Uint16(page[0:]))
	count := int(binary.LittleEndian.Uint16(page[2:]))
	if count > PageCapacity(len(page)) {
		return fmt.Errorf("rtree: corrupt page: count %d exceeds capacity %d",
			count, PageCapacity(len(page)))
	}
	dst.Level = level
	if cap(dst.Entries) < count {
		dst.Entries = make([]NodeEntry, count)
	} else {
		dst.Entries = dst.Entries[:count]
	}
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		dst.Entries[i] = NodeEntry{
			Rect: geom.Rect{
				MinX: math.Float64frombits(binary.LittleEndian.Uint64(page[off:])),
				MinY: math.Float64frombits(binary.LittleEndian.Uint64(page[off+8:])),
				MaxX: math.Float64frombits(binary.LittleEndian.Uint64(page[off+16:])),
				MaxY: math.Float64frombits(binary.LittleEndian.Uint64(page[off+24:])),
			},
			Ref: binary.LittleEndian.Uint64(page[off+32:]),
		}
		off += entrySize
	}
	return nil
}
