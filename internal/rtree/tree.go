package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"distjoin/internal/geom"
	"distjoin/internal/metrics"
	"distjoin/internal/pqueue"
	"distjoin/internal/storage"
)

// metaMagic identifies a packed distjoin R-tree store.
const metaMagic = "DJRT0001"

// ErrNotRTree is returned when opening a store that does not contain a
// packed R-tree.
var ErrNotRTree = errors.New("rtree: store does not contain a packed R-tree")

// Tree is a read-only paged R-tree: the query-time image of a Builder,
// read through a buffer pool. All node fetches are counted against the
// supplied metrics collector, distinguishing logical accesses from
// physical (buffer-miss) reads, which is exactly the accounting of the
// paper's Table 2.
type Tree struct {
	pool     *storage.BufferPool
	cost     metrics.IOCostModel
	rootPage storage.PageID
	height   int
	size     int
	numNodes int
	bounds   geom.Rect
}

// Pack serializes the builder's current contents onto store (page 0
// becomes the metadata page) and returns a Tree reading through a
// buffer pool of bufferBytes capacity. The store must be empty.
func (b *Builder) Pack(store storage.Store, bufferBytes int) (*Tree, error) {
	if store.NumPages() != 0 {
		return nil, fmt.Errorf("rtree: Pack requires an empty store, got %d pages", store.NumPages())
	}
	pageSize := store.PageSize()
	if b.maxEntries > PageCapacity(pageSize) {
		return nil, fmt.Errorf("rtree: builder fanout %d exceeds page capacity %d",
			b.maxEntries, PageCapacity(pageSize))
	}
	metaID, err := store.Alloc()
	if err != nil {
		return nil, err
	}

	// First pass: assign page IDs in level order (root first) so
	// parents can reference children.
	ids := map[*node]storage.PageID{}
	queue := []*node{b.root}
	order := make([]*node, 0)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		id, err := store.Alloc()
		if err != nil {
			return nil, err
		}
		ids[n] = id
		order = append(order, n)
		if n.level > 0 {
			for _, e := range n.entries {
				queue = append(queue, e.child)
			}
		}
	}

	// Second pass: serialize.
	page := make([]byte, pageSize)
	for _, n := range order {
		encs := make([]encEntry, len(n.entries))
		for i, e := range n.entries {
			ref := uint64(e.obj)
			if n.level > 0 {
				ref = uint64(ids[e.child])
			}
			encs[i] = encEntry{rect: e.rect, ref: ref}
		}
		if err := encodeNode(page, n.level, encs); err != nil {
			return nil, err
		}
		if err := store.WritePage(ids[n], page); err != nil {
			return nil, err
		}
	}

	// Metadata page.
	meta := make([]byte, pageSize)
	copy(meta, metaMagic)
	binary.LittleEndian.PutUint32(meta[8:], uint32(ids[b.root]))
	binary.LittleEndian.PutUint32(meta[12:], uint32(b.height))
	binary.LittleEndian.PutUint64(meta[16:], uint64(b.size))
	binary.LittleEndian.PutUint32(meta[24:], uint32(len(order)))
	bounds := b.root.mbr()
	binary.LittleEndian.PutUint64(meta[28:], math.Float64bits(bounds.MinX))
	binary.LittleEndian.PutUint64(meta[36:], math.Float64bits(bounds.MinY))
	binary.LittleEndian.PutUint64(meta[44:], math.Float64bits(bounds.MaxX))
	binary.LittleEndian.PutUint64(meta[52:], math.Float64bits(bounds.MaxY))
	if err := store.WritePage(metaID, meta); err != nil {
		return nil, err
	}

	return &Tree{
		pool:     storage.NewBufferPool(store, bufferBytes),
		cost:     metrics.DefaultIOCostModel(),
		rootPage: ids[b.root],
		height:   b.height,
		size:     b.size,
		numNodes: len(order),
		bounds:   bounds,
	}, nil
}

// Open reads the metadata page of a previously packed store and
// returns a Tree over it with a buffer pool of bufferBytes capacity.
func Open(store storage.Store, bufferBytes int) (*Tree, error) {
	if store.NumPages() == 0 {
		return nil, ErrNotRTree
	}
	meta := make([]byte, store.PageSize())
	if err := store.ReadPage(0, meta); err != nil {
		return nil, err
	}
	if string(meta[:8]) != metaMagic {
		return nil, ErrNotRTree
	}
	t := &Tree{
		pool:     storage.NewBufferPool(store, bufferBytes),
		cost:     metrics.DefaultIOCostModel(),
		rootPage: storage.PageID(binary.LittleEndian.Uint32(meta[8:])),
		height:   int(binary.LittleEndian.Uint32(meta[12:])),
		size:     int(binary.LittleEndian.Uint64(meta[16:])),
		numNodes: int(binary.LittleEndian.Uint32(meta[24:])),
		bounds: geom.Rect{
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(meta[28:])),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(meta[36:])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(meta[44:])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(meta[52:])),
		},
	}
	return t, nil
}

// Root returns the root node's page ID.
func (t *Tree) Root() storage.PageID { return t.rootPage }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Size returns the number of stored objects.
func (t *Tree) Size() int { return t.size }

// NumNodes returns the number of tree nodes (pages).
func (t *Tree) NumNodes() int { return t.numNodes }

// Bounds returns the MBR of all stored objects.
func (t *Tree) Bounds() geom.Rect { return t.bounds }

// Pool returns the tree's buffer pool (exposed for experiment control:
// invalidating between runs, reading hit/miss statistics).
func (t *Tree) Pool() *storage.BufferPool { return t.pool }

// ResizeBuffer replaces the buffer pool with a fresh (cold) one of the
// given byte capacity. Used by the memory-sensitivity experiments
// (paper Figure 13).
func (t *Tree) ResizeBuffer(bytes int) {
	t.pool = storage.NewBufferPool(t.pool.Store(), bytes)
}

// SetIOCostModel replaces the cost model used to charge simulated I/O
// time on buffer misses.
func (t *Tree) SetIOCostModel(m metrics.IOCostModel) { t.cost = m }

// ReadNode fetches and decodes the node on page id, reusing dst. The
// access is recorded against mc (which may be nil): one logical node
// access, whether it was physical (buffer miss), and the buffer pool
// hit/miss/eviction attribution.
func (t *Tree) ReadNode(id storage.PageID, dst *Node, mc *metrics.Collector) error {
	page, acc, err := t.pool.GetAccounted(id)
	if err != nil {
		return err
	}
	mc.NodeAccess(!acc.Hit, t.cost.RandomPageCost())
	mc.BufferAccess(acc.Hit, acc.Evictions)
	return decodeNode(page, dst)
}

// ReadNodeSoA is ReadNode decoding into the struct-of-arrays layout:
// the same page fetch and metrics accounting, with the entry columns
// written into dst's reusable backing arrays.
func (t *Tree) ReadNodeSoA(id storage.PageID, dst *NodeSoA, mc *metrics.Collector) error {
	page, acc, err := t.pool.GetAccounted(id)
	if err != nil {
		return err
	}
	mc.NodeAccess(!acc.Hit, t.cost.RandomPageCost())
	mc.BufferAccess(acc.Hit, acc.Evictions)
	return decodeNodeSoA(page, dst)
}

// Search invokes fn for every object whose MBR intersects q, counting
// node accesses against mc. Returning false stops early.
func (t *Tree) Search(q geom.Rect, mc *metrics.Collector, fn func(Item) bool) error {
	_, err := t.searchPage(t.rootPage, q, mc, fn)
	return err
}

func (t *Tree) searchPage(id storage.PageID, q geom.Rect, mc *metrics.Collector, fn func(Item) bool) (bool, error) {
	var n Node
	if err := t.ReadNode(id, &n, mc); err != nil {
		return false, err
	}
	for _, e := range n.Entries {
		if !e.Rect.Intersects(q) {
			continue
		}
		if n.IsLeaf() {
			if !fn(Item{Rect: e.Rect, Obj: int64(e.Ref)}) {
				return false, nil
			}
		} else {
			cont, err := t.searchPage(storage.PageID(e.Ref), q, mc, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

// Neighbor is one result of a nearest-neighbor query.
type Neighbor struct {
	Item Item
	Dist float64
}

// NearestNeighbors returns the k objects nearest to q in nondecreasing
// distance order, using the standard best-first traversal (Hjaltason &
// Samet ranking). Included for API completeness and as a single-tree
// cross-check of the two-tree distance join machinery.
func (t *Tree) NearestNeighbors(q geom.Rect, k int, mc *metrics.Collector) ([]Neighbor, error) {
	if k <= 0 || t.size == 0 {
		return nil, nil
	}
	type qe struct {
		dist  float64
		isObj bool
		page  storage.PageID
		item  Item
	}
	h := pqueue.NewHeap(func(a, b qe) bool { return a.dist < b.dist })
	h.Push(qe{dist: 0, page: t.rootPage})
	var out []Neighbor
	var n Node
	for !h.Empty() && len(out) < k {
		top := h.Pop()
		if top.isObj {
			out = append(out, Neighbor{Item: top.item, Dist: top.dist})
			continue
		}
		if err := t.ReadNode(top.page, &n, mc); err != nil {
			return nil, err
		}
		for _, e := range n.Entries {
			d := q.MinDist(e.Rect)
			mc.AddRealDist(1)
			if n.IsLeaf() {
				h.Push(qe{dist: d, isObj: true, item: Item{Rect: e.Rect, Obj: int64(e.Ref)}})
			} else {
				h.Push(qe{dist: d, page: storage.PageID(e.Ref)})
			}
		}
	}
	return out, nil
}

// Walk visits every node top-down, invoking fn with each node's page
// ID and decoded contents. Used by tests and tooling.
func (t *Tree) Walk(fn func(id storage.PageID, n *Node) error) error {
	return t.walkPage(t.rootPage, fn)
}

func (t *Tree) walkPage(id storage.PageID, fn func(storage.PageID, *Node) error) error {
	var n Node
	if err := t.ReadNode(id, &n, nil); err != nil {
		return err
	}
	if err := fn(id, &n); err != nil {
		return err
	}
	if n.IsLeaf() {
		return nil
	}
	for _, e := range n.Entries {
		if err := t.walkPage(storage.PageID(e.Ref), fn); err != nil {
			return err
		}
	}
	return nil
}
