package rtree

import (
	"fmt"
	"math"

	"distjoin/internal/geom"
)

// SplitPolicy selects the node-split algorithm used on overflow.
// The paper's experiments use R*-trees; the classic Guttman policies
// are provided to study how index quality feeds join cost (ablation
// "ablation-split" in the experiment harness).
type SplitPolicy int

const (
	// SplitRStar is the R*-tree topological split with forced
	// reinsertion (the default, and the paper's setting).
	SplitRStar SplitPolicy = iota
	// SplitQuadratic is Guttman's quadratic split (no reinsertion).
	SplitQuadratic
	// SplitLinear is Guttman's linear split (no reinsertion).
	SplitLinear
)

// String implements fmt.Stringer.
func (p SplitPolicy) String() string {
	switch p {
	case SplitRStar:
		return "rstar"
	case SplitQuadratic:
		return "quadratic"
	case SplitLinear:
		return "linear"
	default:
		return fmt.Sprintf("SplitPolicy(%d)", int(p))
	}
}

// SetSplitPolicy selects the split algorithm for subsequent Inserts.
// Forced reinsertion is an R*-specific mechanism and is disabled under
// the Guttman policies.
func (b *Builder) SetSplitPolicy(p SplitPolicy) { b.splitPolicy = p }

// SplitPolicy returns the current split policy.
func (b *Builder) SplitPolicy() SplitPolicy { return b.splitPolicy }

// splitNodeQuadratic implements Guttman's quadratic split: pick the
// two entries wasting the most area as seeds, then assign each
// remaining entry to the group whose covering rectangle it enlarges
// least, most-constrained entries first.
//
//lint:allow floatcmp Guttman tie-break on bit-equal enlargements/areas; a missed tie only changes tree shape, never correctness
func (b *Builder) splitNodeQuadratic(n *node) *node {
	entries := n.entries
	s1, s2 := quadraticSeeds(entries)
	g1 := []entry{entries[s1]}
	g2 := []entry{entries[s2]}
	r1 := entries[s1].rect
	r2 := entries[s2].rect
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}

	for len(rest) > 0 {
		// Min-fill guarantee: if one group must absorb everything left.
		if len(g1)+len(rest) == b.minEntries {
			g1 = append(g1, rest...)
			break
		}
		if len(g2)+len(rest) == b.minEntries {
			g2 = append(g2, rest...)
			break
		}
		// Pick the entry with the greatest preference between groups.
		best, bestDiff := -1, -1.0
		for i, e := range rest {
			d1 := r1.Enlargement(e.rect)
			d2 := r2.Enlargement(e.rect)
			if diff := math.Abs(d1 - d2); diff > bestDiff {
				best, bestDiff = i, diff
			}
		}
		e := rest[best]
		rest = append(rest[:best], rest[best+1:]...)
		d1 := r1.Enlargement(e.rect)
		d2 := r2.Enlargement(e.rect)
		// Ties: smaller area, then fewer entries.
		toFirst := d1 < d2 ||
			(d1 == d2 && (r1.Area() < r2.Area() ||
				(r1.Area() == r2.Area() && len(g1) <= len(g2))))
		if toFirst {
			g1 = append(g1, e)
			r1 = r1.Union(e.rect)
		} else {
			g2 = append(g2, e)
			r2 = r2.Union(e.rect)
		}
	}
	n.entries = g1
	return &node{level: n.level, entries: g2}
}

// quadraticSeeds returns the indexes of the entry pair wasting the
// most area when covered together.
func quadraticSeeds(entries []entry) (int, int) {
	s1, s2, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].rect.Union(entries[j].rect).Area() -
				entries[i].rect.Area() - entries[j].rect.Area()
			if waste > worst {
				s1, s2, worst = i, j, waste
			}
		}
	}
	return s1, s2
}

// splitNodeLinear implements Guttman's linear split: seeds are the
// pair with the greatest normalized separation along any dimension;
// remaining entries are assigned by least enlargement.
func (b *Builder) splitNodeLinear(n *node) *node {
	entries := n.entries
	s1, s2 := linearSeeds(entries)
	g1 := []entry{entries[s1]}
	g2 := []entry{entries[s2]}
	r1 := entries[s1].rect
	r2 := entries[s2].rect
	for i, e := range entries {
		if i == s1 || i == s2 {
			continue
		}
		remaining := len(entries) - i // upper bound on what's left including e
		switch {
		case len(g1)+remaining <= b.minEntries:
			g1 = append(g1, e)
			r1 = r1.Union(e.rect)
			continue
		case len(g2)+remaining <= b.minEntries:
			g2 = append(g2, e)
			r2 = r2.Union(e.rect)
			continue
		}
		if r1.Enlargement(e.rect) <= r2.Enlargement(e.rect) {
			g1 = append(g1, e)
			r1 = r1.Union(e.rect)
		} else {
			g2 = append(g2, e)
			r2 = r2.Union(e.rect)
		}
	}
	// Post-fix the minimum fill (the greedy pass can starve a group).
	for len(g1) < b.minEntries && len(g2) > b.minEntries {
		g1 = append(g1, g2[len(g2)-1])
		g2 = g2[:len(g2)-1]
	}
	for len(g2) < b.minEntries && len(g1) > b.minEntries {
		g2 = append(g2, g1[len(g1)-1])
		g1 = g1[:len(g1)-1]
	}
	n.entries = g1
	return &node{level: n.level, entries: g2}
}

// linearSeeds returns the pair with the greatest separation normalized
// by the spread, over both dimensions.
func linearSeeds(entries []entry) (int, int) {
	bestAxis, bestNorm := 0, -1.0
	var bestLo, bestHi int
	for axis := 0; axis < geom.Dims; axis++ {
		// Entry with the highest low side and the lowest high side.
		hiLow, loHigh := 0, 0
		minLo, maxHi := math.Inf(1), math.Inf(-1)
		for i, e := range entries {
			if e.rect.Min(axis) > entries[hiLow].rect.Min(axis) {
				hiLow = i
			}
			if e.rect.Max(axis) < entries[loHigh].rect.Max(axis) {
				loHigh = i
			}
			minLo = math.Min(minLo, e.rect.Min(axis))
			maxHi = math.Max(maxHi, e.rect.Max(axis))
		}
		spread := maxHi - minLo
		if spread <= 0 {
			continue
		}
		sep := (entries[hiLow].rect.Min(axis) - entries[loHigh].rect.Max(axis)) / spread
		if sep > bestNorm {
			bestAxis, bestNorm = axis, sep
			bestLo, bestHi = loHigh, hiLow
		}
	}
	_ = bestAxis
	if bestLo == bestHi {
		// Degenerate (identical rects): any distinct pair works.
		if bestLo == 0 {
			return 0, 1
		}
		return 0, bestLo
	}
	return bestLo, bestHi
}
