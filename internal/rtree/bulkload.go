package rtree

import (
	"math"
	"sort"

	"distjoin/internal/geom"
)

// bulkFillRatio is the target node utilization for bulk loading.
// Packing nodes completely full makes every subsequent insert split, so
// STR loaders conventionally leave some slack.
const bulkFillRatio = 0.85

// BulkLoad replaces the builder's contents with a Sort-Tile-Recursive
// (STR) packing of items. STR produces near-optimal square-ish tiles
// for the large experiment datasets where one-at-a-time insertion would
// dominate setup time. The builder remains fully mutable afterwards.
func (b *Builder) BulkLoad(items []Item) {
	b.root = &node{level: 0}
	b.height = 1
	b.size = len(items)
	if len(items) == 0 {
		return
	}

	perNode := int(float64(b.maxEntries) * bulkFillRatio)
	if perNode < b.minEntries {
		perNode = b.minEntries
	}
	if perNode > b.maxEntries {
		perNode = b.maxEntries
	}

	// Level 0: tile the objects into leaves.
	leafEntries := make([]entry, len(items))
	for i, it := range items {
		leafEntries[i] = entry{rect: it.Rect, obj: it.Obj}
	}
	nodes := tile(leafEntries, perNode, 0)

	// Upper levels: tile the node MBRs until one node remains.
	level := 1
	for len(nodes) > 1 {
		parentEntries := make([]entry, len(nodes))
		for i, n := range nodes {
			parentEntries[i] = entry{rect: n.mbr(), child: n}
		}
		nodes = tile(parentEntries, perNode, level)
		level++
	}
	b.root = nodes[0]
	b.height = b.root.level + 1
}

// tile groups entries into nodes of the given level using the STR
// sweep: sort by center-x, cut into vertical slices of sqrt(n/perNode)
// runs, sort each slice by center-y, and chop into nodes.
func tile(entries []entry, perNode, level int) []*node {
	n := len(entries)
	numNodes := (n + perNode - 1) / perNode
	if numNodes == 1 {
		return []*node{{level: level, entries: entries}}
	}
	numSlices := int(math.Ceil(math.Sqrt(float64(numNodes))))
	sliceSize := numSlices * perNode

	sort.Slice(entries, func(i, j int) bool {
		return entries[i].rect.Center().X < entries[j].rect.Center().X
	})

	var out []*node
	for start := 0; start < n; start += sliceSize {
		end := start + sliceSize
		if end > n {
			end = n
		}
		slice := entries[start:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].rect.Center().Y < slice[j].rect.Center().Y
		})
		for s := 0; s < len(slice); s += perNode {
			e := s + perNode
			if e > len(slice) {
				e = len(slice)
			}
			chunk := make([]entry, e-s)
			copy(chunk, slice[s:e])
			out = append(out, &node{level: level, entries: chunk})
		}
	}
	// Guard against a trailing undersized node: merge it into its
	// predecessor when possible, or rebalance the last two nodes.
	if len(out) >= 2 {
		last := out[len(out)-1]
		min := minEntriesFor(perNode)
		if len(last.entries) < min {
			prev := out[len(out)-2]
			combined := append(prev.entries, last.entries...)
			half := len(combined) / 2
			prev.entries = combined[:half]
			last.entries = append([]entry(nil), combined[half:]...)
		}
	}
	return out
}

// minEntriesFor mirrors the builder's minimum fill for a given target
// node size.
func minEntriesFor(perNode int) int {
	m := int(float64(perNode) * defaultMinFillRatio)
	if m < 2 {
		m = 2
	}
	return m
}

// SortItemsHilbert sorts items by the Hilbert value of their center on
// a 2^order x 2^order grid over bounds. Exposed for alternative
// bulk-loading orders and for generating spatially correlated object
// IDs in the data generator.
func SortItemsHilbert(items []Item, bounds geom.Rect, order uint) {
	side := uint32(1) << order
	sx := float64(side-1) / math.Max(bounds.Side(0), 1e-300)
	sy := float64(side-1) / math.Max(bounds.Side(1), 1e-300)
	key := func(it Item) uint64 {
		c := it.Rect.Center()
		x := uint32((c.X - bounds.MinX) * sx)
		y := uint32((c.Y - bounds.MinY) * sy)
		return hilbertD(order, x, y)
	}
	sort.Slice(items, func(i, j int) bool { return key(items[i]) < key(items[j]) })
}

// hilbertD converts (x, y) on a 2^order grid to its distance along the
// Hilbert curve.
func hilbertD(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
