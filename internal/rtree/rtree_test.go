package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/metrics"
	"distjoin/internal/storage"
)

func randItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		x := rng.Float64() * 1000
		y := rng.Float64() * 1000
		w := rng.Float64() * 5
		h := rng.Float64() * 5
		items[i] = Item{Rect: geom.NewRect(x, y, x+w, y+h), Obj: int64(i)}
	}
	return items
}

func TestNewBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(3); err == nil {
		t.Fatal("maxEntries < 4 must be rejected")
	}
	b, err := NewBuilder(10)
	if err != nil {
		t.Fatal(err)
	}
	if b.MaxEntries() != 10 || b.MinEntries() != 4 {
		t.Fatalf("fanout = %d/%d, want 10/4", b.MaxEntries(), b.MinEntries())
	}
	if b.Size() != 0 || b.Height() != 1 {
		t.Fatalf("empty tree size/height = %d/%d", b.Size(), b.Height())
	}
}

func TestInsertInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b, _ := NewBuilder(8)
	items := randItems(rng, 500)
	for i, it := range items {
		b.Insert(it.Rect, it.Obj)
		if i%50 == 0 {
			if err := b.checkInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 500 {
		t.Fatalf("Size = %d, want 500", b.Size())
	}
	if b.Height() < 3 {
		t.Fatalf("500 items with fanout 8 should build height >= 3, got %d", b.Height())
	}
}

func TestInsertPanicsOnInvalidRect(t *testing.T) {
	b, _ := NewBuilder(8)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid rect must panic")
		}
	}()
	b.Insert(geom.Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}, 1)
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randItems(rng, 400)
	b, _ := NewBuilder(8)
	for _, it := range items {
		b.Insert(it.Rect, it.Obj)
	}
	for trial := 0; trial < 50; trial++ {
		q := geom.NewRect(rng.Float64()*1000, rng.Float64()*1000,
			rng.Float64()*1000, rng.Float64()*1000)
		want := map[int64]bool{}
		for _, it := range items {
			if it.Rect.Intersects(q) {
				want[it.Obj] = true
			}
		}
		got := map[int64]bool{}
		b.Search(q, func(it Item) bool {
			got[it.Obj] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for obj := range want {
			if !got[obj] {
				t.Fatalf("trial %d: missing object %d", trial, obj)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	b, _ := NewBuilder(8)
	for i := 0; i < 100; i++ {
		b.Insert(geom.NewRect(0, 0, 1, 1), int64(i))
	}
	count := 0
	b.Search(geom.NewRect(0, 0, 1, 1), func(Item) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d, want 5", count)
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, 300)
	b, _ := NewBuilder(8)
	for _, it := range items {
		b.Insert(it.Rect, it.Obj)
	}
	// Delete in random order, validating invariants along the way.
	perm := rng.Perm(len(items))
	for i, pi := range perm {
		it := items[pi]
		if !b.Delete(it.Rect, it.Obj) {
			t.Fatalf("delete %d: object %d not found", i, it.Obj)
		}
		if i%37 == 0 {
			if err := b.checkInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if b.Size() != 0 {
		t.Fatalf("Size = %d after deleting everything", b.Size())
	}
	if b.Height() != 1 {
		t.Fatalf("Height = %d after deleting everything, want 1", b.Height())
	}
	if b.Delete(items[0].Rect, items[0].Obj) {
		t.Fatal("delete on empty tree must return false")
	}
}

func TestDeleteNonexistent(t *testing.T) {
	b, _ := NewBuilder(8)
	b.Insert(geom.NewRect(0, 0, 1, 1), 1)
	if b.Delete(geom.NewRect(5, 5, 6, 6), 1) {
		t.Fatal("wrong rect must not delete")
	}
	if b.Delete(geom.NewRect(0, 0, 1, 1), 2) {
		t.Fatal("wrong obj must not delete")
	}
	if b.Size() != 1 {
		t.Fatalf("Size = %d, want 1", b.Size())
	}
}

func TestMixedInsertDeleteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b, _ := NewBuilder(6)
	live := map[int64]geom.Rect{}
	next := int64(0)
	for op := 0; op < 3000; op++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			x, y := rng.Float64()*100, rng.Float64()*100
			r := geom.NewRect(x, y, x+rng.Float64(), y+rng.Float64())
			b.Insert(r, next)
			live[next] = r
			next++
		} else {
			// Delete a random live object.
			for obj, r := range live {
				if !b.Delete(r, obj) {
					t.Fatalf("op %d: failed to delete live object %d", op, obj)
				}
				delete(live, obj)
				break
			}
		}
		if op%211 == 0 {
			if err := b.checkInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if b.Size() != len(live) {
				t.Fatalf("op %d: size %d != live %d", op, b.Size(), len(live))
			}
		}
	}
	// Everything still findable.
	found := map[int64]bool{}
	b.Search(b.Bounds(), func(it Item) bool {
		found[it.Obj] = true
		return true
	})
	if len(found) != len(live) {
		t.Fatalf("found %d, want %d", len(found), len(live))
	}
}

func TestBulkLoadInvariantsAndContent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 7, 8, 9, 100, 1000, 5000} {
		items := randItems(rng, n)
		b, _ := NewBuilder(16)
		b.BulkLoad(items)
		if err := b.checkInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if b.Size() != n {
			t.Fatalf("n=%d: Size = %d", n, b.Size())
		}
		got := b.Items()
		if len(got) != n {
			t.Fatalf("n=%d: Items returned %d", n, len(got))
		}
		objs := map[int64]bool{}
		for _, it := range got {
			objs[it.Obj] = true
		}
		if len(objs) != n {
			t.Fatalf("n=%d: duplicate or missing objects", n)
		}
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := randItems(rng, 800)
	b, _ := NewBuilder(12)
	b.BulkLoad(items)
	// Tree remains mutable after bulk load.
	b.Insert(geom.NewRect(2000, 2000, 2001, 2001), 9999)
	if !b.Delete(items[13].Rect, items[13].Obj) {
		t.Fatal("delete after bulk load failed")
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 800 {
		t.Fatalf("Size = %d, want 800", b.Size())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	page := make([]byte, 512)
	entries := []encEntry{
		{rect: geom.NewRect(1, 2, 3, 4), ref: 42},
		{rect: geom.NewRect(-5, -6, -1, -2), ref: math.MaxUint64},
		{rect: geom.NewRect(0, 0, 0, 0), ref: 0},
	}
	if err := encodeNode(page, 3, entries); err != nil {
		t.Fatal(err)
	}
	var n Node
	if err := decodeNode(page, &n); err != nil {
		t.Fatal(err)
	}
	if n.Level != 3 || len(n.Entries) != 3 {
		t.Fatalf("decoded level/count = %d/%d", n.Level, len(n.Entries))
	}
	for i, e := range entries {
		if n.Entries[i].Rect != e.rect || n.Entries[i].Ref != e.ref {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, n.Entries[i], e)
		}
	}
	if n.IsLeaf() {
		t.Fatal("level 3 node must not be leaf")
	}
}

func TestEncodeNodeOverflow(t *testing.T) {
	page := make([]byte, 128) // capacity (128-8)/40 = 3
	entries := make([]encEntry, 4)
	if err := encodeNode(page, 0, entries); err == nil {
		t.Fatal("encoding beyond capacity must fail")
	}
}

func TestDecodeCorruptPage(t *testing.T) {
	var n Node
	if err := decodeNode(make([]byte, 4), &n); err == nil {
		t.Fatal("short page must fail")
	}
	page := make([]byte, 128)
	page[2] = 200 // count 200 > capacity 3
	if err := decodeNode(page, &n); err == nil {
		t.Fatal("corrupt count must fail")
	}
}

func TestPageCapacity4K(t *testing.T) {
	// (4096-8)/40 = 102, the fanout quoted for the paper's settings.
	if got := PageCapacity(4096); got != 102 {
		t.Fatalf("PageCapacity(4096) = %d, want 102", got)
	}
}

func packTestTree(t *testing.T, items []Item, maxEntries, bufferBytes int) *Tree {
	t.Helper()
	b, err := NewBuilder(maxEntries)
	if err != nil {
		t.Fatal(err)
	}
	b.BulkLoad(items)
	store := storage.NewMemStore(4096)
	tree, err := b.Pack(store, bufferBytes)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestPackAndSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randItems(rng, 2000)
	tree := packTestTree(t, items, 64, 1<<20)
	if tree.Size() != 2000 {
		t.Fatalf("Size = %d", tree.Size())
	}
	if tree.Height() < 2 {
		t.Fatalf("Height = %d", tree.Height())
	}
	for trial := 0; trial < 30; trial++ {
		q := geom.NewRect(rng.Float64()*1000, rng.Float64()*1000,
			rng.Float64()*1000, rng.Float64()*1000)
		want := 0
		for _, it := range items {
			if it.Rect.Intersects(q) {
				want++
			}
		}
		got := 0
		if err := tree.Search(q, nil, func(Item) bool { got++; return true }); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: got %d, want %d", trial, got, want)
		}
	}
}

func TestPackRequiresEmptyStore(t *testing.T) {
	store := storage.NewMemStore(4096)
	if _, err := store.Alloc(); err != nil {
		t.Fatal(err)
	}
	b, _ := NewBuilder(8)
	if _, err := b.Pack(store, 1<<16); err == nil {
		t.Fatal("Pack on non-empty store must fail")
	}
}

func TestPackFanoutExceedsPage(t *testing.T) {
	b, _ := NewBuilder(500) // 500 > PageCapacity(4096)=102
	store := storage.NewMemStore(4096)
	if _, err := b.Pack(store, 1<<16); err == nil {
		t.Fatal("Pack with oversized fanout must fail")
	}
}

func TestOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	items := randItems(rng, 500)
	b, _ := NewBuilder(32)
	b.BulkLoad(items)
	store := storage.NewMemStore(4096)
	orig, err := b.Pack(store, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Open(store, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if re.Size() != orig.Size() || re.Height() != orig.Height() ||
		re.NumNodes() != orig.NumNodes() || re.Root() != orig.Root() ||
		re.Bounds() != orig.Bounds() {
		t.Fatalf("reopened metadata mismatch: %+v vs %+v", re, orig)
	}
	count := 0
	if err := re.Search(re.Bounds(), nil, func(Item) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 500 {
		t.Fatalf("reopened search found %d, want 500", count)
	}
}

func TestOpenRejectsNonRTree(t *testing.T) {
	store := storage.NewMemStore(4096)
	if _, err := Open(store, 1<<16); err != ErrNotRTree {
		t.Fatalf("empty store: %v", err)
	}
	if _, err := store.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(store, 1<<16); err != ErrNotRTree {
		t.Fatalf("garbage store: %v", err)
	}
}

// Lemma 1 of the paper: for every parent entry and each entry of the
// child node it references, dist(query, parent) <= dist(query, child)
// is implied by containment; verify containment structurally.
func TestLemma1Containment(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := randItems(rng, 3000)
	tree := packTestTree(t, items, 32, 1<<22)
	err := tree.Walk(func(id storage.PageID, n *Node) error {
		if n.IsLeaf() {
			return nil
		}
		var child Node
		for _, e := range n.Entries {
			if err := tree.ReadNode(storage.PageID(e.Ref), &child, nil); err != nil {
				return err
			}
			if got := child.MBR(); e.Rect != got {
				t.Fatalf("parent entry rect %v != child MBR %v", e.Rect, got)
			}
			for _, ce := range child.Entries {
				if !e.Rect.Contains(ce.Rect) {
					t.Fatalf("child entry %v escapes parent %v", ce.Rect, e.Rect)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The distance consequence, sampled: for random probes r,
	// minDist(r, parent) <= minDist(r, any child entry).
	probe := geom.NewRect(-50, -50, -40, -40)
	err = tree.Walk(func(id storage.PageID, n *Node) error {
		if n.IsLeaf() {
			return nil
		}
		var child Node
		for _, e := range n.Entries {
			pd := probe.MinDist(e.Rect)
			if err := tree.ReadNode(storage.PageID(e.Ref), &child, nil); err != nil {
				return err
			}
			for _, ce := range child.Entries {
				if cd := probe.MinDist(ce.Rect); cd < pd-1e-9 {
					t.Fatalf("Lemma 1 violated: parent %g > child %g", pd, cd)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNodeAccessCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	items := randItems(rng, 1000)
	tree := packTestTree(t, items, 16, 4096) // one-frame buffer
	mc := &metrics.Collector{}
	if err := tree.Search(tree.Bounds(), mc, func(Item) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if mc.NodeAccessesLogical == 0 {
		t.Fatal("search must record logical node accesses")
	}
	if mc.NodeAccessesLogical != int64(tree.NumNodes()) {
		t.Fatalf("full scan: logical accesses %d != nodes %d",
			mc.NodeAccessesLogical, tree.NumNodes())
	}
	if mc.NodeAccessesPhysical == 0 {
		t.Fatal("one-frame buffer must record physical misses")
	}
	if mc.ModeledIOTime == 0 {
		t.Fatal("physical reads must charge modeled I/O time")
	}

	// A large buffer, pre-warmed, yields zero physical accesses.
	tree2 := packTestTree(t, items, 16, 1<<22)
	if err := tree2.Search(tree2.Bounds(), nil, func(Item) bool { return true }); err != nil {
		t.Fatal(err)
	}
	mc2 := &metrics.Collector{}
	if err := tree2.Search(tree2.Bounds(), mc2, func(Item) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if mc2.NodeAccessesPhysical != 0 {
		t.Fatalf("warm full buffer recorded %d physical accesses", mc2.NodeAccessesPhysical)
	}
}

func TestNearestNeighborsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := randItems(rng, 700)
	tree := packTestTree(t, items, 16, 1<<22)
	for trial := 0; trial < 20; trial++ {
		q := geom.RectFromPoint(geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
		k := 1 + rng.Intn(20)
		got, err := tree.NearestNeighbors(q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = q.MinDist(it.Rect)
		}
		sort.Float64s(dists)
		if len(got) != k {
			t.Fatalf("got %d results, want %d", len(got), k)
		}
		for i := range got {
			if math.Abs(got[i].Dist-dists[i]) > 1e-9 {
				t.Fatalf("trial %d: NN %d dist %g, want %g", trial, i, got[i].Dist, dists[i])
			}
			if i > 0 && got[i].Dist < got[i-1].Dist {
				t.Fatal("NN results must be nondecreasing")
			}
		}
	}
}

func TestNearestNeighborsEdgeCases(t *testing.T) {
	tree := packTestTree(t, nil, 8, 1<<16)
	if got, err := tree.NearestNeighbors(geom.Rect{}, 5, nil); err != nil || got != nil {
		t.Fatalf("empty tree: %v, %v", got, err)
	}
	tree2 := packTestTree(t, []Item{{Rect: geom.NewRect(0, 0, 1, 1), Obj: 1}}, 8, 1<<16)
	if got, err := tree2.NearestNeighbors(geom.Rect{}, 0, nil); err != nil || got != nil {
		t.Fatalf("k=0: %v, %v", got, err)
	}
	got, err := tree2.NearestNeighbors(geom.RectFromPoint(geom.Point{X: 5, Y: 1}), 10, nil)
	if err != nil || len(got) != 1 {
		t.Fatalf("k>size: %v, %v", got, err)
	}
	if got[0].Dist != 4 {
		t.Fatalf("dist = %g, want 4", got[0].Dist)
	}
}

func TestHilbertSortLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	items := randItems(rng, 1000)
	bounds := items[0].Rect
	for _, it := range items[1:] {
		bounds = bounds.Union(it.Rect)
	}
	before := totalHopDistance(items)
	SortItemsHilbert(items, bounds, 16)
	after := totalHopDistance(items)
	if after >= before {
		t.Fatalf("hilbert sort did not improve locality: %g >= %g", after, before)
	}
}

func totalHopDistance(items []Item) float64 {
	var total float64
	for i := 1; i < len(items); i++ {
		total += items[i-1].Rect.CenterDist(items[i].Rect)
	}
	return total
}

func TestHilbertDistinctCells(t *testing.T) {
	seen := map[uint64]bool{}
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			d := hilbertD(3, x, y)
			if seen[d] {
				t.Fatalf("duplicate hilbert index %d at (%d,%d)", d, x, y)
			}
			seen[d] = true
			if d >= 64 {
				t.Fatalf("hilbert index %d out of range for order 3", d)
			}
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bl, _ := NewBuilder(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		bl.Insert(geom.NewRect(x, y, x+1, y+1), int64(i))
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := randItems(rng, 10000)
	bl, _ := NewBuilder(102)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.BulkLoad(items)
	}
}

func BenchmarkPackedSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := randItems(rng, 10000)
	bl, _ := NewBuilder(102)
	bl.BulkLoad(items)
	store := storage.NewMemStore(4096)
	tree, err := bl.Pack(store, 1<<22)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.NewRect(rng.Float64()*900, rng.Float64()*900, 0, 0)
		q.MaxX, q.MaxY = q.MinX+100, q.MinY+100
		tree.Search(q, nil, func(Item) bool { return true })
	}
}

func TestSplitPoliciesInvariantsAndSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	items := randItems(rng, 600)
	for _, p := range []SplitPolicy{SplitRStar, SplitQuadratic, SplitLinear} {
		b, _ := NewBuilder(8)
		b.SetSplitPolicy(p)
		if b.SplitPolicy() != p {
			t.Fatalf("%v: policy not set", p)
		}
		for _, it := range items {
			b.Insert(it.Rect, it.Obj)
		}
		if err := b.checkInvariants(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		// Search correctness.
		q := geom.NewRect(100, 100, 400, 400)
		want := map[int64]bool{}
		for _, it := range items {
			if it.Rect.Intersects(q) {
				want[it.Obj] = true
			}
		}
		got := 0
		b.Search(q, func(it Item) bool {
			if !want[it.Obj] {
				t.Fatalf("%v: spurious result %d", p, it.Obj)
			}
			got++
			return true
		})
		if got != len(want) {
			t.Fatalf("%v: found %d of %d", p, got, len(want))
		}
		// Deletion still works under every policy.
		for i := 0; i < 100; i++ {
			if !b.Delete(items[i].Rect, items[i].Obj) {
				t.Fatalf("%v: delete %d failed", p, i)
			}
		}
		if err := b.checkInvariants(); err != nil {
			t.Fatalf("%v after deletes: %v", p, err)
		}
	}
}

func TestSplitPolicyDegenerateIdenticalRects(t *testing.T) {
	for _, p := range []SplitPolicy{SplitQuadratic, SplitLinear} {
		b, _ := NewBuilder(4)
		b.SetSplitPolicy(p)
		for i := 0; i < 100; i++ {
			b.Insert(geom.NewRect(5, 5, 6, 6), int64(i))
		}
		if err := b.checkInvariants(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		count := 0
		b.Search(geom.NewRect(5, 5, 6, 6), func(Item) bool { count++; return true })
		if count != 100 {
			t.Fatalf("%v: found %d of 100", p, count)
		}
	}
}

// R*-splits produce measurably better trees than Guttman's linear
// split on clustered data: less total internal-node overlap.
func TestRStarBeatsLinearOnOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// Clustered items stress split quality.
	items := make([]Item, 2000)
	for i := range items {
		cx := float64(rng.Intn(5)) * 200
		cy := float64(rng.Intn(5)) * 200
		x := cx + rng.NormFloat64()*20
		y := cy + rng.NormFloat64()*20
		items[i] = Item{Rect: geom.NewRect(x, y, x+2, y+2), Obj: int64(i)}
	}
	overlap := func(p SplitPolicy) float64 {
		b, _ := NewBuilder(16)
		b.SetSplitPolicy(p)
		for _, it := range items {
			b.Insert(it.Rect, it.Obj)
		}
		return b.totalLeafOverlap()
	}
	rstar := overlap(SplitRStar)
	linear := overlap(SplitLinear)
	if rstar >= linear {
		t.Fatalf("R* leaf overlap %g not below linear %g", rstar, linear)
	}
}

func TestSplitPolicyString(t *testing.T) {
	if SplitRStar.String() != "rstar" || SplitQuadratic.String() != "quadratic" ||
		SplitLinear.String() != "linear" || SplitPolicy(9).String() == "" {
		t.Fatal("split policy names")
	}
}
