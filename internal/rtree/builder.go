package rtree

import (
	"fmt"
	"math"
	"sort"

	"distjoin/internal/geom"
)

// Default fanout parameters. With the paper's 4 KB pages each node
// holds up to 102 entries; the R*-tree paper recommends a minimum fill
// of 40% and a forced-reinsert fraction of 30%.
const (
	defaultMinFillRatio  = 0.40
	reinsertFraction     = 0.30
	minAllowedMaxEntries = 4
)

// Builder is a mutable in-memory R*-tree. Build one with NewBuilder,
// populate it with Insert or BulkLoad, then Pack it onto a page store
// for querying, or query it directly with Search for small workloads.
type Builder struct {
	maxEntries  int
	minEntries  int
	splitPolicy SplitPolicy
	root        *node
	height      int // number of levels; 1 = root is leaf
	size        int // number of objects
}

// NewBuilder returns an empty R*-tree with the given maximum node
// fanout. maxEntries must be at least 4; the minimum fill is 40% of
// the maximum (at least 2), per the R*-tree defaults.
func NewBuilder(maxEntries int) (*Builder, error) {
	if maxEntries < minAllowedMaxEntries {
		return nil, fmt.Errorf("rtree: maxEntries %d < minimum %d", maxEntries, minAllowedMaxEntries)
	}
	minEntries := int(float64(maxEntries) * defaultMinFillRatio)
	if minEntries < 2 {
		minEntries = 2
	}
	return &Builder{
		maxEntries: maxEntries,
		minEntries: minEntries,
		root:       &node{level: 0},
		height:     1,
	}, nil
}

// NewBuilderForPageSize returns a builder whose fanout matches the
// node capacity of the given page size, so the built tree packs
// one-node-per-page without overflow.
func NewBuilderForPageSize(pageSize int) (*Builder, error) {
	return NewBuilder(PageCapacity(pageSize))
}

// Size returns the number of stored objects.
func (b *Builder) Size() int { return b.size }

// Height returns the number of tree levels (1 when the root is a leaf).
func (b *Builder) Height() int { return b.height }

// MaxEntries returns the node fanout limit.
func (b *Builder) MaxEntries() int { return b.maxEntries }

// MinEntries returns the minimum node fill.
func (b *Builder) MinEntries() int { return b.minEntries }

// Bounds returns the MBR of all stored objects (zero Rect when empty).
func (b *Builder) Bounds() geom.Rect { return b.root.mbr() }

// Insert adds one object using the R*-tree insertion algorithm
// (choose-subtree, forced reinsertion, R*-split).
func (b *Builder) Insert(r geom.Rect, obj int64) {
	if !r.Valid() {
		panic(fmt.Sprintf("rtree: invalid rect %v", r))
	}
	b.insertEntry(entry{rect: r, obj: obj}, 0)
	b.size++
}

// pendingEntry is an entry detached during forced reinsertion or tree
// condensation, remembered with its target level.
type pendingEntry struct {
	e     entry
	level int
}

// insertEntry inserts e at the given level, running forced
// reinsertion at most once per level per top-level insertion.
func (b *Builder) insertEntry(e entry, level int) {
	reinserted := make([]bool, b.height)
	pending := []pendingEntry{{e: e, level: level}}
	for len(pending) > 0 {
		p := pending[0]
		pending = pending[1:]
		var newPending []pendingEntry
		split := b.insertInto(b.root, p.e, p.level, reinserted, &newPending)
		if split != nil {
			b.growRoot(split)
			// A new root level exists; extend the reinsertion marker.
			reinserted = append(reinserted, false)
		}
		pending = append(pending, newPending...)
	}
}

// growRoot replaces the root with a new node whose two children are
// the old root and its split sibling.
func (b *Builder) growRoot(split *node) {
	old := b.root
	b.root = &node{
		level: old.level + 1,
		entries: []entry{
			{rect: old.mbr(), child: old},
			{rect: split.mbr(), child: split},
		},
	}
	b.height++
}

// insertInto descends from n to the target level, appends e, and
// handles overflow. It returns a split sibling of n if n was split.
func (b *Builder) insertInto(n *node, e entry, level int, reinserted []bool, pending *[]pendingEntry) *node {
	if n.level == level {
		n.entries = append(n.entries, e)
	} else {
		idx := b.chooseSubtree(n, e.rect)
		child := n.entries[idx].child
		split := b.insertInto(child, e, level, reinserted, pending)
		n.entries[idx].rect = child.mbr()
		if split != nil {
			n.entries = append(n.entries, entry{rect: split.mbr(), child: split})
		}
	}
	if len(n.entries) <= b.maxEntries {
		return nil
	}
	return b.overflowTreatment(n, reinserted, pending)
}

// chooseSubtree picks the child of n to descend into for rect,
// following the R*-tree criteria: minimum overlap enlargement when the
// children are leaves, minimum area enlargement otherwise; ties broken
// by smaller area enlargement then smaller area.
func (b *Builder) chooseSubtree(n *node, r geom.Rect) int {
	if n.level == 1 {
		return b.chooseLeastOverlapEnlargement(n, r)
	}
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, e := range n.entries {
		enl := e.rect.Enlargement(r)
		area := e.rect.Area()
		//lint:allow floatcmp R*-tree tie-break cascade on bit-equal enlargements; a missed tie only changes tree shape, never correctness
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// chooseLeastOverlapEnlargement implements the leaf-parent criterion:
// the child whose overlap with its siblings grows least when enlarged
// to include r.
//
//lint:allow floatcmp R*-tree tie-break cascade on bit-equal enlargements; a missed tie only changes tree shape, never correctness
func (b *Builder) chooseLeastOverlapEnlargement(n *node, r geom.Rect) int {
	best := 0
	bestOverlap := math.Inf(1)
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, e := range n.entries {
		enlarged := e.rect.Union(r)
		var before, after float64
		for j, o := range n.entries {
			if i == j {
				continue
			}
			before += e.rect.OverlapArea(o.rect)
			after += enlarged.OverlapArea(o.rect)
		}
		overlapEnl := after - before
		enl := e.rect.Enlargement(r)
		area := e.rect.Area()
		if overlapEnl < bestOverlap ||
			(overlapEnl == bestOverlap && enl < bestEnl) ||
			(overlapEnl == bestOverlap && enl == bestEnl && area < bestArea) {
			best, bestOverlap, bestEnl, bestArea = i, overlapEnl, enl, area
		}
	}
	return best
}

// overflowTreatment handles a node with maxEntries+1 entries: forced
// reinsertion the first time a level overflows during one insertion
// (unless n is the root), otherwise an R*-split.
func (b *Builder) overflowTreatment(n *node, reinserted []bool, pending *[]pendingEntry) *node {
	if b.splitPolicy == SplitRStar && n != b.root &&
		n.level < len(reinserted) && !reinserted[n.level] {
		reinserted[n.level] = true
		b.forcedReinsert(n, pending)
		return nil
	}
	switch b.splitPolicy {
	case SplitQuadratic:
		return b.splitNodeQuadratic(n)
	case SplitLinear:
		return b.splitNodeLinear(n)
	default:
		return b.splitNode(n)
	}
}

// forcedReinsert detaches the reinsertFraction of n's entries whose
// centers lie farthest from n's MBR center and queues them for
// reinsertion (closest-first, the R*-tree's "close reinsert").
func (b *Builder) forcedReinsert(n *node, pending *[]pendingEntry) {
	p := int(float64(b.maxEntries) * reinsertFraction)
	if p < 1 {
		p = 1
	}
	center := n.mbr().Center()
	type distEntry struct {
		e entry
		d float64
	}
	des := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		c := e.rect.Center()
		dx, dy := c.X-center.X, c.Y-center.Y
		des[i] = distEntry{e: e, d: dx*dx + dy*dy}
	}
	sort.Slice(des, func(i, j int) bool { return des[i].d < des[j].d })
	keep := len(des) - p
	n.entries = n.entries[:0]
	for _, de := range des[:keep] {
		n.entries = append(n.entries, de.e)
	}
	// Close reinsert: nearest detached entries first.
	for _, de := range des[keep:] {
		*pending = append(*pending, pendingEntry{e: de.e, level: n.level})
	}
}

// splitNode performs the R*-tree topological split: choose the split
// axis by minimum margin sum, then the distribution by minimum overlap
// (ties by minimum combined area). n keeps the first group; the
// returned sibling holds the second.
func (b *Builder) splitNode(n *node) *node {
	axis := b.chooseSplitAxis(n.entries)
	first, second := b.chooseSplitDistribution(n.entries, axis)
	n.entries = first
	return &node{level: n.level, entries: second}
}

// sortByAxis sorts entries by (lower, upper) along axis when byLower,
// else by (upper, lower).
//
//lint:allow floatcmp coordinate tie-break on bit-equal MBR bounds keeps the R* distribution sort deterministic
func sortByAxis(entries []entry, axis int, byLower bool) {
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i].rect, entries[j].rect
		if byLower {
			if a.Min(axis) != b.Min(axis) {
				return a.Min(axis) < b.Min(axis)
			}
			return a.Max(axis) < b.Max(axis)
		}
		if a.Max(axis) != b.Max(axis) {
			return a.Max(axis) < b.Max(axis)
		}
		return a.Min(axis) < b.Min(axis)
	})
}

// distributions enumerates the R*-split candidate distributions for a
// sorted entry list: for each k in [m, M+1-m], the first k entries vs
// the rest.
func (b *Builder) distributionRange(total int) (lo, hi int) {
	return b.minEntries, total - b.minEntries
}

// chooseSplitAxis returns the axis (0 or 1) with the minimum sum of
// group margins across all candidate distributions and both sort
// orders.
func (b *Builder) chooseSplitAxis(entries []entry) int {
	bestAxis := 0
	bestMargin := math.Inf(1)
	scratch := make([]entry, len(entries))
	for axis := 0; axis < geom.Dims; axis++ {
		var marginSum float64
		for _, byLower := range []bool{true, false} {
			copy(scratch, entries)
			sortByAxis(scratch, axis, byLower)
			lo, hi := b.distributionRange(len(scratch))
			for k := lo; k <= hi; k++ {
				g1 := mbrOf(scratch[:k])
				g2 := mbrOf(scratch[k:])
				marginSum += g1.Margin() + g2.Margin()
			}
		}
		if marginSum < bestMargin {
			bestMargin = marginSum
			bestAxis = axis
		}
	}
	return bestAxis
}

// chooseSplitDistribution returns the two entry groups of the best
// distribution along axis: minimum overlap area, ties broken by
// minimum combined area. Both sort orders are considered.
func (b *Builder) chooseSplitDistribution(entries []entry, axis int) (first, second []entry) {
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	var bestSorted []entry
	bestK := -1
	for _, byLower := range []bool{true, false} {
		sorted := make([]entry, len(entries))
		copy(sorted, entries)
		sortByAxis(sorted, axis, byLower)
		lo, hi := b.distributionRange(len(sorted))
		for k := lo; k <= hi; k++ {
			g1 := mbrOf(sorted[:k])
			g2 := mbrOf(sorted[k:])
			overlap := g1.OverlapArea(g2)
			area := g1.Area() + g2.Area()
			//lint:allow floatcmp R*-tree tie-break on bit-equal overlap areas; a missed tie only changes tree shape, never correctness
			if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
				bestOverlap, bestArea = overlap, area
				bestSorted, bestK = sorted, k
			}
		}
	}
	first = append([]entry(nil), bestSorted[:bestK]...)
	second = append([]entry(nil), bestSorted[bestK:]...)
	return first, second
}

func mbrOf(entries []entry) geom.Rect {
	r := entries[0].rect
	for _, e := range entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// Delete removes one object with the given rect and id, returning
// whether it was found. Underfull nodes along the path are dissolved
// and their entries reinserted (the classic condense-tree step).
func (b *Builder) Delete(r geom.Rect, obj int64) bool {
	leaf, path := b.findLeaf(b.root, r, obj, nil)
	if leaf == nil {
		return false
	}
	for i, e := range leaf.entries {
		if e.obj == obj && e.rect == r {
			leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
			break
		}
	}
	b.size--
	b.condenseTree(leaf, path)
	return true
}

// findLeaf locates the leaf containing (r, obj) and the root-to-parent
// path to it.
func (b *Builder) findLeaf(n *node, r geom.Rect, obj int64, path []*node) (*node, []*node) {
	if n.level == 0 {
		for _, e := range n.entries {
			if e.obj == obj && e.rect == r {
				return n, path
			}
		}
		return nil, nil
	}
	for _, e := range n.entries {
		if !e.rect.Contains(r) {
			continue
		}
		if leaf, p := b.findLeaf(e.child, r, obj, append(path, n)); leaf != nil {
			return leaf, p
		}
	}
	return nil, nil
}

// condenseTree walks from a modified leaf to the root, dissolving
// underfull nodes and reinserting their orphaned entries, then shrinks
// a single-child internal root.
func (b *Builder) condenseTree(n *node, path []*node) {
	var orphans []pendingEntry
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		idx := -1
		for j, e := range parent.entries {
			if e.child == n {
				idx = j
				break
			}
		}
		if idx < 0 {
			// n was already detached (can't happen with a correct path).
			break
		}
		if len(n.entries) < b.minEntries {
			parent.entries = append(parent.entries[:idx], parent.entries[idx+1:]...)
			for _, e := range n.entries {
				orphans = append(orphans, pendingEntry{e: e, level: n.level})
			}
		} else {
			parent.entries[idx].rect = n.mbr()
		}
		n = parent
	}
	// Shrink the root while it is an internal node with one child.
	for b.root.level > 0 && len(b.root.entries) == 1 {
		b.root = b.root.entries[0].child
		b.height--
	}
	if b.root.level > 0 && len(b.root.entries) == 0 {
		// All children dissolved: reset to an empty leaf.
		b.root = &node{level: 0}
		b.height = 1
	}
	for _, o := range orphans {
		if o.level <= b.height-1 {
			b.insertEntry(o.e, o.level)
			continue
		}
		// The tree shrank below the orphan's level: a subtree entry can
		// no longer be reattached wholesale, so reinsert its objects.
		if o.e.child == nil {
			b.insertEntry(o.e, 0)
			continue
		}
		b.walk(o.e.child, func(it Item) {
			b.insertEntry(entry{rect: it.Rect, obj: it.Obj}, 0)
		})
	}
}

// Search invokes fn for every stored object whose rect intersects q.
// Returning false from fn stops the search early.
func (b *Builder) Search(q geom.Rect, fn func(Item) bool) {
	b.search(b.root, q, fn)
}

func (b *Builder) search(n *node, q geom.Rect, fn func(Item) bool) bool {
	for _, e := range n.entries {
		if !e.rect.Intersects(q) {
			continue
		}
		if n.level == 0 {
			if !fn(Item{Rect: e.rect, Obj: e.obj}) {
				return false
			}
		} else if !b.search(e.child, q, fn) {
			return false
		}
	}
	return true
}

// Items returns all stored objects in unspecified order.
func (b *Builder) Items() []Item {
	out := make([]Item, 0, b.size)
	b.walk(b.root, func(it Item) { out = append(out, it) })
	return out
}

func (b *Builder) walk(n *node, fn func(Item)) {
	for _, e := range n.entries {
		if n.level == 0 {
			fn(Item{Rect: e.rect, Obj: e.obj})
		} else {
			b.walk(e.child, fn)
		}
	}
}

// checkInvariants validates structural invariants, returning the first
// violation found. Used by tests.
func (b *Builder) checkInvariants() error {
	if b.root.level != b.height-1 {
		return fmt.Errorf("root level %d != height-1 %d", b.root.level, b.height-1)
	}
	count, err := b.check(b.root, true)
	if err != nil {
		return err
	}
	if count != b.size {
		return fmt.Errorf("leaf count %d != size %d", count, b.size)
	}
	return nil
}

func (b *Builder) check(n *node, isRoot bool) (int, error) {
	if len(n.entries) > b.maxEntries {
		return 0, fmt.Errorf("node at level %d has %d entries > max %d", n.level, len(n.entries), b.maxEntries)
	}
	if !isRoot && len(n.entries) < b.minEntries {
		return 0, fmt.Errorf("non-root node at level %d has %d entries < min %d", n.level, len(n.entries), b.minEntries)
	}
	if isRoot && n.level > 0 && len(n.entries) < 2 {
		return 0, fmt.Errorf("internal root has %d entries", len(n.entries))
	}
	if n.level == 0 {
		return len(n.entries), nil
	}
	total := 0
	for _, e := range n.entries {
		if e.child == nil {
			return 0, fmt.Errorf("internal entry with nil child at level %d", n.level)
		}
		if e.child.level != n.level-1 {
			return 0, fmt.Errorf("child level %d under node level %d", e.child.level, n.level)
		}
		if e.rect != e.child.mbr() {
			return 0, fmt.Errorf("entry rect %v != child mbr %v", e.rect, e.child.mbr())
		}
		c, err := b.check(e.child, false)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// totalLeafOverlap sums pairwise overlap areas between sibling leaf
// MBRs — a standard index-quality measure (smaller is better). Used by
// tests and the split-policy ablation.
func (b *Builder) totalLeafOverlap() float64 {
	var total float64
	var walk func(n *node)
	walk = func(n *node) {
		if n.level == 1 {
			for i := 0; i < len(n.entries); i++ {
				for j := i + 1; j < len(n.entries); j++ {
					total += n.entries[i].rect.OverlapArea(n.entries[j].rect)
				}
			}
			return
		}
		if n.level > 1 {
			for _, e := range n.entries {
				walk(e.child)
			}
		}
	}
	walk(b.root)
	return total
}

// TotalLeafOverlap exposes the index-quality measure for tooling.
func (b *Builder) TotalLeafOverlap() float64 { return b.totalLeafOverlap() }
