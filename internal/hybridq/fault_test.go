package hybridq

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"distjoin/internal/storage"
)

// faultQueue builds a queue whose memory budget forces disk traffic
// for a few hundred pairs.
func faultQueue(t *testing.T, hook func(FaultOp) error) *Queue {
	t.Helper()
	return New(Config{
		MemBytes:  8 * RecordSize,
		Store:     storage.NewMemStore(1024),
		FaultHook: hook,
	})
}

// TestFaultHookFires pins the hook contract: under a tight memory
// budget a push/pop workload crosses both transitions, the hook sees
// every spill and reload, and a nil-returning hook never perturbs the
// queue's ordering.
func TestFaultHookFires(t *testing.T) {
	var spills, reloads int
	q := faultQueue(t, func(op FaultOp) error {
		switch op {
		case FaultSpill:
			spills++
		case FaultReload:
			reloads++
		default:
			t.Fatalf("unknown op %v", op)
		}
		return nil
	})
	rng := rand.New(rand.NewSource(1))
	const n = 300
	for i := 0; i < n; i++ {
		q.Push(Pair{Dist: rng.Float64() * 1000, Left: uint64(i), LeftObj: true, RightObj: true})
	}
	if spills == 0 {
		t.Fatalf("no spills with an 8-record budget and %d pushes", n)
	}
	prev := -1.0
	for i := 0; i < n; i++ {
		p, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d: queue empty early (err=%v)", i, q.Err())
		}
		if p.Dist < prev {
			t.Fatalf("pop %d: dist %g < previous %g", i, p.Dist, prev)
		}
		prev = p.Dist
	}
	if reloads == 0 {
		t.Fatal("no reloads after draining a spilled queue")
	}
	if err := q.Err(); err != nil {
		t.Fatalf("clean run latched error: %v", err)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop beyond exhaustion succeeded")
	}
}

// TestFaultHookOpString pins the schedule-name rendering.
func TestFaultHookOpString(t *testing.T) {
	if FaultSpill.String() != "spill" || FaultReload.String() != "reload" {
		t.Fatalf("op names: %v %v", FaultSpill, FaultReload)
	}
	if FaultOp(99).String() == "" {
		t.Fatal("unknown op renders empty")
	}
}

// TestFaultHookErrorLatches drives the hook through every transition
// index in turn and proves fail-closed behavior at each: the hook's
// error latches the queue (Err reports it, wrapped), and all further
// operations are no-ops rather than panics or silent corruption.
func TestFaultHookErrorLatches(t *testing.T) {
	sentinel := errors.New("injected transition fault")
	for _, op := range []FaultOp{FaultSpill, FaultReload} {
		for point := 0; ; point++ {
			var seen int
			fired := false
			q := faultQueue(t, func(got FaultOp) error {
				if got != op {
					return nil
				}
				i := seen
				seen++
				if i == point {
					fired = true
					return fmt.Errorf("%s at %d: %w", got, i, sentinel)
				}
				return nil
			})
			rng := rand.New(rand.NewSource(7))
			const n = 200
			for i := 0; i < n; i++ {
				q.Push(Pair{Dist: rng.Float64() * 1000, Left: uint64(i), LeftObj: true, RightObj: true})
			}
			for i := 0; i < n; i++ {
				if _, ok := q.Pop(); !ok {
					break
				}
			}
			if !fired {
				if point == 0 {
					t.Fatalf("%s: workload never reached transition 0", op)
				}
				break // explored every reachable point for this op
			}
			err := q.Err()
			if !errors.Is(err, sentinel) {
				t.Fatalf("%s point %d: Err() = %v, want wrapped sentinel", op, point, err)
			}
			// Latched: every subsequent operation is a no-op.
			q.Push(Pair{Dist: 1, LeftObj: true, RightObj: true})
			if _, ok := q.Pop(); ok {
				t.Fatalf("%s point %d: Pop succeeded after latched failure", op, point)
			}
			if !errors.Is(q.Err(), sentinel) {
				t.Fatalf("%s point %d: error not sticky", op, point)
			}
		}
	}
}
