package hybridq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"distjoin/internal/geom"
	"distjoin/internal/metrics"
	"distjoin/internal/storage"
)

func TestPairEncodeDecodeRoundTrip(t *testing.T) {
	f := func(dist float64, lobj, robj bool, l, r uint64, x1, y1, x2, y2 float64) bool {
		if math.IsNaN(dist) {
			dist = 0
		}
		p := Pair{
			Dist: dist, LeftObj: lobj, RightObj: robj, Left: l, Right: r,
			LeftRect:  geom.Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2},
			RightRect: geom.Rect{MinX: y2, MinY: x2, MaxX: y1, MaxY: x1},
		}
		buf := make([]byte, RecordSize)
		p.encode(buf)
		return decodePair(buf) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPairLessOrdering(t *testing.T) {
	a := Pair{Dist: 1}
	b := Pair{Dist: 2}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("distance ordering broken")
	}
	// Expandable (node) pairs sort before result pairs at equal
	// distance, so tied emission order is insertion-independent.
	res := Pair{Dist: 1, LeftObj: true, RightObj: true}
	node := Pair{Dist: 1}
	if !node.Less(res) || res.Less(node) {
		t.Fatal("result tie-break broken")
	}
	if !res.IsResult() || node.IsResult() {
		t.Fatal("IsResult broken")
	}
	// Deterministic id tie-break.
	p1 := Pair{Dist: 1, Left: 1, Right: 5}
	p2 := Pair{Dist: 1, Left: 2, Right: 1}
	if !p1.Less(p2) || p2.Less(p1) {
		t.Fatal("id tie-break broken")
	}
	p3 := Pair{Dist: 1, Left: 1, Right: 6}
	if !p1.Less(p3) {
		t.Fatal("right-id tie-break broken")
	}
}

func pairWithDist(d float64, id uint64) Pair {
	return Pair{Dist: d, Left: id, Right: id, LeftRect: geom.NewRect(d, d, d+1, d+1)}
}

func TestPureMemoryBehavesAsHeap(t *testing.T) {
	q := New(Config{MemBytes: 1 << 20})
	dists := []float64{5, 1, 9, 3, 3, 7}
	for i, d := range dists {
		q.Push(pairWithDist(d, uint64(i)))
	}
	if q.Len() != len(dists) || q.Segments() != 0 {
		t.Fatalf("len=%d segs=%d", q.Len(), q.Segments())
	}
	sort.Float64s(dists)
	for i, want := range dists {
		p, ok := q.Pop()
		if !ok || p.Dist != want {
			t.Fatalf("pop %d: %g,%v want %g", i, p.Dist, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue must fail")
	}
}

func TestSpillAndSwapIn(t *testing.T) {
	// Tiny memory: 4 pairs. Force segment traffic.
	mc := &metrics.Collector{}
	q := New(Config{
		MemBytes: 4 * RecordSize,
		Metrics:  mc,
		IOCost:   metrics.DefaultIOCostModel(),
	})
	rng := rand.New(rand.NewSource(3))
	const n = 500
	var dists []float64
	for i := 0; i < n; i++ {
		d := rng.Float64() * 100
		dists = append(dists, d)
		q.Push(pairWithDist(d, uint64(i)))
	}
	if q.Segments() == 0 {
		t.Fatal("tiny memory must have spilled segments")
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	sort.Float64s(dists)
	for i, want := range dists {
		p, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d failed: %v", i, q.Err())
		}
		if p.Dist != want {
			t.Fatalf("pop %d: dist %g, want %g", i, p.Dist, want)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
	if mc.QueuePageWrites == 0 || mc.QueuePageReads == 0 {
		t.Fatalf("expected queue I/O, got r=%d w=%d", mc.QueuePageReads, mc.QueuePageWrites)
	}
	if mc.ModeledIOTime == 0 {
		t.Fatal("queue I/O must charge modeled time")
	}
	if err := q.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestModelBoundariesRouteDirectly(t *testing.T) {
	// With rho set, a pair far beyond the first boundary must go to a
	// segment without entering the heap.
	memBytes := 10 * RecordSize
	rho := 1.0 // capacity 10 -> first boundary sqrt(10*1) ~ 3.16
	q := New(Config{MemBytes: memBytes, Rho: rho})
	q.Push(pairWithDist(100, 1)) // way beyond boundary
	if q.MemLen() != 0 {
		t.Fatalf("distant pair entered heap (mem=%d)", q.MemLen())
	}
	if q.Segments() != 1 {
		t.Fatalf("segments = %d, want 1", q.Segments())
	}
	q.Push(pairWithDist(1, 2)) // below boundary
	if q.MemLen() != 1 {
		t.Fatalf("near pair should enter heap (mem=%d)", q.MemLen())
	}
	// Pop order still global.
	p, _ := q.Pop()
	if p.Dist != 1 {
		t.Fatalf("first pop %g, want 1", p.Dist)
	}
	p, _ = q.Pop()
	if p.Dist != 100 {
		t.Fatalf("second pop %g, want 100", p.Dist)
	}
}

// Property: for any interleaving of pushes and pops, the hybrid queue
// returns exactly what a reference in-memory priority queue returns.
func TestEquivalenceWithReferenceHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, cfg := range []Config{
		{MemBytes: 2 * RecordSize},
		{MemBytes: 7 * RecordSize, Rho: 0.5},
		{MemBytes: 64 * RecordSize, Rho: 0.001},
		{MemBytes: 1 << 20},
	} {
		q := New(cfg)
		var ref []float64
		id := uint64(0)
		for op := 0; op < 4000; op++ {
			if rng.Intn(3) != 0 || len(ref) == 0 {
				d := rng.Float64() * 1000
				if rng.Intn(10) == 0 {
					d = float64(rng.Intn(5)) // force ties
				}
				q.Push(pairWithDist(d, id))
				id++
				ref = append(ref, d)
				sort.Float64s(ref)
			} else {
				p, ok := q.Pop()
				if !ok {
					t.Fatalf("cfg %+v op %d: pop failed: %v", cfg, op, q.Err())
				}
				if p.Dist != ref[0] {
					t.Fatalf("cfg %+v op %d: pop %g, want %g", cfg, op, p.Dist, ref[0])
				}
				ref = ref[1:]
			}
			if q.Len() != len(ref) {
				t.Fatalf("cfg %+v op %d: len %d, want %d", cfg, op, q.Len(), len(ref))
			}
		}
		if err := q.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: pop sequence is nondecreasing and preserves payloads.
func TestPopPayloadIntegrity(t *testing.T) {
	q := New(Config{MemBytes: 3 * RecordSize, Rho: 0.01})
	rng := rand.New(rand.NewSource(13))
	want := map[uint64]Pair{}
	for i := 0; i < 300; i++ {
		p := Pair{
			Dist:      rng.Float64() * 50,
			Left:      uint64(i),
			Right:     uint64(i * 7),
			LeftObj:   i%2 == 0,
			RightObj:  i%3 == 0,
			LeftRect:  geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()),
			RightRect: geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()),
		}
		want[p.Left] = p
		q.Push(p)
	}
	prev := math.Inf(-1)
	for i := 0; i < 300; i++ {
		p, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if p.Dist < prev {
			t.Fatalf("pop %d: %g < previous %g", i, p.Dist, prev)
		}
		prev = p.Dist
		if want[p.Left] != p {
			t.Fatalf("payload corrupted: got %+v want %+v", p, want[p.Left])
		}
	}
}

func TestPeek(t *testing.T) {
	q := New(Config{MemBytes: 2 * RecordSize})
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty must fail")
	}
	for _, d := range []float64{9, 2, 5, 1, 8, 3} {
		q.Push(pairWithDist(d, uint64(d)))
	}
	p, ok := q.Peek()
	if !ok || p.Dist != 1 {
		t.Fatalf("peek = %g,%v", p.Dist, ok)
	}
	if q.Len() != 6 {
		t.Fatal("peek must not consume")
	}
}

func TestDrain(t *testing.T) {
	q := New(Config{MemBytes: 2 * RecordSize})
	for i := 0; i < 100; i++ {
		q.Push(pairWithDist(float64(i), uint64(i)))
	}
	q.Drain()
	if !q.Empty() || q.Len() != 0 || q.Segments() != 0 {
		t.Fatal("drain must empty the queue")
	}
	// Queue is reusable after Drain and reuses freed pages.
	for i := 0; i < 100; i++ {
		q.Push(pairWithDist(float64(i), uint64(i)))
	}
	for i := 0; i < 100; i++ {
		p, ok := q.Pop()
		if !ok || p.Dist != float64(i) {
			t.Fatalf("after drain: pop %d = %g,%v", i, p.Dist, ok)
		}
	}
}

func TestAllEqualDistances(t *testing.T) {
	q := New(Config{MemBytes: 2 * RecordSize})
	for i := 0; i < 50; i++ {
		q.Push(pairWithDist(7, uint64(i)))
	}
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		p, ok := q.Pop()
		if !ok || p.Dist != 7 {
			t.Fatalf("pop %d: %v %v (err=%v)", i, p, ok, q.Err())
		}
		if seen[p.Left] {
			t.Fatalf("duplicate pair %d", p.Left)
		}
		seen[p.Left] = true
	}
	if !q.Empty() {
		t.Fatal("not empty")
	}
}

func TestErrLatching(t *testing.T) {
	st := storage.NewMemStore(storage.DefaultPageSize)
	q := New(Config{MemBytes: 2 * RecordSize, Store: st})
	for i := 0; i < 10; i++ {
		q.Push(pairWithDist(float64(i), uint64(i)))
	}
	st.Close() // force storage failures
	for i := 0; i < 500; i++ {
		q.Push(pairWithDist(float64(i), uint64(i)))
	}
	if q.Err() == nil {
		t.Skip("no spill happened before close; nothing to latch")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop must fail after latched error")
	}
}

func TestString(t *testing.T) {
	q := New(Config{MemBytes: RecordSize})
	if q.String() == "" {
		t.Fatal("String must be non-empty")
	}
}

func BenchmarkHybridQueuePushPop(b *testing.B) {
	q := New(Config{MemBytes: 64 << 10, Rho: 1e-6})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(pairWithDist(rng.Float64()*100, uint64(i)))
		if q.Len() > 4096 {
			q.Pop()
		}
	}
}

func TestModelSegmentCountBounded(t *testing.T) {
	// A tiny heap with a tiny rho spreads distances across a huge
	// number of model boundaries; the segment count must stay capped
	// (each segment holds a page buffer).
	q := New(Config{MemBytes: 2 * RecordSize, Rho: 1e-6})
	rng := rand.New(rand.NewSource(55))
	const n = 5000
	var dists []float64
	for i := 0; i < n; i++ {
		d := rng.Float64() * 1e6
		dists = append(dists, d)
		q.Push(pairWithDist(d, uint64(i)))
	}
	if q.Segments() > 80 { // cap plus a few overflow-split segments
		t.Fatalf("segment count %d exceeds cap", q.Segments())
	}
	sort.Float64s(dists)
	for i, want := range dists {
		p, ok := q.Pop()
		if !ok || p.Dist != want {
			t.Fatalf("pop %d: %g,%v want %g (err=%v)", i, p.Dist, ok, want, q.Err())
		}
	}
}
