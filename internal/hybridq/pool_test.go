package hybridq

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// pushPopCycle pushes n pairs with the given distance permutation and
// pops them all back, returning the popped distances.
func pushPopCycle(q *Queue, dists []float64, out []float64) []float64 {
	for i, d := range dists {
		q.Push(pairWithDist(d, uint64(i)))
	}
	out = out[:0]
	for {
		p, ok := q.Pop()
		if !ok {
			break
		}
		out = append(out, p.Dist)
	}
	return out
}

// TestSteadyStatePushPopNoAllocs pins the pure in-memory hot path:
// once the heap has reached its working capacity, Push and Pop of
// pair records allocate nothing.
func TestSteadyStatePushPopNoAllocs(t *testing.T) {
	q := New(Config{MemBytes: 1 << 20})
	// Warm the heap's backing array to its working size.
	for i := 0; i < 256; i++ {
		q.Push(pairWithDist(float64(i%37), uint64(i)))
	}
	for {
		if _, ok := q.Pop(); !ok {
			break
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			q.Push(pairWithDist(float64(i%7), uint64(i)))
		}
		for i := 0; i < 64; i++ {
			q.Pop()
		}
	}); avg != 0 {
		t.Errorf("in-memory push/pop allocates %v per 128-op cycle, want 0", avg)
	}
}

// TestSpillReloadSteadyStateAllocs pins the pooled disk path: after a
// warm-up cycle has populated the pair-slab and page-buffer pools,
// a full spill/reload cycle must not allocate per pair — only small
// per-event bookkeeping (segment headers, sort boxing) remains, far
// under one allocation per ten pairs. Before pooling this cycle
// allocated a fresh slab per heap split and a fresh page buffer per
// segment and reload, several allocations — and kilobytes — per
// spill event.
func TestSpillReloadSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomizes reuse under the race detector; allocation counts are not meaningful")
	}
	const n = 2000
	// ~48 pairs of heap budget: the cycle is forced through many
	// splits and reloads.
	q := New(Config{MemBytes: 48 * RecordSize})
	rng := rand.New(rand.NewSource(42))
	dists := make([]float64, n)
	for i := range dists {
		dists[i] = rng.Float64() * 1000
	}
	var out []float64
	out = pushPopCycle(q, dists, out) // warm-up: populate pools
	if len(out) != n {
		t.Fatalf("warm-up cycle returned %d pairs, want %d", len(out), n)
	}
	avg := testing.AllocsPerRun(5, func() {
		out = pushPopCycle(q, dists, out)
		if len(out) != n {
			t.Fatalf("cycle returned %d pairs, want %d", len(out), n)
		}
	})
	if perPair := avg / n; perPair > 0.1 {
		t.Errorf("spill/reload cycle allocates %v per cycle = %v per pair, want < 0.1", avg, perPair)
	}
	if err := q.Err(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkHybridQueueSpillReload measures the pooled disk path: a
// tiny memory budget forces every push/pop cycle through heap splits,
// segment spills, and swap-ins, so the pair-slab, page-buffer, and
// segment pools dominate the allocation profile. Run with -benchmem;
// before pooling this cycle allocated a fresh slab per split and a
// fresh page buffer per segment and reload.
func BenchmarkHybridQueueSpillReload(b *testing.B) {
	const n = 2000
	q := New(Config{MemBytes: 48 * RecordSize})
	rng := rand.New(rand.NewSource(7))
	dists := make([]float64, n)
	for i := range dists {
		dists[i] = rng.Float64() * 1000
	}
	var out []float64
	out = pushPopCycle(q, dists, out) // warm the pools
	if len(out) != n {
		b.Fatalf("warm-up popped %d pairs, want %d", len(out), n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = pushPopCycle(q, dists, out)
		if len(out) != n {
			b.Fatalf("cycle popped %d pairs, want %d", len(out), n)
		}
	}
	if err := q.Err(); err != nil {
		b.Fatal(err)
	}
}

// TestPoolReuseStress proves no pair record or page buffer is read
// after its return to the shared pools: several goroutines run
// private queues through constant spill/reload cycles, so slabs and
// buffers migrate between goroutines continuously. Any read of a
// pooled object after put is a data race with the next owner's writes
// — the race detector (make race) turns it into a hard failure — and
// any cross-queue corruption shows up as a wrong pop sequence.
func TestPoolReuseStress(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const n = 1500
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct memory budgets: pooled page buffers cross between
			// queues of different fill patterns.
			q := New(Config{MemBytes: (32 + 8*w) * RecordSize})
			rng := rand.New(rand.NewSource(int64(w)))
			dists := make([]float64, n)
			for i := range dists {
				dists[i] = rng.Float64() * 100
			}
			want := append([]float64(nil), dists...)
			sort.Float64s(want)
			var out []float64
			for round := 0; round < 3; round++ {
				out = pushPopCycle(q, dists, out)
				if err := q.Err(); err != nil {
					errs <- err
					return
				}
				if len(out) != n {
					t.Errorf("worker %d round %d: popped %d pairs, want %d", w, round, len(out), n)
					return
				}
				for i := range out {
					if out[i] != want[i] {
						t.Errorf("worker %d round %d: pop %d = %g, want %g (pooled record corrupted)",
							w, round, i, out[i], want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
