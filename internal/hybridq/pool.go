package hybridq

import "sync"

// Scratch pooling for the queue's disk path. A heap split copies the
// whole heap into a []Pair slab to sort it, and a segment swap-in
// decodes every spilled record into one; both also need page-size
// byte buffers (segment write buffers, the reload read page). Without
// reuse each spill/reload event allocates the slab and the buffers
// afresh — on reload-heavy runs (HS-IDJ drains and refills the heap
// constantly) that is the dominant allocation source of the whole
// join. The pools below make the steady state allocation-free: slabs
// and buffers cycle between concurrently running queues via
// sync.Pool.
//
// Ownership rule: a pooled object is owned by exactly one queue
// operation between get and put, under that queue's lock (or its
// single goroutine). Every Pair read out of a slab is copied by value
// into the heap or encoded into a segment buffer before the slab is
// returned, so nothing reads a pooled object after its put — the
// -race stress test in pool_test.go pins this.

// pairBuf is a reusable []Pair slab. Callers hold the *pairBuf handle
// for the duration of the operation and put it back when every pair
// has been copied out.
type pairBuf struct{ items []Pair }

var pairBufPool = sync.Pool{New: func() any { return new(pairBuf) }}

// getPairBuf returns a slab with len 0 and capacity at least capHint.
func getPairBuf(capHint int) *pairBuf {
	b := pairBufPool.Get().(*pairBuf)
	if cap(b.items) < capHint {
		b.items = make([]Pair, 0, capHint)
	}
	b.items = b.items[:0]
	return b
}

// putPairBuf recycles the slab. The caller must not touch b.items
// afterwards.
func putPairBuf(b *pairBuf) { pairBufPool.Put(b) }

// Page buffers are pooled as plain []byte. To keep the put side
// allocation-free the slice headers travel in dedicated holder
// objects: pagePool holds full buffers, pageHolderPool recycles the
// emptied holders for the next put.
var (
	pagePool       sync.Pool // *[]byte with a buffer attached
	pageHolderPool sync.Pool // *[]byte with nil contents
)

// getPageBuf returns a zeroed-length-irrelevant buffer of exactly
// size bytes. A pooled buffer of a different page size (stores can be
// configured independently) is dropped and a fresh one allocated.
func getPageBuf(size int) []byte {
	if h, _ := pagePool.Get().(*[]byte); h != nil {
		b := *h
		*h = nil
		pageHolderPool.Put(h)
		if cap(b) >= size {
			return b[:size]
		}
	}
	return make([]byte, size)
}

// putPageBuf recycles a buffer obtained from getPageBuf. nil is a
// no-op, so callers can retire segment buffers unconditionally.
func putPageBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	h, _ := pageHolderPool.Get().(*[]byte)
	if h == nil {
		h = new([]byte)
	}
	*h = b
	pagePool.Put(h)
}

// Segments recycle whole — header, page-ID list, and write buffer
// together — so a steady spill/reload rhythm allocates no segment
// state at all. The buffer stays attached across recycles; a queue
// whose store uses a larger page size than the pooled segment's
// buffer gets a fresh buffer on get.
var segPool = sync.Pool{New: func() any { return new(segment) }}

// getSegment returns an empty segment covering [lo, hi) with a
// pageSize write buffer.
func getSegment(lo, hi float64, pageSize int) *segment {
	s := segPool.Get().(*segment)
	if cap(s.buf) < pageSize {
		s.buf = make([]byte, pageSize)
	}
	s.buf = s.buf[:pageSize]
	s.lo, s.hi = lo, hi
	s.pages = s.pages[:0]
	s.bufCount = 0
	s.count = 0
	return s
}

// putSegment recycles a consumed segment. The caller must copy out
// any field it still needs (bounds, page IDs) before the put.
func putSegment(s *segment) { segPool.Put(s) }

// byPairOrder sorts a slab by Pair.Less without the per-call closure
// allocation of sort.Slice. Both stdlib entry points instantiate the
// same pdqsort, so the permutation (ties included) is identical to
// the sort.Slice call it replaced.
type byPairOrder []Pair

func (s byPairOrder) Len() int           { return len(s) }
func (s byPairOrder) Less(i, j int) bool { return s[i].Less(s[j]) }
func (s byPairOrder) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
