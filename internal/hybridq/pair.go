// Package hybridq implements the hybrid memory/disk priority queue of
// paper §4.4 used as the main queue of every distance join algorithm.
// The queue keeps a bounded min-heap of the shortest-distance pairs in
// memory and spills longer-distance pairs to unsorted on-disk segment
// piles whose boundaries come from the uniform density model of §4.3
// (boundary i at sqrt(i*n*rho) for an n-element memory heap). When the
// heap drains, the lowest segment is swapped back in; when it
// overflows, it splits and the long half is spilled.
package hybridq

import (
	"encoding/binary"
	"math"

	"distjoin/internal/geom"
)

// Pair is one main-queue element: a pair of R-tree nodes and/or
// objects with their minimum distance. Left and Right carry a page ID
// for node sides and an object ID for object sides.
type Pair struct {
	// Dist is the (minimum MBR) distance between the two sides.
	Dist float64
	// LeftObj / RightObj report whether each side is an object rather
	// than an R-tree node.
	LeftObj, RightObj bool
	// Left and Right identify each side: page ID for nodes, object ID
	// for objects.
	Left, Right uint64
	// LeftRect and RightRect are the sides' MBRs.
	LeftRect, RightRect geom.Rect
	// Refined marks an <object,object> pair whose Dist has been
	// replaced by the exact geometry distance by a refiner (see
	// join.Options.Refiner). Unrefined object pairs carry the MBR
	// lower-bound distance.
	Refined bool
}

// IsResult reports whether the pair is an <object, object> pair, i.e.
// a producible query result.
func (p Pair) IsResult() bool { return p.LeftObj && p.RightObj }

// Less orders pairs by distance with a deterministic tie-break:
// expandable (non-result) pairs before results, then by identifiers.
//
// Draining expandable pairs first at a tied distance makes the
// emission order among ties canonical: a result at distance d can
// reach the queue head only after every node pair with distance <= d
// has been expanded — at which point every distance-d result that will
// ever exist is already queued, and they pop in identifier order. The
// order is therefore a pure function of the data, independent of
// insertion timing, which is what lets the parallel join engine emit
// byte-identical results to the serial algorithms. (The cost: at a
// heavily tied distance — typically 0, overlapping MBRs — all tied
// node pairs are expanded before the first tied result is emitted.)
//
//lint:allow floatcmp bit-exact distance tie-break IS the determinism contract the parallel engine relies on
func (p Pair) Less(o Pair) bool {
	if p.Dist != o.Dist {
		return p.Dist < o.Dist
	}
	pr, or := p.IsResult(), o.IsResult()
	if pr != or {
		return or
	}
	if p.Left != o.Left {
		return p.Left < o.Left
	}
	return p.Right < o.Right
}

// RecordSize is the fixed on-disk encoding size of a Pair.
const RecordSize = 8 + 8 + 8 + 8 + 8*8 // dist, flags, left, right, two rects

const (
	flagLeftObj  = 1 << 0
	flagRightObj = 1 << 1
	flagRefined  = 1 << 2
)

// Encode serializes p into buf (at least RecordSize bytes).
func (p Pair) Encode(buf []byte) { p.encode(buf) }

// DecodePair parses a Pair previously written by Encode.
func DecodePair(buf []byte) Pair { return decodePair(buf) }

// encode serializes p into buf (at least RecordSize bytes).
func (p Pair) encode(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(p.Dist))
	var flags uint64
	if p.LeftObj {
		flags |= flagLeftObj
	}
	if p.RightObj {
		flags |= flagRightObj
	}
	if p.Refined {
		flags |= flagRefined
	}
	binary.LittleEndian.PutUint64(buf[8:], flags)
	binary.LittleEndian.PutUint64(buf[16:], p.Left)
	binary.LittleEndian.PutUint64(buf[24:], p.Right)
	putRect(buf[32:], p.LeftRect)
	putRect(buf[64:], p.RightRect)
}

// decodePair parses a Pair from buf.
func decodePair(buf []byte) Pair {
	flags := binary.LittleEndian.Uint64(buf[8:])
	return Pair{
		Dist:      math.Float64frombits(binary.LittleEndian.Uint64(buf[0:])),
		LeftObj:   flags&flagLeftObj != 0,
		RightObj:  flags&flagRightObj != 0,
		Refined:   flags&flagRefined != 0,
		Left:      binary.LittleEndian.Uint64(buf[16:]),
		Right:     binary.LittleEndian.Uint64(buf[24:]),
		LeftRect:  getRect(buf[32:]),
		RightRect: getRect(buf[64:]),
	}
}

func putRect(buf []byte, r geom.Rect) {
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(r.MinX))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(r.MinY))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(r.MaxX))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(r.MaxY))
}

func getRect(buf []byte) geom.Rect {
	return geom.Rect{
		MinX: math.Float64frombits(binary.LittleEndian.Uint64(buf[0:])),
		MinY: math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
		MaxX: math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
		MaxY: math.Float64frombits(binary.LittleEndian.Uint64(buf[24:])),
	}
}
