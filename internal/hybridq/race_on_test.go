//go:build race

package hybridq

// raceEnabled reports whether the race detector is active. The race
// detector makes sync.Pool deliberately drop and randomize reuse to
// surface use-after-put bugs, so allocation-count assertions that
// depend on pool hits are skipped under -race.
const raceEnabled = true
