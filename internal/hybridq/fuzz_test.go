package hybridq

import (
	"math"
	"testing"
)

// FuzzPairRoundTrip checks the fixed-size pair codec over arbitrary
// field values.
func FuzzPairRoundTrip(f *testing.F) {
	f.Add(1.5, true, false, true, uint64(3), uint64(9), 0.0, 1.0, 2.0, 3.0)
	f.Add(math.Inf(1), false, false, false, uint64(0), uint64(0), -1.0, -2.0, 5.5, 9.75)
	f.Fuzz(func(t *testing.T, dist float64, lobj, robj, refined bool,
		l, r uint64, x1, y1, x2, y2 float64) {
		p := Pair{
			Dist: dist, LeftObj: lobj, RightObj: robj, Refined: refined,
			Left: l, Right: r,
		}
		p.LeftRect.MinX, p.LeftRect.MinY, p.LeftRect.MaxX, p.LeftRect.MaxY = x1, y1, x2, y2
		p.RightRect.MinX, p.RightRect.MinY, p.RightRect.MaxX, p.RightRect.MaxY = y2, x2, y1, x1
		buf := make([]byte, RecordSize)
		p.Encode(buf)
		got := DecodePair(buf)
		// NaN fields break == comparison; compare bit patterns.
		if !pairBitsEqual(p, got) {
			t.Fatalf("round trip mismatch: %+v vs %+v", p, got)
		}
	})
}

func pairBitsEqual(a, b Pair) bool {
	eq := func(x, y float64) bool {
		return math.Float64bits(x) == math.Float64bits(y)
	}
	return eq(a.Dist, b.Dist) && a.LeftObj == b.LeftObj && a.RightObj == b.RightObj &&
		a.Refined == b.Refined && a.Left == b.Left && a.Right == b.Right &&
		eq(a.LeftRect.MinX, b.LeftRect.MinX) && eq(a.LeftRect.MinY, b.LeftRect.MinY) &&
		eq(a.LeftRect.MaxX, b.LeftRect.MaxX) && eq(a.LeftRect.MaxY, b.LeftRect.MaxY) &&
		eq(a.RightRect.MinX, b.RightRect.MinX) && eq(a.RightRect.MinY, b.RightRect.MinY) &&
		eq(a.RightRect.MaxX, b.RightRect.MaxX) && eq(a.RightRect.MaxY, b.RightRect.MaxY)
}
