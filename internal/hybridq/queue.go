package hybridq

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"distjoin/internal/metrics"
	"distjoin/internal/pqueue"
	"distjoin/internal/storage"
	"distjoin/internal/trace"
)

// Queue is the hybrid memory/disk main queue. It behaves as a strict
// priority queue over Pairs (Pop always returns the global minimum by
// Pair.Less) while bounding memory to the configured budget.
//
// Storage errors are latched: after the first error every operation
// becomes a no-op and Err reports the cause. The join algorithms check
// Err once at the end of a run.
type Queue struct {
	heap     *pqueue.Heap[Pair]
	capacity int     // max heap elements (n of §4.4)
	memBound float64 // exclusive upper bound of the in-memory range
	rho      float64 // density factor for model boundaries, 0 disables
	segs     []*segment
	store    storage.Store
	free     []storage.PageID
	perPage  int
	mc       *metrics.Collector
	ioCost   metrics.IOCostModel
	tr       *trace.Tracer
	fault    func(op FaultOp) error
	err      error
	// splitFloor suppresses pointless re-splits: when a split finds the
	// whole heap sharing one distance (nothing spillable without
	// straddling a tie run across the memory/disk boundary), it records
	// the heap length here, and Push retries a split only once the heap
	// grows past it with a spillable (longer-distance) element possible.
	splitFloor int
	// mu serializes the public operations when the queue was built with
	// Config.Concurrent. The parallel join engine touches the main queue
	// only from its coordinating goroutine between worker barriers, so
	// the lock is defense-in-depth rather than a hot-path cost; it makes
	// the queue safe under -race for any future caller that does share
	// it across goroutines. Nil when the queue is single-goroutine.
	mu *sync.Mutex
}

// FaultOp identifies one injectable disk-path operation of the queue,
// used by failure-injection tests (join fault tests, internal/simtest)
// to enumerate and fail every spill/reload point deterministically.
type FaultOp int

const (
	// FaultSpill fires when a heap split actually moves pairs to a
	// disk segment (splitHeap with a non-empty spilled tail).
	FaultSpill FaultOp = iota
	// FaultReload fires when a drained heap swaps a disk segment back
	// in (swapIn with at least one segment available).
	FaultReload
)

// String names the operation for schedule printing ("spill"/"reload").
func (op FaultOp) String() string {
	switch op {
	case FaultSpill:
		return "spill"
	case FaultReload:
		return "reload"
	default:
		return "unknown"
	}
}

// segment is one on-disk unsorted pile covering the distance range
// [lo, hi).
type segment struct {
	lo, hi   float64
	pages    []storage.PageID
	buf      []byte // partial trailing page
	bufCount int
	count    int
}

// Config parameterizes a Queue.
type Config struct {
	// MemBytes is the memory budget for the in-memory heap (§5's
	// "size of in-memory portion of a main queue"). Minimum one pair.
	MemBytes int
	// Rho is the density factor from estimate.Model.Rho used to place
	// model-based segment boundaries. Zero disables model boundaries:
	// the queue then relies purely on overflow splits.
	Rho float64
	// Store holds spilled segments; nil allocates a private MemStore
	// with the default page size.
	Store storage.Store
	// Metrics receives queue page I/O accounting (may be nil).
	Metrics *metrics.Collector
	// IOCost charges simulated time per spilled page; zero value
	// charges nothing.
	IOCost metrics.IOCostModel
	// Concurrent guards the queue with an internal mutex so its public
	// operations are safe to call from multiple goroutines. The serial
	// join algorithms leave it unset and pay nothing.
	Concurrent bool
	// Trace, when non-nil, receives queue_spill / queue_reload events
	// with the memory-vs-disk segment depth at each heap split and
	// segment swap-in. Nil costs nothing.
	Trace *trace.Tracer
	// FaultHook, when non-nil, is invoked at the start of every
	// spill (heap split moving pairs to disk) and reload (segment
	// swap-in). Returning a non-nil error aborts the operation and
	// latches the queue into its failed state, exactly as a storage
	// error would. This is the failure-injection surface used by the
	// deterministic simulation harness: unlike store-level faults it
	// fires even when segment pages are still sitting in write
	// buffers, so every logical disk transition is a schedulable
	// fault point. Nil costs nothing.
	FaultHook func(op FaultOp) error
}

// New returns an empty hybrid queue.
func New(cfg Config) *Queue {
	st := cfg.Store
	if st == nil {
		st = storage.NewMemStore(storage.DefaultPageSize)
	}
	capacity := cfg.MemBytes / RecordSize
	if capacity < 1 {
		capacity = 1
	}
	// §4.4: the boundary between the in-memory heap and the first
	// disk segment is sqrt(n*rho). Distant pairs spill immediately
	// instead of churning through the heap; an underestimated model is
	// corrected by overflow splits, an overestimated one by swap-ins.
	memBound := math.Inf(1)
	if b := math.Sqrt(float64(capacity) * cfg.Rho); b > 0 {
		memBound = b
	}
	q := &Queue{
		heap:     pqueue.NewHeap(func(a, b Pair) bool { return a.Less(b) }),
		capacity: capacity,
		memBound: memBound,
		rho:      cfg.Rho,
		store:    st,
		perPage:  st.PageSize() / RecordSize,
		mc:       cfg.Metrics,
		ioCost:   cfg.IOCost,
		tr:       cfg.Trace,
		fault:    cfg.FaultHook,
	}
	if cfg.Concurrent {
		q.mu = new(sync.Mutex)
	}
	return q
}

// lock acquires the internal mutex when the queue is concurrent; it
// returns an unlock func (a no-op for single-goroutine queues).
func (q *Queue) lock() func() {
	if q.mu == nil {
		return func() {}
	}
	q.mu.Lock()
	return q.mu.Unlock
}

// Capacity returns the heap capacity in pairs.
func (q *Queue) Capacity() int { return q.capacity }

// Len returns the total number of queued pairs (memory + disk).
func (q *Queue) Len() int {
	defer q.lock()()
	return q.heap.Len() + q.diskLen()
}

// Empty reports whether no pairs are queued.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// MemLen returns the number of pairs currently in the in-memory heap.
func (q *Queue) MemLen() int {
	defer q.lock()()
	return q.heap.Len()
}

// Segments returns the number of on-disk segments.
func (q *Queue) Segments() int {
	defer q.lock()()
	return len(q.segs)
}

// Depth reports the in-memory pair count, the spilled (on-disk) pair
// count, and the number of on-disk segments under a single lock
// acquisition — the shape the live query inspector samples, cheap
// enough to call on the hot path at a bounded rate.
func (q *Queue) Depth() (mem, disk, segments int) {
	defer q.lock()()
	return q.heap.Len(), q.diskLen(), len(q.segs)
}

// Err returns the first storage error encountered, if any.
func (q *Queue) Err() error {
	defer q.lock()()
	return q.err
}

// Push enqueues p.
//
//lint:allow lockheld spill I/O under the queue's own single-owner lock is the §4.4 design; the lock is defense-in-depth, never contended on the hot path
func (q *Queue) Push(p Pair) {
	defer q.lock()()
	if q.err != nil {
		return
	}
	if p.Dist < q.memBound {
		q.heap.Push(p)
		if q.heap.Len() > q.capacity && q.heap.Len() > q.splitFloor {
			q.splitHeap()
		}
		return
	}
	q.spill(p)
}

// Pop removes and returns the minimum pair. ok is false when the
// queue is empty or a storage error is latched.
//
//lint:allow lockheld reload I/O under the queue's own single-owner lock is the §4.4 design; the lock is defense-in-depth, never contended on the hot path
func (q *Queue) Pop() (p Pair, ok bool) {
	defer q.lock()()
	if q.err != nil {
		return Pair{}, false
	}
	if q.heap.Empty() {
		if !q.swapIn() {
			return Pair{}, false
		}
	}
	return q.heap.Pop(), true
}

// Peek returns the minimum pair without removing it.
//
//lint:allow lockheld reload I/O under the queue's own single-owner lock is the §4.4 design; the lock is defense-in-depth, never contended on the hot path
func (q *Queue) Peek() (p Pair, ok bool) {
	defer q.lock()()
	if q.err != nil {
		return Pair{}, false
	}
	if q.heap.Empty() {
		if !q.swapIn() {
			return Pair{}, false
		}
	}
	return q.heap.Peek(), true
}

// splitHeap handles heap overflow: the longer-distance half of the
// heap is moved to a new disk segment and the in-memory bound shrinks
// to the split distance.
//
// Pairs sharing one distance are never split across the memory/disk
// boundary: queue consumers (the parallel join engine in particular)
// rely on equal-distance pairs popping in their full Less order, which
// holds only if a tie run always lives in a single region. When the
// split point lands inside a run, the whole run stays in memory — the
// budget is temporarily exceeded by the run length — and only the
// strictly-longer tail spills.
func (q *Queue) splitHeap() {
	buf := getPairBuf(q.heap.Len())
	items := append(buf.items, q.heap.Items()...)
	sort.Sort(byPairOrder(items))
	keep := len(items) / 2
	if keep < 1 {
		keep = 1
	}
	split := items[keep].Dist
	// Keep strictly-below-split pairs in memory so that the routing
	// invariant (heap holds only dist < memBound) is preserved; pairs
	// equal to the split distance spill with the long half.
	//lint:allow floatcmp tie-run boundary scan is bit-exact by design: equal distances must never straddle the memory/disk boundary
	for keep > 0 && items[keep-1].Dist == split {
		keep--
	}
	bound := split
	if keep == 0 {
		// The split point landed inside a single-distance run: keep
		// the entire run, spill only pairs strictly beyond it.
		bound = math.Nextafter(split, math.Inf(1))
		keep = sort.Search(len(items), func(i int) bool { return items[i].Dist > split })
	}
	if keep == len(items) {
		// Nothing spillable — the whole heap is one tie run. Leave it
		// in memory, shrink the bound so longer pairs spill directly,
		// and stop re-splitting until the heap can actually shed load.
		q.memBound = bound
		q.splitFloor = len(items)
		buf.items = items
		putPairBuf(buf)
		return
	}

	// An actual spill is about to happen: give the fault hook its
	// deterministic injection point before any state is mutated, so a
	// failed spill leaves the heap intact and the error latched.
	if q.fault != nil {
		if err := q.fault(FaultSpill); err != nil {
			q.err = err
			buf.items = items
			putPairBuf(buf)
			return
		}
	}
	hi := q.memBound
	q.memBound = bound
	q.splitFloor = 0
	seg := getSegment(bound, hi, q.store.PageSize())
	for _, p := range items[keep:] {
		q.appendToSegment(seg, p)
	}
	q.insertSegment(seg)

	spilled := len(items) - keep
	q.heap.Clear()
	for _, p := range items[:keep] {
		q.heap.Push(p)
	}
	// Every pair is now copied into the heap or encoded into the
	// segment buffer; the slab can recycle.
	buf.items = items
	putPairBuf(buf)
	if q.tr.Enabled() {
		q.tr.Emit(trace.Event{
			Kind:     trace.KindQueueSpill,
			Dist:     bound,
			Count:    int64(spilled),
			MemLen:   q.heap.Len(),
			DiskLen:  q.diskLen(),
			Segments: len(q.segs),
		})
	}
}

// diskLen returns the number of pairs currently in disk segments.
// Callers hold the queue lock (or own the queue single-threaded).
func (q *Queue) diskLen() int {
	n := 0
	for _, s := range q.segs {
		n += s.count
	}
	return n
}

// spill routes p to the disk segment covering its distance, creating a
// model-boundary segment if none exists.
func (q *Queue) spill(p Pair) {
	seg := q.segmentFor(p.Dist)
	q.appendToSegment(seg, p)
}

// segmentFor locates or creates the segment containing dist, which is
// >= memBound.
func (q *Queue) segmentFor(dist float64) *segment {
	for _, s := range q.segs {
		if dist >= s.lo && dist < s.hi {
			return s
		}
	}
	// Create a segment from the model boundaries sqrt(i*n*rho),
	// clipped against existing segments and the memory bound.
	lo, hi := q.modelRange(dist)
	if lo < q.memBound {
		lo = q.memBound
	}
	for _, s := range q.segs {
		if s.hi <= dist && s.hi > lo {
			lo = s.hi
		}
		if s.lo > dist && s.lo < hi {
			hi = s.lo
		}
	}
	seg := getSegment(lo, hi, q.store.PageSize())
	q.insertSegment(seg)
	return seg
}

// maxModelSegments caps how many model-boundary segments may exist.
// Each segment carries one page of write buffer, so unbounded segment
// creation would silently defeat the memory budget; distances beyond
// the last boundary share one open-ended segment.
const maxModelSegments = 64

// modelRange returns the §4.4 model boundaries surrounding dist:
// [sqrt(i*n*rho), sqrt((i+1)*n*rho)) for the i containing dist. With
// no usable model the range is unbounded; beyond the segment cap the
// last range extends to infinity.
func (q *Queue) modelRange(dist float64) (lo, hi float64) {
	unit := float64(q.capacity) * q.rho
	if unit <= 0 || math.IsInf(dist, 1) {
		return 0, math.Inf(1)
	}
	i := math.Floor(dist * dist / unit)
	if i >= maxModelSegments {
		return math.Sqrt(maxModelSegments * unit), math.Inf(1)
	}
	lo = math.Sqrt(i * unit)
	hi = math.Sqrt((i + 1) * unit)
	// Guard against floating-point edge effects at boundaries.
	if dist < lo {
		lo = dist
	}
	if dist >= hi {
		hi = math.Nextafter(dist, math.Inf(1))
	}
	return lo, hi
}

// insertSegment adds seg keeping q.segs sorted by lo. Segment ranges
// are disjoint by construction (segmentFor clips against existing
// segments, splits always carve below the spilled range), so a plain
// insertion shift is equivalent to the full sort it replaced — and
// allocation-free, which the steady-state allocation tests rely on.
func (q *Queue) insertSegment(seg *segment) {
	q.segs = append(q.segs, seg)
	i := len(q.segs) - 1
	for i > 0 && q.segs[i-1].lo > seg.lo {
		q.segs[i] = q.segs[i-1]
		i--
	}
	q.segs[i] = seg
}

// appendToSegment encodes p into the segment's trailing page buffer,
// flushing full pages to the store.
func (q *Queue) appendToSegment(seg *segment, p Pair) {
	if q.err != nil {
		return
	}
	p.encode(seg.buf[seg.bufCount*RecordSize:])
	seg.bufCount++
	seg.count++
	if seg.bufCount == q.perPage {
		q.flushSegmentPage(seg)
	}
}

// flushSegmentPage writes the segment's buffered records to a page.
func (q *Queue) flushSegmentPage(seg *segment) {
	id, err := q.allocPage()
	if err != nil {
		q.err = err
		return
	}
	if err := q.store.WritePage(id, seg.buf); err != nil {
		q.err = err
		return
	}
	q.mc.QueueIO(0, 1, q.ioCost.SequentialPageCost())
	seg.pages = append(seg.pages, id)
	seg.bufCount = 0
}

func (q *Queue) allocPage() (storage.PageID, error) {
	if n := len(q.free); n > 0 {
		id := q.free[n-1]
		q.free = q.free[:n-1]
		return id, nil
	}
	return q.store.Alloc()
}

// swapIn loads the lowest-range segment into the heap, splitting it if
// it exceeds the memory capacity. Returns false when no segment
// exists or an error latched.
func (q *Queue) swapIn() bool {
	if len(q.segs) == 0 || q.err != nil {
		return false
	}
	// A reload is about to happen: injection point before any state is
	// mutated, so a failed reload leaves segments intact and latches.
	if q.fault != nil {
		if err := q.fault(FaultReload); err != nil {
			q.err = err
			return false
		}
	}
	seg := q.segs[0]
	q.segs = q.segs[1:]
	q.splitFloor = 0 // heap is empty; any previous overrun is gone

	buf := getPairBuf(seg.count)
	items := buf.items
	page := getPageBuf(q.store.PageSize())
	for _, id := range seg.pages {
		if err := q.store.ReadPage(id, page); err != nil {
			q.err = err
			buf.items = items
			putPairBuf(buf)
			putPageBuf(page)
			putSegment(seg)
			return false
		}
		q.mc.QueueIO(1, 0, q.ioCost.SequentialPageCost())
		for i := 0; i < q.perPage; i++ {
			items = append(items, decodePair(page[i*RecordSize:]))
		}
		q.free = append(q.free, id)
	}
	putPageBuf(page)
	for i := 0; i < seg.bufCount; i++ {
		items = append(items, decodePair(seg.buf[i*RecordSize:]))
	}

	if len(items) > q.capacity {
		sort.Sort(byPairOrder(items))
		keep := q.capacity
		split := items[keep].Dist
		//lint:allow floatcmp tie-run boundary scan is bit-exact by design: equal distances must never straddle the memory/disk boundary
		for keep > 0 && items[keep-1].Dist == split {
			keep--
		}
		bound := split
		if keep == 0 {
			// As in splitHeap: never straddle a tie run across the
			// boundary — keep the whole run, even over capacity.
			bound = math.Nextafter(split, math.Inf(1))
			keep = sort.Search(len(items), func(i int) bool { return items[i].Dist > split })
		}
		if keep == len(items) {
			q.memBound = seg.hi
			q.splitFloor = len(items)
		} else {
			rest := getSegment(bound, seg.hi, q.store.PageSize())
			for _, p := range items[keep:] {
				q.appendToSegment(rest, p)
			}
			q.insertSegment(rest)
			items = items[:keep]
			q.memBound = bound
		}
	} else {
		q.memBound = seg.hi
	}

	for _, p := range items {
		q.heap.Push(p)
	}
	loaded := len(items)
	// Everything is copied into the heap (or re-encoded into rest's
	// buffer above); recycle the slab before the possible tail call so
	// a chain of empty segments reuses one slab.
	buf.items = items
	putPairBuf(buf)
	if q.tr.Enabled() {
		q.tr.Emit(trace.Event{
			Kind:     trace.KindQueueReload,
			Dist:     seg.lo,
			Count:    int64(loaded),
			MemLen:   q.heap.Len(),
			DiskLen:  q.diskLen(),
			Segments: len(q.segs),
		})
	}
	// The segment is fully consumed — every record decoded and copied
	// onward — so it recycles whole (header, page list, write buffer).
	putSegment(seg)
	return loaded > 0 || q.swapIn()
}

// Drain removes all pairs (used between experiment stages).
func (q *Queue) Drain() {
	defer q.lock()()
	q.heap.Clear()
	for _, s := range q.segs {
		q.free = append(q.free, s.pages...)
		putSegment(s)
	}
	q.segs = nil
	q.memBound = math.Inf(1)
	q.splitFloor = 0
}

// String summarizes the queue state for diagnostics.
func (q *Queue) String() string {
	defer q.lock()()
	n := q.heap.Len() + q.diskLen()
	return fmt.Sprintf("hybridq{mem=%d/%d bound=%g segs=%d total=%d}",
		q.heap.Len(), q.capacity, q.memBound, len(q.segs), n)
}
