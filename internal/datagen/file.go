package datagen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

// Dataset file format: a small header followed by fixed-size records,
// written by cmd/distjoin-gen and consumed by the other tools.
//
//	offset 0:  8-byte magic "DJDS0001"
//	offset 8:  uint64 record count
//	offset 16: records: int64 object id, 4 x float64 MBR (40 bytes)
const (
	datasetMagic      = "DJDS0001"
	datasetHeaderSize = 16
	datasetRecordSize = 40
)

// WriteFile writes items to path in the dataset format.
func WriteFile(path string, items []rtree.Item) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("datagen: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriter(f)
	if err := WriteTo(w, items); err != nil {
		return err
	}
	return w.Flush()
}

// WriteTo writes items in the dataset format to w.
func WriteTo(w io.Writer, items []rtree.Item) error {
	header := make([]byte, datasetHeaderSize)
	copy(header, datasetMagic)
	binary.LittleEndian.PutUint64(header[8:], uint64(len(items)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("datagen: write header: %w", err)
	}
	rec := make([]byte, datasetRecordSize)
	for _, it := range items {
		binary.LittleEndian.PutUint64(rec[0:], uint64(it.Obj))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(it.Rect.MinX))
		binary.LittleEndian.PutUint64(rec[16:], math.Float64bits(it.Rect.MinY))
		binary.LittleEndian.PutUint64(rec[24:], math.Float64bits(it.Rect.MaxX))
		binary.LittleEndian.PutUint64(rec[32:], math.Float64bits(it.Rect.MaxY))
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("datagen: write record: %w", err)
		}
	}
	return nil
}

// ReadFile loads a dataset previously written by WriteFile.
func ReadFile(path string) ([]rtree.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("datagen: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadFrom(bufio.NewReader(f))
}

// ReadFrom parses a dataset from r.
func ReadFrom(r io.Reader) ([]rtree.Item, error) {
	header := make([]byte, datasetHeaderSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("datagen: read header: %w", err)
	}
	if string(header[:8]) != datasetMagic {
		return nil, fmt.Errorf("datagen: bad magic %q", header[:8])
	}
	count := binary.LittleEndian.Uint64(header[8:])
	// Cap the preallocation: the header is untrusted input and a
	// corrupt count must not force a huge allocation. The slice still
	// grows to the real size as records arrive.
	prealloc := count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	items := make([]rtree.Item, 0, prealloc)
	rec := make([]byte, datasetRecordSize)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, fmt.Errorf("datagen: read record %d: %w", i, err)
		}
		it := rtree.Item{
			Obj: int64(binary.LittleEndian.Uint64(rec[0:])),
			Rect: geom.Rect{
				MinX: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
				MinY: math.Float64frombits(binary.LittleEndian.Uint64(rec[16:])),
				MaxX: math.Float64frombits(binary.LittleEndian.Uint64(rec[24:])),
				MaxY: math.Float64frombits(binary.LittleEndian.Uint64(rec[32:])),
			},
		}
		if !it.Rect.Valid() {
			return nil, fmt.Errorf("datagen: record %d has invalid rect %v", i, it.Rect)
		}
		items = append(items, it)
	}
	return items, nil
}

// CSV interop: one object per line, "id,minx,miny,maxx,maxy".
// WriteCSV/ReadCSV let real data sets (e.g. actual TIGER/Line extracts
// converted with standard GIS tooling) flow into distjoin-query.

// WriteCSV writes items as CSV records.
func WriteCSV(w io.Writer, items []rtree.Item) error {
	bw := bufio.NewWriter(w)
	for _, it := range items {
		if _, err := fmt.Fprintf(bw, "%d,%g,%g,%g,%g\n",
			it.Obj, it.Rect.MinX, it.Rect.MinY, it.Rect.MaxX, it.Rect.MaxY); err != nil {
			return fmt.Errorf("datagen: write csv: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCSV parses "id,minx,miny,maxx,maxy" records. Blank lines and
// lines starting with '#' are skipped; coordinates are normalized so
// min <= max.
func ReadCSV(r io.Reader) ([]rtree.Item, error) {
	var items []rtree.Item
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("datagen: csv line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		id, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("datagen: csv line %d: bad id: %w", lineNo, err)
		}
		var coords [4]float64
		for i := 0; i < 4; i++ {
			coords[i], err = strconv.ParseFloat(strings.TrimSpace(fields[i+1]), 64)
			if err != nil {
				return nil, fmt.Errorf("datagen: csv line %d: bad coordinate: %w", lineNo, err)
			}
		}
		rect := geom.NewRect(coords[0], coords[1], coords[2], coords[3])
		if !rect.Valid() {
			return nil, fmt.Errorf("datagen: csv line %d: invalid rect", lineNo)
		}
		items = append(items, rtree.Item{Obj: id, Rect: rect})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("datagen: read csv: %w", err)
	}
	return items, nil
}
