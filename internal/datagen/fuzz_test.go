package datagen

import (
	"bytes"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

// FuzzReadFrom feeds arbitrary bytes to the dataset parser: it must
// reject garbage with an error (never panic or over-allocate) and
// round-trip everything it accepts.
func FuzzReadFrom(f *testing.F) {
	var valid bytes.Buffer
	items := []rtree.Item{
		{Rect: geom.NewRect(0, 0, 1, 1), Obj: 1},
		{Rect: geom.NewRect(-5, 2, 7, 3), Obj: 42},
	}
	if err := WriteTo(&valid, items); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("DJDS0001garbage"))
	f.Add([]byte{})
	huge := append([]byte("DJDS0001"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, it := range got {
			if !it.Rect.Valid() {
				t.Fatalf("accepted invalid rect %v", it.Rect)
			}
		}
		// Accepted data must round-trip.
		var buf bytes.Buffer
		if err := WriteTo(&buf, got); err != nil {
			t.Fatal(err)
		}
		again, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(got) {
			t.Fatalf("round trip changed count: %d vs %d", len(again), len(got))
		}
	})
}
