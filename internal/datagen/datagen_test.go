package datagen

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

func checkItems(t *testing.T, items []rtree.Item, n int) {
	t.Helper()
	if len(items) != n {
		t.Fatalf("got %d items, want %d", len(items), n)
	}
	seen := map[int64]bool{}
	for i, it := range items {
		if !it.Rect.Valid() {
			t.Fatalf("item %d invalid rect %v", i, it.Rect)
		}
		if !World.Contains(it.Rect) {
			t.Fatalf("item %d escapes world: %v", i, it.Rect)
		}
		if seen[it.Obj] {
			t.Fatalf("duplicate object id %d", it.Obj)
		}
		seen[it.Obj] = true
	}
}

func TestUniform(t *testing.T) {
	items := Uniform(1, 5000, World, 100)
	checkItems(t, items, 5000)
	// Roughly uniform: each quadrant holds 15-35%.
	c := World.Center()
	quad := [4]int{}
	for _, it := range items {
		ic := it.Rect.Center()
		idx := 0
		if ic.X > c.X {
			idx |= 1
		}
		if ic.Y > c.Y {
			idx |= 2
		}
		quad[idx]++
	}
	for i, q := range quad {
		if q < 750 || q > 1750 {
			t.Fatalf("quadrant %d has %d items; not uniform", i, q)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(7, 100, World, 10)
	b := Uniform(7, 100, World, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := Uniform(8, 100, World, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGaussianClustersSkew(t *testing.T) {
	items := GaussianClusters(2, 5000, 5, World, 2000, 50)
	checkItems(t, items, 5000)
	// Clustered data must be far less uniform than uniform data:
	// compare occupancy of a 10x10 grid.
	occupied := gridOccupancy(items, 10)
	if occupied > 60 {
		t.Fatalf("clustered data occupies %d/100 cells; expected concentration", occupied)
	}
	uni := gridOccupancy(Uniform(2, 5000, World, 50), 10)
	if uni < 95 {
		t.Fatalf("uniform data occupies only %d/100 cells", uni)
	}
}

// gridCountCV returns the coefficient of variation of per-cell item
// counts on a g x g grid — near 0 for uniform data, large for skew.
func gridCountCV(items []rtree.Item, g int) float64 {
	counts := make([]float64, g*g)
	for _, it := range items {
		c := it.Rect.Center()
		ix := int((c.X - World.MinX) / World.Side(0) * float64(g))
		iy := int((c.Y - World.MinY) / World.Side(1) * float64(g))
		if ix >= g {
			ix = g - 1
		}
		if iy >= g {
			iy = g - 1
		}
		counts[ix*g+iy]++
	}
	mean := float64(len(items)) / float64(g*g)
	var ss float64
	for _, c := range counts {
		ss += (c - mean) * (c - mean)
	}
	return math.Sqrt(ss/float64(g*g)) / mean
}

func gridOccupancy(items []rtree.Item, g int) int {
	cells := map[int]bool{}
	for _, it := range items {
		c := it.Rect.Center()
		ix := int((c.X - World.MinX) / World.Side(0) * float64(g))
		iy := int((c.Y - World.MinY) / World.Side(1) * float64(g))
		if ix >= g {
			ix = g - 1
		}
		if iy >= g {
			iy = g - 1
		}
		cells[ix*g+iy] = true
	}
	return len(cells)
}

func TestTigerStreets(t *testing.T) {
	items := TigerStreets(3, 20000)
	checkItems(t, items, 20000)
	// Street segments are skewed/clustered like the real thing.
	if occ := gridOccupancy(items, 10); occ > 95 {
		t.Fatalf("streets occupy %d/100 cells; expected clustering", occ)
	}
	// Thin elongated MBRs dominate: median aspect ratio far from 1 or
	// tiny sides. Sanity: most segments shorter than 2km on their long
	// side.
	long := 0
	for _, it := range items {
		side := math.Max(it.Rect.Side(0), it.Rect.Side(1))
		if side > 2000 {
			long++
		}
	}
	if long > len(items)/4 {
		t.Fatalf("%d of %d street segments longer than 2km", long, len(items))
	}
}

func TestTigerHydro(t *testing.T) {
	items := TigerHydro(4, 8000)
	checkItems(t, items, 8000)
	// Rivers cross the whole map, so occupancy is near-total; skew
	// shows up as high per-cell count variation instead.
	if cv, ucv := gridCountCV(items, 10), gridCountCV(Uniform(4, 8000, World, 50), 10); cv < 2*ucv {
		t.Fatalf("hydro count CV %.2f not clearly above uniform %.2f", cv, ucv)
	}
	// Hydro MBRs have nonzero area (rivers are inflated, lakes are
	// blobs) — unlike axis-parallel street segments.
	zeroArea := 0
	for _, it := range items {
		if it.Rect.Area() == 0 {
			zeroArea++
		}
	}
	if zeroArea > len(items)/20 {
		t.Fatalf("%d hydro objects with zero area", zeroArea)
	}
}

func TestTigerDeterministic(t *testing.T) {
	a := TigerStreets(5, 1000)
	b := TigerStreets(5, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streets diverged at %d", i)
		}
	}
	c := TigerHydro(5, 1000)
	d := TigerHydro(5, 1000)
	for i := range c {
		if c[i] != d[i] {
			t.Fatalf("hydro diverged at %d", i)
		}
	}
}

func TestBounds(t *testing.T) {
	if Bounds(nil) != (geom.Rect{}) {
		t.Fatal("empty bounds must be zero")
	}
	items := []rtree.Item{
		{Rect: geom.NewRect(1, 2, 3, 4)},
		{Rect: geom.NewRect(-1, 5, 2, 9)},
	}
	if got := Bounds(items); got != (geom.Rect{MinX: -1, MinY: 2, MaxX: 3, MaxY: 9}) {
		t.Fatalf("Bounds = %v", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	items := Uniform(9, 1234, World, 42)
	path := filepath.Join(t.TempDir(), "data.djds")
	if err := WriteFile(path, items); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("read %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("item %d mismatch", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a dataset file at all"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
	var buf bytes.Buffer
	if err := WriteTo(&buf, []rtree.Item{{Rect: geom.NewRect(0, 0, 1, 1), Obj: 1}}); err != nil {
		t.Fatal(err)
	}
	// Truncated record.
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated file must be rejected")
	}
}

func TestReadRejectsInvalidRect(t *testing.T) {
	var buf bytes.Buffer
	item := rtree.Item{Rect: geom.NewRect(0, 0, 1, 1), Obj: 1}
	if err := WriteTo(&buf, []rtree.Item{item}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt MinX (record starts after the 16-byte header; the first
	// 8 record bytes are the object id) to NaN.
	for i := 24; i < 32; i++ {
		raw[i] = 0xFF
	}
	if _, err := ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("NaN rect must be rejected")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	items := Uniform(12, 500, World, 30)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, items); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("read %d, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("item %d: %+v vs %+v", i, got[i], items[i])
		}
	}
}

func TestCSVCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\n1, 0, 0, 2, 2\n  # indented comment\n2,5,5,3,3\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d, want 2", len(got))
	}
	// Coordinates normalized (min <= max).
	if got[1].Rect != (geom.Rect{MinX: 3, MinY: 3, MaxX: 5, MaxY: 5}) {
		t.Fatalf("rect not normalized: %v", got[1].Rect)
	}
}

func TestCSVErrors(t *testing.T) {
	for _, bad := range []string{
		"1,2,3\n",           // too few fields
		"x,0,0,1,1\n",       // bad id
		"1,a,0,1,1\n",       // bad coordinate
		"1,NaN,0,1,1\n",     // invalid rect
		"1,0,0,1,1,extra\n", // too many fields
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Fatalf("%q must be rejected", bad)
		}
	}
}
