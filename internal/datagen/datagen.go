// Package datagen produces the deterministic synthetic data sets used
// by the experiments. The paper evaluates on TIGER/Line97 Arizona data
// (633,461 street segments joined with 189,642 hydrographic objects);
// those files are not redistributable here, so TigerStreets and
// TigerHydro generate a structurally similar substitute: street
// segments laid down by road-network random walks with dense urban
// clusters, and hydrography built from meandering river courses plus
// lake clusters. Uniform and Gaussian-cluster generators are provided
// for sensitivity experiments. All generators are seeded and
// reproducible.
package datagen

import (
	"math"
	"math/rand"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

// World is the coordinate universe all generators target. Using one
// shared universe keeps the two join sides overlapping, as the paper's
// Arizona data is. The extent is chosen so a typical street segment
// (~100-200 units) relates to the map like a 100 m street segment
// relates to Arizona — which also keeps the count of MBR-overlapping
// street/hydro pairs realistically small, so the k-th pair distance is
// positive even at the paper's largest k.
var World = geom.NewRect(0, 0, 1_000_000, 1_000_000)

// Uniform returns n items with centers uniform in bounds and sides
// uniform in [0, maxSide]. Object IDs are 0..n-1.
func Uniform(seed int64, n int, bounds geom.Rect, maxSide float64) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, n)
	for i := range items {
		cx := bounds.MinX + rng.Float64()*bounds.Side(0)
		cy := bounds.MinY + rng.Float64()*bounds.Side(1)
		w := rng.Float64() * maxSide / 2
		h := rng.Float64() * maxSide / 2
		items[i] = rtree.Item{
			Rect: clampRect(geom.NewRect(cx-w, cy-h, cx+w, cy+h), bounds),
			Obj:  int64(i),
		}
	}
	return items
}

// GaussianClusters returns n items drawn from numClusters Gaussian
// blobs with the given standard deviation, a classic skewed workload.
func GaussianClusters(seed int64, n, numClusters int, bounds geom.Rect, stddev, maxSide float64) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	type cluster struct{ x, y float64 }
	centers := make([]cluster, numClusters)
	for i := range centers {
		centers[i] = cluster{
			x: bounds.MinX + rng.Float64()*bounds.Side(0),
			y: bounds.MinY + rng.Float64()*bounds.Side(1),
		}
	}
	items := make([]rtree.Item, n)
	for i := range items {
		c := centers[rng.Intn(numClusters)]
		cx := c.x + rng.NormFloat64()*stddev
		cy := c.y + rng.NormFloat64()*stddev
		w := rng.Float64() * maxSide / 2
		h := rng.Float64() * maxSide / 2
		items[i] = rtree.Item{
			Rect: clampRect(geom.NewRect(cx-w, cy-h, cx+w, cy+h), bounds),
			Obj:  int64(i),
		}
	}
	return items
}

// TigerStreets generates n street-segment MBRs. Streets are laid down
// by biased random walks ("roads") radiating from a handful of urban
// centers, yielding the heavy clustering and thin elongated MBRs of
// real street data: dense short segments downtown, long sparse
// segments between towns.
func TigerStreets(seed int64, n int) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	towns := placeTowns(rng, 40)
	items := make([]rtree.Item, 0, n)
	obj := int64(0)
	for len(items) < n {
		// Pick a town; roads start near it. A town's density governs
		// segment lengths: downtown segments are ~50-200 units, rural
		// connectors up to ~2000.
		t := towns[rng.Intn(len(towns))]
		x := t.x + rng.NormFloat64()*t.spread
		y := t.y + rng.NormFloat64()*t.spread
		heading := rng.Float64() * 2 * math.Pi
		segments := 5 + rng.Intn(40)
		urban := rng.Float64() < 0.8
		for s := 0; s < segments && len(items) < n; s++ {
			length := 50 + rng.Float64()*150
			if !urban {
				length = 300 + rng.Float64()*1700
			}
			// Manhattan-ish grid downtown: snap heading to axes often.
			if urban && rng.Float64() < 0.7 {
				heading = math.Round(heading/(math.Pi/2)) * (math.Pi / 2)
			}
			nx := x + math.Cos(heading)*length
			ny := y + math.Sin(heading)*length
			r := clampRect(geom.NewRect(x, y, nx, ny), World)
			items = append(items, rtree.Item{Rect: r, Obj: obj})
			obj++
			x, y = nx, ny
			heading += rng.NormFloat64() * 0.3
			if !World.ContainsPoint(geom.Point{X: x, Y: y}) {
				break // road ran off the map; start a new one
			}
		}
	}
	return items[:n]
}

// TigerHydro generates n hydrographic MBRs: meandering river courses
// (chains of overlapping segment MBRs) and clustered lakes/ponds.
func TigerHydro(seed int64, n int) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, 0, n)
	obj := int64(0)
	// ~70% river segments, ~30% lakes.
	for len(items) < n {
		if rng.Float64() < 0.7 {
			// A river: long meandering walk with wide-ish MBRs.
			x := World.MinX + rng.Float64()*World.Side(0)
			y := World.MinY + rng.Float64()*World.Side(1)
			heading := rng.Float64() * 2 * math.Pi
			course := 20 + rng.Intn(120)
			for s := 0; s < course && len(items) < n; s++ {
				length := 200 + rng.Float64()*600
				nx := x + math.Cos(heading)*length
				ny := y + math.Sin(heading)*length
				width := 20 + rng.Float64()*80
				r := clampRect(inflate(geom.NewRect(x, y, nx, ny), width), World)
				items = append(items, rtree.Item{Rect: r, Obj: obj})
				obj++
				x, y = nx, ny
				heading += rng.NormFloat64() * 0.25
				if !World.ContainsPoint(geom.Point{X: x, Y: y}) {
					break
				}
			}
		} else {
			// A lake district: a tight cluster of blob MBRs.
			cx := World.MinX + rng.Float64()*World.Side(0)
			cy := World.MinY + rng.Float64()*World.Side(1)
			lakes := 3 + rng.Intn(25)
			for l := 0; l < lakes && len(items) < n; l++ {
				x := cx + rng.NormFloat64()*3000
				y := cy + rng.NormFloat64()*3000
				w := 50 + rng.Float64()*350
				h := 50 + rng.Float64()*350
				r := clampRect(geom.NewRect(x-w/2, y-h/2, x+w/2, y+h/2), World)
				items = append(items, rtree.Item{Rect: r, Obj: obj})
				obj++
			}
		}
	}
	return items[:n]
}

// GridStraddle returns n items deliberately hostile to grid
// partitioning: Gaussian clusters centered on the interior cell
// corners of a g x g grid over bounds, so item MBRs straddle partition
// boundaries and neighboring shards end up with near-identical MBR
// mindists, plus a heavy hotspot in one cell for population skew. It
// stresses the sharded scheduler's pruning and determinism exactly
// where grid partitioning is weakest. Object IDs are 0..n-1.
func GridStraddle(seed int64, n, g int, bounds geom.Rect, maxSide float64) []rtree.Item {
	if g < 2 {
		g = 2
	}
	rng := rand.New(rand.NewSource(seed))
	// Interior grid corners: (g-1)^2 boundary hotspots.
	type corner struct{ x, y float64 }
	corners := make([]corner, 0, (g-1)*(g-1))
	for i := 1; i < g; i++ {
		for j := 1; j < g; j++ {
			corners = append(corners, corner{
				x: bounds.MinX + bounds.Side(0)*float64(i)/float64(g),
				y: bounds.MinY + bounds.Side(1)*float64(j)/float64(g),
			})
		}
	}
	// Cluster spread of ~one tenth of a cell keeps most mass within
	// the four cells meeting at the corner.
	stddev := math.Min(bounds.Side(0), bounds.Side(1)) / float64(g) / 10
	hotX := bounds.MinX + bounds.Side(0)/(2*float64(g))
	hotY := bounds.MinY + bounds.Side(1)/(2*float64(g))
	items := make([]rtree.Item, n)
	for i := range items {
		var cx, cy float64
		if rng.Float64() < 0.3 {
			// Population skew: 30% of the data piles into the first cell.
			cx = hotX + rng.NormFloat64()*stddev
			cy = hotY + rng.NormFloat64()*stddev
		} else {
			c := corners[rng.Intn(len(corners))]
			cx = c.x + rng.NormFloat64()*stddev
			cy = c.y + rng.NormFloat64()*stddev
		}
		w := rng.Float64() * maxSide / 2
		h := rng.Float64() * maxSide / 2
		items[i] = rtree.Item{
			Rect: clampRect(geom.NewRect(cx-w, cy-h, cx+w, cy+h), bounds),
			Obj:  int64(i),
		}
	}
	return items
}

// town is an urban center for the street generator.
type town struct {
	x, y, spread float64
}

func placeTowns(rng *rand.Rand, n int) []town {
	towns := make([]town, n)
	for i := range towns {
		towns[i] = town{
			x:      World.MinX + rng.Float64()*World.Side(0),
			y:      World.MinY + rng.Float64()*World.Side(1),
			spread: 2000 + rng.Float64()*8000,
		}
	}
	return towns
}

// inflate widens a (possibly degenerate) segment MBR by w on each axis.
func inflate(r geom.Rect, w float64) geom.Rect {
	return geom.Rect{MinX: r.MinX - w/2, MinY: r.MinY - w/2, MaxX: r.MaxX + w/2, MaxY: r.MaxY + w/2}
}

// clampRect clamps each coordinate of r into bounds, so the result is
// always a valid rectangle inside bounds (rectangles fully outside
// collapse onto the nearest boundary).
func clampRect(r geom.Rect, bounds geom.Rect) geom.Rect {
	clamp := func(v, lo, hi float64) float64 {
		return math.Min(math.Max(v, lo), hi)
	}
	return geom.NewRect(
		clamp(r.MinX, bounds.MinX, bounds.MaxX),
		clamp(r.MinY, bounds.MinY, bounds.MaxY),
		clamp(r.MaxX, bounds.MinX, bounds.MaxX),
		clamp(r.MaxY, bounds.MinY, bounds.MaxY),
	)
}

// Bounds returns the MBR of items (zero Rect for an empty slice).
func Bounds(items []rtree.Item) geom.Rect {
	if len(items) == 0 {
		return geom.Rect{}
	}
	r := items[0].Rect
	for _, it := range items[1:] {
		r = r.Union(it.Rect)
	}
	return r
}
