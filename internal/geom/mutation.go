package geom

// Test-only mutation hook for the batch distance kernels.
//
// The deterministic simulation harness (internal/simtest) must be able
// to prove it would catch a batch-kernel bug — the classic failure mode
// of a vectorized rewrite is mishandling the tail of a slice, which a
// harness that never fails cannot distinguish from a harness that
// cannot fail. SetBatchTailMutation deliberately corrupts the last
// element of every MinDistSqBatch result (an off-by-one in tail
// handling: the final candidate's distance is replaced with its
// neighbor's), so any sweep that batches its leaf-pair refinement
// produces wrong distances that the differential oracle must flag.
//
// The hook is process-global and not synchronized: it must only be
// flipped on the goroutine that runs the (serial) join, with no query
// in flight, mirroring join.SetPruneMutation.

// mutantBatchTail enables the deliberate tail bug. false (the default)
// is the correct kernel.
var mutantBatchTail = false

// SetBatchTailMutation installs the deliberate batch-tail bug used by
// the harness self-test and returns a func that restores correctness.
// Callers must restore before any concurrent or correct-path use.
func SetBatchTailMutation() (restore func()) {
	prev := mutantBatchTail
	mutantBatchTail = true
	return func() { mutantBatchTail = prev }
}

// mutateBatchTail applies the active mutation to a batch kernel result:
// the tail element is overwritten as if the kernel had iterated one
// element short and duplicated the previous lane.
func mutateBatchTail(dst []float64) {
	if !mutantBatchTail || len(dst) < 2 {
		return
	}
	dst[len(dst)-1] = dst[len(dst)-2]
}
