package geom

import (
	"math"
	"math/rand"
	"testing"
)

func seg(ax, ay, bx, by float64) Segment {
	return Segment{A: Point{X: ax, Y: ay}, B: Point{X: bx, Y: by}}
}

func TestSegmentBasics(t *testing.T) {
	s := seg(0, 0, 3, 4)
	if s.Length() != 5 {
		t.Fatalf("Length = %g", s.Length())
	}
	if got := s.Bounds(); got != NewRect(0, 0, 3, 4) {
		t.Fatalf("Bounds = %v", got)
	}
}

func TestDistToPointKnownValues(t *testing.T) {
	s := seg(0, 0, 10, 0)
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{5, 3}, 3},  // perpendicular drop inside
		{Point{-4, 3}, 5}, // beyond A: endpoint distance
		{Point{13, 4}, 5}, // beyond B
		{Point{7, 0}, 0},  // on the segment
		{Point{0, 0}, 0},  // endpoint
	}
	for _, c := range cases {
		if got := s.DistToPoint(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	// Degenerate segment = point.
	pt := seg(2, 2, 2, 2)
	if got := pt.DistToPoint(Point{5, 6}); got != 5 {
		t.Fatalf("point-segment distance = %g", got)
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		a, b Segment
		want bool
	}{
		{seg(0, 0, 10, 10), seg(0, 10, 10, 0), true}, // X crossing
		{seg(0, 0, 10, 0), seg(5, 0, 15, 0), true},   // collinear overlap
		{seg(0, 0, 10, 0), seg(11, 0, 20, 0), false}, // collinear disjoint
		{seg(0, 0, 10, 0), seg(10, 0, 10, 5), true},  // endpoint touch
		{seg(0, 0, 10, 0), seg(0, 1, 10, 1), false},  // parallel apart
		{seg(0, 0, 1, 1), seg(2, 2, 3, 1), false},    // disjoint
		{seg(0, 0, 4, 4), seg(2, 2, 6, 0), true},     // T junction
	}
	for i, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("case %d (swapped): Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestDistToSegmentKnownValues(t *testing.T) {
	cases := []struct {
		a, b Segment
		want float64
	}{
		{seg(0, 0, 10, 0), seg(0, 3, 10, 3), 3},   // parallel
		{seg(0, 0, 10, 0), seg(12, 0, 20, 0), 2},  // collinear gap
		{seg(0, 0, 10, 10), seg(0, 10, 10, 0), 0}, // crossing
		{seg(0, 0, 1, 0), seg(4, 4, 5, 5), 5},     // corner to corner (3-4-5)
		{seg(0, 0, 0, 10), seg(3, 5, 9, 5), 3},    // perpendicular approach
	}
	for i, c := range cases {
		if got := c.a.DistToSegment(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: dist = %g, want %g", i, got, c.want)
		}
		if got := c.b.DistToSegment(c.a); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d (swapped): dist = %g, want %g", i, got, c.want)
		}
	}
}

// Property: the exact segment distance always lies between the MBR
// minimum and maximum distances — exactly the refiner contract.
func TestSegmentDistanceWithinMBRBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		a := seg(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		b := seg(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		d := a.DistToSegment(b)
		lo := a.Bounds().MinDist(b.Bounds())
		hi := a.Bounds().MaxDist(b.Bounds())
		if d < lo-1e-9 || d > hi+1e-9 {
			t.Fatalf("segment distance %g outside MBR bounds [%g, %g] for %v / %v", d, lo, hi, a, b)
		}
	}
}

// Property: against dense sampling along both segments, the analytic
// distance is never above the sampled minimum and within sampling
// error below it.
func TestSegmentDistanceAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	const steps = 200
	for i := 0; i < 200; i++ {
		a := seg(rng.Float64()*50, rng.Float64()*50, rng.Float64()*50, rng.Float64()*50)
		b := seg(rng.Float64()*50, rng.Float64()*50, rng.Float64()*50, rng.Float64()*50)
		want := a.DistToSegment(b)
		best := math.Inf(1)
		for s := 0; s <= steps; s++ {
			t1 := float64(s) / steps
			p := Point{a.A.X + t1*(a.B.X-a.A.X), a.A.Y + t1*(a.B.Y-a.A.Y)}
			if d := b.DistToPoint(p); d < best {
				best = d
			}
		}
		if want > best+1e-9 {
			t.Fatalf("analytic %g above sampled %g", want, best)
		}
		pitch := a.Length() / steps
		if best > want+pitch+1e-9 {
			t.Fatalf("sampled %g too far above analytic %g (pitch %g)", best, want, pitch)
		}
	}
}

func BenchmarkDistToSegment(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	segs := make([]Segment, 512)
	for i := range segs {
		segs[i] = seg(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += segs[i%512].DistToSegment(segs[(i+13)%512])
	}
	_ = sink
}

func TestDistToRect(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct {
		s    Segment
		want float64
	}{
		{seg(2, 2, 8, 8), 0},              // inside
		{seg(-5, 5, 15, 5), 0},            // crossing through
		{seg(12, 0, 12, 10), 2},           // parallel to right edge
		{seg(13, 14, 20, 20), 5},          // corner 3-4-5
		{seg(5, 10, 5, 20), 0},            // touching the top edge
		{seg(-5, -5, -1, -1), math.Sqrt2}, // diagonal approach to corner
	}
	for i, c := range cases {
		if got := c.s.DistToRect(r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: DistToRect = %g, want %g", i, got, c.want)
		}
	}
}

// Property: DistToRect lies between the MBR-vs-rect min distance and
// the segment's own MBR max distance.
func TestDistToRectBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 3000; i++ {
		s := seg(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		r := NewRect(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		d := s.DistToRect(r)
		lo := s.Bounds().MinDist(r)
		hi := s.Bounds().MaxDist(r)
		if d < lo-1e-9 || d > hi+1e-9 {
			t.Fatalf("DistToRect %g outside [%g, %g] for %v vs %v", d, lo, hi, s, r)
		}
	}
}
